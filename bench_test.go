// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artefact) plus micro-benchmarks of the
// hot paths: fuzzy assignment, compiled fixed-point inference and the
// simulated switch pipeline. Experiment benchmarks use a reduced quick
// preset (fewer flows/epochs) so `go test -bench=.` completes in
// minutes; cmd/pegasus-bench runs the full-size versions.
package pegasus

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/experiments"
	"github.com/pegasus-idp/pegasus/internal/models"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// quickSuite builds a reduced-scale suite shared within one benchmark.
func quickSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.Config{
		FlowsPerClass: 36,
		Epochs:        0.5,
		Seed:          1,
	})
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		if err := s.Run(name, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Preview regenerates the headline comparison (Table 2).
func BenchmarkTable2Preview(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable5Accuracy regenerates the full accuracy matrix (Table 5).
func BenchmarkTable5Accuracy(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6Resources regenerates the hardware resource table
// (Table 6).
func BenchmarkTable6Resources(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFigure7FlowStorage regenerates the per-flow storage sweep
// (Figure 7).
func BenchmarkFigure7FlowStorage(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8ROC regenerates the AutoEncoder AUC matrix (Figure 8).
func BenchmarkFigure8ROC(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9Accuracy regenerates the fuzzy-vs-full-precision
// comparison (Figure 9a–c).
func BenchmarkFigure9Accuracy(b *testing.B) { benchExperiment(b, "fig9acc") }

// BenchmarkFigure9Throughput regenerates the throughput comparison
// (Figure 9d).
func BenchmarkFigure9Throughput(b *testing.B) { benchExperiment(b, "fig9thr") }

// ---- micro-benchmarks of the inference hot paths ----

func benchCompiled(b *testing.B) (*Feedforward, [][]float64) {
	b.Helper()
	ds := PeerRush(DataConfig{FlowsPerClass: 40, Seed: 2})
	train, _, test := ds.Split(3)
	rng := rand.New(rand.NewSource(2))
	m := NewCNNM(ds.NumClasses(), rng)
	m.Train(train, TrainOpts{Epochs: 10, Seed: 2})
	if err := m.Compile(train); err != nil {
		b.Fatal(err)
	}
	xs, _ := models.ExtractSeq(test)
	return m, xs
}

// BenchmarkFuzzyInference measures host-side compiled fixed-point
// inference (one CNN-M window classification).
func BenchmarkFuzzyInference(b *testing.B) {
	m, xs := benchCompiled(b)
	v := make([]int32, len(xs[0]))
	for j, f := range xs[0] {
		v[j] = int32(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compiled().Classify(v)
	}
}

// BenchmarkSwitchPipeline measures one full PHV pass through the emitted
// PISA program (parse → TCAM → SRAM → SumReduce → argmax).
func BenchmarkSwitchPipeline(b *testing.B) {
	m, xs := benchCompiled(b)
	em, err := m.Emit(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]int32, len(xs[0]))
	for j, f := range xs[0] {
		v[j] = int32(f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.RunSwitch(v)
	}
}

// BenchmarkEngineBatch compares sequential RunSwitch replay against the
// batched flow-sharded pisa.Engine, on the emitted CNN-M program, in
// both execution modes: the reference table interpreter and the
// compiled zero-allocation execution plan. Per-op cost is one whole
// batch; throughput is reported as pkts/s so future perf PRs have a
// trajectory to beat. The interpreted/workers=1 vs compiled/workers=1
// pair isolates the compile-to-plan gain; higher worker counts add the
// sharding gain on top (shards run one goroutine each, so single-core
// runners show only the sharding overhead).
func BenchmarkEngineBatch(b *testing.B) {
	m, xs := benchCompiled(b)
	em, err := m.Emit(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	jobs := core.BatchJobsFromFloats(xs)
	pktPerOp := float64(len(jobs))

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				em.RunSwitch(j.In)
			}
		}
		b.ReportMetric(pktPerOp*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	})
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				eng := em.NewEngineMode(workers, mode)
				defer eng.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.RunBatch(jobs)
				}
				b.ReportMetric(pktPerOp*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			})
		}
	}
}

// BenchmarkEnginePackets measures the raw-trace per-packet path: the
// merged test trace replayed through the extraction emission, so every
// packet pays the flow-state register RMWs (window banking, counters)
// and inference fires only on window boundaries. ReportAllocs pins the
// zero-per-packet-allocation property of the compiled stateful path:
// allocs/op is per whole-trace replay (result-slice assembly only), so
// allocations per packet are allocs/op divided by pkts — effectively
// zero.
func BenchmarkEnginePackets(b *testing.B) {
	ds := PeerRush(DataConfig{FlowsPerClass: 40, Seed: 2})
	train, _, test := ds.Split(3)
	rng := rand.New(rand.NewSource(2))
	m := NewCNNM(ds.NumClasses(), rng)
	m.Train(train, TrainOpts{Epochs: 10, Seed: 2})
	if err := m.Compile(train); err != nil {
		b.Fatal(err)
	}
	em, err := m.EmitPackets(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	jobs := models.PacketJobs(em, netsim.Merge(test))
	pktPerOp := float64(len(jobs))

	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				eng := em.NewPacketEngine(workers, mode)
				defer eng.Close()
				eng.ResetState()
				eng.RunPackets(jobs) // warm the reusable buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.RunPackets(jobs)
				}
				b.ReportMetric(pktPerOp*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			})
		}
	}
}

// BenchmarkSharedExtraction measures physically shared extraction on
// the raw-trace path: three co-resident copies of the CNN-M classifier
// served either by three fused private preludes (each packet pays the
// flow-state register RMWs three times) or by one
// core.EmitSharedExtraction machine fanning fired windows out to three
// register-free subscribers (RMWs exactly once per packet). Both
// variants report fully-served pkts/s — a trace packet counts once all
// three models have seen it — so the two numbers are directly
// comparable. ReportAllocs keeps the compiled stateful path honest:
// allocs/op is per whole-trace replay (result-row assembly only), so
// per-packet allocations stay effectively zero in both variants.
func BenchmarkSharedExtraction(b *testing.B) {
	ds := PeerRush(DataConfig{FlowsPerClass: 40, Seed: 2})
	train, _, test := ds.Split(3)
	rng := rand.New(rand.NewSource(2))
	m := NewCNNM(ds.NumClasses(), rng)
	m.Train(train, TrainOpts{Epochs: 10, Seed: 2})
	if err := m.Compile(train); err != nil {
		b.Fatal(err)
	}
	stream := netsim.Merge(test)
	const nModels = 3

	b.Run(fmt.Sprintf("private/models=%d", nModels), func(b *testing.B) {
		var engs []*pisa.Engine
		var jobs []pisa.PacketIn
		for i := 0; i < nModels; i++ {
			em, err := m.EmitPackets(1 << 10)
			if err != nil {
				b.Fatal(err)
			}
			if jobs == nil {
				jobs = models.PacketJobs(em, stream)
			}
			eng := em.NewPacketEngine(1, pisa.ExecCompiled)
			defer eng.Close()
			eng.ResetState()
			eng.RunPackets(jobs) // warm the reusable buffers
			engs = append(engs, eng)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, eng := range engs {
				eng.RunPackets(jobs)
			}
		}
		b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	})

	b.Run(fmt.Sprintf("shared/models=%d", nModels), func(b *testing.B) {
		shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
			models.SharedWindowSpec(core.ExtractSeq), 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		sched := pisa.NewScheduler(nModels + 1)
		defer sched.Close()
		ext := shared.Em.NewPacketEngineOn(sched, "ext", 1, pisa.ExecCompiled)
		defer ext.Close()
		fan := pisa.NewFanout(ext)
		for i := 0; i < nModels; i++ {
			em, err := m.EmitShared(shared)
			if err != nil {
				b.Fatal(err)
			}
			eng := em.NewEngineOn(sched, fmt.Sprintf("cnn-m#%d", i), 1, pisa.ExecCompiled)
			defer eng.Close()
			fan.Subscribe(eng)
		}
		jobs := models.PacketJobs(shared.Em, stream)
		ext.ResetState()
		fan.RunPackets(jobs) // warm the reusable buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fan.RunPackets(jobs)
		}
		b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	})
}

// BenchmarkFullPrecisionInference measures the CPU baseline of Figure 9d
// (one full-precision CNN-M forward).
func BenchmarkFullPrecisionInference(b *testing.B) {
	m, xs := benchCompiled(b)
	mat := tensor.New(1, len(xs[0]))
	copy(mat.Row(0), xs[0])
	mat.Scale(1.0 / 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Net.Predict(mat)
	}
}
