// Traffic classification: the paper's headline workload. Trains CNN-M
// (Advanced Primitive Fusion) on synthetic VPN traffic, compiles it into
// four mapping tables, and classifies the test flows on the simulated
// dataplane — comparing fuzzy fixed-point accuracy with full precision.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/pegasus-idp/pegasus"
)

func main() {
	ds := pegasus.ISCXVPN(pegasus.DataConfig{FlowsPerClass: 50, Seed: 3})
	train, _, test := ds.Split(11)
	fmt.Printf("dataset %s: %d classes, %d train / %d test flows\n",
		ds.Name, ds.NumClasses(), len(train), len(test))

	rng := rand.New(rand.NewSource(3))
	model := pegasus.NewCNNM(ds.NumClasses(), rng)
	fmt.Printf("training %s (%d parameters)...\n", model.Name, model.Net.NumParams())
	model.Train(train, pegasus.TrainOpts{Epochs: 60, Seed: 3})

	full, err := model.EvalFull(test, ds.NumClasses())
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Compile(train); err != nil {
		log.Fatal(err)
	}
	peg, err := model.EvalPegasus(test, ds.NumClasses())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full precision  F1 %.4f\n", full.F1)
	fmt.Printf("pegasus switch  F1 %.4f (Δ %+0.4f)\n", peg.F1, peg.F1-full.F1)
	fmt.Printf("table lookups per inference: %d\n", model.Compiled().Lookups())

	em, err := model.Emit(1 << 20) // 1M concurrent flows
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(em.Prog.Summary())
}
