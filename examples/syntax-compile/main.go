// Pegasus Syntax end to end: parse the Figure 6 program, translate it to
// primitives, fuse, build tables from synthetic calibration data and
// print the compiled pipeline — what cmd/pegasus-compile does, as a
// library call.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/syntax"
)

const figure6 = `
struct InputVec_t {
    bit<8>  input_dim0;
    bit<8>  input_dim1;
    bit<8>  input_dim2;
    bit<8>  input_dim3;
    bit<8>  input_dim4;
    bit<8>  input_dim5;
    bit<8>  input_dim6;
    bit<8>  input_dim7;
};
struct ig_metadata_t {
    InputVec_t input_vec;
    OutputVec_t output_vec;
};
ig_metadata_t meta;
meta.output_vec = SumReduce(
    Map(
        Partition(meta.input_vec, dim = 2, stride = 2),
        clustering_depth = 4,
        CNN_dimension = 3,
        CNN_kernel = cnn_kernel,
        CNN_stride = cnn_stride
    )
);
`

func main() {
	spec, err := syntax.Parse(figure6)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := syntax.Translate(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated:", prog)
	fused := core.Fuse(prog)

	rng := rand.New(rand.NewSource(7))
	calib := make([][]float64, 400)
	for i := range calib {
		row := make([]float64, 8)
		for j := range row {
			row[j] = float64(rng.Intn(256))
		}
		calib[i] = row
	}
	comp, err := core.BuildTables(fused, calib, core.CompileConfig{
		TreeDepth: syntax.ClusteringDepth(spec), InBits: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	em, err := core.Emit(comp, core.EmitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(em.Prog.Summary())
}
