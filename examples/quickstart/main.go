// Quickstart: compile a tiny trained MLP into Pegasus primitives and run
// it on the simulated switch, verifying the dataplane result matches the
// host-side fixed-point inference bit for bit.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/pegasus-idp/pegasus"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. Train a small classifier on a toy 8-feature task.
	net := nn.NewSequential(
		nn.NewLinear(8, 12, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(12, 3, rng),
	)
	xs := tensor.New(600, 8)
	labels := make([]int, 600)
	for i := range labels {
		cls := i % 3
		labels[i] = cls
		for j := 0; j < 8; j++ {
			xs.Set(i, j, float64(4+8*cls+rng.Intn(6)))
		}
	}
	nn.Fit(net, xs, nn.ClassTargets(labels), nn.SoftmaxCrossEntropy{}, nn.NewAdam(0.01),
		nn.TrainConfig{Epochs: 40, BatchSize: 32, Seed: 1})

	// 2. Lower to primitives (Partition → Map → SumReduce) and fuse.
	prog, err := pegasus.Lower("quickstart", net, 8, pegasus.LowerConfig{MaxSegDim: 2})
	if err != nil {
		log.Fatal(err)
	}
	fused := pegasus.Fuse(prog)
	fmt.Println("primitive program:", fused)

	// 3. Build fuzzy-matching tables from calibration data.
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := pegasus.BuildTables(fused, calib, pegasus.CompileConfig{TreeDepth: 5, InBits: 16})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Emit the PISA pipeline and classify a packet's features on the
	// simulated switch.
	em, err := pegasus.Emit(comp, pegasus.EmitOptions{Argmax: true})
	if err != nil {
		log.Fatal(err)
	}
	sample := []int32{5, 6, 7, 4, 5, 6, 7, 8} // class 0 territory
	swClass, _ := em.RunSwitch(sample)
	fmt.Printf("switch classified %v as class %d (host: %d)\n",
		sample, swClass, comp.Classify(sample))
	fmt.Print(em.Prog.Summary())
}
