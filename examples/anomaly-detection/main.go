// Anomaly detection (§7.4): train the AutoEncoder on benign traffic
// only, compile it to the dataplane, and measure how well its fixed-
// point reconstruction error separates six unknown attack families the
// model never saw.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/pegasus-idp/pegasus"
)

func main() {
	ds := pegasus.PeerRush(pegasus.DataConfig{FlowsPerClass: 60, Seed: 5})
	train, _, test := ds.Split(13)
	rng := rand.New(rand.NewSource(5))

	// The paper transfers the embedding from a classification model.
	cls := pegasus.NewRNNB(ds.NumClasses(), rng)
	cls.Train(train, pegasus.TrainOpts{Epochs: 40, LR: 0.02, Seed: 5})

	ae := pegasus.NewAutoEncoder(cls.Emb, rng)
	ae.Train(train, pegasus.TrainOpts{Epochs: 60, LR: 0.005, Seed: 5})
	if err := ae.Compile(train); err != nil {
		log.Fatal(err)
	}

	attacks := []pegasus.AttackKind{
		pegasus.Htbot, pegasus.Flood, pegasus.Cridex,
		pegasus.Virut, pegasus.Neris, pegasus.Geodo,
	}
	fmt.Println("AutoEncoder unknown-attack detection (dataplane fixed point):")
	for _, atk := range attacks {
		mixed := pegasus.MixAttack(test, atk, 17)
		scores, anom, err := ae.ScorePegasus(mixed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v AUC = %.4f\n", atk, pegasus.AUCFromScores(scores, anom))
	}

	em, err := ae.Emit(1 << 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(em.Prog.Summary())
}
