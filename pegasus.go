// Package pegasus is the public API of the Pegasus reproduction: a
// framework that compiles deep-learning traffic classifiers into
// dataplane primitives (Partition, Map, SumReduce) and deploys them on a
// simulated PISA switch at line rate.
//
// The typical workflow mirrors the paper:
//
//	ds := pegasus.PeerRush(pegasus.DataConfig{Seed: 1})
//	train, _, test := ds.Split(7)
//	model := pegasus.NewCNNM(ds.NumClasses(), rand.New(rand.NewSource(1)))
//	model.Train(train, pegasus.TrainOpts{Epochs: 60})
//	model.Compile(train)                  // fuzzy tables, fusion, quantisation
//	report, _ := model.EvalPegasus(test, ds.NumClasses())
//	emitted, _ := model.Emit(1 << 20)     // PISA program + resource accounting
//
//	// batched flow-sharded replay through the simulated switch
//	engine := emitted.NewEngine(8)
//	defer engine.Close()
//	results := engine.RunBatch(pegasus.BatchJobs(batch))
//
// # Execution modes
//
// Emitted programs execute in one of two modes. The interpreter
// (Program.Process, RunSwitch, ExecInterpret) evaluates every table
// directly against its entry list — the reference semantics. The
// compiled plan (CompileProgram, ExecCompiled — the engine's default)
// lowers the program once into a zero-allocation execution schedule
// specialised per table: always-tables inline into straight-line op
// streams, exact tables become dense direct-index arrays or hashed
// lookups on a packed key, and range-coded ternary tables become
// interval lookups and per-dimension rule-bitset intersections.
// Compiled execution is bit-identical to the interpreter (differential
// fuzz tests enforce it across every model family and the multi-pipe
// chain) and is what throughput-bearing replay should use; the
// interpreter remains the baseline for debugging table semantics and
// validating new emitters. Select per engine with
// Emitted.NewEngineMode(workers, mode).
//
// The engine itself is a persistent streaming pool: workers start once
// and are fed shard chunks over channels, either from pre-built
// batches (RunBatch) or from a channel of packets drained into
// adaptive micro-batches (RunStream). Close stops the pool.
//
// # Per-packet execution
//
// RunBatch/RunStream replay pre-extracted feature windows. The
// per-packet path instead consumes raw traces: EmitPackets compiles
// the model's Table-6 feature-extraction state machine in front of the
// inference program — flow hash → register slot, one register
// read-modify-write per packet (max/min trackers, timestamp exchange,
// windowed sequence banking), bucket range tables bit-identical to the
// host extractors, and a window-boundary fire trigger — and
// Emitted.NewPacketEngine drives it from a netsim.Merge trace
// (PacketJobs marshals the packets):
//
//	emitted, _ := model.EmitPackets(1 << 20)
//	engine := emitted.NewPacketEngine(8, pegasus.ExecCompiled)
//	defer engine.Close()
//	fires := engine.RunPackets(pegasus.PacketJobs(emitted, pegasus.Merge(test)))
//
// Every packet updates the flow's registers; a result is produced only
// for packets that complete a feature window, bit-identical to
// host-side extraction followed by RunSwitch. Program.Validate
// enforces the hardware's one-RMW-per-register-per-packet rule on the
// emitted machines.
//
// # Multi-model serving
//
// Several emitted programs can be served concurrently from one fixed
// worker budget: a Scheduler owns the pool, and each emission registers
// a session on it (Emitted.NewEngineOn / NewPacketEngineOn). Per-model
// shard queues are drained with weighted fair scheduling, so one
// model's large trace cannot starve its co-resident models, and
// Scheduler.Stats reports per-model throughput and pool occupancy. A
// Deployment validates the co-resident emissions against one combined
// capacity (models sharing an extraction spec are charged one
// extraction machine); the §7.4 scenario — an unknown-attack
// AutoEncoder whose on-switch reconstruction-error gate screens every
// window before a classifier labels it — ships as GatedPipeline:
//
//	gated, _ := pegasus.NewGatedPipeline(ae, cnnb, threshold)
//	_ = gated.Emit(1<<16, pegasus.Tofino2.Pipes(2)) // combined budget check
//	sched := pegasus.NewScheduler(8)
//	defer sched.Close()
//	results, _ := gated.Run(pegasus.Merge(test), sched, pegasus.ExecCompiled)
//
// Raw merged traces go in; each completed window comes back with the
// gate verdict, the integer MAE score and — for windows the gate passed
// — the classifier's label, bit-identical to running the two emitted
// programs sequentially on the host.
//
// # Serving control plane
//
// Above the raw Scheduler sits a serving control plane (NewServer): a
// Server owns one scheduler plus the deployment ledger of everything
// registered on it, and turns multi-model serving into an operated
// system. Register admission-checks each candidate emission against
// the REMAINING combined capacity — a rejection reports the exhausted
// dimension and every resident model's contribution, before any
// scheduler state changes. A served model can be live-swapped to a new
// generation (Model.Swap): the new version warms off-path while the
// old keeps serving, in-flight batches drain without dropping a
// result, per-flow registers either migrate or re-initialise, and
// co-resident models never stop. Declared SLOs (target busy-time
// share, max queue wait) drive a feedback loop (Server.TuneOnce /
// StartTuner) that retunes session weights from observed occupancy,
// and Server.Snapshot — also served as JSON by Server.ServeHTTP — is
// the metrics endpoint:
//
//	srv := pegasus.NewServer(pegasus.ServerOptions{
//	    Name: "edge", Cap: pegasus.Tofino2.Pipes(2), Budget: 8})
//	defer srv.Close()
//	m, err := srv.Register("cnn-b", emitted, 1, pegasus.SLO{TargetShare: 0.5})
//	// ... m.Run(jobs) from any number of goroutines ...
//	report, err := m.Swap(emittedV2, pegasus.SwapOptions{MigrateState: true})
//	go http.ListenAndServe(":9090", srv) // JSON metrics endpoint
//
// # Overload protection and failure resilience
//
// The serving plane degrades predictably instead of collapsing. Every
// session can carry a ShedPolicy (max queue depth, max recent wait,
// deadline headroom): work that would violate it is rejected NEWEST
// first with a structured *ErrOverloaded carrying the observed depth
// and wait, before it touches any register — shed work has no
// side effects. Context-aware submission (ServedModel.RunCtx /
// SubmitCtx) additionally sheds batches whose context deadline cannot
// be met by the queue's recent wait. A scheduler watchdog detects
// stalled workers and re-routes their queues to work stealers, and a
// panicking compiled plan fails only its own batch and poisons only
// its own session (*ErrPoisoned) — co-resident models keep serving.
//
// Swaps can be canaried: SwapOptions.Canary mirrors a fraction of live
// traffic to the warmed next version while the incumbent stays
// authoritative for every result, compares classifications, queue
// waits and fire rates over a decision window, and either promotes or
// auto-rolls-back. A rollback discards the shadow, so the incumbent is
// bit-identical to never having swapped. The §7.4 gated pipeline is
// served with graceful degradation (Server.RegisterGated +
// DegradePolicy): under sustained classifier overload the gate verdict
// is served alone (Class -1) until the classifier recovers.
//
//	m.SetShedPolicy(pegasus.ShedPolicy{MaxQueue: 64, MaxWait: time.Millisecond})
//	rep, err := m.Swap(next, pegasus.SwapOptions{
//	    Canary: &pegasus.CanaryOptions{Fraction: 0.25, MaxDisagree: 0.01}})
//	if rep.RolledBack { log.Println("rolled back:", rep.RollbackReason) }
//
// The fault-injection harness behind the resilience experiment is
// exported too (FaultArm/FaultReset and the Fault* points): tests and
// drills can stall a worker, slow or panic a session's plan, fail a
// swap warm-up, or poison a canary's observed classes.
//
// Compilation runs through a staged pass manager (Pipeline): named,
// instrumented passes (lower, fuse, drop-nonlinear, build-tables,
// refine, emit) over one CompileOptions struct, with per-pass wall-time
// and resource diagnostics (model.Diagnostics()).
//
// # Targets and backends
//
// Emission is pluggable: a Target (name + capacity profile + emit
// hooks) turns a compiled artefact into one or more PISA programs plus
// the I/O field maps the replay harness needs. Built-in backends,
// selectable by name through the registry (LookupTarget/TargetNames) or
// the CLIs' -target flag:
//
//   - "tofino" — the default single-pipeline Tofino 2 of the paper.
//   - "tofino-multipipe" — splits a program that overflows one pipe's
//     stage budget at a group boundary across chained ingress/egress
//     pipes, bridging the inter-pipe vector through PHV fields; the
//     Engine replays the chain bit-identically to host inference.
//   - "smartnic" — a SmartNIC-style capacity profile (long pipeline,
//     small per-stage memory, near-zero TCAM).
//   - "p4" — renders the emission as readable P4-16 source in
//     Emitted.Source for inspection and diffing.
//
// Select a backend per compilation via CompileOptions.Emit.Target:
//
//	model.Opts.Emit.Target = pegasus.TofinoMultiPipe()
//	emitted, _ := model.Emit(1 << 20) // may span several bridged pipes
//
// A new fixed-budget dataplane is a one-struct addition:
//
//	pegasus.RegisterTarget(&pegasus.SinglePipeTarget{
//	    Label: "fpga", Cap: pegasus.Capacity{Stages: 64 /* ... */}})
//
// Everything below re-exports the internal building blocks a downstream
// user needs: dataset synthesis, the model zoo of §6.3, the baselines of
// §7, the primitive compiler, the pass manager, the emission targets,
// the switch simulator and the batched execution engine.
package pegasus

import (
	"io"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/experiments"
	"github.com/pegasus-idp/pegasus/internal/faultinject"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/models"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/serve"
	"github.com/pegasus-idp/pegasus/internal/trafficgen"
)

// Re-exported traffic types.
type (
	// Flow is a labelled packet flow.
	Flow = netsim.Flow
	// Packet is one packet of a flow.
	Packet = netsim.Packet
	// FiveTuple identifies a flow.
	FiveTuple = netsim.FiveTuple
	// Dataset is a labelled set of flows.
	Dataset = datasets.Dataset
	// DataConfig controls synthetic dataset generation.
	DataConfig = datasets.Config
	// AttackKind selects a §7.4 attack family.
	AttackKind = datasets.AttackKind
)

// Dataset generators (synthetic stand-ins for the paper's datasets).
var (
	PeerRush = datasets.PeerRush
	CICIOT   = datasets.CICIOT
	ISCXVPN  = datasets.ISCXVPN
)

// Attack traffic constructors.
var (
	AttackFlows = datasets.AttackFlows
	MixAttack   = datasets.MixAttack
)

// Attack families.
const (
	Htbot  = datasets.Htbot
	Flood  = datasets.Flood
	Cridex = datasets.Cridex
	Virut  = datasets.Virut
	Neris  = datasets.Neris
	Geodo  = datasets.Geodo
)

// Model zoo types.
type (
	// Feedforward is the generic Pegasus-compilable classifier (MLP-B,
	// CNN-B, CNN-M).
	Feedforward = models.Feedforward
	// RNNB is the windowed recurrent classifier.
	RNNB = models.RNNB
	// CNNL is the large raw-payload CNN with per-packet fuzzy indices.
	CNNL = models.CNNL
	// AutoEncoder is the unsupervised anomaly detector.
	AutoEncoder = models.AutoEncoder
	// TrainOpts scales model training.
	TrainOpts = models.TrainOpts
	// Report carries precision/recall/macro-F1.
	Report = metrics.Report
)

// Model constructors (§6.3).
var (
	NewMLPB        = models.NewMLPB
	NewCNNB        = models.NewCNNB
	NewCNNM        = models.NewCNNM
	NewRNNB        = models.NewRNNB
	NewAutoEncoder = models.NewAutoEncoder
)

// NewCNNL builds the large CNN variant. useIPD and idxBits select the
// Figure 7 per-flow storage variants (28/44/72 bits).
func NewCNNL(nClasses int, useIPD bool, idxBits int, rng *rand.Rand) *CNNL {
	return models.NewCNNL(nClasses, useIPD, idxBits, rng)
}

// Compiler types for users building custom models from primitives.
type (
	// Program is a primitive program (Partition/Map/SumReduce steps).
	Program = core.Program
	// Compiled holds a model's mapping tables and runs fixed-point
	// inference bit-identical to the switch.
	Compiled = core.Compiled
	// Emitted is a compiled PISA deployment (one or more bridged
	// pipeline programs) with its I/O fields.
	Emitted = core.Emitted
	// CompileConfig tunes tree depth and quantisation.
	CompileConfig = core.CompileConfig
	// EmitOptions controls PISA emission (target backend, argmax stage,
	// flow state).
	EmitOptions = core.EmitOptions
	// LowerConfig tunes partition widths.
	LowerConfig = core.LowerConfig
	// SwitchProgram is a raw PISA pipeline.
	SwitchProgram = pisa.Program
	// Capacity describes switch hardware limits.
	Capacity = pisa.Capacity
)

// Emission-target types: the pluggable backend seam.
type (
	// Target is an emission backend (name, capacity, emit hooks).
	Target = core.Target
	// SinglePipeTarget emits onto one pipeline of a given capacity.
	SinglePipeTarget = core.SinglePipe
	// MultiPipeTarget splits overflowing programs across chained pipes.
	MultiPipeTarget = core.MultiPipe
	// P4PrinterTarget renders emissions as P4-16 source.
	P4PrinterTarget = core.P4Printer
	// PipeBridge carries PHV values between chained pipeline programs.
	PipeBridge = pisa.Bridge
)

// Emission-target constructors and registry.
var (
	// TofinoSingle is the default single-pipeline Tofino 2 backend.
	TofinoSingle = core.TofinoSingle
	// TofinoMultiPipe chains ingress/egress Tofino 2 pipes.
	TofinoMultiPipe = core.TofinoMultiPipe
	// SmartNICTarget emits against the SmartNIC capacity profile.
	SmartNICTarget = core.SmartNICTarget
	// NewP4Printer wraps a target with a P4-16 source renderer.
	NewP4Printer = core.NewP4Printer
	// RegisterTarget adds a backend to the registry.
	RegisterTarget = core.RegisterTarget
	// LookupTarget resolves a backend by name.
	LookupTarget = core.LookupTarget
	// TargetNames lists the registered backends.
	TargetNames = core.TargetNames
	// DefaultTarget is the backend used when none is selected.
	DefaultTarget = core.DefaultTarget
	// P4Source renders one PISA program as P4-16 source.
	P4Source = pisa.P4Source
)

// Pass-manager types: the staged compilation pipeline every model
// family runs through, and its per-pass diagnostics.
type (
	// Pipeline is the staged pass manager (lower → fuse → build-tables
	// → refine/emit) with per-pass instrumentation.
	Pipeline = core.Pipeline
	// CompileOptions is the unified pipeline configuration, subsuming
	// LowerConfig/CompileConfig/RefineConfig/EmitOptions.
	CompileOptions = core.CompileOptions
	// Pass is one named pipeline stage.
	Pass = core.Pass
	// PassState is the mutable state threaded through passes.
	PassState = core.PassState
	// PassDiag is one pass's recorded diagnostics (wall time, step/
	// group/table counts, stage and SRAM/TCAM deltas).
	PassDiag = core.PassDiag
)

// Batched switch-execution engine types: concurrent replay of an
// emitted program over packet batches or streams, sharded by flow hash
// so per-flow state stays consistent.
type (
	// Engine is the flow-sharded execution session of one emitted
	// program (chains the pipes of multi-pipeline emissions; RunBatch
	// for batches, RunStream for channels of packets; Close releases
	// the session and, for solo engines, stops the pool).
	Engine = pisa.Engine
	// Scheduler is the shared fixed-budget worker pool serving any
	// number of registered engines with weighted fair draining —
	// multi-model serving (Emitted.NewEngineOn registers sessions).
	Scheduler = pisa.Scheduler
	// EngineStats is one session's per-model serving counters.
	EngineStats = pisa.EngineStats
	// Deployment is a multi-model switch deployment validated against
	// one combined capacity (shared extraction charged once).
	Deployment = core.Deployment
	// GateSpec configures the §7.4 reconstruction-error gate appended
	// to an anomaly emission (EmitOptions.Gate).
	GateSpec = core.GateSpec
	// GatedPipeline is the §7.4 AutoEncoder-gated classifier: raw
	// traces in, gated classifications out, two programs on one budget.
	GatedPipeline = models.GatedPipeline
	// GatedResult is one window verdict of a gated deployment.
	GatedResult = models.GatedResult
	// EngineJob is one packet (input values + shard hash) of a batch.
	EngineJob = pisa.Job
	// EngineResult is one packet's classification and outputs.
	EngineResult = pisa.Result
	// ExecMode selects interpreted tables or compiled execution plans.
	ExecMode = pisa.ExecMode
	// CompiledProgram is a switch program lowered into a
	// zero-allocation execution plan, bit-identical to the interpreter.
	CompiledProgram = pisa.CompiledProgram
	// PacketIn is one raw packet of a per-packet trace replay.
	PacketIn = pisa.PacketIn
	// PacketResult is one fired window inference of a packet replay.
	PacketResult = pisa.PacketResult
	// ExtractSpec configures the per-packet extraction machine an
	// emission compiles in front of the inference program.
	ExtractSpec = core.ExtractSpec
	// ExtractKind selects the extraction state machine (stats,
	// sequence, payload).
	ExtractKind = core.ExtractKind
)

// Engine execution modes.
const (
	// ExecCompiled replays compiled zero-allocation plans (default).
	ExecCompiled = pisa.ExecCompiled
	// ExecInterpret replays the reference table interpreter.
	ExecInterpret = pisa.ExecInterpret
)

// Extraction state machines (ExtractSpec.Kind).
const (
	// ExtractStats tracks the Table-6 per-flow statistics trackers.
	ExtractStats = core.ExtractStats
	// ExtractSeq banks the per-flow packet-size/IAT sequence window.
	ExtractSeq = core.ExtractSeq
	// ExtractPayload banks the per-flow payload-byte window.
	ExtractPayload = core.ExtractPayload
	// ExtractPayloadIPD banks payload bytes plus inter-packet delays.
	ExtractPayloadIPD = core.ExtractPayloadIPD
)

// CompileProgram lowers a PISA program into its execution plan.
var CompileProgram = pisa.CompileProgram

// Multi-model serving entry points.
var (
	// NewScheduler starts a shared worker pool of the given budget
	// (≤ 0 selects GOMAXPROCS) for concurrent multi-model serving.
	NewScheduler = pisa.NewScheduler
	// NewDeployment assembles and validates a multi-model deployment
	// against a combined capacity (e.g. Tofino2.Pipes(2)).
	NewDeployment = core.NewDeployment
	// NewGatedPipeline pairs a compiled AutoEncoder with a sequence
	// classifier into the §7.4 gated deployment.
	NewGatedPipeline = models.NewGatedPipeline
	// CalibrateGate places the unknown-attack threshold at a quantile
	// of benign Pegasus MAE scores.
	CalibrateGate = models.CalibrateGate
)

// Physically shared extraction: one standalone flow-state machine pays
// the per-packet register RMWs exactly once and fans fired windows out
// to register-free subscriber models, bit-identical to private
// preludes.
type (
	// SharedExtraction is an emitted standalone extraction machine that
	// co-resident models subscribe to (Feedforward.EmitShared,
	// RNNB.EmitShared, AutoEncoder.EmitGatedShared).
	SharedExtraction = core.SharedExtraction
	// ExtractionFanout owns a shared machine's engine session and
	// dispatches each fired window to every subscribed engine
	// (Subscribe/Detach/SwapSubscriber manage the subscriber set).
	ExtractionFanout = pisa.Fanout
	// DeployedMachine is one physical extraction machine in a
	// Deployment's report: its spec, resources and subscriber models.
	DeployedMachine = core.Machine
	// SharedMachineMetrics is one physical machine's row in a
	// ServingSnapshot (packets, fires, register RMWs, subscribers).
	SharedMachineMetrics = serve.MachineMetrics
)

var (
	// EmitSharedExtraction emits a flow-state extraction machine as a
	// standalone program for physical sharing.
	EmitSharedExtraction = core.EmitSharedExtraction
	// SharedWindowSpec is the canonical window-8 ExtractSpec the model
	// zoo uses for a shared machine of the given kind.
	SharedWindowSpec = models.SharedWindowSpec
	// NewFanout wraps a shared extraction machine's packet engine for
	// fan-out to subscriber engines on the same scheduler.
	NewFanout = pisa.NewFanout
)

// Serving control-plane types: the operated layer over the shared
// scheduler — admission control against the remaining deployment
// budget, versioned zero-drop live swaps, SLO-driven weight tuning and
// the JSON metrics endpoint.
type (
	// Server is the serving control plane over one scheduler: an
	// admission-checked deployment ledger of live models. It implements
	// http.Handler, serving Snapshot as JSON.
	Server = serve.Server
	// ServerOptions configures NewServer (deployment name, combined
	// capacity, worker budget, execution mode).
	ServerOptions = serve.Options
	// ServedModel is one admitted model: submissions, stats, SLO and
	// live version swaps.
	ServedModel = serve.Model
	// SLO declares a model's serving objectives (target busy-time
	// share, max mean queue wait) for the weight auto-tuner.
	SLO = serve.SLO
	// SwapOptions tunes a live version swap (flow-state migration, warm
	// hook).
	SwapOptions = serve.SwapOptions
	// SwapReport measures one completed swap (warm, drain, cutover,
	// downtime, migrated registers).
	SwapReport = serve.SwapReport
	// AdmissionError is a structured rejection: the exhausted dimension
	// and each resident model's contribution, via the wrapped report.
	AdmissionError = serve.AdmissionError
	// TuneDecision records one weight adjustment by the SLO tuner.
	TuneDecision = serve.TuneDecision
	// ServingSnapshot is the metrics endpoint's document: server
	// counters plus per-model serving metrics.
	ServingSnapshot = serve.Snapshot
	// ServedModelMetrics is one model's row in a ServingSnapshot.
	ServedModelMetrics = serve.ModelMetrics
	// ServingTicket is an in-flight submission (Wait for the results).
	ServingTicket = serve.Ticket
)

// NewServer starts a serving control plane: its own shared-budget
// scheduler plus an admission-checked deployment ledger.
var NewServer = serve.NewServer

// Overload-protection and failure-resilience types.
type (
	// ShedPolicy bounds a session's queue (max depth, max recent wait,
	// deadline headroom); violating work is rejected newest-first.
	ShedPolicy = pisa.ShedPolicy
	// ErrOverloaded is the structured shed rejection: the reason
	// ("queue", "wait" or "deadline") plus the observed queue depth and
	// recent wait at the moment of rejection.
	ErrOverloaded = pisa.ErrOverloaded
	// ErrPoisoned reports a session disabled by a panicking plan; only
	// that session is lost, co-resident models keep serving.
	ErrPoisoned = pisa.ErrPoisoned
	// DrainError reports a Close/Unregister/Swap drain that timed out,
	// naming the sessions still holding work.
	DrainError = serve.DrainError
	// CanaryOptions tunes a mirrored canary swap (traffic fraction,
	// sample floor, decision window, rollback thresholds).
	CanaryOptions = serve.CanaryOptions
	// CanaryMetrics is a live canary's row in the metrics snapshot.
	CanaryMetrics = serve.CanaryMetrics
	// DegradePolicy tunes a gated pipeline's graceful degradation
	// (classifier shed policy plus enter/exit streak hysteresis).
	DegradePolicy = serve.DegradePolicy
	// GatedServedModel is a gated pipeline served with graceful
	// degradation (Server.RegisterGated).
	GatedServedModel = serve.GatedModel
	// GatedServedVerdict is one window's verdict from a
	// GatedServedModel (Class -1 when the classifier was bypassed).
	GatedServedVerdict = serve.GatedVerdict
)

// Fault-injection harness: deterministic failure drills for tests and
// the resilience experiment. Arm a point (optionally keyed to one
// session label), with an optional delay payload and shot budget;
// Reset disarms everything.
var (
	// FaultArm arms an injection point (key "" matches any session;
	// shots ≤ 0 means unlimited).
	FaultArm = faultinject.Arm
	// FaultDisarm disarms one injection point.
	FaultDisarm = faultinject.Disarm
	// FaultReset disarms every injection point.
	FaultReset = faultinject.Reset
)

// Fault-injection points.
const (
	// FaultWorkerStall wedges a scheduler worker (watchdog drill).
	FaultWorkerStall = faultinject.WorkerStall
	// FaultSlowSession adds fixed latency to a session's plan execution.
	FaultSlowSession = faultinject.SlowSession
	// FaultPanicSession makes a session's compiled plan panic.
	FaultPanicSession = faultinject.PanicSession
	// FaultSwapWarmFail fails a swap during off-path warm-up.
	FaultSwapWarmFail = faultinject.SwapWarmFail
	// FaultPoisonCanary flips a canary shadow's observed classes.
	FaultPoisonCanary = faultinject.PoisonCanary
)

// Structured deployment-validation types (also the payload of
// AdmissionError reports).
type (
	// BudgetError reports a deployment over budget: one BudgetExcess
	// per exhausted dimension plus any per-member validation failures.
	BudgetError = core.BudgetError
	// BudgetExcess is one exhausted resource dimension with every
	// model's contribution.
	BudgetExcess = core.BudgetExcess
	// ResourceContribution is one model's share of an exhausted
	// dimension.
	ResourceContribution = core.Contribution
	// ResourceDim names a deployment resource dimension.
	ResourceDim = core.ResourceDim
)

// Deployment resource dimensions reported by BudgetExcess.
const (
	// DimStages is pipeline stages.
	DimStages = core.DimStages
	// DimSRAM is SRAM bits.
	DimSRAM = core.DimSRAM
	// DimTCAM is TCAM bits.
	DimTCAM = core.DimTCAM
)

// Compiler entry points.
var (
	// NewPipeline builds the standard staged compilation pipeline.
	NewPipeline = core.NewPipeline
	// NewRNNPipeline builds the chained-index RNN pipeline.
	NewRNNPipeline = core.NewRNNPipeline
	// BatchJobs packs integer input vectors into engine jobs.
	BatchJobs = core.BatchJobs
	// BatchJobsFromFloats rounds float features into engine jobs with
	// the host inference paths' round-to-even policy.
	BatchJobsFromFloats = core.BatchJobsFromFloats
	// PacketJobs marshals a merged raw-packet trace (Merge) into
	// per-packet engine jobs for an extraction emission (EmitPackets).
	PacketJobs = models.PacketJobs
	// Merge interleaves flows into one time-ordered packet stream.
	Merge = netsim.Merge
	// Lower translates a trained network into primitives (§5).
	Lower = core.Lower
	// Fuse applies Basic Primitive Fusion (§4.3).
	Fuse = core.Fuse
	// DropNonlinear applies Advanced Primitive Fusion ❷.
	DropNonlinear = core.DropNonlinear
	// BuildTables learns fuzzy trees and mapping tables (§4.2, §4.4).
	BuildTables = core.BuildTables
	// Emit lowers compiled tables onto a PISA pipeline.
	Emit = core.Emit
)

// Traffic-generator types: sustained synthetic load for steady-state
// throughput measurement. The committed replay traces are short;
// re-replaying them measures batch-overhead amortisation, not sustained
// throughput. The generator instead holds a churning steady-state flow
// population (finished flows are replaced by fresh arrivals drawn from
// a heavy-tailed size distribution) and emits endless, deterministic,
// allocation-free streams of jobs or raw packets:
//
//	gen := pegasus.NewTrafficJobGen(pegasus.TrafficConfig{Seed: 1}, templates)
//	batch := make([]pegasus.EngineJob, 8192)
//	for deadline.After(time.Now()) {
//	    gen.Fill(batch)          // reuses one arena; no allocation
//	    engine.RunBatch(batch)
//	}
type (
	// TrafficConfig shapes a generator's flow population and packet
	// process (seed, live-flow count, flow-size and gap distributions).
	TrafficConfig = trafficgen.Config
	// TrafficSample is one configurable distribution (fixed, uniform,
	// exponential, bounded Pareto).
	TrafficSample = trafficgen.Sample
	// TrafficDist selects a TrafficSample's shape.
	TrafficDist = trafficgen.Dist
	// TrafficJobGen emits sustained feature-window jobs over template
	// input vectors with churning flow hashes.
	TrafficJobGen = trafficgen.JobGen
	// TrafficPacketGen emits sustained raw packets in a per-packet
	// extraction layout (stats, sequence, payload).
	TrafficPacketGen = trafficgen.PacketGen
	// TrafficLayout selects a TrafficPacketGen's field layout.
	TrafficLayout = trafficgen.Layout
)

// Traffic-generator constructors.
var (
	// NewTrafficJobGen builds a job generator over template inputs.
	NewTrafficJobGen = trafficgen.NewJobGen
	// NewTrafficPacketGen builds a raw-packet generator for a layout.
	NewTrafficPacketGen = trafficgen.NewPacketGen
)

// Traffic-generator distribution shapes and packet layouts.
const (
	// DistFixed always draws the mean.
	DistFixed = trafficgen.DistFixed
	// DistUniform draws uniformly on [0, 2·mean].
	DistUniform = trafficgen.DistUniform
	// DistExp draws exponentially (Poisson arrivals).
	DistExp = trafficgen.DistExp
	// DistPareto draws a bounded Pareto (heavy-tailed flow sizes).
	DistPareto = trafficgen.DistPareto
	// LayoutStats emits [direction, length, timestamp] packets.
	LayoutStats = trafficgen.LayoutStats
	// LayoutSeq emits [length, timestamp] packets.
	LayoutSeq = trafficgen.LayoutSeq
	// LayoutPayload emits payload-byte packets.
	LayoutPayload = trafficgen.LayoutPayload
	// LayoutPayloadIPD emits payload bytes plus a timestamp.
	LayoutPayloadIPD = trafficgen.LayoutPayloadIPD
)

// Tofino2 is the capacity model of the paper's testbed switch.
var Tofino2 = pisa.Tofino2

// SmartNIC is the SmartNIC-style capacity profile (long pipeline, small
// per-stage memory, near-zero TCAM).
var SmartNIC = pisa.SmartNIC

// Evaluate computes macro precision/recall/F1 from label slices.
var Evaluate = metrics.Evaluate

// AUCFromScores computes ROC-AUC for anomaly scores.
var AUCFromScores = metrics.AUCFromScores

// RunExperiment regenerates one of the paper's tables/figures ("all",
// "table2", "table5", "table6", "fig7", "fig8", "fig9acc", "fig9thr"),
// writing the report to w.
func RunExperiment(name string, w io.Writer, cfg ExperimentConfig) error {
	return experiments.NewSuite(cfg).Run(name, w)
}

// ExperimentConfig scales RunExperiment.
type ExperimentConfig = experiments.Config
