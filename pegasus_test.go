package pegasus

import (
	"math/rand"
	"testing"
)

// TestPublicAPIWorkflow exercises the README workflow end to end through
// the public API only: synthesise → train → compile → evaluate → emit.
func TestPublicAPIWorkflow(t *testing.T) {
	ds := PeerRush(DataConfig{FlowsPerClass: 40, PacketsPerFlow: 24, Seed: 1})
	if ds.NumClasses() != 3 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
	train, val, test := ds.Split(7)
	if len(train) == 0 || len(val) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	rng := rand.New(rand.NewSource(1))
	model := NewCNNM(ds.NumClasses(), rng)
	model.Train(train, TrainOpts{Epochs: 20, Seed: 1})
	if err := model.Compile(train); err != nil {
		t.Fatal(err)
	}
	rep, err := model.EvalPegasus(test, ds.NumClasses())
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.5 {
		t.Fatalf("public API CNN-M F1 = %.3f", rep.F1)
	}
	em, err := model.Emit(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	res := em.Prog.Resources()
	if res.Stages > Tofino2.Stages || res.SRAMBits == 0 {
		t.Fatalf("emitted resources look wrong: %+v", res)
	}
}

// TestPublicAPIAnomaly exercises the unsupervised path.
func TestPublicAPIAnomaly(t *testing.T) {
	ds := PeerRush(DataConfig{FlowsPerClass: 30, PacketsPerFlow: 24, Seed: 2})
	train, _, test := ds.Split(3)
	rng := rand.New(rand.NewSource(2))
	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 20, Seed: 2})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	mixed := MixAttack(test, Flood, 5)
	scores, anom, err := ae.ScorePegasus(mixed)
	if err != nil {
		t.Fatal(err)
	}
	auc := AUCFromScores(scores, anom)
	if auc <= 0 || auc > 1 {
		t.Fatalf("AUC out of range: %g", auc)
	}
}
