package pegasus

import (
	"math/rand"
	"strings"
	"testing"
)

// TestPublicAPIWorkflow exercises the README workflow end to end through
// the public API only: synthesise → train → compile → evaluate → emit.
func TestPublicAPIWorkflow(t *testing.T) {
	ds := PeerRush(DataConfig{FlowsPerClass: 40, PacketsPerFlow: 24, Seed: 1})
	if ds.NumClasses() != 3 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
	train, val, test := ds.Split(7)
	if len(train) == 0 || len(val) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	rng := rand.New(rand.NewSource(1))
	model := NewCNNM(ds.NumClasses(), rng)
	model.Train(train, TrainOpts{Epochs: 20, Seed: 1})
	if err := model.Compile(train); err != nil {
		t.Fatal(err)
	}
	rep, err := model.EvalPegasus(test, ds.NumClasses())
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.5 {
		t.Fatalf("public API CNN-M F1 = %.3f", rep.F1)
	}
	em, err := model.Emit(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	res := em.Prog.Resources()
	if res.Stages > Tofino2.Stages || res.SRAMBits == 0 {
		t.Fatalf("emitted resources look wrong: %+v", res)
	}
	// The same compiled tables re-emit through a printing backend.
	p4em, err := Emit(model.Compiled(), EmitOptions{Argmax: true, Target: NewP4Printer(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p4em.Source, "table") || !strings.Contains(p4em.Source, "apply {") {
		t.Fatal("P4 printer produced no source through the public API")
	}
}

// TestPublicAPITargets pins the emission-backend surface: the built-in
// registry and the capacity profiles.
func TestPublicAPITargets(t *testing.T) {
	names := TargetNames()
	for _, want := range []string{"tofino", "tofino-multipipe", "smartnic", "p4"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	if tgt, ok := LookupTarget("smartnic"); !ok || tgt.Capacity() != SmartNIC {
		t.Fatal("smartnic target should carry the SmartNIC capacity profile")
	}
	if DefaultTarget().Capacity() != Tofino2 {
		t.Fatal("default target should be the Tofino 2 single pipe")
	}
}

// TestPublicAPIAnomaly exercises the unsupervised path.
func TestPublicAPIAnomaly(t *testing.T) {
	ds := PeerRush(DataConfig{FlowsPerClass: 30, PacketsPerFlow: 24, Seed: 2})
	train, _, test := ds.Split(3)
	rng := rand.New(rand.NewSource(2))
	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 20, Seed: 2})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	mixed := MixAttack(test, Flood, 5)
	scores, anom, err := ae.ScorePegasus(mixed)
	if err != nil {
		t.Fatal(err)
	}
	auc := AUCFromScores(scores, anom)
	if auc <= 0 || auc > 1 {
		t.Fatalf("AUC out of range: %g", auc)
	}
}
