package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.R != 2 || m.C != 3 || len(m.D) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.R, m.C, len(m.D))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	if r := m.Row(1); r[2] != 7 {
		t.Fatal("Row aliasing broken")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(nil, a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 0) {
		t.Fatalf("MatMul = %v, want %v", got.D, want.D)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on shape mismatch")
		}
	}()
	MatMul(nil, New(2, 3), New(2, 2))
}

func TestMatMulTAndTMatMulAgreeWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 4).Randn(rng, 1)
	b := New(5, 4).Randn(rng, 1)
	got := MatMulT(nil, a, b)
	want := MatMul(nil, a, b.T())
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulT != a × bᵀ")
	}
	c := New(3, 5).Randn(rng, 1)
	got2 := TMatMul(nil, a, c)
	want2 := MatMul(nil, a.T(), c)
	if !Equal(got2, want2, 1e-12) {
		t.Fatal("TMatMul != aᵀ × b")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := a.Clone().Add(b); !Equal(got, FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("Add")
	}
	if got := a.Clone().Sub(b); !Equal(got, FromSlice(1, 3, []float64{-3, -3, -3}), 0) {
		t.Fatal("Sub")
	}
	if got := a.Clone().Mul(b); !Equal(got, FromSlice(1, 3, []float64{4, 10, 18}), 0) {
		t.Fatal("Mul")
	}
	if got := a.Clone().Scale(2); !Equal(got, FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatal("Scale")
	}
	if got := a.Clone().AddScaled(b, 10); !Equal(got, FromSlice(1, 3, []float64{41, 52, 63}), 0) {
		t.Fatal("AddScaled")
	}
}

func TestAddRowVec(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVec(Vec([]float64{10, 20}))
	if !Equal(m, FromSlice(2, 2, []float64{11, 22, 13, 24}), 0) {
		t.Fatalf("AddRowVec = %v", m.D)
	}
}

func TestColStats(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 6})
	sums := m.ColSums()
	if !Equal(sums, Vec([]float64{4, 8}), 0) {
		t.Fatalf("ColSums = %v", sums.D)
	}
	means := m.ColMeans()
	if !Equal(means, Vec([]float64{2, 4}), 0) {
		t.Fatalf("ColMeans = %v", means.D)
	}
	vars := m.ColVars(means)
	if !Equal(vars, Vec([]float64{1, 4}), 0) {
		t.Fatalf("ColVars = %v", vars.D)
	}
}

func TestArgmaxRowAndMaxAbs(t *testing.T) {
	m := FromSlice(2, 3, []float64{0.1, -5, 2, 9, 1, 1})
	if m.ArgmaxRow(0) != 2 || m.ArgmaxRow(1) != 0 {
		t.Fatal("ArgmaxRow")
	}
	if m.MaxAbs() != 9 {
		t.Fatal("MaxAbs")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := New(r, c).Randn(rng, 1)
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivityProperty(t *testing.T) {
	// a×(b+c) == a×b + a×c
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := New(n, n).Randn(rng, 1)
		b := New(n, n).Randn(rng, 1)
		c := New(n, n).Randn(rng, 1)
		left := MatMul(nil, a, b.Clone().Add(c))
		right := MatMul(nil, a, b).Add(MatMul(nil, a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConv1DKnown(t *testing.T) {
	// Single channel, kernel [1,-1] acts as a difference operator.
	in := FromSlice(4, 1, []float64{1, 3, 6, 10})
	k := FromSlice(1, 2, []float64{-1, 1})
	out := Conv1D(in, k, nil, 2, 1)
	want := FromSlice(3, 1, []float64{2, 3, 4})
	if !Equal(out, want, 1e-12) {
		t.Fatalf("Conv1D = %v, want %v", out.D, want.D)
	}
}

func TestConv1DMultiChannelBiasStride(t *testing.T) {
	// 2 input channels, 2 output channels, k=2, stride=2.
	in := FromSlice(4, 2, []float64{
		1, 10,
		2, 20,
		3, 30,
		4, 40,
	})
	// oc0 sums everything; oc1 picks channel 1 of the first step.
	kern := FromSlice(2, 4, []float64{
		1, 1, 1, 1,
		0, 1, 0, 0,
	})
	bias := Vec([]float64{0.5, 0})
	out := Conv1D(in, kern, bias, 2, 2)
	want := FromSlice(2, 2, []float64{33.5, 10, 77.5, 30})
	if !Equal(out, want, 1e-12) {
		t.Fatalf("Conv1D = %v, want %v", out.D, want.D)
	}
}

func TestConv1DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := New(6, 2).Randn(rng, 1)
	kern := New(3, 4).Randn(rng, 1) // cout=3, k=2, cin=2
	bias := New(1, 3).Randn(rng, 1)
	const k, stride = 2, 2
	loss := func(in, kern, bias *Mat) float64 {
		out := Conv1D(in, kern, bias, k, stride)
		s := 0.0
		for _, v := range out.D {
			s += v * v
		}
		return s / 2
	}
	out := Conv1D(in, kern, bias, k, stride)
	gradOut := out.Clone() // dL/dout = out for L = ||out||²/2
	gi, gk, gb := Conv1DBackward(in, kern, gradOut, k, stride)

	const eps = 1e-6
	check := func(name string, m, grad *Mat) {
		t.Helper()
		for i := range m.D {
			orig := m.D[i]
			m.D[i] = orig + eps
			lp := loss(in, kern, bias)
			m.D[i] = orig - eps
			lm := loss(in, kern, bias)
			m.D[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad.D[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, grad.D[i], num)
			}
		}
	}
	check("input", in, gi)
	check("kernel", kern, gk)
	check("bias", bias, gb)
}

func TestMaxPool1D(t *testing.T) {
	in := FromSlice(4, 2, []float64{
		1, 8,
		5, 2,
		3, 9,
		7, 4,
	})
	out, arg := MaxPool1D(in, 2, 2)
	want := FromSlice(2, 2, []float64{5, 8, 7, 9})
	if !Equal(out, want, 0) {
		t.Fatalf("MaxPool1D = %v, want %v", out.D, want.D)
	}
	if arg[0][0] != 1 || arg[0][1] != 0 || arg[1][0] != 3 || arg[1][1] != 2 {
		t.Fatalf("MaxPool1D argmax = %v", arg)
	}
}

func TestGlobalMaxPool(t *testing.T) {
	in := FromSlice(3, 2, []float64{1, 9, 5, 2, 3, 4})
	out, arg := GlobalMaxPool(in)
	if !Equal(out, Vec([]float64{5, 9}), 0) {
		t.Fatalf("GlobalMaxPool = %v", out.D)
	}
	if arg[0] != 1 || arg[1] != 0 {
		t.Fatalf("GlobalMaxPool arg = %v", arg)
	}
	empty, _ := GlobalMaxPool(New(0, 2))
	if empty.R != 1 || empty.C != 2 {
		t.Fatal("GlobalMaxPool empty shape")
	}
}

func TestAvgPool1D(t *testing.T) {
	in := FromSlice(4, 1, []float64{1, 3, 5, 7})
	out := AvgPool1D(in, 2, 2)
	if !Equal(out, FromSlice(2, 1, []float64{2, 6}), 1e-12) {
		t.Fatalf("AvgPool1D = %v", out.D)
	}
}

func TestPoolConvPanicOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { Conv1D(New(3, 1), New(1, 1), nil, 0, 1) },
		func() { MaxPool1D(New(3, 1), 0, 1) },
		func() { AvgPool1D(New(3, 1), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}
