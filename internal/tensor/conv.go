package tensor

import "fmt"

// Conv1D performs a 1-D valid (no padding) cross-correlation over a
// multi-channel sequence, the core of the paper's textcnn models.
//
//	in:      T×Cin      (time steps × input channels)
//	kernels: Cout×(K*Cin)  row k = flattened kernel for output channel k,
//	         laid out time-major: [t0c0, t0c1, ..., t1c0, ...]
//	bias:    1×Cout (may be nil)
//	stride:  >= 1
//
// Returns Tout×Cout where Tout = (T-K)/stride + 1.
func Conv1D(in, kernels, bias *Mat, k, stride int) *Mat {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("tensor: Conv1D kernel=%d stride=%d", k, stride))
	}
	cin := in.C
	if kernels.C != k*cin {
		panic(fmt.Sprintf("tensor: Conv1D kernels %dx%d want cols %d*%d", kernels.R, kernels.C, k, cin))
	}
	cout := kernels.R
	tout := (in.R-k)/stride + 1
	if tout < 0 {
		tout = 0
	}
	out := New(tout, cout)
	for t := 0; t < tout; t++ {
		start := t * stride
		orow := out.Row(t)
		for oc := 0; oc < cout; oc++ {
			krow := kernels.Row(oc)
			s := 0.0
			for dt := 0; dt < k; dt++ {
				irow := in.Row(start + dt)
				base := dt * cin
				for c := 0; c < cin; c++ {
					s += irow[c] * krow[base+c]
				}
			}
			if bias != nil {
				s += bias.D[oc]
			}
			orow[oc] = s
		}
	}
	return out
}

// Conv1DBackward computes the gradients of a Conv1D call. gradOut is
// Tout×Cout. It returns (gradIn T×Cin, gradKernels Cout×K*Cin,
// gradBias 1×Cout).
func Conv1DBackward(in, kernels, gradOut *Mat, k, stride int) (gradIn, gradK, gradB *Mat) {
	cin := in.C
	cout := kernels.R
	gradIn = New(in.R, in.C)
	gradK = New(kernels.R, kernels.C)
	gradB = New(1, cout)
	for t := 0; t < gradOut.R; t++ {
		start := t * stride
		grow := gradOut.Row(t)
		for oc := 0; oc < cout; oc++ {
			g := grow[oc]
			if g == 0 {
				continue
			}
			gradB.D[oc] += g
			krow := kernels.Row(oc)
			gkrow := gradK.Row(oc)
			for dt := 0; dt < k; dt++ {
				irow := in.Row(start + dt)
				girow := gradIn.Row(start + dt)
				base := dt * cin
				for c := 0; c < cin; c++ {
					gkrow[base+c] += g * irow[c]
					girow[c] += g * krow[base+c]
				}
			}
		}
	}
	return gradIn, gradK, gradB
}

// MaxPool1D applies per-channel max pooling with window w and stride s
// over a T×C sequence, returning (pooled Tout×C, argmax indices Tout×C
// holding the source row of each maximum, for backprop).
func MaxPool1D(in *Mat, w, s int) (*Mat, [][]int) {
	if w <= 0 || s <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool1D w=%d s=%d", w, s))
	}
	tout := (in.R-w)/s + 1
	if tout < 0 {
		tout = 0
	}
	out := New(tout, in.C)
	arg := make([][]int, tout)
	for t := 0; t < tout; t++ {
		arg[t] = make([]int, in.C)
		start := t * s
		orow := out.Row(t)
		for c := 0; c < in.C; c++ {
			best := in.At(start, c)
			bi := start
			for dt := 1; dt < w; dt++ {
				if v := in.At(start+dt, c); v > best {
					best, bi = v, start+dt
				}
			}
			orow[c] = best
			arg[t][c] = bi
		}
	}
	return out, arg
}

// GlobalMaxPool returns the per-channel maximum over all time steps of a
// T×C sequence as a 1×C vector plus argmax rows.
func GlobalMaxPool(in *Mat) (*Mat, []int) {
	if in.R == 0 {
		return New(1, in.C), make([]int, in.C)
	}
	out := New(1, in.C)
	arg := make([]int, in.C)
	copy(out.D, in.Row(0))
	for t := 1; t < in.R; t++ {
		row := in.Row(t)
		for c, v := range row {
			if v > out.D[c] {
				out.D[c] = v
				arg[c] = t
			}
		}
	}
	return out, arg
}

// AvgPool1D applies per-channel average pooling with window w and stride
// s over a T×C sequence.
func AvgPool1D(in *Mat, w, s int) *Mat {
	if w <= 0 || s <= 0 {
		panic(fmt.Sprintf("tensor: AvgPool1D w=%d s=%d", w, s))
	}
	tout := (in.R-w)/s + 1
	if tout < 0 {
		tout = 0
	}
	out := New(tout, in.C)
	inv := 1 / float64(w)
	for t := 0; t < tout; t++ {
		start := t * s
		orow := out.Row(t)
		for dt := 0; dt < w; dt++ {
			irow := in.Row(start + dt)
			for c, v := range irow {
				orow[c] += v * inv
			}
		}
	}
	return out
}
