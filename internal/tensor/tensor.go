// Package tensor provides the dense linear-algebra substrate for training
// and full-precision inference of the Pegasus model zoo. It is a minimal,
// allocation-conscious float64 matrix library: everything the paper's DL
// layers need (MatMul, Conv1d, pooling, element-wise transforms) and
// nothing more.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix. A vector is a 1×C or R×1 Mat.
type Mat struct {
	R, C int
	D    []float64
}

// New returns a zeroed R×C matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", r, c))
	}
	return &Mat{R: r, C: c, D: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an R×C matrix.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", r, c, r*c, len(data)))
	}
	return &Mat{R: r, C: c, D: data}
}

// Vec returns a 1×n row vector wrapping data.
func Vec(data []float64) *Mat { return FromSlice(1, len(data), data) }

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.D[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.D[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.D[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	n := New(m.R, m.C)
	copy(n.D, m.D)
	return n
}

// Zero sets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.D {
		m.D[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Mat) Fill(v float64) {
	for i := range m.D {
		m.D[i] = v
	}
}

// Randn fills m with N(0, std) values drawn from rng.
func (m *Mat) Randn(rng *rand.Rand, std float64) *Mat {
	for i := range m.D {
		m.D[i] = rng.NormFloat64() * std
	}
	return m
}

// MatMul computes dst = a × b, allocating dst if nil. Panics on shape
// mismatch. dst must not alias a or b.
func MatMul(dst, a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", a.R, a.C, b.R, b.C))
	}
	if dst == nil {
		dst = New(a.R, b.C)
	} else {
		if dst.R != a.R || dst.C != b.C {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulT computes dst = a × bᵀ, allocating dst if nil.
func MatMulT(dst, a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d × (%dx%d)ᵀ", a.R, a.C, b.R, b.C))
	}
	if dst == nil {
		dst = New(a.R, b.R)
	} else if dst.R != a.R || dst.C != b.R {
		panic("tensor: MatMulT dst shape mismatch")
	}
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			s := 0.0
			for k := range arow {
				s += arow[k] * brow[k]
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// TMatMul computes dst = aᵀ × b, allocating dst if nil.
func TMatMul(dst, a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: TMatMul (%dx%d)ᵀ × %dx%d", a.R, a.C, b.R, b.C))
	}
	if dst == nil {
		dst = New(a.C, b.C)
	} else {
		if dst.R != a.C || dst.C != b.C {
			panic("tensor: TMatMul dst shape mismatch")
		}
		dst.Zero()
	}
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// Add computes m += other element-wise.
func (m *Mat) Add(other *Mat) *Mat {
	mustSameShape("Add", m, other)
	for i, v := range other.D {
		m.D[i] += v
	}
	return m
}

// Sub computes m -= other element-wise.
func (m *Mat) Sub(other *Mat) *Mat {
	mustSameShape("Sub", m, other)
	for i, v := range other.D {
		m.D[i] -= v
	}
	return m
}

// Mul computes m *= other element-wise (Hadamard product).
func (m *Mat) Mul(other *Mat) *Mat {
	mustSameShape("Mul", m, other)
	for i, v := range other.D {
		m.D[i] *= v
	}
	return m
}

// Scale multiplies every element by s.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.D {
		m.D[i] *= s
	}
	return m
}

// AddScaled computes m += s·other.
func (m *Mat) AddScaled(other *Mat, s float64) *Mat {
	mustSameShape("AddScaled", m, other)
	for i, v := range other.D {
		m.D[i] += s * v
	}
	return m
}

// AddRowVec adds a 1×C row vector to every row of m.
func (m *Mat) AddRowVec(v *Mat) *Mat {
	if v.R != 1 || v.C != m.C {
		panic(fmt.Sprintf("tensor: AddRowVec %dx%d += %dx%d", m.R, m.C, v.R, v.C))
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, b := range v.D {
			row[j] += b
		}
	}
	return m
}

// Apply replaces each element x with f(x).
func (m *Mat) Apply(f func(float64) float64) *Mat {
	for i, v := range m.D {
		m.D[i] = f(v)
	}
	return m
}

// ColSums returns the 1×C vector of column sums.
func (m *Mat) ColSums() *Mat {
	out := New(1, m.C)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.D[j] += v
		}
	}
	return out
}

// ColMeans returns the 1×C vector of column means.
func (m *Mat) ColMeans() *Mat {
	out := m.ColSums()
	if m.R > 0 {
		out.Scale(1 / float64(m.R))
	}
	return out
}

// ColVars returns the 1×C vector of biased column variances given the
// column means.
func (m *Mat) ColVars(means *Mat) *Mat {
	out := New(1, m.C)
	if m.R == 0 {
		return out
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means.D[j]
			out.D[j] += d * d
		}
	}
	out.Scale(1 / float64(m.R))
	return out
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ArgmaxRow returns the index of the maximum element of row i.
func (m *Mat) ArgmaxRow(i int) int {
	row := m.Row(i)
	best, bi := math.Inf(-1), 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}

// MaxAbs returns the maximum absolute element value (0 for empty).
func (m *Mat) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.D {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Equal reports whether the two matrices have the same shape and all
// elements within tol of each other.
func Equal(a, b *Mat, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.D {
		if math.Abs(a.D[i]-b.D[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameShape(op string, a, b *Mat) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}
