package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/faultinject"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// benignGateEmission builds a gate that passes everything: out0 = 0,
// so every window classifies benign and forwards to the classifier.
func benignGateEmission(t *testing.T, name string) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	in0 := l.MustAdd("in0", 16)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	prog.Place(0, &pisa.Table{Name: "t_gate", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{{Kind: pisa.OpAndImm, Dst: out0, A: in0, Imm: 0}}})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
}

// runStep drives the same batch through both models and asserts the
// served classifications are identical, returning the snapshot of
// classes (detached from the engines' reused buffers).
func runStep(t *testing.T, step int, prod, ctrl *Model, jobs []pisa.Job) []int {
	t.Helper()
	rp := prod.Run(jobs)
	rc := ctrl.Run(jobs)
	classes := make([]int, len(jobs))
	for i := range jobs {
		if rp[i].Class != rc[i].Class || rp[i].Outs[0] != rc[i].Outs[0] {
			t.Fatalf("step %d job %d: prod (class %d, out %d) diverged from control (class %d, out %d)",
				step, i, rp[i].Class, rp[i].Outs[0], rc[i].Class, rc[i].Outs[0])
		}
		classes[i] = rp[i].Class
	}
	return classes
}

// TestCanaryRollbackBitIdentical is the acceptance test for canary
// auto-rollback: a poisoned canary swap must roll back, and the
// incumbent's served classifications AND flow-state registers must be
// bit-identical to a control model that never swapped at all.
func TestCanaryRollbackBitIdentical(t *testing.T) {
	s := newTestServer(t)
	emProd := statefulEmission(t, "prod", 1000, 2)
	emCtrl := statefulEmission(t, "ctrl", 1000, 2)
	prod, err := s.Register("prod", emProd, 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := s.Register("ctrl", emCtrl, 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-swap traffic establishes flow state on both.
	for step := 0; step < 5; step++ {
		runStep(t, step, prod, ctrl, flowJobs(16, int32(step*13+1)))
	}

	faultinject.Arm(faultinject.PoisonCanary, "prod", 0, 0) // unlimited
	defer faultinject.Reset()

	type swapRes struct {
		rep *SwapReport
		err error
	}
	ch := make(chan swapRes, 1)
	go func() {
		rep, err := prod.Swap(statefulEmission(t, "prodv2", 1000, 2), SwapOptions{
			MigrateState: true,
			Canary:       &CanaryOptions{Fraction: 1, MinSamples: 48, Window: -1},
		})
		ch <- swapRes{rep, err}
	}()

	// Keep traffic flowing until the canary verdict lands; every step
	// must stay identical to the never-swapped control.
	var res swapRes
	step := 5
drive:
	for ; ; step++ {
		if step > 2000 {
			t.Fatal("canary never reached a verdict")
		}
		runStep(t, step, prod, ctrl, flowJobs(16, int32(step*13+1)))
		select {
		case res = <-ch:
			break drive
		default:
		}
	}
	if res.err != nil {
		t.Fatalf("canary swap returned error: %v", res.err)
	}
	rep := res.rep
	if !rep.Canary || !rep.RolledBack {
		t.Fatalf("poisoned canary did not roll back: %+v", rep)
	}
	if !strings.Contains(rep.RollbackReason, "disagreement") {
		t.Fatalf("rollback reason %q does not name the disagreement gate", rep.RollbackReason)
	}
	if rep.To != 1 || prod.Version() != 1 {
		t.Fatalf("rollback left version %d (report To=%d), want incumbent v1", prod.Version(), rep.To)
	}
	if rep.CanarySamples < 48 {
		t.Fatalf("decision on %d samples, want >= MinSamples 48", rep.CanarySamples)
	}

	snap := s.Snapshot()
	if snap.Rollbacks != 1 || snap.Swaps != 0 {
		t.Fatalf("snapshot rollbacks=%d swaps=%d, want 1/0", snap.Rollbacks, snap.Swaps)
	}
	for _, mm := range snap.Models {
		if mm.Name == "prod" && mm.Canary != nil {
			t.Fatalf("canary still visible in metrics after rollback: %+v", mm.Canary)
		}
	}

	// Post-rollback traffic must continue bit-identically...
	for ; step < 2020; step++ {
		runStep(t, step, prod, ctrl, flowJobs(16, int32(step*13+1)))
	}
	// ...and the incumbent's flow-state registers must equal the
	// control's cell for cell: the shadow never carried an
	// authoritative packet.
	rp, rc := emProd.Prog.Registers[0], emCtrl.Prog.Registers[0]
	for i := 0; i < rp.Size; i++ {
		if rp.Get(i) != rc.Get(i) {
			t.Fatalf("register cell %d: prod %d != control %d after rollback", i, rp.Get(i), rc.Get(i))
		}
	}
}

// TestCanaryPromote covers the healthy path: a candidate that agrees
// with the incumbent is auto-promoted at a quiescent point and the
// model keeps serving the same answers on the new version.
func TestCanaryPromote(t *testing.T) {
	s := newTestServer(t)
	prod, err := s.Register("web", statelessEmission(t, "web", 7, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := s.Register("webctrl", statelessEmission(t, "webctrl", 7, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}

	type swapRes struct {
		rep *SwapReport
		err error
	}
	ch := make(chan swapRes, 1)
	go func() {
		rep, err := prod.Swap(statelessEmission(t, "webv2", 7, 1), SwapOptions{
			Canary: &CanaryOptions{Fraction: 1, MinSamples: 32, Window: -1},
		})
		ch <- swapRes{rep, err}
	}()

	var res swapRes
	step := 0
drive:
	for ; ; step++ {
		if step > 2000 {
			t.Fatal("canary never reached a verdict")
		}
		runStep(t, step, prod, ctrl, flowJobs(16, int32(step*7+3)))
		select {
		case res = <-ch:
			break drive
		default:
		}
	}
	if res.err != nil {
		t.Fatalf("canary swap returned error: %v", res.err)
	}
	rep := res.rep
	if !rep.Canary || rep.RolledBack {
		t.Fatalf("healthy canary did not promote: %+v", rep)
	}
	if rep.To != 2 || prod.Version() != 2 {
		t.Fatalf("promotion left version %d (report To=%d), want 2", prod.Version(), rep.To)
	}
	if rep.Disagreement != 0 {
		t.Fatalf("identical programs disagreed at rate %v", rep.Disagreement)
	}
	if snap := s.Snapshot(); snap.Swaps != 1 || snap.Rollbacks != 0 {
		t.Fatalf("snapshot swaps=%d rollbacks=%d, want 1/0", snap.Swaps, snap.Rollbacks)
	}
	// The promoted version serves the same function.
	for ; step < 2010; step++ {
		runStep(t, step, prod, ctrl, flowJobs(16, int32(step*7+3)))
	}
}

// TestSwapWarmFailInjection asserts a warm-phase failure rejects the
// swap cleanly: the incumbent keeps serving and a later swap succeeds.
func TestSwapWarmFailInjection(t *testing.T) {
	s := newTestServer(t)
	m, err := s.Register("wf", statelessEmission(t, "wf", 1, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SwapWarmFail, "wf", 0, 1)
	defer faultinject.Reset()

	if _, err := m.Swap(statelessEmission(t, "wfv2", 2, 1), SwapOptions{}); err == nil {
		t.Fatal("swap succeeded despite injected warm failure")
	} else if !strings.Contains(err.Error(), "warm failed") {
		t.Fatalf("warm failure error %q does not name the phase", err)
	}
	if m.Version() != 1 {
		t.Fatalf("failed swap left version %d, want 1", m.Version())
	}
	if got := m.Run(flowJobs(8, 1)); len(got) != 8 {
		t.Fatalf("incumbent stopped serving after failed swap: %d results", len(got))
	}
	// The one-shot fault is consumed; the retry goes through.
	rep, err := m.Swap(statelessEmission(t, "wfv3", 3, 1), SwapOptions{})
	if err != nil {
		t.Fatalf("retry swap failed: %v", err)
	}
	if rep.To != 2 || m.Version() != 2 {
		t.Fatalf("retry swap landed on version %d, want 2", m.Version())
	}
}

// TestGatedDegradeAndRecover walks the full degrade hysteresis: a
// wedged pool seeds the classifier's wait EWMA over the shed bound, the
// pipeline flips to gate-only service after EnterStreak sheds, bypassed
// batches are counted, and once the classifier's recent wait decays a
// probe restores full service.
func TestGatedDegradeAndRecover(t *testing.T) {
	s := NewServer(Options{Name: "degrade", Cap: pisa.Tofino2.Pipes(2), Budget: 1})
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	g, err := s.RegisterGated("gm", benignGateEmission(t, "gmgate"), statelessEmission(t, "gmcls", 5, 1),
		1, SLO{}, DegradePolicy{Shed: pisa.ShedPolicy{MaxWait: time.Millisecond},
			EnterStreak: 2, ExitStreak: 1, ProbeEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	hog, err := s.Register("hog", statelessEmission(t, "hog", 0, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	cls := g.Classifier()

	// Seed overload: a slow hog task wedges the single worker while a
	// classifier batch queues behind it, driving the classifier's
	// recent-wait EWMA well over the 1ms shed bound.
	faultinject.Arm(faultinject.SlowSession, "hog@v1", 40*time.Millisecond, 1)
	defer faultinject.Reset()
	ht := hog.Submit(flowJobs(1, 2))
	time.Sleep(3 * time.Millisecond)
	cls.Run(flowJobs(6, 3)) // queues behind the wedged hog task
	ht.Wait()
	if rw := clsRecentWait(cls); rw <= time.Millisecond {
		t.Fatalf("seeded classifier recent wait %v, want > 1ms", rw)
	}

	// Two consecutive shed classifier batches flip the pipeline.
	for i := 0; i < 2; i++ {
		out, err := g.Run(nil, flowJobs(6, int32(10+i)))
		if err != nil {
			t.Fatalf("gated run %d: %v", i, err)
		}
		for j, v := range out {
			if v.Anomalous || v.Class != -1 {
				t.Fatalf("shed batch %d job %d: verdict %+v, want benign gate-only", i, j, v)
			}
		}
	}
	if !g.Degraded() {
		t.Fatal("pipeline not degraded after EnterStreak shed batches")
	}

	// Degraded batches bypass the classifier outright (probe every 3rd).
	for i := 0; i < 2; i++ {
		out, err := g.Run(nil, flowJobs(6, int32(20+i)))
		if err != nil {
			t.Fatalf("degraded run %d: %v", i, err)
		}
		for j, v := range out {
			if v.Class != -1 {
				t.Fatalf("degraded batch %d job %d reached the classifier: %+v", i, j, v)
			}
		}
	}
	snap := s.Snapshot()
	var cm ModelMetrics
	for _, mm := range snap.Models {
		if mm.Name == "gm-cls" {
			cm = mm
		}
	}
	if !cm.Degraded || cm.DegradedBatches < 2 || cm.ShedBatches < 2 || cm.Shed < 12 {
		t.Fatalf("classifier metrics %+v: want degraded with >=2 degraded batches, >=2 shed batches, >=12 shed jobs", cm)
	}

	// Recovery: served tasks on an idle pool decay the EWMA under the
	// bound; the next probe batch then restores full service.
	for i := 0; i < 200 && clsRecentWait(cls) >= 500*time.Microsecond; i++ {
		cls.Run(flowJobs(6, int32(40+i)))
	}
	if rw := clsRecentWait(cls); rw >= time.Millisecond {
		t.Fatalf("classifier recent wait %v failed to decay under the bound", rw)
	}
	recovered := false
	for i := 0; i < 10 && !recovered; i++ {
		if _, err := g.Run(nil, flowJobs(6, int32(60+i))); err != nil {
			t.Fatalf("recovery run %d: %v", i, err)
		}
		recovered = !g.Degraded()
	}
	if !recovered {
		t.Fatal("pipeline never exited degraded mode after the classifier recovered")
	}
	// Full service again: every benign window reaches the classifier
	// (out = in + 5, the classifier bias).
	jobs := flowJobs(6, 99)
	out, err := g.Run(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range out {
		if want := int(jobs[j].In[0] + 5); v.Class != want {
			t.Fatalf("recovered pipeline job %d: class %d, want %d", j, v.Class, want)
		}
	}
}

// clsRecentWait reads a model's live engine wait EWMA (test helper).
func clsRecentWait(m *Model) time.Duration {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.eng.RecentWait()
}

// TestCloseDrainTimeout asserts Close is bounded when a submitter is
// wedged mid-batch: the stuck session is named in a *DrainError instead
// of hanging the control plane.
func TestCloseDrainTimeout(t *testing.T) {
	s := NewServer(Options{Name: "drain", Cap: pisa.Tofino2.Pipes(2), Budget: 2,
		DrainTimeout: 30 * time.Millisecond, WatchdogThreshold: -1})
	m, err := s.Register("stuck", statelessEmission(t, "stuck", 0, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SlowSession, "stuck@v1", 300*time.Millisecond, 1)
	defer faultinject.Reset()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(flowJobs(1, 1)) // wedged ~300ms, holding the model's runMu
	}()
	time.Sleep(10 * time.Millisecond)

	err = s.Close()
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("close with wedged session returned %v, want *DrainError", err)
	}
	if de.Op != "close" || len(de.Sessions) != 1 || de.Sessions[0] != "stuck@v1" {
		t.Fatalf("drain error %+v, want op=close sessions=[stuck@v1]", de)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
	<-done // the wedged batch completes; the engine was leaked on purpose
}

// TestSwapDrainTimeout asserts a swap cutover cannot hang behind a
// wedged incumbent: the warmed version is discarded and the incumbent
// keeps serving.
func TestSwapDrainTimeout(t *testing.T) {
	s := NewServer(Options{Name: "swapdrain", Cap: pisa.Tofino2.Pipes(2), Budget: 2,
		DrainTimeout: 30 * time.Millisecond, WatchdogThreshold: -1})
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	m, err := s.Register("sd", statelessEmission(t, "sd", 1, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.SlowSession, "sd@v1", 200*time.Millisecond, 1)
	defer faultinject.Reset()

	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(flowJobs(1, 1))
	}()
	time.Sleep(10 * time.Millisecond)

	_, err = m.Swap(statelessEmission(t, "sdv2", 2, 1), SwapOptions{})
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("swap against wedged incumbent returned %v, want *DrainError", err)
	}
	if de.Op != "swap" || len(de.Sessions) != 1 || de.Sessions[0] != "sd@v1" {
		t.Fatalf("drain error %+v, want op=swap sessions=[sd@v1]", de)
	}
	<-done
	if m.Version() != 1 {
		t.Fatalf("aborted swap left version %d, want 1", m.Version())
	}
	// The incumbent still serves (out = in + 1, the v1 bias).
	res := m.Run(flowJobs(4, 5))
	for i, r := range res {
		want := (5+int32(i)*37)%1000 + 1
		if r.Outs[0] != want {
			t.Fatalf("post-abort job %d: out %d, want %d", i, r.Outs[0], want)
		}
	}
}

// TestSLOAdmissionOvercommit asserts Register rejects a candidate whose
// declared target share overcommits the pool, with a structured reason.
func TestSLOAdmissionOvercommit(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Register("a", statelessEmission(t, "a", 0, 1), 1, SLO{TargetShare: 0.6}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Register("b", statelessEmission(t, "b", 0, 1), 1, SLO{TargetShare: 0.5})
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("overcommitted registration returned %v, want *AdmissionError", err)
	}
	if ae.Report != nil || !strings.Contains(ae.Reason, "overcommit") {
		t.Fatalf("admission error %+v: want nil capacity report and an overcommit reason", ae)
	}
	if snap := s.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("snapshot rejected=%d, want 1", snap.Rejected)
	}
	// An exact partition admits.
	if _, err := s.Register("b", statelessEmission(t, "b2", 0, 1), 1, SLO{TargetShare: 0.4}); err != nil {
		t.Fatalf("feasible share rejected: %v", err)
	}
}

// TestConcurrentMetricsScrapes hammers the metrics endpoint while
// traffic, live swaps and the tuner mutate the deployment, asserting —
// under the race detector — that every scrape decodes and is internally
// consistent (no torn version/weight pairs, wait accounting never
// behind the task count).
func TestConcurrentMetricsScrapes(t *testing.T) {
	s := newTestServer(t)
	names := []string{"m0", "m1", "m2"}
	models := make([]*Model, len(names))
	for i, n := range names {
		m, err := s.Register(n, statelessEmission(t, n, int32(i), 1), 1, SLO{TargetShare: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Traffic on every model.
	for i, m := range models {
		wg.Add(1)
		go func(i int, m *Model) {
			defer wg.Done()
			for k := 0; !stop.Load(); k++ {
				m.Run(flowJobs(32, int32(i*100+k)))
				time.Sleep(time.Millisecond)
			}
		}(i, m)
	}
	// Live swaps on m0.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 2; k <= 6; k++ {
			if _, err := models[0].Swap(statelessEmission(t, fmt.Sprintf("m0v%d", k), 0, 1), SwapOptions{}); err != nil {
				t.Errorf("swap %d: %v", k, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Tuner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.TuneOnce()
			time.Sleep(time.Millisecond)
		}
	}()
	// Scrapers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVer := map[string]int{}
			for !stop.Load() {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				var snap Snapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Errorf("scrape returned invalid JSON: %v", err)
					return
				}
				for _, mm := range snap.Models {
					if mm.Version < 1 || mm.Weight < 1 {
						t.Errorf("model %q: torn version/weight (%d, %d)", mm.Name, mm.Version, mm.Weight)
						return
					}
					if mm.Version < lastVer[mm.Name] {
						t.Errorf("model %q: version went backwards %d -> %d", mm.Name, lastVer[mm.Name], mm.Version)
						return
					}
					lastVer[mm.Name] = mm.Version
					var hist uint64
					for _, c := range mm.WaitHist {
						hist += c
					}
					if hist < mm.Tasks {
						t.Errorf("model %q: ΣWaitHist %d behind tasks %d", mm.Name, hist, mm.Tasks)
						return
					}
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if v := models[0].Version(); v != 6 {
		t.Fatalf("m0 ended on version %d, want 6 after 5 swaps", v)
	}
}
