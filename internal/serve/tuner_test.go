package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// TestTunerMaxWaitDoubles pins the latency arm: a model whose observed
// queue wait exceeds its MaxWait target has its weight doubled on the
// next pass. Sessions on a shared scheduler always queue, so any
// served task records a positive wait — a 1ns target is always
// violated.
func TestTunerMaxWaitDoubles(t *testing.T) {
	s := newTestServer(t)
	m, err := s.Register("m", statelessEmission(t, "m", 0, 1), 3, SLO{MaxWait: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(flowJobs(256, 1))
	decisions := s.TuneOnce()
	if len(decisions) != 1 {
		t.Fatalf("decisions: %+v", decisions)
	}
	d := decisions[0]
	if d.Model != "m" || d.OldWeight != 3 || d.NewWeight != 6 {
		t.Fatalf("max-wait violation decision: %+v", d)
	}
	if m.Weight() != 6 {
		t.Fatalf("weight %d after tune, want 6", m.Weight())
	}
	// An idle window produces no decision (no demand signal).
	if decisions := s.TuneOnce(); len(decisions) != 0 {
		t.Fatalf("idle pass produced decisions: %+v", decisions)
	}
}

// TestTunerConvergesOnShares checks the occupancy feedback loop
// against the scheduler's actual arbitration behaviour. Weights shift
// busy-time shares only when a worker repeatedly CHOOSES among several
// backlogged sessions — two closed-loop sessions just alternate
// non-preemptively regardless of weight. So: one prioritised model
// contends with four equal siblings on a small pool; with equal
// weights it captures ~1/5 of the busy time, and the tuner must raise
// its weight until its observed window share approaches the declared
// 0.5 target (the alternation ceiling for one session is ~0.5 — a
// high-weight session is served whenever it has a task queued, but a
// sibling's task runs during its resubmission gap).
func TestTunerConvergesOnShares(t *testing.T) {
	s := NewServer(Options{Name: "tune", Cap: pisa.Tofino2.Pipes(2), Budget: 2})
	defer s.Close()
	hi, err := s.Register("hi", statelessEmission(t, "hi", 0, 4), 1, SLO{TargetShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	siblings := make([]*Model, 4)
	for i := range siblings {
		name := fmt.Sprintf("lo%d", i)
		siblings[i], err = s.Register(name, statelessEmission(t, name, 0, 4), 1, SLO{})
		if err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, m := range append([]*Model{hi}, siblings...) {
		wg.Add(1)
		go func(m *Model) {
			defer wg.Done()
			jobs := flowJobs(256, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Run(jobs)
			}
		}(m)
	}
	// Iterate the loop; stop early once hi's per-window busy share
	// left its fair-share neighbourhood and approached the target.
	var lastShare float64
	prevBusy := map[string]time.Duration{}
	converged := false
	for round := 0; round < 60 && !converged; round++ {
		time.Sleep(20 * time.Millisecond)
		s.TuneOnce()
		var total, hiDelta time.Duration
		for _, m := range append([]*Model{hi}, siblings...) {
			busy := m.Stats().Busy
			d := busy - prevBusy[m.Name()]
			prevBusy[m.Name()] = busy
			total += d
			if m == hi {
				hiDelta = d
			}
		}
		if total > 0 {
			lastShare = float64(hiDelta) / float64(total)
		}
		if hi.Weight() > 1 && lastShare > 0.35 {
			converged = true
		}
	}
	close(stop)
	wg.Wait()
	if !converged {
		t.Fatalf("tuner did not converge: hi weight %d, last window share %.2f (fair share 0.2, target 0.5)",
			hi.Weight(), lastShare)
	}
	for _, m := range siblings {
		if m.Weight() != 1 {
			t.Fatalf("sibling %s weight %d changed without an SLO", m.Name(), m.Weight())
		}
	}
}

// TestTunerBackground covers the StartTuner/StopTuner lifecycle under
// load (exercised with -race in CI).
func TestTunerBackground(t *testing.T) {
	s := newTestServer(t)
	m, err := s.Register("m", statelessEmission(t, "m", 0, 1), 1, SLO{MaxWait: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	s.StartTuner(5 * time.Millisecond)
	s.StartTuner(5 * time.Millisecond) // idempotent
	deadline := time.After(2 * time.Second)
	for m.Weight() == 1 {
		select {
		case <-deadline:
			t.Fatal("background tuner never adjusted the weight")
		default:
		}
		m.Run(flowJobs(256, 1))
	}
	s.StopTuner()
	s.StopTuner() // idempotent
	w := m.Weight()
	for i := 0; i < 3; i++ {
		m.Run(flowJobs(256, 1))
	}
	time.Sleep(20 * time.Millisecond)
	if m.Weight() != w {
		t.Fatalf("weight moved after StopTuner: %d -> %d", w, m.Weight())
	}
}
