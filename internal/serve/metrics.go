package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// ModelMetrics is one model's serving counters in a Snapshot.
type ModelMetrics struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Weight  int    `json:"weight"`
	SLO     SLO    `json:"slo"`
	Tasks   uint64 `json:"tasks"`
	Packets uint64 `json:"packets"`
	Fires   uint64 `json:"fires"`
	// RegRMWs counts register read-modify-writes executed by this
	// model's sessions. A shared-extraction subscriber reports 0 — the
	// machine pays the per-packet stateful work once for all of them.
	RegRMWs uint64 `json:"reg_rmws,omitempty"`
	// SharedMachine names the physical extraction machine this model
	// subscribes to (empty for private emissions).
	SharedMachine string `json:"shared_machine,omitempty"`
	// Shed counts packets rejected by the model's shed policy (or
	// missed deadlines) across ShedBatches submissions; shed work never
	// queued and never touched flow state.
	Shed        uint64 `json:"shed,omitempty"`
	ShedBatches uint64 `json:"shed_batches,omitempty"`
	// Degraded marks a gated pipeline's classifier stage currently
	// bypassed under overload; DegradedBatches counts batches served on
	// the gate verdict alone.
	Degraded        bool   `json:"degraded,omitempty"`
	DegradedBatches uint64 `json:"degraded_batches,omitempty"`
	// Canary describes an in-flight canary swap shadowing this model
	// (nil when none).
	Canary *CanaryMetrics `json:"canary,omitempty"`
	// BusySeconds is the cumulative worker time spent on this model;
	// Occupancy is its share of all models' busy time (0 when idle).
	BusySeconds float64 `json:"busy_seconds"`
	Occupancy   float64 `json:"occupancy"`
	// MeanWaitMicros is the average queue wait per served task.
	MeanWaitMicros float64 `json:"mean_wait_micros"`
	// WaitHist buckets served tasks by queue wait (bounds in
	// WaitBucketMicros, last bucket open-ended); QueueHist buckets
	// them by the depth of other sessions queued at their worker on
	// enqueue.
	WaitHist  [pisa.StatBuckets]uint64 `json:"wait_hist"`
	QueueHist [pisa.StatBuckets]uint64 `json:"queue_hist"`
}

// CanaryMetrics is the live view of a canary swap in progress.
type CanaryMetrics struct {
	// Version is the candidate generation shadowing the incumbent.
	Version int `json:"version"`
	// Samples/Disagree are the mirrored jobs scored so far and how many
	// the candidate classified differently.
	Samples  uint64 `json:"samples"`
	Disagree uint64 `json:"disagree"`
}

// Snapshot is the machine-readable metrics document: the deployment's
// identity, its lifecycle counters, and one entry per registered model
// in registration order.
type Snapshot struct {
	Deployment    string  `json:"deployment"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Budget is the scheduler's worker-pool size.
	Budget int `json:"budget"`
	// Admitted/Rejected count Register+Swap admission outcomes; Swaps
	// counts completed version swaps (canary promotions included) and
	// Rollbacks the canary swaps that auto-rolled-back.
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Swaps     uint64 `json:"swaps"`
	Rollbacks uint64 `json:"rollbacks"`
	// Stalls counts stalled-worker episodes the scheduler watchdog
	// detected (0 when the watchdog is disabled).
	Stalls uint64 `json:"stalls"`
	// WaitBucketMicros are the wait-histogram bucket upper bounds in
	// microseconds (len StatBuckets-1; the last bucket is open).
	WaitBucketMicros []float64      `json:"wait_bucket_micros"`
	Models           []ModelMetrics `json:"models"`
	// Machines lists the physical shared-extraction machines, one per
	// SharedExtraction handle with live subscribers.
	Machines []MachineMetrics `json:"machines,omitempty"`
}

// MachineMetrics is one physical extraction machine's serving counters:
// the per-packet stateful work its subscribers would otherwise each
// repeat.
type MachineMetrics struct {
	Name        string   `json:"name"`
	Spec        string   `json:"spec"`
	Subscribers []string `json:"subscribers"`
	Packets     uint64   `json:"packets"`
	Fires       uint64   `json:"fires"`
	RegRMWs     uint64   `json:"reg_rmws"`
	BusySeconds float64  `json:"busy_seconds"`
}

// Snapshot captures the deployment's current serving metrics.
//
// Engine counters are striped per worker on the hot path and only
// folded together inside each Stats() call below, so scraping this
// endpoint never contends with packet processing — a scrape reads the
// stripes once, it does not touch anything a worker writes on every
// task. Totals are monotone across scrapes, but a scrape concurrent
// with live traffic may observe a wait-histogram sum momentarily ahead
// of the task counter (histogram stripes are read after the counters).
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	models := make([]*Model, 0, len(s.order))
	for _, n := range s.order {
		models = append(models, s.models[n])
	}
	type machView struct {
		mach *sharedMachine
		subs []string
	}
	machs := make([]machView, 0, len(s.machines))
	for _, mach := range s.machines {
		machs = append(machs, machView{mach, append([]string(nil), mach.subs...)})
	}
	s.mu.Unlock()

	snap := Snapshot{
		Deployment:    s.name,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Budget:        s.sched.Budget(),
		Admitted:      s.admitted.Load(),
		Rejected:      s.rejected.Load(),
		Swaps:         s.swaps.Load(),
		Rollbacks:     s.rollbacks.Load(),
		Stalls:        s.sched.Stalls(),
	}
	for _, b := range pisa.WaitBuckets {
		snap.WaitBucketMicros = append(snap.WaitBucketMicros, float64(b)/float64(time.Microsecond))
	}
	var totalBusy time.Duration
	versions := make([]int, len(models))
	weights := make([]int, len(models))
	stats := make([]pisa.EngineStats, len(models))
	for i, m := range models {
		versions[i], weights[i], stats[i] = m.view()
		totalBusy += stats[i].Busy
	}
	for i, m := range models {
		st := stats[i]
		mm := ModelMetrics{
			Name:            m.name,
			Version:         versions[i],
			Weight:          weights[i],
			SLO:             m.SLO(),
			Tasks:           st.Tasks,
			Packets:         st.Packets,
			Fires:           st.Fires,
			Shed:            st.Shed,
			ShedBatches:     st.ShedBatches,
			RegRMWs:         st.RegRMWs,
			Degraded:        m.degraded.Load(),
			DegradedBatches: m.degradedBatches.Load(),
			BusySeconds:     st.Busy.Seconds(),
			WaitHist:        st.WaitHist,
			QueueHist:       st.QueueHist,
		}
		if cv := m.canVersion.Load(); cv != 0 {
			mm.Canary = &CanaryMetrics{
				Version:  int(cv),
				Samples:  m.canSamples.Load(),
				Disagree: m.canDisagree.Load(),
			}
		}
		if totalBusy > 0 {
			mm.Occupancy = float64(st.Busy) / float64(totalBusy)
		}
		if m.shared != nil {
			mm.SharedMachine = m.shared.eng.Name()
		}
		mm.MeanWaitMicros = float64(st.MeanWait()) / float64(time.Microsecond)
		snap.Models = append(snap.Models, mm)
	}
	for _, mv := range machs {
		st := mv.mach.eng.Stats()
		snap.Machines = append(snap.Machines, MachineMetrics{
			Name:        mv.mach.eng.Name(),
			Spec:        mv.mach.handle.Spec.String(),
			Subscribers: mv.subs,
			Packets:     st.Packets,
			Fires:       st.Fires,
			RegRMWs:     st.RegRMWs,
			BusySeconds: st.Busy.Seconds(),
		})
	}
	return snap
}

// ServeHTTP renders the metrics snapshot as JSON — mount the Server on
// any mux (pegasus-run -models -metrics-addr serves it at /metrics and
// /).
func (s *Server) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Snapshot())
}
