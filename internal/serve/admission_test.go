package serve

import (
	"errors"
	"fmt"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// sramEmission inflates SRAM with one big per-flow register (regBits
// total), spread thin enough over the member pipeline to pass the
// per-program validation.
func sramEmission(t *testing.T, name string, regBits int) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	in0 := l.MustAdd("in0", 16)
	slot := l.MustAdd("slot", 32)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	reg, err := pisa.NewRegister("big", 32, regBits/32)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &pisa.Table{Name: "t", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: slot, A: in0, Imm: int32(regBits/32 - 1)},
			{Kind: pisa.OpRegAdd, Reg: ri, Dst: out0, A: slot, B: in0},
		}})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
}

// tcamEmission fills every member stage to exactly the per-stage TCAM
// capacity with ternary tables (4×32-bit keys, 2048 entries → 524288
// bits/stage), so each member fits alone but co-residents exhaust the
// combined TCAM.
func tcamEmission(t *testing.T, name string, stages int) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	k0 := l.MustAdd("k0", 32)
	k1 := l.MustAdd("k1", 32)
	k2 := l.MustAdd("k2", 32)
	k3 := l.MustAdd("k3", 32)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	perStage := pisa.Tofino2.TCAMBitsPerStage / (2 * 4 * 32)
	for s := 0; s < stages; s++ {
		entries := make([]pisa.Entry, perStage)
		for i := range entries {
			entries[i] = pisa.Entry{
				Key:  []uint32{uint32(i), uint32(s), 0, 0},
				Mask: []uint32{^uint32(0), ^uint32(0), 0, 0},
				Data: []int32{int32(i)},
			}
		}
		prog.Place(s, &pisa.Table{Name: fmt.Sprintf("t%d", s), Kind: pisa.MatchTernary,
			KeyFields: []pisa.FieldID{k0, k1, k2, k3}, KeyWidths: []int{32, 32, 32, 32},
			Entries: entries, DataWidthBits: 8,
			Action: []pisa.Op{{Kind: pisa.OpSetData, Dst: out0, DataIdx: 0}}})
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{k0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
}

// extractEmission pairs an extraction machine (px_-prefixed register of
// pxBits, charged once per identical spec) with a model-side register
// of modelBits charged per member.
func extractEmission(t *testing.T, name string, spec core.ExtractSpec, pxBits, modelBits int) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	hash := l.MustAdd("px_hash", 32)
	slot := l.MustAdd("px_slot", 32)
	fire := l.MustAdd("px_fire", 8)
	in0 := l.MustAdd("in0", 16)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	px, err := pisa.NewRegister("px_state", 32, pxBits/32)
	if err != nil {
		t.Fatal(err)
	}
	pxi := prog.AddRegister(px)
	model, err := pisa.NewRegister("model_state", 32, modelBits/32)
	if err != nil {
		t.Fatal(err)
	}
	mi := prog.AddRegister(model)
	prog.Place(0, &pisa.Table{Name: "px_prelude", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: slot, A: hash, Imm: int32(pxBits/32 - 1)},
			{Kind: pisa.OpRegAdd, Reg: pxi, Dst: slot, A: slot, B: slot},
		}})
	prog.Place(spec.PreludeStages(), &pisa.Table{Name: "t_model", Kind: pisa.MatchNone,
		DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: out0, A: in0, Imm: int32(modelBits/32 - 1)},
			{Kind: pisa.OpRegAdd, Reg: mi, Dst: out0, A: out0, B: in0},
		}})
	em := &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
	em.Extract = &core.Extraction{Spec: spec,
		Meta: pisa.PacketMeta{Hash: hash, Fields: []pisa.FieldID{in0}, Fire: fire}}
	return em
}

// rejectedWith registers the emission expecting an *AdmissionError on
// the given dimension, and asserts no scheduler or ledger state
// changed.
func rejectedWith(t *testing.T, s *Server, name string, em *core.Emitted, dim core.ResourceDim) *core.BudgetError {
	t.Helper()
	sessions := len(s.Scheduler().Stats())
	models := len(s.Models())
	rejected := s.Snapshot().Rejected
	_, err := s.Register(name, em, 1, SLO{})
	if err == nil {
		t.Fatalf("registration %q accepted, want %s rejection", name, dim)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *AdmissionError: %v", err, err)
	}
	if ae.Model != name || ae.Report == nil {
		t.Fatalf("admission error: %+v", ae)
	}
	found := false
	for _, ex := range ae.Report.Excesses {
		if ex.Dim == dim {
			found = true
			if ex.Used <= ex.Limit {
				t.Fatalf("%s excess used=%d limit=%d", dim, ex.Used, ex.Limit)
			}
			sum := 0
			for _, c := range ex.PerModel {
				sum += c.Amount
			}
			if sum != ex.Used {
				t.Fatalf("%s contributions sum %d != used %d", dim, sum, ex.Used)
			}
		}
	}
	if !found {
		t.Fatalf("no %s excess in rejection: %v", dim, err)
	}
	// Rejection must precede any state change.
	if got := len(s.Scheduler().Stats()); got != sessions {
		t.Fatalf("rejection changed scheduler sessions: %d -> %d", sessions, got)
	}
	if got := len(s.Models()); got != models {
		t.Fatalf("rejection changed the model ledger: %d -> %d", models, got)
	}
	if got := s.Snapshot().Rejected; got != rejected+1 {
		t.Fatalf("rejected counter %d, want %d", got, rejected+1)
	}
	return ae.Report
}

// TestAdmissionOverStages rejects the registration that would push the
// combined pipeline past Tofino2.Pipes(2)'s 40 stages.
func TestAdmissionOverStages(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := s.Register(name, statefulEmission(t, name, 0, 15), 1, SLO{}); err != nil {
			t.Fatalf("member %d (15 stages) rejected: %v", i, err)
		}
	}
	report := rejectedWith(t, s, "m2", statefulEmission(t, "m2", 0, 15), core.DimStages)
	for _, ex := range report.Excesses {
		if ex.Dim == core.DimStages && (ex.Used != 45 || ex.Limit != 40) {
			t.Fatalf("stage excess %d/%d, want 45/40", ex.Used, ex.Limit)
		}
	}
}

// TestAdmissionOverSRAM rejects on combined SRAM: three 160Mb members
// each fit a member pipeline alone but blow the 2-pipe budget.
func TestAdmissionOverSRAM(t *testing.T) {
	const memberBits = 160 << 20
	s := newTestServer(t)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := s.Register(name, sramEmission(t, name, memberBits), 1, SLO{}); err != nil {
			t.Fatalf("member %d rejected: %v", i, err)
		}
	}
	rejectedWith(t, s, "m2", sramEmission(t, "m2", memberBits), core.DimSRAM)
}

// TestAdmissionOverTCAM rejects on combined TCAM (the stage dimension
// trips alongside it — per-stage TCAM density is capped, so exhausting
// combined TCAM on full pipes exhausts stages too; the report must
// still name TCAM).
func TestAdmissionOverTCAM(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := s.Register(name, tcamEmission(t, name, 20), 1, SLO{}); err != nil {
			t.Fatalf("member %d rejected: %v", i, err)
		}
	}
	rejectedWith(t, s, "m2", tcamEmission(t, "m2", 20), core.DimTCAM)
}

// TestAdmissionExtractionSharing pins the sharing edge cases: an
// identical ExtractSpec is charged once (three members fit), while a
// differing spec pays the full extraction machine and is rejected.
func TestAdmissionExtractionSharing(t *testing.T) {
	// px 120Mb + model 80Mb: one member uses 200Mb (fits a member
	// pipeline), full-price members pair to 400Mb + a third model side
	// (80Mb) clears the 419Mb budget only when the extraction is
	// shared (120+3×80 = 360Mb) — a differing spec pays 2×120+3×80 =
	// 480Mb and must be rejected.
	const pxBits, modelBits = 120 << 20, 80 << 20
	spec := core.ExtractSpec{Kind: core.ExtractSeq, Window: 8, Flows: 1024}

	shared := NewServer(Options{Name: "shared", Cap: pisa.Tofino2.Pipes(2), Budget: 4})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := shared.Register(name, extractEmission(t, name, spec, pxBits, modelBits), 1, SLO{}); err != nil {
			t.Fatalf("identical-spec member %d rejected despite sharing: %v", i, err)
		}
	}
	snap := shared.Snapshot()
	if snap.Admitted != 3 {
		t.Fatalf("admitted %d, want 3", snap.Admitted)
	}
	shared.Close()

	differing := NewServer(Options{Name: "differing", Cap: pisa.Tofino2.Pipes(2), Budget: 4})
	defer differing.Close()
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%d", i)
		if _, err := differing.Register(name, extractEmission(t, name, spec, pxBits, modelBits), 1, SLO{}); err != nil {
			t.Fatalf("member %d rejected: %v", i, err)
		}
	}
	spec2 := spec
	spec2.Window = 16
	report := rejectedWith(t, differing, "m2",
		extractEmission(t, "m2", spec2, pxBits, modelBits), core.DimSRAM)
	// The report marks who shares and who pays full price.
	for _, ex := range report.Excesses {
		if ex.Dim != core.DimSRAM {
			continue
		}
		sharing := 0
		for _, c := range ex.PerModel {
			if c.SharesExtraction {
				sharing++
			}
		}
		if sharing != 1 {
			t.Fatalf("want exactly 1 sharing contribution (m1), got %d: %+v", sharing, ex.PerModel)
		}
	}
}

// TestAdmissionProgramAliasing rejects re-registering an emission that
// shares live program (and thus register) storage.
func TestAdmissionProgramAliasing(t *testing.T) {
	s := newTestServer(t)
	em := statefulEmission(t, "alpha", 0, 2)
	if _, err := s.Register("alpha", em, 1, SLO{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("beta", em, 1, SLO{}); err == nil {
		t.Fatal("aliased emission admitted")
	}
}
