package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/trafficgen"
)

// TestLiveSwapUnderLoad replaces a model's emission while a co-resident
// model replays sustained trafficgen load: no in-flight result is
// dropped, the swapped model's post-swap classifications are
// bit-identical to a cold restart of the new version, and the
// co-resident keeps making progress throughout.
func TestLiveSwapUnderLoad(t *testing.T) {
	s := newTestServer(t)
	hot, err := s.Register("hot", statefulEmission(t, "hot-v1", 100, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	side, err := s.Register("side", statelessEmission(t, "side", 7, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}

	// Sustained co-resident load: trafficgen jobs replayed until stop,
	// every batch checked for completeness.
	gen := trafficgen.NewJobGen(trafficgen.Config{Seed: 1, Flows: 1 << 10},
		[][]int32{{3}, {11}, {40}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sideBatches, sideDropped int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]pisa.Job, 256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen.Fill(batch)
			if res := side.Run(batch); len(res) != len(batch) {
				sideDropped++
				return
			}
			sideBatches++
		}
	}()

	// Warm-up traffic on v1 dirties its per-flow registers, so the
	// cold-restart equivalence below fails unless the swap really
	// re-initialises state.
	for i := int32(0); i < 5; i++ {
		if res := hot.Run(flowJobs(128, i)); len(res) != 128 {
			t.Fatalf("v1 warm-up batch %d dropped results", i)
		}
	}

	// Swap with an in-flight batch: a concurrent submission is caught
	// mid-drain and must complete in full.
	inflight := hot.Submit(flowJobs(512, 77))
	repCh := make(chan *SwapReport, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := hot.Swap(statefulEmission(t, "hot-v2", 200, 2), SwapOptions{})
		errCh <- err
		repCh <- rep
	}()
	got := inflight.Wait()
	if len(got) != 512 {
		t.Fatalf("in-flight batch dropped results across the swap: %d/512", len(got))
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	rep := <-repCh
	if rep.From != 1 || rep.To != 2 || rep.Downtime < rep.DrainWait {
		t.Fatalf("swap report: %+v", rep)
	}
	if hot.Version() != 2 {
		t.Fatalf("version %d after swap, want 2", hot.Version())
	}

	// Bit-identical to a cold restart: a fresh server running only the
	// new generation must classify the same replay identically.
	replay := func() [][]pisa.Job {
		var batches [][]pisa.Job
		for i := int32(0); i < 4; i++ {
			batches = append(batches, flowJobs(200, 1000+i*13))
		}
		return batches
	}
	var live [][]pisa.Result
	for _, b := range replay() {
		live = append(live, hot.Run(b))
	}
	cold := NewServer(Options{Name: "cold", Cap: pisa.Tofino2.Pipes(2), Budget: 4})
	defer cold.Close()
	ref, err := cold.Register("hot", statefulEmission(t, "hot-v2-cold", 200, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range replay() {
		want := ref.Run(b)
		for i := range want {
			if live[bi][i].Outs[0] != want[i].Outs[0] || live[bi][i].Class != want[i].Class {
				t.Fatalf("batch %d job %d: post-swap out %d, cold restart %d",
					bi, i, live[bi][i].Outs[0], want[i].Outs[0])
			}
		}
	}

	close(stop)
	wg.Wait()
	if sideDropped != 0 {
		t.Fatal("co-resident model dropped results during the swap")
	}
	if sideBatches == 0 {
		t.Fatal("co-resident model made no progress")
	}
	// Stats survive the swap: v1's packets remain accounted.
	if st := hot.Stats(); st.Packets < 5*128+512 {
		t.Fatalf("stats lost retired-version traffic: %d packets", st.Packets)
	}
	if s.Snapshot().Swaps != 1 {
		t.Fatalf("swap counter %d, want 1", s.Snapshot().Swaps)
	}
}

// TestSwapMigratesState pins SwapOptions.MigrateState: per-flow
// register values carry into the new generation, so a replay split
// across the swap equals an unswapped continuous replay.
func TestSwapMigratesState(t *testing.T) {
	j1, j2 := flowJobs(300, 5), flowJobs(300, 400)

	s := newTestServer(t)
	m, err := s.Register("m", statefulEmission(t, "m-v1", 50, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(j1)
	rep, err := m.Swap(statefulEmission(t, "m-v2", 50, 2), SwapOptions{MigrateState: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedRegisters != 1 {
		t.Fatalf("migrated %d registers, want 1 (flowcnt)", rep.MigratedRegisters)
	}
	got := m.Run(j2)

	ref := NewServer(Options{Name: "ref", Cap: pisa.Tofino2.Pipes(2), Budget: 4})
	defer ref.Close()
	rm, err := ref.Register("m", statefulEmission(t, "m-ref", 50, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	rm.Run(j1)
	want := rm.Run(j2)
	for i := range want {
		if got[i].Outs[0] != want[i].Outs[0] {
			t.Fatalf("job %d: migrated-swap out %d, continuous %d", i, got[i].Outs[0], want[i].Outs[0])
		}
	}
}

// TestSwapRejectedOverBudget verifies a swap candidate that no longer
// fits is rejected before any state changes: the live version keeps
// serving.
func TestSwapRejectedOverBudget(t *testing.T) {
	s := newTestServer(t)
	m, err := s.Register("m", statefulEmission(t, "m-v1", 1, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pad := range []string{"pad1", "pad2"} {
		if _, err := s.Register(pad, statefulEmission(t, pad, 0, 13), 1, SLO{}); err != nil {
			t.Fatal(err)
		}
	}
	sessions := len(s.Scheduler().Stats())
	if _, err := m.Swap(statefulEmission(t, "m-v2", 2, 15), SwapOptions{}); err == nil {
		t.Fatal("over-budget swap accepted")
	}
	if m.Version() != 1 {
		t.Fatalf("version %d after rejected swap, want 1", m.Version())
	}
	if got := len(s.Scheduler().Stats()); got != sessions {
		t.Fatalf("rejected swap changed scheduler sessions: %d -> %d", sessions, got)
	}
	if res := m.Run(flowJobs(16, 2)); len(res) != 16 {
		t.Fatal("live version stopped serving after rejected swap")
	}
}

// TestSwapDowntimeBounded sanity-checks the report's timing fields
// under a drain that takes real time.
func TestSwapDowntimeBounded(t *testing.T) {
	s := newTestServer(t)
	m, err := s.Register("m", statefulEmission(t, "m-v1", 0, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(flowJobs(64, 1))
	start := time.Now()
	warmedAtVersion := 0
	rep, err := m.Swap(statefulEmission(t, "m-v2", 0, 2), SwapOptions{
		// OnWarmed fires after plan compilation but before the cutover:
		// the old version must still be live at that point.
		OnWarmed: func() { warmedAtVersion = m.Version() },
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if warmedAtVersion != 1 {
		t.Fatalf("OnWarmed saw version %d, want 1 (pre-cutover)", warmedAtVersion)
	}
	if rep.Downtime > wall {
		t.Fatalf("downtime %v exceeds the whole swap wall time %v", rep.Downtime, wall)
	}
	if rep.Downtime != rep.DrainWait+rep.Cutover {
		t.Fatalf("downtime %v != drain %v + cutover %v", rep.Downtime, rep.DrainWait, rep.Cutover)
	}
}
