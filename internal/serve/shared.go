package serve

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Physically shared extraction on the serving plane. Models registered
// with an Emitted.Shared handle are pure-combinational subscribers of
// one standalone extraction machine: the server brings the machine's
// session up on first subscription, attaches every later subscriber to
// the same pisa.Fanout, and routes their RunPackets through it — each
// packet's register RMWs execute once on the machine regardless of how
// many models are co-resident. Unregister and Swap detach/replace
// subscribers without touching the shared flow state; only when the
// LAST subscriber leaves is the machine reset and its session released.

// sharedMachine is one physical extraction machine on the server: the
// standalone extraction session plus the fan-out handing fired windows
// to the subscriber models. subs tracks subscriber model names in
// subscription order (guarded by srv.mu).
type sharedMachine struct {
	handle *core.SharedExtraction
	eng    *pisa.Engine
	fan    *pisa.Fanout
	subs   []string
}

// checkSubscriber rejects subscriber emissions that carry registers: a
// stateful subscriber would see only fired windows, not every packet,
// and silently diverge from its private-prelude form.
func checkSubscriber(op, name string, em *core.Emitted) error {
	for _, p := range em.Programs() {
		if len(p.Registers) > 0 {
			return fmt.Errorf("serve: %s %q rejected: shared-extraction subscriber program %q has registers (emit with EmitShared)",
				op, name, p.Name)
		}
	}
	return nil
}

// attachSharedLocked binds a subscriber emission to its machine,
// creating the machine's session on first use. Caller holds s.mu and
// has already admitted em.
func (s *Server) attachSharedLocked(name string, em *core.Emitted, weight int) (*sharedMachine, *pisa.Engine, error) {
	if err := checkSubscriber("register", name, em); err != nil {
		return nil, nil, err
	}
	mach := s.machines[em.Shared]
	if mach == nil {
		ext := em.Shared.Em
		if ext == nil || ext.Extract == nil {
			return nil, nil, fmt.Errorf("serve: register %q rejected: shared-extraction handle carries no machine emission", name)
		}
		mach = &sharedMachine{
			handle: em.Shared,
			eng:    ext.NewPacketEngineOn(s.sched, "extract:"+ext.Prog.Name, 1, s.mode),
		}
		mach.fan = pisa.NewFanout(mach.eng)
		s.machines[em.Shared] = mach
	}
	eng := s.newEngine(em, name, 1, weight)
	mach.fan.Subscribe(eng)
	mach.subs = append(mach.subs, name)
	return mach, eng, nil
}

// detachShared removes the model from its machine's fan-out. The
// shared flow state is untouched — co-subscribers keep classifying
// against the same registers — unless the model was the LAST
// subscriber, in which case the machine's registers reset (inside
// Detach) and its session closes.
func (s *Server) detachShared(m *Model) {
	m.stateMu.RLock()
	eng := m.cur.eng
	m.stateMu.RUnlock()
	mach := m.shared
	last := mach.fan.Detach(eng)
	s.mu.Lock()
	for i, n := range mach.subs {
		if n == m.name {
			mach.subs = append(mach.subs[:i], mach.subs[i+1:]...)
			break
		}
	}
	if last {
		delete(s.machines, mach.handle)
	}
	s.mu.Unlock()
	if last {
		// Detach serialized against any in-flight fan-out run, and with
		// no subscribers left nothing can submit through the machine
		// again: its session is quiescent.
		mach.eng.Close()
	}
}

// runSharedPackets replays raw packets through the model's shared
// extraction machine. The machine executes each packet's register RMWs
// exactly once and EVERY subscriber classifies the fired windows — a
// physical fan-out reaches all co-resident models, and their
// per-session stats count the work — but the caller receives this
// model's results only. Every subscriber's submission lock is held in
// subscription order for the duration: the fan-out submits to the
// co-subscribers' sessions directly, and each engine's single-
// outstanding-batch contract must hold.
func (m *Model) runSharedPackets(pkts []pisa.PacketIn) []pisa.PacketResult {
	s := m.srv
	mach := m.shared
	s.mu.Lock()
	subs := make([]*Model, 0, len(mach.subs))
	for _, n := range mach.subs {
		if sm := s.models[n]; sm != nil {
			subs = append(subs, sm)
		}
	}
	s.mu.Unlock()
	for _, sm := range subs {
		sm.runMu.Lock()
	}
	defer func() {
		for _, sm := range subs {
			sm.runMu.Unlock()
		}
	}()
	m.stateMu.RLock()
	cur := m.cur.eng
	m.stateMu.RUnlock()
	engs, res := mach.fan.RunPacketsAligned(pkts)
	for i, e := range engs {
		if e == cur {
			return res[i]
		}
	}
	return nil
}

// SharedMachine reports the model's physical extraction binding: the
// machine's resolved spec and its subscriber models in subscription
// order. ok is false for models serving a private (fused or windowed)
// emission.
func (m *Model) SharedMachine() (spec core.ExtractSpec, subscribers []string, ok bool) {
	if m.shared == nil {
		return core.ExtractSpec{}, nil, false
	}
	s := m.srv
	s.mu.Lock()
	subscribers = append([]string(nil), m.shared.subs...)
	s.mu.Unlock()
	return m.shared.handle.Spec, subscribers, true
}
