package serve

import (
	"fmt"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// CanaryOptions tunes a canary swap (SwapOptions.Canary).
//
// A canary runs as a SHADOW of the incumbent: the incumbent stays
// authoritative for every submission, and a configurable fraction of
// batches is mirrored — duplicated — to the warmed candidate session
// running on the same pool. Mirroring (rather than splitting traffic)
// is what makes rollback a guarantee instead of a best effort: the
// incumbent's flow-state registers and served classifications are
// bit-identical to never having swapped, because the candidate never
// carried a single authoritative packet.
//
// Scoring is label-free, from the live metrics: the disagreement rate
// between candidate and incumbent classes on identical mirrored inputs
// (the accuracy-delta proxy), the candidate/incumbent queue-wait ratio
// over the decision window, and the fire-rate delta. When the decision
// window is met the swap auto-promotes (a normal cutover) or
// auto-rolls-back (the shadow session is discarded), with the verdict
// in the SwapReport.
type CanaryOptions struct {
	// Fraction of submitted batches mirrored to the candidate
	// (deterministic pacing, no sampling jitter; default 0.25, clamped
	// to (0, 1]).
	Fraction float64
	// MinSamples is the number of mirrored jobs that must be scored
	// before the decision (default 256).
	MinSamples int
	// Window bounds the shadow phase in time: on expiry the decision is
	// made with the samples at hand (default 2s; < 0 waits for
	// MinSamples however long it takes).
	Window time.Duration
	// MaxDisagree is the rollback threshold on the disagreement rate —
	// the fraction of mirrored jobs the candidate classifies differently
	// from the incumbent (default 0.01).
	MaxDisagree float64
	// MaxWaitFactor rolls back a candidate whose mean queue wait over
	// the shadow phase exceeds the incumbent's by this factor
	// (0 disables the latency gate).
	MaxWaitFactor float64
	// MaxFireRateDelta rolls back on |candidate − incumbent| positive
	// (class ≠ 0) rate over the mirrored jobs (0 disables).
	MaxFireRateDelta float64
}

// withDefaults fills the zero values.
func (o CanaryOptions) withDefaults() CanaryOptions {
	if o.Fraction <= 0 || o.Fraction > 1 {
		o.Fraction = 0.25
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 256
	}
	if o.Window == 0 {
		o.Window = 2 * time.Second
	}
	if o.MaxDisagree <= 0 {
		o.MaxDisagree = 0.01
	}
	return o
}

// canaryState is one in-flight shadow version. All fields are mutated
// with the model's runMu held (the submission path owns the canary);
// the Swap goroutine only blocks on done.
type canaryState struct {
	next    *version
	opts    CanaryOptions
	migrate bool // SwapOptions.MigrateState, applied on promotion
	started time.Time

	acc      float64          // mirror pacing accumulator
	samples  int              // mirrored jobs scored
	disagree int              // mirrored jobs classified differently
	incFires int              // incumbent positives over mirrored jobs
	canFires int              // candidate positives over mirrored jobs
	incBase  pisa.EngineStats // incumbent stats at shadow start (wait baseline)

	done chan canaryOutcome // buffered(1); the decision posts exactly once
}

// canaryOutcome is the decision posted back to the blocked Swap call.
type canaryOutcome struct {
	promoted  bool
	reason    string // rollback (or abort) cause; empty on promotion
	samples   int
	disagree  float64
	waitRatio float64
	fireDelta float64
	elapsed   time.Duration // shadow-phase length

	// Promotion cutover measurements (zero on rollback).
	migrated  int
	drainWait time.Duration
	cutover   time.Duration
}

// mirrorCanary shadow-submits the batch to the canary session when the
// pacing accumulator elects it. Caller holds runMu.
func (m *Model) mirrorCanary(t *Ticket, jobs []pisa.Job) {
	cs := m.canary
	if cs == nil || len(jobs) == 0 {
		return
	}
	cs.acc += cs.opts.Fraction
	if cs.acc < 1 {
		return
	}
	cs.acc--
	t.jobs = jobs
	t.cp = cs.next.eng.SubmitBatch(jobs)
}

// observeCanary scores one mirrored batch: candidate classes against
// the authoritative incumbent classes on identical inputs. The
// PoisonCanary fault corrupts the candidate's observed classes for the
// batch, forcing the disagreement gate. Caller holds runMu.
func (m *Model) observeCanary(jobs []pisa.Job, inc, can []pisa.Result) {
	cs := m.canary
	if cs == nil {
		return
	}
	poisoned := faultinject.Enabled() && faultinject.Should(faultinject.PoisonCanary, m.name)
	for i := range inc {
		cc := can[i].Class
		if poisoned {
			cc++
		}
		if cc != inc[i].Class {
			cs.disagree++
		}
		if inc[i].Class != 0 {
			cs.incFires++
		}
		if cc != 0 {
			cs.canFires++
		}
	}
	cs.samples += len(inc)
	m.canSamples.Store(uint64(cs.samples))
	m.canDisagree.Store(uint64(cs.disagree))
}

// decideCanary checks whether the decision window is met and, if so,
// promotes or rolls back the shadow version. Runs on the submission
// path with runMu held, at a point where both the incumbent and the
// canary session are quiescent (the ticket just waited both), so the
// cutover (or the discard) needs no extra synchronisation. Caller
// holds runMu.
func (m *Model) decideCanary() {
	cs := m.canary
	if cs == nil {
		return
	}
	if cs.samples < cs.opts.MinSamples &&
		(cs.opts.Window < 0 || time.Since(cs.started) < cs.opts.Window) {
		return
	}

	out := canaryOutcome{samples: cs.samples, elapsed: time.Since(cs.started)}
	if cs.samples > 0 {
		out.disagree = float64(cs.disagree) / float64(cs.samples)
		inc := float64(cs.incFires) / float64(cs.samples)
		can := float64(cs.canFires) / float64(cs.samples)
		out.fireDelta = can - inc
		if out.fireDelta < 0 {
			out.fireDelta = -out.fireDelta
		}
	}
	canSt := cs.next.eng.Stats()
	incSt := m.cur.eng.Stats()
	if dt := incSt.Tasks - cs.incBase.Tasks; dt > 0 && canSt.Tasks > 0 {
		incMean := (incSt.Wait - cs.incBase.Wait) / time.Duration(dt)
		if incMean > 0 {
			out.waitRatio = float64(canSt.MeanWait()) / float64(incMean)
		}
	}

	switch {
	case out.disagree > cs.opts.MaxDisagree:
		out.reason = fmt.Sprintf("disagreement rate %.4f exceeds %.4f over %d mirrored jobs",
			out.disagree, cs.opts.MaxDisagree, cs.samples)
	case cs.opts.MaxWaitFactor > 0 && out.waitRatio > cs.opts.MaxWaitFactor:
		out.reason = fmt.Sprintf("canary mean wait %.2fx the incumbent's exceeds %.2fx",
			out.waitRatio, cs.opts.MaxWaitFactor)
	case cs.opts.MaxFireRateDelta > 0 && out.fireDelta > cs.opts.MaxFireRateDelta:
		out.reason = fmt.Sprintf("fire-rate delta %.4f exceeds %.4f", out.fireDelta, cs.opts.MaxFireRateDelta)
	}

	m.canary = nil
	m.canVersion.Store(0)
	if out.reason != "" {
		// Rollback: discard the shadow. The incumbent never stopped being
		// authoritative, so its registers and classifications are
		// bit-identical to never having swapped.
		cs.next.eng.Close()
		m.srv.rollbacks.Add(1)
		cs.done <- out
		return
	}

	// Promote: a normal cutover, except both sessions are already
	// quiescent so there is no drain wait to speak of.
	drainStart := time.Now()
	cs.next.eng.Drain()
	drained := time.Now()
	if cs.migrate {
		out.migrated = migrateRegisters(m.cur.em, cs.next.em)
	} else {
		// The shadow phase accumulated mirrored flow state; a
		// non-migrating swap promises cold-restart registers.
		cs.next.eng.ResetState()
	}
	cs.next.eng.SetWeight(m.cur.eng.Weight())
	m.stateMu.Lock()
	cs.next.eng.SetShedPolicy(m.shed)
	retired := m.cur.eng.Stats()
	m.base.Add(retired)
	old := m.cur
	m.cur = cs.next
	m.stateMu.Unlock()
	old.eng.Close()
	m.srv.swaps.Add(1)
	out.promoted = true
	out.drainWait = drained.Sub(drainStart)
	out.cutover = time.Since(drained)
	cs.done <- out
}

// abortCanary discards an in-flight shadow version without a verdict
// (server/model retirement) and unblocks the waiting Swap call. Caller
// holds runMu.
func (m *Model) abortCanary(cs *canaryState, reason string) {
	m.canary = nil
	m.canVersion.Store(0)
	cs.next.eng.Close()
	cs.done <- canaryOutcome{reason: reason, samples: cs.samples, elapsed: time.Since(cs.started)}
}
