package serve

import (
	"fmt"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/faultinject"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// SwapOptions tunes a live version swap.
type SwapOptions struct {
	// MigrateState carries the old version's per-flow register values
	// into the new one wherever a register matches by name, width and
	// size — in-progress feature windows survive the swap. When false
	// the new version starts from its initial register values, exactly
	// like a cold restart.
	MigrateState bool
	// OnWarmed, when set, is called once the new version's plans have
	// compiled, immediately before the cutover blocks submissions (or,
	// for a canary swap, immediately after the shadow session goes
	// live). It lets a caller line up measurement windows (or shift
	// traffic) with the service-interrupting phase rather than the
	// off-path warm.
	OnWarmed func()
	// Canary, when set, turns the swap into a canary deployment: the
	// warmed version shadows the incumbent on a fraction of traffic and
	// is auto-promoted or auto-rolled-back against the thresholds (see
	// CanaryOptions). Swap blocks until the verdict; traffic must keep
	// flowing from other goroutines for samples to accumulate.
	Canary *CanaryOptions
}

// SwapReport measures one completed version swap.
type SwapReport struct {
	Model string `json:"model"`
	// From/To are the retired and live generation ids.
	From int `json:"from"`
	To   int `json:"to"`
	// Warm is the off-path preparation: admission plus compiling the
	// new version's execution plans while v-from keeps serving.
	Warm time.Duration `json:"warm_ns"`
	// DrainWait is the time spent waiting for v-from's in-flight batch
	// after submissions were redirected.
	DrainWait time.Duration `json:"drain_wait_ns"`
	// Cutover covers state migration plus the version flip.
	Cutover time.Duration `json:"cutover_ns"`
	// Downtime is the total window during which the model accepted no
	// new submissions (DrainWait + Cutover).
	Downtime time.Duration `json:"downtime_ns"`
	// MigratedRegisters counts registers whose values were carried
	// over (0 when MigrateState is false or nothing matched).
	MigratedRegisters int `json:"migrated_registers"`

	// Canary verdict (canary swaps only). RolledBack means the
	// candidate was discarded — the incumbent's registers and
	// classifications are bit-identical to never having swapped — with
	// the violated threshold in RollbackReason. CanarySamples counts
	// the mirrored jobs scored; Disagreement, WaitFactor and
	// FireRateDelta are the observed deltas the verdict weighed;
	// DecisionWait is the shadow-phase length.
	Canary         bool          `json:"canary,omitempty"`
	RolledBack     bool          `json:"rolled_back,omitempty"`
	RollbackReason string        `json:"rollback_reason,omitempty"`
	CanarySamples  int           `json:"canary_samples,omitempty"`
	Disagreement   float64       `json:"disagreement,omitempty"`
	WaitFactor     float64       `json:"wait_factor,omitempty"`
	FireRateDelta  float64       `json:"fire_rate_delta,omitempty"`
	DecisionWait   time.Duration `json:"decision_wait_ns,omitempty"`
}

// Swap replaces the model's live emission with a new generation
// without dropping other sessions' traffic.
//
// The protocol:
//  1. ADMIT — the candidate is validated against the deployment with
//     this model's live emission replaced; rejection happens before
//     any scheduler state changes.
//  2. WARM — the new version's session is registered on the shared
//     pool and its execution plans compile while the old version keeps
//     serving.
//  3. CUTOVER — the model's submission lock is acquired (new
//     submissions block, none are dropped), the in-flight batch
//     drains, flow-state registers migrate (or re-init per
//     SwapOptions), and the version pointer flips.
//  4. RETIRE — the old session closes; its counters accumulate into
//     the model's base so Stats survive the swap.
//
// Co-resident models keep running throughout: only this model's
// submissions block, and only for DrainWait+Cutover.
//
// With opts.Canary set, CUTOVER is replaced by a shadow phase: the
// warmed version mirrors a fraction of live traffic without ever
// becoming authoritative, and Swap blocks until the canary verdict
// promotes it (a normal cutover at a quiescent point) or rolls it back
// (the shadow is discarded; the incumbent keeps serving untouched).
//
// The drain is bounded by Options.DrainTimeout: an incumbent that
// cannot quiesce aborts the swap with a *DrainError — the warmed
// version is discarded and the incumbent keeps serving.
func (m *Model) Swap(em *core.Emitted, opts SwapOptions) (*SwapReport, error) {
	s := m.srv
	warmStart := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server %q is closed", s.name)
	}
	if s.models[m.name] != m {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: model %q is no longer registered", m.name)
	}
	if err := s.admitLocked(m.name, em, m); err != nil {
		s.rejected.Add(1)
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	// A shared-extraction subscriber swaps in place on its machine's
	// fan-out: the candidate must bind the SAME machine (the shared flow
	// state is the model's feature memory — rebinding would silently
	// restart every window) and stay register-free. Canary swaps are not
	// supported on subscribers: the shadow would double-classify every
	// fired window through the fan-out.
	if m.shared != nil {
		if opts.Canary != nil {
			return nil, fmt.Errorf("serve: swap %q: canary swaps are not supported for shared-extraction subscribers", m.name)
		}
		if em.Shared != m.shared.handle {
			return nil, fmt.Errorf("serve: swap %q rejected: candidate does not bind the model's shared extraction machine (emit against the same handle)", m.name)
		}
		if err := checkSubscriber("swap", m.name, em); err != nil {
			return nil, err
		}
	} else if em.Shared != nil {
		return nil, fmt.Errorf("serve: swap %q rejected: cannot swap a private emission to a shared-extraction subscriber (unregister and re-register)", m.name)
	}

	if faultinject.Enabled() && faultinject.Should(faultinject.SwapWarmFail, m.name) {
		s.rejected.Add(1)
		return nil, fmt.Errorf("serve: swap %q: warm failed: %w", m.name, errInjectedWarmFailure)
	}

	// Warm the new generation off the serving path: session
	// registration compiles the plans; the session idles (weight
	// inherited from the live one) until the cutover.
	m.stateMu.RLock()
	old := m.cur
	shed := m.shed
	m.stateMu.RUnlock()
	next := &version{id: old.id + 1, em: em,
		eng: s.newEngine(em, m.name, old.id+1, old.eng.Weight())}
	next.eng.SetShedPolicy(shed)
	warm := time.Since(warmStart)

	if opts.Canary != nil {
		return m.swapCanary(old, next, opts, warm)
	}
	if opts.OnWarmed != nil {
		opts.OnWarmed()
	}

	// Cutover: block new submissions, drain the in-flight batch. Both
	// the lock acquisition (a wedged submitter holds runMu) and the
	// drain are bounded by the server's drain timeout; on either
	// timeout the warmed version is discarded and the incumbent keeps
	// serving.
	cutStart := time.Now()
	if !lockWithTimeout(&m.runMu, s.drainTO) {
		next.eng.Close()
		return nil, &DrainError{Deployment: s.name, Op: "swap", Timeout: s.drainTO,
			Sessions: []string{fmt.Sprintf("%s@v%d", m.name, old.id)}}
	}
	if m.canary != nil {
		m.runMu.Unlock()
		next.eng.Close()
		return nil, fmt.Errorf("serve: swap %q: a canary swap is already in flight", m.name)
	}
	if !old.eng.DrainTimeout(s.drainTO) {
		m.runMu.Unlock()
		next.eng.Close()
		return nil, &DrainError{Deployment: s.name, Op: "swap", Timeout: s.drainTO,
			Sessions: []string{fmt.Sprintf("%s@v%d", m.name, old.id)}}
	}
	drained := time.Now()

	migrated := 0
	if opts.MigrateState {
		migrated = migrateRegisters(old.em, em)
	} else {
		// Explicit re-init so post-swap replay is bit-identical to a
		// fresh engine regardless of what warming touched.
		next.eng.ResetState()
	}
	next.eng.SetWeight(old.eng.Weight()) // carry any tuning since warm
	m.stateMu.Lock()
	retired := old.eng.Stats()
	m.base.Add(retired)
	m.cur = next
	m.stateMu.Unlock()
	if m.shared != nil {
		// Attach the new generation exactly where the old one sat: the
		// shared registers and every co-subscriber are untouched, so
		// in-progress feature windows keep filling across the swap.
		m.shared.fan.SwapSubscriber(old.eng, next.eng)
	}
	m.runMu.Unlock()
	cutEnd := time.Now()

	old.eng.Close()
	s.swaps.Add(1)
	return &SwapReport{
		Model:             m.name,
		From:              old.id,
		To:                next.id,
		Warm:              warm,
		DrainWait:         drained.Sub(cutStart),
		Cutover:           cutEnd.Sub(drained),
		Downtime:          cutEnd.Sub(cutStart),
		MigratedRegisters: migrated,
	}, nil
}

// errInjectedWarmFailure is the sentinel for the SwapWarmFail fault.
var errInjectedWarmFailure = fmt.Errorf("injected warm failure (faultinject)")

// swapCanary installs the warmed version as a shadow and blocks until
// the traffic-driven verdict (see canary.go). The submission path owns
// the canary: mirroring, scoring and the final promote/rollback all
// run at Ticket.Wait boundaries where both sessions are quiescent.
func (m *Model) swapCanary(old, next *version, opts SwapOptions, warm time.Duration) (*SwapReport, error) {
	cs := &canaryState{
		next:    next,
		opts:    opts.Canary.withDefaults(),
		migrate: opts.MigrateState,
		started: time.Now(),
		done:    make(chan canaryOutcome, 1),
	}
	m.runMu.Lock()
	if m.canary != nil {
		m.runMu.Unlock()
		next.eng.Close()
		return nil, fmt.Errorf("serve: swap %q: a canary swap is already in flight", m.name)
	}
	cs.incBase = old.eng.Stats()
	m.canary = cs
	m.canVersion.Store(int32(next.id))
	m.canSamples.Store(0)
	m.canDisagree.Store(0)
	m.runMu.Unlock()
	if opts.OnWarmed != nil {
		opts.OnWarmed()
	}

	out := <-cs.done
	rep := &SwapReport{
		Model:         m.name,
		From:          old.id,
		To:            old.id,
		Warm:          warm,
		Canary:        true,
		CanarySamples: out.samples,
		Disagreement:  out.disagree,
		WaitFactor:    out.waitRatio,
		FireRateDelta: out.fireDelta,
		DecisionWait:  out.elapsed,
	}
	if !out.promoted {
		rep.RolledBack = true
		rep.RollbackReason = out.reason
		return rep, nil
	}
	rep.To = next.id
	rep.MigratedRegisters = out.migrated
	rep.DrainWait = out.drainWait
	rep.Cutover = out.cutover
	rep.Downtime = out.drainWait + out.cutover
	return rep, nil
}

// migrateRegisters copies per-flow state from the old emission into
// the new one wherever a register matches by (name, width, size),
// pipe by pipe. Both engines are quiescent: the old one is drained and
// locked out of submissions, the new one is not yet visible. Returns
// the number of registers carried over.
func migrateRegisters(from, to *core.Emitted) int {
	src := map[string]*pisa.Register{}
	for _, p := range from.Programs() {
		for _, r := range p.Registers {
			src[r.Name] = r
		}
	}
	migrated := 0
	for _, p := range to.Programs() {
		for _, r := range p.Registers {
			o, ok := src[r.Name]
			if !ok || o.Width != r.Width || o.Size != r.Size {
				continue
			}
			for i := 0; i < r.Size; i++ {
				r.Set(i, o.Get(i))
			}
			migrated++
		}
	}
	return migrated
}
