package serve

import (
	"fmt"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// SwapOptions tunes a live version swap.
type SwapOptions struct {
	// MigrateState carries the old version's per-flow register values
	// into the new one wherever a register matches by name, width and
	// size — in-progress feature windows survive the swap. When false
	// the new version starts from its initial register values, exactly
	// like a cold restart.
	MigrateState bool
	// OnWarmed, when set, is called once the new version's plans have
	// compiled, immediately before the cutover blocks submissions. It
	// lets a caller line up measurement windows (or shift traffic) with
	// the service-interrupting phase rather than the off-path warm.
	OnWarmed func()
}

// SwapReport measures one completed version swap.
type SwapReport struct {
	Model string `json:"model"`
	// From/To are the retired and live generation ids.
	From int `json:"from"`
	To   int `json:"to"`
	// Warm is the off-path preparation: admission plus compiling the
	// new version's execution plans while v-from keeps serving.
	Warm time.Duration `json:"warm_ns"`
	// DrainWait is the time spent waiting for v-from's in-flight batch
	// after submissions were redirected.
	DrainWait time.Duration `json:"drain_wait_ns"`
	// Cutover covers state migration plus the version flip.
	Cutover time.Duration `json:"cutover_ns"`
	// Downtime is the total window during which the model accepted no
	// new submissions (DrainWait + Cutover).
	Downtime time.Duration `json:"downtime_ns"`
	// MigratedRegisters counts registers whose values were carried
	// over (0 when MigrateState is false or nothing matched).
	MigratedRegisters int `json:"migrated_registers"`
}

// Swap replaces the model's live emission with a new generation
// without dropping other sessions' traffic.
//
// The protocol:
//  1. ADMIT — the candidate is validated against the deployment with
//     this model's live emission replaced; rejection happens before
//     any scheduler state changes.
//  2. WARM — the new version's session is registered on the shared
//     pool and its execution plans compile while the old version keeps
//     serving.
//  3. CUTOVER — the model's submission lock is acquired (new
//     submissions block, none are dropped), the in-flight batch
//     drains, flow-state registers migrate (or re-init per
//     SwapOptions), and the version pointer flips.
//  4. RETIRE — the old session closes; its counters accumulate into
//     the model's base so Stats survive the swap.
//
// Co-resident models keep running throughout: only this model's
// submissions block, and only for DrainWait+Cutover.
func (m *Model) Swap(em *core.Emitted, opts SwapOptions) (*SwapReport, error) {
	s := m.srv
	warmStart := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server %q is closed", s.name)
	}
	if s.models[m.name] != m {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: model %q is no longer registered", m.name)
	}
	if err := s.admitLocked(m.name, em, m); err != nil {
		s.rejected.Add(1)
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	// Warm the new generation off the serving path: session
	// registration compiles the plans; the session idles (weight
	// inherited from the live one) until the cutover.
	m.stateMu.RLock()
	old := m.cur
	m.stateMu.RUnlock()
	next := &version{id: old.id + 1, em: em,
		eng: s.newEngine(em, m.name, old.id+1, old.eng.Weight())}
	warm := time.Since(warmStart)
	if opts.OnWarmed != nil {
		opts.OnWarmed()
	}

	// Cutover: block new submissions, drain the in-flight batch.
	cutStart := time.Now()
	m.runMu.Lock()
	old.eng.Drain()
	drained := time.Now()

	migrated := 0
	if opts.MigrateState {
		migrated = migrateRegisters(old.em, em)
	} else {
		// Explicit re-init so post-swap replay is bit-identical to a
		// fresh engine regardless of what warming touched.
		next.eng.ResetState()
	}
	next.eng.SetWeight(old.eng.Weight()) // carry any tuning since warm
	m.stateMu.Lock()
	retired := old.eng.Stats()
	m.base.Add(retired)
	m.cur = next
	m.stateMu.Unlock()
	m.runMu.Unlock()
	cutEnd := time.Now()

	old.eng.Close()
	s.swaps.Add(1)
	return &SwapReport{
		Model:             m.name,
		From:              old.id,
		To:                next.id,
		Warm:              warm,
		DrainWait:         drained.Sub(cutStart),
		Cutover:           cutEnd.Sub(drained),
		Downtime:          cutEnd.Sub(cutStart),
		MigratedRegisters: migrated,
	}, nil
}

// migrateRegisters copies per-flow state from the old emission into
// the new one wherever a register matches by (name, width, size),
// pipe by pipe. Both engines are quiescent: the old one is drained and
// locked out of submissions, the new one is not yet visible. Returns
// the number of registers carried over.
func migrateRegisters(from, to *core.Emitted) int {
	src := map[string]*pisa.Register{}
	for _, p := range from.Programs() {
		for _, r := range p.Registers {
			src[r.Name] = r
		}
	}
	migrated := 0
	for _, p := range to.Programs() {
		for _, r := range p.Registers {
			o, ok := src[r.Name]
			if !ok || o.Width != r.Width || o.Size != r.Size {
				continue
			}
			for i := 0; i < r.Size; i++ {
				r.Set(i, o.Get(i))
			}
			migrated++
		}
	}
	return migrated
}
