package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// DegradePolicy tunes graceful degradation for a gated pipeline: under
// sustained overload of the expensive classifier stage the pipeline
// stops forwarding to it and serves the cheap gate verdict alone,
// re-probing the classifier until it recovers. Streak hysteresis keeps
// the mode from flapping on a single shed.
type DegradePolicy struct {
	// Shed is the overload bound installed on the classifier stage at
	// registration — what "overload" means for this pipeline. The zero
	// value installs no bound (the pipeline then never degrades).
	Shed pisa.ShedPolicy
	// EnterStreak is the number of CONSECUTIVE shed classifier batches
	// that flips the pipeline into degraded mode (default 3).
	EnterStreak int
	// ExitStreak is the number of consecutive healthy probe batches
	// that restores full service (default 2).
	ExitStreak int
	// ProbeEvery, in degraded mode, forwards every Nth batch to the
	// classifier as a recovery probe; the rest bypass it outright
	// without touching the pool (default 4).
	ProbeEvery int
}

func (p DegradePolicy) withDefaults() DegradePolicy {
	if p.EnterStreak <= 0 {
		p.EnterStreak = 3
	}
	if p.ExitStreak <= 0 {
		p.ExitStreak = 2
	}
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = 4
	}
	return p
}

// GatedVerdict is one job's verdict from a gated pipeline. Class is -1
// when the window never reached the classifier: gate-flagged anomalies
// always, and benign windows while the pipeline is degraded — the gate
// verdict (Anomalous, Score) is still served.
type GatedVerdict struct {
	Anomalous bool
	Score     int32
	Class     int
}

// GatedModel is the serve-level handle of a two-stage gated deployment
// (the §7.4 AutoEncoder-gate + classifier pair): a cheap gate model
// screens every window and a classifier labels the windows the gate
// passes. Unlike models.GatedPipeline — a standalone replay harness —
// a GatedModel lives inside a Server: both stages are admitted,
// metered, swappable and tunable like any other model, and the
// forwarding edge between them carries the degrade policy.
type GatedModel struct {
	gate *Model
	cls  *Model
	pol  DegradePolicy

	mu            sync.Mutex // streak state
	degradedNow   bool
	enterStreak   int
	healthyStreak int
	probeTick     int
}

// RegisterGated admits a gated pipeline as two co-resident models,
// name-gate and name-cls, and installs the degrade policy's shed bound
// on the classifier stage. weight and slo apply to the gate (the
// line-rate stage); the classifier serves at the same weight with no
// SLO of its own.
func (s *Server) RegisterGated(name string, gateEm, clsEm *core.Emitted, weight int, slo SLO, pol DegradePolicy) (*GatedModel, error) {
	gate, err := s.Register(name+"-gate", gateEm, weight, slo)
	if err != nil {
		return nil, err
	}
	cls, err := s.Register(name+"-cls", clsEm, weight, SLO{})
	if err != nil {
		// Roll the gate back out so a half-registered pipeline never
		// serves.
		_ = s.Unregister(name + "-gate")
		return nil, err
	}
	cls.SetShedPolicy(pol.Shed)
	return &GatedModel{gate: gate, cls: cls, pol: pol.withDefaults()}, nil
}

// Gate returns the gate stage's model handle.
func (g *GatedModel) Gate() *Model { return g.gate }

// Classifier returns the classifier stage's model handle.
func (g *GatedModel) Classifier() *Model { return g.cls }

// Degraded reports whether the pipeline currently bypasses the
// classifier.
func (g *GatedModel) Degraded() bool { return g.cls.degraded.Load() }

// Run pushes a batch of windows through the gated pipeline: the gate
// screens every job, and benign windows are forwarded to the
// classifier — unless the classifier is overloaded (its shed policy
// rejects the forward) or the pipeline is degraded, in which case the
// gate verdict is served alone (Class -1) and the batch is counted in
// the classifier's DegradedBatches. A gate whose emission carries the
// window in its outputs (the gated-AE [anom, score, window...] shape)
// forwards that window; otherwise the original inputs are forwarded.
//
// The returned error is a gate-stage failure (shed, deadline, poison);
// classifier overload is NOT an error — degrading to the gate verdict
// is the designed behaviour.
func (g *GatedModel) Run(ctx context.Context, jobs []pisa.Job) ([]GatedVerdict, error) {
	t, err := g.gate.SubmitCtx(ctx, jobs)
	if err != nil {
		return nil, err
	}
	gres := t.Wait()
	if err := t.Err(); err != nil {
		return nil, err
	}

	out := make([]GatedVerdict, len(gres))
	var fwd []pisa.Job
	var fwdAt []int
	for i, r := range gres {
		out[i] = GatedVerdict{Anomalous: r.Class != 0, Class: -1}
		if len(r.Outs) > 1 {
			out[i].Score = r.Outs[1]
		} else if len(r.Outs) > 0 {
			out[i].Score = r.Outs[0]
		}
		if out[i].Anomalous {
			continue
		}
		fwdAt = append(fwdAt, i)
		j := pisa.Job{Hash: jobs[i].Hash, In: jobs[i].In}
		if len(r.Outs) > 2 {
			// r.Outs aliases the gate engine's reused buffer; detach the
			// window before the classifier batch runs.
			j.In = append([]int32(nil), r.Outs[2:]...)
		}
		fwd = append(fwd, j)
	}
	if len(fwd) == 0 {
		return out, nil
	}

	// Degraded mode bypasses the classifier outright except for
	// periodic recovery probes.
	g.mu.Lock()
	attempt := true
	if g.degradedNow {
		g.probeTick++
		attempt = g.probeTick%g.pol.ProbeEvery == 0
	}
	g.mu.Unlock()
	if !attempt {
		g.cls.degradedBatches.Add(1)
		return out, nil
	}

	res, err := g.cls.RunCtx(ctx, fwd)
	if err != nil {
		var ov *pisa.ErrOverloaded
		if errors.As(err, &ov) || errors.Is(err, context.DeadlineExceeded) {
			// Overload: serve the gate verdict alone and advance the
			// degrade hysteresis.
			g.cls.degradedBatches.Add(1)
			g.noteOverload()
			return out, nil
		}
		return nil, fmt.Errorf("serve: gated %q classifier stage: %w", g.cls.name, err)
	}
	for i, r := range res {
		out[fwdAt[i]].Class = r.Class
	}
	g.noteHealthy()
	return out, nil
}

// noteOverload advances the enter hysteresis after a shed classifier
// batch.
func (g *GatedModel) noteOverload() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.healthyStreak = 0
	g.enterStreak++
	if !g.degradedNow && g.enterStreak >= g.pol.EnterStreak {
		g.degradedNow = true
		g.probeTick = 0
		g.cls.degraded.Store(true)
	}
}

// noteHealthy advances the exit hysteresis after a served classifier
// batch.
func (g *GatedModel) noteHealthy() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.enterStreak = 0
	if g.degradedNow {
		g.healthyStreak++
		if g.healthyStreak >= g.pol.ExitStreak {
			g.degradedNow = false
			g.cls.degraded.Store(false)
		}
	}
}
