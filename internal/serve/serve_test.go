package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// statefulEmission builds a runnable synthetic emission with per-flow
// state: out0 = (flowcnt[in0&255] += in0) + bias. Jobs driving it must
// set Hash = uint32(In[0] & 255) so the register cell stays in the
// submitting shard's bank (the engine's cell ≡ Hash mod shards
// convention). bias distinguishes program generations in swap tests;
// stages pads the pipeline for admission tests.
func statefulEmission(t *testing.T, name string, bias int32, stages int) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	in0 := l.MustAdd("in0", 16)
	slot := l.MustAdd("slot", 32)
	acc := l.MustAdd("acc", 32)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	reg, err := pisa.NewRegister("flowcnt", 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &pisa.Table{Name: "t_acc", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: slot, A: in0, Imm: 255},
			{Kind: pisa.OpRegAdd, Reg: ri, Dst: acc, A: slot, B: in0},
		}})
	prog.Place(1, &pisa.Table{Name: "t_bias", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: acc, Imm: bias}}})
	for s := 2; s < stages; s++ {
		prog.Place(s, &pisa.Table{Name: fmt.Sprintf("t_pad%d", s), Kind: pisa.MatchNone,
			DefaultData: []int32{},
			Action:      []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: out0, Imm: 0}}})
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
}

// statelessEmission builds out0 = in0 + bias with no per-flow state —
// safe under arbitrary job hashes (trafficgen load).
func statelessEmission(t *testing.T, name string, bias int32, stages int) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	in0 := l.MustAdd("in0", 16)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	prog.Place(0, &pisa.Table{Name: "t_bias", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: in0, Imm: bias}}})
	for s := 1; s < stages; s++ {
		prog.Place(s, &pisa.Table{Name: fmt.Sprintf("t_pad%d", s), Kind: pisa.MatchNone,
			DefaultData: []int32{},
			Action:      []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: out0, Imm: 0}}})
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return &core.Emitted{Target: "test", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}
}

// flowJobs builds n jobs with Hash tied to the flow slot, as the
// stateful emission requires.
func flowJobs(n int, seed int32) []pisa.Job {
	jobs := make([]pisa.Job, n)
	for i := range jobs {
		v := (seed + int32(i)*37) % 1000
		jobs[i] = pisa.Job{Hash: uint32(v & 255), In: []int32{v}}
	}
	return jobs
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(Options{Name: "test", Cap: pisa.Tofino2.Pipes(2), Budget: 4})
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s
}

// TestRegisterAndRun covers the basic lifecycle: two admitted models
// served concurrently with correct, independent results and metrics
// that account every submission.
func TestRegisterAndRun(t *testing.T) {
	s := newTestServer(t)
	a, err := s.Register("alpha", statefulEmission(t, "alpha", 1000, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register("beta", statelessEmission(t, "beta", 7, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("alpha", statelessEmission(t, "alpha2", 0, 1), 1, SLO{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	jobs := flowJobs(64, 3)
	// alpha accumulates per-flow: expected value needs the same fold.
	state := map[int32]int32{}
	want := make([]int32, len(jobs))
	for i, j := range jobs {
		slotID := j.In[0] & 255
		state[slotID] += j.In[0]
		want[i] = state[slotID] + 1000
	}
	ta := a.Submit(jobs)
	tb := b.Submit(flowJobs(32, 9))
	resB := tb.Wait()
	resA := ta.Wait()
	for i := range resA {
		if resA[i].Outs[0] != want[i] {
			t.Fatalf("alpha job %d: out %d, want %d", i, resA[i].Outs[0], want[i])
		}
	}
	if len(resB) != 32 {
		t.Fatalf("beta results: %d, want 32", len(resB))
	}
	for i, r := range resB {
		// beta's input sequence mirrors flowJobs(32, 9).
		v := (9 + int32(i)*37) % 1000
		if r.Outs[0] != v+7 {
			t.Fatalf("beta job %d: out %d, want %d", i, r.Outs[0], v+7)
		}
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.Packets != 64 || sb.Packets != 32 {
		t.Fatalf("stats packets (%d, %d), want (64, 32)", sa.Packets, sb.Packets)
	}
	snap := s.Snapshot()
	if snap.Admitted != 2 || snap.Rejected != 0 || len(snap.Models) != 2 {
		t.Fatalf("snapshot admitted=%d rejected=%d models=%d", snap.Admitted, snap.Rejected, len(snap.Models))
	}

	if err := s.Unregister("beta"); err != nil {
		t.Fatal(err)
	}
	if s.Model("beta") != nil || len(s.Models()) != 1 {
		t.Fatal("beta still registered after Unregister")
	}
	if got := a.Run(flowJobs(8, 3)); len(got) != 8 {
		t.Fatalf("alpha run after unregister: %d results", len(got))
	}
}

// TestMetricsEndpoint asserts the HTTP metrics document is valid JSON
// naming every registered model with coherent counters.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	names := []string{"m0", "m1", "m2"}
	for i, n := range names {
		m, err := s.Register(n, statelessEmission(t, n, int32(i), 1), i+1, SLO{TargetShare: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(flowJobs(40, int32(i)))
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics endpoint: HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics endpoint returned invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Deployment != "test" || snap.Budget != 4 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	got := map[string]ModelMetrics{}
	for _, mm := range snap.Models {
		got[mm.Name] = mm
	}
	var occ float64
	for i, n := range names {
		mm, ok := got[n]
		if !ok {
			t.Fatalf("model %q missing from metrics: %s", n, rec.Body.String())
		}
		if mm.Version != 1 || mm.Weight != i+1 || mm.Packets != 40 {
			t.Fatalf("model %q metrics: %+v", n, mm)
		}
		var hist uint64
		for _, c := range mm.WaitHist {
			hist += c
		}
		if hist != mm.Tasks {
			t.Fatalf("model %q: ΣWaitHist %d != tasks %d", n, hist, mm.Tasks)
		}
		occ += mm.Occupancy
	}
	if occ < 0.99 || occ > 1.01 {
		t.Fatalf("occupancies sum to %v, want ~1", occ)
	}
}
