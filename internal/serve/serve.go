// Package serve is the serving control plane over the shared-budget
// scheduler: the host-side runtime that operates a multi-model switch
// deployment as an inference service (Pegasus §7.4/§8 frame the
// dataplane this way; Taurus and FENIX argue per-packet ML needs
// exactly this admit/monitor/swap loop next to the datapath).
//
// A Server owns one pisa.Scheduler and a core.Deployment-shaped
// capacity ledger. Models enter through Register, which ADMITS the
// candidate emission against the remaining combined budget and rejects
// over-capacity registrations with a structured resource report before
// any scheduler state changes. Registered models are served through
// Model.Submit/Run, swapped live through Model.Swap (drain + state
// migration, zero dropped results), retuned by the SLO feedback loop
// (TuneOnce/StartTuner), and observed through Snapshot — a
// machine-readable metrics document also served over HTTP.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Options configures a serving control plane.
type Options struct {
	// Name labels the deployment in reports and metrics.
	Name string
	// Cap is the combined hardware budget every admitted model must
	// co-fit, e.g. pisa.Tofino2.Pipes(2).
	Cap pisa.Capacity
	// Budget is the scheduler's worker-pool size (≤ 0 selects
	// GOMAXPROCS via pisa.NewScheduler).
	Budget int
	// Mode selects the execution mode for every engine the server
	// builds (zero value = pisa.ExecCompiled).
	Mode pisa.ExecMode
}

// SLO declares a model's serving targets for the weight auto-tuner.
// The zero value opts the model out of tuning.
type SLO struct {
	// TargetShare is the desired fraction of the pool's busy time
	// (0 disables occupancy tuning for this model).
	TargetShare float64 `json:"target_share,omitempty"`
	// MaxWait is the per-task queue-wait target; sustained violation
	// doubles the model's weight (0 disables).
	MaxWait time.Duration `json:"max_wait_ns,omitempty"`
}

// Server is the serving control plane: one scheduler, a capacity
// ledger, and the lifecycle of every registered model.
type Server struct {
	name  string
	cap   pisa.Capacity
	mode  pisa.ExecMode
	sched *pisa.Scheduler
	start time.Time

	mu     sync.Mutex // guards models, order, tune bookkeeping
	models map[string]*Model
	order  []string // registration order, for stable metrics

	admitted atomic.Uint64
	rejected atomic.Uint64
	swaps    atomic.Uint64

	tunerStop chan struct{}
	tunerWG   sync.WaitGroup
	closed    bool
}

// Model is one registered model's serving handle. Submissions are
// serialized per model (the engine's single-outstanding-batch
// contract); Swap acquires the same lock, so a cutover automatically
// drains the in-flight batch before flipping versions.
type Model struct {
	srv  *Server
	name string
	slo  SLO

	// runMu serializes Submit/Run/RunPackets and Swap's cutover. cur
	// only changes with runMu held.
	runMu sync.Mutex
	// stateMu lets lock-free readers (Stats, metrics) snapshot cur and
	// base without contending with a long-running batch.
	stateMu sync.RWMutex
	cur     *version
	// base accumulates the retired versions' counters so a model's
	// stats survive swaps (EngineStats.Add).
	base pisa.EngineStats

	// Tuner bookkeeping: counters at the previous TuneOnce, guarded by
	// srv.mu.
	tuneBusy  time.Duration
	tuneWait  time.Duration
	tuneTasks uint64
}

// version is one emitted program generation bound to a live session.
type version struct {
	id  int
	em  *core.Emitted
	eng *pisa.Engine
}

// NewServer starts a serving control plane over a fresh shared-budget
// scheduler. Close releases the pool.
func NewServer(opts Options) *Server {
	if opts.Name == "" {
		opts.Name = "serve"
	}
	return &Server{
		name:   opts.Name,
		cap:    opts.Cap,
		mode:   opts.Mode,
		sched:  pisa.NewScheduler(opts.Budget),
		start:  time.Now(),
		models: map[string]*Model{},
	}
}

// Name returns the deployment label.
func (s *Server) Name() string { return s.name }

// Scheduler exposes the underlying pool (stats, budget).
func (s *Server) Scheduler() *pisa.Scheduler { return s.sched }

// AdmissionError is a rejected registration or swap: the candidate
// does not fit the remaining combined capacity. Report carries the
// structured per-dimension, per-program breakdown.
type AdmissionError struct {
	Model  string
	Op     string // "register" or "swap"
	Report *core.BudgetError
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: %s %q rejected: %v", e.Op, e.Model, e.Report)
}

// Unwrap exposes the core.BudgetError to errors.As.
func (e *AdmissionError) Unwrap() error { return e.Report }

// deployment snapshots the live emissions as a core.Deployment ledger
// (caller holds s.mu).
func (s *Server) deploymentLocked() core.Deployment {
	d := core.Deployment{Name: s.name, Cap: s.cap}
	for _, name := range s.order {
		m := s.models[name]
		m.stateMu.RLock()
		d.Models = append(d.Models, m.cur.em)
		m.stateMu.RUnlock()
	}
	return d
}

// Deployment returns the live capacity ledger (a snapshot — Summary,
// Resources and Headroom work on it).
func (s *Server) Deployment() core.Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deploymentLocked()
}

// Register admits a model into the deployment and brings it live.
//
// Admission runs FIRST: the candidate emission is validated against
// the remaining combined capacity (core.Deployment.Admit — extraction
// sharing applied). An over-capacity candidate is rejected with an
// *AdmissionError before any scheduler state changes; on success the
// emission's session is registered on the shared pool (compiling its
// execution plans) and the model begins serving at the given weight.
func (s *Server) Register(name string, em *core.Emitted, weight int, slo SLO) (*Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server %q is closed", s.name)
	}
	if _, ok := s.models[name]; ok {
		return nil, fmt.Errorf("serve: model %q already registered (use Swap to replace it)", name)
	}
	if err := s.admitLocked(name, em, nil); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	m := &Model{srv: s, name: name, slo: slo}
	m.cur = &version{id: 1, em: em, eng: s.newEngine(em, name, 1, weight)}
	s.models[name] = m
	s.order = append(s.order, name)
	s.admitted.Add(1)
	return m, nil
}

// admitLocked validates the deployment with `name` bound to em —
// replacing its live emission if the model exists, appending
// otherwise. replace is the model being swapped (nil on Register).
func (s *Server) admitLocked(name string, em *core.Emitted, replace *Model) error {
	d := core.Deployment{Name: s.name, Cap: s.cap}
	for _, n := range s.order {
		m := s.models[n]
		if m == replace {
			continue
		}
		m.stateMu.RLock()
		d.Models = append(d.Models, m.cur.em)
		m.stateMu.RUnlock()
	}
	op := "register"
	if replace != nil {
		op = "swap"
	}
	if err := d.Admit(em); err != nil {
		if be, ok := err.(*core.BudgetError); ok {
			return &AdmissionError{Model: name, Op: op, Report: be}
		}
		return fmt.Errorf("serve: %s %q rejected: %w", op, name, err)
	}
	// The new emission must own its programs: sharing a *pisa.Program
	// with a live session would alias register storage across engines.
	owned := map[*pisa.Program]string{}
	for _, n := range s.order {
		m := s.models[n]
		m.stateMu.RLock()
		for _, p := range m.cur.em.Programs() {
			owned[p] = n
		}
		m.stateMu.RUnlock()
	}
	for _, p := range em.Programs() {
		if holder, ok := owned[p]; ok {
			return fmt.Errorf("serve: %s %q rejected: emission shares program %q with live model %q (re-emit a fresh copy)",
				op, name, p.Name, holder)
		}
	}
	return nil
}

// newEngine registers the emission's session on the pool under the
// versioned label name@vN.
func (s *Server) newEngine(em *core.Emitted, name string, ver, weight int) *pisa.Engine {
	label := fmt.Sprintf("%s@v%d", name, ver)
	if em.Extract != nil {
		return em.NewPacketEngineOn(s.sched, label, weight, s.mode)
	}
	return em.NewEngineOn(s.sched, label, weight, s.mode)
}

// Model looks up a registered model by name (nil if absent).
func (s *Server) Model(name string) *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models[name]
}

// Models returns the registered models in registration order.
func (s *Server) Models() []*Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := make([]*Model, 0, len(s.order))
	for _, n := range s.order {
		ms = append(ms, s.models[n])
	}
	return ms
}

// Unregister retires a model: waits out its in-flight batch, releases
// its session, and frees its share of the capacity ledger.
func (s *Server) Unregister(name string) error {
	s.mu.Lock()
	m, ok := s.models[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: model %q not registered", name)
	}
	delete(s.models, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	m.runMu.Lock()
	defer m.runMu.Unlock()
	m.cur.eng.Drain()
	m.cur.eng.Close()
	return nil
}

// Close stops the tuner, retires every model, and releases the pool.
func (s *Server) Close() {
	s.StopTuner()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	models := make([]*Model, 0, len(s.order))
	for _, n := range s.order {
		models = append(models, s.models[n])
	}
	s.models = map[string]*Model{}
	s.order = nil
	s.mu.Unlock()
	for _, m := range models {
		m.runMu.Lock()
		m.cur.eng.Drain()
		m.cur.eng.Close()
		m.runMu.Unlock()
	}
	s.sched.Close()
}

// Name returns the model's registration name.
func (m *Model) Name() string { return m.name }

// Version returns the live emission's generation (1 at registration,
// +1 per swap).
func (m *Model) Version() int {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.id
}

// Emitted returns the live emission.
func (m *Model) Emitted() *core.Emitted {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.em
}

// SLO returns the model's declared serving targets.
func (m *Model) SLO() SLO {
	m.srv.mu.Lock()
	defer m.srv.mu.Unlock()
	return m.slo
}

// SetSLO redeclares the model's serving targets live.
func (m *Model) SetSLO(slo SLO) {
	m.srv.mu.Lock()
	defer m.srv.mu.Unlock()
	m.slo = slo
}

// Weight returns the live session's fair-share weight.
func (m *Model) Weight() int {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.eng.Weight()
}

// SetWeight retunes the live session's fair-share weight.
func (m *Model) SetWeight(w int) {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	m.cur.eng.SetWeight(w)
}

// Stats returns the model's cumulative serving counters across every
// version it has run (retired generations included).
func (m *Model) Stats() pisa.EngineStats {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	st := m.cur.eng.Stats()
	st.Add(m.base)
	st.Name = m.name
	return st
}

// Ticket is one in-flight submission: the model's submission lock is
// held until Wait returns, preserving the single-outstanding-batch
// contract across the version swap path.
type Ticket struct {
	m    *Model
	p    *pisa.Pending
	done bool
}

// Wait blocks until the batch has fully executed, releases the model
// for the next submission, and returns the results in job order.
func (t *Ticket) Wait() []pisa.Result {
	res := t.p.Wait()
	if !t.done {
		t.done = true
		t.m.runMu.Unlock()
	}
	return res
}

// Submit enqueues a batch on the model's live version without waiting
// for it. The caller MUST call Wait on the returned ticket — the model
// stays locked (blocking further submissions and swaps) until then. A
// driver keeps several models busy by submitting to each and then
// collecting the tickets.
func (m *Model) Submit(jobs []pisa.Job) *Ticket {
	m.runMu.Lock()
	return &Ticket{m: m, p: m.cur.eng.SubmitBatch(jobs)}
}

// Run pushes a batch through the live version and waits for the
// results.
func (m *Model) Run(jobs []pisa.Job) []pisa.Result {
	return m.Submit(jobs).Wait()
}

// RunPackets replays raw packets through the live version's extraction
// machine (registration must have carried an extraction emission).
func (m *Model) RunPackets(pkts []pisa.PacketIn) []pisa.PacketResult {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	return m.cur.eng.RunPackets(pkts)
}
