// Package serve is the serving control plane over the shared-budget
// scheduler: the host-side runtime that operates a multi-model switch
// deployment as an inference service (Pegasus §7.4/§8 frame the
// dataplane this way; Taurus and FENIX argue per-packet ML needs
// exactly this admit/monitor/swap loop next to the datapath).
//
// A Server owns one pisa.Scheduler and a core.Deployment-shaped
// capacity ledger. Models enter through Register, which ADMITS the
// candidate emission against the remaining combined budget and rejects
// over-capacity registrations with a structured resource report before
// any scheduler state changes. Registered models are served through
// Model.Submit/Run, swapped live through Model.Swap (drain + state
// migration, zero dropped results), retuned by the SLO feedback loop
// (TuneOnce/StartTuner), and observed through Snapshot — a
// machine-readable metrics document also served over HTTP.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Options configures a serving control plane.
type Options struct {
	// Name labels the deployment in reports and metrics.
	Name string
	// Cap is the combined hardware budget every admitted model must
	// co-fit, e.g. pisa.Tofino2.Pipes(2).
	Cap pisa.Capacity
	// Budget is the scheduler's worker-pool size (≤ 0 selects
	// GOMAXPROCS via pisa.NewScheduler).
	Budget int
	// Mode selects the execution mode for every engine the server
	// builds (zero value = pisa.ExecCompiled).
	Mode pisa.ExecMode
	// DrainTimeout bounds every drain the control plane performs
	// (Close, Unregister, Swap cutovers): a session that cannot drain
	// within it is reported in a structured *DrainError instead of
	// hanging the control plane forever (0 selects 5s, < 0 waits
	// forever — the historical behaviour).
	DrainTimeout time.Duration
	// WatchdogThreshold arms the scheduler's stalled-worker watchdog:
	// a worker stuck executing one task past the threshold is counted
	// (Snapshot.Stalls) and its queue re-routed to stealers (0 selects
	// 100ms, < 0 disables the watchdog).
	WatchdogThreshold time.Duration
}

// SLO declares a model's serving targets for the weight auto-tuner.
// The zero value opts the model out of tuning.
type SLO struct {
	// TargetShare is the desired fraction of the pool's busy time
	// (0 disables occupancy tuning for this model).
	TargetShare float64 `json:"target_share,omitempty"`
	// MaxWait is the per-task queue-wait target; sustained violation
	// doubles the model's weight (0 disables).
	MaxWait time.Duration `json:"max_wait_ns,omitempty"`
}

// Server is the serving control plane: one scheduler, a capacity
// ledger, and the lifecycle of every registered model.
type Server struct {
	name    string
	cap     pisa.Capacity
	mode    pisa.ExecMode
	sched   *pisa.Scheduler
	start   time.Time
	drainTO time.Duration

	mu       sync.Mutex // guards models, order, machines, tune bookkeeping
	models   map[string]*Model
	order    []string // registration order, for stable metrics
	machines map[*core.SharedExtraction]*sharedMachine

	admitted  atomic.Uint64
	rejected  atomic.Uint64
	swaps     atomic.Uint64
	rollbacks atomic.Uint64

	tunerStop chan struct{}
	tunerWG   sync.WaitGroup
	closed    bool
}

// Model is one registered model's serving handle. Submissions are
// serialized per model (the engine's single-outstanding-batch
// contract); Swap acquires the same lock, so a cutover automatically
// drains the in-flight batch before flipping versions.
type Model struct {
	srv  *Server
	name string
	slo  SLO

	// runMu serializes Submit/Run/RunPackets and Swap's cutover. cur
	// only changes with runMu held.
	runMu sync.Mutex
	// stateMu lets lock-free readers (Stats, metrics) snapshot cur and
	// base without contending with a long-running batch.
	stateMu sync.RWMutex
	cur     *version
	// base accumulates the retired versions' counters so a model's
	// stats survive swaps (EngineStats.Add).
	base pisa.EngineStats
	// shed is the model's overload policy, re-applied to every engine
	// generation (swap and canary sessions inherit it). Guarded by
	// stateMu.
	shed pisa.ShedPolicy

	// canary is the in-flight shadow version of a canary swap, mutated
	// only with runMu held (the submission path owns it).
	canary *canaryState
	// Canary observability for Snapshot readers (the canary itself is
	// runMu-guarded): live canary version id (0 = none), mirrored
	// samples and disagreements so far.
	canVersion  atomic.Int32
	canSamples  atomic.Uint64
	canDisagree atomic.Uint64

	// Degrade observability, driven by GatedModel for its classifier
	// stage: whether the gated pipeline currently bypasses this model,
	// and how many batches were served degraded.
	degraded        atomic.Bool
	degradedBatches atomic.Uint64

	// Tuner bookkeeping: counters at the previous TuneOnce, guarded by
	// srv.mu.
	tuneBusy  time.Duration
	tuneWait  time.Duration
	tuneTasks uint64

	// shared is the physical extraction machine this model subscribes
	// to (nil for private emissions). Set at Register, immutable for the
	// model's lifetime — swaps replace the subscriber engine in place.
	shared *sharedMachine
}

// version is one emitted program generation bound to a live session.
type version struct {
	id  int
	em  *core.Emitted
	eng *pisa.Engine
}

// NewServer starts a serving control plane over a fresh shared-budget
// scheduler. Close releases the pool.
func NewServer(opts Options) *Server {
	if opts.Name == "" {
		opts.Name = "serve"
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	s := &Server{
		name:     opts.Name,
		cap:      opts.Cap,
		mode:     opts.Mode,
		sched:    pisa.NewScheduler(opts.Budget),
		start:    time.Now(),
		drainTO:  opts.DrainTimeout,
		models:   map[string]*Model{},
		machines: map[*core.SharedExtraction]*sharedMachine{},
	}
	if opts.WatchdogThreshold >= 0 {
		s.sched.StartWatchdog(opts.WatchdogThreshold)
	}
	return s
}

// Name returns the deployment label.
func (s *Server) Name() string { return s.name }

// Scheduler exposes the underlying pool (stats, budget).
func (s *Server) Scheduler() *pisa.Scheduler { return s.sched }

// AdmissionError is a rejected registration or swap. A capacity
// rejection carries the structured per-dimension, per-program breakdown
// in Report; an SLO rejection (the candidate's declared TargetShare,
// summed with the incumbents', exceeds the whole pool) carries Report
// nil and the overcommit arithmetic in Reason.
type AdmissionError struct {
	Model  string
	Op     string // "register" or "swap"
	Reason string // non-capacity rejection cause (SLO overcommit)
	Report *core.BudgetError
}

func (e *AdmissionError) Error() string {
	if e.Report == nil {
		return fmt.Sprintf("serve: %s %q rejected: %s", e.Op, e.Model, e.Reason)
	}
	return fmt.Sprintf("serve: %s %q rejected: %v", e.Op, e.Model, e.Report)
}

// Unwrap exposes the core.BudgetError to errors.As (nil for SLO
// rejections).
func (e *AdmissionError) Unwrap() error {
	if e.Report == nil {
		return nil
	}
	return e.Report
}

// DrainError reports sessions that failed to quiesce within the drain
// timeout during Close, Unregister or a Swap cutover. The named
// sessions' batches are still in flight on the pool — a stalled worker
// or a wedged plan holds them — so their resources are intentionally
// leaked rather than freed out from under a running task.
type DrainError struct {
	Deployment string
	Op         string // "close", "unregister" or "swap"
	Timeout    time.Duration
	Sessions   []string // session labels (name@vN) that failed to drain
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("serve: %s on %q: %d session(s) failed to drain within %v: %v",
		e.Op, e.Deployment, len(e.Sessions), e.Timeout, e.Sessions)
}

// deployment snapshots the live emissions as a core.Deployment ledger
// (caller holds s.mu).
func (s *Server) deploymentLocked() core.Deployment {
	d := core.Deployment{Name: s.name, Cap: s.cap}
	for _, name := range s.order {
		m := s.models[name]
		m.stateMu.RLock()
		d.Models = append(d.Models, m.cur.em)
		m.stateMu.RUnlock()
	}
	return d
}

// Deployment returns the live capacity ledger (a snapshot — Summary,
// Resources and Headroom work on it).
func (s *Server) Deployment() core.Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deploymentLocked()
}

// Register admits a model into the deployment and brings it live.
//
// Admission runs FIRST: the candidate emission is validated against
// the remaining combined capacity (core.Deployment.Admit — extraction
// sharing applied) AND against the tuner's share ledger — a candidate
// whose declared SLO.TargetShare, summed with the incumbents', exceeds
// the whole pool is rejected up front (the tuner could never satisfy
// everyone; weights would just climb to the clamp ceiling). Rejection
// is an *AdmissionError before any scheduler state changes; on success
// the emission's session is registered on the shared pool (compiling
// its execution plans) and the model begins serving at the given
// weight.
func (s *Server) Register(name string, em *core.Emitted, weight int, slo SLO) (*Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server %q is closed", s.name)
	}
	if _, ok := s.models[name]; ok {
		return nil, fmt.Errorf("serve: model %q already registered (use Swap to replace it)", name)
	}
	if err := s.admitShareLocked(name, slo); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	if err := s.admitLocked(name, em, nil); err != nil {
		s.rejected.Add(1)
		return nil, err
	}
	m := &Model{srv: s, name: name, slo: slo}
	if em.Shared != nil {
		// Physically shared extraction: the model becomes a pure-
		// combinational subscriber of the handle's machine (brought up
		// on first subscription); its RunPackets route through the
		// machine's fan-out.
		mach, eng, err := s.attachSharedLocked(name, em, weight)
		if err != nil {
			s.rejected.Add(1)
			return nil, err
		}
		m.shared = mach
		m.cur = &version{id: 1, em: em, eng: eng}
	} else {
		m.cur = &version{id: 1, em: em, eng: s.newEngine(em, name, 1, weight)}
	}
	s.models[name] = m
	s.order = append(s.order, name)
	s.admitted.Add(1)
	return m, nil
}

// admitShareLocked rejects a candidate SLO whose TargetShare, summed
// with every incumbent's, overcommits the pool (> 1.0 busy-time
// share). Caller holds s.mu.
func (s *Server) admitShareLocked(name string, slo SLO) error {
	if slo.TargetShare <= 0 {
		return nil
	}
	sum := slo.TargetShare
	for _, n := range s.order {
		sum += s.models[n].slo.TargetShare
	}
	// A hair of slack so exact partitions (0.5+0.5, 3×1/3) admit
	// through float rounding.
	if sum <= 1.0+1e-9 {
		return nil
	}
	return &AdmissionError{Model: name, Op: "register",
		Reason: fmt.Sprintf("SLO overcommit: declared target share %.3f raises the deployment total to %.3f (> 1.0 of pool busy time)",
			slo.TargetShare, sum)}
}

// admitLocked validates the deployment with `name` bound to em —
// replacing its live emission if the model exists, appending
// otherwise. replace is the model being swapped (nil on Register).
func (s *Server) admitLocked(name string, em *core.Emitted, replace *Model) error {
	d := core.Deployment{Name: s.name, Cap: s.cap}
	for _, n := range s.order {
		m := s.models[n]
		if m == replace {
			continue
		}
		m.stateMu.RLock()
		d.Models = append(d.Models, m.cur.em)
		m.stateMu.RUnlock()
	}
	op := "register"
	if replace != nil {
		op = "swap"
	}
	if err := d.Admit(em); err != nil {
		if be, ok := err.(*core.BudgetError); ok {
			return &AdmissionError{Model: name, Op: op, Report: be}
		}
		return fmt.Errorf("serve: %s %q rejected: %w", op, name, err)
	}
	// The new emission must own its programs: sharing a *pisa.Program
	// with a live session would alias register storage across engines.
	owned := map[*pisa.Program]string{}
	for _, n := range s.order {
		m := s.models[n]
		m.stateMu.RLock()
		for _, p := range m.cur.em.Programs() {
			owned[p] = n
		}
		m.stateMu.RUnlock()
	}
	for _, p := range em.Programs() {
		if holder, ok := owned[p]; ok {
			return fmt.Errorf("serve: %s %q rejected: emission shares program %q with live model %q (re-emit a fresh copy)",
				op, name, p.Name, holder)
		}
	}
	return nil
}

// newEngine registers the emission's session on the pool under the
// versioned label name@vN.
func (s *Server) newEngine(em *core.Emitted, name string, ver, weight int) *pisa.Engine {
	label := fmt.Sprintf("%s@v%d", name, ver)
	if em.Extract != nil {
		return em.NewPacketEngineOn(s.sched, label, weight, s.mode)
	}
	return em.NewEngineOn(s.sched, label, weight, s.mode)
}

// Model looks up a registered model by name (nil if absent).
func (s *Server) Model(name string) *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models[name]
}

// Models returns the registered models in registration order.
func (s *Server) Models() []*Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := make([]*Model, 0, len(s.order))
	for _, n := range s.order {
		ms = append(ms, s.models[n])
	}
	return ms
}

// lockWithTimeout acquires mu, giving up after d (d < 0 blocks
// forever). The bounded acquisition is what protects the control plane
// from a WEDGED SUBMITTER: a Ticket whose batch is stuck on a stalled
// worker holds the model's runMu inside Wait, so an unbounded Lock
// would inherit the hang no matter how short the engine drain bound
// is. The helper queues as a real waiter (TryLock polling would starve
// behind closed-loop submitters that re-acquire runMu back to back);
// on timeout it is abandoned and releases the mutex itself whenever
// the acquisition eventually completes.
func lockWithTimeout(mu *sync.Mutex, d time.Duration) bool {
	if d < 0 {
		mu.Lock()
		return true
	}
	acquired := make(chan struct{})
	abandoned := make(chan struct{})
	go func() {
		mu.Lock()
		select {
		case acquired <- struct{}{}:
		case <-abandoned:
			mu.Unlock()
		}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-acquired:
		return true
	case <-timer.C:
		close(abandoned)
		return false
	}
}

// sessionLabel names the model's live session for drain errors.
func (m *Model) sessionLabel() string {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return fmt.Sprintf("%s@v%d", m.name, m.cur.id)
}

// retire drains and closes the model's live session (and aborts any
// in-flight canary) within the server's drain timeout. Returns the
// labels of sessions that failed to quiesce — their engines are leaked
// deliberately: closing an engine under a running task would free
// buffers out from under a worker.
func (s *Server) retire(m *Model, reason string) []string {
	if !lockWithTimeout(&m.runMu, s.drainTO) {
		return []string{m.sessionLabel()}
	}
	defer m.runMu.Unlock()
	if cs := m.canary; cs != nil {
		m.abortCanary(cs, reason)
	}
	if !m.cur.eng.DrainTimeout(s.drainTO) {
		return []string{m.sessionLabel()}
	}
	m.cur.eng.Close()
	return nil
}

// Unregister retires a model: waits out its in-flight batch (bounded
// by Options.DrainTimeout), releases its session, and frees its share
// of the capacity ledger. A session that cannot drain is reported in a
// *DrainError; the model is unregistered either way.
func (s *Server) Unregister(name string) error {
	s.mu.Lock()
	m, ok := s.models[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: model %q not registered", name)
	}
	delete(s.models, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if m.shared != nil {
		// Detach from the fan-out first: co-subscribers keep the shared
		// flow state (registers reset only when the last one leaves),
		// and no window reaches this model's session once retire drains
		// it.
		s.detachShared(m)
	}
	if stuck := s.retire(m, "model unregistered"); len(stuck) > 0 {
		return &DrainError{Deployment: s.name, Op: "unregister", Timeout: s.drainTO, Sessions: stuck}
	}
	return nil
}

// Close stops the tuner, retires every model, and releases the pool.
// Each model's drain is bounded by Options.DrainTimeout: sessions that
// fail to quiesce are named in the returned *DrainError, and the pool
// itself is left running in that case (its workers hold the stuck
// batches) rather than hanging Close forever. Idempotent.
func (s *Server) Close() error {
	s.StopTuner()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	models := make([]*Model, 0, len(s.order))
	for _, n := range s.order {
		models = append(models, s.models[n])
	}
	machines := make([]*sharedMachine, 0, len(s.machines))
	for _, mach := range s.machines {
		machines = append(machines, mach)
	}
	s.models = map[string]*Model{}
	s.order = nil
	s.machines = map[*core.SharedExtraction]*sharedMachine{}
	s.mu.Unlock()
	var stuck []string
	for _, m := range models {
		stuck = append(stuck, s.retire(m, "server closed")...)
	}
	if len(stuck) > 0 {
		return &DrainError{Deployment: s.name, Op: "close", Timeout: s.drainTO, Sessions: stuck}
	}
	// Every subscriber is retired, so the machines are quiescent.
	for _, mach := range machines {
		mach.eng.Close()
	}
	s.sched.Close()
	return nil
}

// Name returns the model's registration name.
func (m *Model) Name() string { return m.name }

// Version returns the live emission's generation (1 at registration,
// +1 per swap).
func (m *Model) Version() int {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.id
}

// Emitted returns the live emission.
func (m *Model) Emitted() *core.Emitted {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.em
}

// SLO returns the model's declared serving targets.
func (m *Model) SLO() SLO {
	m.srv.mu.Lock()
	defer m.srv.mu.Unlock()
	return m.slo
}

// SetSLO redeclares the model's serving targets live.
func (m *Model) SetSLO(slo SLO) {
	m.srv.mu.Lock()
	defer m.srv.mu.Unlock()
	m.slo = slo
}

// Weight returns the live session's fair-share weight.
func (m *Model) Weight() int {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.cur.eng.Weight()
}

// SetWeight retunes the live session's fair-share weight.
func (m *Model) SetWeight(w int) {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	m.cur.eng.SetWeight(w)
}

// Stats returns the model's cumulative serving counters across every
// version it has run (retired generations included).
func (m *Model) Stats() pisa.EngineStats {
	_, _, st := m.view()
	return st
}

// view snapshots version, weight and cumulative stats under ONE lock
// acquisition, so a metrics scrape racing a swap can never observe a
// torn (version, weight) pair — the triple is consistent with a single
// instant of the model's lifecycle.
func (m *Model) view() (version, weight int, st pisa.EngineStats) {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	st = m.cur.eng.Stats()
	st.Add(m.base)
	st.Name = m.name
	return m.cur.id, m.cur.eng.Weight(), st
}

// SetShedPolicy installs the model's overload bounds: submissions over
// the policy are rejected up front with pisa.ErrOverloaded (SubmitCtx/
// RunCtx) instead of queueing without limit. The policy survives swaps
// — every later engine generation (swap targets, canary shadows)
// inherits it.
func (m *Model) SetShedPolicy(p pisa.ShedPolicy) {
	m.stateMu.Lock()
	m.shed = p
	m.cur.eng.SetShedPolicy(p)
	m.stateMu.Unlock()
}

// ShedPolicy returns the model's current overload bounds.
func (m *Model) ShedPolicy() pisa.ShedPolicy {
	m.stateMu.RLock()
	defer m.stateMu.RUnlock()
	return m.shed
}

// Ticket is one in-flight submission: the model's submission lock is
// held until Wait returns, preserving the single-outstanding-batch
// contract across the version swap path.
type Ticket struct {
	m    *Model
	p    *pisa.Pending
	done bool

	// Canary mirroring: the same jobs shadow-submitted to the canary
	// session, compared against the authoritative results at Wait.
	jobs []pisa.Job
	cp   *pisa.Pending
}

// Wait blocks until the batch has fully executed, releases the model
// for the next submission, and returns the results in job order. When
// a canary swap is in flight, Wait also collects the mirrored shadow
// batch, scores it against the authoritative results, and — once the
// decision window is met — promotes or rolls back the canary before
// releasing the lock.
func (t *Ticket) Wait() []pisa.Result {
	res := t.p.Wait()
	if !t.done {
		t.done = true
		if t.cp != nil {
			t.m.observeCanary(t.jobs, res, t.cp.Wait())
		}
		t.m.decideCanary()
		t.m.runMu.Unlock()
	}
	return res
}

// Err reports whether the serving session was poisoned by a plan panic
// during (or before) this batch — call it after Wait; a non-nil error
// means the results are not trustworthy and the model needs a swap.
func (t *Ticket) Err() error {
	if t.p == nil {
		return nil
	}
	return t.p.Err()
}

// Submit enqueues a batch on the model's live version without waiting
// for it. The caller MUST call Wait on the returned ticket — the model
// stays locked (blocking further submissions and swaps) until then. A
// driver keeps several models busy by submitting to each and then
// collecting the tickets.
func (m *Model) Submit(jobs []pisa.Job) *Ticket {
	m.runMu.Lock()
	t := &Ticket{m: m, p: m.cur.eng.SubmitBatch(jobs)}
	m.mirrorCanary(t, jobs)
	return t
}

// SubmitCtx is Submit behind the model's shed policy and the context
// deadline: an over-bound or deadline-infeasible batch is rejected up
// front with *pisa.ErrOverloaded (reject-newest — admitted work keeps
// its place), a poisoned session with *pisa.ErrPoisoned. On error the
// model is NOT left locked and no ticket exists.
func (m *Model) SubmitCtx(ctx context.Context, jobs []pisa.Job) (*Ticket, error) {
	m.runMu.Lock()
	p, err := m.cur.eng.SubmitBatchCtx(ctx, jobs)
	if err != nil {
		m.runMu.Unlock()
		return nil, err
	}
	t := &Ticket{m: m, p: p}
	m.mirrorCanary(t, jobs)
	return t, nil
}

// Run pushes a batch through the live version and waits for the
// results.
func (m *Model) Run(jobs []pisa.Job) []pisa.Result {
	return m.Submit(jobs).Wait()
}

// RunCtx is Run behind the model's shed policy (see SubmitCtx).
func (m *Model) RunCtx(ctx context.Context, jobs []pisa.Job) ([]pisa.Result, error) {
	t, err := m.SubmitCtx(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := t.Wait()
	return res, t.Err()
}

// RunPackets replays raw packets through the live version's extraction
// machine (registration must have carried an extraction emission or a
// shared-extraction binding). Models subscribed to a physically shared
// machine route through its fan-out: the machine pays each packet's
// register RMWs once and every co-subscriber classifies the fired
// windows (see runSharedPackets). Canary swaps do not mirror the
// packet path: extraction state is per-session and a shadow replay
// would fire on different window boundaries — canary scoring applies
// to the batch path only.
func (m *Model) RunPackets(pkts []pisa.PacketIn) []pisa.PacketResult {
	if m.shared != nil {
		return m.runSharedPackets(pkts)
	}
	m.runMu.Lock()
	defer m.runMu.Unlock()
	return m.cur.eng.RunPackets(pkts)
}
