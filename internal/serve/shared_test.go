package serve

import (
	"strings"
	"sync"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// seqMachine emits a fresh physically shared seq extraction machine
// (window 8 over 256 flow slots). Each call returns an independent
// handle with its own register storage, so baselines never share state
// with the run under test.
func seqMachine(t *testing.T) *core.SharedExtraction {
	t.Helper()
	shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
		core.ExtractSpec{Kind: core.ExtractSeq, Window: 8}, 256)
	if err != nil {
		t.Fatal(err)
	}
	return shared
}

// sharedSubscriber builds a register-free classifier bound to the
// machine: out0 = Σ window fields + bias, Class = out0. bias
// distinguishes models and program generations.
func sharedSubscriber(t *testing.T, name string, shared *core.SharedExtraction, bias int32) *core.Emitted {
	t.Helper()
	var l pisa.Layout
	win := shared.Em.OutFields
	ins := make([]pisa.FieldID, len(win))
	for i := range win {
		ins[i] = l.MustAdd(shared.Em.Prog.Layout.Name(win[i]), 16)
	}
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	ops := []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: ins[0], Imm: bias}}
	for _, f := range ins[1:] {
		ops = append(ops, pisa.Op{Kind: pisa.OpAdd, Dst: out0, A: out0, B: f})
	}
	prog.Place(0, &pisa.Table{Name: "t_sum", Kind: pisa.MatchNone, DefaultData: []int32{}, Action: ops})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	em := &core.Emitted{Target: "test", Prog: prog, InFields: ins,
		OutFields: []pisa.FieldID{out0}, ClassField: out0, Stages: len(prog.Stages)}
	em.Shared = shared
	return em
}

// seqPackets builds a raw trace of nFlows interleaved flows with per
// packets each: distinct register slots, strictly increasing times.
// phase offsets the per-flow packet numbering so successive calls
// continue the same logical flows.
func seqPackets(nFlows, per, phase int) []pisa.PacketIn {
	var pkts []pisa.PacketIn
	for i := 0; i < per; i++ {
		for f := 0; f < nFlows; f++ {
			n := phase + i
			pkts = append(pkts, pisa.PacketIn{
				Hash:   uint32(f),
				Fields: []int32{int32(100 + 10*f + n), int32(1000*(n+1) + 10*f)},
			})
		}
	}
	return pkts
}

// detachResults deep-copies packet results out of the engine's reused
// arena.
func detachResults(res []pisa.PacketResult) []pisa.PacketResult {
	out := make([]pisa.PacketResult, len(res))
	for i, r := range res {
		out[i] = pisa.PacketResult{Pkt: r.Pkt, Class: r.Class, Outs: append([]int32(nil), r.Outs...)}
	}
	return out
}

func samePacketResults(t *testing.T, what string, got, want []pisa.PacketResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d fires, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Pkt != want[i].Pkt || got[i].Class != want[i].Class {
			t.Fatalf("%s: fire %d = (pkt %d, class %d), want (pkt %d, class %d)",
				what, i, got[i].Pkt, got[i].Class, want[i].Pkt, want[i].Class)
		}
		for j := range want[i].Outs {
			if got[i].Outs[j] != want[i].Outs[j] {
				t.Fatalf("%s: fire %d out[%d] = %d, want %d", what, i, j, got[i].Outs[j], want[i].Outs[j])
			}
		}
	}
}

// TestSharedMachineLifecycle covers the serving plane's subscriber
// lifecycle: three models attach to one machine, the machine pays the
// per-packet register RMWs exactly once (subscribers report zero),
// detaching one subscriber leaves the shared flow state untouched for
// the others, and only the LAST unregister resets the bank and releases
// the machine session.
func TestSharedMachineLifecycle(t *testing.T) {
	s := newTestServer(t)
	shared := seqMachine(t)
	ma, err := s.Register("m-a", sharedSubscriber(t, "sub-a", shared, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Register("m-b", sharedSubscriber(t, "sub-b", shared, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("m-c", sharedSubscriber(t, "sub-c", shared, 3), 1, SLO{}); err != nil {
		t.Fatal(err)
	}

	// A stateful emission cannot subscribe.
	bad := statefulEmission(t, "bad-sub", 0, 2)
	bad.Shared = shared
	if _, err := s.Register("m-bad", bad, 1, SLO{}); err == nil || !strings.Contains(err.Error(), "registers") {
		t.Fatalf("stateful subscriber admitted: %v", err)
	}

	spec, subs, ok := ma.SharedMachine()
	if !ok || spec != shared.Spec {
		t.Fatalf("SharedMachine = (%v, %v, %v)", spec, subs, ok)
	}
	if len(subs) != 3 || subs[0] != "m-a" || subs[1] != "m-b" || subs[2] != "m-c" {
		t.Fatalf("subscribers %v, want [m-a m-b m-c]", subs)
	}

	// 8 flows × 12 packets: one full window plus 4 banked per flow. The
	// caller gets its own row; every subscriber classifies.
	const nFlows = 8
	run1 := seqPackets(nFlows, 12, 0)
	resA := detachResults(ma.RunPackets(run1))
	if len(resA) != nFlows {
		t.Fatalf("run1 fired %d windows, want %d", len(resA), nFlows)
	}

	// Exactly-once RMWs: the machine's count over this trace equals a
	// standalone machine engine's (one prelude), and every subscriber
	// reports zero.
	base := seqMachine(t)
	ref := base.Em.NewPacketEngine(1, pisa.ExecCompiled)
	ref.ResetState()
	ref.RunPackets(run1)
	wantRMWs := ref.Stats().RegRMWs
	ref.Close()
	snap := s.Snapshot()
	if len(snap.Machines) != 1 {
		t.Fatalf("%d machines in snapshot, want 1", len(snap.Machines))
	}
	mm := snap.Machines[0]
	if mm.Packets != uint64(len(run1)) || mm.RegRMWs != wantRMWs || wantRMWs == 0 {
		t.Fatalf("machine packets %d RMWs %d, want %d packets and %d RMWs (exactly once)",
			mm.Packets, mm.RegRMWs, len(run1), wantRMWs)
	}
	if len(mm.Subscribers) != 3 {
		t.Fatalf("machine subscribers %v", mm.Subscribers)
	}
	for _, md := range snap.Models {
		if md.RegRMWs != 0 {
			t.Fatalf("subscriber %s executed %d register RMWs", md.Name, md.RegRMWs)
		}
		if md.SharedMachine == "" {
			t.Fatalf("subscriber %s reports no shared machine", md.Name)
		}
	}

	// Detach one subscriber: the shared registers are untouched, so the
	// 4 banked packets per flow complete their window 4 packets into the
	// next run (2 fires/flow over 12 more packets — a reset bank would
	// fire once).
	if err := s.Unregister("m-c"); err != nil {
		t.Fatal(err)
	}
	if _, subs, _ := ma.SharedMachine(); len(subs) != 2 {
		t.Fatalf("subscribers after detach %v", subs)
	}
	run2 := seqPackets(nFlows, 12, 12)
	resB := detachResults(mb.RunPackets(run2))
	if len(resB) != 2*nFlows {
		t.Fatalf("run2 fired %d windows, want %d (detach reset the shared bank?)", len(resB), 2*nFlows)
	}

	// Last subscriber out: machine released and bank reset — a fresh
	// tenant banks from zero (4 packets fire nothing, 4 more fire).
	if err := s.Unregister("m-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("m-b"); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); len(snap.Machines) != 0 {
		t.Fatalf("machines after last detach: %+v", snap.Machines)
	}
	md, err := s.Register("m-d", sharedSubscriber(t, "sub-d", shared, 4), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if res := md.RunPackets(seqPackets(nFlows, 4, 24)); len(res) != 0 {
		t.Fatalf("fresh tenant inherited %d banked windows", len(res))
	}
	if res := md.RunPackets(seqPackets(nFlows, 4, 28)); len(res) != nFlows {
		t.Fatalf("fresh tenant fired %d windows over a full window, want %d", len(res), nFlows)
	}
}

// TestSwapSharedSubscriber pins the live-swap semantics on a fan-out:
// swapping one subscriber mid-stream leaves the co-subscriber's
// classifications and the shared registers bit-identical to never
// having swapped — windows spanning the swap keep filling — and the
// unsupported shapes (canary on a subscriber, rebinding machines,
// crossing private↔shared) are rejected.
func TestSwapSharedSubscriber(t *testing.T) {
	const nFlows = 8
	half1 := seqPackets(nFlows, 12, 0)
	half2 := seqPackets(nFlows, 12, 12)

	// Baseline: no swap, same traffic split.
	sBase := newTestServer(t)
	sharedBase := seqMachine(t)
	baseA, err := sBase.Register("m-a", sharedSubscriber(t, "sub-a", sharedBase, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	baseB, err := sBase.Register("m-b", sharedSubscriber(t, "sub-b", sharedBase, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	wantA1 := detachResults(baseA.RunPackets(half1))
	wantB2 := detachResults(baseB.RunPackets(half2))

	s := newTestServer(t)
	shared := seqMachine(t)
	ma, err := s.Register("m-a", sharedSubscriber(t, "sub-a", shared, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Register("m-b", sharedSubscriber(t, "sub-b", shared, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	gotA1 := detachResults(ma.RunPackets(half1))
	samePacketResults(t, "m-a half1", gotA1, wantA1)

	// Rejections first: canary, foreign machine, shared→private.
	if _, err := ma.Swap(sharedSubscriber(t, "sub-a2", shared, 1),
		SwapOptions{Canary: &CanaryOptions{Fraction: 0.5}}); err == nil {
		t.Fatal("canary swap accepted on a shared-extraction subscriber")
	}
	other := seqMachine(t)
	if _, err := ma.Swap(sharedSubscriber(t, "sub-ax", other, 1), SwapOptions{}); err == nil ||
		!strings.Contains(err.Error(), "shared extraction machine") {
		t.Fatalf("machine rebind accepted: %v", err)
	}
	if _, err := ma.Swap(statelessEmission(t, "sub-priv", 1, 2), SwapOptions{}); err == nil {
		t.Fatal("shared→private swap accepted")
	}

	// The real swap: a fresh generation of m-a, same machine, identical
	// function. Co-subscriber m-b and the shared bank must not notice.
	rep, err := ma.Swap(sharedSubscriber(t, "sub-a", shared, 1), SwapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.To != rep.From+1 || rep.MigratedRegisters != 0 {
		t.Fatalf("swap report %+v (subscribers are register-free)", rep)
	}
	if ma.Version() != rep.To {
		t.Fatalf("version %d after swap, want %d", ma.Version(), rep.To)
	}
	gotB2 := detachResults(mb.RunPackets(half2))
	samePacketResults(t, "m-b half2 (windows spanning the swap)", gotB2, wantB2)

	// A private model cannot swap to a subscriber emission.
	mp, err := s.Register("m-p", statelessEmission(t, "priv", 5, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Swap(sharedSubscriber(t, "priv2", shared, 5), SwapOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unregister and re-register") {
		t.Fatalf("private→shared swap accepted: %v", err)
	}
}

// TestSharedFanoutRace drives one machine's fan-out from two subscriber
// models concurrently while a third goroutine scrapes metrics and a
// fourth live-swaps a subscriber — the -race CI run holds the lock
// discipline (runMu in subscription order, then fan.mu) to account.
func TestSharedFanoutRace(t *testing.T) {
	s := newTestServer(t)
	shared := seqMachine(t)
	ma, err := s.Register("m-a", sharedSubscriber(t, "sub-a", shared, 1), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Register("m-b", sharedSubscriber(t, "sub-b", shared, 2), 1, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 40
	var wg sync.WaitGroup
	for g, m := range []*Model{ma, mb} {
		wg.Add(1)
		go func(g int, m *Model) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.RunPackets(seqPackets(4, 8, 8*i))
			}
		}(g, m)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			snap := s.Snapshot()
			if len(snap.Machines) != 1 {
				t.Errorf("snapshot saw %d machines", len(snap.Machines))
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := mb.Swap(sharedSubscriber(t, "sub-b", shared, 2), SwapOptions{}); err != nil {
				t.Errorf("swap under load: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	snap := s.Snapshot()
	if snap.Machines[0].Packets == 0 {
		t.Fatal("machine processed no packets")
	}
	for _, md := range snap.Models {
		if md.RegRMWs != 0 {
			t.Fatalf("subscriber %s executed %d register RMWs", md.Name, md.RegRMWs)
		}
	}
}
