package serve

import (
	"math"
	"time"
)

// Tuner constants: a damped multiplicative controller. gain < 1 keeps
// the loop stable under noisy occupancy samples; the per-step factor
// clamp bounds how fast a weight can move; the weight cap keeps stride
// arithmetic well-conditioned.
const (
	tunerGain      = 0.5
	tunerMinFactor = 0.5
	tunerMaxFactor = 2.0
	tunerMaxWeight = 1024
	// tunerDeadband is the occupancy error tolerated without
	// adjustment, so near-target models don't dither ±1 every pass.
	tunerDeadband = 0.02
)

// TuneDecision records one model's weight adjustment from a TuneOnce
// pass.
type TuneDecision struct {
	Model         string        `json:"model"`
	OldWeight     int           `json:"old_weight"`
	NewWeight     int           `json:"new_weight"`
	ObservedShare float64       `json:"observed_share"`
	TargetShare   float64       `json:"target_share"`
	MeanWait      time.Duration `json:"mean_wait_ns"`
}

// TuneOnce runs one pass of the SLO feedback loop: for every model
// with a declared SLO it compares the busy-time share observed since
// the previous pass against SLO.TargetShare and nudges the session
// weight multiplicatively toward the target (damped by tunerGain,
// clamped per step). A model whose mean queue wait over the window
// exceeds SLO.MaxWait has its weight doubled regardless — latency
// violations outrank occupancy error. Models without an SLO keep their
// weight but still advance their window counters.
//
// Returns the decisions for models whose weight changed (empty when
// the pool was idle or everything is on target).
func (s *Server) TuneOnce() []TuneDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	type window struct {
		m     *Model
		busy  time.Duration
		wait  time.Duration
		tasks uint64
	}
	wins := make([]window, 0, len(s.order))
	var total time.Duration
	for _, n := range s.order {
		m := s.models[n]
		st := m.Stats()
		w := window{m: m,
			busy:  st.Busy - m.tuneBusy,
			wait:  st.Wait - m.tuneWait,
			tasks: st.Tasks - m.tuneTasks,
		}
		m.tuneBusy, m.tuneWait, m.tuneTasks = st.Busy, st.Wait, st.Tasks
		total += w.busy
		wins = append(wins, w)
	}
	if total <= 0 {
		return nil
	}
	var decisions []TuneDecision
	for _, w := range wins {
		slo := w.m.slo
		if slo.TargetShare <= 0 && slo.MaxWait <= 0 {
			continue
		}
		oldW := w.m.Weight()
		newW := oldW
		observed := float64(w.busy) / float64(total)
		var meanWait time.Duration
		if w.tasks > 0 {
			meanWait = w.wait / time.Duration(w.tasks)
		}
		if slo.TargetShare > 0 && w.tasks > 0 && math.Abs(observed-slo.TargetShare) > tunerDeadband {
			// A model that served tasks but captured ~no busy time is
			// starved: push it at the max per-step factor.
			factor := tunerMaxFactor
			if w.busy > 0 {
				factor = 1 + tunerGain*(slo.TargetShare/observed-1)
			}
			if factor < tunerMinFactor {
				factor = tunerMinFactor
			}
			if factor > tunerMaxFactor {
				factor = tunerMaxFactor
			}
			newW = int(float64(oldW)*factor + 0.5)
			// Small weights quantize the factor away (1×1.3 rounds
			// back to 1); an off-target model always moves ≥ 1 step.
			if factor > 1 && newW <= oldW {
				newW = oldW + 1
			}
			if factor < 1 && newW >= oldW {
				newW = oldW - 1
			}
		}
		if slo.MaxWait > 0 && w.tasks > 0 && meanWait > slo.MaxWait && newW < oldW*2 {
			newW = oldW * 2
		}
		if newW < 1 {
			newW = 1
		}
		if newW > tunerMaxWeight {
			newW = tunerMaxWeight
		}
		if newW == oldW {
			continue
		}
		w.m.SetWeight(newW)
		decisions = append(decisions, TuneDecision{
			Model:         w.m.name,
			OldWeight:     oldW,
			NewWeight:     newW,
			ObservedShare: observed,
			TargetShare:   slo.TargetShare,
			MeanWait:      meanWait,
		})
	}
	return decisions
}

// StartTuner runs TuneOnce every interval until StopTuner or Close.
// Idempotent: a second call while running is a no-op.
func (s *Server) StartTuner(interval time.Duration) {
	s.mu.Lock()
	if s.closed || s.tunerStop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.tunerStop = stop
	s.mu.Unlock()
	s.tunerWG.Add(1)
	go func() {
		defer s.tunerWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.TuneOnce()
			}
		}
	}()
}

// StopTuner halts the background feedback loop (no-op when idle).
func (s *Server) StopTuner() {
	s.mu.Lock()
	stop := s.tunerStop
	s.tunerStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.tunerWG.Wait()
}
