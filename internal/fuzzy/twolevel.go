package fuzzy

import (
	"fmt"
	"math"
	"sort"
)

// Two-level consecutive range coding (the full CRC construction of §6.1,
// after NetBeacon [58]).
//
// Naive per-leaf expansion cross-products the per-dimension prefix
// covers, which explodes for trees over many dimensions (a depth-6 tree
// over 6 byte-wide features can need 10^5 TCAM entries). CRC instead
// spends one small per-dimension table to translate each field into the
// index of the interval it falls in (consecutive ranges ⇒ priority
// ≤-encoding, linear in the number of thresholds), and then matches the
// tuple of interval codes — a domain so small that leaf regions expand
// to a handful of ternary entries.
type TwoLevel struct {
	// Dims[d] translates field d (already offset into the unsigned
	// domain) into its interval code.
	Dims []DimCode
	// Combo matches the code tuple to the leaf index, priority ordered.
	Combo []TernaryRule
}

// DimCode is one dimension's range→code table.
type DimCode struct {
	// Rules are priority-ordered single-field ternary entries; Leaf
	// holds the interval code.
	Rules []TernaryRule
	// Bits is the code width.
	Bits uint
	// bounds are the sorted inclusive upper bounds (for Match).
	bounds []uint32
}

// codeOf returns the interval code for value v.
func (d *DimCode) codeOf(v uint32) int {
	for i, b := range d.bounds {
		if v <= b {
			return i
		}
	}
	return len(d.bounds)
}

// TwoLevelRules builds the CRC tables for the tree over width-bit
// unsigned fields holding x+shift.
func (t *Tree) TwoLevelRules(width uint, shift int64) (*TwoLevel, error) {
	if width == 0 || width > 32 {
		return nil, fmt.Errorf("fuzzy: ternary width %d out of range [1,32]", width)
	}
	full := maxVal(width)
	// Collect per-dimension split bounds (shifted, clamped).
	boundSet := make([]map[uint32]bool, t.Dim)
	for d := range boundSet {
		boundSet[d] = map[uint32]bool{}
	}
	var collect func(n *Node)
	collect = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		f := math.Floor(n.Threshold) + float64(shift)
		if f >= 0 && f < float64(full) {
			boundSet[n.Feature][uint32(f)] = true
		}
		collect(n.Left)
		collect(n.Right)
	}
	collect(t.Root)

	tl := &TwoLevel{Dims: make([]DimCode, t.Dim)}
	for d := 0; d < t.Dim; d++ {
		bounds := make([]uint32, 0, len(boundSet[d]))
		for b := range boundSet[d] {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		dc := DimCode{bounds: bounds, Bits: codeBits(len(bounds) + 1)}
		// Priority ≤-encoding: rule i matches x ≤ bounds[i] → code i;
		// catch-all → code len(bounds).
		for i, b := range bounds {
			for _, p := range prefixesLE(b, width) {
				dc.Rules = append(dc.Rules, TernaryRule{
					Val: []uint32{p.val}, Mask: []uint32{p.mask(width)}, Leaf: i,
				})
			}
		}
		dc.Rules = append(dc.Rules, TernaryRule{Val: []uint32{0}, Mask: []uint32{0}, Leaf: len(bounds)})
		tl.Dims[d] = dc
	}

	// Combo rules: DFS priority order with per-dimension upper bounds in
	// CODE space (the same shadowing trick as the single-level encoding).
	hi := make([]int, t.Dim)
	for d := range hi {
		hi[d] = len(tl.Dims[d].bounds) // max code
	}
	var walk func(n *Node)
	var emit func(leaf int)
	emit = func(leaf int) {
		dims := make([][]prefix, t.Dim)
		for d := 0; d < t.Dim; d++ {
			bits := tl.Dims[d].Bits
			if hi[d] >= len(tl.Dims[d].bounds) {
				dims[d] = []prefix{{val: 0, wild: bits}}
			} else {
				dims[d] = prefixesLE(uint32(hi[d]), bits)
			}
		}
		idx := make([]int, t.Dim)
		for {
			r := TernaryRule{Val: make([]uint32, t.Dim), Mask: make([]uint32, t.Dim), Leaf: leaf}
			for d, i := range idx {
				p := dims[d][i]
				r.Val[d] = p.val
				r.Mask[d] = p.mask(tl.Dims[d].Bits)
			}
			tl.Combo = append(tl.Combo, r)
			d := 0
			for d < t.Dim {
				idx[d]++
				if idx[d] < len(dims[d]) {
					break
				}
				idx[d] = 0
				d++
			}
			if d == t.Dim {
				break
			}
		}
	}
	walk = func(n *Node) {
		if n.IsLeaf() {
			emit(n.Leaf)
			return
		}
		f := math.Floor(n.Threshold) + float64(shift)
		d := n.Feature
		dc := &tl.Dims[d]
		if f < 0 {
			// Left side empty in this domain.
			walk(n.Right)
			return
		}
		if f >= float64(full) {
			walk(n.Left)
			return
		}
		// Code of the threshold bound.
		code := sort.Search(len(dc.bounds), func(i int) bool { return dc.bounds[i] >= uint32(f) })
		old := hi[d]
		if code < hi[d] {
			hi[d] = code
		}
		walk(n.Left)
		hi[d] = old
		walk(n.Right)
	}
	walk(t.Root)
	return tl, nil
}

// Match evaluates the two-level tables on an (offset-domain) input,
// returning the leaf index or -1. Used by tests and the host-side
// reference; the switch implements the same two table lookups.
func (tl *TwoLevel) Match(x []uint32) int {
	codes := make([]uint32, len(tl.Dims))
	for d := range tl.Dims {
		codes[d] = uint32(tl.Dims[d].codeOf(x[d]))
	}
	return MatchTernary(tl.Combo, codes)
}

// Entries returns (per-dimension entry total, combo entries).
func (tl *TwoLevel) Entries() (dimEntries, comboEntries int) {
	for _, d := range tl.Dims {
		dimEntries += len(d.Rules)
	}
	return dimEntries, len(tl.Combo)
}

// codeBits returns the bits needed for n codes (minimum 1).
func codeBits(n int) uint {
	b := uint(1)
	for (1 << b) < n {
		b++
	}
	return b
}
