package fuzzy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure3Points is the training set of the paper's Figure 3 example.
func figure3Points() [][]float64 {
	return [][]float64{
		{1, 2}, {2, 2}, {2, 3}, // lower cluster
		{1, 7}, {3, 8}, // middle cluster
		{4, 9}, {5, 10}, // upper cluster
	}
}

func TestFigure3Example(t *testing.T) {
	tr, err := BuildDepth(figure3Points(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 4 {
		t.Fatalf("leaves = %d, want 4", tr.NumLeaves())
	}
	// Root split must be on x1 separating {y<=3} from {y>=7} (the paper
	// draws the threshold at 5; any value in [3,7) is equivalent).
	if tr.Root.Feature != 1 || tr.Root.Threshold < 3 || tr.Root.Threshold >= 7 {
		t.Fatalf("root split = x%d <= %g, want x1 in [3,7)", tr.Root.Feature, tr.Root.Threshold)
	}
	// The four centroids of Figure 3 (leaf order may differ).
	want := [][]float64{{1, 2}, {2, 2.5}, {2, 7.5}, {4.5, 9.5}}
	for _, w := range want {
		found := false
		for _, c := range tr.Centroids() {
			if math.Abs(c[0]-w[0]) < 1e-9 && math.Abs(c[1]-w[1]) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("centroid %v missing from %v", w, tr.Centroids())
		}
	}
}

func TestFigure2Example(t *testing.T) {
	// Input (3,7) must land in the cluster with centroid (2,7.5); applying
	// the Map f(x) = 0.4x+1 to the centroid yields (1.8, 4).
	tr, err := BuildDepth(figure3Points(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Quantise([]float64{3, 7})
	if math.Abs(c[0]-2) > 1e-9 || math.Abs(c[1]-7.5) > 1e-9 {
		t.Fatalf("Quantise(3,7) = %v, want (2, 7.5)", c)
	}
	f := func(x float64) float64 { return 0.4*x + 1 }
	got := []float64{f(c[0]), f(c[1])}
	if math.Abs(got[0]-1.8) > 1e-9 || math.Abs(got[1]-4) > 1e-9 {
		t.Fatalf("Map result = %v, want (1.8, 4)", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Fatal("want error for empty points")
	}
	if _, err := Build([][]float64{{}}, 4); err == nil {
		t.Fatal("want error for zero-dim points")
	}
	if _, err := Build([][]float64{{1}, {1, 2}}, 4); err == nil {
		t.Fatal("want error for ragged points")
	}
	if _, err := Build([][]float64{{1}}, 0); err == nil {
		t.Fatal("want error for maxLeaves 0")
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	tr, err := Build([][]float64{{1, 1}, {3, 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 || tr.Depth() != 0 {
		t.Fatalf("leaves=%d depth=%d, want 1/0", tr.NumLeaves(), tr.Depth())
	}
	c := tr.Centroid(0)
	if c[0] != 2 || c[1] != 2 {
		t.Fatalf("centroid = %v, want (2,2)", c)
	}
}

func TestBuildIdenticalPointsCannotSplit(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	tr, err := Build(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("identical points split into %d leaves", tr.NumLeaves())
	}
}

func TestBuildStopsAtMaxLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	tr, err := Build(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 16 {
		t.Fatalf("leaves = %d, want 16", tr.NumLeaves())
	}
}

func TestAssignReturnsNearestRegionCentroid(t *testing.T) {
	// Two well-separated clusters: assignment must send each point to its
	// own cluster's centroid.
	pts := [][]float64{{0, 0}, {1, 1}, {0, 1}, {100, 100}, {101, 101}, {100, 101}}
	tr, err := Build(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		c := tr.Quantise(p)
		d := math.Hypot(c[0]-p[0], c[1]-p[1])
		if d > 2 {
			t.Fatalf("point %v assigned to far centroid %v", p, c)
		}
	}
}

func TestSetCentroid(t *testing.T) {
	tr, err := Build(figure3Points(), 4)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetCentroid(2, []float64{9, 9})
	if c := tr.Centroid(2); c[0] != 9 || c[1] != 9 {
		t.Fatalf("SetCentroid not applied: %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dim mismatch")
		}
	}()
	tr.SetCentroid(0, []float64{1})
}

func TestSSEDecreasesWithMoreLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	sse := func(tr *Tree) float64 {
		s := 0.0
		for _, p := range pts {
			c := tr.Quantise(p)
			for j := range p {
				d := p[j] - c[j]
				s += d * d
			}
		}
		return s
	}
	prev := math.Inf(1)
	for _, leaves := range []int{1, 2, 4, 8, 16} {
		tr, err := Build(pts, leaves)
		if err != nil {
			t.Fatal(err)
		}
		cur := sse(tr)
		if cur > prev+1e-9 {
			t.Fatalf("SSE increased at %d leaves: %g > %g", leaves, cur, prev)
		}
		prev = cur
	}
}

func TestQuantisationErrorShrinksProperty(t *testing.T) {
	// Quantising any point in the training set must never move it farther
	// than the domain diameter, and assigning a centroid must return its
	// own leaf (idempotence).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, 50)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 16, rng.Float64() * 16}
		}
		tr, err := Build(pts, 8)
		if err != nil {
			return false
		}
		for i := 0; i < tr.NumLeaves(); i++ {
			c := tr.Centroid(i)
			if tr.Assign(c) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthAtMostLeavesMinusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tr, err := Build(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > tr.NumLeaves()-1 {
		t.Fatalf("depth %d with %d leaves", tr.Depth(), tr.NumLeaves())
	}
}
