package fuzzy

import (
	"fmt"
	"math"
)

// TernaryRule is a priority-ordered TCAM entry over Dim unsigned fields
// of Width bits each: field d matches when (x[d] & Mask[d]) == Val[d].
// Rules are evaluated first-match.
type TernaryRule struct {
	Val  []uint32
	Mask []uint32
	Leaf int
}

// Matches reports whether x satisfies every field constraint of r.
func (r *TernaryRule) Matches(x []uint32) bool {
	for d := range r.Val {
		if x[d]&r.Mask[d] != r.Val[d] {
			return false
		}
	}
	return true
}

// FlipTop XORs the top bit of every rule value where the mask covers
// it. Since (x + 2^(w−1)) mod 2^w equals x XOR 2^(w−1), rules generated
// for the offset domain (shift = 2^(w−1)) can be rewritten to match the
// RAW two's-complement key directly — the signed→unsigned conversion
// costs zero ALU stages on the switch.
func FlipTop(rules []TernaryRule, width uint) {
	top := uint32(1) << (width - 1)
	for i := range rules {
		for d := range rules[i].Val {
			rules[i].Val[d] ^= top & rules[i].Mask[d]
		}
	}
}

// FlipTopDim applies FlipTop to one dimension's code rules.
func FlipTopDim(dc *DimCode, width uint) {
	FlipTop(dc.Rules, width)
}

// MatchTernary returns the leaf of the first matching rule, or -1.
func MatchTernary(rules []TernaryRule, x []uint32) int {
	for i := range rules {
		if rules[i].Matches(x) {
			return rules[i].Leaf
		}
	}
	return -1
}

// prefix is a single-dimension ternary constraint: the top (width-wild)
// bits must equal val>>wild.
type prefix struct {
	val  uint32
	wild uint // number of wildcarded low bits
}

// prefixesLE returns the minimal prefix cover of [0, b] in a width-bit
// domain. A full-domain range yields one all-wildcard prefix. This is the
// building block of consecutive range coding: priority ordering lets
// every tree split be expressed as an upper bound only.
func prefixesLE(b uint32, width uint) []prefix {
	full := maxVal(width)
	if b >= full {
		return []prefix{{val: 0, wild: width}}
	}
	var out []prefix
	n := uint64(b) + 1 // number of covered values
	var base uint64
	for i := int(width); i >= 0; i-- {
		if n&(1<<uint(i)) != 0 {
			out = append(out, prefix{val: uint32(base), wild: uint(i)})
			base += 1 << uint(i)
		}
	}
	return out
}

// prefixesGE returns the minimal prefix cover of [a, 2^width-1].
func prefixesGE(a uint32, width uint) []prefix {
	if a == 0 {
		return []prefix{{val: 0, wild: width}}
	}
	// Mirror: x >= a  ⇔  ~x <= full-a ; complementing a prefix cover of
	// the mirrored range flips the fixed bits.
	full := maxVal(width)
	mirrored := prefixesLE(full-a, width)
	out := make([]prefix, len(mirrored))
	for i, p := range mirrored {
		fixedMask := (uint32(math.MaxUint32) >> (32 - width)) &^ (maxVal(p.wild))
		out[i] = prefix{val: (^p.val) & fixedMask, wild: p.wild}
	}
	return out
}

// prefixesRange returns a prefix cover of [a, b] (inclusive) using the
// classic split-at-common-prefix expansion (at most 2·width−2 prefixes).
func prefixesRange(a, b uint32, width uint) []prefix {
	if a > b {
		return nil
	}
	if a == 0 {
		return prefixesLE(b, width)
	}
	if b >= maxVal(width) {
		return prefixesGE(a, width)
	}
	if a == b {
		return []prefix{{val: a, wild: 0}}
	}
	// Find highest differing bit.
	diff := a ^ b
	hb := uint(31)
	for diff&(1<<hb) == 0 {
		hb--
	}
	// Subtree boundary: common prefix + 1 at hb + zeros.
	m := (b >> hb) << hb
	left := prefixesGE(a-(m-(1<<hb)), hb) // [a, m-1] within lower subtree
	right := prefixesLE(b-m, hb)          // [m, b] within upper subtree
	out := make([]prefix, 0, len(left)+len(right))
	lowBase := m - (1 << hb)
	for _, p := range left {
		out = append(out, prefix{val: lowBase | p.val, wild: p.wild})
	}
	for _, p := range right {
		out = append(out, prefix{val: m | p.val, wild: p.wild})
	}
	return out
}

func maxVal(width uint) uint32 {
	if width >= 32 {
		return math.MaxUint32
	}
	return uint32(1)<<width - 1
}

func (p prefix) mask(width uint) uint32 {
	return (uint32(math.MaxUint32) >> (32 - width)) &^ maxVal(p.wild)
}

// TernaryRules converts the tree into priority-ordered TCAM entries for
// unsigned integer inputs of width bits per dimension.
//
// With crc=true it uses the consecutive-range (priority) coding of §6.1:
// leaves are emitted in DFS order, and because every right sibling is
// shadowed by its left sibling's rules, only the "x ≤ t" upper bounds
// accumulated on left turns need encoding — each as a prefix cover of
// [0, t]. With crc=false every leaf's exact hyper-rectangle is expanded
// independently (the classic, far more expensive encoding; kept for the
// ablation in the evaluation).
//
// Inputs with fractional thresholds are handled by flooring: the
// dataplane compares integers, so "x ≤ 3.5" becomes "x ≤ 3".
func (t *Tree) TernaryRules(width uint, crc bool) ([]TernaryRule, error) {
	return t.TernaryRulesShifted(width, crc, 0)
}

// TernaryRulesShifted generates rules for the domain shifted by +shift:
// the match key is expected to hold x+shift. This is how signed
// activations are matched on unsigned TCAM hardware — the compiler adds
// 2^(width−1) to each field and to every threshold.
func (t *Tree) TernaryRulesShifted(width uint, crc bool, shift int64) ([]TernaryRule, error) {
	if width == 0 || width > 32 {
		return nil, fmt.Errorf("fuzzy: ternary width %d out of range [1,32]", width)
	}
	full := maxVal(width)
	var rules []TernaryRule

	// Per-dimension bounds accumulated along the path (inclusive).
	lo := make([]uint32, t.Dim)
	hi := make([]uint32, t.Dim)
	for d := range hi {
		hi[d] = full
	}

	clampUB := func(thr float64) (uint32, bool) {
		f := math.Floor(thr) + float64(shift)
		if f < 0 {
			return 0, false // nothing can match x <= negative in unsigned domain
		}
		if f >= float64(full) {
			return full, true
		}
		return uint32(f), true
	}

	emit := func(leaf int) {
		// Build per-dim prefix lists and take their cross product.
		dims := make([][]prefix, t.Dim)
		for d := 0; d < t.Dim; d++ {
			if crc {
				// Only upper bounds matter; lower bounds are shadowed.
				if hi[d] >= full {
					dims[d] = []prefix{{val: 0, wild: width}}
				} else {
					dims[d] = prefixesLE(hi[d], width)
				}
			} else {
				dims[d] = prefixesRange(lo[d], hi[d], width)
			}
			if len(dims[d]) == 0 {
				return // empty region: unreachable leaf at this width
			}
		}
		idx := make([]int, t.Dim)
		for {
			r := TernaryRule{Val: make([]uint32, t.Dim), Mask: make([]uint32, t.Dim), Leaf: leaf}
			for d, i := range idx {
				p := dims[d][i]
				r.Val[d] = p.val
				r.Mask[d] = p.mask(width)
			}
			rules = append(rules, r)
			// Odometer increment.
			d := 0
			for d < t.Dim {
				idx[d]++
				if idx[d] < len(dims[d]) {
					break
				}
				idx[d] = 0
				d++
			}
			if d == t.Dim {
				break
			}
		}
	}

	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			emit(n.Leaf)
			return nil
		}
		f := n.Feature
		ub, ok := clampUB(n.Threshold)
		// Left: x[f] <= threshold.
		if ok {
			oldHi := hi[f]
			if ub < hi[f] {
				hi[f] = ub
			}
			if lo[f] <= hi[f] {
				if err := walk(n.Left); err != nil {
					return err
				}
			}
			hi[f] = oldHi
		}
		// Right: x[f] > threshold, i.e. x[f] >= floor(threshold)+1.
		lb := uint32(0)
		if ok {
			if ub == full {
				// Right side is empty in this domain: skip subtree but
				// its leaves keep indices (they simply never match).
				return nil
			}
			lb = ub + 1
		}
		oldLo := lo[f]
		if lb > lo[f] {
			lo[f] = lb
		}
		if lo[f] <= hi[f] {
			if err := walk(n.Right); err != nil {
				return err
			}
		}
		lo[f] = oldLo
		return nil
	}
	if err := walk(t.Root); err != nil {
		return nil, err
	}
	return rules, nil
}

// TCAMBits returns the total TCAM storage the rules occupy: each entry
// stores value+mask for Dim fields of width bits, plus the fuzzy-index
// action payload of idxBits.
func TCAMBits(rules []TernaryRule, width uint, idxBits int) int {
	if len(rules) == 0 {
		return 0
	}
	perEntry := len(rules[0].Val)*int(width)*2 + idxBits
	return len(rules) * perEntry
}
