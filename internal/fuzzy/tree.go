// Package fuzzy implements Pegasus fuzzy matching (§4.2): a greedy
// SSE-minimising clustering tree maps an input sub-vector to a leaf index
// (the "fuzzy index") whose centroid stands in for the exact input when
// retrieving precomputed operator results. The tree's comparisons become
// dataplane range matches; TernaryRules converts leaf regions into
// priority-ordered TCAM entries via consecutive-range coding (§6.1).
package fuzzy

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Node is one node of the clustering tree. Internal nodes hold a split
// (go left when x[Feature] <= Threshold); leaves hold the cluster
// centroid and its dense leaf index.
type Node struct {
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
	Leaf      int
	Centroid  []float64
	// SSE is the sum of squared errors of the training points that
	// reached this node (diagnostic; used by greedy growth).
	SSE float64
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a fuzzy-matching clustering tree over Dim-dimensional vectors.
type Tree struct {
	Dim    int
	Root   *Node
	leaves []*Node
}

// Build grows a clustering tree over points (each of equal dimension)
// until it has maxLeaves leaves or no split reduces SSE. It follows the
// paper's greedy strategy (Figure 3): repeatedly split the cluster whose
// best (feature, threshold) split yields the largest total-SSE reduction;
// thresholds are midpoints between adjacent observed values; centroids
// are cluster means.
func Build(points [][]float64, maxLeaves int) (*Tree, error) {
	return BuildTargets(points, nil, maxLeaves)
}

// BuildTargets is Build with output-aware split scoring: splits compare
// input dimensions but are chosen to minimise the SSE of the paired
// target vectors (the operator outputs the mapping table will store).
// targets may be nil for plain input clustering.
func BuildTargets(points, targets [][]float64, maxLeaves int) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("fuzzy: Build needs at least one point")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("fuzzy: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("fuzzy: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if maxLeaves < 1 {
		return nil, fmt.Errorf("fuzzy: maxLeaves %d < 1", maxLeaves)
	}

	if targets != nil && len(targets) != len(points) {
		return nil, fmt.Errorf("fuzzy: %d targets for %d points", len(targets), len(points))
	}
	root := &Node{}
	rootPts := make([][]float64, len(points))
	copy(rootPts, points)
	rootTgt := targets
	setLeafStats(root, rootPts, dim)

	pq := &splitQueue{}
	if cand, ok := bestSplit(rootPts, rootTgt, dim); ok {
		heap.Push(pq, &pending{node: root, pts: rootPts, tgts: rootTgt, cand: cand})
	}
	numLeaves := 1
	for numLeaves < maxLeaves && pq.Len() > 0 {
		p := heap.Pop(pq).(*pending)
		n, c := p.node, p.cand
		n.Feature, n.Threshold = c.feature, c.threshold
		left := &Node{}
		right := &Node{}
		n.Left, n.Right = left, right
		n.Centroid = nil
		var lp, rp [][]float64
		var lt, rt [][]float64
		for i, pt := range p.pts {
			if pt[c.feature] <= c.threshold {
				lp = append(lp, pt)
				if p.tgts != nil {
					lt = append(lt, p.tgts[i])
				}
			} else {
				rp = append(rp, pt)
				if p.tgts != nil {
					rt = append(rt, p.tgts[i])
				}
			}
		}
		setLeafStats(left, lp, dim)
		setLeafStats(right, rp, dim)
		numLeaves++
		if cand, ok := bestSplit(lp, lt, dim); ok {
			heap.Push(pq, &pending{node: left, pts: lp, tgts: lt, cand: cand})
		}
		if cand, ok := bestSplit(rp, rt, dim); ok {
			heap.Push(pq, &pending{node: right, pts: rp, tgts: rt, cand: cand})
		}
	}

	t := &Tree{Dim: dim, Root: root}
	t.indexLeaves()
	return t, nil
}

// BuildDepth grows a complete clustering tree of the given depth (up to
// 2^depth leaves), splitting every splittable leaf level by level. This
// matches the paper's `clustering_depth` syntax parameter and the
// balanced tree of Figure 3; leaves whose points are identical stop
// early.
func BuildDepth(points [][]float64, depth int) (*Tree, error) {
	return BuildDepthTargets(points, nil, depth)
}

// BuildDepthTargets is BuildDepth with output-aware split scoring (see
// BuildTargets).
func BuildDepthTargets(points, targets [][]float64, depth int) (*Tree, error) {
	if depth < 0 {
		return nil, fmt.Errorf("fuzzy: negative depth %d", depth)
	}
	if len(points) == 0 {
		return nil, errors.New("fuzzy: BuildDepth needs at least one point")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("fuzzy: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("fuzzy: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if targets != nil && len(targets) != len(points) {
		return nil, fmt.Errorf("fuzzy: %d targets for %d points", len(targets), len(points))
	}
	root := &Node{}
	rootPts := make([][]float64, len(points))
	copy(rootPts, points)
	setLeafStats(root, rootPts, dim)

	level := []*pending{{node: root, pts: rootPts, tgts: targets}}
	for d := 0; d < depth; d++ {
		var next []*pending
		for _, p := range level {
			cand, ok := bestSplit(p.pts, p.tgts, dim)
			if !ok {
				continue
			}
			n := p.node
			n.Feature, n.Threshold = cand.feature, cand.threshold
			left, right := &Node{}, &Node{}
			n.Left, n.Right = left, right
			n.Centroid = nil
			var lp, rp [][]float64
			var lt, rt [][]float64
			for i, pt := range p.pts {
				if pt[cand.feature] <= cand.threshold {
					lp = append(lp, pt)
					if p.tgts != nil {
						lt = append(lt, p.tgts[i])
					}
				} else {
					rp = append(rp, pt)
					if p.tgts != nil {
						rt = append(rt, p.tgts[i])
					}
				}
			}
			setLeafStats(left, lp, dim)
			setLeafStats(right, rp, dim)
			next = append(next, &pending{node: left, pts: lp, tgts: lt}, &pending{node: right, pts: rp, tgts: rt})
		}
		if len(next) == 0 {
			break
		}
		level = next
	}
	t := &Tree{Dim: dim, Root: root}
	t.indexLeaves()
	return t, nil
}

func setLeafStats(n *Node, pts [][]float64, dim int) {
	n.Centroid = make([]float64, dim)
	for _, p := range pts {
		for j, v := range p {
			n.Centroid[j] += v
		}
	}
	for j := range n.Centroid {
		n.Centroid[j] /= float64(len(pts))
	}
	sse := 0.0
	for _, p := range pts {
		for j, v := range p {
			d := v - n.Centroid[j]
			sse += d * d
		}
	}
	n.SSE = sse
}

// candidate is the best split found for one cluster.
type candidate struct {
	feature   int
	threshold float64
	gain      float64 // SSE reduction (parent − left − right)
}

// bestSplit scans every (feature, midpoint-threshold) pair and returns
// the split with maximum SSE reduction. When targets is non-nil, the SSE
// is computed over the target vectors (output-aware clustering: splits
// still compare input dimensions — dataplane range matches — but are
// scored by how uniform the operator's OUTPUT becomes within each
// cluster, the property fuzzy matching actually relies on). ok is false
// when the cluster cannot be usefully split.
func bestSplit(pts, targets [][]float64, dim int) (candidate, bool) {
	if len(pts) < 2 {
		return candidate{}, false
	}
	objs := pts
	if targets != nil {
		objs = targets
	}
	odim := len(objs[0])
	// Parent SSE over the objective vectors.
	mean := make([]float64, odim)
	for _, p := range objs {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(objs))
	}
	parent := 0.0
	for _, p := range objs {
		for j, v := range p {
			d := v - mean[j]
			parent += d * d
		}
	}
	best := candidate{gain: 0}
	found := false
	vals := make([]float64, len(pts))
	idx := make([]int, len(pts))
	totSum := make([]float64, odim)
	totSq := make([]float64, odim)
	for _, p := range objs {
		for j, v := range p {
			totSum[j] += v
			totSq[j] += v * v
		}
	}
	for f := 0; f < dim; f++ {
		for i, p := range pts {
			vals[i] = p[f]
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
		// Prefix sums over objective dims in sorted order of feature f.
		leftSum := make([]float64, odim)
		leftSq := make([]float64, odim)
		n := len(pts)
		for k := 0; k < n-1; k++ {
			o := objs[idx[k]]
			for j, v := range o {
				leftSum[j] += v
				leftSq[j] += v * v
			}
			v0, v1 := vals[idx[k]], vals[idx[k+1]]
			if v0 == v1 {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			sseL, sseR := 0.0, 0.0
			for j := 0; j < odim; j++ {
				sseL += leftSq[j] - leftSum[j]*leftSum[j]/nl
				rs := totSum[j] - leftSum[j]
				sseR += (totSq[j] - leftSq[j]) - rs*rs/nr
			}
			gain := parent - sseL - sseR
			thr := (v0 + v1) / 2
			if gain > best.gain+1e-12 ||
				(math.Abs(gain-best.gain) <= 1e-12 && found &&
					(f < best.feature || (f == best.feature && thr < best.threshold))) {
				best = candidate{feature: f, threshold: thr, gain: gain}
				found = true
			}
		}
	}
	return best, found && best.gain > 1e-12
}

type pending struct {
	node *Node
	pts  [][]float64
	tgts [][]float64
	cand candidate
}

type splitQueue []*pending

func (q splitQueue) Len() int            { return len(q) }
func (q splitQueue) Less(i, j int) bool  { return q[i].cand.gain > q[j].cand.gain }
func (q splitQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *splitQueue) Push(x interface{}) { *q = append(*q, x.(*pending)) }
func (q *splitQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// indexLeaves assigns dense leaf indices in DFS (left-first) order.
func (t *Tree) indexLeaves() {
	t.leaves = t.leaves[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.Leaf = len(t.leaves)
			t.leaves = append(t.leaves, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

// NumLeaves returns the number of leaves (distinct fuzzy indices).
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// Depth returns the maximum root-to-leaf comparison count.
func (t *Tree) Depth() int {
	var d func(n *Node) int
	d = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		l, r := d(n.Left), d(n.Right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return d(t.Root)
}

// Assign walks the comparison tree and returns the fuzzy index of x.
func (t *Tree) Assign(x []float64) int {
	if len(x) != t.Dim {
		panic(fmt.Sprintf("fuzzy: Assign dim %d, want %d", len(x), t.Dim))
	}
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Leaf
}

// Centroid returns the centroid of leaf i (aliases internal storage).
func (t *Tree) Centroid(i int) []float64 { return t.leaves[i].Centroid }

// SetCentroid overwrites the centroid of leaf i; used by the
// backpropagation refinement of §4.4.
func (t *Tree) SetCentroid(i int, c []float64) {
	if len(c) != t.Dim {
		panic("fuzzy: SetCentroid dim mismatch")
	}
	t.leaves[i].Centroid = append([]float64(nil), c...)
}

// Centroids returns all leaf centroids indexed by fuzzy index.
func (t *Tree) Centroids() [][]float64 {
	out := make([][]float64, len(t.leaves))
	for i, l := range t.leaves {
		out[i] = l.Centroid
	}
	return out
}

// Quantise replaces x with the centroid of its assigned leaf — the
// approximation the dataplane applies before a mapping-table lookup.
func (t *Tree) Quantise(x []float64) []float64 {
	return t.leaves[t.Assign(x)].Centroid
}
