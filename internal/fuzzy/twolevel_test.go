package fuzzy

import (
	"math/rand"
	"testing"
)

func TestTwoLevelMatchesAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const width = 8
	for _, dim := range []int{2, 4, 6} {
		pts := make([][]float64, 400)
		for i := range pts {
			p := make([]float64, dim)
			for d := range p {
				p[d] = float64(rng.Intn(256))
			}
			pts[i] = p
		}
		tr, err := BuildDepth(pts, 5)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := tr.TwoLevelRules(width, 0)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 1500; trial++ {
			x := make([]uint32, dim)
			xf := make([]float64, dim)
			for d := range x {
				x[d] = uint32(rng.Intn(256))
				xf[d] = float64(x[d])
			}
			want := tr.Assign(xf)
			got := tl.Match(x)
			if got != want {
				t.Fatalf("dim=%d: two-level %d, Assign %d for %v", dim, got, want, x)
			}
		}
	}
}

func TestTwoLevelWithShift(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Signed domain: values in [-128, 127], shift 128.
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{float64(rng.Intn(256) - 128), float64(rng.Intn(256) - 128)}
	}
	tr, err := BuildDepth(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tr.TwoLevelRules(8, 128)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		a, b := rng.Intn(256)-128, rng.Intn(256)-128
		want := tr.Assign([]float64{float64(a), float64(b)})
		got := tl.Match([]uint32{uint32(a + 128), uint32(b + 128)})
		if got != want {
			t.Fatalf("shifted two-level %d vs %d for (%d,%d)", got, want, a, b)
		}
	}
}

func TestTwoLevelFarSmallerThanNaiveForWideSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dim = 6
	pts := make([][]float64, 600)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = float64(rng.Intn(256))
		}
		pts[i] = p
	}
	tr, err := BuildDepth(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tr.TwoLevelRules(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := tr.TernaryRules(8, true)
	if err != nil {
		t.Fatal(err)
	}
	dimE, comboE := tl.Entries()
	if dimE+comboE >= len(single) {
		t.Fatalf("two-level %d+%d entries not smaller than single-level %d",
			dimE, comboE, len(single))
	}
	// The headline: two-level stays in the hundreds where single-level
	// explodes.
	if dimE+comboE > 2000 {
		t.Fatalf("two-level still too large: %d+%d", dimE, comboE)
	}
}

func TestTwoLevelEmptyDim(t *testing.T) {
	// A tree that never splits on dim 1 must give it a 1-bit wildcard
	// code table.
	pts := [][]float64{{0, 5}, {10, 5}, {20, 5}, {200, 5}}
	tr, err := BuildDepth(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tr.TwoLevelRules(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Dims[1].Rules) != 1 {
		t.Fatalf("unsplit dim should have 1 catch-all rule, got %d", len(tl.Dims[1].Rules))
	}
	for trial := 0; trial < 256; trial++ {
		x := []uint32{uint32(trial), 5}
		if tl.Match(x) != tr.Assign([]float64{float64(trial), 5}) {
			t.Fatalf("mismatch at %d", trial)
		}
	}
}
