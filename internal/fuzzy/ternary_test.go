package fuzzy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// expandPrefix enumerates all values covered by a prefix (test helper).
func expandPrefix(p prefix, width uint) []uint32 {
	n := uint32(1) << p.wild
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, p.val|i)
	}
	return out
}

func coversExactly(t *testing.T, ps []prefix, width uint, lo, hi uint32) {
	t.Helper()
	seen := map[uint32]int{}
	for _, p := range ps {
		for _, v := range expandPrefix(p, width) {
			seen[v]++
		}
	}
	for v := uint32(0); v <= maxVal(width); v++ {
		want := 0
		if v >= lo && v <= hi {
			want = 1
		}
		if seen[v] != want {
			t.Fatalf("value %d covered %d times, want %d (range [%d,%d] width %d, prefixes %v)",
				v, seen[v], want, lo, hi, width, ps)
		}
		if v == maxVal(width) {
			break
		}
	}
}

func TestPrefixesLE(t *testing.T) {
	for _, c := range []struct {
		b     uint32
		width uint
		n     int
	}{
		{5, 3, 2},   // [0,5] = 0xx + 10x
		{7, 3, 1},   // full domain
		{0, 3, 1},   // just 000
		{3, 3, 1},   // 0xx
		{6, 3, 3},   // 0xx + 10x + 110
		{255, 8, 1}, // full byte
	} {
		ps := prefixesLE(c.b, c.width)
		if len(ps) != c.n {
			t.Errorf("prefixesLE(%d,%d) = %d prefixes, want %d: %v", c.b, c.width, len(ps), c.n, ps)
		}
		coversExactly(t, ps, c.width, 0, c.b)
	}
}

func TestPrefixesGE(t *testing.T) {
	for _, c := range []struct {
		a     uint32
		width uint
	}{
		{0, 3}, {1, 3}, {4, 3}, {6, 3}, {7, 3}, {200, 8},
	} {
		ps := prefixesGE(c.a, c.width)
		coversExactly(t, ps, c.width, c.a, maxVal(c.width))
	}
}

func TestPrefixesRangeBruteForce(t *testing.T) {
	const width = 6
	for lo := uint32(0); lo <= maxVal(width); lo++ {
		for hi := lo; hi <= maxVal(width); hi++ {
			ps := prefixesRange(lo, hi, width)
			coversExactly(t, ps, width, lo, hi)
			if len(ps) > 2*width-1 {
				t.Fatalf("range [%d,%d]: %d prefixes exceeds bound", lo, hi, len(ps))
			}
		}
	}
}

func TestPrefixesRangeEmpty(t *testing.T) {
	if ps := prefixesRange(5, 3, 4); ps != nil {
		t.Fatalf("inverted range gave %v", ps)
	}
}

func buildIntTree(t *testing.T, rng *rand.Rand, n, dim, leaves int, width uint) (*Tree, [][]float64) {
	t.Helper()
	full := float64(maxVal(width))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = float64(rng.Intn(int(full) + 1))
		}
		pts[i] = p
	}
	tr, err := Build(pts, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pts
}

func TestTernaryMatchesAssignCRC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width = 8
	tr, _ := buildIntTree(t, rng, 300, 3, 16, width)
	rules, err := tr.TernaryRules(width, true)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		x := make([]uint32, 3)
		xf := make([]float64, 3)
		for d := range x {
			x[d] = uint32(rng.Intn(256))
			xf[d] = float64(x[d])
		}
		want := tr.Assign(xf)
		got := MatchTernary(rules, x)
		if got != want {
			t.Fatalf("CRC ternary match = %d, Assign = %d for %v", got, want, x)
		}
	}
}

func TestTernaryMatchesAssignNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const width = 6
	tr, _ := buildIntTree(t, rng, 200, 2, 8, width)
	rules, err := tr.TernaryRules(width, false)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive over the 2-dim 6-bit domain.
	for a := uint32(0); a < 64; a++ {
		for b := uint32(0); b < 64; b++ {
			want := tr.Assign([]float64{float64(a), float64(b)})
			got := MatchTernary(rules, []uint32{a, b})
			if got != want {
				t.Fatalf("naive ternary match = %d, Assign = %d for (%d,%d)", got, want, a, b)
			}
		}
	}
}

func TestCRCUsesFewerEntriesThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const width = 8
	tr, _ := buildIntTree(t, rng, 500, 4, 32, width)
	crc, err := tr.TernaryRules(width, true)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := tr.TernaryRules(width, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(crc) >= len(naive) {
		t.Fatalf("CRC %d entries not fewer than naive %d", len(crc), len(naive))
	}
}

func TestTernaryEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 5
		// Build inline to avoid testing.T in quick.
		pts := make([][]float64, 60)
		for i := range pts {
			pts[i] = []float64{float64(rng.Intn(32)), float64(rng.Intn(32))}
		}
		tree, err := Build(pts, 6)
		if err != nil {
			return false
		}
		crc, err := tree.TernaryRules(width, true)
		if err != nil {
			return false
		}
		naive, err := tree.TernaryRules(width, false)
		if err != nil {
			return false
		}
		for a := uint32(0); a < 32; a++ {
			for b := uint32(0); b < 32; b++ {
				x := []uint32{a, b}
				want := tree.Assign([]float64{float64(a), float64(b)})
				if MatchTernary(crc, x) != want || MatchTernary(naive, x) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTernaryRulesWidthValidation(t *testing.T) {
	tr, err := Build(figure3Points(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TernaryRules(0, true); err == nil {
		t.Fatal("want error for width 0")
	}
	if _, err := tr.TernaryRules(33, true); err == nil {
		t.Fatal("want error for width 33")
	}
}

func TestTCAMBits(t *testing.T) {
	rules := []TernaryRule{
		{Val: []uint32{0, 0}, Mask: []uint32{0, 0}, Leaf: 0},
		{Val: []uint32{1, 1}, Mask: []uint32{3, 3}, Leaf: 1},
	}
	// 2 rules × (2 dims × 8 bits × 2 (val+mask) + 4 idx bits) = 2×36 = 72.
	if got := TCAMBits(rules, 8, 4); got != 72 {
		t.Fatalf("TCAMBits = %d, want 72", got)
	}
	if TCAMBits(nil, 8, 4) != 0 {
		t.Fatal("TCAMBits(nil) != 0")
	}
}

func TestSingleLeafTernaryIsDontCare(t *testing.T) {
	tr, err := Build([][]float64{{3, 3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := tr.TernaryRules(8, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(rules))
	}
	if rules[0].Mask[0] != 0 || rules[0].Mask[1] != 0 {
		t.Fatalf("single leaf rule not don't-care: %+v", rules[0])
	}
}
