package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("registry armed after Reset")
	}
	if d := Delay(WorkerStall, "0"); d != 0 {
		t.Fatalf("disarmed Delay returned %v", d)
	}
	if Should(PanicSession, "any") {
		t.Fatal("disarmed Should fired")
	}
}

func TestOneShotConsumption(t *testing.T) {
	defer Reset()
	Arm(WorkerStall, "3", 5*time.Millisecond, 1)
	if d := Delay(WorkerStall, "1"); d != 0 {
		t.Fatalf("wrong worker stalled: %v", d)
	}
	if d := Delay(WorkerStall, "3"); d != 5*time.Millisecond {
		t.Fatalf("armed worker got %v, want 5ms", d)
	}
	if d := Delay(WorkerStall, "3"); d != 0 {
		t.Fatalf("one-shot fault fired twice: %v", d)
	}
	if Enabled() {
		t.Fatal("registry still armed after the shot budget drained")
	}
}

func TestWildcardAndUnlimited(t *testing.T) {
	defer Reset()
	Arm(SlowSession, "", time.Millisecond, 0)
	for i := 0; i < 10; i++ {
		if d := Delay(SlowSession, "anything"); d != time.Millisecond {
			t.Fatalf("unlimited wildcard stopped firing at shot %d: %v", i, d)
		}
	}
	if !Peek(SlowSession, "other") {
		t.Fatal("Peek missed the wildcard fault")
	}
	Disarm(SlowSession)
	if Enabled() || Peek(SlowSession, "anything") {
		t.Fatal("Disarm left the point armed")
	}
}

func TestMultiShotBudget(t *testing.T) {
	defer Reset()
	Arm(PoisonCanary, "m", 0, 3)
	fired := 0
	for i := 0; i < 5; i++ {
		if Should(PoisonCanary, "m") {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("3-shot fault fired %d times", fired)
	}
}

func TestConcurrentProbes(t *testing.T) {
	defer Reset()
	Arm(PanicSession, "s", 0, 100)
	var wg sync.WaitGroup
	var hits sync.Map
	total := 0
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 50; i++ {
				if Should(PanicSession, "s") {
					n++
				}
			}
			hits.Store(g, n)
			mu.Lock()
			total += n
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if total != 100 {
		t.Fatalf("shot budget over/under-consumed under concurrency: %d fires", total)
	}
}
