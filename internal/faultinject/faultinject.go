// Package faultinject is a deterministic fault-injection registry for
// resilience testing: tests and the "resilience" experiment arm named
// faults (a stalled scheduler worker, a slow or panicking execution
// plan, a failing swap warm, a poisoned canary) and the production
// code paths in pisa and serve probe them at well-defined points.
//
// The registry is process-global and concurrency safe. When nothing is
// armed every probe is a single atomic load returning the zero value,
// so shipping the probes in the hot path costs nothing in normal
// operation. Faults are armed with an optional shot budget: a fault
// armed for N shots disarms itself after firing N times (N ≤ 0 means
// unlimited), which is what makes injected failures deterministic —
// "stall worker 0 exactly once" is a one-shot arm, not a race between
// the test and the pool.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault points probed by pisa and serve.
const (
	// WorkerStall delays a scheduler worker at the top of task
	// execution (keyed by worker id) — the stalled-worker scenario the
	// scheduler watchdog must detect and route around.
	WorkerStall = "pisa.worker.stall"
	// SlowSession adds latency to every task of a named engine session
	// — a pathologically slow compiled plan, the sustained-overload
	// driver.
	SlowSession = "pisa.session.slow"
	// PanicSession panics task execution of a named engine session —
	// exercises worker panic isolation (the task fails, the session is
	// poisoned, the pool survives).
	PanicSession = "pisa.session.panic"
	// SwapWarmFail fails serve's swap warm phase for a named model
	// before any cutover state changes.
	SwapWarmFail = "serve.swap.warmfail"
	// PoisonCanary corrupts the canary version's observed classes for
	// a named model, forcing the accuracy-delta rollback path.
	PoisonCanary = "serve.canary.poison"
)

// fault is one armed fault instance.
type fault struct {
	key   string // worker id (decimal) or session/model name; "" matches any
	delay time.Duration
	shots int64 // remaining shots; < 0 means unlimited
}

var (
	mu     sync.Mutex
	armed  = map[string][]*fault{} // point -> armed faults
	active atomic.Int32            // armed fault count: the fast-path gate
)

// Arm registers a fault at a point. key selects the target (a worker
// id rendered in decimal for WorkerStall, a session/model name
// elsewhere; "" matches every target), delay is the injected latency
// for delay-type points, and shots bounds how many times the fault
// fires before disarming itself (≤ 0 = unlimited, until Reset).
func Arm(point, key string, delay time.Duration, shots int) {
	mu.Lock()
	defer mu.Unlock()
	n := int64(shots)
	if shots <= 0 {
		n = -1
	}
	armed[point] = append(armed[point], &fault{key: key, delay: delay, shots: n})
	active.Add(1)
}

// Disarm removes every fault armed at a point.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(armed[point])))
	delete(armed, point)
}

// Reset disarms everything — call it (deferred) in every test that
// arms faults.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, fs := range armed {
		active.Add(-int32(len(fs)))
	}
	armed = map[string][]*fault{}
}

// Enabled reports whether any fault is armed. Probes check it first so
// the disarmed fast path is one atomic load.
func Enabled() bool { return active.Load() != 0 }

// fire consumes one shot of the first matching fault at a point and
// returns its delay. ok is false when nothing matched.
func fire(point, key string) (d time.Duration, ok bool) {
	if !Enabled() {
		return 0, false
	}
	mu.Lock()
	defer mu.Unlock()
	fs := armed[point]
	for i, f := range fs {
		if f.key != "" && f.key != key {
			continue
		}
		d = f.delay
		if f.shots > 0 {
			f.shots--
			if f.shots == 0 {
				armed[point] = append(fs[:i], fs[i+1:]...)
				active.Add(-1)
			}
		}
		return d, true
	}
	return 0, false
}

// Peek reports whether a fault is armed at a point for key without
// consuming a shot.
func Peek(point, key string) bool {
	if !Enabled() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	for _, f := range armed[point] {
		if f.key == "" || f.key == key {
			return true
		}
	}
	return false
}

// Delay consumes one shot at a delay-type point and returns the
// injected latency (0 when nothing is armed for key). Probe form used
// by pisa's worker loop (WorkerStall, SlowSession).
func Delay(point, key string) time.Duration {
	d, _ := fire(point, key)
	return d
}

// Should consumes one shot at a trigger-type point and reports whether
// the fault fired (PanicSession, SwapWarmFail, PoisonCanary).
func Should(point, key string) bool {
	_, ok := fire(point, key)
	return ok
}
