// Package core implements the paper's primary contribution: the
// translation of deep-learning models into the three dataplane-oriented
// primitives — Partition, Map and SumReduce (§4.1, Table 3) — together
// with Primitive Fusion (§4.3), fuzzy-matching mapping tables with
// full-precision weights and fixed-point activations (§4.2, §4.4), and
// compilation of the fused primitive program onto a PISA switch pipeline.
package core

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Fn is a function applied by a Map primitive to one Partition segment.
type Fn interface {
	// InDim / OutDim give the segment widths consumed and produced.
	InDim() int
	OutDim() int
	// Eval applies the function at full precision.
	Eval(x []float64) []float64
	// Name is a short diagnostic label.
	Name() string
}

// Linear reports whether f satisfies f(a+b) = f(a)+f(b) exactly — the
// precondition of the Linear Reordering fusion rule. Affine functions
// qualify only when their bias is zero; the rewrite handles nonzero bias
// by assigning it to a single segment.
func Linear(f Fn) bool {
	a, ok := f.(*AffineFn)
	if !ok {
		return false
	}
	for _, b := range a.B {
		if b != 0 {
			return false
		}
	}
	return true
}

// AffineFn is f(x) = W·x + B. It covers MatMul, bias addition, batch
// normalisation (diagonal W) and any composition thereof.
type AffineFn struct {
	W *tensor.Mat // out×in
	B []float64   // length out
}

// NewAffine constructs an affine function, validating shapes.
func NewAffine(w *tensor.Mat, b []float64) (*AffineFn, error) {
	if b != nil && len(b) != w.R {
		return nil, fmt.Errorf("core: affine bias %d != rows %d", len(b), w.R)
	}
	if b == nil {
		b = make([]float64, w.R)
	}
	return &AffineFn{W: w, B: b}, nil
}

// Diag constructs the diagonal affine f(x) = scale⊙x + shift (the
// inference form of BatchNorm).
func Diag(scale, shift []float64) *AffineFn {
	n := len(scale)
	w := tensor.New(n, n)
	for i := 0; i < n; i++ {
		w.Set(i, i, scale[i])
	}
	b := append([]float64(nil), shift...)
	return &AffineFn{W: w, B: b}
}

// Identity returns the n-dimensional identity affine.
func Identity(n int) *AffineFn {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return Diag(s, make([]float64, n))
}

func (a *AffineFn) InDim() int  { return a.W.C }
func (a *AffineFn) OutDim() int { return a.W.R }
func (a *AffineFn) Name() string {
	return fmt.Sprintf("Affine(%d→%d)", a.W.C, a.W.R)
}

func (a *AffineFn) Eval(x []float64) []float64 {
	if len(x) != a.W.C {
		panic(fmt.Sprintf("core: affine input %d, want %d", len(x), a.W.C))
	}
	out := make([]float64, a.W.R)
	for i := 0; i < a.W.R; i++ {
		row := a.W.Row(i)
		s := a.B[i]
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}

// Restrict returns the affine restricted to input columns cols, i.e. the
// per-segment partial of a weighted aggregation. The bias is included
// only when withBias is set (exactly one segment should carry it so the
// SumReduce total is correct).
func (a *AffineFn) Restrict(cols []int, withBias bool) *AffineFn {
	w := tensor.New(a.W.R, len(cols))
	for i := 0; i < a.W.R; i++ {
		src := a.W.Row(i)
		dst := w.Row(i)
		for k, c := range cols {
			dst[k] = src[c]
		}
	}
	b := make([]float64, a.W.R)
	if withBias {
		copy(b, a.B)
	}
	return &AffineFn{W: w, B: b}
}

// composeAffine returns g∘f as a single affine: g.W·f.W, g.W·f.B + g.B.
func composeAffine(g, f *AffineFn) *AffineFn {
	w := tensor.MatMul(nil, g.W, f.W)
	b := g.Eval(f.B)
	return &AffineFn{W: w, B: b}
}

// ActFn is an element-wise nonlinearity over a segment.
type ActFn struct {
	Kind nn.ActKind
	Dim  int
}

func (a *ActFn) InDim() int   { return a.Dim }
func (a *ActFn) OutDim() int  { return a.Dim }
func (a *ActFn) Name() string { return fmt.Sprintf("%s(%d)", a.Kind, a.Dim) }

func (a *ActFn) Eval(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = a.Kind.Eval(v)
	}
	return out
}

// EmbedFn is an embedding lookup over a segment of discrete indices:
// each index is replaced by its Dim-wide embedding row (Table 4's
// Embedding Lookup, a pure Map).
type EmbedFn struct {
	Table *tensor.Mat // vocab×dim
	T     int         // indices per segment
}

func (e *EmbedFn) InDim() int   { return e.T }
func (e *EmbedFn) OutDim() int  { return e.T * e.Table.C }
func (e *EmbedFn) Name() string { return fmt.Sprintf("Embed(%d×%d)", e.T, e.Table.C) }

func (e *EmbedFn) Eval(x []float64) []float64 {
	out := make([]float64, 0, e.OutDim())
	for _, v := range x {
		idx := int(v)
		if idx < 0 {
			idx = 0
		}
		if idx >= e.Table.R {
			idx = e.Table.R - 1
		}
		out = append(out, e.Table.Row(idx)...)
	}
	return out
}

// ComposeFn is g∘f (merged consecutive Maps that could not be folded
// algebraically).
type ComposeFn struct {
	First, Second Fn
}

// Compose merges two functions, folding affine∘affine algebraically.
func Compose(second, first Fn) Fn {
	if g, ok := second.(*AffineFn); ok {
		if f, ok := first.(*AffineFn); ok {
			return composeAffine(g, f)
		}
	}
	return &ComposeFn{First: first, Second: second}
}

func (c *ComposeFn) InDim() int   { return c.First.InDim() }
func (c *ComposeFn) OutDim() int  { return c.Second.OutDim() }
func (c *ComposeFn) Name() string { return c.Second.Name() + "∘" + c.First.Name() }

func (c *ComposeFn) Eval(x []float64) []float64 { return c.Second.Eval(c.First.Eval(x)) }

// NetFn wraps a trained nn.Sequential as a segment function — the form
// Advanced Fusion ❸ produces, where an entire per-segment sub-network
// becomes one mapping table.
type NetFn struct {
	Net     *nn.Sequential
	In, Out int
	Label   string
}

// NewNetFn wraps net, recording its dimensions.
func NewNetFn(net *nn.Sequential, inDim int, label string) *NetFn {
	return &NetFn{Net: net, In: inDim, Out: net.OutDim(inDim), Label: label}
}

func (n *NetFn) InDim() int   { return n.In }
func (n *NetFn) OutDim() int  { return n.Out }
func (n *NetFn) Name() string { return fmt.Sprintf("Net[%s](%d→%d)", n.Label, n.In, n.Out) }

func (n *NetFn) Eval(x []float64) []float64 {
	m := tensor.New(1, len(x))
	copy(m.Row(0), x)
	out := n.Net.Forward(m, false)
	return append([]float64(nil), out.Row(0)...)
}
