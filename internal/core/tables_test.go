package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// calibData synthesises integer-valued feature vectors in [0, 2^bits).
func calibData(rng *rand.Rand, n, dim int, maxVal int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(rng.Intn(maxVal))
		}
		out[i] = v
	}
	return out
}

func trainToyNet(rng *rand.Rand, in, classes int) (*nn.Sequential, *tensor.Mat, []int) {
	net := nn.NewSequential(
		nn.NewLinear(in, 12, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(12, classes, rng),
	)
	n := 600
	xs := tensor.New(n, in)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		row := xs.Row(i)
		for j := range row {
			base := 4 + 8*cls + j
			row[j] = float64(base + rng.Intn(6))
		}
	}
	nn.Fit(net, xs, nn.ClassTargets(labels), nn.SoftmaxCrossEntropy{}, nn.NewAdam(0.01),
		nn.TrainConfig{Epochs: 60, BatchSize: 32, Seed: 1})
	return net, xs, labels
}

func TestBuildTablesAndInferApproximatesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, xs, labels := trainToyNet(rng, 8, 3)
	if acc := nn.Accuracy(net, xs, labels); acc < 0.9 {
		t.Fatalf("toy net failed to train: acc %g", acc)
	}
	prog, err := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 6, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Fuzzy fixed-point inference must agree with the full-precision
	// model on the large majority of samples (§7.5 reports ≈1% loss).
	agree := 0
	for i := range calib {
		x := make([]int32, 8)
		for j, f := range calib[i] {
			x[j] = int32(f)
		}
		if comp.Classify(x) == net.Predict(tensor.FromSlice(1, 8, calib[i]))[0] {
			agree++
		}
	}
	frac := float64(agree) / float64(len(calib))
	if frac < 0.85 {
		t.Fatalf("fuzzy inference agrees on only %.1f%% of samples", 100*frac)
	}
}

func TestBuildTablesValidation(t *testing.T) {
	prog := &Program{Name: "p", InDim: 2, Steps: []Step{
		&Map{Fns: []Fn{Identity(2)}},
	}}
	if _, err := BuildTables(prog, nil, CompileConfig{}); err == nil {
		t.Fatal("want error for empty calibration")
	}
	if _, err := BuildTables(prog, [][]float64{{1}}, CompileConfig{}); err == nil {
		t.Fatal("want error for wrong-dim calibration")
	}
}

func TestCompiledLookupsCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, xs, _ := trainToyNet(rng, 8, 3)
	prog, _ := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	fused := Fuse(prog)
	calib := make([][]float64, 100)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 4, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Lookups() <= 0 {
		t.Fatal("Lookups must be positive")
	}
	// 2 FC groups: 4 segments + 6 segments? Each fuzzy segment = 2
	// lookups (TCAM + SRAM).
	want := 0
	for _, g := range comp.Groups {
		for _, s := range g.Segs {
			if s.Mode == SegFuzzy {
				want += 2
			}
		}
	}
	if comp.Lookups() != want {
		t.Fatalf("Lookups = %d, want %d", comp.Lookups(), want)
	}
}

func TestSwitchEquivalence(t *testing.T) {
	// The emitted PISA program must be bit-identical to host inference.
	rng := rand.New(rand.NewSource(12))
	net, xs, _ := trainToyNet(rng, 8, 3)
	prog, _ := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	fused := Fuse(prog)
	calib := make([][]float64, 300)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 5, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		x := make([]int32, 8)
		for j := range x {
			x[j] = int32(rng.Intn(40))
		}
		hostOut := comp.Infer(x)
		hostClass := comp.Classify(x)
		swClass, swOut := em.RunSwitch(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("trial %d: switch out[%d] = %d, host = %d", trial, j, swOut[j], hostOut[j])
			}
		}
		if swClass != hostClass {
			t.Fatalf("trial %d: switch class %d, host %d", trial, swClass, hostClass)
		}
	}
}

func TestSwitchEquivalenceNAM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inner := nn.NewSequential(nn.NewLinear(4, 8, rng), nn.NewActivation(nn.Tanh), nn.NewLinear(8, 3, rng))
	net := nn.NewSequential(nn.NewSegmentsAsBatch(4, 4, inner), nn.NewSumSegments(4, 3))
	prog, err := Lower("nam", net, 16, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	calib := calibData(rng, 400, 16, 256)
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 5, InBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]int32, 16)
		for j := range x {
			x[j] = int32(rng.Intn(256))
		}
		swClass, swOut := em.RunSwitch(x)
		hostOut := comp.Infer(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("NAM switch out mismatch at %d: %d vs %d", j, swOut[j], hostOut[j])
			}
		}
		if swClass != comp.Classify(x) {
			t.Fatal("NAM class mismatch")
		}
	}
}

func TestSwitchEquivalenceWithEmbeddingAndPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := nn.NewSequential(
		nn.NewEmbedding(32, 2, 4, rng),
		nn.NewConv1d(4, 2, 4, 2, 2, rng), nn.NewActivation(nn.ReLU),
		nn.NewGlobalMaxPool(2, 4),
		nn.NewLinear(4, 3, rng),
	)
	prog, err := Lower("embcnn", net, 4, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	calib := calibData(rng, 300, 4, 32)
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 4, InBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]int32, 4)
		for j := range x {
			x[j] = int32(rng.Intn(32))
		}
		_, swOut := em.RunSwitch(x)
		hostOut := comp.Infer(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("emb/pool mismatch at %d: %d vs %d", j, swOut[j], hostOut[j])
			}
		}
	}
}

func TestEmitResourceAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net, xs, _ := trainToyNet(rng, 8, 3)
	prog, _ := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	calib := make([][]float64, 200)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(Fuse(prog), calib, CompileConfig{TreeDepth: 4, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Emit(comp, EmitOptions{Argmax: true, FlowStateBits: 80, Flows: 1024})
	if err != nil {
		t.Fatal(err)
	}
	res := em.Prog.Resources()
	if res.SRAMBits <= 0 || res.TCAMBits <= 0 {
		t.Fatalf("resources: %+v", res)
	}
	if res.RegBits != 80*1024 {
		t.Fatalf("RegBits = %d, want %d", res.RegBits, 80*1024)
	}
	if res.Stages > pisa.Tofino2.Stages {
		t.Fatalf("program uses %d stages", res.Stages)
	}
	// Deeper trees must cost more TCAM.
	comp2, err := BuildTables(Fuse(prog), calib, CompileConfig{TreeDepth: 6, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	em2, err := Emit(comp2, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if em2.Prog.Resources().TCAMBits <= res.TCAMBits {
		t.Fatal("deeper trees should consume more TCAM")
	}
}

func TestInferFloatsDequantises(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net, xs, _ := trainToyNet(rng, 8, 3)
	prog, _ := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	calib := make([][]float64, 200)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(Fuse(prog), calib, CompileConfig{TreeDepth: 5, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	outF := comp.InferFloats(calib[0])
	want := net.Forward(tensor.FromSlice(1, 8, calib[0]), false).Row(0)
	// Same argmax and roughly similar magnitudes.
	bi, bw := 0, 0
	for j := range outF {
		if outF[j] > outF[bi] {
			bi = j
		}
		if want[j] > want[bw] {
			bw = j
		}
	}
	if math.IsNaN(outF[0]) {
		t.Fatal("NaN output")
	}
	_ = bi
	_ = bw // argmax agreement covered statistically elsewhere
}
