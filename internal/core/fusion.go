package core

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Primitive Fusion (§4.3). Four semantics-preserving rewrites, applied
// to a fixpoint:
//
//	A  Merge Consecutive Maps:        Map(f);Map(g)        → Map(g∘f)
//	B  Elementwise Map ∘ Partition:   Map(e);Partition     → Partition;Map(e|group)
//	C  Linear Reordering:             SumReduce;Map(aff g) → Map(g_i);SumReduce
//	D  Affine aggregation collapse:   Partition;Map(all affine);SumReduce
//	                                   → Map(ΣW_i·x[g_i]+b)   (single affine)
//
// Basic fusion (Figure 5 ❶) uses A and B: it compresses each
// BN+FC+Activation block into one fused table group while keeping
// Partition boundaries (and therefore small table keys) intact — an
// L-layer MLP's 3L+1 lookups become L+1 fused groups. Rules C and D run
// only in the advanced pass (Figure 5 ❷ via DropNonlinear), where they
// legitimately collapse a purely linear model into a single lookup;
// rule C places the bias on segment 0 only so the reduced sum is exact,
// and rule D requires a single incoming segment.

// Fuse applies basic primitive fusion (rules A and B) and returns a new
// program. Rules C and D are reserved for the advanced pass: applied
// unconditionally they would collapse any feed-forward model into one
// whole-input table, destroying the small-key property Partition exists
// to provide.
func Fuse(p *Program) *Program {
	return fuseWith(p, false, "+fused")
}

func fuseWith(p *Program, advanced bool, suffix string) *Program {
	steps := append([]Step(nil), p.Steps...)
	for iter := 0; iter < 200; iter++ {
		var changed bool
		steps, changed = fuseOnce(p.InDim, steps, advanced)
		if !changed {
			break
		}
	}
	return &Program{Name: p.Name + suffix, InDim: p.InDim, Steps: steps}
}

// DropNonlinear implements Advanced Primitive Fusion ❷: it removes every
// nonlinear element-wise Map (activations), leaving a purely linear
// program that basic fusion then collapses into a single table lookup.
// The paper notes this trades accuracy for maximal fusion; callers must
// retrain/re-evaluate the linearised model.
func DropNonlinear(p *Program) *Program {
	var steps []Step
	for _, s := range p.Steps {
		if m, ok := s.(*Map); ok {
			fns := make([]Fn, len(m.Fns))
			drop := true
			for i, f := range m.Fns {
				if lin := stripNonlinear(f); lin != nil {
					fns[i] = lin
				} else {
					drop = false
					break
				}
			}
			if drop {
				allIdentity := true
				for _, f := range fns {
					if _, isID := f.(*identityFn); !isID {
						allIdentity = false
						break
					}
				}
				if allIdentity {
					continue // the whole Map was activations: remove it
				}
				steps = append(steps, &Map{Fns: fns})
				continue
			}
		}
		steps = append(steps, s)
	}
	out := &Program{Name: p.Name, InDim: p.InDim, Steps: steps}
	return fuseWith(out, true, "+linear")
}

// identityFn marks a fully removed activation.
type identityFn struct{ dim int }

func (f *identityFn) InDim() int                 { return f.dim }
func (f *identityFn) OutDim() int                { return f.dim }
func (f *identityFn) Name() string               { return fmt.Sprintf("Id(%d)", f.dim) }
func (f *identityFn) Eval(x []float64) []float64 { return append([]float64(nil), x...) }

// stripNonlinear returns f with activations replaced by identity, or nil
// when f contains a non-elementwise nonlinearity it cannot strip.
func stripNonlinear(f Fn) Fn {
	switch v := f.(type) {
	case *ActFn:
		return &identityFn{dim: v.Dim}
	case *AffineFn:
		return v
	case *identityFn:
		return v
	case *ComposeFn:
		a := stripNonlinear(v.First)
		b := stripNonlinear(v.Second)
		if a == nil || b == nil {
			return nil
		}
		// Re-compose, folding out identities.
		if _, ok := a.(*identityFn); ok {
			return b
		}
		if _, ok := b.(*identityFn); ok {
			return a
		}
		return Compose(b, a)
	}
	return nil
}

// bundleShape traces segment widths before each step (and after the
// last).
func bundleShape(inDim int, steps []Step) [][]int {
	shapes := make([][]int, len(steps)+1)
	cur := []int{inDim}
	shapes[0] = cur
	for i, s := range steps {
		cur = applyShape(s, cur)
		shapes[i+1] = cur
	}
	return shapes
}

func applyShape(s Step, in []int) []int {
	switch v := s.(type) {
	case *Partition:
		out := make([]int, len(v.Groups))
		for i, g := range v.Groups {
			out[i] = len(g)
		}
		return out
	case *Map:
		out := make([]int, len(in))
		for i := range in {
			out[i] = v.Fns[i].OutDim()
		}
		return out
	case SumReduce, MaxReduce:
		if len(in) == 0 {
			return in
		}
		return []int{in[0]}
	}
	panic("core: unknown step in shape trace")
}

func fuseOnce(inDim int, steps []Step, advanced bool) ([]Step, bool) {
	shapes := bundleShape(inDim, steps)

	for i := 0; i+1 < len(steps); i++ {
		// Rule A: Map;Map → Map(g∘f). Embedding lookups are exempt: they
		// compile to exact per-index tables, and composing them away
		// would force a fuzzy approximation of an exact operator.
		if m1, ok := steps[i].(*Map); ok {
			hasEmbed := false
			for _, f := range m1.Fns {
				if _, isEmb := f.(*EmbedFn); isEmb {
					hasEmbed = true
				}
			}
			if m2, ok := steps[i+1].(*Map); ok && !hasEmbed && len(m1.Fns) == len(m2.Fns) {
				fns := make([]Fn, len(m1.Fns))
				for k := range fns {
					fns[k] = Compose(m2.Fns[k], m1.Fns[k])
				}
				out := append([]Step(nil), steps[:i]...)
				out = append(out, &Map{Fns: fns})
				out = append(out, steps[i+2:]...)
				return out, true
			}
		}
		// Rule B: Map(elementwise);Partition → Partition;Map(restricted).
		if m, ok := steps[i].(*Map); ok && len(m.Fns) == 1 {
			if pt, ok := steps[i+1].(*Partition); ok {
				if rs, ok := restrictPerGroup(m.Fns[0], pt.Groups); ok {
					out := append([]Step(nil), steps[:i]...)
					out = append(out, pt, &Map{Fns: rs})
					out = append(out, steps[i+2:]...)
					return out, true
				}
			}
		}
		// Rule C: SumReduce;Map(affine) → Map(affine_i);SumReduce.
		if _, ok := steps[i].(SumReduce); ok && advanced {
			if m, ok := steps[i+1].(*Map); ok && len(m.Fns) == 1 {
				if g, ok := m.Fns[0].(*AffineFn); ok {
					k := len(shapes[i]) // segments feeding the SumReduce
					if k > 1 {
						fns := make([]Fn, k)
						for s := 0; s < k; s++ {
							w := g.W.Clone()
							b := make([]float64, g.W.R)
							if s == 0 {
								copy(b, g.B)
							}
							fns[s] = &AffineFn{W: w, B: b}
						}
						out := append([]Step(nil), steps[:i]...)
						out = append(out, &Map{Fns: fns}, SumReduce{})
						out = append(out, steps[i+2:]...)
						return out, true
					}
				}
			}
		}
		// Rule D: Partition;Map(all affine);SumReduce with single incoming
		// segment → Map(combined affine).
		if pt, ok := steps[i].(*Partition); ok && advanced && len(shapes[i]) == 1 && i+2 < len(steps) {
			if m, ok := steps[i+1].(*Map); ok {
				if _, ok := steps[i+2].(SumReduce); ok {
					if comb := combineAffinePartition(shapes[i][0], pt, m); comb != nil {
						out := append([]Step(nil), steps[:i]...)
						out = append(out, &Map{Fns: []Fn{comb}})
						out = append(out, steps[i+3:]...)
						return out, true
					}
				}
			}
		}
	}
	return steps, false
}

// restrictPerGroup restricts an element-wise function to each index
// group; returns ok=false when f is not element-wise.
func restrictPerGroup(f Fn, groups [][]int) ([]Fn, bool) {
	switch v := f.(type) {
	case *ActFn:
		out := make([]Fn, len(groups))
		for i, g := range groups {
			out[i] = &ActFn{Kind: v.Kind, Dim: len(g)}
		}
		return out, true
	case *identityFn:
		out := make([]Fn, len(groups))
		for i, g := range groups {
			out[i] = &identityFn{dim: len(g)}
		}
		return out, true
	case *AffineFn:
		scale, shift, ok := diagOf(v)
		if !ok {
			return nil, false
		}
		out := make([]Fn, len(groups))
		for i, g := range groups {
			s := make([]float64, len(g))
			sh := make([]float64, len(g))
			for k, idx := range g {
				s[k] = scale[idx]
				sh[k] = shift[idx]
			}
			out[i] = Diag(s, sh)
		}
		return out, true
	case *ComposeFn:
		fs, ok1 := restrictPerGroup(v.First, groups)
		ss, ok2 := restrictPerGroup(v.Second, groups)
		if !ok1 || !ok2 {
			return nil, false
		}
		out := make([]Fn, len(groups))
		for i := range groups {
			out[i] = Compose(ss[i], fs[i])
		}
		return out, true
	}
	return nil, false
}

// diagOf extracts (scale, shift) when a is diagonal.
func diagOf(a *AffineFn) (scale, shift []float64, ok bool) {
	if a.W.R != a.W.C {
		return nil, nil, false
	}
	n := a.W.R
	scale = make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.W.Row(i)
		for j, v := range row {
			if i != j && v != 0 {
				return nil, nil, false
			}
		}
		scale[i] = row[i]
	}
	return scale, a.B, true
}

// combineAffinePartition folds Partition;Map(affine_i);SumReduce into a
// single AffineFn over the un-partitioned input, or nil when any segment
// function is not affine.
func combineAffinePartition(inDim int, pt *Partition, m *Map) *AffineFn {
	if len(m.Fns) != len(pt.Groups) {
		return nil
	}
	var outDim int
	affs := make([]*AffineFn, len(m.Fns))
	for i, f := range m.Fns {
		a, ok := f.(*AffineFn)
		if !ok {
			return nil
		}
		if i == 0 {
			outDim = a.W.R
		} else if a.W.R != outDim {
			return nil
		}
		affs[i] = a
	}
	w := tensor.New(outDim, inDim)
	b := make([]float64, outDim)
	for i, a := range affs {
		g := pt.Groups[i]
		for r := 0; r < outDim; r++ {
			row := a.W.Row(r)
			dst := w.Row(r)
			for k, idx := range g {
				dst[idx] += row[k]
			}
			b[r] += a.B[r]
		}
	}
	return &AffineFn{W: w, B: b}
}

// ActLike reports whether f ends in (or is) an activation — useful for
// diagnostics on what blocked a fusion.
func ActLike(f Fn) bool {
	switch v := f.(type) {
	case *ActFn:
		return true
	case *ComposeFn:
		return ActLike(v.Second)
	}
	return false
}
