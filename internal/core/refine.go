package core

import (
	"fmt"
	"math"

	"github.com/pegasus-idp/pegasus/internal/nn"
)

// RefineConfig controls the backpropagation refinement of §4.4: after
// tables are built, the stored outputs are fine-tuned against the task
// loss with fuzzy assignments frozen (the straight-through scheme of
// Zhang [51]), "making the mapping table more accurately align with the
// model's actual output".
type RefineConfig struct {
	Epochs int
	LR     float64
	// Seed orders the samples.
	Seed int64
}

func (c *RefineConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
}

// RefineClassifier fine-tunes the final table group of a classifier
// against cross-entropy on (inputs, labels). The last group must be a
// fuzzy SumReduce group producing the logits (the NAM shape of Advanced
// Fusion ❸, and the final FC group of basic-fused models). With
// assignments frozen the logits are exactly linear in the stored table
// entries, so the gradient is exact rather than estimated.
//
// Returns the training accuracy after refinement.
func RefineClassifier(c *Compiled, inputs [][]float64, labels []int, cfg RefineConfig) (float64, error) {
	cfg.defaults()
	if len(inputs) != len(labels) {
		return 0, fmt.Errorf("core: %d inputs vs %d labels", len(inputs), len(labels))
	}
	last := &c.Groups[len(c.Groups)-1]
	if last.Reduce != ReduceSum {
		return 0, fmt.Errorf("core: final group must SumReduce to refine (got %v)", last.Reduce)
	}
	for _, s := range last.Segs {
		if s.Mode != SegFuzzy {
			return 0, fmt.Errorf("core: refinement requires fuzzy final segments")
		}
	}
	nClasses := last.Segs[0].OutDim
	// Table entries are stored pre-shift: their fixed-point position is
	// OutFrac + RShift.
	pos := int(c.OutFrac) + int(last.RShift)
	scale := math.Ldexp(1, -pos)

	// Shadow float tables (dequantised), updated by SGD and re-quantised
	// on every epoch end.
	shadow := make([][][]float64, len(last.Segs))
	for si, s := range last.Segs {
		shadow[si] = make([][]float64, len(s.Table))
		for li, row := range s.Table {
			fr := make([]float64, len(row))
			for j, v := range row {
				fr[j] = float64(v) * scale
			}
			shadow[si][li] = fr
		}
	}

	// Precompute per-sample fuzzy assignments and any residual shift.
	pre := make([][]int, len(inputs)) // sample → leaf per segment
	for i, x := range inputs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		cur := v
		for gi := 0; gi < len(c.Groups)-1; gi++ {
			cur = c.Groups[gi].Eval(cur)
		}
		leaves := make([]int, len(last.Segs))
		for si := range last.Segs {
			s := &last.Segs[si]
			seg := make([]float64, len(s.Cols))
			for k, col := range s.Cols {
				seg[k] = float64(cur[col])
			}
			leaves[si] = s.Tree.Assign(seg)
		}
		pre[i] = leaves
	}

	probs := make([]float64, nClasses)
	logits := make([]float64, nClasses)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i, leaves := range pre {
			for j := range logits {
				logits[j] = 0
			}
			for si, leaf := range leaves {
				for j := 0; j < nClasses; j++ {
					logits[j] += shadow[si][leaf][j]
				}
			}
			nn.SoftmaxRow(logits, probs)
			cls := labels[i]
			for si, leaf := range leaves {
				row := shadow[si][leaf]
				for j := 0; j < nClasses; j++ {
					g := probs[j]
					if j == cls {
						g -= 1
					}
					row[j] -= cfg.LR * g
				}
			}
		}
	}
	// Re-quantise the refined tables in place with the existing position
	// (keeping the fixed-point layout the switch already uses).
	for si := range last.Segs {
		s := &last.Segs[si]
		for li, fr := range shadow[si] {
			for j, f := range fr {
				s.Table[li][j] = quantizeAt(f, int8(pos), c.Cfg.OutBits)
			}
		}
	}

	// Report resulting training accuracy.
	hit := 0
	for i, x := range inputs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		if c.Classify(v) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(inputs)), nil
}

// quantizeAt quantises x at the given fixed-point position, saturating
// to the signed bit width.
func quantizeAt(x float64, frac int8, bits uint8) int32 {
	hi := int64(1)<<(bits-1) - 1
	r := math.RoundToEven(math.Ldexp(x, int(frac)))
	if r > float64(hi) {
		return int32(hi)
	}
	if r < float64(-hi-1) {
		return int32(-hi - 1)
	}
	return int32(r)
}
