package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/nn"
)

// compiledEqual checks two compiled models classify every calibration
// point identically.
func compiledEqual(t *testing.T, a, b *Compiled, calib [][]float64) {
	t.Helper()
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range calib {
		x := make([]int32, len(calib[i]))
		for j, f := range calib[i] {
			x[j] = int32(f)
		}
		if a.Classify(x) != b.Classify(x) {
			t.Fatalf("sample %d: %d vs %d", i, a.Classify(x), b.Classify(x))
		}
	}
}

func TestPipelineMatchesManualPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, xs, _ := trainToyNet(rng, 8, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	cfg := CompileConfig{TreeDepth: 6, InBits: 16}

	// Manual phase stitching (the pre-pass-manager flow).
	prog, err := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildTables(Fuse(prog), calib, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pipe := NewPipeline("toy", CompileOptions{
		Lower:  LowerConfig{MaxSegDim: 2},
		Tables: cfg,
	})
	got, err := pipe.Compile(net, 8, calib)
	if err != nil {
		t.Fatal(err)
	}
	compiledEqual(t, got, want, calib)
}

func TestPipelineDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net, xs, _ := trainToyNet(rng, 8, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	pipe := NewPipeline("toy", CompileOptions{
		Lower:  LowerConfig{MaxSegDim: 2},
		Tables: CompileConfig{TreeDepth: 5, InBits: 16},
		Emit:   EmitOptions{Argmax: true},
	})
	if _, err := pipe.Compile(net, 8, calib); err != nil {
		t.Fatal(err)
	}
	diags := pipe.Diagnostics()
	wantOrder := []string{"lower", "fuse", "build-tables"}
	if len(diags) != len(wantOrder) {
		t.Fatalf("diags = %d, want %d", len(diags), len(wantOrder))
	}
	for i, d := range diags {
		if d.Pass != wantOrder[i] {
			t.Fatalf("pass %d = %q, want %q", i, d.Pass, wantOrder[i])
		}
		if d.Err != "" {
			t.Fatalf("pass %q failed: %s", d.Pass, d.Err)
		}
	}
	if diags[0].Steps == 0 || diags[0].DSteps <= 0 {
		t.Fatalf("lower diag records no steps: %+v", diags[0])
	}
	if diags[1].DLookups >= 0 {
		t.Fatalf("fuse should shrink lookups, Δ = %d", diags[1].DLookups)
	}
	if diags[2].Groups == 0 || diags[2].Tables == 0 {
		t.Fatalf("build-tables diag empty: %+v", diags[2])
	}

	if _, err := pipe.EmitProgram(1 << 10); err != nil {
		t.Fatal(err)
	}
	diags = pipe.Diagnostics()
	last := diags[len(diags)-1]
	if last.Pass != "emit" || last.Stages == 0 || last.DSRAMBits <= 0 || last.DTCAMBits <= 0 {
		t.Fatalf("emit diag wrong: %+v", last)
	}
	if !strings.Contains(pipe.DiagString(), "emit") {
		t.Fatal("DiagString missing emit row")
	}
}

func TestPipelineNormalizeFoldsIntoProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net, xs, _ := trainToyNet(rng, 8, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	cfg := CompileConfig{TreeDepth: 6, InBits: 16}

	// Manual: prepend the diagonal scaling Map, then fuse + build.
	prog, err := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	scale := make([]float64, 8)
	for i := range scale {
		scale[i] = 1.0 / 16
	}
	pre := &Map{Fns: []Fn{Diag(scale, make([]float64, 8))}}
	manual := &Program{Name: prog.Name, InDim: 8, Steps: append([]Step{pre}, prog.Steps...)}
	want, err := BuildTables(Fuse(manual), calib, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pipe := NewPipeline("toy", CompileOptions{
		Lower:     LowerConfig{MaxSegDim: 2},
		Tables:    cfg,
		Normalize: 16,
	})
	got, err := pipe.Compile(net, 8, calib)
	if err != nil {
		t.Fatal(err)
	}
	compiledEqual(t, got, want, calib)
}

func TestPipelineCustomisation(t *testing.T) {
	pipe := NewPipeline("custom", CompileOptions{})
	names := pipe.PassNames()
	want := []string{"lower", "fuse", "build-tables", "emit"}
	if len(names) != len(want) {
		t.Fatalf("PassNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PassNames = %v, want %v", names, want)
		}
	}
	ran := []string{}
	mark := func(name string) Pass {
		return Pass{Name: name, Run: func(*PassState) error {
			ran = append(ran, name)
			return nil
		}}
	}
	pipe.Replace("lower", mark("lower"))
	pipe.Replace("fuse", mark("fuse"))
	pipe.Replace("build-tables", mark("build-tables"))
	pipe.InsertAfter("lower", mark("post-lower"))
	pipe.InsertBefore("build-tables", mark("pre-build"))
	pipe.Remove("fuse")
	// The compile list is now lower, post-lower, pre-build, build-tables;
	// Compile fails on the missing artefact but runs every pass.
	if _, err := pipe.Compile(nil, 0, nil); err == nil {
		t.Fatal("want artefact error from stub passes")
	}
	wantRan := []string{"lower", "post-lower", "pre-build", "build-tables"}
	if len(ran) != len(wantRan) {
		t.Fatalf("ran = %v", ran)
	}
	for i := range wantRan {
		if ran[i] != wantRan[i] {
			t.Fatalf("ran = %v, want %v", ran, wantRan)
		}
	}
	if len(pipe.Diagnostics()) != len(wantRan) {
		t.Fatalf("diags = %d, want %d", len(pipe.Diagnostics()), len(wantRan))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pass name must panic")
		}
	}()
	pipe.Remove("no-such-pass")
}

func TestPipelineRefinePass(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net, xs, labels := trainToyNet(rng, 8, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	pipe := NewPipeline("toy", CompileOptions{
		Lower:  LowerConfig{MaxSegDim: 2},
		Tables: CompileConfig{TreeDepth: 6, InBits: 16},
		Refine: RefineConfig{Epochs: 3, LR: 0.05},
	})
	if _, err := pipe.Compile(net, 8, calib); err != nil {
		t.Fatal(err)
	}
	acc, err := pipe.Refine(calib, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 || acc > 1 {
		t.Fatalf("refine acc = %g", acc)
	}
	diags := pipe.Diagnostics()
	if diags[len(diags)-1].Pass != "refine" {
		t.Fatalf("last diag = %+v", diags[len(diags)-1])
	}
}

func TestRNNPipelineMatchesCompileRNN(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const T, stepDims = 4, 2
	emb := nn.NewEmbedding(64, 2, T*stepDims, rng)
	cell := nn.NewRNN(T, stepDims*2, 6, rng)
	out := nn.NewLinear(6, 3, rng)
	calib := calibData(rng, 200, T*stepDims, 64)
	spec := RNNSpec{T: T, StepDims: stepDims, Emb: emb, Cell: cell, Out: out,
		InputDepth: 4, HiddenDepth: 5}

	want, err := CompileRNN("rnn", spec, calib)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewRNNPipeline("rnn", spec, CompileOptions{})
	if err := pipe.CompileCalib(calib); err != nil {
		t.Fatal(err)
	}
	got := pipe.State.RNN
	if got == nil {
		t.Fatal("RNN pipeline produced no artefact")
	}
	for i := range calib {
		x := make([]int32, len(calib[i]))
		for j, f := range calib[i] {
			x[j] = int32(f)
		}
		if got.Classify(x) != want.Classify(x) {
			t.Fatalf("sample %d: pipeline %d vs CompileRNN %d", i, got.Classify(x), want.Classify(x))
		}
	}
	names := pipe.PassNames()
	if names[0] != "lower" || names[1] != "build-tables" {
		t.Fatalf("RNN pass names = %v", names)
	}
	if _, err := pipe.EmitProgram(1 << 8); err != nil {
		t.Fatal(err)
	}
	if pipe.State.Emitted == nil || pipe.State.Emitted.Stages == 0 {
		t.Fatal("RNN emit produced nothing")
	}
}

func TestEngineBitIdenticalToRunSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	net, xs, _ := trainToyNet(rng, 8, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	pipe := NewPipeline("toy", CompileOptions{
		Lower:  LowerConfig{MaxSegDim: 2},
		Tables: CompileConfig{TreeDepth: 6, InBits: 16},
		Emit:   EmitOptions{Argmax: true},
	})
	if _, err := pipe.Compile(net, 8, calib); err != nil {
		t.Fatal(err)
	}
	em, err := pipe.EmitProgram(0)
	if err != nil {
		t.Fatal(err)
	}
	ints := make([][]int32, len(calib))
	for i := range calib {
		v := make([]int32, len(calib[i]))
		for j, f := range calib[i] {
			v[j] = int32(f)
		}
		ints[i] = v
	}
	jobs := BatchJobs(ints)
	for _, workers := range []int{1, 4} {
		eng := em.NewEngine(workers)
		res := eng.RunBatch(jobs)
		for i, x := range ints {
			cls, outs := em.RunSwitch(x)
			if res[i].Class != cls {
				t.Fatalf("workers=%d sample %d: engine class %d, RunSwitch %d", workers, i, res[i].Class, cls)
			}
			for k := range outs {
				if res[i].Outs[k] != outs[k] {
					t.Fatalf("workers=%d sample %d out %d: %d vs %d", workers, i, k, res[i].Outs[k], outs[k])
				}
			}
		}
	}
}
