package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/pegasus-idp/pegasus/internal/nn"
)

// This file is the staged pass manager that unifies every compilation
// path in the repo. The paper's compiler is a sequence of phases — lower
// to primitives (§5), fuse (§4.3), quantise into fuzzy tables (§4.2,
// §4.4), refine (§4.4), emit onto PISA (§6.1) — and the Pipeline runs
// them as named, instrumented passes over one shared PassState. Model
// families customise the sequence (replace a pass, insert extra ones)
// instead of re-stitching the phases by hand.

// CompileOptions is the single configuration struct for a compilation
// pipeline. It subsumes the per-phase configs: LowerConfig (lower pass),
// CompileConfig (build-tables), RefineConfig (refine) and EmitOptions
// (emit).
type CompileOptions struct {
	// Lower tunes network → primitive translation.
	Lower LowerConfig
	// Tables tunes fuzzy-tree learning and quantisation.
	Tables CompileConfig
	// Refine tunes the backprop table refinement.
	Refine RefineConfig
	// Emit controls PISA emission: the backend (Emit.Target, nil =
	// single-pipe Tofino 2), the argmax stage and flow-state registers.
	Emit EmitOptions
	// Normalize folds a 1/Normalize input scaling into the lowered
	// program (the dataplane consumes raw integers); 0 = off.
	Normalize float64
	// DropNonlinear inserts the Advanced Primitive Fusion ❷ pass, which
	// strips activations so basic fusion collapses the linearised model.
	DropNonlinear bool
}

// PassState is the mutable compilation state threaded through every
// pass. Standard passes read the inputs and populate the artefacts;
// custom passes may touch anything.
type PassState struct {
	// Model is the name compiled artefacts inherit.
	Model string
	// Opts points at the owning Pipeline's options, so passes observe
	// option updates made between runs (e.g. a Refine config set late).
	Opts *CompileOptions

	// Compile inputs.
	Net   *nn.Sequential
	InDim int
	Calib [][]float64

	// Refine inputs.
	RefineInputs [][]float64
	RefineLabels []int

	// Emit inputs. Flows sizes the per-flow register arrays.
	Flows int

	// Artefacts.
	Prog     *Program
	Compiled *Compiled
	RNN      *CompiledRNN
	Emitted  *Emitted

	// RefineAcc is the training accuracy reported by the refine pass.
	RefineAcc float64
}

// Pass is one named pipeline stage.
type Pass struct {
	Name string
	Run  func(*PassState) error
}

// PassDiag records one instrumented pass execution: wall time, the
// artefact counts after the pass, and the deltas the pass caused.
type PassDiag struct {
	Pass string
	Wall time.Duration

	// Primitive-program counts (valid once a program exists).
	Steps   int
	Lookups int
	// Compiled counts: plan groups and table lookups per inference.
	Groups int
	Tables int
	// Emitted counts.
	Stages   int
	SRAMBits int
	TCAMBits int

	// Deltas relative to the state before the pass ran.
	DSteps, DLookups int
	DGroups, DTables int
	DStages          int
	DSRAMBits        int
	DTCAMBits        int

	// Err is set when the pass failed (the diag is still recorded).
	Err string
}

// diagCounts snapshots the countable state for delta computation.
func diagCounts(st *PassState) (steps, lookups, groups, tables, stages, sram, tcam int) {
	if st.Prog != nil {
		steps = len(st.Prog.Steps)
		lookups = st.Prog.Lookups()
	}
	if st.Compiled != nil {
		groups = len(st.Compiled.Groups)
		tables = st.Compiled.Lookups()
	}
	if st.RNN != nil {
		groups = st.RNN.T
		tables = st.RNN.Lookups()
	}
	if st.Emitted != nil && st.Emitted.Prog != nil {
		res := st.Emitted.Resources()
		stages = st.Emitted.Stages
		sram = res.SRAMBits
		tcam = res.TCAMBits
	}
	return
}

// Pipeline is a staged pass manager: an ordered compile-pass list, an
// emit-pass list (run per Emit call, since the flow count is an emit-time
// input), and the diagnostics of every pass executed so far.
type Pipeline struct {
	Name string
	Opts CompileOptions
	// State is the shared pass state; custom passes and callers may
	// inspect it between runs.
	State PassState
	// Diags accumulates one entry per executed pass, in order.
	Diags []PassDiag

	compile []Pass
	emit    []Pass
}

// NewPipeline builds the standard feed-forward pipeline: lower → fuse
// [→ drop-nonlinear] → build-tables, with a single emit pass. Models
// customise it with Replace/InsertBefore/InsertAfter/Remove.
func NewPipeline(name string, opts CompileOptions) *Pipeline {
	p := &Pipeline{Name: name, Opts: opts}
	p.compile = []Pass{LowerPass(), FusePass()}
	if opts.DropNonlinear {
		p.compile = append(p.compile, DropNonlinearPass())
	}
	p.compile = append(p.compile, BuildTablesPass())
	p.emit = []Pass{EmitPass()}
	return p
}

// NewRNNPipeline builds the recurrent pipeline (§4.2 flow scalability):
// the lower pass traces full-precision hidden trajectories and learns
// the input/hidden clustering trees; build-tables precomputes the
// transition and logits tables. The standard emit pass lowers the
// chained-index program.
func NewRNNPipeline(name string, spec RNNSpec, opts CompileOptions) *Pipeline {
	p := &Pipeline{Name: name, Opts: opts}
	sp := spec
	p.compile = []Pass{
		{Name: "lower", Run: func(st *PassState) error {
			c, err := rnnLower(st.Model, &sp, st.Calib)
			if err != nil {
				return err
			}
			st.RNN = c
			return nil
		}},
		{Name: "build-tables", Run: func(st *PassState) error {
			return rnnBuildTables(st.RNN, sp)
		}},
	}
	p.emit = []Pass{EmitPass()}
	return p
}

// ---- standard passes ----

// LowerPass translates the trained network into the initial primitive
// program, folding the input normalisation (Opts.Normalize) into a
// prepended diagonal Map so later fusion absorbs it into the first
// table group.
func LowerPass() Pass {
	return Pass{Name: "lower", Run: func(st *PassState) error {
		if st.Net == nil {
			return fmt.Errorf("lower: no network in pass state")
		}
		prog, err := Lower(st.Model, st.Net, st.InDim, st.Opts.Lower)
		if err != nil {
			return err
		}
		if n := st.Opts.Normalize; n > 0 {
			scale := make([]float64, st.InDim)
			for i := range scale {
				scale[i] = 1 / n
			}
			pre := &Map{Fns: []Fn{Diag(scale, make([]float64, st.InDim))}}
			prog = &Program{Name: prog.Name, InDim: st.InDim,
				Steps: append([]Step{pre}, prog.Steps...)}
		}
		st.Prog = prog
		return nil
	}}
}

// FusePass applies Basic Primitive Fusion (§4.3, rules A and B).
func FusePass() Pass {
	return Pass{Name: "fuse", Run: func(st *PassState) error {
		if st.Prog == nil {
			return fmt.Errorf("fuse: no program in pass state")
		}
		st.Prog = Fuse(st.Prog)
		return nil
	}}
}

// DropNonlinearPass applies Advanced Primitive Fusion ❷ (activation
// stripping + aggressive linear collapse).
func DropNonlinearPass() Pass {
	return Pass{Name: "drop-nonlinear", Run: func(st *PassState) error {
		if st.Prog == nil {
			return fmt.Errorf("drop-nonlinear: no program in pass state")
		}
		st.Prog = DropNonlinear(st.Prog)
		return nil
	}}
}

// BuildTablesPass learns fuzzy trees and quantised mapping tables from
// the calibration set (§4.2, §4.4).
func BuildTablesPass() Pass {
	return Pass{Name: "build-tables", Run: func(st *PassState) error {
		if st.Prog == nil {
			return fmt.Errorf("build-tables: no program in pass state")
		}
		comp, err := BuildTables(st.Prog, st.Calib, st.Opts.Tables)
		if err != nil {
			return err
		}
		st.Compiled = comp
		return nil
	}}
}

// RefinePass backprop-tunes the final mapping tables against the task
// loss (§4.4) using the refine inputs/labels in the state.
func RefinePass() Pass {
	return Pass{Name: "refine", Run: func(st *PassState) error {
		if st.Compiled == nil {
			return fmt.Errorf("refine: no compiled tables in pass state")
		}
		acc, err := RefineClassifier(st.Compiled, st.RefineInputs, st.RefineLabels, st.Opts.Refine)
		if err != nil {
			return err
		}
		st.RefineAcc = acc
		return nil
	}}
}

// EmitPass lowers the compiled artefact (feed-forward tables or the
// chained-index RNN) onto the PISA pipeline. State.Flows overrides the
// register sizing of Opts.Emit when set.
func EmitPass() Pass {
	return Pass{Name: "emit", Run: func(st *PassState) error {
		opts := st.Opts.Emit
		if st.Flows > 0 {
			opts.Flows = st.Flows
		}
		var err error
		switch {
		case st.RNN != nil:
			st.Emitted, err = st.RNN.Emit(opts)
		case st.Compiled != nil:
			st.Emitted, err = Emit(st.Compiled, opts)
		default:
			return fmt.Errorf("emit: nothing compiled in pass state")
		}
		return err
	}}
}

// ---- pass-list customisation ----

func (p *Pipeline) find(name string) (*[]Pass, int) {
	for i := range p.compile {
		if p.compile[i].Name == name {
			return &p.compile, i
		}
	}
	for i := range p.emit {
		if p.emit[i].Name == name {
			return &p.emit, i
		}
	}
	return nil, -1
}

func (p *Pipeline) mustFind(name string) (*[]Pass, int) {
	list, i := p.find(name)
	if list == nil {
		panic(fmt.Sprintf("core: pipeline %q has no pass %q (have %v)", p.Name, name, p.PassNames()))
	}
	return list, i
}

// PassNames lists the configured compile and emit passes in order.
func (p *Pipeline) PassNames() []string {
	var names []string
	for _, ps := range p.compile {
		names = append(names, ps.Name)
	}
	for _, ps := range p.emit {
		names = append(names, ps.Name)
	}
	return names
}

// Replace swaps the pass with the given name for a custom one. Panics on
// an unknown name (a compile-time wiring bug in the caller).
func (p *Pipeline) Replace(name string, pass Pass) *Pipeline {
	list, i := p.mustFind(name)
	(*list)[i] = pass
	return p
}

// InsertBefore places a custom pass immediately before the named one.
func (p *Pipeline) InsertBefore(name string, pass Pass) *Pipeline {
	list, i := p.mustFind(name)
	*list = append((*list)[:i], append([]Pass{pass}, (*list)[i:]...)...)
	return p
}

// InsertAfter places a custom pass immediately after the named one.
func (p *Pipeline) InsertAfter(name string, pass Pass) *Pipeline {
	list, i := p.mustFind(name)
	*list = append((*list)[:i+1], append([]Pass{pass}, (*list)[i+1:]...)...)
	return p
}

// Remove deletes the named pass.
func (p *Pipeline) Remove(name string) *Pipeline {
	list, i := p.mustFind(name)
	*list = append((*list)[:i], (*list)[i+1:]...)
	return p
}

// ---- execution ----

// run executes passes against the shared state, recording one diag per
// pass (including failing ones).
func (p *Pipeline) run(passes []Pass) error {
	for _, ps := range passes {
		s0, l0, g0, t0, st0, sr0, tc0 := diagCounts(&p.State)
		start := time.Now()
		err := ps.Run(&p.State)
		d := PassDiag{Pass: ps.Name, Wall: time.Since(start)}
		d.Steps, d.Lookups, d.Groups, d.Tables, d.Stages, d.SRAMBits, d.TCAMBits = diagCounts(&p.State)
		d.DSteps, d.DLookups = d.Steps-s0, d.Lookups-l0
		d.DGroups, d.DTables = d.Groups-g0, d.Tables-t0
		d.DStages = d.Stages - st0
		d.DSRAMBits, d.DTCAMBits = d.SRAMBits-sr0, d.TCAMBits-tc0
		if err != nil {
			d.Err = err.Error()
		}
		p.Diags = append(p.Diags, d)
		if err != nil {
			return fmt.Errorf("core: pipeline %q pass %q: %w", p.Name, ps.Name, err)
		}
	}
	return nil
}

// Compile runs the compile passes over a trained network and calibration
// set, returning the feed-forward tables (nil for RNN pipelines, whose
// artefact is State.RNN).
func (p *Pipeline) Compile(net *nn.Sequential, inDim int, calib [][]float64) (*Compiled, error) {
	p.State = PassState{Model: p.Name, Opts: &p.Opts, Net: net, InDim: inDim, Calib: calib}
	p.Diags = p.Diags[:0]
	if err := p.run(p.compile); err != nil {
		return nil, err
	}
	if p.State.Compiled == nil && p.State.RNN == nil {
		return nil, fmt.Errorf("core: pipeline %q produced no compiled artefact", p.Name)
	}
	return p.State.Compiled, nil
}

// CompileCalib runs the compile passes for pipelines whose lower pass
// does not consume a Sequential (the RNN pipeline, or custom lower
// passes that capture their model).
func (p *Pipeline) CompileCalib(calib [][]float64) error {
	p.State = PassState{Model: p.Name, Opts: &p.Opts, Calib: calib}
	p.Diags = p.Diags[:0]
	return p.run(p.compile)
}

// Refine runs the instrumented refine pass against the current compiled
// state, returning the post-refinement training accuracy.
func (p *Pipeline) Refine(inputs [][]float64, labels []int) (float64, error) {
	p.State.RefineInputs, p.State.RefineLabels = inputs, labels
	if err := p.run([]Pass{RefinePass()}); err != nil {
		return 0, err
	}
	return p.State.RefineAcc, nil
}

// EmitProgram runs the emit passes with the given flow count and returns
// the emitted switch program.
func (p *Pipeline) EmitProgram(flows int) (*Emitted, error) {
	p.State.Flows = flows
	if err := p.run(p.emit); err != nil {
		return nil, err
	}
	return p.State.Emitted, nil
}

// RunPass executes one ad-hoc pass against the current state with full
// instrumentation — the hook model-specific phases (e.g. CNN-L's table
// refinement) use to appear in the diagnostics alongside standard passes.
func (p *Pipeline) RunPass(pass Pass) error {
	return p.run([]Pass{pass})
}

// Diagnostics returns the accumulated per-pass diagnostics.
func (p *Pipeline) Diagnostics() []PassDiag { return p.Diags }

// DiagString renders the diagnostics as an aligned report.
func (p *Pipeline) DiagString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %q passes:\n", p.Name)
	fmt.Fprintf(&b, "  %-16s %10s %6s %7s %6s %6s %6s %12s %12s\n",
		"pass", "wall", "steps", "lookups", "groups", "tables", "stages", "ΔSRAM(b)", "ΔTCAM(b)")
	for _, d := range p.Diags {
		status := ""
		if d.Err != "" {
			status = "  ERR: " + d.Err
		}
		fmt.Fprintf(&b, "  %-16s %10s %6d %7d %6d %6d %6d %12d %12d%s\n",
			d.Pass, d.Wall.Round(time.Microsecond), d.Steps, d.Lookups,
			d.Groups, d.Tables, d.Stages, d.DSRAMBits, d.DTCAMBits, status)
	}
	return b.String()
}
