package core

import (
	"fmt"
	"math"
	"strings"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Emitted is a compiled switch deployment: one or more PISA programs
// (one per pipeline — single-pipe targets emit exactly one; multi-pipe
// targets chain several through bridged PHV fields) plus the handles
// the replay harness needs to feed packets through it.
type Emitted struct {
	// Target names the backend that produced the emission.
	Target string
	// Prog is the first (ingress) pipe.
	Prog *pisa.Program
	// More holds the additional chained pipes of a multi-pipeline
	// emission, in execution order; empty for single-pipe targets.
	More []*pisa.Program
	// Bridges connects consecutive pipes: Bridges[i] carries PHV values
	// from pipe i into pipe i+1 (len(Bridges) == len(More)).
	Bridges []pisa.Bridge
	// InFields are the PHV fields carrying the model input vector, in
	// Prog's layout.
	InFields []pisa.FieldID
	// OutFields carry the final group's outputs, in the last pipe's
	// layout.
	OutFields []pisa.FieldID
	// ClassField carries the argmax result in the last pipe's layout
	// (valid when Argmax was set).
	ClassField pisa.FieldID
	// Stages used, summed across pipes, for reporting.
	Stages int
	// Source is the rendered program text for printing backends (the
	// P4Printer target); empty otherwise.
	Source string
	// Extract describes the per-packet feature-extraction machine when
	// the emission was produced with EmitOptions.Extract: the engine's
	// raw-packet handles (all in Prog's layout — extraction always runs
	// in pipe 0) plus the prelude fields custom window phases build on.
	// Nil for window-replay emissions.
	Extract *Extraction
	// Shared, when set, binds this emission to a physically shared
	// extraction machine: the emission itself is a pure-combinational
	// window classifier (no extraction prelude, no registers) and its
	// InFields consume the machine's fired feature window, delivered by
	// a pisa.Fanout. Emissions carrying the same handle subscribe to the
	// same physical program; the Deployment ledger charges the machine
	// once.
	Shared *SharedExtraction
}

// Programs returns every pipe in execution order.
func (em *Emitted) Programs() []*pisa.Program {
	return append([]*pisa.Program{em.Prog}, em.More...)
}

// Final returns the last pipe — the one holding OutFields/ClassField.
func (em *Emitted) Final() *pisa.Program {
	if len(em.More) > 0 {
		return em.More[len(em.More)-1]
	}
	return em.Prog
}

// Capacity returns the total deployed hardware budget: the per-pipe
// capacity with the stage count summed over all pipes (a two-pipe
// Tofino emission occupies 40 stages of switch silicon).
func (em *Emitted) Capacity() pisa.Capacity {
	c := em.Prog.Cap
	for _, p := range em.More {
		c.Stages += p.Cap.Stages
	}
	return c
}

// Resources aggregates hardware consumption across every pipe. PHVBits
// reports the widest pipe (each pipe owns its own header vector);
// everything else sums or concatenates.
func (em *Emitted) Resources() pisa.Resources {
	res := em.Prog.Resources()
	for _, p := range em.More {
		r := p.Resources()
		res.Stages += r.Stages
		res.SRAMBits += r.SRAMBits
		res.TCAMBits += r.TCAMBits
		res.RegBits += r.RegBits
		res.PerStage = append(res.PerStage, r.PerStage...)
		if r.PHVBits > res.PHVBits {
			res.PHVBits = r.PHVBits
		}
		if r.PeakBusBits > res.PeakBusBits {
			res.PeakBusBits = r.PeakBusBits
		}
	}
	return res
}

// Summary renders the per-pipe resource reports.
func (em *Emitted) Summary() string {
	var b strings.Builder
	if len(em.More) > 0 {
		fmt.Fprintf(&b, "target %q: %d pipes, %d stages total\n", em.Target, 1+len(em.More), em.Stages)
	}
	for _, p := range em.Programs() {
		b.WriteString(p.Summary())
	}
	return b.String()
}

// Validate checks every pipe against its capacity.
func (em *Emitted) Validate() error {
	for _, p := range em.Programs() {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NewEngine returns a batched execution engine over the emitted
// program chain: packets are sharded by flow hash onto a persistent
// pool of workers (≤ 0 selects GOMAXPROCS) and each shard replays its
// packets in order, so per-flow state stays consistent while
// independent flows run concurrently. Each pipe is compiled into a
// zero-allocation execution plan (pisa.CompileProgram); multi-pipeline
// emissions process each packet through every pipe, copying the
// bridged fields between consecutive pipes. Classifications are
// bit-identical to sequential RunSwitch. Call Close when done to stop
// the worker pool.
func (em *Emitted) NewEngine(workers int) *pisa.Engine {
	return em.NewEngineMode(workers, pisa.ExecCompiled)
}

// NewEngineMode is NewEngine with an explicit execution mode:
// pisa.ExecCompiled replays compiled plans (the default),
// pisa.ExecInterpret replays the reference table interpreter — kept
// for differential testing and benchmark baselines.
func (em *Emitted) NewEngineMode(workers int, mode pisa.ExecMode) *pisa.Engine {
	return pisa.NewChainEngineMode(em.Programs(), em.Bridges, em.InFields, em.OutFields, em.ClassField, workers, mode)
}

// NewEngineOn registers an engine for this emission as a session on a
// shared pisa.Scheduler — the multi-model serving path: several
// emissions served concurrently from one fixed worker budget with
// weighted fair draining and per-model stats. name labels the session
// in Scheduler.Stats; weight scales its fair share. Close the engine to
// release the session (the scheduler stays up for its other models).
func (em *Emitted) NewEngineOn(s *pisa.Scheduler, name string, weight int, mode pisa.ExecMode) *pisa.Engine {
	return s.NewChainEngine(name, em.Programs(), em.Bridges, em.InFields, em.OutFields, em.ClassField, weight, mode)
}

// NewPacketEngineOn is NewEngineOn for raw-packet replay over an
// extraction emission (see NewPacketEngine).
func (em *Emitted) NewPacketEngineOn(s *pisa.Scheduler, name string, weight int, mode pisa.ExecMode) *pisa.Engine {
	if em.Extract == nil {
		panic("core: NewPacketEngineOn on an emission without an extraction machine")
	}
	eng := em.NewEngineOn(s, name, weight, mode)
	eng.ConfigurePackets(em.Extract.Meta)
	return eng
}

// NewPacketEngine returns an engine configured for raw-packet replay
// over an extraction emission: RunPackets/RunPacketStream feed packets
// into the extraction machine's PHV handles, every packet updates the
// per-flow registers, and an inference result is collected whenever a
// feature window completes. Panics if the emission has no extraction
// machine (emit with EmitOptions.Extract set).
func (em *Emitted) NewPacketEngine(workers int, mode pisa.ExecMode) *pisa.Engine {
	if em.Extract == nil {
		panic("core: NewPacketEngine on an emission without an extraction machine")
	}
	eng := em.NewEngineMode(workers, mode)
	eng.ConfigurePackets(em.Extract.Meta)
	return eng
}

// RunSwitch pushes one input vector through the emitted pipeline chain
// and returns (class, outputs) — used by integration tests to prove the
// switch pipeline is bit-identical to Compiled.Infer.
func (em *Emitted) RunSwitch(x []int32) (int, []int32) {
	phv := em.Prog.Layout.NewPHV()
	for i, f := range em.InFields {
		phv.Set(f, x[i])
	}
	em.Prog.Process(phv)
	for k, next := range em.More {
		nphv := next.Layout.NewPHV()
		br := &em.Bridges[k]
		for b, from := range br.From {
			nphv.Set(br.To[b], phv.Get(from))
		}
		next.Process(nphv)
		phv = nphv
	}
	outs := make([]int32, len(em.OutFields))
	for i, f := range em.OutFields {
		outs[i] = phv.Get(f)
	}
	return int(phv.Get(em.ClassField)), outs
}

// BatchJobs packs integer input vectors into engine jobs. Hashes are
// assigned round-robin over the batch — appropriate for stateless
// programs where every packet is an independent flow; callers replaying
// real flows should build jobs with the five-tuple hash instead.
func BatchJobs(xs [][]int32) []pisa.Job {
	jobs := make([]pisa.Job, len(xs))
	for i, x := range xs {
		jobs[i] = pisa.Job{Hash: uint32(i), In: x}
	}
	return jobs
}

// BatchJobsFromFloats packs float feature vectors into engine jobs,
// rounding to integers with the same round-to-even policy the host
// inference paths use (Compiled.InferFloats, EvalPegasus) so replay
// harnesses classify exactly the inputs the host side does.
func BatchJobsFromFloats(xs [][]float64) []pisa.Job {
	ints := make([][]int32, len(xs))
	for i, x := range xs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		ints[i] = v
	}
	return BatchJobs(ints)
}

// ---- shared emission scaffolding ----
//
// Both the feed-forward emitter and the RNN emitter build the same
// skeleton by hand: a fresh layout+program with optional flow-state
// registers, an argmax compare-select chain, and a validated Emitted.
// These helpers are that skeleton, shared across targets.

// newEmitProgram allocates a fresh layout and program against cap,
// attaching the per-flow state registers when withFlowState is set (a
// multi-pipe target allocates them only on its first pipe).
func newEmitProgram(name string, cap pisa.Capacity, opts EmitOptions, withFlowState bool) (*pisa.Layout, *pisa.Program, error) {
	layout := &pisa.Layout{}
	prog := pisa.NewProgram(name, layout, cap)
	if withFlowState && opts.FlowStateBits > 0 && opts.Flows > 0 {
		if err := addFlowState(prog, opts.FlowStateBits, opts.Flows); err != nil {
			return nil, nil, err
		}
	}
	return layout, prog, nil
}

// emitArgmax appends the class-selection stage over src: a compare-
// select chain where the later index wins ties, matching the host
// Classify implementations. bestW is the accumulator width of the
// "best" scratch field. It allocates the best/class fields, places the
// table at stage, records ClassField on em and returns the next stage.
func emitArgmax(prog *pisa.Program, layout *pisa.Layout, em *Emitted, src []pisa.FieldID, bestW, stage int) int {
	best := layout.MustAdd("best", bestW)
	em.ClassField = layout.MustAdd("class", 8)
	ops := []pisa.Op{
		{Kind: pisa.OpMove, Dst: best, A: src[0]},
		{Kind: pisa.OpSet, Dst: em.ClassField, Imm: 0},
	}
	for j := 1; j < len(src); j++ {
		ops = append(ops,
			pisa.Op{Kind: pisa.OpSelGE, Dst: em.ClassField, A: src[j], B: best, Imm: int32(j)},
			pisa.Op{Kind: pisa.OpMax, Dst: best, A: best, B: src[j]},
		)
	}
	prog.Place(stage, &pisa.Table{Name: "argmax", Kind: pisa.MatchNone,
		DefaultData: []int32{}, Action: ops})
	return stage + 1
}

func addFlowState(prog *pisa.Program, bitsPerFlow, flows int) error {
	// PISA registers are 8/16/32-bit; allocate 8-bit chunks (the paper's
	// footnote: 4-bit state is padded to 8-bit registers).
	chunks := (bitsPerFlow + 7) / 8
	for i := 0; i < chunks; i++ {
		r, err := pisa.NewRegister(fmt.Sprintf("flow_state%d", i), 8, flows)
		if err != nil {
			return err
		}
		prog.AddRegister(r)
	}
	return nil
}
