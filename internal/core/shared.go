package core

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// This file makes extraction PHYSICALLY shared. The Deployment ledger
// has always charged identical extraction specs once (accounted
// sharing), but every co-resident model still executed its own private
// prelude: N models meant N copies of the per-flow register RMWs on
// every packet. A SharedExtraction is one standalone extraction
// PROGRAM — prelude, trackers and window-fire with the materialised
// feature window as its declared outputs — that co-resident emissions
// bind to instead: the machine executes each packet's register RMWs
// exactly once and fans the fired window out to every subscriber as an
// ordinary stateless job (see pisa.Fanout).

// SharedExtraction is one physical feature-extraction machine: the
// standalone emission that owns the per-flow registers, plus the
// resolved spec co-resident emissions bind against. Emissions carrying
// the same handle in Emitted.Shared are subscribers of the same
// physical program; the Deployment ledger charges the machine once and
// marks the subscribers as physically sharing.
type SharedExtraction struct {
	// Spec is the machine's configuration with Window/Flows resolved to
	// their effective values.
	Spec ExtractSpec
	// Em is the standalone extraction emission: Prog holds the prelude
	// stages and per-flow registers, OutFields the materialised feature
	// window (written on firing packets), ClassField the fire flag.
	// Serve it with Em.NewPacketEngineOn and wrap the engine in a
	// pisa.Fanout to attach subscribers.
	Em *Emitted
}

// EmitSharedExtraction builds the standalone extraction program for
// spec against cap: a fresh single-pipe emission containing ONLY the
// extraction state machine, whose output fields carry the feature
// window a fused emission would have assembled into its model
// in-fields. The window fields use the fused widths (8×16-bit for
// stats, 2·Window×8-bit for seq) so the machine is bit-identical to
// the prelude every private-prelude emission runs — subscribers consume
// the fired window values exactly as their own pipe-0 readout would
// have produced them. flows sizes the per-flow register arrays (0
// defaults to 1024, rounded to a power of two).
//
// Only the stats and seq machines can be shared: the payload machines
// bank directly into model-specific in-fields and are inseparable from
// their classifier.
func EmitSharedExtraction(name string, cap pisa.Capacity, spec ExtractSpec, flows int) (*SharedExtraction, error) {
	var nFields, width int
	switch spec.Kind {
	case ExtractStats:
		nFields, width = 8, 16
	case ExtractSeq:
		nFields, width = 2*spec.window(), 8
	default:
		return nil, fmt.Errorf("core: %s extraction cannot be physically shared (payload windows bank into model-specific in-fields)", spec.Kind)
	}
	layout := &pisa.Layout{}
	prog := pisa.NewProgram(name, layout, cap)
	em := &Emitted{Target: "shared-extraction"}
	for j := 0; j < nFields; j++ {
		f, err := layout.Add(fmt.Sprintf("win%d", j), width)
		if err != nil {
			return nil, err
		}
		em.InFields = append(em.InFields, f)
	}
	stages, err := emitExtraction(prog, layout, em, spec, flows)
	if err != nil {
		return nil, err
	}
	em.Prog = prog
	em.Stages = stages
	// The window fields are the machine's OUTPUTS: every fire hands them
	// to the subscribers. The fire flag doubles as the class field so
	// the packet engine's fire collection works unchanged.
	em.OutFields = em.InFields
	em.ClassField = em.Extract.Meta.Fire
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &SharedExtraction{Spec: em.Extract.Spec, Em: em}, nil
}

// String renders the spec compactly for machine listings.
func (s ExtractSpec) String() string {
	out := fmt.Sprintf("%s w%d f%d", s.Kind, s.window(), s.Flows)
	if s.IdleTimeout > 0 {
		out += fmt.Sprintf(" idle%d", s.IdleTimeout)
	}
	return out
}
