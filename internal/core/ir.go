package core

import (
	"fmt"
	"strings"
)

// Step is one primitive of a Pegasus program. Exactly one of the three
// paper primitives (Table 3), plus MaxReduce — syntactic sugar for the
// iterated pairwise-max Map chain of Table 4's pooling operator, kept as
// a single step because the dataplane implements it with ALU max
// actions rather than table lookups.
type Step interface {
	// Apply transforms the segment bundle at full precision.
	Apply(bundle [][]float64) [][]float64
	// String renders the step for diagnostics.
	String() string
}

// Partition flattens the incoming bundle and regroups it into segments
// by index groups (indices refer to the flattened vector).
type Partition struct {
	Groups [][]int
}

// Apply implements Step.
func (p *Partition) Apply(bundle [][]float64) [][]float64 {
	flat := flatten(bundle)
	out := make([][]float64, len(p.Groups))
	for i, g := range p.Groups {
		seg := make([]float64, len(g))
		for k, idx := range g {
			seg[k] = flat[idx]
		}
		out[i] = seg
	}
	return out
}

func (p *Partition) String() string {
	return fmt.Sprintf("Partition(%d groups)", len(p.Groups))
}

// Map applies Fns[i] to segment i.
type Map struct {
	Fns []Fn
}

// Apply implements Step.
func (m *Map) Apply(bundle [][]float64) [][]float64 {
	if len(bundle) != len(m.Fns) {
		panic(fmt.Sprintf("core: Map over %d segments with %d fns", len(bundle), len(m.Fns)))
	}
	out := make([][]float64, len(bundle))
	for i, seg := range bundle {
		out[i] = m.Fns[i].Eval(seg)
	}
	return out
}

func (m *Map) String() string {
	names := make([]string, len(m.Fns))
	for i, f := range m.Fns {
		names[i] = f.Name()
	}
	return "Map[" + strings.Join(names, ", ") + "]"
}

// SumReduce element-wise sums all segments into one.
type SumReduce struct{}

// Apply implements Step.
func (SumReduce) Apply(bundle [][]float64) [][]float64 {
	if len(bundle) == 0 {
		panic("core: SumReduce of empty bundle")
	}
	acc := append([]float64(nil), bundle[0]...)
	for _, seg := range bundle[1:] {
		if len(seg) != len(acc) {
			panic(fmt.Sprintf("core: SumReduce segment dim %d != %d", len(seg), len(acc)))
		}
		for j, v := range seg {
			acc[j] += v
		}
	}
	return [][]float64{acc}
}

func (SumReduce) String() string { return "SumReduce" }

// MaxReduce element-wise maximises across segments (pooling sugar).
type MaxReduce struct{}

// Apply implements Step.
func (MaxReduce) Apply(bundle [][]float64) [][]float64 {
	if len(bundle) == 0 {
		panic("core: MaxReduce of empty bundle")
	}
	acc := append([]float64(nil), bundle[0]...)
	for _, seg := range bundle[1:] {
		if len(seg) != len(acc) {
			panic(fmt.Sprintf("core: MaxReduce segment dim %d != %d", len(seg), len(acc)))
		}
		for j, v := range seg {
			if v > acc[j] {
				acc[j] = v
			}
		}
	}
	return [][]float64{acc}
}

func (MaxReduce) String() string { return "MaxReduce" }

// Program is a sequence of primitive steps over an InDim-wide input.
type Program struct {
	Name  string
	InDim int
	Steps []Step
}

// Eval runs the program at full precision on one input vector.
func (p *Program) Eval(x []float64) []float64 {
	if len(x) != p.InDim {
		panic(fmt.Sprintf("core: program %q input %d, want %d", p.Name, len(x), p.InDim))
	}
	bundle := [][]float64{append([]float64(nil), x...)}
	for _, s := range p.Steps {
		bundle = s.Apply(bundle)
	}
	return flatten(bundle)
}

// OutDim computes the output width by shape propagation on a zero
// vector.
func (p *Program) OutDim() int { return len(p.Eval(make([]float64, p.InDim))) }

// Lookups counts the table lookups the program performs: one per Map
// segment whose function is not ALU-implementable. Reductions are ALU
// work, not lookups. This is the quantity Primitive Fusion minimises
// (Figure 5's "seven table lookups into just two").
func (p *Program) Lookups() int {
	n := 0
	for _, s := range p.Steps {
		if m, ok := s.(*Map); ok {
			n += len(m.Fns)
		}
	}
	return n
}

// String renders the full step sequence.
func (p *Program) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return fmt.Sprintf("%s: %s", p.Name, strings.Join(parts, " → "))
}

// Validate shape-checks the program on a zero vector, returning an error
// instead of panicking.
func (p *Program) Validate() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: program %q invalid: %v", p.Name, r)
		}
	}()
	p.Eval(make([]float64, p.InDim))
	return nil
}

func flatten(bundle [][]float64) []float64 {
	n := 0
	for _, s := range bundle {
		n += len(s)
	}
	out := make([]float64, 0, n)
	for _, s := range bundle {
		out = append(out, s...)
	}
	return out
}

// SeqGroups builds contiguous index groups of segDim covering n inputs
// (the common Partition pattern "dim = k, stride = k" of the Pegasus
// Syntax). n must be divisible by segDim.
func SeqGroups(n, segDim int) ([][]int, error) {
	if segDim <= 0 || n%segDim != 0 {
		return nil, fmt.Errorf("core: cannot partition %d inputs into segments of %d", n, segDim)
	}
	var groups [][]int
	for start := 0; start < n; start += segDim {
		g := make([]int, segDim)
		for i := range g {
			g[i] = start + i
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// WindowGroups builds sliding-window index groups over a T×C flattened
// sequence: one group per convolution position (window k, given stride),
// matching how Partition feeds Conv operators.
func WindowGroups(t, c, k, stride int) ([][]int, error) {
	if k <= 0 || stride <= 0 || (t-k)/stride+1 <= 0 {
		return nil, fmt.Errorf("core: bad window T=%d k=%d stride=%d", t, k, stride)
	}
	var groups [][]int
	for pos := 0; pos+k <= t; pos += stride {
		g := make([]int, 0, k*c)
		for dt := 0; dt < k; dt++ {
			for ch := 0; ch < c; ch++ {
				g = append(g, (pos+dt)*c+ch)
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}
