package core

import (
	"fmt"
	"math"

	"github.com/pegasus-idp/pegasus/internal/fixed"
	"github.com/pegasus-idp/pegasus/internal/fuzzy"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// RNNs cannot be lowered through the feed-forward pipeline: each time
// step depends on the previous hidden state. Pegasus exploits fuzzy
// matching's "flow scalability" property (§4.2) instead: the hidden
// state is never materialised on the switch — only its fuzzy index is.
// Each time step becomes two lookups:
//
//	(len_t, ipd_t)           --TCAM-->  x-index   (input clustering tree)
//	(x-index, h-index_{t-1}) --SRAM-->  h-index_t (precomputed transition)
//
// and the final step's h-index keys a logits table. The transition
// table is precomputed at full precision: h' = tanh(Wx·e(x̂) + Wh·ĥ + b)
// evaluated on the centroids, then re-assigned to the hidden tree. This
// is the windowed BoS-style design the paper's RNN-B builds on, with
// fuzzy indices replacing BoS's exhaustive bit-string enumeration.

// RNNSpec describes a trained windowed RNN classifier to compile.
type RNNSpec struct {
	// T is the window length (time steps); StepDims the features per
	// step (2: length bucket, IPD bucket).
	T, StepDims int
	// Emb embeds each of the T×StepDims discrete features (shared table).
	Emb *nn.Embedding
	// Cell is the recurrent cell trained over embedded steps.
	Cell *nn.RNN
	// Out maps the final hidden state to class logits.
	Out *nn.Linear
	// InputDepth/HiddenDepth are the clustering-tree depths for the
	// per-step input tree and the hidden-state tree.
	InputDepth, HiddenDepth int
	// OutBits is the logits quantisation width.
	OutBits uint8
}

// CompiledRNN is the dataplane form of a windowed RNN.
type CompiledRNN struct {
	Name        string
	T, StepDims int
	XTree       *fuzzy.Tree
	HTree       *fuzzy.Tree
	HInit       int     // fuzzy index of the all-zero initial hidden state
	Trans       [][]int // [xIdx][hIdx] → next hIdx
	Logits      [][]int32
	OutFrac     int8
	OutBits     uint8
}

// CompileRNN builds the chained-index tables from calibration windows
// (integer features, row layout = T × StepDims). It is the monolithic
// form of the two RNN pipeline passes (rnnLower + rnnBuildTables); model
// code compiles through NewRNNPipeline instead.
func CompileRNN(name string, spec RNNSpec, calib [][]float64) (*CompiledRNN, error) {
	c, err := rnnLower(name, &spec, calib)
	if err != nil {
		return nil, err
	}
	if err := rnnBuildTables(c, spec); err != nil {
		return nil, err
	}
	return c, nil
}

// rnnLower is the RNN pipeline's "lower" stage: validate the spec,
// trace full-precision hidden trajectories over the calibration windows,
// and learn the input/hidden clustering trees. spec is taken by pointer
// so its filled defaults carry into the build-tables stage.
func rnnLower(name string, spec *RNNSpec, calib [][]float64) (*CompiledRNN, error) {
	if spec.T <= 0 || spec.StepDims <= 0 {
		return nil, fmt.Errorf("core: bad RNN spec T=%d StepDims=%d", spec.T, spec.StepDims)
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("core: no calibration windows")
	}
	if spec.InputDepth == 0 {
		spec.InputDepth = 5
	}
	if spec.HiddenDepth == 0 {
		spec.HiddenDepth = 6
	}
	if spec.OutBits == 0 {
		spec.OutBits = 8
	}
	want := spec.T * spec.StepDims
	for i, w := range calib {
		if len(w) != want {
			return nil, fmt.Errorf("core: calibration window %d has %d features, want %d", i, len(w), want)
		}
	}

	// Gather per-step inputs and full-precision hidden trajectories.
	var stepInputs [][]float64
	var hiddens [][]float64
	for _, w := range calib {
		h := make([]float64, spec.Cell.Hidden)
		for t := 0; t < spec.T; t++ {
			step := w[t*spec.StepDims : (t+1)*spec.StepDims]
			stepInputs = append(stepInputs, append([]float64(nil), step...))
			h = rnnStep(*spec, step, h)
			hiddens = append(hiddens, append([]float64(nil), h...))
		}
	}
	hiddens = append(hiddens, make([]float64, spec.Cell.Hidden)) // ensure h₀ region exists

	xTree, err := fuzzy.BuildDepth(stepInputs, spec.InputDepth)
	if err != nil {
		return nil, fmt.Errorf("core: input tree: %v", err)
	}
	hTree, err := fuzzy.BuildDepth(hiddens, spec.HiddenDepth)
	if err != nil {
		return nil, fmt.Errorf("core: hidden tree: %v", err)
	}

	return &CompiledRNN{
		Name: name, T: spec.T, StepDims: spec.StepDims,
		XTree: xTree, HTree: hTree,
		HInit:   hTree.Assign(make([]float64, spec.Cell.Hidden)),
		OutBits: spec.OutBits,
	}, nil
}

// rnnBuildTables is the RNN pipeline's "build-tables" stage: precompute
// the (x̂, ĥ) → ĥ' transition table and the quantised logits table over
// hidden centroids.
func rnnBuildTables(c *CompiledRNN, spec RNNSpec) error {
	if c == nil {
		return fmt.Errorf("core: rnn build-tables before lower")
	}
	nx, nh := c.XTree.NumLeaves(), c.HTree.NumLeaves()
	c.Trans = make([][]int, nx)
	for xi := 0; xi < nx; xi++ {
		c.Trans[xi] = make([]int, nh)
		xc := c.XTree.Centroid(xi)
		for hi := 0; hi < nh; hi++ {
			next := rnnStep(spec, xc, c.HTree.Centroid(hi))
			c.Trans[xi][hi] = c.HTree.Assign(next)
		}
	}

	outAff := &AffineFn{W: spec.Out.Weight.W, B: spec.Out.Bias.W.D}
	var all []float64
	raw := make([][]float64, nh)
	for hi := 0; hi < nh; hi++ {
		y := outAff.Eval(c.HTree.Centroid(hi))
		raw[hi] = y
		all = append(all, y...)
	}
	q, err := fixed.Fit(spec.OutBits, all)
	if err != nil {
		return err
	}
	c.OutFrac = q.Frac
	c.Logits = make([][]int32, nh)
	for hi := 0; hi < nh; hi++ {
		c.Logits[hi] = q.QuantizeVec(raw[hi], nil)
	}
	return nil
}

// rnnStep runs one full-precision cell step on raw integer features.
func rnnStep(spec RNNSpec, step []float64, h []float64) []float64 {
	// Embed each discrete feature.
	e := make([]float64, 0, spec.StepDims*spec.Emb.Dim)
	for _, v := range step {
		idx := spec.Emb.Lookup(v)
		e = append(e, spec.Emb.Table.W.Row(idx)...)
	}
	hm := tensor.Vec(h)
	em := tensor.Vec(e)
	pre := tensor.MatMulT(nil, em, spec.Cell.Wx.W)
	pre.Add(tensor.MatMulT(nil, hm, spec.Cell.Wh.W))
	pre.AddRowVec(spec.Cell.Bias.W)
	out := pre.Apply(math.Tanh)
	return append([]float64(nil), out.Row(0)...)
}

// Infer returns the quantised logits for one window of integer features.
func (c *CompiledRNN) Infer(x []int32) []int32 {
	h := c.HInit
	step := make([]float64, c.StepDims)
	for t := 0; t < c.T; t++ {
		for d := 0; d < c.StepDims; d++ {
			step[d] = float64(x[t*c.StepDims+d])
		}
		xi := c.XTree.Assign(step)
		h = c.Trans[xi][h]
	}
	return c.Logits[h]
}

// Classify returns the argmax class (later index wins ties, matching
// the switch compare-select chain).
func (c *CompiledRNN) Classify(x []int32) int {
	out := c.Infer(x)
	best, bi := out[0], 0
	for i, v := range out[1:] {
		if v >= best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Lookups returns table lookups per window: 2 per time step plus the
// logits table.
func (c *CompiledRNN) Lookups() int { return 2*c.T + 1 }

// Emit lowers the RNN onto the selected target's PISA pipeline(s): two
// stages per time step (TCAM input tree + SRAM transition) chained
// through one hidden-index field, then the logits table and argmax. For
// T=8 this occupies 18 of Tofino 2's 20 stages — the sequential-
// execution pressure the paper describes for RNNs on the switch (and
// why the multi-pipe target splits RNNs at a time-step boundary).
func (c *CompiledRNN) Emit(opts EmitOptions) (*Emitted, error) {
	return resolveTarget(opts.Target).EmitRNN(c, opts)
}

// rnnPipe is one emitted pipe of a (possibly split) RNN program, with
// the handles multi-pipe assembly needs: the hidden-index field and the
// bridge-source fields (h plus the in-fields of unconsumed steps) the
// next pipe must receive.
type rnnPipe struct {
	em    *Emitted
	hF    pisa.FieldID
	carry []pisa.FieldID
}

// emitRNNRange lowers time steps [t0, t1) onto one PISA program. The
// layout allocates in-fields for every step ≥ t0 — later pipes receive
// the unconsumed tail over the bridge, exactly as the real hardware
// carries packet headers from ingress to egress. Pipe 0 initialises the
// hidden index to h₀; later pipes receive it over the bridge. The last
// pipe appends the logits table and argmax chain.
func emitRNNRange(c *CompiledRNN, cap pisa.Capacity, opts EmitOptions, t0, t1 int, last bool) (*rnnPipe, error) {
	layout, prog, err := newEmitProgram(c.Name, cap, opts, t0 == 0 && opts.Extract == nil)
	if err != nil {
		return nil, err
	}
	em := &Emitted{}
	for t := t0; t < c.T; t++ {
		for d := 0; d < c.StepDims; d++ {
			em.InFields = append(em.InFields, layout.MustAdd(fmt.Sprintf("in%d_%d", t, d), 8))
		}
	}
	var xiF pisa.FieldID
	if t1 > t0 {
		xiF = layout.MustAdd("xi", 8)
	}
	hF := layout.MustAdd("h", 8)
	nClasses := len(c.Logits[0])
	var outF []pisa.FieldID
	if last {
		outF = make([]pisa.FieldID, nClasses)
		for j := range outF {
			outF[j] = layout.MustAdd(fmt.Sprintf("logit%d", j), int(c.Cfg().AccBits))
		}
		em.OutFields = outF
	}

	// The input-tree TCAM rules are only needed by pipes that execute
	// steps (an argmax/logits spill pipe has t0 == t1).
	var rules []fuzzy.TernaryRule
	if t1 > t0 {
		var err error
		rules, err = c.XTree.TernaryRules(8, true)
		if err != nil {
			return nil, err
		}
	}
	xiBits := idxBits(c.XTree.NumLeaves())
	hBits := idxBits(c.HTree.NumLeaves())

	stage := 0
	if t0 == 0 {
		// Initialise h to the h₀ index.
		prog.Place(0, &pisa.Table{Name: "h_init", Kind: pisa.MatchNone, DefaultData: []int32{},
			Action: []pisa.Op{{Kind: pisa.OpSet, Dst: hF, Imm: int32(c.HInit)}}})
		stage = 1
		if opts.Extract != nil {
			// The sequence machine banks len/IPD buckets per packet and
			// restores the whole window into the step in-fields on the
			// firing packet; h-init shares stage 0 with its prelude.
			if opts.Extract.Kind != ExtractSeq {
				return nil, fmt.Errorf("core: RNN emission supports only the seq extraction machine, got %s", opts.Extract.Kind)
			}
			stage, err = emitExtraction(prog, layout, em, *opts.Extract, opts.Flows)
			if err != nil {
				return nil, err
			}
		}
	}
	for t := t0; t < t1; t++ {
		// TCAM: per-step input tree.
		entries := make([]pisa.Entry, len(rules))
		for ri, r := range rules {
			entries[ri] = pisa.Entry{
				Key:  append([]uint32(nil), r.Val...),
				Mask: append([]uint32(nil), r.Mask...),
				Data: []int32{int32(r.Leaf)},
			}
		}
		kf := make([]pisa.FieldID, c.StepDims)
		kw := make([]int, c.StepDims)
		for d := 0; d < c.StepDims; d++ {
			kf[d] = em.InFields[(t-t0)*c.StepDims+d]
			kw[d] = 8
		}
		prog.Place(stage, &pisa.Table{
			Name: fmt.Sprintf("t%d_input", t), Kind: pisa.MatchTernary,
			KeyFields: kf, KeyWidths: kw, Entries: entries,
			Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: xiF, DataIdx: 0}},
			DataWidthBits: xiBits,
		})
		stage++
		// SRAM: transition (xi, h) → h'.
		var tEntries []pisa.Entry
		for xi := range c.Trans {
			for hi, nh := range c.Trans[xi] {
				tEntries = append(tEntries, pisa.Entry{
					Key:  []uint32{uint32(xi), uint32(hi)},
					Data: []int32{int32(nh)},
				})
			}
		}
		prog.Place(stage, &pisa.Table{
			Name: fmt.Sprintf("t%d_trans", t), Kind: pisa.MatchExact,
			KeyFields: []pisa.FieldID{xiF, hF}, KeyWidths: []int{xiBits, hBits},
			Entries:       tEntries,
			Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: hF, DataIdx: 0}},
			DataWidthBits: hBits,
		})
		stage++
	}
	if last {
		// Logits table.
		lEntries := make([]pisa.Entry, len(c.Logits))
		lOps := make([]pisa.Op, nClasses)
		for j := 0; j < nClasses; j++ {
			lOps[j] = pisa.Op{Kind: pisa.OpSetData, Dst: outF[j], DataIdx: j}
		}
		for hi, row := range c.Logits {
			lEntries[hi] = pisa.Entry{Key: []uint32{uint32(hi)}, Data: append([]int32(nil), row...)}
		}
		prog.Place(stage, &pisa.Table{
			Name: "logits", Kind: pisa.MatchExact,
			KeyFields: []pisa.FieldID{hF}, KeyWidths: []int{hBits},
			Entries: lEntries, Action: lOps,
			DataWidthBits: nClasses * int(c.OutBits),
		})
		stage++
		stage = emitArgmax(prog, layout, em, outF, 16, stage)
	}

	em.Prog = prog
	em.Stages = stage
	// Bridge sources for the next pipe: the hidden index plus the
	// in-fields of every step the next pipe (and its successors) still
	// has to consume.
	carry := []pisa.FieldID{hF}
	carry = append(carry, em.InFields[(t1-t0)*c.StepDims:]...)
	return &rnnPipe{em: em, hF: hF, carry: carry}, nil
}

// Cfg returns a default accumulator configuration for emission.
func (c *CompiledRNN) Cfg() CompileConfig {
	cfg := CompileConfig{}
	cfg.defaults()
	return cfg
}
