package core

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// trainToyRNN builds a small windowed RNN classifier over T×2 integer
// feature windows where class k has step values clustered around
// distinct centres.
func trainToyRNN(t *testing.T, rng *rand.Rand, T, classes int) (RNNSpec, *tensor.Mat, []int) {
	t.Helper()
	const stepDims = 2
	emb := nn.NewEmbedding(64, 3, T*stepDims, rng)
	cell := nn.NewRNN(T, stepDims*3, 8, rng)
	out := nn.NewLinear(8, classes, rng)
	net := nn.NewSequential(emb, cell, out)

	n := 400
	xs := tensor.New(n, T*stepDims)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		row := xs.Row(i)
		for st := 0; st < T; st++ {
			row[st*stepDims] = float64(8 + 16*cls + rng.Intn(8))
			row[st*stepDims+1] = float64(4 + 12*cls + rng.Intn(6))
		}
	}
	nn.Fit(net, xs, nn.ClassTargets(labels), nn.SoftmaxCrossEntropy{}, nn.NewAdam(0.01),
		nn.TrainConfig{Epochs: 40, BatchSize: 32, Seed: 2})
	if acc := nn.Accuracy(net, xs, labels); acc < 0.9 {
		t.Fatalf("toy RNN failed to train: %g", acc)
	}
	return RNNSpec{T: T, StepDims: stepDims, Emb: emb, Cell: cell, Out: out,
		InputDepth: 5, HiddenDepth: 7}, xs, labels
}

func TestCompileRNNAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	spec, xs, labels := trainToyRNN(t, rng, 6, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	c, err := CompileRNN("rnn", spec, calib)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i := range calib {
		x := make([]int32, len(calib[i]))
		for j, f := range calib[i] {
			x[j] = int32(f)
		}
		if c.Classify(x) == labels[i] {
			hit++
		}
	}
	acc := float64(hit) / float64(len(calib))
	if acc < 0.85 {
		t.Fatalf("compiled RNN accuracy %g, want >= 0.85", acc)
	}
	if c.Lookups() != 2*6+1 {
		t.Fatalf("Lookups = %d", c.Lookups())
	}
}

func TestCompileRNNValidation(t *testing.T) {
	if _, err := CompileRNN("bad", RNNSpec{}, nil); err == nil {
		t.Fatal("want error for empty spec")
	}
	rng := rand.New(rand.NewSource(31))
	spec := RNNSpec{T: 2, StepDims: 2,
		Emb:  nn.NewEmbedding(8, 2, 4, rng),
		Cell: nn.NewRNN(2, 4, 4, rng),
		Out:  nn.NewLinear(4, 2, rng)}
	if _, err := CompileRNN("bad", spec, [][]float64{{1, 2}}); err == nil {
		t.Fatal("want error for wrong window width")
	}
}

func TestRNNSwitchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	spec, xs, _ := trainToyRNN(t, rng, 6, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	c, err := CompileRNN("rnn", spec, calib)
	if err != nil {
		t.Fatal(err)
	}
	em, err := c.Emit(EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		x := make([]int32, 12)
		for j := range x {
			x[j] = int32(rng.Intn(64))
		}
		swClass, swOut := em.RunSwitch(x)
		hostOut := c.Infer(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("trial %d: logits[%d] switch %d host %d", trial, j, swOut[j], hostOut[j])
			}
		}
		if swClass != c.Classify(x) {
			t.Fatalf("trial %d: class switch %d host %d", trial, swClass, c.Classify(x))
		}
	}
}

func TestRNNEmitStageBudget(t *testing.T) {
	// T=8 must occupy 2T+3 = 19 stages ≤ 20 (the paper's sequential
	// pressure), and T=10 must overflow Tofino 2.
	rng := rand.New(rand.NewSource(33))
	const stepDims = 2
	build := func(T int) error {
		emb := nn.NewEmbedding(64, 2, T*stepDims, rng)
		cell := nn.NewRNN(T, stepDims*2, 4, rng)
		out := nn.NewLinear(4, 2, rng)
		spec := RNNSpec{T: T, StepDims: stepDims, Emb: emb, Cell: cell, Out: out,
			InputDepth: 3, HiddenDepth: 3}
		calib := make([][]float64, 64)
		for i := range calib {
			w := make([]float64, T*stepDims)
			for j := range w {
				w[j] = float64(rng.Intn(64))
			}
			calib[i] = w
		}
		c, err := CompileRNN("rnn", spec, calib)
		if err != nil {
			return err
		}
		_, err = c.Emit(EmitOptions{})
		return err
	}
	if err := build(8); err != nil {
		t.Fatalf("T=8 should fit: %v", err)
	}
	if err := build(10); err == nil {
		t.Fatal("T=10 should overflow the 20-stage pipeline")
	}
}

func TestRefineClassifierImprovesNAM(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	inner := nn.NewSequential(nn.NewLinear(4, 8, rng), nn.NewActivation(nn.Tanh), nn.NewLinear(8, 3, rng))
	net := nn.NewSequential(nn.NewSegmentsAsBatch(4, 4, inner), nn.NewSumSegments(4, 3))
	// Weak training on a separable task so refinement has headroom.
	n := 500
	xs := tensor.New(n, 16)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		labels[i] = cls
		row := xs.Row(i)
		for j := range row {
			row[j] = float64(10 + 20*cls + rng.Intn(14))
		}
	}
	nn.Fit(net, xs, nn.ClassTargets(labels), nn.SoftmaxCrossEntropy{}, nn.NewAdam(0.01),
		nn.TrainConfig{Epochs: 3, BatchSize: 32, Seed: 3})
	prog, err := Lower("nam", net, 16, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	calib := make([][]float64, n)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(Fuse(prog), calib, CompileConfig{TreeDepth: 4, InBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	accBefore := classifyAcc(comp, calib, labels)
	accAfter, err := RefineClassifier(comp, calib, labels, RefineConfig{Epochs: 12, LR: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if accAfter < accBefore-0.02 {
		t.Fatalf("refinement hurt accuracy: %g → %g", accBefore, accAfter)
	}
	if accAfter < 0.8 {
		t.Fatalf("refined accuracy %g too low", accAfter)
	}
}

func classifyAcc(c *Compiled, xs [][]float64, labels []int) float64 {
	hit := 0
	for i, x := range xs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(f)
		}
		if c.Classify(v) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(xs))
}
