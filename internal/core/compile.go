package core

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/fuzzy"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// EmitOptions controls PISA emission.
type EmitOptions struct {
	// Target selects the emission backend (nil = DefaultTarget, the
	// single-pipeline Tofino 2). See target.go for the registry.
	Target Target
	// Argmax appends the class-selection ALU stage over the final
	// outputs (classifiers set this; the AutoEncoder computes MAE
	// instead).
	Argmax bool
	// FlowStateBits/Flows allocate per-flow register state for resource
	// accounting (feature extraction state; see models package for the
	// per-model footprints of Table 6). When Extract is nil the
	// registers are sized but never touched by the program.
	FlowStateBits int
	Flows         int
	// Extract, when set, replaces the accounting-only registers with an
	// executable feature-extraction state machine prepended to pipe 0:
	// the emitted program consumes raw packets (hash + per-packet
	// fields), updates its flow-state registers once per packet, and
	// assembles the model input vector itself on window boundaries.
	// See ExtractSpec and Emitted.Extract.
	Extract *ExtractSpec
	// Gate, when set, appends the §7.4 reconstruction-error gate: the
	// KeepGroup's output is preserved as the reconstruction target and
	// a final stage computes the shift-aligned |target − output| sum,
	// raising the anomaly flag when it reaches the threshold. The
	// emission's outputs become [anom, score, window...] with the flag
	// as its class field. Mutually exclusive with Argmax; the gated
	// program must fit one pipe (the keep copy cannot cross a
	// multi-pipe bridge).
	Gate *GateSpec
}

// Emit lowers the compiled tables onto the selected target's PISA
// pipeline(s), reproducing the MAT correspondence of Figure 4: each
// fuzzy segment becomes one TCAM range table (Partition + fuzzy index
// retrieval) and one SRAM mapping table (Map), with SumReduce/MaxReduce
// as pairwise ALU reduction stages and the final classification as a
// compare-select chain.
func Emit(c *Compiled, opts EmitOptions) (*Emitted, error) {
	return resolveTarget(opts.Target).EmitCompiled(c, opts)
}

// emitFF lowers exec groups [lo, hi) onto one PISA program against cap.
// For lo == 0 the program's inputs are the model in-fields at the input
// key width (and the per-flow state registers are attached); for later
// pipes of a multi-pipeline split the inputs are bridge fields at the
// activation width, carrying boundary lo's vector from the previous
// pipe. When hi reaches the last group and argmax is set, the class-
// selection stage is appended (multi-pipe targets may spill it onto an
// argmax-only pipe with lo == hi == len(Groups)). It returns the
// per-group stage spans (stages consumed by each group in the range,
// position independent) so multi-pipe targets can plan split points,
// and validates the program only when validate is set — planning
// dry-runs intentionally overflow the stage budget.
func emitFF(c *Compiled, cap pisa.Capacity, opts EmitOptions, lo, hi int, argmax, validate bool) (*Emitted, []int, error) {
	layout, prog, err := newEmitProgram(c.Name, cap, opts, lo == 0 && opts.Extract == nil)
	if err != nil {
		return nil, nil, err
	}
	em := &Emitted{}

	// Boundary pools (ping-pong) sized to the widest INTER-group vector
	// produced within the range (the input boundary lives in the
	// dedicated in-fields). Activations crossing boundaries are
	// renormalised to ActBits, so the pools use that width.
	accW := int(c.Cfg.AccBits)
	actW := int(c.Cfg.ActBits)
	boundaryWidths := []int{c.InDim}
	for _, g := range c.Groups {
		boundaryWidths = append(boundaryWidths, groupOutWidth(&g))
	}
	maxBoundary := 0
	for _, w := range boundaryWidths[lo+1 : hi+1] {
		if w > maxBoundary {
			maxBoundary = w
		}
	}
	if lo == 0 {
		// Input fields (first boundary) at the input key width.
		inW := int(c.Cfg.InBits)
		for j := 0; j < c.InDim; j++ {
			f, err := layout.Add(fmt.Sprintf("in%d", j), inW)
			if err != nil {
				return nil, nil, err
			}
			em.InFields = append(em.InFields, f)
		}
	} else {
		// Bridge fields carrying boundary lo's activation vector.
		for j := 0; j < boundaryWidths[lo]; j++ {
			em.InFields = append(em.InFields, layout.MustAdd(fmt.Sprintf("br%d", j), actW))
		}
	}
	valA := make([]pisa.FieldID, maxBoundary)
	valB := make([]pisa.FieldID, maxBoundary)
	for j := 0; j < maxBoundary; j++ {
		valA[j] = layout.MustAdd(fmt.Sprintf("valA%d", j), actW)
		valB[j] = layout.MustAdd(fmt.Sprintf("valB%d", j), actW)
	}
	// Scratch pools: interval codes (two-level CRC), fuzzy indices,
	// reduce temporaries. No key scratch is needed: the signed→unsigned
	// offset is folded into the TCAM rule values (FlipTop), so every
	// range table keys directly on the source fields.
	maxCodes, maxIdx, maxTmp := 0, 0, 0
	for _, g := range c.Groups[lo:hi] {
		keys, idxs, tmp := 0, 0, 0
		for _, s := range g.Segs {
			if s.Mode == SegFuzzy {
				keys += len(s.Cols)
				idxs++
			}
			tmp += s.OutDim
		}
		if g.Reduce == ReduceNone {
			tmp = 0 // written straight to the boundary
		}
		maxCodes = maxInt(maxCodes, keys)
		maxIdx = maxInt(maxIdx, idxs)
		maxTmp = maxInt(maxTmp, tmp)
	}
	codeF := make([]pisa.FieldID, maxCodes)
	for j := range codeF {
		codeF[j] = layout.MustAdd(fmt.Sprintf("code%d", j), 8)
	}
	idxF := make([]pisa.FieldID, maxIdx)
	for j := range idxF {
		idxF[j] = layout.MustAdd(fmt.Sprintf("fidx%d", j), 8)
	}
	tmpF := make([]pisa.FieldID, maxTmp)
	for j := range tmpF {
		tmpF[j] = layout.MustAdd(fmt.Sprintf("tmp%d", j), accW)
	}

	var keepF []pisa.FieldID
	if opts.Gate != nil {
		if lo != 0 || hi != len(c.Groups) {
			return nil, nil, fmt.Errorf("core: gate emission cannot span a multi-pipe split")
		}
		if argmax {
			return nil, nil, fmt.Errorf("core: gate emission and argmax are mutually exclusive")
		}
		kg := opts.Gate.KeepGroup
		if kg < 0 || kg >= len(c.Groups)-1 {
			return nil, nil, fmt.Errorf("core: gate keep group %d out of range [0,%d)", kg, len(c.Groups)-1)
		}
		if kw, ow := boundaryWidths[kg+1], boundaryWidths[len(c.Groups)]; kw != ow {
			return nil, nil, fmt.Errorf("core: gate keep group width %d != output width %d (the gate compares a reconstruction against its target)", kw, ow)
		}
		keepF = make([]pisa.FieldID, boundaryWidths[kg+1])
		for j := range keepF {
			keepF[j] = layout.MustAdd(fmt.Sprintf("keep%d", j), actW)
		}
	}

	stage := 0
	if lo == 0 && opts.Extract != nil {
		// Prepend the executable feature-extraction machine: it writes
		// the in-fields on window boundaries, so the group tables below
		// read extracted state instead of engine-fed vectors.
		stage, err = emitExtraction(prog, layout, em, *opts.Extract, opts.Flows)
		if err != nil {
			return nil, nil, err
		}
	}
	var spans []int
	src := em.InFields // current boundary fields
	dstPool := valA
	for gi := lo; gi < hi; gi++ {
		g := &c.Groups[gi]
		dst := dstPool[:boundaryWidths[gi+1]]
		before := stage
		stage, err = emitGroup(prog, c, gi, g, src, dst, codeF, idxF, tmpF, stage)
		if err != nil {
			return nil, nil, err
		}
		spans = append(spans, stage-before)
		src = dst
		if opts.Gate != nil && gi == opts.Gate.KeepGroup {
			// Preserve the reconstruction target before the boundary
			// pools recycle it; the copy shares the next group's first
			// stage, so it costs none.
			emitGateKeep(prog, keepF, src, stage)
		}
		if &dstPool[0] == &valA[0] {
			dstPool = valB
		} else {
			dstPool = valA
		}
	}
	em.OutFields = src
	if hi == len(c.Groups) && argmax {
		stage = emitArgmax(prog, layout, em, src, accW, stage)
	}
	if opts.Gate != nil {
		stage = emitGateStage(prog, layout, c, em, opts.Gate, keepF, stage)
	}
	em.Prog = prog
	em.Stages = stage
	if validate {
		if err := prog.Validate(); err != nil {
			return nil, nil, err
		}
	}
	return em, spans, nil
}

func groupOutWidth(g *ExecGroup) int {
	n := 0
	for _, s := range g.Segs {
		n += s.OutDim
	}
	if g.Reduce != ReduceNone && len(g.Segs) > 0 {
		return g.Segs[0].OutDim
	}
	return n
}

// emitGroup lowers one exec group starting at the given stage, returning
// the next free stage. Fuzzy segments with more than two dimensions use
// the two-level CRC encoding (per-dimension code tables + a combo
// table); narrow segments use the direct priority range encoding.
func emitGroup(prog *pisa.Program, c *Compiled, gi int, g *ExecGroup,
	src, dst, codeF, idxF, tmpF []pisa.FieldID, stage int) (int, error) {

	var offset int32
	if g.SignedIn {
		offset = int32(1) << (g.KeyBits - 1)
	}
	ki := 0
	keyBase := map[int]int{}
	twoLevel := map[int]bool{}
	for si, s := range g.Segs {
		if s.Mode != SegFuzzy {
			continue
		}
		keyBase[si] = ki
		twoLevel[si] = len(s.Cols) > 2
		ki += len(s.Cols)
	}
	// All range tables key directly on the source fields: rules are
	// generated in the offset domain and FlipTop rewrites them for the
	// raw two's-complement keys (zero ALU cost).
	keyFieldOf := func(si int, s *ExecSeg, d int) pisa.FieldID {
		return src[s.Cols[d]]
	}

	// Stage B1 (two-level segments): per-dimension interval-code tables.
	anyTwo, anySingle := false, false
	for si := range g.Segs {
		s := &g.Segs[si]
		if s.Mode != SegFuzzy || !twoLevel[si] {
			continue
		}
		anyTwo = true
		tl, err := s.Tree.TwoLevelRules(g.KeyBits, int64(offset))
		if err != nil {
			return stage, fmt.Errorf("core: group %d seg %d: %v", gi, si, err)
		}
		if offset != 0 {
			for d := range tl.Dims {
				fuzzy.FlipTopDim(&tl.Dims[d], g.KeyBits)
			}
		}
		s.tl = tl
		for d := range tl.Dims {
			dc := &tl.Dims[d]
			entries := make([]pisa.Entry, len(dc.Rules))
			for ri, r := range dc.Rules {
				entries[ri] = pisa.Entry{
					Key:  []uint32{r.Val[0]},
					Mask: []uint32{r.Mask[0]},
					Data: []int32{int32(r.Leaf)},
				}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_s%d_dim%d", gi, si, d), Kind: pisa.MatchTernary,
				KeyFields:     []pisa.FieldID{keyFieldOf(si, s, d)},
				KeyWidths:     []int{int(g.KeyBits)},
				Entries:       entries,
				Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: codeF[keyBase[si]+d], DataIdx: 0}},
				DataWidthBits: int(dc.Bits),
			})
		}
	}
	if anyTwo {
		stage++
	}

	// Stage B2: combo tables (two-level) and direct range tables
	// (narrow segments) → fuzzy index.
	idxOf := map[int]int{}
	fi := 0
	for si := range g.Segs {
		s := &g.Segs[si]
		if s.Mode != SegFuzzy {
			continue
		}
		idxOf[si] = fi
		width := idxBits(s.Tree.NumLeaves())
		if twoLevel[si] {
			tl := s.tl
			kf := make([]pisa.FieldID, len(s.Cols))
			kw := make([]int, len(s.Cols))
			for d := range s.Cols {
				kf[d] = codeF[keyBase[si]+d]
				kw[d] = int(tl.Dims[d].Bits)
			}
			entries := make([]pisa.Entry, len(tl.Combo))
			for ri, r := range tl.Combo {
				entries[ri] = pisa.Entry{
					Key:  append([]uint32(nil), r.Val...),
					Mask: append([]uint32(nil), r.Mask...),
					Data: []int32{int32(r.Leaf)},
				}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_s%d_combo", gi, si), Kind: pisa.MatchTernary,
				KeyFields: kf, KeyWidths: kw, Entries: entries,
				Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: idxF[fi], DataIdx: 0}},
				DataWidthBits: width,
			})
		} else {
			anySingle = true
			rules, err := s.Tree.TernaryRulesShifted(g.KeyBits, true, int64(offset))
			if err != nil {
				return stage, fmt.Errorf("core: group %d seg %d: %v", gi, si, err)
			}
			if offset != 0 {
				fuzzy.FlipTop(rules, g.KeyBits)
			}
			entries := make([]pisa.Entry, len(rules))
			for ri, r := range rules {
				entries[ri] = pisa.Entry{
					Key:  append([]uint32(nil), r.Val...),
					Mask: append([]uint32(nil), r.Mask...),
					Data: []int32{int32(r.Leaf)},
				}
			}
			kf := make([]pisa.FieldID, len(s.Cols))
			kw := make([]int, len(s.Cols))
			for d := range s.Cols {
				kf[d] = keyFieldOf(si, s, d)
				kw[d] = int(g.KeyBits)
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_s%d_fuzzy", gi, si), Kind: pisa.MatchTernary,
				KeyFields: kf, KeyWidths: kw, Entries: entries,
				Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: idxF[fi], DataIdx: 0}},
				DataWidthBits: width,
			})
		}
		fi++
	}
	if anyTwo || anySingle {
		stage++
	}

	// Stage C: SRAM mapping tables and identity moves. Targets: the
	// boundary directly for ReduceNone, the temp pool otherwise.
	targets := dst
	if g.Reduce != ReduceNone {
		targets = tmpF
	}
	off := 0
	for si := range g.Segs {
		s := &g.Segs[si]
		segDst := targets[off : off+s.OutDim]
		switch s.Mode {
		case SegFuzzy:
			entries := make([]pisa.Entry, len(s.Table))
			for li, row := range s.Table {
				entries[li] = pisa.Entry{Key: []uint32{uint32(li)}, Data: append([]int32(nil), row...)}
			}
			ops := make([]pisa.Op, s.OutDim)
			for j := 0; j < s.OutDim; j++ {
				ops[j] = pisa.Op{Kind: pisa.OpSetData, Dst: segDst[j], DataIdx: j}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_s%d_map", gi, si), Kind: pisa.MatchExact,
				KeyFields: []pisa.FieldID{idxF[idxOf[si]]}, KeyWidths: []int{idxBits(s.Tree.NumLeaves())},
				Entries: entries, Action: ops,
				DataWidthBits: s.OutDim * int(c.Cfg.OutBits),
			})
		case SegEmbed:
			for t, col := range s.Cols {
				vocab := len(s.EmbTab[t])
				entries := make([]pisa.Entry, vocab)
				for v := 0; v < vocab; v++ {
					entries[v] = pisa.Entry{Key: []uint32{uint32(v)}, Data: append([]int32(nil), s.EmbTab[t][v]...)}
				}
				ops := make([]pisa.Op, s.EmbDim)
				for j := 0; j < s.EmbDim; j++ {
					ops[j] = pisa.Op{Kind: pisa.OpSetData, Dst: segDst[t*s.EmbDim+j], DataIdx: j}
				}
				prog.Place(stage, &pisa.Table{
					Name: fmt.Sprintf("g%d_s%d_emb%d", gi, si, t), Kind: pisa.MatchExact,
					KeyFields: []pisa.FieldID{src[col]}, KeyWidths: []int{int(g.KeyBits)},
					Entries: entries, Action: ops,
					DataWidthBits: s.EmbDim * int(c.Cfg.OutBits),
				})
			}
		case SegIdentity:
			ops := make([]pisa.Op, len(s.Cols))
			for k, col := range s.Cols {
				ops[k] = pisa.Op{Kind: pisa.OpMove, Dst: segDst[k], A: src[col]}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_s%d_route", gi, si), Kind: pisa.MatchNone,
				DefaultData: []int32{}, Action: ops,
			})
		}
		off += s.OutDim
	}
	stage++

	// Stage D: reduction tree (pairwise) ending in the boundary fields,
	// with the §4.4 renormalisation shift folded into the final round.
	if g.Reduce != ReduceNone {
		n := len(g.Segs)
		w := g.Segs[0].OutDim
		opKind := pisa.OpSatAdd
		if g.Reduce == ReduceMax {
			opKind = pisa.OpMax
		}
		blocks := make([]int, n)
		for i := range blocks {
			blocks[i] = i * w
		}
		round := 0
		if n == 1 {
			// Single segment: shift-or-move straight to the boundary.
			var ops []pisa.Op
			for j := 0; j < w; j++ {
				if g.RShift > 0 {
					ops = append(ops, pisa.Op{Kind: pisa.OpShr, Dst: dst[j], A: tmpF[j], Imm: int32(g.RShift)})
				} else {
					ops = append(ops, pisa.Op{Kind: pisa.OpMove, Dst: dst[j], A: tmpF[j]})
				}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_move", gi), Kind: pisa.MatchNone,
				DefaultData: []int32{}, Action: ops,
			})
			stage++
		}
		for n > 1 {
			half := n / 2
			last := n%2 == 1
			final := half == 1 && !last
			var ops []pisa.Op
			for i := 0; i < half; i++ {
				a, b := blocks[i], blocks[n-1-i]
				for j := 0; j < w; j++ {
					dstF := tmpF[a+j]
					if final && g.RShift == 0 {
						dstF = dst[j]
					}
					ops = append(ops, pisa.Op{Kind: opKind, Dst: dstF, A: tmpF[a+j], B: tmpF[b+j]})
				}
			}
			if final && g.RShift > 0 {
				// Fold the renormalisation into this stage: the sum
				// lands in tmp, then shifts into the boundary.
				for j := 0; j < w; j++ {
					ops = append(ops, pisa.Op{Kind: pisa.OpShr, Dst: dst[j], A: tmpF[blocks[0]+j], Imm: int32(g.RShift)})
				}
			}
			prog.Place(stage, &pisa.Table{
				Name: fmt.Sprintf("g%d_reduce%d", gi, round), Kind: pisa.MatchNone,
				DefaultData: []int32{}, Action: ops,
			})
			stage++
			round++
			n = (n + 1) / 2
			blocks = blocks[:n]
		}
	}
	return stage, nil
}

func idxBits(leaves int) int {
	b := 1
	for (1 << b) < leaves {
		b++
	}
	if b < 4 {
		return 4
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
