package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Target is a pluggable emission backend: the seam that makes the
// compiler universal. A target owns a hardware capacity profile and
// knows how to turn a compiled artefact (feed-forward tables or the
// chained-index RNN) into one or more pisa.Programs plus the I/O field
// maps the replay harness needs. Everything upstream of emission —
// lowering, fusion, table building, refinement — is target independent;
// new dataplanes (a second switch pipe, a SmartNIC, an FPGA offload)
// plug in here without touching the rest of the compiler.
type Target interface {
	// Name is the registry key (`-target` flag value).
	Name() string
	// Capacity is the per-pipeline hardware budget programs are
	// validated against.
	Capacity() pisa.Capacity
	// EmitCompiled lowers feed-forward tables onto the target.
	EmitCompiled(c *Compiled, opts EmitOptions) (*Emitted, error)
	// EmitRNN lowers a chained-index RNN onto the target.
	EmitRNN(c *CompiledRNN, opts EmitOptions) (*Emitted, error)
}

// ---- registry ----

var (
	targetMu  sync.RWMutex
	targetReg = map[string]Target{}
)

// RegisterTarget adds a target under its Name; later registrations with
// the same name win, so callers can override the built-ins.
func RegisterTarget(t Target) {
	targetMu.Lock()
	defer targetMu.Unlock()
	targetReg[t.Name()] = t
}

// LookupTarget returns the registered target with the given name.
func LookupTarget(name string) (Target, bool) {
	targetMu.RLock()
	defer targetMu.RUnlock()
	t, ok := targetReg[name]
	return t, ok
}

// TargetNames lists the registered target names, sorted.
func TargetNames() []string {
	targetMu.RLock()
	defer targetMu.RUnlock()
	names := make([]string, 0, len(targetReg))
	for n := range targetReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultTarget is the backend used when EmitOptions.Target is nil: the
// single-pipeline Tofino 2 of the paper's testbed.
func DefaultTarget() Target { return TofinoSingle() }

func resolveTarget(t Target) Target {
	if t != nil {
		return t
	}
	return DefaultTarget()
}

func init() {
	RegisterTarget(TofinoSingle())
	RegisterTarget(TofinoMultiPipe())
	RegisterTarget(SmartNICTarget())
	RegisterTarget(NewP4Printer(nil))
}

// ---- single-pipeline backend ----

// SinglePipe emits onto one pipeline of the given capacity. It is the
// universal single-program backend: TofinoSingle and SmartNICTarget are
// instances with different capacity profiles, and any new fixed-budget
// dataplane is a one-struct registration away.
type SinglePipe struct {
	Label string
	Cap   pisa.Capacity
}

// TofinoSingle is the paper's testbed: one Tofino 2 pipeline.
func TofinoSingle() *SinglePipe { return &SinglePipe{Label: "tofino", Cap: pisa.Tofino2} }

// SmartNICTarget emits against the SmartNIC capacity profile (long
// pipeline, small per-stage memory, near-zero TCAM).
func SmartNICTarget() *SinglePipe { return &SinglePipe{Label: "smartnic", Cap: pisa.SmartNIC} }

// Name implements Target.
func (t *SinglePipe) Name() string { return t.Label }

// Capacity implements Target.
func (t *SinglePipe) Capacity() pisa.Capacity { return t.Cap }

// EmitCompiled lowers all exec groups onto one program.
func (t *SinglePipe) EmitCompiled(c *Compiled, opts EmitOptions) (*Emitted, error) {
	em, _, err := emitFF(c, t.Cap, opts, 0, len(c.Groups), opts.Argmax, true)
	if err != nil {
		return nil, err
	}
	em.Target = t.Name()
	return em, nil
}

// EmitRNN lowers all time steps onto one program.
func (t *SinglePipe) EmitRNN(c *CompiledRNN, opts EmitOptions) (*Emitted, error) {
	if opts.Gate != nil {
		return nil, fmt.Errorf("core: %s: gate emission requires a feed-forward reconstruction model", t.Name())
	}
	pipe, err := emitRNNRange(c, t.Cap, opts, 0, c.T, true)
	if err != nil {
		return nil, err
	}
	if err := pipe.em.Prog.Validate(); err != nil {
		return nil, err
	}
	pipe.em.Target = t.Name()
	return pipe.em, nil
}

// ---- multi-pipeline backend ----

// MultiPipe splits a program that overflows one pipe's stage budget
// across several chained pipes (ingress/egress on one switch, or pipes
// of adjacent devices), bridging the inter-pipe vector through PHV
// fields. Feed-forward programs split at an exec-group boundary; RNNs
// split at a time-step boundary, carrying the hidden index and the
// unconsumed input tail across the bridge. Programs that already fit
// one pipe emit identically to SinglePipe.
type MultiPipe struct {
	Label string
	// Cap is the per-pipe capacity.
	Cap pisa.Capacity
	// Pipes bounds the chain length; 0 means 2 (ingress + egress).
	Pipes int
}

// TofinoMultiPipe is the two-pipe Tofino 2 deployment: ingress and
// egress pipelines chained through bridged metadata.
func TofinoMultiPipe() *MultiPipe { return &MultiPipe{Label: "tofino-multipipe", Cap: pisa.Tofino2} }

// Name implements Target.
func (t *MultiPipe) Name() string { return t.Label }

// Capacity implements Target.
func (t *MultiPipe) Capacity() pisa.Capacity { return t.Cap }

func (t *MultiPipe) maxPipes() int {
	if t.Pipes > 0 {
		return t.Pipes
	}
	return 2
}

// EmitCompiled plans split points from a dry-run emission's per-group
// stage spans, then emits one program per pipe and wires the bridges.
func (t *MultiPipe) EmitCompiled(c *Compiled, opts EmitOptions) (*Emitted, error) {
	n := len(c.Groups)
	full, spans, err := emitFF(c, t.Cap, opts, 0, n, opts.Argmax, false)
	if err != nil {
		return nil, err
	}
	if full.Stages <= t.Cap.Stages {
		// Fits one pipe: bit-identical to the single-pipe emission.
		if err := full.Prog.Validate(); err != nil {
			return nil, err
		}
		full.Target = t.Name()
		return full, nil
	}
	if opts.Gate != nil {
		return nil, fmt.Errorf("core: %s: gated program needs %d stages and cannot split (the keep copy would cross a pipe bridge)",
			t.Name(), full.Stages)
	}

	// Greedy packing of groups into pipes. The argmax stage rides with
	// the last group when its pipe has room, and spills onto an
	// argmax-only pipe (lo == hi == n) otherwise. The extraction
	// prelude (when configured) always stays on pipe 0 and charges its
	// stage budget.
	budget := t.Cap.Stages
	var cuts [][2]int
	lo, cur := 0, 0
	if opts.Extract != nil {
		cur = opts.Extract.PreludeStages()
	}
	for gi := 0; gi < n; gi++ {
		cost := spans[gi]
		if cost > budget {
			return nil, fmt.Errorf("core: %s: group %d alone needs %d stages, pipe budget is %d",
				t.Name(), gi, cost, budget)
		}
		if gi == 0 && cur+cost > budget {
			return nil, fmt.Errorf("core: %s: extraction prelude (%d stages) plus group 0 (%d) exceed the pipe budget %d",
				t.Name(), cur, cost, budget)
		}
		if cur+cost > budget {
			cuts = append(cuts, [2]int{lo, gi})
			lo, cur = gi, 0
		}
		cur += cost
	}
	cuts = append(cuts, [2]int{lo, n})
	if opts.Argmax && cur+1 > budget {
		cuts = append(cuts, [2]int{n, n})
	}
	if len(cuts) > t.maxPipes() {
		return nil, fmt.Errorf("core: %s: program needs %d pipes, target allows %d",
			t.Name(), len(cuts), t.maxPipes())
	}

	em := &Emitted{Target: t.Name()}
	var prev *Emitted
	for k, cut := range cuts {
		pipe, _, err := emitFF(c, t.Cap, opts, cut[0], cut[1], opts.Argmax && k == len(cuts)-1, true)
		if err != nil {
			return nil, fmt.Errorf("core: %s pipe %d (groups %d..%d): %w", t.Name(), k, cut[0], cut[1]-1, err)
		}
		if k == 0 {
			em.Prog = pipe.Prog
			em.InFields = pipe.InFields
			em.Extract = pipe.Extract
		} else {
			em.More = append(em.More, pipe.Prog)
			em.Bridges = append(em.Bridges, pisa.Bridge{
				From: append([]pisa.FieldID(nil), prev.OutFields...),
				To:   append([]pisa.FieldID(nil), pipe.InFields...),
			})
		}
		em.Stages += pipe.Stages
		em.OutFields = pipe.OutFields
		em.ClassField = pipe.ClassField
		prev = pipe
	}
	return em, nil
}

// EmitRNN splits the step chain across pipes: pipe 0 pays one stage for
// h-init, every step costs two stages, and the last pipe pays two for
// logits + argmax (spilling them onto an extra pipe when the final
// steps fill their budget).
func (t *MultiPipe) EmitRNN(c *CompiledRNN, opts EmitOptions) (*Emitted, error) {
	if opts.Gate != nil {
		return nil, fmt.Errorf("core: %s: gate emission requires a feed-forward reconstruction model", t.Name())
	}
	budget := t.Cap.Stages
	if budget < 3 {
		return nil, fmt.Errorf("core: %s: pipe budget %d too small for an RNN step", t.Name(), budget)
	}
	var cuts [][2]int
	t0, cur := 0, 1 // h-init on pipe 0
	if opts.Extract != nil {
		// The extraction prelude owns pipe 0's leading stages; h-init
		// shares its first stage.
		cur = opts.Extract.PreludeStages()
	}
	for step := 0; step < c.T; step++ {
		if cur+2 > budget {
			cuts = append(cuts, [2]int{t0, step})
			t0, cur = step, 0
		}
		cur += 2
	}
	if cur+2 > budget {
		cuts = append(cuts, [2]int{t0, c.T})
		t0 = c.T
	}
	cuts = append(cuts, [2]int{t0, c.T})
	if len(cuts) == 1 {
		// Fits one pipe: identical to the single-pipe emission.
		pipe, err := emitRNNRange(c, t.Cap, opts, 0, c.T, true)
		if err != nil {
			return nil, err
		}
		if err := pipe.em.Prog.Validate(); err != nil {
			return nil, err
		}
		pipe.em.Target = t.Name()
		return pipe.em, nil
	}
	if len(cuts) > t.maxPipes() {
		return nil, fmt.Errorf("core: %s: RNN needs %d pipes, target allows %d",
			t.Name(), len(cuts), t.maxPipes())
	}

	em := &Emitted{Target: t.Name()}
	var prev *rnnPipe
	for k, cut := range cuts {
		pipe, err := emitRNNRange(c, t.Cap, opts, cut[0], cut[1], k == len(cuts)-1)
		if err != nil {
			return nil, fmt.Errorf("core: %s pipe %d (steps %d..%d): %w", t.Name(), k, cut[0], cut[1], err)
		}
		if err := pipe.em.Prog.Validate(); err != nil {
			return nil, err
		}
		if k == 0 {
			em.Prog = pipe.em.Prog
			em.InFields = pipe.em.InFields
			em.Extract = pipe.em.Extract
		} else {
			// The bridge receives the hidden index and the unconsumed
			// input tail; the pipe's own in-fields cover exactly the
			// steps the previous pipe carried forward.
			em.More = append(em.More, pipe.em.Prog)
			em.Bridges = append(em.Bridges, pisa.Bridge{
				From: append([]pisa.FieldID(nil), prev.carry...),
				To:   append([]pisa.FieldID{pipe.hF}, pipe.em.InFields...),
			})
		}
		em.Stages += pipe.em.Stages
		em.OutFields = pipe.em.OutFields
		em.ClassField = pipe.em.ClassField
		prev = pipe
	}
	return em, nil
}

// ---- P4 source backend ----

// P4Printer wraps another target and renders each emitted program as
// readable P4-16 source into Emitted.Source, for inspection and
// diffing. A nil Base prints the default single-pipe Tofino emission.
type P4Printer struct {
	Base Target
}

// NewP4Printer builds a printing backend over base (nil = TofinoSingle).
func NewP4Printer(base Target) *P4Printer { return &P4Printer{Base: base} }

func (t *P4Printer) base() Target {
	if t.Base != nil {
		return t.Base
	}
	return TofinoSingle()
}

// Name implements Target: "p4" over the default base, "p4:<base>"
// otherwise.
func (t *P4Printer) Name() string {
	if t.Base == nil {
		return "p4"
	}
	return "p4:" + t.Base.Name()
}

// Capacity implements Target.
func (t *P4Printer) Capacity() pisa.Capacity { return t.base().Capacity() }

// EmitCompiled emits through the base target and attaches the source.
func (t *P4Printer) EmitCompiled(c *Compiled, opts EmitOptions) (*Emitted, error) {
	em, err := t.base().EmitCompiled(c, opts)
	if err != nil {
		return nil, err
	}
	em.Source = renderP4(em)
	em.Target = t.Name()
	return em, nil
}

// EmitRNN emits through the base target and attaches the source.
func (t *P4Printer) EmitRNN(c *CompiledRNN, opts EmitOptions) (*Emitted, error) {
	em, err := t.base().EmitRNN(c, opts)
	if err != nil {
		return nil, err
	}
	em.Source = renderP4(em)
	em.Target = t.Name()
	return em, nil
}

func renderP4(em *Emitted) string {
	var b strings.Builder
	for i, p := range em.Programs() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(pisa.P4Source(p))
	}
	return b.String()
}
