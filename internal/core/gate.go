package core

import (
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// This file emits the §7.4 reconstruction-error gate: the on-switch
// anomaly decision of the AutoEncoder-gated deployment. The emitted
// inference program reconstructs the embedded window; the gate stage
// computes the integer sum of absolute differences between the
// reconstruction and the (preserved) embedding-group output, aligns the
// two fixed-point positions by left-shifting the coarser side, and
// compares the score against a compile-time threshold. Packets whose
// windows reconstruct poorly (score ≥ threshold) are flagged anomalous
// — unknown-attack traffic the downstream classifier must not label;
// everything else is forwarded, window attached, into the co-resident
// classifier program.

// GateSpec configures the reconstruction-error gate appended to an
// anomaly emission (EmitOptions.Gate).
type GateSpec struct {
	// KeepGroup is the exec group whose output is the reconstruction
	// target — the embedding group of the AutoEncoder. Its boundary
	// vector is copied into dedicated PHV fields before later groups
	// recycle the boundary pools.
	KeepGroup int
	// Threshold is the anomaly cut in the gate's integer domain: the
	// shift-aligned sum of absolute differences (see
	// models.AutoEncoder.GateThreshold for the conversion from a float
	// MAE threshold). A score ≥ Threshold marks the window anomalous.
	Threshold int32
}

// emitGateKeep places the boundary-preservation table for the keep
// group: an identity-move of the group's output vector into the
// dedicated keep fields, run in parallel with the next group's first
// stage (the boundary pool is not recycled until the group after that,
// so the copy costs no extra stage).
func emitGateKeep(prog *pisa.Program, keep, src []pisa.FieldID, stage int) {
	ops := make([]pisa.Op, len(keep))
	for j := range keep {
		ops[j] = pisa.Op{Kind: pisa.OpMove, Dst: keep[j], A: src[j]}
	}
	prog.Place(stage, &pisa.Table{Name: "gate_keep", Kind: pisa.MatchNone,
		DefaultData: []int32{}, Action: ops})
}

// emitGateStage appends the MAE + threshold stage: one always-table
// whose action computes the shift-aligned |keep − recon| sum into the
// score field (a sequential compare/accumulate chain, like the argmax
// stage) and raises the anomaly flag when the score reaches the
// threshold. The emission's outputs become [anom, score, window...]:
// the gate verdict, the raw score, and the model input vector — what a
// deployment harness needs to forward fire-packets into a co-resident
// classifier. ClassField carries the anomaly flag. Returns the next
// free stage.
func emitGateStage(prog *pisa.Program, layout *pisa.Layout, c *Compiled, em *Emitted, gs *GateSpec, keep []pisa.FieldID, stage int) int {
	score := layout.MustAdd("gate_score", 32)
	thrF := layout.MustAdd("gate_thr", 32)
	anom := layout.MustAdd("gate_anom", 8)
	sh := layout.MustAdd("gate_sh", 32)
	d := layout.MustAdd("gate_d", 32)
	nd := layout.MustAdd("gate_nd", 32)

	// Align fixed-point positions by left-shifting the COARSER side up —
	// exact in integer arithmetic, mirroring the host scorer
	// (models.AutoEncoder.scoreInts).
	shift := int(c.Groups[gs.KeepGroup].OutFrac) - int(c.OutFrac)
	var ops []pisa.Op
	for j, rf := range em.OutFields {
		a, b := keep[j], rf
		if shift > 0 {
			ops = append(ops, pisa.Op{Kind: pisa.OpShl, Dst: sh, A: rf, Imm: int32(shift)})
			b = sh
		} else if shift < 0 {
			ops = append(ops, pisa.Op{Kind: pisa.OpShl, Dst: sh, A: keep[j], Imm: int32(-shift)})
			a = sh
		}
		ops = append(ops,
			pisa.Op{Kind: pisa.OpSub, Dst: d, A: a, B: b},
			pisa.Op{Kind: pisa.OpSub, Dst: nd, A: b, B: a},
			pisa.Op{Kind: pisa.OpMax, Dst: d, A: d, B: nd},
		)
		if j == 0 {
			ops = append(ops, pisa.Op{Kind: pisa.OpMove, Dst: score, A: d})
		} else {
			ops = append(ops, pisa.Op{Kind: pisa.OpSatAdd, Dst: score, A: score, B: d})
		}
	}
	ops = append(ops,
		pisa.Op{Kind: pisa.OpSet, Dst: thrF, Imm: gs.Threshold},
		pisa.Op{Kind: pisa.OpSet, Dst: anom, Imm: 0},
		pisa.Op{Kind: pisa.OpSelGE, Dst: anom, A: score, B: thrF, Imm: 1},
	)
	prog.Place(stage, &pisa.Table{Name: "gate_mae", Kind: pisa.MatchNone,
		DefaultData: []int32{}, Action: ops})

	em.OutFields = append([]pisa.FieldID{anom, score}, em.InFields...)
	em.ClassField = anom
	return stage + 1
}
