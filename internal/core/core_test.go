package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

func vecEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// --- Table 3: primitive semantics -----------------------------------------

func TestPrimitiveSemanticsPartition(t *testing.T) {
	p := &Partition{Groups: [][]int{{0, 1}, {2, 3}, {0, 2}}}
	out := p.Apply([][]float64{{10, 20, 30, 40}})
	if !vecEq(out[0], []float64{10, 20}, 0) || !vecEq(out[1], []float64{30, 40}, 0) || !vecEq(out[2], []float64{10, 30}, 0) {
		t.Fatalf("Partition = %v", out)
	}
}

func TestPrimitiveSemanticsMap(t *testing.T) {
	m := &Map{Fns: []Fn{Diag([]float64{2}, []float64{1}), Diag([]float64{3}, []float64{0})}}
	out := m.Apply([][]float64{{5}, {7}})
	if out[0][0] != 11 || out[1][0] != 21 {
		t.Fatalf("Map = %v", out)
	}
}

func TestPrimitiveSemanticsSumReduce(t *testing.T) {
	out := SumReduce{}.Apply([][]float64{{1, 2}, {10, 20}, {100, 200}})
	if !vecEq(out[0], []float64{111, 222}, 0) {
		t.Fatalf("SumReduce = %v", out)
	}
}

func TestPrimitiveSemanticsMaxReduce(t *testing.T) {
	out := MaxReduce{}.Apply([][]float64{{1, 9}, {5, 2}})
	if !vecEq(out[0], []float64{5, 9}, 0) {
		t.Fatalf("MaxReduce = %v", out)
	}
}

func TestProgramEvalMatMulViaPrimitives(t *testing.T) {
	// Figure 4 / §3.2: MatMul = Partition → Map(partials) → SumReduce.
	w := tensor.FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	full := &AffineFn{W: w, B: []float64{0.5, -0.5}}
	groups, _ := SeqGroups(4, 2)
	prog := &Program{Name: "matmul", InDim: 4, Steps: []Step{
		&Partition{Groups: groups},
		&Map{Fns: []Fn{full.Restrict(groups[0], true), full.Restrict(groups[1], false)}},
		SumReduce{},
	}}
	x := []float64{1, 1, 1, 1}
	got := prog.Eval(x)
	want := full.Eval(x)
	if !vecEq(got, want, 1e-12) {
		t.Fatalf("primitive MatMul %v != %v", got, want)
	}
	if prog.Lookups() != 2 {
		t.Fatalf("Lookups = %d, want 2", prog.Lookups())
	}
}

// --- Fn algebra -------------------------------------------------------------

func TestAffineComposeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := &AffineFn{W: tensor.New(3, 2).Randn(rng, 1), B: []float64{1, 2, 3}}
	g := &AffineFn{W: tensor.New(2, 3).Randn(rng, 1), B: []float64{-1, 4}}
	comp := Compose(g, f)
	if _, ok := comp.(*AffineFn); !ok {
		t.Fatal("affine∘affine must fold to affine")
	}
	x := []float64{0.3, -0.7}
	if !vecEq(comp.Eval(x), g.Eval(f.Eval(x)), 1e-12) {
		t.Fatal("composed affine disagrees")
	}
}

func TestComposeNonAffine(t *testing.T) {
	f := &AffineFn{W: tensor.FromSlice(2, 2, []float64{1, 0, 0, 1}), B: []float64{1, -1}}
	a := &ActFn{Kind: nn.ReLU, Dim: 2}
	comp := Compose(a, f)
	got := comp.Eval([]float64{0.5, 0.5})
	if !vecEq(got, []float64{1.5, 0}, 1e-12) {
		t.Fatalf("relu∘affine = %v", got)
	}
	if comp.InDim() != 2 || comp.OutDim() != 2 || comp.Name() == "" {
		t.Fatal("compose metadata")
	}
}

func TestLinearPredicate(t *testing.T) {
	if !Linear(&AffineFn{W: tensor.New(2, 2), B: []float64{0, 0}}) {
		t.Fatal("zero-bias affine must be linear")
	}
	if Linear(&AffineFn{W: tensor.New(2, 2), B: []float64{1, 0}}) {
		t.Fatal("biased affine is not additive")
	}
	if Linear(&ActFn{Kind: nn.ReLU, Dim: 2}) {
		t.Fatal("ReLU is not linear")
	}
}

func TestEmbedFnClampsAndConcats(t *testing.T) {
	tab := tensor.FromSlice(3, 2, []float64{0, 0, 10, 11, 20, 21})
	e := &EmbedFn{Table: tab, T: 2}
	got := e.Eval([]float64{1, 99})
	if !vecEq(got, []float64{10, 11, 20, 21}, 0) {
		t.Fatalf("EmbedFn = %v", got)
	}
	if e.InDim() != 2 || e.OutDim() != 4 {
		t.Fatal("EmbedFn dims")
	}
}

func TestRestrictPartialSums(t *testing.T) {
	w := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	a := &AffineFn{W: w, B: []float64{10}}
	p1 := a.Restrict([]int{0, 1}, true)
	p2 := a.Restrict([]int{2, 3}, false)
	x := []float64{1, 1, 1, 1}
	sum := p1.Eval(x[:2])[0] + p2.Eval(x[2:])[0]
	if sum != a.Eval(x)[0] {
		t.Fatalf("restricted partials sum %g != %g", sum, a.Eval(x)[0])
	}
}

// --- Lowering + fusion -----------------------------------------------------

func buildMLP(t *testing.T, rng *rand.Rand, in int) *nn.Sequential {
	t.Helper()
	net := nn.NewSequential(
		nn.NewBatchNorm(in),
		nn.NewLinear(in, 8, rng), nn.NewActivation(nn.ReLU),
		nn.NewBatchNorm(8),
		nn.NewLinear(8, 8, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(8, 3, rng),
	)
	// Populate BN running stats.
	net.Forward(tensor.New(64, in).Randn(rng, 2), true)
	return net
}

func TestLowerMLPMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := buildMLP(t, rng, 8)
	prog, err := Lower("mlp", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 8)
		xm := tensor.New(1, 8)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
			xm.Set(0, i, x[i])
		}
		want := net.Forward(xm, false).Row(0)
		got := prog.Eval(x)
		if !vecEq(got, want, 1e-9) {
			t.Fatalf("lowered program %v != network %v", got, want)
		}
	}
}

func TestFuseMLPPreservesSemanticsAndShrinksLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := buildMLP(t, rng, 8)
	prog, err := Lower("mlp", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	if fused.Lookups() >= prog.Lookups() {
		t.Fatalf("fusion did not reduce lookups: %d → %d", prog.Lookups(), fused.Lookups())
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
		}
		if !vecEq(fused.Eval(x), prog.Eval(x), 1e-9) {
			t.Fatalf("fusion changed semantics at trial %d", trial)
		}
	}
}

func TestFusionFigure5BasicStructure(t *testing.T) {
	// After basic fusion, a BN+FC+ReLU ×2 + FC network must have exactly
	// one fused Map group per FC layer: [P, Map, SR] × 3 (Figure 5 ❶:
	// "compress seven table lookups into just two" per hidden block).
	rng := rand.New(rand.NewSource(4))
	net := buildMLP(t, rng, 8)
	prog, _ := Lower("mlp", net, 8, LowerConfig{MaxSegDim: 2})
	fused := Fuse(prog)
	plan, err := planOf(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("fused plan has %d groups, want 3 (one per FC): %s", len(plan), fused)
	}
	for gi, g := range plan {
		if g.reduce != ReduceSum {
			t.Fatalf("group %d reduce = %d, want SumReduce", gi, g.reduce)
		}
	}
}

func TestFusionFigure5AdvancedLinearCollapsesToOneGroup(t *testing.T) {
	// Advanced Fusion ❷: with nonlinearities removed, the entire model
	// collapses to a single table group regardless of depth.
	rng := rand.New(rand.NewSource(5))
	net := buildMLP(t, rng, 8)
	prog, _ := Lower("mlp", net, 8, LowerConfig{MaxSegDim: 2})
	lin := DropNonlinear(prog)
	plan, err := planOf(lin)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("linearised plan has %d groups, want 1: %s", len(plan), lin)
	}
	// And it must equal the algebraic composition of the affine layers.
	bn1 := net.Layers[0].(*nn.BatchNorm)
	fc1 := net.Layers[1].(*nn.Linear)
	bn2 := net.Layers[3].(*nn.BatchNorm)
	fc2 := net.Layers[4].(*nn.Linear)
	fc3 := net.Layers[6].(*nn.Linear)
	s1, h1 := bn1.InferenceAffine()
	s2, h2 := bn2.InferenceAffine()
	ref := composeAffine(
		&AffineFn{W: fc3.Weight.W, B: fc3.Bias.W.D},
		composeAffine(
			composeAffine(&AffineFn{W: fc2.Weight.W, B: fc2.Bias.W.D}, Diag(s2, h2)),
			composeAffine(&AffineFn{W: fc1.Weight.W, B: fc1.Bias.W.D}, Diag(s1, h1)),
		),
	)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if !vecEq(lin.Eval(x), ref.Eval(x), 1e-9) {
		t.Fatal("linearised program disagrees with affine composition")
	}
}

func TestFusionNAMAlreadyMinimal(t *testing.T) {
	// Advanced Fusion ❸: a NAM-structured model lowers directly to one
	// [P, Map(subnet), SR] group — one lookup per segment.
	rng := rand.New(rand.NewSource(6))
	inner := nn.NewSequential(nn.NewLinear(4, 6, rng), nn.NewActivation(nn.Tanh), nn.NewLinear(6, 3, rng))
	net := nn.NewSequential(nn.NewSegmentsAsBatch(4, 4, inner), nn.NewSumSegments(4, 3))
	prog, err := Lower("nam", net, 16, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	plan, err := planOf(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].reduce != ReduceSum || len(plan[0].fns) != 4 {
		t.Fatalf("NAM plan unexpected: %d groups", len(plan))
	}
	// Semantics must match training-time forward.
	x := tensor.New(1, 16).Randn(rng, 1)
	want := net.Forward(x, false).Row(0)
	got := fused.Eval(x.Row(0))
	if !vecEq(got, want, 1e-9) {
		t.Fatalf("NAM lowering %v != %v", got, want)
	}
}

func TestLowerCNNMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := nn.NewSequential(
		nn.NewConv1d(8, 2, 6, 2, 2, rng), nn.NewActivation(nn.ReLU),
		nn.NewGlobalMaxPool(4, 6),
		nn.NewLinear(6, 8, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(8, 3, rng),
	)
	prog, err := Lower("cnn", net, 16, LowerConfig{MaxSegDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	for trial := 0; trial < 30; trial++ {
		x := tensor.New(1, 16).Randn(rng, 1)
		want := net.Forward(x, false).Row(0)
		if !vecEq(prog.Eval(x.Row(0)), want, 1e-9) {
			t.Fatal("lowered CNN disagrees")
		}
		if !vecEq(fused.Eval(x.Row(0)), want, 1e-9) {
			t.Fatal("fused CNN disagrees")
		}
	}
}

func TestLowerEmbeddingModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := nn.NewSequential(
		nn.NewEmbedding(16, 3, 4, rng),
		nn.NewLinear(12, 2, rng),
	)
	prog, err := Lower("emb", net, 4, LowerConfig{MaxSegDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(1, 4, []float64{3, 0, 15, 7})
	want := net.Forward(x, false).Row(0)
	if !vecEq(prog.Eval(x.Row(0)), want, 1e-9) {
		t.Fatal("embedding lowering disagrees")
	}
}

func TestLowerSoftmaxProgram(t *testing.T) {
	prog := LowerSoftmax(4)
	x := []float64{1, 2, 3, 4}
	got := prog.Eval(x)
	want := make([]float64, 4)
	nn.SoftmaxRow(x, want)
	if !vecEq(got, want, 1e-9) {
		t.Fatalf("softmax lowering %v != %v", got, want)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatal("softmax does not normalise")
	}
}

func TestLowerRejectsUnknownShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := nn.NewSequential(nn.NewLinear(4, 2, rng))
	if _, err := Lower("bad", net, 3, LowerConfig{}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestSeqGroupsAndWindowGroups(t *testing.T) {
	g, err := SeqGroups(6, 2)
	if err != nil || len(g) != 3 || g[2][1] != 5 {
		t.Fatalf("SeqGroups = %v err %v", g, err)
	}
	if _, err := SeqGroups(5, 2); err == nil {
		t.Fatal("want divisibility error")
	}
	wg, err := WindowGroups(4, 2, 2, 2)
	if err != nil || len(wg) != 2 {
		t.Fatalf("WindowGroups = %v err %v", wg, err)
	}
	if !equalInts(wg[1], []int{4, 5, 6, 7}) {
		t.Fatalf("window 1 = %v", wg[1])
	}
	if _, err := WindowGroups(2, 1, 5, 1); err == nil {
		t.Fatal("want window error")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
