package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// deployTestEmission builds a small emission with an extraction-style
// prelude (px_-named table + register) and one model table, matching
// the naming convention the extraction emitter uses.
func deployTestEmission(t *testing.T, name string, spec ExtractSpec, modelStages int) *Emitted {
	t.Helper()
	layout := &pisa.Layout{}
	hash := layout.MustAdd("px_hash", 32)
	slot := layout.MustAdd("px_slot", 32)
	fire := layout.MustAdd("px_fire", 8)
	in := layout.MustAdd("in0", 8)
	out := layout.MustAdd("out0", 16)
	prog := pisa.NewProgram(name, layout, pisa.Tofino2)
	reg, err := pisa.NewRegister("px_count", 32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &pisa.Table{Name: "px_prelude", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: slot, A: hash, Imm: 1023},
			{Kind: pisa.OpRegAdd, Reg: ri, Dst: slot, A: slot, B: slot},
		}})
	for s := 0; s < modelStages; s++ {
		prog.Place(spec.PreludeStages()+s, &pisa.Table{
			Name: "model", Kind: pisa.MatchExact,
			KeyFields: []pisa.FieldID{in}, KeyWidths: []int{8},
			Entries:       []pisa.Entry{{Key: []uint32{0}, Data: []int32{1}}},
			Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: out, DataIdx: 0}},
			DataWidthBits: 16,
		})
	}
	em := &Emitted{Target: "tofino", Prog: prog, InFields: []pisa.FieldID{in},
		OutFields: []pisa.FieldID{out}, Stages: len(prog.Stages)}
	em.Extract = &Extraction{Spec: spec,
		Meta: pisa.PacketMeta{Hash: hash, Fields: []pisa.FieldID{in}, Fire: fire}}
	return em
}

// TestDeploymentSharesExtraction pins the combined-budget accounting:
// two co-resident models with the same extraction spec are charged one
// extraction machine (prelude stages + px_ tables + px_ registers),
// while differing specs are summed in full.
func TestDeploymentSharesExtraction(t *testing.T) {
	spec := ExtractSpec{Kind: ExtractSeq, Window: 8, Flows: 1024}
	a := deployTestEmission(t, "model-a", spec, 2)
	b := deployTestEmission(t, "model-b", spec, 3)

	d, err := NewDeployment("pair", pisa.Tofino2.Pipes(2), a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Resources()
	ra, rb := a.Resources(), b.Resources()
	naiveStages := ra.Stages + rb.Stages
	_, sram, _, reg := extractOverhead(b)
	if res.Stages != naiveStages-spec.PreludeStages() {
		t.Fatalf("combined stages %d, want %d (naive %d minus one shared prelude %d)",
			res.Stages, naiveStages-spec.PreludeStages(), naiveStages, spec.PreludeStages())
	}
	if want := ra.SRAMBits + rb.SRAMBits - sram - reg; res.SRAMBits != want {
		t.Fatalf("combined SRAM %d, want %d (one shared extraction)", res.SRAMBits, want)
	}
	if want := ra.RegBits + rb.RegBits - reg; res.RegBits != want {
		t.Fatalf("combined RegBits %d, want %d", res.RegBits, want)
	}
	if !strings.Contains(d.Summary(), "(shares extraction)") {
		t.Fatalf("summary does not mark the shared machine:\n%s", d.Summary())
	}

	// A differing spec (another window) shares nothing.
	spec2 := spec
	spec2.Window = 16
	c := deployTestEmission(t, "model-c", spec2, 1)
	d2, err := NewDeployment("mixed", pisa.Tofino2.Pipes(2), a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d2.Resources().Stages, a.Resources().Stages+c.Resources().Stages; got != want {
		t.Fatalf("differing specs deduplicated: %d stages, want %d", got, want)
	}
}

// subscriberEmission builds a register-free window classifier bound to
// a physically shared extraction machine: it consumes the machine's
// fired window fields, carries no prelude and no registers, and is
// charged by handle (first subscriber hosts the machine's footprint).
func subscriberEmission(t *testing.T, name string, shared *SharedExtraction, modelStages int) *Emitted {
	t.Helper()
	layout := &pisa.Layout{}
	in := layout.MustAdd("in0", 8)
	out := layout.MustAdd("out0", 16)
	prog := pisa.NewProgram(name, layout, pisa.Tofino2)
	for s := 0; s < modelStages; s++ {
		prog.Place(s, &pisa.Table{
			Name: "model", Kind: pisa.MatchExact,
			KeyFields: []pisa.FieldID{in}, KeyWidths: []int{8},
			Entries:       []pisa.Entry{{Key: []uint32{0}, Data: []int32{1}}},
			Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: out, DataIdx: 0}},
			DataWidthBits: 16,
		})
	}
	em := &Emitted{Target: "tofino", Prog: prog, InFields: []pisa.FieldID{in},
		OutFields: []pisa.FieldID{out}, Stages: len(prog.Stages)}
	em.Shared = shared
	return em
}

// TestDeploymentPhysicalMachines pins the physical-sharing ledger and
// Summary with three co-resident models across TWO distinct extraction
// specs: two shared machines (not one), each charged exactly once with
// its subscriber list intact, and the machine lines marked physical.
func TestDeploymentPhysicalMachines(t *testing.T) {
	seq, err := EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
		ExtractSpec{Kind: ExtractSeq, Window: 8}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := EmitSharedExtraction("px-shared-stats", pisa.Tofino2,
		ExtractSpec{Kind: ExtractStats, Window: 8}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Spec == stats.Spec {
		t.Fatal("distinct kinds resolved to one spec")
	}
	a := subscriberEmission(t, "model-a", seq, 2)
	b := subscriberEmission(t, "model-b", seq, 3)
	c := subscriberEmission(t, "model-c", stats, 2)

	d, err := NewDeployment("trio", pisa.Tofino2.Pipes(2), a, b, c)
	if err != nil {
		t.Fatal(err)
	}

	machines := d.Machines()
	if len(machines) != 2 {
		t.Fatalf("%d machines, want 2 (distinct specs must not merge):\n%+v", len(machines), machines)
	}
	for i, want := range []struct {
		spec ExtractSpec
		subs []string
	}{
		{seq.Spec, []string{"model-a", "model-b"}},
		{stats.Spec, []string{"model-c"}},
	} {
		m := machines[i]
		if m.Spec != want.spec || !m.Physical {
			t.Fatalf("machine %d = %+v, want physical %v", i, m, want.spec)
		}
		if len(m.Subscribers) != len(want.subs) {
			t.Fatalf("machine %d subscribers %v, want %v", i, m.Subscribers, want.subs)
		}
		for j := range want.subs {
			if m.Subscribers[j] != want.subs[j] {
				t.Fatalf("machine %d subscribers %v, want %v", i, m.Subscribers, want.subs)
			}
		}
	}

	// Each machine is charged exactly once: combined = three subscriber
	// programs + the seq machine + the stats machine.
	res := d.Resources()
	want := a.Resources().Stages + b.Resources().Stages + c.Resources().Stages +
		seq.Em.Resources().Stages + stats.Em.Resources().Stages
	if res.Stages != want {
		t.Fatalf("combined stages %d, want %d (each machine charged once)", res.Stages, want)
	}

	sum := d.Summary()
	for _, frag := range []string{
		"(hosts shared machine)",
		"(shared machine)",
		"physical: model-a, model-b",
		"physical: model-c",
	} {
		if !strings.Contains(sum, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, sum)
		}
	}

	// The per-model contributions mark physical sharing when the budget
	// overflows.
	tiny := Deployment{Name: "tiny", Cap: pisa.Capacity{Stages: 1,
		SRAMBitsPerStage: pisa.Tofino2.SRAMBitsPerStage, TCAMBitsPerStage: pisa.Tofino2.TCAMBitsPerStage,
		BusBits: pisa.Tofino2.BusBits, PHVBits: pisa.Tofino2.PHVBits}, Models: d.Models}
	var be *BudgetError
	if err := tiny.Validate(); !errors.As(err, &be) {
		t.Fatalf("1-stage budget accepted the trio: %v", err)
	}
	for _, ex := range be.Excesses {
		if ex.Dim != DimStages {
			continue
		}
		for _, cb := range ex.PerModel {
			if !cb.PhysicalSharing {
				t.Fatalf("contribution %+v not marked PhysicalSharing", cb)
			}
		}
	}
}

// TestDeploymentOverBudget checks that an overfull deployment is
// rejected with the combined-stage diagnosis.
func TestDeploymentOverBudget(t *testing.T) {
	spec := ExtractSpec{Kind: ExtractSeq, Window: 8, Flows: 1024}
	a := deployTestEmission(t, "model-a", spec, 15)
	b := deployTestEmission(t, "model-b", ExtractSpec{Kind: ExtractSeq, Window: 16, Flows: 1024}, 15)
	_, err := NewDeployment("overfull", pisa.Tofino2, a, b)
	if err == nil {
		t.Fatal("36-stage deployment accepted on a 20-stage budget")
	}
	if !strings.Contains(err.Error(), "exceed the deployment budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The diagnosis names the dimension and each program's contribution.
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BudgetError", err)
	}
	var stages *BudgetExcess
	for i := range be.Excesses {
		if be.Excesses[i].Dim == DimStages {
			stages = &be.Excesses[i]
		}
	}
	if stages == nil {
		t.Fatalf("no %q excess in %+v", DimStages, be.Excesses)
	}
	if stages.Limit != pisa.Tofino2.Stages || stages.Used <= stages.Limit {
		t.Fatalf("stages excess used=%d limit=%d", stages.Used, stages.Limit)
	}
	if len(stages.PerModel) != 2 {
		t.Fatalf("per-model contributions: %+v", stages.PerModel)
	}
	sum := 0
	for _, c := range stages.PerModel {
		if c.Model != "model-a" && c.Model != "model-b" {
			t.Fatalf("contribution names %q", c.Model)
		}
		sum += c.Amount
	}
	if sum != stages.Used {
		t.Fatalf("contributions sum %d != used %d", sum, stages.Used)
	}
	for _, name := range []string{"model-a", "model-b"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("message does not name %s: %v", name, err)
		}
	}
}

// TestDeploymentAdmit checks the non-mutating delta check used by
// admission control: Admit validates the extended deployment without
// touching Models, and Headroom reports the remaining budget.
func TestDeploymentAdmit(t *testing.T) {
	spec := ExtractSpec{Kind: ExtractSeq, Window: 8, Flows: 1024}
	a := deployTestEmission(t, "model-a", spec, 8)
	d, err := NewDeployment("base", pisa.Tofino2, a)
	if err != nil {
		t.Fatal(err)
	}
	stages, sram, tcam := d.Headroom()
	if stages <= 0 || sram <= 0 || tcam <= 0 {
		t.Fatalf("headroom (%d, %d, %d) not positive", stages, sram, tcam)
	}
	// A small second model fits; a 15-stage one does not.
	small := deployTestEmission(t, "model-s", ExtractSpec{Kind: ExtractSeq, Window: 16, Flows: 1024}, 1)
	if err := d.Admit(small); err != nil {
		t.Fatalf("small model rejected: %v", err)
	}
	big := deployTestEmission(t, "model-g", ExtractSpec{Kind: ExtractSeq, Window: 32, Flows: 1024}, 15)
	err = d.Admit(big)
	if err == nil {
		t.Fatal("over-stage candidate admitted")
	}
	if !strings.Contains(err.Error(), "model-g") {
		t.Fatalf("rejection does not name the candidate: %v", err)
	}
	if len(d.Models) != 1 {
		t.Fatalf("Admit mutated Models: %d", len(d.Models))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("deployment dirtied by Admit: %v", err)
	}
}
