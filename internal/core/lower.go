package core

import (
	"fmt"
	"math"

	"github.com/pegasus-idp/pegasus/internal/nn"
)

func mathExp(x float64) float64 { return math.Exp(x) }

// LowerConfig controls how trained layers are translated to primitives.
type LowerConfig struct {
	// MaxSegDim caps the inputs per Partition segment for weighted
	// aggregations (the table key width). The actual segment width is
	// the largest divisor of the layer input ≤ MaxSegDim.
	MaxSegDim int
}

func (c *LowerConfig) defaults() {
	if c.MaxSegDim == 0 {
		c.MaxSegDim = 4
	}
}

// Lower translates a trained feed-forward network into the initial
// (unfused) primitive program, implementing the operator table of §5:
//
//   - FC (Weighted Aggregation + Bias): Partition → Map(partial
//     products) → SumReduce, bias assigned to segment 0;
//   - BatchNorm (Element-wise Transformation): Map(diagonal affine from
//     the layer's inference statistics);
//   - Activations (Element-wise Transformation): Map(act);
//   - Conv (Weighted Aggregation): Partition into sliding windows →
//     Map(shared affine);
//   - Pooling (Multi-Input Operation): MaxReduce across position
//     segments (iterated pairwise-max Maps on hardware);
//   - Embedding (Embedding Lookup): Map(index function);
//   - SegmentsAsBatch/SumSegments (NAM architecture, Advanced Fusion ❸):
//     Partition → Map(whole sub-network per segment) → SumReduce.
//
// RNNs take a dedicated path (CompileRNN): their per-time-step structure
// maps to chained index tables rather than a feed-forward pipeline.
func Lower(name string, net *nn.Sequential, inDim int, cfg LowerConfig) (*Program, error) {
	cfg.defaults()
	p := &Program{Name: name, InDim: inDim}
	// seg tracks the current bundle widths so element-wise layers can be
	// emitted per segment.
	seg := []int{inDim}
	flatDim := func() int {
		n := 0
		for _, w := range seg {
			n += w
		}
		return n
	}
	for _, layer := range net.Layers {
		switch l := layer.(type) {
		case *nn.BatchNorm:
			if len(seg) != 1 {
				return nil, fmt.Errorf("core: BatchNorm over %d segments unsupported", len(seg))
			}
			scale, shift := l.InferenceAffine()
			p.Steps = append(p.Steps, &Map{Fns: []Fn{Diag(scale, shift)}})
		case *nn.Activation:
			fns := make([]Fn, len(seg))
			for i, w := range seg {
				fns[i] = &ActFn{Kind: l.Kind, Dim: w}
			}
			p.Steps = append(p.Steps, &Map{Fns: fns})
		case *nn.Linear:
			d := flatDim()
			if d != l.In {
				return nil, fmt.Errorf("core: Linear expects %d inputs, bundle has %d", l.In, d)
			}
			segDim := pickSegDim(d, cfg.MaxSegDim)
			groups, err := SeqGroups(d, segDim)
			if err != nil {
				return nil, err
			}
			full := &AffineFn{W: l.Weight.W.Clone(), B: append([]float64(nil), l.Bias.W.D...)}
			fns := make([]Fn, len(groups))
			for i, g := range groups {
				fns[i] = full.Restrict(g, i == 0)
			}
			p.Steps = append(p.Steps, &Partition{Groups: groups}, &Map{Fns: fns}, SumReduce{})
			seg = []int{l.Out}
		case *nn.Conv1d:
			if flatDim() != l.T*l.Cin {
				return nil, fmt.Errorf("core: Conv1d expects %d inputs, bundle has %d", l.T*l.Cin, flatDim())
			}
			groups, err := WindowGroups(l.T, l.Cin, l.K, l.Stride)
			if err != nil {
				return nil, err
			}
			aff := &AffineFn{W: l.Kernels.W.Clone(), B: append([]float64(nil), l.Bias.W.D...)}
			fns := make([]Fn, len(groups))
			for i := range groups {
				fns[i] = aff
			}
			p.Steps = append(p.Steps, &Partition{Groups: groups}, &Map{Fns: fns})
			seg = make([]int, len(groups))
			for i := range seg {
				seg[i] = l.Cout
			}
		case *nn.GlobalMaxPool:
			if len(seg) != l.T {
				return nil, fmt.Errorf("core: GlobalMaxPool expects %d position segments, bundle has %d", l.T, len(seg))
			}
			p.Steps = append(p.Steps, MaxReduce{})
			seg = []int{l.C}
		case *nn.Embedding:
			if len(seg) != 1 || seg[0] != l.T {
				return nil, fmt.Errorf("core: Embedding expects a single %d-index segment", l.T)
			}
			p.Steps = append(p.Steps, &Map{Fns: []Fn{&EmbedFn{Table: l.Table.W.Clone(), T: l.T}}})
			seg = []int{l.T * l.Dim}
		case *nn.SegmentsAsBatch:
			if flatDim() != l.NSeg*l.SegDim {
				return nil, fmt.Errorf("core: SegmentsAsBatch expects %d inputs, bundle has %d", l.NSeg*l.SegDim, flatDim())
			}
			groups, err := SeqGroups(l.NSeg*l.SegDim, l.SegDim)
			if err != nil {
				return nil, err
			}
			od := l.Inner.OutDim(l.SegDim)
			fns := make([]Fn, len(groups))
			for i := range groups {
				fns[i] = NewNetFn(l.Inner, l.SegDim, fmt.Sprintf("seg%d", i))
			}
			p.Steps = append(p.Steps, &Partition{Groups: groups}, &Map{Fns: fns})
			seg = make([]int, l.NSeg)
			for i := range seg {
				seg[i] = od
			}
		case *nn.SumSegments:
			if len(seg) != l.NSeg {
				return nil, fmt.Errorf("core: SumSegments expects %d segments, bundle has %d", l.NSeg, len(seg))
			}
			p.Steps = append(p.Steps, SumReduce{})
			seg = []int{l.Dim}
		case *nn.Softmax:
			// Monotone per row: argmax is unchanged, so the dataplane
			// omits it (§5's Softmax lowering is exercised separately in
			// operator tests).
		default:
			return nil, fmt.Errorf("core: cannot lower layer %s", layer.Name())
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// pickSegDim returns the largest divisor of d that is ≤ maxSeg.
func pickSegDim(d, maxSeg int) int {
	best := 1
	for s := 1; s <= maxSeg && s <= d; s++ {
		if d%s == 0 {
			best = s
		}
	}
	return best
}

// LowerSoftmax builds the §5 Softmax lowering as its own primitive
// program, demonstrating the Multi-Input Operation pattern of Table 4:
// a Map exponentiates each element, and a second Map normalises each
// element by the sum — the division being precomputed into a mapping
// table keyed on (e^xᵢ, Σe^x). Partition groups may duplicate indices,
// which is how every normaliser sees both its own exponential and all
// the others.
func LowerSoftmax(dim int) *Program {
	singles := make([][]int, dim)
	for i := range singles {
		singles[i] = []int{i}
	}
	expFns := make([]Fn, dim)
	for i := range expFns {
		expFns[i] = expFn{}
	}
	// Second partition: segment i = [e_i, e_0..e_{d-1}].
	withSum := make([][]int, dim)
	for i := range withSum {
		g := []int{i}
		for j := 0; j < dim; j++ {
			g = append(g, j)
		}
		withSum[i] = g
	}
	normFns := make([]Fn, dim)
	for i := range normFns {
		normFns[i] = normFn{dim: dim}
	}
	return &Program{
		Name:  "softmax",
		InDim: dim,
		Steps: []Step{
			&Partition{Groups: singles},
			&Map{Fns: expFns},
			&Partition{Groups: withSum},
			&Map{Fns: normFns},
		},
	}
}

// expFn is scalar e^x (a 1→1 nonlinear Map, precomputed into a table on
// the dataplane).
type expFn struct{}

func (expFn) InDim() int                 { return 1 }
func (expFn) OutDim() int                { return 1 }
func (expFn) Name() string               { return "exp" }
func (expFn) Eval(x []float64) []float64 { return []float64{mathExp(x[0])} }

// normFn maps (e_i, e_0..e_{d-1}) to e_i / Σe_j.
type normFn struct{ dim int }

func (n normFn) InDim() int   { return n.dim + 1 }
func (n normFn) OutDim() int  { return 1 }
func (n normFn) Name() string { return "norm" }
func (n normFn) Eval(x []float64) []float64 {
	sum := 0.0
	for _, v := range x[1:] {
		sum += v
	}
	if sum == 0 {
		return []float64{0}
	}
	return []float64{x[0] / sum}
}
