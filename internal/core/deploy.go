package core

import (
	"fmt"
	"strings"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Deployment is a multi-model switch deployment: several emitted
// programs co-resident on one combined hardware budget (§7.4 deploys
// the unknown-attack AutoEncoder next to a classifier on one switch).
// The deployment sums each model's stage/SRAM/TCAM consumption into one
// capacity report — with one reduction: models whose emissions carry an
// identical feature-extraction spec share the extraction machine, so
// its prelude stages, bucket tables and per-flow registers are charged
// once (on hardware a single extraction pipeline in pipe 0 feeds every
// co-resident model the same window). Validate enforces that the
// combined report fits the budget; Engines built over the member
// emissions (Emitted.NewEngineOn / NewPacketEngineOn) then serve the
// deployment from one shared-budget pisa.Scheduler.
type Deployment struct {
	Name string
	// Cap is the combined budget — e.g. pisa.Tofino2.Pipes(2) for a
	// deployment spanning one switch's ingress and egress pipelines.
	Cap pisa.Capacity
	// Models holds the member emissions in deployment order.
	Models []*Emitted
}

// NewDeployment assembles and validates a multi-model deployment
// against the combined capacity.
func NewDeployment(name string, cap pisa.Capacity, ems ...*Emitted) (*Deployment, error) {
	if len(ems) == 0 {
		return nil, fmt.Errorf("core: deployment %q has no models", name)
	}
	d := &Deployment{Name: name, Cap: cap, Models: ems}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// extractOverhead measures the extraction machine's footprint within an
// emission: the prelude stages plus the SRAM/TCAM of the px_-prefixed
// tables and the stateful bits of the px_-prefixed registers (the
// naming convention of the extraction emitter — see extract.go). All of
// it lives in pipe 0.
func extractOverhead(em *Emitted) (stages, sram, tcam, reg int) {
	if em.Extract == nil {
		return
	}
	stages = em.Extract.Spec.PreludeStages()
	for _, st := range em.Prog.Stages {
		for _, t := range st.Tables {
			if strings.HasPrefix(t.Name, "px_") {
				sram += t.SRAMBits()
				tcam += t.TCAMBits()
			}
		}
	}
	for _, r := range em.Prog.Registers {
		if strings.HasPrefix(r.Name, "px_") {
			reg += r.SRAMBits()
		}
	}
	return
}

// addResources folds b into a (summing consumption, maxing the
// per-pipe PHV/bus columns).
func addResources(a *pisa.Resources, b pisa.Resources) {
	a.Stages += b.Stages
	a.SRAMBits += b.SRAMBits
	a.TCAMBits += b.TCAMBits
	a.RegBits += b.RegBits
	a.PerStage = append(a.PerStage, b.PerStage...)
	if b.PHVBits > a.PHVBits {
		a.PHVBits = b.PHVBits
	}
	if b.PeakBusBits > a.PeakBusBits {
		a.PeakBusBits = b.PeakBusBits
	}
}

// memberResources returns each member's CHARGED resources — extraction
// sharing applied in deployment order — plus whether the member shares
// an already-accounted extraction machine and whether that sharing is
// PHYSICAL (one standalone program fanning windows out) rather than
// accounted-only. Summing the rows yields the deployment totals
// (modulo the max-combined PHV/bus columns).
//
// Fused members (Emitted.Extract set) share by spec: the first pays the
// prelude, later identical specs are charged minus it — but each still
// EXECUTES its own prelude. Subscriber members (Emitted.Shared set)
// share by handle: the first subscriber's row additionally carries the
// machine's own footprint (the standalone program is real silicon) and
// later subscribers of the same handle are charged nothing for it.
func (d *Deployment) memberResources() ([]pisa.Resources, []bool, []bool) {
	rs := make([]pisa.Resources, len(d.Models))
	shared := make([]bool, len(d.Models))
	physical := make([]bool, len(d.Models))
	seen := map[ExtractSpec]bool{}
	seenMachine := map[*SharedExtraction]bool{}
	for i, em := range d.Models {
		r := em.Resources()
		switch {
		case em.Shared != nil:
			physical[i] = true
			if seenMachine[em.Shared] {
				shared[i] = true
			} else {
				// First subscriber hosts the machine: its row carries
				// the standalone program's footprint.
				addResources(&r, em.Shared.Em.Resources())
				seenMachine[em.Shared] = true
			}
		case em.Extract != nil:
			if seen[em.Extract.Spec] {
				stages, sram, tcam, reg := extractOverhead(em)
				r.Stages -= stages
				r.SRAMBits -= sram + reg
				r.TCAMBits -= tcam
				r.RegBits -= reg
				shared[i] = true
			}
			seen[em.Extract.Spec] = true
		}
		rs[i] = r
	}
	return rs, shared, physical
}

// Machine describes one extraction machine of the deployment and the
// member programs bound to it.
type Machine struct {
	// Spec is the machine's resolved extraction configuration.
	Spec ExtractSpec `json:"spec"`
	// Physical marks a machine backed by one standalone shared program
	// (SharedExtraction): its register RMWs execute once per packet and
	// fired windows fan out to the subscribers. False for accounted-only
	// sharing, where each fused member still runs a private prelude.
	Physical bool `json:"physical"`
	// Subscribers lists the bound member programs in deployment order.
	Subscribers []string `json:"subscribers"`
}

// Machines groups the deployment's members by extraction machine:
// one entry per SharedExtraction handle (physical) and one per distinct
// fused extraction spec (accounted), in order of first appearance.
// Members without extraction do not appear.
func (d *Deployment) Machines() []Machine {
	var out []Machine
	byHandle := map[*SharedExtraction]int{}
	bySpec := map[ExtractSpec]int{}
	for _, em := range d.Models {
		switch {
		case em.Shared != nil:
			idx, ok := byHandle[em.Shared]
			if !ok {
				idx = len(out)
				byHandle[em.Shared] = idx
				out = append(out, Machine{Spec: em.Shared.Spec, Physical: true})
			}
			out[idx].Subscribers = append(out[idx].Subscribers, em.Prog.Name)
		case em.Extract != nil:
			idx, ok := bySpec[em.Extract.Spec]
			if !ok {
				idx = len(out)
				bySpec[em.Extract.Spec] = idx
				out = append(out, Machine{Spec: em.Extract.Spec})
			}
			out[idx].Subscribers = append(out[idx].Subscribers, em.Prog.Name)
		}
	}
	return out
}

// Resources sums the members' hardware consumption, charging each
// distinct extraction spec once: later emissions with a spec already
// accounted contribute their footprint minus the shared machine.
func (d *Deployment) Resources() pisa.Resources {
	var total pisa.Resources
	rs, _, _ := d.memberResources()
	for _, r := range rs {
		addResources(&total, r)
	}
	return total
}

// ResourceDim names one budget dimension of a deployment report.
type ResourceDim string

// The deployment budget dimensions admission control reports on.
const (
	DimStages ResourceDim = "stages"
	DimSRAM   ResourceDim = "sram_bits"
	DimTCAM   ResourceDim = "tcam_bits"
)

// Contribution is one member emission's charge against a dimension.
type Contribution struct {
	Model  string `json:"model"`
	Amount int    `json:"amount"`
	// SharesExtraction marks a member charged minus an extraction
	// machine another member already paid for.
	SharesExtraction bool `json:"shares_extraction,omitempty"`
	// PhysicalSharing marks a member bound to a physically shared
	// extraction machine (Emitted.Shared): the machine's register RMWs
	// execute once per packet regardless of subscriber count, not just
	// once in the ledger.
	PhysicalSharing bool `json:"physical_sharing,omitempty"`
}

// BudgetExcess reports one exhausted dimension: the combined use, the
// budget, and every member's contribution so the offender is visible.
type BudgetExcess struct {
	Dim      ResourceDim    `json:"dim"`
	Used     int            `json:"used"`
	Limit    int            `json:"limit"`
	PerModel []Contribution `json:"per_model"`
}

// BudgetError is Deployment.Validate's structured failure: the
// machine-readable resource report admission control returns to a
// rejected registration. Excesses lists every exhausted dimension with
// per-program contributions; MemberErrs carries members that fail
// their own per-pipe validation.
type BudgetError struct {
	Deployment string         `json:"deployment"`
	Excesses   []BudgetExcess `json:"excesses,omitempty"`
	MemberErrs []string       `json:"member_errors,omitempty"`
}

func (e *BudgetError) Error() string {
	var errs []string
	for _, ex := range e.Excesses {
		contrib := make([]string, len(ex.PerModel))
		for i, c := range ex.PerModel {
			shared := ""
			if c.SharesExtraction {
				shared = ", shares extraction"
			}
			contrib[i] = fmt.Sprintf("%s %d%s", c.Model, c.Amount, shared)
		}
		switch ex.Dim {
		case DimStages:
			errs = append(errs, fmt.Sprintf("combined %d stages exceed the deployment budget %d (%s)",
				ex.Used, ex.Limit, strings.Join(contrib, "; ")))
		case DimSRAM:
			errs = append(errs, fmt.Sprintf("combined SRAM %d bits exceeds %d (%s)",
				ex.Used, ex.Limit, strings.Join(contrib, "; ")))
		case DimTCAM:
			errs = append(errs, fmt.Sprintf("combined TCAM %d bits exceeds %d (%s)",
				ex.Used, ex.Limit, strings.Join(contrib, "; ")))
		}
	}
	errs = append(errs, e.MemberErrs...)
	return fmt.Sprintf("core: deployment %q over budget:\n  %s", e.Deployment, strings.Join(errs, "\n  "))
}

// Validate checks every member against its own per-pipe capacity and
// the combined consumption against the deployment budget. Failures are
// returned as a *BudgetError naming each exhausted dimension and every
// member's contribution to it (extraction-sharing members marked), so
// an operator can read WHICH resource ran out and WHO is spending it.
func (d *Deployment) Validate() error {
	be := &BudgetError{Deployment: d.Name}
	for _, em := range d.Models {
		if err := em.Validate(); err != nil {
			be.MemberErrs = append(be.MemberErrs, err.Error())
		}
	}
	rs, shared, physical := d.memberResources()
	contrib := func(get func(pisa.Resources) int) []Contribution {
		cs := make([]Contribution, len(d.Models))
		for i, em := range d.Models {
			cs[i] = Contribution{Model: em.Prog.Name, Amount: get(rs[i]),
				SharesExtraction: shared[i], PhysicalSharing: physical[i]}
		}
		return cs
	}
	res := d.Resources()
	if res.Stages > d.Cap.Stages {
		be.Excesses = append(be.Excesses, BudgetExcess{Dim: DimStages,
			Used: res.Stages, Limit: d.Cap.Stages,
			PerModel: contrib(func(r pisa.Resources) int { return r.Stages })})
	}
	if lim := d.Cap.SRAMBitsPerStage * d.Cap.Stages; res.SRAMBits > lim {
		be.Excesses = append(be.Excesses, BudgetExcess{Dim: DimSRAM,
			Used: res.SRAMBits, Limit: lim,
			PerModel: contrib(func(r pisa.Resources) int { return r.SRAMBits })})
	}
	if lim := d.Cap.TCAMBitsPerStage * d.Cap.Stages; res.TCAMBits > lim {
		be.Excesses = append(be.Excesses, BudgetExcess{Dim: DimTCAM,
			Used: res.TCAMBits, Limit: lim,
			PerModel: contrib(func(r pisa.Resources) int { return r.TCAMBits })})
	}
	if len(be.Excesses) > 0 || len(be.MemberErrs) > 0 {
		return be
	}
	return nil
}

// Headroom reports the budget left after the deployment's combined
// consumption — the remaining capacity a candidate admission must fit
// (negative values mean the deployment is already over).
func (d *Deployment) Headroom() (stages, sramBits, tcamBits int) {
	res := d.Resources()
	return d.Cap.Stages - res.Stages,
		d.Cap.SRAMBitsPerStage*d.Cap.Stages - res.SRAMBits,
		d.Cap.TCAMBitsPerStage*d.Cap.Stages - res.TCAMBits
}

// Admit validates the deployment EXTENDED by em without mutating it —
// the admission-control delta check: on success the caller may append
// em to Models; on failure the returned *BudgetError names the
// exhausted dimensions with the candidate's own contribution included.
func (d *Deployment) Admit(em *Emitted) error {
	cand := Deployment{Name: d.Name, Cap: d.Cap,
		Models: append(append([]*Emitted{}, d.Models...), em)}
	return cand.Validate()
}

// Summary renders the combined capacity report: one line per model,
// one line per extraction machine with its subscriber list, and the
// deployment totals against the budget. Accounted sharing ("shares
// extraction") means a fused member is charged minus a machine another
// member already paid for but still executes its own prelude; physical
// sharing ("shared machine") means the member subscribes to one
// standalone extraction program that runs the prelude once per packet.
func (d *Deployment) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deployment %q: %d models, budget %d stages\n", d.Name, len(d.Models), d.Cap.Stages)
	seen := map[ExtractSpec]bool{}
	seenMachine := map[*SharedExtraction]bool{}
	for _, em := range d.Models {
		r := em.Resources()
		note := ""
		switch {
		case em.Shared != nil:
			if seenMachine[em.Shared] {
				note = "  (shared machine)"
			} else {
				note = "  (hosts shared machine)"
				addResources(&r, em.Shared.Em.Resources())
				seenMachine[em.Shared] = true
			}
		case em.Extract != nil:
			if seen[em.Extract.Spec] {
				note = "  (shares extraction)"
			}
			seen[em.Extract.Spec] = true
		}
		fmt.Fprintf(&b, "  %-16s %2d stages  SRAM %9d  TCAM %8d  reg %9d%s\n",
			em.Prog.Name, r.Stages, r.SRAMBits, r.TCAMBits, r.RegBits, note)
	}
	for _, mc := range d.Machines() {
		kind := "accounted"
		if mc.Physical {
			kind = "physical"
		}
		fmt.Fprintf(&b, "  extraction [%s] %s: %s\n", mc.Spec, kind, strings.Join(mc.Subscribers, ", "))
	}
	res := d.Resources()
	fmt.Fprintf(&b, "  %-16s %2d/%d stages  SRAM %.2f%%  TCAM %.2f%%  reg %d bits\n",
		"combined", res.Stages, d.Cap.Stages,
		100*res.SRAMFrac(d.Cap), 100*res.TCAMFrac(d.Cap), res.RegBits)
	return b.String()
}
