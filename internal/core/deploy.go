package core

import (
	"fmt"
	"strings"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Deployment is a multi-model switch deployment: several emitted
// programs co-resident on one combined hardware budget (§7.4 deploys
// the unknown-attack AutoEncoder next to a classifier on one switch).
// The deployment sums each model's stage/SRAM/TCAM consumption into one
// capacity report — with one reduction: models whose emissions carry an
// identical feature-extraction spec share the extraction machine, so
// its prelude stages, bucket tables and per-flow registers are charged
// once (on hardware a single extraction pipeline in pipe 0 feeds every
// co-resident model the same window). Validate enforces that the
// combined report fits the budget; Engines built over the member
// emissions (Emitted.NewEngineOn / NewPacketEngineOn) then serve the
// deployment from one shared-budget pisa.Scheduler.
type Deployment struct {
	Name string
	// Cap is the combined budget — e.g. pisa.Tofino2.Pipes(2) for a
	// deployment spanning one switch's ingress and egress pipelines.
	Cap pisa.Capacity
	// Models holds the member emissions in deployment order.
	Models []*Emitted
}

// NewDeployment assembles and validates a multi-model deployment
// against the combined capacity.
func NewDeployment(name string, cap pisa.Capacity, ems ...*Emitted) (*Deployment, error) {
	if len(ems) == 0 {
		return nil, fmt.Errorf("core: deployment %q has no models", name)
	}
	d := &Deployment{Name: name, Cap: cap, Models: ems}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// extractOverhead measures the extraction machine's footprint within an
// emission: the prelude stages plus the SRAM/TCAM of the px_-prefixed
// tables and the stateful bits of the px_-prefixed registers (the
// naming convention of the extraction emitter — see extract.go). All of
// it lives in pipe 0.
func extractOverhead(em *Emitted) (stages, sram, tcam, reg int) {
	if em.Extract == nil {
		return
	}
	stages = em.Extract.Spec.PreludeStages()
	for _, st := range em.Prog.Stages {
		for _, t := range st.Tables {
			if strings.HasPrefix(t.Name, "px_") {
				sram += t.SRAMBits()
				tcam += t.TCAMBits()
			}
		}
	}
	for _, r := range em.Prog.Registers {
		if strings.HasPrefix(r.Name, "px_") {
			reg += r.SRAMBits()
		}
	}
	return
}

// Resources sums the members' hardware consumption, charging each
// distinct extraction spec once: later emissions with a spec already
// accounted contribute their footprint minus the shared machine.
func (d *Deployment) Resources() pisa.Resources {
	var total pisa.Resources
	seen := map[ExtractSpec]bool{}
	for _, em := range d.Models {
		r := em.Resources()
		if em.Extract != nil {
			if seen[em.Extract.Spec] {
				stages, sram, tcam, reg := extractOverhead(em)
				r.Stages -= stages
				r.SRAMBits -= sram + reg
				r.TCAMBits -= tcam
				r.RegBits -= reg
			}
			seen[em.Extract.Spec] = true
		}
		total.Stages += r.Stages
		total.SRAMBits += r.SRAMBits
		total.TCAMBits += r.TCAMBits
		total.RegBits += r.RegBits
		total.PerStage = append(total.PerStage, r.PerStage...)
		if r.PHVBits > total.PHVBits {
			total.PHVBits = r.PHVBits
		}
		if r.PeakBusBits > total.PeakBusBits {
			total.PeakBusBits = r.PeakBusBits
		}
	}
	return total
}

// Validate checks every member against its own per-pipe capacity and
// the combined consumption against the deployment budget.
func (d *Deployment) Validate() error {
	var errs []string
	for _, em := range d.Models {
		if err := em.Validate(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	res := d.Resources()
	if res.Stages > d.Cap.Stages {
		errs = append(errs, fmt.Sprintf("combined %d stages exceed the deployment budget %d", res.Stages, d.Cap.Stages))
	}
	if lim := d.Cap.SRAMBitsPerStage * d.Cap.Stages; res.SRAMBits > lim {
		errs = append(errs, fmt.Sprintf("combined SRAM %d bits exceeds %d", res.SRAMBits, lim))
	}
	if lim := d.Cap.TCAMBitsPerStage * d.Cap.Stages; res.TCAMBits > lim {
		errs = append(errs, fmt.Sprintf("combined TCAM %d bits exceeds %d", res.TCAMBits, lim))
	}
	if len(errs) > 0 {
		return fmt.Errorf("core: deployment %q over budget:\n  %s", d.Name, strings.Join(errs, "\n  "))
	}
	return nil
}

// Summary renders the combined capacity report: one line per model and
// the deployment totals against the budget.
func (d *Deployment) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deployment %q: %d models, budget %d stages\n", d.Name, len(d.Models), d.Cap.Stages)
	seen := map[ExtractSpec]bool{}
	for _, em := range d.Models {
		r := em.Resources()
		shared := ""
		if em.Extract != nil {
			if seen[em.Extract.Spec] {
				shared = "  (shares extraction)"
			}
			seen[em.Extract.Spec] = true
		}
		fmt.Fprintf(&b, "  %-16s %2d stages  SRAM %9d  TCAM %8d  reg %9d%s\n",
			em.Prog.Name, r.Stages, r.SRAMBits, r.TCAMBits, r.RegBits, shared)
	}
	res := d.Resources()
	fmt.Fprintf(&b, "  %-16s %2d/%d stages  SRAM %.2f%%  TCAM %.2f%%  reg %d bits\n",
		"combined", res.Stages, d.Cap.Stages,
		100*res.SRAMFrac(d.Cap), 100*res.TCAMFrac(d.Cap), res.RegBits)
	return b.String()
}
