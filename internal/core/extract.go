package core

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// This file emits the Table-6 feature-extraction state machines as
// executable PISA tables: per-flow registers updated by one
// read-modify-write each per packet, bucket range tables (consecutive
// range coding of netsim.LenBucket/IPDBucket), and a window-boundary
// trigger that assembles the model's input vector and raises the fire
// field. The emitted machines are bit-identical to the host-side
// extractors (netsim.StatFeatures / netsim.SeqWindows), which is what
// lets the per-packet engine path classify raw traces exactly like
// host-side extraction followed by RunSwitch.

// ExtractKind selects the feature-extraction state machine prepended to
// an emitted program.
type ExtractKind int

const (
	// ExtractStats maintains per-direction max/min length and max/min
	// IPD-bucket trackers (the stat-feature models: MLP-B, N3IC, Leo).
	// Engine packet fields: direction (0/1), length, timestamp (µs,
	// low 32 bits). Fires every Window packets with the cumulative
	// flow statistics, matching netsim.StatFeatures(f, k*Window).
	ExtractStats ExtractKind = iota
	// ExtractSeq banks per-packet length/IPD buckets into windowed
	// sequence buffers (RNN-B, CNN-B/M, AutoEncoder). Engine packet
	// fields: length, timestamp. Fires on every Window-th packet of a
	// flow with the interleaved len/IPD bucket window, matching
	// netsim.SeqWindows.
	ExtractSeq
	// ExtractPayload counts window positions for payload models
	// (CNN-L): the payload bytes are per-packet PHV inputs, and the
	// model's own window phase banks its per-packet index registers
	// keyed on the prelude's Pos/Slot fields. Engine packet fields:
	// the payload-byte in-fields themselves.
	ExtractPayload
	// ExtractPayloadIPD is ExtractPayload plus a per-packet IPD bucket
	// computed into the final in-field (the CNN-L +IPD variant).
	// Engine packet fields: payload bytes, timestamp.
	ExtractPayloadIPD
)

func (k ExtractKind) String() string {
	switch k {
	case ExtractStats:
		return "stats"
	case ExtractSeq:
		return "seq"
	case ExtractPayload:
		return "payload"
	case ExtractPayloadIPD:
		return "payload+ipd"
	}
	return fmt.Sprintf("ExtractKind(%d)", int(k))
}

// ExtractSpec configures the extraction machine of an emission.
type ExtractSpec struct {
	// Kind selects the state machine.
	Kind ExtractKind
	// Window is the firing interval in packets (must be a power of
	// two; 0 = 8, the model zoo's shared window).
	Window int
	// Flows sizes the per-flow register arrays (rounded up to a power
	// of two; 0 inherits EmitOptions.Flows, then defaults to 1024).
	Flows int
	// IdleTimeout, when positive, evicts stale flow state on slot
	// recycling: the prelude's last-seen timestamp exchange flags a
	// packet whose inter-arrival gap reaches the timeout (in the trace
	// timestamp unit, µs) as the start of a fresh flow, and the window
	// counter restarts at 1 through a predicated RMW on the existing
	// counter register (pisa.OpRegCntRestart) — no extra register
	// access, no extra stage. A new flow colliding into a long-idle
	// slot therefore no longer inherits the previous flow's half-built
	// window. Only the timestamp-bearing machines (ExtractSeq,
	// ExtractPayloadIPD) support eviction: the stats machine's
	// cumulative trackers would each need their own predicated reset,
	// and the plain payload machine consumes no timestamp at all.
	IdleTimeout int
}

// statMinInit is the +max sentinel min-tracker registers initialise to;
// the fire stage maps a still-initial tracker to 0, mirroring the
// host extractor's unseen-direction semantics. Packet lengths must stay
// below it (true for any wire format).
const statMinInit = 32767

func (s *ExtractSpec) window() int {
	if s.Window <= 0 {
		return 8
	}
	return s.Window
}

func (s *ExtractSpec) flows(def int) int {
	n := s.Flows
	if n <= 0 {
		n = def
	}
	if n <= 0 {
		n = 1 << 10
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PreludeStages returns the pipeline stages the extraction machine
// occupies before the first inference table may be placed. Multi-pipe
// targets use it to budget pipe 0 without a dry-run emission.
func (s *ExtractSpec) PreludeStages() int {
	switch s.Kind {
	case ExtractStats:
		return 5
	case ExtractSeq:
		return 3
	case ExtractPayload:
		return 0 // bookkeeping overlaps the encoder's own stages
	case ExtractPayloadIPD:
		return 2
	}
	return 0
}

// Extraction is the emitted form of an ExtractSpec: the engine-facing
// packet handles plus the prelude fields model-specific phases (CNN-L's
// window banking) build on. All fields live in pipe 0's layout.
type Extraction struct {
	// Spec echoes the emission's configuration with Window/Flows
	// resolved to their effective values.
	Spec ExtractSpec
	// Meta holds the engine handles: the flow-hash input, the raw
	// per-packet field inputs, and the window-fire output.
	Meta pisa.PacketMeta
	// Slot is the register index of the packet's flow
	// (hash & (Flows-1)); Pos is its window position
	// ((count-1) mod Window). Custom phases gate their banking tables
	// on Pos and index their registers with Slot.
	Slot, Pos pisa.FieldID
}

// BankPair is one value banked per window position: Src is the field
// stored by each non-final packet, Dst[p] the field position p is
// restored into on the window-completing packet.
type BankPair struct {
	Src pisa.FieldID
	Dst []pisa.FieldID
}

// EmitWindowBank emits the per-position register banking shared by the
// windowed machines: for every position p < Window−1 it allocates one
// 8-bit register array per pair (named prefix + pair/position), places
// a banking table at bankStage gated on Pos == p that stores each
// pair's source field, and returns the restore ops — RegLoads masked
// back to unsigned 8-bit (the registers sign-extend on store) into
// each pair's position destinations — for the caller to run on the
// window-completing packet. The gate shapes keep every register at one
// RMW per packet: position p's bank and the caller's pos==Window−1
// restore are provably exclusive.
func (x *Extraction) EmitWindowBank(prog *pisa.Program, prefix string, pairs []BankPair, bankStage int) ([]pisa.Op, error) {
	w := x.Spec.Window
	var restore []pisa.Op
	for p := 0; p < w-1; p++ {
		var ops []pisa.Op
		for pi, pair := range pairs {
			reg, err := pisa.NewRegister(fmt.Sprintf("%s%d_q%d", prefix, pi, p), 8, x.Spec.Flows)
			if err != nil {
				return nil, err
			}
			ri := prog.AddRegister(reg)
			ops = append(ops, pisa.Op{Kind: pisa.OpRegStore, Reg: ri, A: x.Slot, B: pair.Src})
			restore = append(restore,
				pisa.Op{Kind: pisa.OpRegLoad, Reg: ri, Dst: pair.Dst[p], A: x.Slot},
				pisa.Op{Kind: pisa.OpAndImm, Dst: pair.Dst[p], A: pair.Dst[p], Imm: 0xff},
			)
		}
		prog.Place(bankStage, &pisa.Table{
			Name: fmt.Sprintf("%s_bank%d", prefix, p), Kind: pisa.MatchNone, DefaultData: []int32{},
			Gate:   &pisa.Gate{Field: x.Pos, Op: pisa.GateEQ, Value: int32(p)},
			Action: ops,
		})
	}
	return restore, nil
}

// extractEmitter accumulates the shared prelude state while building
// one machine.
type extractEmitter struct {
	prog   *pisa.Program
	layout *pisa.Layout
	spec   ExtractSpec
	ext    *Extraction

	slot, cnt, pos, one, zero, fire pisa.FieldID
}

// emitExtraction prepends spec's state machine to prog, writing the
// extracted feature vector into em.InFields on firing packets and
// recording the engine handles in em.Extract. It returns the first
// stage available to inference tables (== spec.PreludeStages()).
func emitExtraction(prog *pisa.Program, layout *pisa.Layout, em *Emitted, spec ExtractSpec, defFlows int) (int, error) {
	w := spec.window()
	if w&(w-1) != 0 {
		return 0, fmt.Errorf("core: extraction window %d is not a power of two", w)
	}
	if spec.IdleTimeout > 0 && spec.Kind != ExtractSeq && spec.Kind != ExtractPayloadIPD {
		return 0, fmt.Errorf("core: %s extraction does not support idle-timeout eviction (needs the per-flow timestamp exchange of the seq/payload+ipd preludes)", spec.Kind)
	}
	spec.Window = w
	spec.Flows = spec.flows(defFlows)

	e := &extractEmitter{prog: prog, layout: layout, spec: spec,
		ext: &Extraction{Spec: spec}}
	e.ext.Meta.Hash = layout.MustAdd("px_hash", 32)
	e.slot = layout.MustAdd("px_slot", 32)
	e.cnt = layout.MustAdd("px_cnt", 32)
	e.pos = layout.MustAdd("px_pos", 8)
	e.one = layout.MustAdd("px_one", 8)
	e.zero = layout.MustAdd("px_zero", 8) // never written: constant 0
	e.fire = layout.MustAdd("px_fire", 8)
	e.ext.Meta.Fire = e.fire
	e.ext.Slot, e.ext.Pos = e.slot, e.pos

	var stages int
	var err error
	switch spec.Kind {
	case ExtractStats:
		stages, err = e.emitStats(em)
	case ExtractSeq:
		stages, err = e.emitSeq(em)
	case ExtractPayload, ExtractPayloadIPD:
		stages, err = e.emitPayload(em)
	default:
		return 0, fmt.Errorf("core: unknown extraction kind %d", int(spec.Kind))
	}
	if err != nil {
		return 0, err
	}
	if stages != spec.PreludeStages() {
		panic(fmt.Sprintf("core: %s extraction emitted %d prelude stages, PreludeStages says %d",
			spec.Kind, stages, spec.PreludeStages()))
	}
	em.Extract = e.ext
	return stages, nil
}

// register allocates a per-flow register array sized to the spec.
func (e *extractEmitter) register(name string, width int, init int32) (int, error) {
	r, err := pisa.NewRegisterInit(name, width, e.spec.Flows, init)
	if err != nil {
		return 0, err
	}
	return e.prog.AddRegister(r), nil
}

// preludeOps emits the stage-0 bookkeeping shared by every machine:
// slot derivation, the per-flow packet counter RMW and the window
// position. pre ops run before the counter access (the eviction path's
// staleness check must precede its predicated restart), post ops after
// it; cnt is the counter RMW with Reg/Dst/A filled in here.
func (e *extractEmitter) preludeOps(pre []pisa.Op, cnt pisa.Op, post []pisa.Op) error {
	cntReg, err := e.register("px_count", 32, 0)
	if err != nil {
		return err
	}
	cnt.Reg, cnt.Dst, cnt.A = cntReg, e.cnt, e.slot
	ops := []pisa.Op{
		{Kind: pisa.OpSet, Dst: e.one, Imm: 1},
		{Kind: pisa.OpAndImm, Dst: e.slot, A: e.ext.Meta.Hash, Imm: int32(e.spec.Flows - 1)},
	}
	ops = append(ops, pre...)
	ops = append(ops, cnt,
		pisa.Op{Kind: pisa.OpAddImm, Dst: e.pos, A: e.cnt, Imm: -1},
		pisa.Op{Kind: pisa.OpAndImm, Dst: e.pos, A: e.pos, Imm: int32(e.spec.Window - 1)})
	ops = append(ops, post...)
	e.prog.Place(0, &pisa.Table{Name: "px_prelude", Kind: pisa.MatchNone,
		DefaultData: []int32{}, Action: ops})
	return nil
}

// prelude is preludeOps with a plain incrementing counter and the extra
// ops appended after the bookkeeping.
func (e *extractEmitter) prelude(extra []pisa.Op) error {
	return e.preludeOps(nil, pisa.Op{Kind: pisa.OpRegAdd, B: e.one}, extra)
}

// ipdPrelude emits the prelude for flow-level IPD tracking: exchange
// the previous timestamp, subtract, and zero the delta on the flow's
// first packet (the host extractor defines the first IPD as 0). When
// the spec carries an idle timeout, the timestamp exchange doubles as
// the last-seen check: a delta reaching the timeout raises the stale
// flag, and the counter RMW becomes a predicated restart — the fresh
// flow starts a clean window (and, since every banked position is
// rewritten before the next fire, no stale banked state can leak into
// its feature vectors). It allocates the last-timestamp register and
// the last/delta fields.
func (e *extractEmitter) ipdPrelude(ts pisa.FieldID) (delta pisa.FieldID, _ error) {
	lastReg, err := e.register("px_last_ts", 32, 0)
	if err != nil {
		return 0, err
	}
	last := e.layout.MustAdd("px_last", 32)
	delta = e.layout.MustAdd("px_delta", 32)
	if e.spec.IdleTimeout > 0 {
		stale := e.layout.MustAdd("px_stale", 8)
		tmo := e.layout.MustAdd("px_tmo", 32)
		negOne := e.layout.MustAdd("px_neg1", 32)
		return delta, e.preludeOps(
			[]pisa.Op{
				{Kind: pisa.OpRegExch, Reg: lastReg, Dst: last, A: e.slot, B: ts},
				{Kind: pisa.OpSub, Dst: delta, A: ts, B: last},
				{Kind: pisa.OpSet, Dst: tmo, Imm: int32(e.spec.IdleTimeout)},
				{Kind: pisa.OpSet, Dst: negOne, Imm: -1},
				{Kind: pisa.OpSet, Dst: stale, Imm: 0},
				{Kind: pisa.OpSelGE, Dst: stale, A: delta, B: tmo, Imm: 1},
				// Gaps of 2^31..2^32 µs (~36..72 min) wrap delta negative
				// under the signed compare; any such gap exceeds every
				// representable timeout, so a negative delta is stale too.
				{Kind: pisa.OpSelGE, Dst: stale, A: negOne, B: delta, Imm: 1},
			},
			pisa.Op{Kind: pisa.OpRegCntRestart, B: stale, Imm: 1},
			[]pisa.Op{
				// cnt == 1 covers both a genuinely fresh slot and an
				// evicted one: either way the window's first IPD is 0.
				{Kind: pisa.OpSelEQI, Dst: delta, A: e.cnt, Imm: 1, B: e.zero},
			})
	}
	return delta, e.prelude([]pisa.Op{
		{Kind: pisa.OpRegExch, Reg: lastReg, Dst: last, A: e.slot, B: ts},
		{Kind: pisa.OpSub, Dst: delta, A: ts, B: last},
		{Kind: pisa.OpSelEQI, Dst: delta, A: e.cnt, Imm: 1, B: e.zero},
	})
}

// bucketTable places a ternary range table mapping the key field
// through buckets (prefix-expanded consecutive range coding) into dst.
// Extra ops run after the bucket assignment in the same action.
func (e *extractEmitter) bucketTable(name string, stage int, key pisa.FieldID, keyBits int,
	f func(uint64) int, gate *pisa.Gate, dst pisa.FieldID, extra ...pisa.Op) {
	entries := bucketEntries(keyBits, f)
	e.prog.Place(stage, &pisa.Table{
		Name: name, Kind: pisa.MatchTernary,
		KeyFields: []pisa.FieldID{key}, KeyWidths: []int{keyBits},
		Entries: entries, Gate: gate,
		Action:        append([]pisa.Op{{Kind: pisa.OpSetData, Dst: dst, DataIdx: 0}}, extra...),
		DataWidthBits: 8,
	})
}

// emitSeq builds the sequence machine: stage 0 prelude (+timestamp
// exchange), stage 1 len/IPD bucket range tables, stage 2 per-position
// banking plus the window-boundary readback that interleaves the
// len/IPD window into the in-fields.
func (e *extractEmitter) emitSeq(em *Emitted) (int, error) {
	w := e.spec.Window
	if len(em.InFields) != 2*w {
		return 0, fmt.Errorf("core: seq extraction needs %d in-fields (len/IPD interleaved), emission has %d",
			2*w, len(em.InFields))
	}
	lenF := e.layout.MustAdd("px_len", 16)
	ts := e.layout.MustAdd("px_ts", 32)
	e.ext.Meta.Fields = []pisa.FieldID{lenF, ts}
	delta, err := e.ipdPrelude(ts)
	if err != nil {
		return 0, err
	}
	lenb := e.layout.MustAdd("px_lenb", 8)
	ipdb := e.layout.MustAdd("px_ipdb", 8)
	e.bucketTable("px_len_bucket", 1, lenF, 16,
		func(v uint64) int { return netsim.LenBucket(int(v)) }, nil, lenb)
	e.bucketTable("px_ipd_bucket", 1, delta, 32,
		func(v uint64) int { return netsim.IPDBucket(v) }, nil, ipdb)

	lenDst := make([]pisa.FieldID, w-1)
	ipdDst := make([]pisa.FieldID, w-1)
	for p := 0; p < w-1; p++ {
		lenDst[p], ipdDst[p] = em.InFields[2*p], em.InFields[2*p+1]
	}
	ops, err := e.ext.EmitWindowBank(e.prog, "px_seq", []BankPair{
		{Src: lenb, Dst: lenDst},
		{Src: ipdb, Dst: ipdDst},
	}, 2)
	if err != nil {
		return 0, err
	}
	// Window boundary: restore the banked positions, append the
	// current packet's buckets, fire.
	ops = append(ops,
		pisa.Op{Kind: pisa.OpMove, Dst: em.InFields[2*(w-1)], A: lenb},
		pisa.Op{Kind: pisa.OpMove, Dst: em.InFields[2*w-1], A: ipdb},
		pisa.Op{Kind: pisa.OpSet, Dst: e.fire, Imm: 1},
	)
	e.prog.Place(2, &pisa.Table{
		Name: "px_window_fire", Kind: pisa.MatchNone, DefaultData: []int32{},
		Gate:   &pisa.Gate{Field: e.pos, Op: pisa.GateEQ, Value: int32(w - 1)},
		Action: ops,
	})
	return 3, nil
}

// emitStats builds the per-direction statistics machine of the
// stat-feature models. Per direction d it keeps max/min length, the
// previous timestamp, a packet count and max/min IPD-bucket trackers;
// every register sees exactly one RMW per packet, with direction- and
// position-gated tables sharing registers only under provably
// exclusive gates:
//
//	stage 1: d-gated tracker updates (max/min len RMW, timestamp
//	         exchange, per-direction count) + delta computation
//	stage 2: loads of the OTHER direction's trackers (the direction
//	         not updating this packet) + the d-gated IPD range table,
//	         whose action also neutralises the bucket on the
//	         direction's first packet (max sees 0, min the sentinel)
//	stage 3: d-gated max/min IPD RMW
//	stage 4: window-boundary readout with unseen-direction fixups
func (e *extractEmitter) emitStats(em *Emitted) (int, error) {
	if len(em.InFields) != 8 {
		return 0, fmt.Errorf("core: stats extraction needs 8 in-fields, emission has %d", len(em.InFields))
	}
	dir := e.layout.MustAdd("px_dir", 8)
	lenF := e.layout.MustAdd("px_len", 16)
	ts := e.layout.MustAdd("px_ts", 32)
	e.ext.Meta.Fields = []pisa.FieldID{dir, lenF, ts}
	if err := e.prelude(nil); err != nil {
		return 0, err
	}
	init := e.layout.MustAdd("px_init", 16)
	// The sentinel constant rides in the prelude table.
	pre := e.prog.Stages[0].Tables[0]
	pre.Action = append(pre.Action, pisa.Op{Kind: pisa.OpSet, Dst: init, Imm: statMinInit})

	names := [2]string{"fwd", "rev"}
	var maxLen, minLen, maxIPD, minIPD [2]pisa.FieldID
	for d := 0; d < 2; d++ {
		n := names[d]
		maxLen[d] = e.layout.MustAdd("px_maxlen_"+n, 16)
		minLen[d] = e.layout.MustAdd("px_minlen_"+n, 16)
		maxIPD[d] = e.layout.MustAdd("px_maxipd_"+n, 16)
		minIPD[d] = e.layout.MustAdd("px_minipd_"+n, 16)
	}

	for d := 0; d < 2; d++ {
		n := names[d]
		maxLenR, err := e.register("px_maxlen_"+n, 16, 0)
		if err != nil {
			return 0, err
		}
		minLenR, err := e.register("px_minlen_"+n, 16, statMinInit)
		if err != nil {
			return 0, err
		}
		lastR, err := e.register("px_last_"+n, 32, 0)
		if err != nil {
			return 0, err
		}
		cntR, err := e.register("px_cnt_"+n, 32, 0)
		if err != nil {
			return 0, err
		}
		maxIPDR, err := e.register("px_maxipd_"+n, 16, 0)
		if err != nil {
			return 0, err
		}
		minIPDR, err := e.register("px_minipd_"+n, 16, statMinInit)
		if err != nil {
			return 0, err
		}
		last := e.layout.MustAdd("px_last_"+n, 32)
		cntd := e.layout.MustAdd("px_cntd_"+n, 32)
		delta := e.layout.MustAdd("px_delta_"+n, 32)
		bkt := e.layout.MustAdd("px_bkt_"+n, 8)
		bktMax := e.layout.MustAdd("px_bktmax_"+n, 16)
		bktMin := e.layout.MustAdd("px_bktmin_"+n, 16)

		mine := &pisa.Gate{Field: dir, Op: pisa.GateEQ, Value: int32(d)}
		other := &pisa.Gate{Field: dir, Op: pisa.GateEQ, Value: int32(1 - d)}

		// Stage 1: this direction's per-packet tracker RMWs. The RMW
		// results are the post-update running stats, exactly what the
		// window readout must report for the updating direction.
		e.prog.Place(1, &pisa.Table{
			Name: "px_upd_len_" + n, Kind: pisa.MatchNone, DefaultData: []int32{}, Gate: mine,
			Action: []pisa.Op{
				{Kind: pisa.OpRegMax, Reg: maxLenR, Dst: maxLen[d], A: e.slot, B: lenF},
				{Kind: pisa.OpRegMin, Reg: minLenR, Dst: minLen[d], A: e.slot, B: lenF},
				{Kind: pisa.OpRegExch, Reg: lastR, Dst: last, A: e.slot, B: ts},
				{Kind: pisa.OpRegAdd, Reg: cntR, Dst: cntd, A: e.slot, B: e.one},
				{Kind: pisa.OpSub, Dst: delta, A: ts, B: last},
			},
		})
		// Stage 2: the opposite direction loads this direction's
		// trackers (its only access this packet), so the readout sees
		// both directions regardless of the firing packet's direction.
		e.prog.Place(2, &pisa.Table{
			Name: "px_load_" + n, Kind: pisa.MatchNone, DefaultData: []int32{}, Gate: other,
			Action: []pisa.Op{
				{Kind: pisa.OpRegLoad, Reg: maxLenR, Dst: maxLen[d], A: e.slot},
				{Kind: pisa.OpRegLoad, Reg: minLenR, Dst: minLen[d], A: e.slot},
				{Kind: pisa.OpRegLoad, Reg: maxIPDR, Dst: maxIPD[d], A: e.slot},
				{Kind: pisa.OpRegLoad, Reg: minIPDR, Dst: minIPD[d], A: e.slot},
			},
		})
		// Stage 2 (parallel): IPD range table for this direction. Its
		// action also neutralises the bucket on the direction's first
		// packet — max sees 0, min sees the sentinel, so neither RMW
		// moves its tracker (the host computes no IPD for it either).
		e.bucketTable("px_ipd_bucket_"+n, 2, delta, 32,
			func(v uint64) int { return netsim.IPDBucket(v) }, mine, bkt,
			pisa.Op{Kind: pisa.OpMove, Dst: bktMax, A: bkt},
			pisa.Op{Kind: pisa.OpMove, Dst: bktMin, A: bkt},
			pisa.Op{Kind: pisa.OpSelEQI, Dst: bktMax, A: cntd, Imm: 1, B: e.zero},
			pisa.Op{Kind: pisa.OpSelEQI, Dst: bktMin, A: cntd, Imm: 1, B: init},
		)
		// Stage 3: IPD tracker RMWs.
		e.prog.Place(3, &pisa.Table{
			Name: "px_upd_ipd_" + n, Kind: pisa.MatchNone, DefaultData: []int32{}, Gate: mine,
			Action: []pisa.Op{
				{Kind: pisa.OpRegMax, Reg: maxIPDR, Dst: maxIPD[d], A: e.slot, B: bktMax},
				{Kind: pisa.OpRegMin, Reg: minIPDR, Dst: minIPD[d], A: e.slot, B: bktMin},
			},
		})
	}

	// Stage 4: window-boundary readout in netsim.StatFeatureNames
	// order, mapping still-initial min trackers to 0 (unseen
	// direction / no IPD yet), then fire.
	src := []pisa.FieldID{maxLen[0], minLen[0], maxLen[1], minLen[1],
		maxIPD[0], minIPD[0], maxIPD[1], minIPD[1]}
	fixup := map[int]bool{1: true, 3: true, 5: true, 7: true}
	var ops []pisa.Op
	for j, f := range src {
		ops = append(ops, pisa.Op{Kind: pisa.OpMove, Dst: em.InFields[j], A: f})
		if fixup[j] {
			ops = append(ops, pisa.Op{Kind: pisa.OpSelEQI,
				Dst: em.InFields[j], A: em.InFields[j], Imm: statMinInit, B: e.zero})
		}
	}
	ops = append(ops, pisa.Op{Kind: pisa.OpSet, Dst: e.fire, Imm: 1})
	e.prog.Place(4, &pisa.Table{
		Name: "px_window_fire", Kind: pisa.MatchNone, DefaultData: []int32{},
		Gate:   &pisa.Gate{Field: e.pos, Op: pisa.GateEQ, Value: int32(e.spec.Window - 1)},
		Action: ops,
	})
	return 5, nil
}

// emitPayload builds the payload-model prelude: position bookkeeping,
// the fire trigger, and (for the +IPD variant) the per-packet IPD
// bucket written into the final in-field. The payload bytes themselves
// are engine-written PHV inputs, and the per-packet index banking is
// appended by the model's window phase via the Extraction handles.
// The bookkeeping tables touch no in-fields, so the plain payload
// machine overlaps the encoder's own stages and costs none: the
// prelude shares stage 0, the fire trigger stage 1.
func (e *extractEmitter) emitPayload(em *Emitted) (int, error) {
	stages := 0
	if e.spec.Kind == ExtractPayloadIPD {
		if len(em.InFields) < 2 {
			return 0, fmt.Errorf("core: payload+ipd extraction needs at least 2 in-fields")
		}
		ts := e.layout.MustAdd("px_ts", 32)
		e.ext.Meta.Fields = append(append([]pisa.FieldID{}, em.InFields[:len(em.InFields)-1]...), ts)
		delta, err := e.ipdPrelude(ts)
		if err != nil {
			return 0, err
		}
		// The IPD bucket lands in the last in-field, so the encoder's
		// tables must wait for it: this variant does shift the groups.
		e.bucketTable("px_ipd_bucket", 1, delta, 32,
			func(v uint64) int { return netsim.IPDBucket(v) }, nil, em.InFields[len(em.InFields)-1])
		stages = 2
	} else {
		e.ext.Meta.Fields = append([]pisa.FieldID{}, em.InFields...)
		if err := e.prelude(nil); err != nil {
			return 0, err
		}
	}
	e.prog.Place(1, &pisa.Table{
		Name: "px_window_fire", Kind: pisa.MatchNone, DefaultData: []int32{},
		Gate:   &pisa.Gate{Field: e.pos, Op: pisa.GateEQ, Value: int32(e.spec.Window - 1)},
		Action: []pisa.Op{{Kind: pisa.OpSet, Dst: e.fire, Imm: 1}},
	})
	return stages, nil
}

// bucketEntries prefix-expands a monotone saturating bucket function
// into ternary entries over a width-bit key: consecutive range coding,
// exactly what the hardware's range tables store. The function is
// probed value by value until it reaches its saturated maximum (both
// netsim bucket scales saturate within 17 bits), so the rules are
// bit-identical to the host extractor by construction.
func bucketEntries(width int, f func(uint64) int) []pisa.Entry {
	domainTop := uint64(1)<<width - 1
	var entries []pisa.Entry
	lo := uint64(0)
	cur := f(0)
	for v := uint64(1); ; v++ {
		if v > domainTop {
			entries = appendPrefixCover(entries, lo, domainTop, width, int32(cur))
			return entries
		}
		b := f(v)
		if b == cur {
			continue
		}
		entries = appendPrefixCover(entries, lo, v-1, width, int32(cur))
		lo, cur = v, b
		if b >= 255 {
			// Saturated: one final run to the top of the domain.
			entries = appendPrefixCover(entries, lo, domainTop, width, int32(cur))
			return entries
		}
	}
}

// appendPrefixCover appends prefix-mask ternary entries covering the
// inclusive key range [lo, hi].
func appendPrefixCover(entries []pisa.Entry, lo, hi uint64, width int, data int32) []pisa.Entry {
	wm := uint64(1)<<width - 1
	for lo <= hi {
		// Largest power-of-two block aligned at lo that fits in the
		// remaining range.
		sz := lo & -lo
		if lo == 0 {
			sz = wm + 1
		}
		for sz > hi-lo+1 {
			sz >>= 1
		}
		entries = append(entries, pisa.Entry{
			Key:  []uint32{uint32(lo)},
			Mask: []uint32{uint32(wm &^ (sz - 1))},
			Data: []int32{data},
		})
		lo += sz
		if lo == 0 {
			break // wrapped past the top of the domain
		}
	}
	return entries
}
