package core

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// matchBuckets simulates a first-match ternary scan over the prefix
// entries, the reference semantics of the emitted range tables.
func matchBuckets(entries []pisa.Entry, key uint32, width int) (int32, bool) {
	wm := uint32(1)<<width - 1
	if width >= 32 {
		wm = ^uint32(0)
	}
	k := key & wm
	for i := range entries {
		if k&entries[i].Mask[0] == entries[i].Key[0] {
			return entries[i].Data[0], true
		}
	}
	return 0, false
}

// TestBucketEntriesMatchHost checks the prefix-expanded range tables
// against the host bucket functions over boundaries and random keys —
// the bit-identity the whole per-packet path rests on.
func TestBucketEntriesMatchHost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	lenEntries := bucketEntries(16, func(v uint64) int { return netsim.LenBucket(int(v)) })
	for _, k := range []uint32{0, 1, 5, 6, 7, 1499, 1500, 1529, 1530, 1531, 40000, 65535} {
		got, ok := matchBuckets(lenEntries, k, 16)
		if !ok || got != int32(netsim.LenBucket(int(k))) {
			t.Fatalf("len bucket(%d) = %d (hit %v), host %d", k, got, ok, netsim.LenBucket(int(k)))
		}
	}
	for i := 0; i < 5000; i++ {
		k := uint32(rng.Intn(1 << 16))
		got, ok := matchBuckets(lenEntries, k, 16)
		if !ok || got != int32(netsim.LenBucket(int(k))) {
			t.Fatalf("len bucket(%d) = %d (hit %v), host %d", k, got, ok, netsim.LenBucket(int(k)))
		}
	}

	ipdEntries := bucketEntries(32, func(v uint64) int { return netsim.IPDBucket(v) })
	checks := []uint32{0, 1, 2, 3, 100, 62000, 63000, 70000, 1 << 20, 1 << 31, ^uint32(0)}
	for i := 0; i < 5000; i++ {
		checks = append(checks, rng.Uint32()>>uint(rng.Intn(20)))
	}
	for _, k := range checks {
		got, ok := matchBuckets(ipdEntries, k, 32)
		if !ok || got != int32(netsim.IPDBucket(uint64(k))) {
			t.Fatalf("ipd bucket(%d) = %d (hit %v), host %d", k, got, ok, netsim.IPDBucket(uint64(k)))
		}
	}
}

// TestExtractPayloadIPDMachine drives the payload+IPD machine directly:
// a toy program whose in-fields are two payload bytes plus the
// extraction-computed IPD bucket, fired every packet (window 1), must
// report exactly the host's flow-level IPD buckets — including the
// first-packet-of-flow zero and state shared per register slot.
func TestExtractPayloadIPDMachine(t *testing.T) {
	layout := &pisa.Layout{}
	prog := pisa.NewProgram("toy", layout, pisa.Tofino2)
	em := &Emitted{}
	for _, n := range []string{"in0", "in1", "in_ipd"} {
		em.InFields = append(em.InFields, layout.MustAdd(n, 8))
	}
	spec := ExtractSpec{Kind: ExtractPayloadIPD, Window: 1, Flows: 16}
	if _, err := emitExtraction(prog, layout, em, spec, 0); err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(em.Extract.Meta.Fields); got != 3 {
		t.Fatalf("meta fields = %d, want 3 (2 payload + ts)", got)
	}

	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		eng := pisa.NewChainEngineMode([]*pisa.Program{prog}, nil, nil, em.InFields, em.InFields[2], 2, mode)
		eng.ConfigurePackets(em.Extract.Meta)
		prog.ResetState()

		// Two interleaved flows (distinct slots) with known timestamps.
		type pkt struct {
			hash    uint32
			ts      uint32
			p0, p1  int32
			wantBkt int32
		}
		var pkts []pkt
		last := map[uint32]uint32{}
		seen := map[uint32]bool{}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 64; i++ {
			hash := uint32(1 + rng.Intn(2)) // slots 1 and 2
			ts := uint32(i * 137)
			want := int32(0)
			if seen[hash] {
				want = int32(netsim.IPDBucket(uint64(ts - last[hash])))
			}
			last[hash], seen[hash] = ts, true
			pkts = append(pkts, pkt{hash: hash, ts: ts,
				p0: int32(rng.Intn(256)), p1: int32(rng.Intn(256)), wantBkt: want})
		}
		jobs := make([]pisa.PacketIn, len(pkts))
		for i, p := range pkts {
			jobs[i] = pisa.PacketIn{Hash: p.hash, Fields: []int32{p.p0, p.p1, int32(p.ts)}}
		}
		res := eng.RunPackets(jobs)
		eng.Close()
		if len(res) != len(pkts) {
			t.Fatalf("[%v] window 1 should fire every packet: %d fires for %d packets", mode, len(res), len(pkts))
		}
		for i, r := range res {
			if r.Outs[0] != pkts[i].p0 || r.Outs[1] != pkts[i].p1 {
				t.Fatalf("[%v] packet %d payload (%d,%d), want (%d,%d)",
					mode, i, r.Outs[0], r.Outs[1], pkts[i].p0, pkts[i].p1)
			}
			if r.Outs[2] != pkts[i].wantBkt {
				t.Fatalf("[%v] packet %d ipd bucket %d, want %d", mode, i, r.Outs[2], pkts[i].wantBkt)
			}
		}
	}
}

// TestExtractSpecValidation pins the spec guards: non-power-of-two
// windows are rejected, flow counts round up to powers of two, and the
// in-field arity is checked per machine.
func TestExtractSpecValidation(t *testing.T) {
	layout := &pisa.Layout{}
	prog := pisa.NewProgram("bad", layout, pisa.Tofino2)
	em := &Emitted{InFields: []pisa.FieldID{layout.MustAdd("x", 8)}}
	if _, err := emitExtraction(prog, layout, em, ExtractSpec{Kind: ExtractSeq, Window: 6}, 0); err == nil {
		t.Fatal("window 6 accepted")
	}
	if _, err := emitExtraction(prog, layout, em, ExtractSpec{Kind: ExtractSeq, Window: 8}, 0); err == nil {
		t.Fatal("seq machine with 1 in-field accepted")
	}
	// Idle-timeout eviction needs the timestamp-exchanging preludes:
	// the stats machine's cumulative trackers cannot restart within one
	// RMW, and the plain payload machine consumes no timestamp.
	for _, kind := range []ExtractKind{ExtractStats, ExtractPayload} {
		if _, err := emitExtraction(prog, layout, em, ExtractSpec{Kind: kind, Window: 8, IdleTimeout: 1000}, 0); err == nil {
			t.Fatalf("%s machine with idle timeout accepted", kind)
		}
	}

	layout2 := &pisa.Layout{}
	prog2 := pisa.NewProgram("ok", layout2, pisa.Tofino2)
	em2 := &Emitted{}
	for i := 0; i < 16; i++ {
		em2.InFields = append(em2.InFields, layout2.MustAdd(fieldName16(i), 8))
	}
	if _, err := emitExtraction(prog2, layout2, em2, ExtractSpec{Kind: ExtractSeq, Window: 8, Flows: 100}, 0); err != nil {
		t.Fatal(err)
	}
	if got := em2.Extract.Spec.Flows; got != 128 {
		t.Fatalf("flows rounded to %d, want 128", got)
	}
	for _, r := range prog2.Registers {
		if r.Size != 128 {
			t.Fatalf("register %q sized %d, want 128", r.Name, r.Size)
		}
	}
	if err := prog2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func fieldName16(i int) string {
	return "f" + string(rune('a'+i))
}
