package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// compileToy builds a compiled feed-forward artefact for target tests.
func compileToy(t *testing.T, seed int64) (*Compiled, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, xs, _ := trainToyNet(rng, 8, 3)
	prog, err := Lower("toy", net, 8, LowerConfig{MaxSegDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(prog)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	comp, err := BuildTables(fused, calib, CompileConfig{TreeDepth: 5, InBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	return comp, rng
}

func TestTargetRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"tofino", "tofino-multipipe", "smartnic", "p4"} {
		tgt, ok := LookupTarget(name)
		if !ok {
			t.Fatalf("built-in target %q not registered (have %v)", name, TargetNames())
		}
		if tgt.Name() != name {
			t.Fatalf("target %q reports name %q", name, tgt.Name())
		}
		if tgt.Capacity().Stages == 0 {
			t.Fatalf("target %q has zero capacity", name)
		}
	}
	// A SmartNIC-style profile is a one-struct addition.
	RegisterTarget(&SinglePipe{Label: "test-fpga", Cap: pisa.Capacity{
		Stages: 64, SRAMBitsPerStage: 1 << 20, TCAMBitsPerStage: 1 << 16,
		BusBits: 512, PHVBits: 4096}})
	if _, ok := LookupTarget("test-fpga"); !ok {
		t.Fatal("custom target not registered")
	}
}

func TestDefaultTargetIsTofinoSingle(t *testing.T) {
	d := DefaultTarget()
	if d.Name() != "tofino" || d.Capacity() != pisa.Tofino2 {
		t.Fatalf("default target = %q %+v", d.Name(), d.Capacity())
	}
}

// TestTofinoSingleMatchesDefaultEmit proves the Target API did not
// change the default emission: nil-target Emit and the explicit
// TofinoSingle backend produce identical programs.
func TestTofinoSingleMatchesDefaultEmit(t *testing.T) {
	comp, rng := compileToy(t, 40)
	emDefault, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	emSingle, err := Emit(comp, EmitOptions{Argmax: true, Target: TofinoSingle()})
	if err != nil {
		t.Fatal(err)
	}
	if emDefault.Target != "tofino" || emSingle.Target != "tofino" {
		t.Fatalf("targets = %q / %q", emDefault.Target, emSingle.Target)
	}
	if len(emDefault.More) != 0 || len(emSingle.More) != 0 {
		t.Fatal("single-pipe emissions must not chain pipes")
	}
	if emDefault.Prog.Summary() != emSingle.Prog.Summary() {
		t.Fatal("default and TofinoSingle emissions differ")
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]int32, 8)
		for j := range x {
			x[j] = int32(rng.Intn(40))
		}
		c1, _ := emDefault.RunSwitch(x)
		c2, _ := emSingle.RunSwitch(x)
		if c1 != c2 {
			t.Fatalf("trial %d: class %d vs %d", trial, c1, c2)
		}
	}
}

// TestMultiPipeSplitsAndMatchesHost forces a feed-forward program over
// the per-pipe stage budget, asserts it splits at a group boundary
// across bridged pipes, and proves both sequential RunSwitch and the
// batched Engine replay classify bit-identically to host fixed-point
// inference.
func TestMultiPipeSplitsAndMatchesHost(t *testing.T) {
	comp, rng := compileToy(t, 41)
	single, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the per-pipe budget below the single-pipe footprint so the
	// program must overflow and split.
	cap := pisa.Tofino2
	cap.Stages = single.Stages - 1
	mp := &MultiPipe{Label: "tofino-multipipe", Cap: cap, Pipes: 4}
	em, err := mp.EmitCompiled(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(em.More) == 0 {
		t.Fatalf("expected a multi-pipe split (single needs %d stages, budget %d)", single.Stages, cap.Stages)
	}
	if len(em.Bridges) != len(em.More) {
		t.Fatalf("bridges = %d, pipes = %d", len(em.Bridges), 1+len(em.More))
	}
	for _, p := range em.Programs() {
		if len(p.Stages) > cap.Stages {
			t.Fatalf("pipe %q exceeds budget: %d > %d", p.Name, len(p.Stages), cap.Stages)
		}
	}
	if err := em.Validate(); err != nil {
		t.Fatal(err)
	}
	if em.Stages <= single.Stages-1 {
		t.Fatalf("split emission reports %d stages, single was %d", em.Stages, single.Stages)
	}

	var batch [][]int32
	for trial := 0; trial < 200; trial++ {
		x := make([]int32, 8)
		for j := range x {
			x[j] = int32(rng.Intn(40))
		}
		batch = append(batch, x)
		hostClass := comp.Classify(x)
		hostOut := comp.Infer(x)
		swClass, swOut := em.RunSwitch(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("trial %d: out[%d] switch %d host %d", trial, j, swOut[j], hostOut[j])
			}
		}
		if swClass != hostClass {
			t.Fatalf("trial %d: class switch %d host %d", trial, swClass, hostClass)
		}
	}
	// Batched chain replay must agree too, in both execution modes, and
	// the compiled plan must match the interpreter output-for-output.
	jobs := BatchJobs(batch)
	for _, mode := range []pisa.ExecMode{pisa.ExecCompiled, pisa.ExecInterpret} {
		eng := em.NewEngineMode(4, mode)
		res := eng.RunBatch(jobs)
		for i, r := range res {
			if r.Class != comp.Classify(batch[i]) {
				t.Fatalf("%v engine packet %d: class %d host %d", mode, i, r.Class, comp.Classify(batch[i]))
			}
			for j, o := range comp.Infer(batch[i]) {
				if r.Outs[j] != o {
					t.Fatalf("%v engine packet %d: out[%d] %d host %d", mode, i, j, r.Outs[j], o)
				}
			}
		}
		eng.Close()
	}
}

// TestMultiPipeFitsStaysSingle: a program inside the budget emits one
// pipe, identical to the single-pipe backend.
func TestMultiPipeFitsStaysSingle(t *testing.T) {
	comp, _ := compileToy(t, 42)
	em, err := Emit(comp, EmitOptions{Argmax: true, Target: TofinoMultiPipe()})
	if err != nil {
		t.Fatal(err)
	}
	if len(em.More) != 0 {
		t.Fatalf("fitting program split into %d pipes", 1+len(em.More))
	}
	single, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if em.Prog.Summary() != single.Prog.Summary() {
		t.Fatal("multi-pipe emission of a fitting program differs from single-pipe")
	}
}

// TestMultiPipeBudgetSweep emits the same program under every per-pipe
// stage budget from just-below-single down to tiny. Every budget that
// emits must stay within its per-pipe bound and classify bit-identically
// to host inference — this sweeps across split positions, including the
// case where the last group exactly fills a pipe and the argmax stage
// spills onto its own pipe.
func TestMultiPipeBudgetSweep(t *testing.T) {
	comp, rng := compileToy(t, 47)
	single, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	var inputs [][]int32
	for i := 0; i < 30; i++ {
		x := make([]int32, 8)
		for j := range x {
			x[j] = int32(rng.Intn(40))
		}
		inputs = append(inputs, x)
	}
	emitted := 0
	for budget := single.Stages - 1; budget >= 1; budget-- {
		cap := pisa.Tofino2
		cap.Stages = budget
		mp := &MultiPipe{Label: "sweep", Cap: cap, Pipes: 32}
		em, err := mp.EmitCompiled(comp, EmitOptions{Argmax: true})
		if err != nil {
			continue // budget below a single group's span: correctly refused
		}
		emitted++
		for _, p := range em.Programs() {
			if len(p.Stages) > budget {
				t.Fatalf("budget %d: pipe %q uses %d stages", budget, p.Name, len(p.Stages))
			}
		}
		for _, x := range inputs {
			if cls, _ := em.RunSwitch(x); cls != comp.Classify(x) {
				t.Fatalf("budget %d (%d pipes): class mismatch", budget, len(em.Programs()))
			}
		}
	}
	if emitted == 0 {
		t.Fatal("no budget in the sweep produced an emission")
	}
}

func TestMultiPipeRejectsOverflow(t *testing.T) {
	comp, _ := compileToy(t, 43)
	cap := pisa.Tofino2
	cap.Stages = 2 // every pipe can hold at most a sliver
	mp := &MultiPipe{Label: "tiny", Cap: cap, Pipes: 2}
	if _, err := mp.EmitCompiled(comp, EmitOptions{Argmax: true}); err == nil {
		t.Fatal("want error when the program cannot fit the pipe limit")
	}
}

// TestMultiPipeRNNSplitsAndMatchesHost splits the chained-index RNN at
// a time-step boundary, bridging the hidden index and the unconsumed
// input tail, and checks bit-identical classification.
func TestMultiPipeRNNSplitsAndMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	spec, xs, _ := trainToyRNN(t, rng, 6, 3)
	calib := make([][]float64, xs.R)
	for i := range calib {
		calib[i] = xs.Row(i)
	}
	c, err := CompileRNN("rnn", spec, calib)
	if err != nil {
		t.Fatal(err)
	}
	cap := pisa.Tofino2
	cap.Stages = 8 // single-pipe needs 1 + 2T + 2 = 15
	mp := &MultiPipe{Label: "tofino-multipipe", Cap: cap, Pipes: 4}
	em, err := mp.EmitRNN(c, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(em.More) == 0 {
		t.Fatal("expected the RNN to split across pipes")
	}
	for _, p := range em.Programs() {
		if len(p.Stages) > cap.Stages {
			t.Fatalf("pipe %q exceeds budget: %d > %d", p.Name, len(p.Stages), cap.Stages)
		}
	}
	var batch [][]int32
	for trial := 0; trial < 200; trial++ {
		x := make([]int32, 12)
		for j := range x {
			x[j] = int32(rng.Intn(64))
		}
		batch = append(batch, x)
		swClass, swOut := em.RunSwitch(x)
		hostOut := c.Infer(x)
		for j := range hostOut {
			if hostOut[j] != swOut[j] {
				t.Fatalf("trial %d: logits[%d] switch %d host %d", trial, j, swOut[j], hostOut[j])
			}
		}
		if swClass != c.Classify(x) {
			t.Fatalf("trial %d: class switch %d host %d", trial, swClass, c.Classify(x))
		}
	}
	res := em.NewEngine(3).RunBatch(BatchJobs(batch))
	for i, r := range res {
		if r.Class != c.Classify(batch[i]) {
			t.Fatalf("engine packet %d: class %d host %d", i, r.Class, c.Classify(batch[i]))
		}
	}
}

func TestSmartNICTargetEmits(t *testing.T) {
	comp, rng := compileToy(t, 45)
	em, err := Emit(comp, EmitOptions{Argmax: true, Target: SmartNICTarget()})
	if err != nil {
		t.Fatal(err)
	}
	if em.Target != "smartnic" || em.Prog.Cap != pisa.SmartNIC {
		t.Fatalf("emitted target %q cap %+v", em.Target, em.Prog.Cap)
	}
	// Equivalence is target independent: the same tables run anywhere.
	for trial := 0; trial < 50; trial++ {
		x := make([]int32, 8)
		for j := range x {
			x[j] = int32(rng.Intn(40))
		}
		if cls, _ := em.RunSwitch(x); cls != comp.Classify(x) {
			t.Fatalf("trial %d: smartnic class mismatch", trial)
		}
	}
}

func TestP4PrinterAttachesSource(t *testing.T) {
	comp, _ := compileToy(t, 46)
	em, err := Emit(comp, EmitOptions{Argmax: true, Target: NewP4Printer(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if em.Target != "p4" {
		t.Fatalf("target = %q", em.Target)
	}
	for _, want := range []string{"#include <tna.p4>", "struct metadata_t", "table argmax", "apply {"} {
		if !strings.Contains(em.Source, want) {
			t.Fatalf("P4 source missing %q:\n%s", want, em.Source[:min(len(em.Source), 600)])
		}
	}
	// Printing must not change the program itself.
	plain, err := Emit(comp, EmitOptions{Argmax: true})
	if err != nil {
		t.Fatal(err)
	}
	if em.Prog.Summary() != plain.Prog.Summary() {
		t.Fatal("P4 printer altered the emitted program")
	}
}
