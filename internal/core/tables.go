package core

import (
	"fmt"
	"math"

	"github.com/pegasus-idp/pegasus/internal/fixed"
	"github.com/pegasus-idp/pegasus/internal/fuzzy"
)

// ReduceKind is the aggregation applied after a plan group's Maps.
type ReduceKind int

// Reductions.
const (
	ReduceNone ReduceKind = iota
	ReduceSum
	ReduceMax
)

// planGroup is one Partition→Map→Reduce unit extracted from a fused
// program: the compilation grain (each table group becomes one or two
// pipeline stages).
type planGroup struct {
	groups [][]int
	fns    []Fn
	reduce ReduceKind
}

// planOf chunks a fused program into plan groups, validating that the
// step sequence has the canonical [Partition?, Map?, Reduce?]+ shape.
func planOf(p *Program) ([]planGroup, error) {
	shapes := bundleShape(p.InDim, p.Steps)
	var plan []planGroup
	i := 0
	for i < len(p.Steps) {
		start := i
		var part [][]int
		if pt, ok := p.Steps[i].(*Partition); ok {
			part = pt.Groups
			i++
		}
		var fns []Fn
		if i < len(p.Steps) {
			if m, ok := p.Steps[i].(*Map); ok {
				fns = m.Fns
				i++
			}
		}
		red := ReduceNone
		if i < len(p.Steps) {
			switch p.Steps[i].(type) {
			case SumReduce:
				red = ReduceSum
				i++
			case MaxReduce:
				red = ReduceMax
				i++
			}
		}
		if i == start {
			return nil, fmt.Errorf("core: cannot plan step %d (%s)", i, p.Steps[i])
		}
		if part == nil {
			part = identityGroups(shapes[start])
		}
		if fns == nil {
			fns = make([]Fn, len(part))
			for k, g := range part {
				fns[k] = &identityFn{dim: len(g)}
			}
		}
		if len(fns) != len(part) {
			return nil, fmt.Errorf("core: group at step %d has %d segments but %d fns", start, len(part), len(fns))
		}
		plan = append(plan, planGroup{groups: part, fns: fns, reduce: red})
	}
	return plan, nil
}

func identityGroups(widths []int) [][]int {
	var groups [][]int
	off := 0
	for _, w := range widths {
		g := make([]int, w)
		for i := range g {
			g[i] = off + i
		}
		groups = append(groups, g)
		off += w
	}
	return groups
}

// SegMode is how one segment's Map executes on the dataplane.
type SegMode int

// Segment execution modes.
const (
	// SegFuzzy: TCAM range match → fuzzy index → SRAM mapping table.
	SegFuzzy SegMode = iota
	// SegEmbed: per-position exact-match SRAM tables (Embedding Lookup).
	SegEmbed
	// SegIdentity: pure field routing, no table.
	SegIdentity
)

// ExecSeg is one compiled segment.
type ExecSeg struct {
	Mode SegMode
	Cols []int // columns of the group input feeding this segment

	// Fuzzy mode.
	Tree  *fuzzy.Tree
	Table [][]int32 // fuzzy index → quantised output vector
	// tl caches the two-level CRC tables built at emission time.
	tl *fuzzy.TwoLevel

	// Embed mode: one table per position; EmbTab[t][v] is the quantised
	// embedding row for index v at position t.
	EmbTab [][][]int32
	EmbDim int
	OutDim int
}

// ExecGroup is one compiled plan group.
type ExecGroup struct {
	Segs    []ExecSeg
	Reduce  ReduceKind
	InFrac  int8
	OutFrac int8
	// KeyBits is the match width of this group's input fields.
	KeyBits uint
	// SignedIn records whether this group's inputs are signed (inner
	// activations) or unsigned (raw features); it selects the TCAM
	// offset domain.
	SignedIn bool
	// RShift is the arithmetic right-shift applied after the reduction,
	// renormalising SumReduce accumulators back into the ActBits
	// activation range (§4.4: quantisation happens at the SumReduce
	// boundary). 0 when no renormalisation is needed.
	RShift uint8
}

// Compiled is a Pegasus model lowered to mapping tables: it supports
// host-side fixed-point inference (bit-identical to the emitted switch
// program) and PISA emission.
type Compiled struct {
	Name    string
	InDim   int
	Groups  []ExecGroup
	OutDim  int
	OutFrac int8
	Cfg     CompileConfig
}

// CompileConfig tunes table generation.
type CompileConfig struct {
	// TreeDepth is the fuzzy clustering depth (leaves = 2^depth).
	TreeDepth int
	// OutBits is the fixed-point activation width stored in tables.
	OutBits uint8
	// InBits is the input field width of the first group (8 for byte
	// features, 16 for flow statistics).
	InBits uint
	// AccBits is the accumulator / intermediate field width.
	AccBits uint
	// InFrac is the fixed-point position of the raw inputs (0: integers).
	InFrac int8
	// ActBits is the activation key width between groups: accumulators
	// are right-shifted until they fit this signed width, so inner TCAM
	// keys stay narrow (the paper's 8-bit fixed-point activations).
	ActBits uint
	// FinalDepth, when non-zero, overrides TreeDepth for the program's
	// last group. CNN-L uses it to force the per-packet index width
	// (4-bit fuzzy indices stored per flow, Figure 7).
	FinalDepth int
	// MaxCalib caps the calibration points per tree.
	MaxCalib int
}

func (c *CompileConfig) defaults() {
	if c.TreeDepth == 0 {
		c.TreeDepth = 5
	}
	if c.OutBits == 0 {
		c.OutBits = 8
	}
	if c.InBits == 0 {
		c.InBits = 8
	}
	if c.AccBits == 0 {
		c.AccBits = 16
	}
	if c.ActBits == 0 {
		c.ActBits = 8
	}
	if c.MaxCalib == 0 {
		c.MaxCalib = 4096
	}
}

// BuildTables compiles a fused program into mapping tables using the
// calibration inputs (integer-valued feature vectors), implementing
// §4.2's parameter learning and §4.4's adaptive fixed-point
// quantisation: trees and centroids are learned from the training set,
// each fused operator is evaluated at full precision on the centroids,
// and only the outputs are quantised.
func BuildTables(p *Program, calib [][]float64, cfg CompileConfig) (*Compiled, error) {
	cfg.defaults()
	if len(calib) == 0 {
		return nil, fmt.Errorf("core: no calibration data for %q", p.Name)
	}
	plan, err := planOf(p)
	if err != nil {
		return nil, err
	}
	// Current per-sample integer vectors.
	cur := make([][]int32, len(calib))
	for i, x := range calib {
		if len(x) != p.InDim {
			return nil, fmt.Errorf("core: calibration sample %d has dim %d, want %d", i, len(x), p.InDim)
		}
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		cur[i] = v
	}
	comp := &Compiled{Name: p.Name, InDim: p.InDim, Cfg: cfg}
	inFrac := cfg.InFrac
	keyBits := cfg.InBits
	signed := false // raw features are unsigned integers
	for gi, pg := range plan {
		eg := ExecGroup{Reduce: pg.reduce, InFrac: inFrac, KeyBits: keyBits, SignedIn: signed}
		// Classify segments.
		identOnly := true
		for _, fn := range pg.fns {
			if _, ok := fn.(*identityFn); !ok {
				identOnly = false
			}
		}
		if identOnly {
			// Pure routing / reduction group: no quantisation change.
			for si, g := range pg.groups {
				eg.Segs = append(eg.Segs, ExecSeg{Mode: SegIdentity, Cols: g, OutDim: pg.fns[si].OutDim()})
			}
			eg.OutFrac = inFrac
			comp.Groups = append(comp.Groups, eg)
			cur = evalGroupInt(&eg, cur)
			continue
		}
		// Table segments: first gather all full-precision outputs to fit
		// one shared output quantiser for the group (SumReduce needs a
		// common fixed-point position).
		scale := math.Ldexp(1, -int(inFrac))
		var allOuts []float64
		type segPrep struct {
			tree *fuzzy.Tree
			fn   Fn
			emb  *EmbedFn
			outs [][]float64 // per leaf (fuzzy) – full precision
		}
		preps := make([]segPrep, len(pg.groups))
		for si, g := range pg.groups {
			fn := pg.fns[si]
			if _, ok := fn.(*identityFn); ok {
				return nil, fmt.Errorf("core: group %d mixes identity and table segments", gi)
			}
			if emb, ok := fn.(*EmbedFn); ok {
				preps[si] = segPrep{emb: emb, fn: fn}
				for r := 0; r < emb.Table.R; r++ {
					allOuts = append(allOuts, emb.Table.Row(r)...)
				}
				continue
			}
			// Fuzzy: cluster observed segment inputs, scoring splits by
			// the SSE of the operator's full-precision outputs (the
			// stability property of §4.2) and storing the leaf-mean
			// output in the mapping table.
			pts := make([][]float64, 0, min(len(cur), cfg.MaxCalib))
			stride := max(1, len(cur)/cfg.MaxCalib)
			for i := 0; i < len(cur); i += stride {
				seg := make([]float64, len(g))
				for k, c := range g {
					seg[k] = float64(cur[i][c])
				}
				pts = append(pts, seg)
			}
			tgts := make([][]float64, len(pts))
			for i, p := range pts {
				xf := make([]float64, len(p))
				for k, v := range p {
					xf[k] = v * scale
				}
				tgts[i] = fn.Eval(xf)
			}
			depth := cfg.TreeDepth
			if cfg.FinalDepth > 0 && gi == len(plan)-1 {
				depth = cfg.FinalDepth
			}
			tree, err := fuzzy.BuildDepthTargets(pts, tgts, depth)
			if err != nil {
				return nil, fmt.Errorf("core: group %d seg %d: %v", gi, si, err)
			}
			// Leaf table entry: mean output over the leaf's calibration
			// points (the L2-optimal representative); empty leaves fall
			// back to evaluating the input centroid.
			outDim := fn.OutDim()
			outs := make([][]float64, tree.NumLeaves())
			counts := make([]int, tree.NumLeaves())
			for li := range outs {
				outs[li] = make([]float64, outDim)
			}
			for i, p := range pts {
				li := tree.Assign(p)
				counts[li]++
				for j, v := range tgts[i] {
					outs[li][j] += v
				}
			}
			for li := range outs {
				if counts[li] > 0 {
					for j := range outs[li] {
						outs[li][j] /= float64(counts[li])
					}
				} else {
					cent := tree.Centroid(li)
					xf := make([]float64, len(cent))
					for k, v := range cent {
						xf[k] = v * scale
					}
					outs[li] = fn.Eval(xf)
				}
				allOuts = append(allOuts, outs[li]...)
			}
			preps[si] = segPrep{tree: tree, fn: fn, outs: outs}
		}
		outQ, err := fixed.Fit(cfg.OutBits, allOuts)
		if err != nil {
			return nil, fmt.Errorf("core: group %d output quantiser: %v", gi, err)
		}
		eg.OutFrac = outQ.Frac
		for si, g := range pg.groups {
			pr := preps[si]
			if pr.emb != nil {
				emb := pr.emb
				tabs := make([][][]int32, emb.T)
				rows := make([][]int32, emb.Table.R)
				for r := 0; r < emb.Table.R; r++ {
					rows[r] = outQ.QuantizeVec(emb.Table.Row(r), nil)
				}
				for t := 0; t < emb.T; t++ {
					tabs[t] = rows // shared across positions
				}
				eg.Segs = append(eg.Segs, ExecSeg{Mode: SegEmbed, Cols: g, EmbTab: tabs,
					EmbDim: emb.Table.C, OutDim: emb.OutDim()})
				continue
			}
			tab := make([][]int32, len(pr.outs))
			for li, y := range pr.outs {
				tab[li] = outQ.QuantizeVec(y, nil)
			}
			eg.Segs = append(eg.Segs, ExecSeg{Mode: SegFuzzy, Cols: g, Tree: pr.tree,
				Table: tab, OutDim: pr.fn.OutDim()})
		}
		if pg.reduce == ReduceSum {
			// Renormalise the accumulated activations back into the
			// ActBits range before they become the next group's key.
			probe := evalGroupInt(&eg, cur)
			maxAbs := int32(0)
			for _, v := range probe {
				for _, e := range v {
					if e > maxAbs {
						maxAbs = e
					}
					if -e > maxAbs {
						maxAbs = -e
					}
				}
			}
			hi := int32(1)<<(cfg.ActBits-1) - 1
			for maxAbs>>eg.RShift > hi {
				eg.RShift++
			}
			eg.OutFrac -= int8(eg.RShift)
		}
		comp.Groups = append(comp.Groups, eg)
		cur = evalGroupInt(&eg, cur)
		inFrac = eg.OutFrac
		keyBits = cfg.ActBits
		signed = true // table outputs are signed fixed-point values
	}
	comp.OutFrac = comp.Groups[len(comp.Groups)-1].OutFrac
	if len(cur) > 0 {
		comp.OutDim = len(cur[0])
	}
	return comp, nil
}

// evalGroupInt runs every sample through one compiled group.
func evalGroupInt(eg *ExecGroup, cur [][]int32) [][]int32 {
	next := make([][]int32, len(cur))
	for i, v := range cur {
		next[i] = eg.Eval(v)
	}
	return next
}

// Eval runs one integer vector through the group, matching switch
// semantics exactly (saturating adds, integer max).
func (eg *ExecGroup) Eval(x []int32) []int32 {
	outs := make([][]int32, len(eg.Segs))
	for si := range eg.Segs {
		outs[si] = eg.Segs[si].eval(x)
	}
	switch eg.Reduce {
	case ReduceNone:
		n := 0
		for _, o := range outs {
			n += len(o)
		}
		flat := make([]int32, 0, n)
		for _, o := range outs {
			flat = append(flat, o...)
		}
		return flat
	case ReduceSum:
		acc := append([]int32(nil), outs[0]...)
		for _, o := range outs[1:] {
			fixed.SatAddVec(acc, o)
		}
		if eg.RShift > 0 {
			for j := range acc {
				acc[j] >>= eg.RShift
			}
		}
		return acc
	case ReduceMax:
		acc := append([]int32(nil), outs[0]...)
		for _, o := range outs[1:] {
			for j, v := range o {
				if v > acc[j] {
					acc[j] = v
				}
			}
		}
		return acc
	}
	panic("core: unknown reduce kind")
}

func (s *ExecSeg) eval(x []int32) []int32 {
	switch s.Mode {
	case SegIdentity:
		out := make([]int32, len(s.Cols))
		for k, c := range s.Cols {
			out[k] = x[c]
		}
		return out
	case SegEmbed:
		out := make([]int32, 0, s.OutDim)
		for t, c := range s.Cols {
			idx := int(x[c])
			if idx < 0 {
				idx = 0
			}
			if idx >= len(s.EmbTab[t]) {
				idx = len(s.EmbTab[t]) - 1
			}
			out = append(out, s.EmbTab[t][idx]...)
		}
		return out
	case SegFuzzy:
		seg := make([]float64, len(s.Cols))
		for k, c := range s.Cols {
			seg[k] = float64(x[c])
		}
		leaf := s.Tree.Assign(seg)
		return s.Table[leaf]
	}
	panic("core: unknown segment mode")
}

// Infer runs fixed-point inference on an integer-valued input vector,
// returning the final integer outputs (logits or reconstruction).
func (c *Compiled) Infer(x []int32) []int32 {
	cur := x
	for gi := range c.Groups {
		cur = c.Groups[gi].Eval(cur)
	}
	return cur
}

// InferFloats accepts float feature vectors (integer-valued) and returns
// dequantised outputs.
func (c *Compiled) InferFloats(x []float64) []float64 {
	v := make([]int32, len(x))
	for i, f := range x {
		v[i] = int32(math.RoundToEven(f))
	}
	out := c.Infer(v)
	scale := math.Ldexp(1, -int(c.OutFrac))
	res := make([]float64, len(out))
	for i, o := range out {
		res[i] = float64(o) * scale
	}
	return res
}

// Classify returns the argmax of Infer — the class the switch would
// write into its result field. Ties keep the later index, matching the
// compare-select chain the emitter generates.
func (c *Compiled) Classify(x []int32) int {
	out := c.Infer(x)
	best, bi := out[0], 0
	for i, v := range out[1:] {
		if v >= best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Lookups returns table lookups per inference: the scalability metric
// Primitive Fusion optimises.
func (c *Compiled) Lookups() int {
	n := 0
	for _, g := range c.Groups {
		for _, s := range g.Segs {
			switch s.Mode {
			case SegFuzzy:
				n += 2 // TCAM fuzzy index + SRAM mapping table
			case SegEmbed:
				n += len(s.Cols)
			}
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
