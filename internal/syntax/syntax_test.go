package syntax

import (
	"math/rand"

	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// figure6 is the program of Figure 6 (with all 8 input fields written
// out).
const figure6 = `
struct InputVec_t {
    bit<8>  input_dim0;
    bit<8>  input_dim1;
    bit<8>  input_dim2;
    bit<8>  input_dim3;
    bit<8>  input_dim4;
    bit<8>  input_dim5;
    bit<8>  input_dim6;
    bit<8>  input_dim7;
}; /* Definition of OutputVec_t is eliminated. */
struct ig_metadata_t {
    InputVec_t input_vec;
    OutputVec_t output_vec;
};
ig_metadata_t meta;
meta.output_vec = SumReduce(
    Map(
        Partition(meta.input_vec, dim = 2, stride = 2),
        clustering_depth = 4,
        CNN_dimension = 3,
        CNN_kernel = cnn_kernel,
        CNN_stride = cnn_stride
    )
);
`

func TestFigure6Parses(t *testing.T) {
	spec, err := Parse(figure6)
	if err != nil {
		t.Fatal(err)
	}
	if spec.InputDims() != 8 {
		t.Fatalf("input dims = %d, want 8", spec.InputDims())
	}
	if spec.InputFields[0].Bits != 8 || spec.InputFields[7].Name != "input_dim7" {
		t.Fatalf("fields = %+v", spec.InputFields)
	}
	if spec.Pipeline.Kind != "SumReduce" || spec.Pipeline.Arg.Kind != "Map" ||
		spec.Pipeline.Arg.Arg.Kind != "Partition" {
		t.Fatal("pipeline nesting wrong")
	}
	if spec.Pipeline.Arg.Arg.Params["dim"] != 2 || spec.Pipeline.Arg.Arg.Params["stride"] != 2 {
		t.Fatal("partition params")
	}
	if ClusteringDepth(spec) != 4 {
		t.Fatalf("clustering depth = %d", ClusteringDepth(spec))
	}
	if spec.Pipeline.Arg.Symbols["CNN_kernel"] != "cnn_kernel" {
		t.Fatal("kernel symbol")
	}
}

func TestFigure6Translates(t *testing.T) {
	spec, err := Parse(figure6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	kernel := tensor.New(3, 2).Randn(rng, 1)
	prog, err := Translate(spec, map[string]*tensor.Mat{"cnn_kernel": kernel})
	if err != nil {
		t.Fatal(err)
	}
	if prog.InDim != 8 {
		t.Fatalf("program in dim = %d", prog.InDim)
	}
	// Output: 4 segments × affine(2→3) summed = 3 values.
	out := prog.Eval([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if len(out) != 3 {
		t.Fatalf("out dims = %d, want 3", len(out))
	}
	// Semantics: sum over segments of kernel×segment.
	want := make([]float64, 3)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for s := 0; s < 4; s++ {
		for r := 0; r < 3; r++ {
			want[r] += kernel.At(r, 0)*x[2*s] + kernel.At(r, 1)*x[2*s+1]
		}
	}
	for j := range want {
		if diff := out[j] - want[j]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("out[%d] = %g, want %g", j, out[j], want[j])
		}
	}
}

func TestTranslateBuildsTables(t *testing.T) {
	spec, err := Parse(figure6)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Translate(spec, nil) // random kernel
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	calib := make([][]float64, 200)
	for i := range calib {
		row := make([]float64, 8)
		for j := range row {
			row[j] = float64(rng.Intn(256))
		}
		calib[i] = row
	}
	comp, err := core.BuildTables(core.Fuse(prog), calib, core.CompileConfig{
		TreeDepth: ClusteringDepth(spec), InBits: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	em, err := core.Emit(comp, core.EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if em.Prog.Resources().TCAMBits == 0 {
		t.Fatal("no TCAM emitted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"struct InputVec_t { bit<8> a; };", // no pipeline
		"meta.output_vec = Map(Partition(meta.input_vec));", // no struct
		"meta.output_vec = Bogus(x);",
		"struct InputVec_t { bit<8> a; }; meta.output_vec = SumReduce(Map(Partition(meta.input_vec, dim = 0)));",
	}
	for i, src := range cases {
		spec, err := Parse(src)
		if err == nil {
			_, err = Translate(spec, nil)
		}
		if err == nil {
			t.Fatalf("case %d: expected an error", i)
		}
	}
}

func TestLexerSkipsComments(t *testing.T) {
	toks, err := lex("/* hi */ struct // line\n x")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].text != "struct" || toks[1].text != "x" {
		t.Fatalf("toks = %+v", toks)
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Fatal("want unterminated comment error")
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("want bad character error")
	}
}
