package syntax

import (
	"fmt"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Translate turns a parsed Spec into a primitive program. Symbolic
// weights (e.g. CNN_kernel = cnn_kernel) are resolved from the symbols
// map: each named symbol must supply an out×in weight matrix; missing
// symbols are filled with seeded random weights so that structural
// compilation (resource estimation, pipeline shape) works before a
// trained model exists — exactly how the paper's workflow separates the
// P4 skeleton from table population.
func Translate(spec *Spec, symbols map[string]*tensor.Mat) (*core.Program, error) {
	if spec.Pipeline == nil {
		return nil, fmt.Errorf("syntax: empty pipeline")
	}
	inDim := spec.InputDims()
	// Walk the expression inside-out: Partition → Map → SumReduce.
	var partition, mapExpr, reduceExpr *Expr
	cur := spec.Pipeline
	for cur != nil {
		switch cur.Kind {
		case "SumReduce":
			reduceExpr = cur
		case "Map":
			mapExpr = cur
		case "Partition":
			partition = cur
		}
		cur = cur.Arg
	}
	if partition == nil || mapExpr == nil {
		return nil, fmt.Errorf("syntax: pipeline must contain Partition and Map")
	}
	dim := partition.Params["dim"]
	stride := partition.Params["stride"]
	if dim <= 0 {
		return nil, fmt.Errorf("syntax: Partition needs dim > 0")
	}
	if stride <= 0 {
		stride = dim
	}
	var groups [][]int
	for start := 0; start+dim <= inDim; start += stride {
		g := make([]int, dim)
		for i := range g {
			g[i] = start + i
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("syntax: Partition(dim=%d, stride=%d) yields no segments over %d inputs", dim, stride, inDim)
	}

	// Map: the CNN parameters define the per-segment affine. The
	// translator computes the output dimension (CNN_dimension) and the
	// kernel shape automatically.
	outDim := mapExpr.Params["CNN_dimension"]
	if outDim == 0 {
		outDim = 1
	}
	kernel := symbols[mapExpr.Symbols["CNN_kernel"]]
	if kernel == nil {
		rng := rand.New(rand.NewSource(42))
		kernel = tensor.New(outDim, dim).Randn(rng, 0.5)
	}
	if kernel.R != outDim || kernel.C != dim {
		return nil, fmt.Errorf("syntax: kernel is %dx%d, want %dx%d", kernel.R, kernel.C, outDim, dim)
	}
	fns := make([]core.Fn, len(groups))
	for i := range groups {
		aff, err := core.NewAffine(kernel.Clone(), nil)
		if err != nil {
			return nil, err
		}
		fns[i] = aff
	}
	steps := []core.Step{
		&core.Partition{Groups: groups},
		&core.Map{Fns: fns},
	}
	if reduceExpr != nil {
		steps = append(steps, core.SumReduce{})
	}
	prog := &core.Program{Name: "pegasus-syntax", InDim: inDim, Steps: steps}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ClusteringDepth returns the Map's clustering_depth parameter
// (defaulting to 4, the Figure 6 value).
func ClusteringDepth(spec *Spec) int {
	cur := spec.Pipeline
	for cur != nil {
		if cur.Kind == "Map" {
			if d, ok := cur.Params["clustering_depth"]; ok && d > 0 {
				return d
			}
		}
		cur = cur.Arg
	}
	return 4
}
