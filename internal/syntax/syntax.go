// Package syntax implements Pegasus Syntax (§6.2, Figure 6): the
// high-level language for declaring dataplane DL programs, and the
// translator that turns it into a primitive program for the compiler.
// The translator handles the dimensional bookkeeping ("the translator
// automatically calculates the output dimensions") so developers only
// declare the Partition/Map/SumReduce structure.
//
// Supported grammar (the Figure 6 subset):
//
//	struct InputVec_t { bit<8> input_dim0; ... };
//	struct ig_metadata_t { InputVec_t input_vec; ... };
//	ig_metadata_t meta;
//	meta.output_vec = SumReduce(
//	    Map(
//	        Partition(meta.input_vec, dim = 2, stride = 2),
//	        clustering_depth = 4,
//	        CNN_dimension = 3,
//	        CNN_kernel = cnn_kernel,
//	        CNN_stride = cnn_stride
//	    )
//	);
package syntax

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Spec is the parsed program.
type Spec struct {
	// InputFields are the declared input vector fields, in order.
	InputFields []Field
	// Pipeline is the primitive expression tree, outermost first.
	Pipeline *Expr
}

// Field is one declared struct field.
type Field struct {
	Name string
	Bits int
}

// Expr is one primitive call in the pipeline.
type Expr struct {
	// Kind is "SumReduce", "Map" or "Partition".
	Kind string
	// Arg is the nested primitive (nil for Partition).
	Arg *Expr
	// Input names the partitioned vector (Partition only).
	Input string
	// Params holds the keyword arguments (dim, stride,
	// clustering_depth, CNN_dimension, CNN_stride, ...).
	Params map[string]int
	// Symbols holds keyword arguments that reference host-side symbols
	// (e.g. CNN_kernel = cnn_kernel).
	Symbols map[string]string
}

// InputDims returns the declared input width.
func (s *Spec) InputDims() int { return len(s.InputFields) }

// token kinds.
type tok struct {
	kind string // ident, num, punct
	text string
}

func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case strings.HasPrefix(src[i:], "/*"):
			end := strings.Index(src[i:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("syntax: unterminated comment")
			}
			i += end + 2
		case strings.HasPrefix(src[i:], "//"):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, tok{"ident", src[i:j]})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, tok{"num", src[i:j]})
			i = j
		case strings.ContainsRune("{}()<>;,=.", rune(c)):
			toks = append(toks, tok{"punct", string(c)})
			i++
		default:
			return nil, fmt.Errorf("syntax: unexpected character %q", c)
		}
	}
	return toks, nil
}

// parser holds the token stream.
type parser struct {
	toks []tok
	pos  int
}

func (p *parser) peek() tok {
	if p.pos >= len(p.toks) {
		return tok{"eof", ""}
	}
	return p.toks[p.pos]
}

func (p *parser) next() tok {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind, text string) (tok, error) {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("syntax: expected %s %q, got %q", kind, text, t.text)
	}
	return t, nil
}

// Parse parses a Pegasus Syntax source into a Spec.
func Parse(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec := &Spec{}
	for p.peek().kind != "eof" {
		t := p.peek()
		switch {
		case t.kind == "ident" && t.text == "struct":
			name, fields, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(name, "InputVec") {
				spec.InputFields = fields
			}
		case t.kind == "ident" && strings.Contains(t.text, "metadata") || t.kind == "ident" && t.text == "ig_metadata_t":
			// "ig_metadata_t meta;" declaration: skip to semicolon.
			p.skipStatement()
		case t.kind == "ident" && t.text == "meta":
			expr, err := p.parseAssignment()
			if err != nil {
				return nil, err
			}
			spec.Pipeline = expr
		default:
			p.skipStatement()
		}
	}
	if spec.Pipeline == nil {
		return nil, fmt.Errorf("syntax: no pipeline assignment (meta.output_vec = ...)")
	}
	if len(spec.InputFields) == 0 {
		return nil, fmt.Errorf("syntax: no InputVec_t struct declared")
	}
	return spec, nil
}

func (p *parser) skipStatement() {
	for {
		t := p.next()
		if t.kind == "eof" || (t.kind == "punct" && t.text == ";") {
			return
		}
	}
}

func (p *parser) parseStruct() (string, []Field, error) {
	if _, err := p.expect("ident", "struct"); err != nil {
		return "", nil, err
	}
	nameTok, err := p.expect("ident", "")
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect("punct", "{"); err != nil {
		return "", nil, err
	}
	var fields []Field
	for {
		t := p.peek()
		if t.kind == "punct" && t.text == "}" {
			p.next()
			break
		}
		// bit<8> name; — non-bit fields (nested struct types) are
		// skipped to the semicolon.
		if t.kind == "ident" && t.text != "bit" {
			p.skipStatement()
			continue
		}
		if _, err := p.expect("ident", "bit"); err != nil {
			return "", nil, err
		}
		if _, err := p.expect("punct", "<"); err != nil {
			return "", nil, err
		}
		numTok, err := p.expect("num", "")
		if err != nil {
			return "", nil, err
		}
		bits, _ := strconv.Atoi(numTok.text)
		if _, err := p.expect("punct", ">"); err != nil {
			return "", nil, err
		}
		fieldTok, err := p.expect("ident", "")
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect("punct", ";"); err != nil {
			return "", nil, err
		}
		fields = append(fields, Field{Name: fieldTok.text, Bits: bits})
	}
	// trailing semicolon after struct
	if p.peek().kind == "punct" && p.peek().text == ";" {
		p.next()
	}
	return nameTok.text, fields, nil
}

// parseAssignment parses "meta.output_vec = EXPR ;".
func (p *parser) parseAssignment() (*Expr, error) {
	if _, err := p.expect("ident", "meta"); err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", "."); err != nil {
		return nil, err
	}
	if _, err := p.expect("ident", ""); err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", "="); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", ";"); err != nil {
		return nil, err
	}
	return expr, nil
}

func (p *parser) parseExpr() (*Expr, error) {
	nameTok, err := p.expect("ident", "")
	if err != nil {
		return nil, err
	}
	kind := nameTok.text
	switch kind {
	case "SumReduce", "Map", "Partition":
	default:
		return nil, fmt.Errorf("syntax: unknown primitive %q", kind)
	}
	if _, err := p.expect("punct", "("); err != nil {
		return nil, err
	}
	e := &Expr{Kind: kind, Params: map[string]int{}, Symbols: map[string]string{}}
	first := true
	for {
		t := p.peek()
		if t.kind == "punct" && t.text == ")" {
			p.next()
			break
		}
		if !first {
			if _, err := p.expect("punct", ","); err != nil {
				return nil, err
			}
		}
		first = false
		t = p.peek()
		switch {
		case t.kind == "ident" && (t.text == "SumReduce" || t.text == "Map" || t.text == "Partition"):
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e.Arg = arg
		case t.kind == "ident" && t.text == "meta":
			// meta.input_vec positional input
			p.next()
			if _, err := p.expect("punct", "."); err != nil {
				return nil, err
			}
			fieldTok, err := p.expect("ident", "")
			if err != nil {
				return nil, err
			}
			e.Input = fieldTok.text
		case t.kind == "ident":
			// keyword = value
			key := p.next().text
			if _, err := p.expect("punct", "="); err != nil {
				return nil, err
			}
			val := p.next()
			switch val.kind {
			case "num":
				n, _ := strconv.Atoi(val.text)
				e.Params[key] = n
			case "ident":
				e.Symbols[key] = val.text
			default:
				return nil, fmt.Errorf("syntax: bad value for %s", key)
			}
		default:
			return nil, fmt.Errorf("syntax: unexpected token %q in %s(...)", t.text, kind)
		}
	}
	return e, nil
}
