package trafficgen

import (
	"runtime"
	"sync"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// statelessProg builds a small stateless program: out = k + 7,
// class = k & 3. Stateless, so it shards to any worker count.
func statelessProg(t *testing.T) (*pisa.Program, pisa.FieldID, pisa.FieldID, pisa.FieldID) {
	t.Helper()
	var l pisa.Layout
	k := l.MustAdd("k", 16)
	out := l.MustAdd("out", 32)
	class := l.MustAdd("class", 8)
	prog := pisa.NewProgram("stateless", &l, pisa.Tofino2)
	prog.Place(0, &pisa.Table{
		Name: "compute", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAddImm, Dst: out, A: k, Imm: 7},
			{Kind: pisa.OpAndImm, Dst: class, A: k, Imm: 3},
		},
	})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, k, out, class
}

// counterProg builds a small stateful per-packet program: a per-flow
// packet counter banked in a register, firing every 4th packet of a
// flow with out = len + count. The register size is a power of two, so
// the program shards to any worker count dividing it.
func counterProg(t *testing.T, slots int) (*pisa.Program, pisa.PacketMeta, pisa.FieldID, pisa.FieldID) {
	t.Helper()
	var l pisa.Layout
	hash := l.MustAdd("hash", 32)
	length := l.MustAdd("len", 16)
	ts := l.MustAdd("ts", 32)
	slot := l.MustAdd("slot", 32)
	cnt := l.MustAdd("cnt", 32)
	phase := l.MustAdd("phase", 8)
	zero := l.MustAdd("zero", 8) // never written: the counter's no-restart predicate
	one := l.MustAdd("one", 8)
	fire := l.MustAdd("fire", 8)
	out := l.MustAdd("out", 32)
	prog := pisa.NewProgram("counter", &l, pisa.Tofino2)
	reg, err := pisa.NewRegister("pktcnt", 32, slots)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &pisa.Table{
		Name: "count", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: slot, A: hash, Imm: int32(slots - 1)},
			{Kind: pisa.OpRegCntRestart, Reg: ri, Dst: cnt, A: slot, B: zero},
		},
	})
	// Second stage: derive fire from the counter and the output value.
	prog.Place(1, &pisa.Table{
		Name: "fire", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{
			{Kind: pisa.OpAndImm, Dst: phase, A: cnt, Imm: 3},
			{Kind: pisa.OpSet, Dst: one, Imm: 1},
			{Kind: pisa.OpSelEQI, Dst: fire, A: phase, Imm: 0, B: one},
			{Kind: pisa.OpAdd, Dst: out, A: length, B: cnt},
		},
	})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, pisa.PacketMeta{Hash: hash, Fields: []pisa.FieldID{length, ts}, Fire: fire}, out, fire
}

// workerCounts returns the satellite's sweep: 1, 2, 4, NumCPU
// (deduplicated).
func workerCounts() []int {
	counts := []int{1, 2, 4}
	n := runtime.NumCPU()
	have := false
	for _, c := range counts {
		if c == n {
			have = true
		}
	}
	if !have {
		counts = append(counts, n)
	}
	return counts
}

// TestRunStreamInOrderUnderLoad drives RunStream with a sustained
// generator feed at 1/2/4/NumCPU workers and checks results arrive in
// submission order with the right values.
func TestRunStreamInOrderUnderLoad(t *testing.T) {
	const total = 20000
	tmpl := [][]int32{{3}, {57}, {129}, {200}}
	for _, workers := range workerCounts() {
		prog, k, out, class := statelessProg(t)
		eng := pisa.NewEngine(prog, []pisa.FieldID{k}, []pisa.FieldID{out}, class, workers)
		gen := NewJobGen(Config{Seed: int64(workers), Flows: 1 << 12}, tmpl)
		jobs := gen.Jobs(total)

		in := make(chan pisa.Job, 256)
		outc := make(chan pisa.Result, 256)
		go func() {
			for _, j := range jobs {
				in <- j
			}
			close(in)
		}()
		done := make(chan int, 1)
		go func() { done <- eng.RunStream(in, outc) }()
		i := 0
		for r := range outc {
			if i >= total {
				t.Fatalf("workers=%d: more results than jobs", workers)
			}
			wantOut := jobs[i].In[0] + 7
			wantClass := int(jobs[i].In[0] & 3)
			if r.Outs[0] != wantOut || r.Class != wantClass {
				t.Fatalf("workers=%d: result %d = (out %d, class %d), want (%d, %d) — out-of-order or wrong",
					workers, i, r.Outs[0], r.Class, wantOut, wantClass)
			}
			i++
		}
		if n := <-done; n != total || i != total {
			t.Fatalf("workers=%d: stream processed %d, emitted %d, want %d", workers, n, i, total)
		}
		eng.Close()
	}
}

// TestRunPacketStreamMatchesSequential replays a sustained raw-packet
// stream through the stateful counter program at several worker counts
// and requires the fired inferences to be bit-identical (index, class,
// outputs) to a sequential interpreter replay of the same stream.
func TestRunPacketStreamMatchesSequential(t *testing.T) {
	const slots, total = 64, 20000
	gen := NewPacketGen(Config{Seed: 99, Flows: 256}, LayoutSeq, 0)
	pkts := gen.Packets(total)

	// Sequential interpreter reference on a fresh program.
	refProg, refMeta, refOut, _ := counterProg(t, slots)
	phv := refProg.Layout.NewPHV()
	type fireRec struct {
		pkt int
		out int32
	}
	var want []fireRec
	for i, p := range pkts {
		phv.Reset()
		phv.Set(refMeta.Hash, int32(p.Hash))
		for d, f := range refMeta.Fields {
			phv.Set(f, p.Fields[d])
		}
		refProg.Process(phv)
		if phv.Get(refMeta.Fire) != 0 {
			want = append(want, fireRec{pkt: i, out: phv.Get(refOut)})
		}
	}
	if len(want) == 0 {
		t.Fatal("reference replay fired nothing — test program broken")
	}

	for _, workers := range workerCounts() {
		prog, meta, out, _ := counterProg(t, slots)
		eng := pisa.NewEngine(prog, nil, []pisa.FieldID{out}, out, workers)
		eng.ConfigurePackets(meta)
		in := make(chan pisa.PacketIn, 256)
		outc := make(chan pisa.PacketResult, 256)
		go func() {
			for _, p := range pkts {
				in <- p
			}
			close(in)
		}()
		var packets, fires int
		done := make(chan struct{})
		go func() {
			packets, fires = eng.RunPacketStream(in, outc)
			close(done)
		}()
		i := 0
		for r := range outc {
			if i >= len(want) {
				t.Fatalf("workers=%d: more fires than the sequential replay", workers)
			}
			if r.Pkt != want[i].pkt || r.Outs[0] != want[i].out {
				t.Fatalf("workers=%d fire %d: (pkt %d, out %d), sequential (pkt %d, out %d)",
					workers, i, r.Pkt, r.Outs[0], want[i].pkt, want[i].out)
			}
			i++
		}
		<-done
		if packets != total || fires != len(want) || i != len(want) {
			t.Fatalf("workers=%d: packets=%d fires=%d emitted=%d, want %d/%d/%d",
				workers, packets, fires, i, total, len(want), len(want))
		}
		eng.Close()
	}
}

// TestTwoStreamingSessionsShareScheduler runs two engine sessions
// streaming concurrently on one shared budget-2 scheduler: both must
// finish, stay in order, and both must actually be served (fairness:
// neither session's stream starves).
func TestTwoStreamingSessionsShareScheduler(t *testing.T) {
	const total = 30000
	s := pisa.NewScheduler(2)
	defer s.Close()
	tmpl := [][]int32{{5}, {90}, {177}}

	type session struct {
		eng  *pisa.Engine
		jobs []pisa.Job
	}
	var sessions []session
	for si := 0; si < 2; si++ {
		prog, k, out, class := statelessProg(t)
		eng := s.NewChainEngine("stream", []*pisa.Program{prog}, nil,
			[]pisa.FieldID{k}, []pisa.FieldID{out}, class, 1, pisa.ExecCompiled)
		defer eng.Close()
		gen := NewJobGen(Config{Seed: int64(100 + si), Flows: 1 << 10}, tmpl)
		sessions = append(sessions, session{eng: eng, jobs: gen.Jobs(total)})
	}

	var wg sync.WaitGroup
	for _, ses := range sessions {
		wg.Add(1)
		go func(ses session) {
			defer wg.Done()
			in := make(chan pisa.Job, 256)
			outc := make(chan pisa.Result, 256)
			go func() {
				for _, j := range ses.jobs {
					in <- j
				}
				close(in)
			}()
			go ses.eng.RunStream(in, outc)
			i := 0
			for r := range outc {
				if want := ses.jobs[i].In[0] + 7; r.Outs[0] != want {
					t.Errorf("session result %d = %d, want %d", i, r.Outs[0], want)
					break
				}
				i++
			}
			if i != total {
				t.Errorf("session emitted %d results, want %d", i, total)
			}
		}(ses)
	}
	wg.Wait()
	for _, ses := range sessions {
		if st := ses.eng.Stats(); st.Packets != total {
			t.Fatalf("session served %d packets, want %d", st.Packets, total)
		}
	}
}
