package trafficgen

import (
	"testing"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// TestJobGenDeterministic pins reproducibility: equal seeds yield
// bit-identical streams, different seeds diverge.
func TestJobGenDeterministic(t *testing.T) {
	tmpl := [][]int32{{1, 2, 3}, {4, 5, 6}}
	cfg := Config{Seed: 7, Flows: 64}
	a := NewJobGen(cfg, tmpl)
	b := NewJobGen(cfg, tmpl)
	c := NewJobGen(Config{Seed: 8, Flows: 64}, tmpl)
	ja := make([]pisa.Job, 500)
	jb := make([]pisa.Job, 500)
	jc := make([]pisa.Job, 500)
	diverged := false
	for round := 0; round < 3; round++ {
		a.Fill(ja)
		b.Fill(jb)
		c.Fill(jc)
		for i := range ja {
			if ja[i].Hash != jb[i].Hash {
				t.Fatalf("round %d job %d: same seed, hashes %d vs %d", round, i, ja[i].Hash, jb[i].Hash)
			}
			for d := range ja[i].In {
				if ja[i].In[d] != jb[i].In[d] {
					t.Fatalf("round %d job %d field %d: same seed, values differ", round, i, d)
				}
			}
			if ja[i].Hash != jc[i].Hash {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical hash streams")
	}
}

// TestJobGenFlowChurn checks the steady-state population mechanics:
// many distinct flows appear over a long stream (arrivals replace
// retired flows), and every job's input is one of the templates.
func TestJobGenFlowChurn(t *testing.T) {
	tmpl := [][]int32{{9, 8}, {7, 6}}
	gen := NewJobGen(Config{
		Seed:        3,
		Flows:       32,
		FlowPackets: Sample{Dist: DistFixed, Mean: 4},
	}, tmpl)
	jobs := make([]pisa.Job, 1<<12)
	seen := map[uint32]bool{}
	gen.Fill(jobs)
	for _, j := range jobs {
		seen[j.Hash] = true
		if !((j.In[0] == 9 && j.In[1] == 8) || (j.In[0] == 7 && j.In[1] == 6)) {
			t.Fatalf("job input %v is not a template", j.In)
		}
	}
	// 4096 packets at 4 packets/flow retire ~1000 flows; far more than
	// the 32-flow population must have appeared.
	if len(seen) < 100 {
		t.Fatalf("only %d distinct flows over %d packets — population not churning", len(seen), len(jobs))
	}
}

// TestSampleMeans sanity-checks the distribution shapes: empirical
// means land near the configured means, and bounds clip.
func TestSampleMeans(t *testing.T) {
	g := newRNG(11)
	for _, tc := range []struct {
		name string
		s    Sample
		tol  float64
	}{
		{"fixed", Sample{Dist: DistFixed, Mean: 5}, 0.001},
		{"uniform", Sample{Dist: DistUniform, Mean: 5}, 0.3},
		{"exp", Sample{Dist: DistExp, Mean: 5}, 0.3},
		{"pareto", Sample{Dist: DistPareto, Mean: 32, Alpha: 1.3, Max: 1 << 20}, 8},
	} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := tc.s.draw(&g)
			if v < 0 {
				t.Fatalf("%s: negative draw %f", tc.name, v)
			}
			sum += v
		}
		mean := sum / n
		if mean < tc.s.Mean-tc.tol || mean > tc.s.Mean+tc.tol {
			t.Errorf("%s: empirical mean %.3f, want %.1f ± %.1f", tc.name, mean, tc.s.Mean, tc.tol)
		}
	}
	bounded := Sample{Dist: DistPareto, Mean: 32, Alpha: 1.3, Max: 100}
	for i := 0; i < 10000; i++ {
		if v := bounded.draw(&g); v > 100 {
			t.Fatalf("bounded draw %f exceeds Max", v)
		}
	}
}

// TestPacketGenLayouts checks each layout's field vector shape and the
// monotone virtual clock.
func TestPacketGenLayouts(t *testing.T) {
	for _, tc := range []struct {
		layout Layout
		width  int
		want   int
	}{
		{LayoutStats, 0, 3},
		{LayoutSeq, 0, 2},
		{LayoutPayload, 6, 6},
		{LayoutPayloadIPD, 6, 6},
	} {
		gen := NewPacketGen(Config{Seed: 5, Flows: 16}, tc.layout, tc.width)
		if gen.Width() != tc.want {
			t.Fatalf("layout %d width = %d, want %d", tc.layout, gen.Width(), tc.want)
		}
		pkts := make([]pisa.PacketIn, 256)
		gen.Fill(pkts)
		var lastTS int32 = -1
		for i, p := range pkts {
			if len(p.Fields) != tc.want {
				t.Fatalf("layout %d packet %d: %d fields, want %d", tc.layout, i, len(p.Fields), tc.want)
			}
			switch tc.layout {
			case LayoutStats:
				if p.Fields[0] != 0 && p.Fields[0] != 1 {
					t.Fatalf("packet %d direction %d", i, p.Fields[0])
				}
				if p.Fields[1] <= 0 || p.Fields[1] > 1500 {
					t.Fatalf("packet %d length %d", i, p.Fields[1])
				}
				if p.Fields[2] <= lastTS {
					t.Fatalf("packet %d timestamp %d not after %d", i, p.Fields[2], lastTS)
				}
				lastTS = p.Fields[2]
			case LayoutSeq:
				if p.Fields[1] <= lastTS {
					t.Fatalf("packet %d timestamp %d not after %d", i, p.Fields[1], lastTS)
				}
				lastTS = p.Fields[1]
			case LayoutPayload, LayoutPayloadIPD:
				for j := 0; j < tc.want-1; j++ {
					if p.Fields[j] < 0 || p.Fields[j] > 255 {
						t.Fatalf("packet %d payload byte %d = %d", i, j, p.Fields[j])
					}
				}
			}
		}
	}
}

// TestFillAllocationFree pins the generator's steady-state cost model:
// after the first Fill sizes the arena, refills allocate nothing.
func TestFillAllocationFree(t *testing.T) {
	gen := NewJobGen(Config{Seed: 1, Flows: 1 << 10}, [][]int32{{1, 2, 3, 4}})
	jobs := make([]pisa.Job, 4096)
	gen.Fill(jobs)
	if n := testing.AllocsPerRun(20, func() { gen.Fill(jobs) }); n > 0 {
		t.Fatalf("JobGen.Fill allocates %.1f times per call in steady state", n)
	}
	pgen := NewPacketGen(Config{Seed: 1, Flows: 1 << 10}, LayoutSeq, 0)
	pkts := make([]pisa.PacketIn, 4096)
	pgen.Fill(pkts)
	if n := testing.AllocsPerRun(20, func() { pgen.Fill(pkts) }); n > 0 {
		t.Fatalf("PacketGen.Fill allocates %.1f times per call in steady state", n)
	}
}
