// Package trafficgen synthesises sustained traffic for the replay
// engine: steady-state streams of feature-window jobs (pisa.Job) or
// raw packets (pisa.PacketIn) drawn from a churning population of
// synthetic flows, with configurable flow-arrival and packet-rate
// distributions.
//
// The committed replay traces are short (hundreds of packets) and a
// benchmark that re-replays them measures batch-overhead amortisation,
// not steady-state throughput — the worker pool drains the trace before
// it ever saturates. The generator instead keeps a fixed population of
// live flows (millions if asked): every emitted packet belongs to a
// uniformly chosen live flow, and a flow whose packet budget is spent
// is replaced by a fresh arrival — so flow arrivals happen at the rate
// packets retire flows, the flow-size distribution shapes the
// elephant/mouse mix, and the stream never ends and never repeats.
//
// Generation is allocation-free in steady state (Fill reuses one
// backing arena per generator) and deterministic for a fixed Config:
// the same seed yields bit-identical streams, so measured runs are
// reproducible. Filling is two orders of magnitude cheaper than
// engine processing, so generator cost does not distort throughput
// measurements.
package trafficgen

import (
	"math"

	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Dist selects the shape of a Sample distribution.
type Dist int

const (
	// DistFixed always draws Mean.
	DistFixed Dist = iota
	// DistUniform draws uniformly from [0, 2·Mean].
	DistUniform
	// DistExp draws exponentially with the given Mean — the classic
	// Poisson inter-arrival model.
	DistExp
	// DistPareto draws a bounded Pareto with tail exponent Alpha and
	// scale chosen so the mean is Mean — heavy-tailed flow sizes (many
	// mice, few elephants), the canonical Internet flow-size model.
	DistPareto
)

// Sample is one configurable distribution: packet gaps, flow sizes.
type Sample struct {
	Dist Dist
	Mean float64
	// Max clips draws (0 = no bound beyond the distribution's own).
	Max float64
	// Alpha is the Pareto tail exponent (DistPareto only; values ≤ 1
	// are lifted to 1.1 so the mean exists).
	Alpha float64
}

// draw samples the distribution.
func (s Sample) draw(g *rng) float64 {
	mean := s.Mean
	if mean <= 0 {
		mean = 1
	}
	var v float64
	switch s.Dist {
	case DistUniform:
		v = 2 * mean * g.f64()
	case DistExp:
		v = -mean * math.Log(1-g.f64())
	case DistPareto:
		a := s.Alpha
		if a <= 1 {
			a = 1.1
		}
		// E[Pareto(xm, a)] = xm·a/(a−1) ⇒ xm matching the target mean.
		xm := mean * (a - 1) / a
		v = xm / math.Pow(1-g.f64(), 1/a)
	default:
		v = mean
	}
	if s.Max > 0 && v > s.Max {
		v = s.Max
	}
	return v
}

// Config shapes a generator's flow population and packet process.
type Config struct {
	// Seed fixes the stream; equal seeds yield bit-identical streams.
	Seed int64
	// Flows is the live-flow population held in steady state (default
	// 1<<16). Each finished flow is replaced by a fresh arrival, so the
	// effective flow-arrival rate is the packet rate divided by the
	// mean flow size.
	Flows int
	// FlowPackets is the packets-per-flow distribution (default
	// bounded Pareto: Alpha 1.3, Mean 32, Max 4096).
	FlowPackets Sample
	// PacketGap is the aggregate inter-packet gap in microseconds,
	// advancing the virtual clock behind emitted timestamps (default
	// exponential, Mean 1µs — a ~1 Mpps aggregate).
	PacketGap Sample
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Flows <= 0 {
		c.Flows = 1 << 16
	}
	if c.FlowPackets.Mean <= 0 {
		c.FlowPackets = Sample{Dist: DistPareto, Mean: 32, Max: 4096, Alpha: 1.3}
	}
	if c.PacketGap.Mean <= 0 {
		c.PacketGap = Sample{Dist: DistExp, Mean: 1}
	}
	return c
}

// rng is a splitmix64 stream — fast, allocation free, and deterministic
// across platforms.
type rng struct{ s uint64 }

func newRNG(seed int64) rng {
	return rng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (g *rng) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// f64 returns a uniform float in [0, 1).
func (g *rng) f64() float64 {
	return float64(g.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (g *rng) intn(n int) int {
	return int(g.next() % uint64(n))
}

// jobFlow is one live flow of a JobGen: its five-tuple hash and how
// many packets it has left before it retires.
type jobFlow struct {
	hash      uint32
	remaining int
	tmpl      int
}

// JobGen produces a sustained stream of feature-window jobs: each job
// carries a live flow's hash (so sharding and register indexing behave
// exactly as with real traffic) and an input vector drawn from the
// given templates — typically the feature windows extracted from a real
// trace, so the match-table hit profile matches real replay.
type JobGen struct {
	cfg       Config
	g         rng
	flows     []jobFlow
	templates [][]int32
	width     int
	arena     []int32
}

// NewJobGen builds a job generator over the template input vectors
// (all must share one width; at least one required).
func NewJobGen(cfg Config, templates [][]int32) *JobGen {
	if len(templates) == 0 {
		panic("trafficgen: JobGen needs at least one template input vector")
	}
	w := len(templates[0])
	for _, t := range templates[1:] {
		if len(t) != w {
			panic("trafficgen: template input vectors must share one width")
		}
	}
	cfg = cfg.withDefaults()
	gen := &JobGen{cfg: cfg, g: newRNG(cfg.Seed), templates: templates, width: w}
	gen.flows = make([]jobFlow, cfg.Flows)
	for i := range gen.flows {
		gen.flows[i] = gen.fresh()
	}
	return gen
}

// fresh draws a new flow arrival.
func (gen *JobGen) fresh() jobFlow {
	n := int(gen.cfg.FlowPackets.draw(&gen.g))
	if n < 1 {
		n = 1
	}
	return jobFlow{
		hash:      uint32(gen.g.next()),
		remaining: n,
		tmpl:      gen.g.intn(len(gen.templates)),
	}
}

// Fill overwrites jobs with the next len(jobs) packets of the stream.
// The Job.In slices point into one arena owned by the generator and
// reused by the NEXT Fill call — matching the engine's one-outstanding-
// batch contract: run the batch, then refill. Steady-state filling
// allocates nothing.
func (gen *JobGen) Fill(jobs []pisa.Job) {
	need := len(jobs) * gen.width
	if cap(gen.arena) < need {
		gen.arena = make([]int32, need)
	}
	arena := gen.arena[:need]
	for i := range jobs {
		fi := gen.g.intn(len(gen.flows))
		f := &gen.flows[fi]
		in := arena[i*gen.width : (i+1)*gen.width : (i+1)*gen.width]
		copy(in, gen.templates[f.tmpl])
		jobs[i] = pisa.Job{Hash: f.hash, In: in}
		if f.remaining--; f.remaining == 0 {
			gen.flows[fi] = gen.fresh()
		}
	}
}

// Jobs returns the next n packets as freshly allocated jobs — for
// feeding streams or tests where batches outlive the next Fill.
func (gen *JobGen) Jobs(n int) []pisa.Job {
	jobs := make([]pisa.Job, n)
	ins := make([]int32, n*gen.width)
	for i := range jobs {
		fi := gen.g.intn(len(gen.flows))
		f := &gen.flows[fi]
		in := ins[i*gen.width : (i+1)*gen.width : (i+1)*gen.width]
		copy(in, gen.templates[f.tmpl])
		jobs[i] = pisa.Job{Hash: f.hash, In: in}
		if f.remaining--; f.remaining == 0 {
			gen.flows[fi] = gen.fresh()
		}
	}
	return jobs
}

// Layout selects the per-packet field vector a PacketGen emits,
// mirroring what models.PacketJobs marshals for each extraction kind.
type Layout int

const (
	// LayoutStats emits [direction, length, timestamp_µs] — the
	// statistics extraction (MLP models).
	LayoutStats Layout = iota
	// LayoutSeq emits [length, timestamp_µs] — the sequence extraction
	// (CNN/RNN models).
	LayoutSeq
	// LayoutPayload emits the first n payload bytes.
	LayoutPayload
	// LayoutPayloadIPD emits n−1 payload bytes plus the timestamp.
	LayoutPayloadIPD
)

// pktFlow is one live flow of a PacketGen: per-flow length scale and
// direction phase in addition to the hash and budget.
type pktFlow struct {
	hash      uint32
	remaining int
	lenBase   int32 // per-flow MTU-ish scale for emitted lengths
	dir       int32 // current direction, flipped pseudo-randomly
}

// PacketGen produces a sustained raw-packet stream for the per-packet
// replay path: flow hashes drive sharding and register slots, lengths
// and directions vary per flow, and timestamps advance a shared virtual
// clock by PacketGap draws — so IPD-derived features see a plausible
// arrival process.
type PacketGen struct {
	cfg    Config
	g      rng
	flows  []pktFlow
	layout Layout
	width  int
	clock  uint32 // virtual microsecond clock (truncated like PacketJobs)
	arena  []int32
}

// NewPacketGen builds a packet generator emitting width fields per
// packet in the given layout. width must match the extraction
// emission's field count (3 for LayoutStats, 2 for LayoutSeq, the
// payload byte count otherwise).
func NewPacketGen(cfg Config, layout Layout, width int) *PacketGen {
	switch layout {
	case LayoutStats:
		width = 3
	case LayoutSeq:
		width = 2
	default:
		if width < 1 {
			panic("trafficgen: payload layout needs a positive field width")
		}
	}
	cfg = cfg.withDefaults()
	gen := &PacketGen{cfg: cfg, g: newRNG(cfg.Seed), layout: layout, width: width}
	gen.flows = make([]pktFlow, cfg.Flows)
	for i := range gen.flows {
		gen.flows[i] = gen.fresh()
	}
	return gen
}

// fresh draws a new flow arrival.
func (gen *PacketGen) fresh() pktFlow {
	n := int(gen.cfg.FlowPackets.draw(&gen.g))
	if n < 1 {
		n = 1
	}
	return pktFlow{
		hash:      uint32(gen.g.next()),
		remaining: n,
		lenBase:   int32(64 + gen.g.intn(1400)),
		dir:       int32(gen.g.intn(2)),
	}
}

// Width returns the per-packet field count.
func (gen *PacketGen) Width() int { return gen.width }

// Fill overwrites pkts with the next len(pkts) packets of the stream.
// Like JobGen.Fill, the Fields slices alias one reused arena: run the
// batch before the next Fill. Steady-state filling allocates nothing.
func (gen *PacketGen) Fill(pkts []pisa.PacketIn) {
	need := len(pkts) * gen.width
	if cap(gen.arena) < need {
		gen.arena = make([]int32, need)
	}
	arena := gen.arena[:need]
	for i := range pkts {
		fi := gen.g.intn(len(gen.flows))
		f := &gen.flows[fi]
		gen.clock += uint32(gen.cfg.PacketGap.draw(&gen.g)) + 1
		// Mostly-bursty direction: flip with probability 1/4.
		if gen.g.next()&3 == 0 {
			f.dir ^= 1
		}
		ln := f.lenBase - int32(gen.g.intn(64))
		fields := arena[i*gen.width : (i+1)*gen.width : (i+1)*gen.width]
		switch gen.layout {
		case LayoutStats:
			fields[0] = f.dir
			fields[1] = ln
			fields[2] = int32(gen.clock)
		case LayoutSeq:
			fields[0] = ln
			fields[1] = int32(gen.clock)
		case LayoutPayload:
			for j := range fields {
				fields[j] = int32(gen.g.next() & 0xff)
			}
		case LayoutPayloadIPD:
			for j := 0; j < gen.width-1; j++ {
				fields[j] = int32(gen.g.next() & 0xff)
			}
			fields[gen.width-1] = int32(gen.clock)
		}
		pkts[i] = pisa.PacketIn{Hash: f.hash, Fields: fields}
		if f.remaining--; f.remaining == 0 {
			gen.flows[fi] = gen.fresh()
		}
	}
}

// Packets returns the next n packets freshly allocated — for feeding
// streams or tests where batches outlive the next Fill.
func (gen *PacketGen) Packets(n int) []pisa.PacketIn {
	pkts := make([]pisa.PacketIn, n)
	saved := gen.arena
	gen.arena = nil
	gen.Fill(pkts)
	gen.arena = saved
	return pkts
}
