// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic substrate: Table 2 (headline), Table
// 5 (accuracy), Table 6 (hardware resources), Figure 7 (per-flow
// storage), Figure 8 (ROC/AUC), and Figure 9 (fuzzy vs full precision,
// throughput). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/pegasus-idp/pegasus/internal/baselines/bos"
	"github.com/pegasus-idp/pegasus/internal/baselines/leo"
	"github.com/pegasus-idp/pegasus/internal/baselines/n3ic"
	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/models"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
	"github.com/pegasus-idp/pegasus/internal/trafficgen"
)

// Config scales the experiment suite.
type Config struct {
	// FlowsPerClass controls dataset size (default 60; the quick preset
	// used by benchmarks).
	FlowsPerClass int
	// Epochs scales every model's training budget (1.0 = default).
	Epochs float64
	Seed   int64
	// MeasureMS is the wall-time window per throughput measurement
	// (default 300; CI smoke mode shrinks it).
	MeasureMS int
	// EngineJSON, when set, is where the "engine" experiment writes its
	// machine-readable report (BENCH_engine.json).
	EngineJSON string
}

func (c *Config) defaults() {
	if c.FlowsPerClass == 0 {
		c.FlowsPerClass = 60
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.MeasureMS == 0 {
		c.MeasureMS = 300
	}
}

func (c *Config) ep(base int) int {
	n := int(float64(base) * c.Epochs)
	if n < 2 {
		n = 2
	}
	return n
}

// bundle holds everything trained on one dataset.
type bundle struct {
	ds          *datasets.Dataset
	train, test []netsim.Flow
	k           int
	leo         *leo.Model
	n3ic        *n3ic.Model
	bosM        *bos.Model
	mlp         *models.Feedforward
	cnnb        *models.Feedforward
	cnnm        *models.Feedforward
	rnnb        *models.RNNB
	cnnl        *models.CNNL
	ae          *models.AutoEncoder
}

// Suite trains the full model zoo once per dataset and serves every
// experiment from the shared bundles.
type Suite struct {
	Cfg     Config
	bundles map[string]*bundle
}

// NewSuite prepares an empty suite.
func NewSuite(cfg Config) *Suite {
	cfg.defaults()
	return &Suite{Cfg: cfg, bundles: map[string]*bundle{}}
}

// Bundle trains (once) and returns the bundle for a dataset.
func (s *Suite) Bundle(name string) (*bundle, error) {
	if b, ok := s.bundles[name]; ok {
		return b, nil
	}
	ds, ok := datasets.ByName(name, datasets.Config{
		FlowsPerClass: s.Cfg.FlowsPerClass, PacketsPerFlow: 28, Seed: s.Cfg.Seed + 101,
	})
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	train, _, test := ds.Split(s.Cfg.Seed + 7)
	b := &bundle{ds: ds, train: train, test: test, k: ds.NumClasses()}
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 13))
	c := &s.Cfg

	b.leo = leo.New(b.k, 256, rng)
	if err := b.leo.Train(train); err != nil {
		return nil, err
	}
	b.n3ic = n3ic.New(b.k, rng)
	b.n3ic.Train(train, c.ep(60), s.Cfg.Seed)
	b.bosM = bos.New(b.k, rng)
	b.bosM.Train(train, c.ep(60), s.Cfg.Seed)
	b.bosM.Compile()

	b.mlp = models.NewMLPB(b.k, rng)
	b.mlp.Train(train, models.TrainOpts{Epochs: c.ep(60), Seed: s.Cfg.Seed})
	if err := b.mlp.Compile(train); err != nil {
		return nil, err
	}
	b.cnnb = models.NewCNNB(b.k, rng)
	b.cnnb.Train(train, models.TrainOpts{Epochs: c.ep(80), Seed: s.Cfg.Seed})
	if err := b.cnnb.Compile(train); err != nil {
		return nil, err
	}
	b.cnnm = models.NewCNNM(b.k, rng)
	b.cnnm.Train(train, models.TrainOpts{Epochs: c.ep(60), Seed: s.Cfg.Seed})
	if err := b.cnnm.Compile(train); err != nil {
		return nil, err
	}
	if _, err := b.cnnm.Refine(train, core.RefineConfig{Epochs: 6, LR: 0.05}); err != nil {
		return nil, err
	}
	b.rnnb = models.NewRNNB(b.k, rng)
	b.rnnb.Train(train, models.TrainOpts{Epochs: c.ep(60), LR: 0.02, Seed: s.Cfg.Seed})
	if err := b.rnnb.Compile(train); err != nil {
		return nil, err
	}
	b.cnnl = models.NewCNNL(b.k, true, 4, rng)
	b.cnnl.Train(train, models.TrainOpts{Epochs: c.ep(10), LR: 0.01, Seed: s.Cfg.Seed})
	if err := b.cnnl.Compile(train, 2000); err != nil {
		return nil, err
	}
	b.cnnl.Refine(train, 4, 0.05)

	b.ae = models.NewAutoEncoder(b.rnnb.Emb, rng)
	b.ae.Train(train, models.TrainOpts{Epochs: c.ep(60), LR: 0.005, Seed: s.Cfg.Seed})
	if err := b.ae.Compile(train); err != nil {
		return nil, err
	}
	s.bundles[name] = b
	return b, nil
}

// Row is one Table 5 line for one dataset.
type Row struct {
	Method    string
	InputBits int
	ModelKb   float64
	Reports   map[string]metrics.Report
}

// Table5 regenerates the accuracy comparison across all methods and
// datasets.
func (s *Suite) Table5(w io.Writer) error {
	rows := []Row{}
	order := []string{"Leo", "N3IC", "MLP-B", "BoS", "RNN-B", "CNN-B", "CNN-M", "CNN-L"}
	for _, m := range order {
		rows = append(rows, Row{Method: m, Reports: map[string]metrics.Report{}})
	}
	for _, dsName := range datasets.Names {
		b, err := s.Bundle(dsName)
		if err != nil {
			return err
		}
		evals := map[string]func() (metrics.Report, error){
			"Leo":   func() (metrics.Report, error) { return b.leo.Evaluate(b.test, b.k) },
			"N3IC":  func() (metrics.Report, error) { return b.n3ic.Evaluate(b.test, b.k) },
			"BoS":   func() (metrics.Report, error) { return b.bosM.Evaluate(b.test, b.k) },
			"MLP-B": func() (metrics.Report, error) { return b.mlp.EvalPegasus(b.test, b.k) },
			"RNN-B": func() (metrics.Report, error) { return b.rnnb.EvalPegasus(b.test, b.k) },
			"CNN-B": func() (metrics.Report, error) { return b.cnnb.EvalPegasus(b.test, b.k) },
			"CNN-M": func() (metrics.Report, error) { return b.cnnm.EvalPegasus(b.test, b.k) },
			"CNN-L": func() (metrics.Report, error) { return b.cnnl.EvalPegasus(b.test, b.k) },
		}
		for i := range rows {
			rep, err := evals[rows[i].Method]()
			if err != nil {
				return err
			}
			rows[i].Reports[dsName] = rep
		}
	}
	// Metadata columns.
	meta := map[string][2]float64{ // input bits, model Kb
		"Leo":   {128, 0},
		"N3IC":  {128, kb(mustBundle(s).n3ic.ModelSizeBits())},
		"MLP-B": {128, kb(mustBundle(s).mlp.ModelSizeBits())},
		"BoS":   {18, kb(mustBundle(s).bosM.ModelSizeBits())},
		"RNN-B": {128, kb(mustBundle(s).rnnb.ModelSizeBits())},
		"CNN-B": {128, kb(mustBundle(s).cnnb.ModelSizeBits())},
		"CNN-M": {128, kb(mustBundle(s).cnnm.ModelSizeBits())},
		"CNN-L": {3840, kb(mustBundle(s).cnnl.ModelSizeBits())},
	}
	fmt.Fprintf(w, "Table 5: classification accuracy (PR/RC/F1 per dataset)\n")
	fmt.Fprintf(w, "%-7s %9s %9s", "Method", "Input(b)", "Size(Kb)")
	for _, d := range datasets.Names {
		fmt.Fprintf(w, " | %-23s", d)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		m := meta[r.Method]
		fmt.Fprintf(w, "%-7s %9.0f %9.1f", r.Method, m[0], m[1])
		for _, d := range datasets.Names {
			rep := r.Reports[d]
			fmt.Fprintf(w, " | %.4f %.4f %.4f", rep.Precision, rep.Recall, rep.F1)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func kb(bits int) float64 { return float64(bits) / 1024 }

// mustBundle returns any already-trained bundle (Table5 metadata is
// dataset independent).
func mustBundle(s *Suite) *bundle {
	for _, b := range s.bundles {
		return b
	}
	panic("experiments: no bundle trained")
}

// Table2 derives the headline comparison (average F1 improvement, model
// size and input-scale ratios of CNN-L vs each prior work).
func (s *Suite) Table2(w io.Writer) error {
	if err := s.Table5(io.Discard); err != nil {
		return err
	}
	avg := func(name string) float64 {
		t := 0.0
		for _, d := range datasets.Names {
			b := s.bundles[d]
			var rep metrics.Report
			switch name {
			case "Leo":
				rep, _ = b.leo.Evaluate(b.test, b.k)
			case "N3IC":
				rep, _ = b.n3ic.Evaluate(b.test, b.k)
			case "BoS":
				rep, _ = b.bosM.Evaluate(b.test, b.k)
			case "CNN-L":
				rep, _ = b.cnnl.EvalPegasus(b.test, b.k)
			}
			t += rep.F1
		}
		return t / float64(len(datasets.Names))
	}
	b := mustBundle(s)
	cl := avg("CNN-L")
	fmt.Fprintf(w, "Table 2: Pegasus (CNN-L) vs prior works\n")
	fmt.Fprintf(w, "%-18s %10s %10s %10s\n", "Prior work", "Acc. ↑", "Size ×", "Input ×")
	fmt.Fprintf(w, "%-18s %9.1f%% %10s %10s\n", "Leo (tree)", 100*(cl-avg("Leo")), "-", "-")
	fmt.Fprintf(w, "%-18s %9.1f%% %9.1fx %9.1fx\n", "N3IC (bin MLP)",
		100*(cl-avg("N3IC")),
		float64(b.cnnl.ModelSizeBits())/float64(b.n3ic.ModelSizeBits()),
		float64(b.cnnl.InputScaleBits())/float64(b.n3ic.InputScaleBits()))
	fmt.Fprintf(w, "%-18s %9.1f%% %9.1fx %9.1fx\n", "BoS (bin RNN)",
		100*(cl-avg("BoS")),
		float64(b.cnnl.ModelSizeBits())/float64(b.bosM.ModelSizeBits()),
		float64(b.cnnl.InputScaleBits())/float64(b.bosM.InputScaleBits()))
	return nil
}

// Table6 regenerates the hardware resource comparison.
func (s *Suite) Table6(w io.Writer) error {
	b, err := s.Bundle("PeerRush")
	if err != nil {
		return err
	}
	const flows = 1 << 16
	type rowT struct {
		name string
		bits int
		res  pisa.Resources
		cap  pisa.Capacity // the emitting program's own capacity
	}
	var rows []rowT
	if prog, err := b.leo.Emit(flows); err == nil {
		rows = append(rows, rowT{"Leo", b.leo.FlowStateBits(), prog.Resources(), prog.Cap})
	} else {
		return fmt.Errorf("leo emit: %v", err)
	}
	// BoS: exhaustive tables, SRAM only (no TCAM). There is no emitted
	// program, so utilisation is reported against the default target.
	bosSRAM := b.bosM.TableEntries() * (11 + 8) // key+state bits per entry
	rows = append(rows, rowT{"BoS", b.bosM.FlowStateBits(),
		pisa.Resources{SRAMBits: bosSRAM, RegBits: b.bosM.FlowStateBits() * flows, PeakBusBits: 8},
		core.DefaultTarget().Capacity()})
	emit := func(name string, em *core.Emitted, errE error, bits int) error {
		if errE != nil {
			return fmt.Errorf("%s emit: %v", name, errE)
		}
		rows = append(rows, rowT{name, bits, em.Resources(), em.Capacity()})
		return nil
	}
	em, errE := b.mlp.Emit(flows)
	if err := emit("MLP-B", em, errE, b.mlp.FlowStateBits); err != nil {
		return err
	}
	em, errE = b.rnnb.Emit(flows)
	if err := emit("RNN-B", em, errE, b.rnnb.FlowStateBits()); err != nil {
		return err
	}
	em, errE = b.cnnb.Emit(flows)
	if err := emit("CNN-B", em, errE, b.cnnb.FlowStateBits); err != nil {
		return err
	}
	em, errE = b.cnnm.Emit(flows)
	if err := emit("CNN-M", em, errE, b.cnnm.FlowStateBits); err != nil {
		return err
	}
	em, errE = b.cnnl.Emit(flows)
	if err := emit("CNN-L", em, errE, b.cnnl.FlowStateBits()); err != nil {
		return err
	}
	em, errE = b.ae.Emit(flows)
	if err := emit("AutoEncoder", em, errE, b.ae.FlowStateBits()); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 6: hardware resource utilisation (%d concurrent flows)\n", flows)
	fmt.Fprintf(w, "%-12s %14s %8s %8s %8s\n", "Model", "Stateful b/flow", "SRAM%", "TCAM%", "Bus%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %14d %7.2f%% %7.2f%% %7.2f%%\n", r.name, r.bits,
			100*r.res.SRAMFrac(r.cap), 100*r.res.TCAMFrac(r.cap),
			100*r.res.BusFrac(r.cap))
	}
	return nil
}

// Figure7 regenerates the per-flow storage sweep: the three CNN-L
// variants' F1 per dataset plus the SRAM needed for 1M flows.
func (s *Suite) Figure7(w io.Writer) error {
	variants := []struct {
		useIPD  bool
		idxBits int
	}{
		{false, 4}, // 28 bits/flow
		{true, 4},  // 44 bits/flow
		{true, 8},  // 72 bits/flow
	}
	fmt.Fprintf(w, "Figure 7: per-flow storage vs accuracy (1M flows)\n")
	fmt.Fprintf(w, "%-10s %10s", "bits/flow", "SRAM(1M)")
	for _, d := range datasets.Names {
		fmt.Fprintf(w, " %10s", d)
	}
	fmt.Fprintln(w)
	for _, v := range variants {
		var bitsPerFlow int
		var f1s []float64
		for _, dsName := range datasets.Names {
			b, err := s.Bundle(dsName)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(s.Cfg.Seed + 31))
			m := models.NewCNNL(b.k, v.useIPD, v.idxBits, rng)
			m.Train(b.train, models.TrainOpts{Epochs: s.Cfg.ep(10), LR: 0.01, Seed: s.Cfg.Seed})
			if err := m.Compile(b.train, 2000); err != nil {
				return err
			}
			m.Refine(b.train, 4, 0.05)
			rep, err := m.EvalPegasus(b.test, b.k)
			if err != nil {
				return err
			}
			f1s = append(f1s, rep.F1)
			bitsPerFlow = m.FlowStateBits()
		}
		// Register bytes for 1M flows: bits padded to 8-bit registers,
		// reported against the default emission target's SRAM budget.
		cap := core.DefaultTarget().Capacity()
		sramPct := 100 * float64(((bitsPerFlow+7)/8)*8*1_000_000) /
			float64(cap.SRAMBitsPerStage*cap.Stages)
		fmt.Fprintf(w, "%-10d %9.1f%%", bitsPerFlow, sramPct)
		for _, f1 := range f1s {
			fmt.Fprintf(w, " %10.4f", f1)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure8 regenerates the ROC/AUC matrix: AutoEncoder vs six attack
// families across the three datasets.
func (s *Suite) Figure8(w io.Writer) error {
	fmt.Fprintf(w, "Figure 8: AutoEncoder AUC per attack family\n")
	fmt.Fprintf(w, "%-8s", "Attack")
	for _, d := range datasets.Names {
		fmt.Fprintf(w, " %10s", d)
	}
	fmt.Fprintln(w)
	for _, atk := range datasets.AllAttacks {
		fmt.Fprintf(w, "%-8s", atk)
		for _, dsName := range datasets.Names {
			b, err := s.Bundle(dsName)
			if err != nil {
				return err
			}
			mixed := datasets.MixAttack(b.test, atk, s.Cfg.Seed+41)
			scores, anom, err := b.ae.ScorePegasus(mixed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.4f", metrics.AUCFromScores(scores, anom))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure9Accuracy compares Pegasus (fuzzy fixed-point) against the
// full-precision CPU/GPU implementation for every model and dataset.
func (s *Suite) Figure9Accuracy(w io.Writer) error {
	fmt.Fprintf(w, "Figure 9a-c: Pegasus vs full-precision macro-F1\n")
	fmt.Fprintf(w, "%-8s %-10s %10s %10s %8s\n", "Dataset", "Model", "Pegasus", "CPU/GPU", "Δ")
	for _, dsName := range datasets.Names {
		b, err := s.Bundle(dsName)
		if err != nil {
			return err
		}
		type pair struct {
			name string
			peg  func() (metrics.Report, error)
			full func() (metrics.Report, error)
		}
		pairs := []pair{
			{"MLP-B", func() (metrics.Report, error) { return b.mlp.EvalPegasus(b.test, b.k) },
				func() (metrics.Report, error) { return b.mlp.EvalFull(b.test, b.k) }},
			{"RNN-B", func() (metrics.Report, error) { return b.rnnb.EvalPegasus(b.test, b.k) },
				func() (metrics.Report, error) { return b.rnnb.EvalFull(b.test, b.k) }},
			{"CNN-B", func() (metrics.Report, error) { return b.cnnb.EvalPegasus(b.test, b.k) },
				func() (metrics.Report, error) { return b.cnnb.EvalFull(b.test, b.k) }},
			{"CNN-M", func() (metrics.Report, error) { return b.cnnm.EvalPegasus(b.test, b.k) },
				func() (metrics.Report, error) { return b.cnnm.EvalFull(b.test, b.k) }},
			{"CNN-L", func() (metrics.Report, error) { return b.cnnl.EvalPegasus(b.test, b.k) },
				func() (metrics.Report, error) { return b.cnnl.EvalFull(b.test, b.k) }},
		}
		for _, p := range pairs {
			pr, err := p.peg()
			if err != nil {
				return err
			}
			fr, err := p.full()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8s %-10s %10.4f %10.4f %+7.4f\n", dsName, p.name, pr.F1, fr.F1, pr.F1-fr.F1)
		}
	}
	return nil
}

// Figure9Throughput compares inference throughput: the simulated switch
// at line rate versus measured CPU full-precision inference and a
// modelled multi-GPU deployment (DESIGN.md documents the substitution).
// It also measures the switch *simulator* itself — sequential RunSwitch
// versus the batched flow-sharded pisa.Engine — so the replay harness's
// own scaling is visible.
func (s *Suite) Figure9Throughput(w io.Writer) error {
	b, err := s.Bundle("PeerRush")
	if err != nil {
		return err
	}
	xs, _ := models.ExtractSeq(b.test)
	mat := tensor.New(len(xs), models.Window*2)
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	mat.Scale(1.0 / 32)
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond
	// Measure single-thread CPU samples/s on CNN-B full precision.
	start := time.Now()
	iters := 0
	for time.Since(start) < window {
		b.cnnb.Net.Predict(mat)
		iters++
	}
	cpu1 := float64(iters*mat.R) / time.Since(start).Seconds()
	cores := float64(runtime.NumCPU())
	cpu := cpu1 * cores // multi-threaded upper bound (paper pre-loads all cores)
	// GPU model: four V100s at a documented batched-speedup factor over
	// the full CPU socket (survey-calibrated 6×/GPU for small MLP/CNN
	// inference).
	gpu := cpu * 6 * 4
	sw := pisa.LineRatePPS

	// Simulator throughput: replay the test windows through the emitted
	// CNN-B program — the table interpreter at 1 worker (the historical
	// baseline), the compiled execution plan at 1 worker and at all
	// cores, and the streaming entry point feeding the same pool.
	em, err := b.cnnb.Emit(1 << 10)
	if err != nil {
		return err
	}
	jobs := core.BatchJobsFromFloats(xs)
	measure := func(workers int, mode pisa.ExecMode) (float64, int) {
		eng := em.NewEngineMode(workers, mode)
		defer eng.Close()
		start := time.Now()
		n := 0
		for time.Since(start) < window {
			eng.RunBatch(jobs)
			n += len(jobs)
		}
		return float64(n) / time.Since(start).Seconds(), eng.Workers()
	}
	measureStream := func(workers int) float64 {
		eng := em.NewEngine(workers)
		defer eng.Close()
		in := make(chan pisa.Job, 1024)
		out := make(chan pisa.Result, 1024)
		start := time.Now()
		go func() {
			for time.Since(start) < window {
				for _, j := range jobs {
					in <- j
				}
			}
			close(in)
		}()
		go eng.RunStream(in, out)
		n := 0
		for range out {
			n++
		}
		return float64(n) / time.Since(start).Seconds()
	}
	interp1, _ := measure(1, pisa.ExecInterpret)
	sim1, _ := measure(1, pisa.ExecCompiled)
	simN, workersN := measure(runtime.NumCPU(), pisa.ExecCompiled)
	streamN := measureStream(runtime.NumCPU())

	fmt.Fprintf(w, "Figure 9d: throughput (samples/s)\n")
	fmt.Fprintf(w, "%-22s %14.3g\n", "Pegasus (switch)", sw)
	fmt.Fprintf(w, "%-22s %14.3g (modelled: %d cores × 24)\n", "GPU (4x, modelled)", gpu, runtime.NumCPU())
	fmt.Fprintf(w, "%-22s %14.3g (measured, %d cores)\n", "CPU", cpu, runtime.NumCPU())
	fmt.Fprintf(w, "switch/CPU = %.0fx   switch/GPU = %.0fx\n", sw/cpu, sw/gpu)
	fmt.Fprintf(w, "%-22s %14.3g (measured, 1 worker)\n", "sim replay (interp)", interp1)
	fmt.Fprintf(w, "%-22s %14.3g (measured, 1 worker, %.1fx over interp)\n",
		"sim replay (compiled)", sim1, sim1/interp1)
	fmt.Fprintf(w, "%-22s %14.3g (measured, %d workers, %.1fx)\n",
		"sim replay (engine)", simN, workersN, simN/sim1)
	fmt.Fprintf(w, "%-22s %14.3g (measured, %d workers, streaming)\n",
		"sim replay (stream)", streamN, workersN)
	return nil
}

// EngineBenchPoint is one (mode, worker count) cell's measured replay
// throughput. Speedup is relative to the interpreted 1-worker baseline,
// so the compiled-plan gain and the sharding gain are both visible in
// one trend.
type EngineBenchPoint struct {
	Mode          string  `json:"mode"` // "interpreted" or "compiled"
	Workers       int     `json:"workers"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	Speedup       float64 `json:"speedup"` // vs interpreted, 1 worker
}

// EngineBenchReport is the machine-readable BENCH_engine.json payload:
// batched switch-replay throughput of pisa.Engine per execution mode
// and worker count (the before/after evidence for the compile-to-plan
// optimisation).
type EngineBenchReport struct {
	Model     string             `json:"model"`
	Target    string             `json:"target"`
	BatchSize int                `json:"batch_size"`
	MeasureMS int                `json:"measure_ms"`
	Points    []EngineBenchPoint `json:"points"`
	// PacketPoints measures the raw-trace per-packet path: the merged
	// packet trace replayed through the extraction emission
	// (RunPackets, compiled plans), in raw packets/s — every packet
	// pays the flow-state register RMWs, and inference fires only on
	// window boundaries. Speedup is relative to the 1-worker packet
	// baseline.
	PacketPoints []EngineBenchPoint `json:"packet_points,omitempty"`
	// TracePackets is the raw trace length behind PacketPoints.
	TracePackets int `json:"trace_packets,omitempty"`
	// MultiModelPoints measures concurrent multi-model serving: every
	// model replayed solo on its own pool, then all models co-resident
	// on one shared-budget pisa.Scheduler (the "multimodel"
	// experiment). Share is shared/solo throughput; Occupancy the
	// model's fraction of the shared pool's worker time.
	MultiModelPoints []MultiModelPoint `json:"multimodel_points,omitempty"`
	// MultiModelBudget is the shared scheduler's worker budget behind
	// MultiModelPoints.
	MultiModelBudget int `json:"multimodel_budget,omitempty"`
	// ScalingPoints measures steady-state worker scaling under
	// sustained synthetic load (the "scaling" experiment): the traffic
	// generator refills a fixed batch between replays, so the pool
	// never drains and each point is a true steady-state throughput,
	// not batch-overhead amortisation. Modes: "compiled" feature-window
	// jobs, "packets" raw per-packet replay. Speedup is relative to
	// each mode's own 1-worker point.
	ScalingPoints []EngineBenchPoint `json:"scaling_points,omitempty"`
	// ScalingMeta records the measurement conditions behind
	// ScalingPoints; CI gates its scaling assertion on GoMaxProcs so a
	// 1-CPU box cannot fail (or trivially pass) the multi-worker floor.
	ScalingMeta *ScalingMeta `json:"scaling_meta,omitempty"`
	// ServingPoints measures the serving control plane (the "serving"
	// experiment): admission latency, live-swap downtime with the
	// co-resident throughput dip, and SLO occupancy convergence.
	ServingPoints *ServingReport `json:"serving_points,omitempty"`
	// ResiliencePoints measures overload protection and failure
	// recovery (the "resilience" experiment): shed rate vs offered
	// load with the admitted-work wait bound, and the poisoned-canary
	// rollback detection latency with its post-rollback equivalence
	// check.
	ResiliencePoints *ResilienceReport `json:"resilience_points,omitempty"`
	// SharedExtractionPoints measures physically shared extraction (the
	// "sharedext" experiment): N co-resident packet models replaying the
	// same raw trace with private per-model preludes versus one shared
	// extraction machine fanning fired windows out to N pure-
	// combinational subscribers. PacketsPerSec counts trace packets
	// served to ALL N models per second; RMWsPerPacket is the register
	// read-modify-writes each trace packet costs across every session.
	SharedExtractionPoints []SharedExtractionPoint `json:"shared_extraction_points,omitempty"`
}

// SharedExtractionPoint is one (co-resident model count, sharing mode)
// cell of the shared-extraction experiment.
type SharedExtractionPoint struct {
	Models  int    `json:"models"`
	Mode    string `json:"mode"` // "private" or "shared"
	Workers int    `json:"workers"`
	// PacketsPerSec is trace packets fully served (reaching all N
	// models) per second — private mode divides the pool's aggregate by
	// N, shared mode counts the machine's packets directly.
	PacketsPerSec float64 `json:"packets_per_sec"`
	// RMWsPerPacket is total register RMWs across all sessions divided
	// by fully-served packets: ~N preludes' worth in private mode, ~one
	// prelude's worth in shared mode (subscribers execute none).
	RMWsPerPacket float64 `json:"rmws_per_packet"`
	// Speedup is shared/private pkt/s at the same model count (set on
	// shared points only).
	Speedup float64 `json:"speedup,omitempty"`
}

// ScalingMeta describes how the scaling experiment measured its points.
type ScalingMeta struct {
	BatchSize  int `json:"batch_size"`
	WarmupMS   int `json:"warmup_ms"`
	MeasureMS  int `json:"measure_ms"`
	Flows      int `json:"flows"` // live-flow population in the generator
	GoMaxProcs int `json:"gomaxprocs"`
	// Points carries per-point measurement evidence: the achieved
	// parallelism (worker busy-share summed over the pool during the
	// window — ~1.0 means the point ran effectively single-core no
	// matter the worker count) and the heap allocations per replay op.
	// A flat worker axis with parallelism pinned at ~1 is a 1-CPU box,
	// not a scaling regression; that distinction is recorded here so
	// committed tables are self-explaining.
	Points []ScalingPointMeta `json:"points,omitempty"`
}

// ScalingPointMeta is the measurement evidence behind one scaling point.
type ScalingPointMeta struct {
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Parallelism is Σ worker-busy time / wall time over the measure
	// window: the cores the point actually used, bounded by GOMAXPROCS.
	Parallelism float64 `json:"parallelism"`
	// AllocsPerOp is heap allocations per replay op (one generated
	// batch) during the window — the scheduler/result-path overhead
	// that must not grow with worker count.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// MultiModelPoint is one model's throughput in one serving mode of the
// multimodel experiment.
type MultiModelPoint struct {
	Model         string  `json:"model"`
	Mode          string  `json:"mode"` // "solo" or "shared"
	Workers       int     `json:"workers"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	Share         float64 `json:"share,omitempty"`     // shared pps / solo pps
	Occupancy     float64 `json:"occupancy,omitempty"` // busy / (wall × budget)
}

// engineModel returns a compiled CNN-M and test flows for the engine
// benchmark — the same model BenchmarkEngineBatch replays, so the JSON
// report and the Go benchmark track the same trajectory. It reuses an
// already-trained bundle when one exists (the "all" run), but when the
// experiment runs standalone it trains only CNN-M instead of paying
// for the whole zoo.
func (s *Suite) engineModel() (*models.Feedforward, []netsim.Flow, error) {
	if b, ok := s.bundles["PeerRush"]; ok {
		return b.cnnm, b.test, nil
	}
	ds, ok := datasets.ByName("PeerRush", datasets.Config{
		FlowsPerClass: s.Cfg.FlowsPerClass, PacketsPerFlow: 28, Seed: s.Cfg.Seed + 101,
	})
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", "PeerRush")
	}
	train, _, test := ds.Split(s.Cfg.Seed + 7)
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 13))
	m := models.NewCNNM(ds.NumClasses(), rng)
	m.Train(train, models.TrainOpts{Epochs: s.Cfg.ep(80), Seed: s.Cfg.Seed})
	if err := m.Compile(train); err != nil {
		return nil, nil, err
	}
	return m, test, nil
}

// EngineBench measures pisa.Engine batch-replay throughput over the
// emitted CNN-B program for a sweep of worker counts, printing a table
// and (when Config.EngineJSON is set) writing the JSON report CI
// tracks across commits.
func (s *Suite) EngineBench(w io.Writer) error {
	cnnb, test, err := s.engineModel()
	if err != nil {
		return err
	}
	em, err := cnnb.Emit(1 << 10)
	if err != nil {
		return err
	}
	xs, _ := models.ExtractSeq(test)
	jobs := core.BatchJobsFromFloats(xs)
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond

	// Powers of two up to at least 4 workers (goroutine shards are
	// meaningful even on small runners), plus the full core count.
	limit := runtime.NumCPU()
	if limit < 4 {
		limit = 4
	}
	var counts []int
	for c := 1; c <= limit; c *= 2 {
		counts = append(counts, c)
	}
	if counts[len(counts)-1] < runtime.NumCPU() {
		counts = append(counts, runtime.NumCPU())
	}

	rep := EngineBenchReport{Model: cnnb.Name, Target: em.Target,
		BatchSize: len(jobs), MeasureMS: s.Cfg.MeasureMS}
	fmt.Fprintf(w, "Engine bench: batched replay throughput (%s, batch %d, %v/point)\n",
		cnnb.Name, len(jobs), window)
	fmt.Fprintf(w, "%12s %8s %14s %8s %9s %10s\n", "mode", "workers", "pkt/s", "speedup", "parallel", "allocs/op")
	// sweep measures one replay mode across the worker counts. Register
	// -size clamping can map distinct requested counts to the same
	// effective pool, so duplicates are skipped to keep the JSON trend
	// one point per worker count. base seeds (on the first point) and
	// scales the speedup column, shared across sweeps that compare
	// against one baseline.
	sweep := func(modeName string, base *float64, perRep int,
		mk func(c int) *pisa.Engine, replay func(*pisa.Engine)) []EngineBenchPoint {
		var pts []EngineBenchPoint
		measured := map[int]bool{}
		for _, c := range counts {
			eng := mk(c)
			if measured[eng.Workers()] {
				eng.Close()
				continue
			}
			measured[eng.Workers()] = true
			start := time.Now()
			n := 0
			for time.Since(start) < window {
				replay(eng)
				n += perRep
			}
			pps := float64(n) / time.Since(start).Seconds()
			eng.Close()
			if *base == 0 {
				*base = pps
			}
			p := EngineBenchPoint{Mode: modeName, Workers: eng.Workers(),
				PacketsPerSec: pps, Speedup: pps / *base}
			pts = append(pts, p)
			fmt.Fprintf(w, "%12s %8d %14.3g %7.2fx\n", p.Mode, p.Workers, p.PacketsPerSec, p.Speedup)
		}
		return pts
	}

	base := 0.0 // interpreted 1-worker baseline
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		rep.Points = append(rep.Points, sweep(mode.String(), &base, len(jobs),
			func(c int) *pisa.Engine { return em.NewEngineMode(c, mode) },
			func(e *pisa.Engine) { e.RunBatch(jobs) })...)
	}

	// Per-packet smoke point: the same model emitted with its
	// extraction machine, fed the raw merged trace. Raw packets/s is
	// the dataplane-facing figure — every packet performs its register
	// RMWs and only window boundaries run inference.
	emp, err := cnnb.EmitPackets(1 << 10)
	if err != nil {
		return err
	}
	pjobs := models.PacketJobs(emp, netsim.Merge(test))
	rep.TracePackets = len(pjobs)
	fmt.Fprintf(w, "Per-packet replay (raw trace, %d packets, compiled plans):\n", len(pjobs))
	pbase := 0.0
	rep.PacketPoints = sweep("packets", &pbase, len(pjobs),
		func(c int) *pisa.Engine {
			eng := emp.NewPacketEngine(c, pisa.ExecCompiled)
			eng.ResetState()
			return eng
		},
		func(e *pisa.Engine) { e.RunPackets(pjobs) })
	if s.Cfg.EngineJSON != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	}
	return nil
}

// multiModels returns several compiled window classifiers and their
// test flows for the multimodel experiment, reusing an already-trained
// bundle when one exists.
func (s *Suite) multiModels() ([]*models.Feedforward, []netsim.Flow, error) {
	if b, ok := s.bundles["PeerRush"]; ok {
		return []*models.Feedforward{b.mlp, b.cnnb, b.cnnm}, b.test, nil
	}
	ds, ok := datasets.ByName("PeerRush", datasets.Config{
		FlowsPerClass: s.Cfg.FlowsPerClass, PacketsPerFlow: 28, Seed: s.Cfg.Seed + 101,
	})
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", "PeerRush")
	}
	train, _, test := ds.Split(s.Cfg.Seed + 7)
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 13))
	ms := []*models.Feedforward{
		models.NewMLPB(ds.NumClasses(), rng),
		models.NewCNNB(ds.NumClasses(), rng),
		models.NewCNNM(ds.NumClasses(), rng),
	}
	for _, m := range ms {
		m.Train(train, models.TrainOpts{Epochs: s.Cfg.ep(20), Seed: s.Cfg.Seed})
		if err := m.Compile(train); err != nil {
			return nil, nil, err
		}
	}
	return ms, test, nil
}

// MultiModelBench measures concurrent multi-model serving: each model
// replayed solo on its own engine pool, then all models registered on
// one shared-budget pisa.Scheduler and replayed concurrently, with
// per-model throughput, shared/solo ratio and pool occupancy. The
// points land in BENCH_engine.json (merged with the engine
// experiment's report) when Config.EngineJSON is set.
func (s *Suite) MultiModelBench(w io.Writer) error {
	ms, test, err := s.multiModels()
	if err != nil {
		return err
	}
	budget := runtime.NumCPU()
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond

	type served struct {
		m    *models.Feedforward
		em   *core.Emitted
		jobs []pisa.Job
		solo float64
	}
	var sv []served
	for _, m := range ms {
		em, err := m.Emit(1 << 10)
		if err != nil {
			return fmt.Errorf("%s emit: %w", m.Name, err)
		}
		xs, _ := m.Extract(test)
		sv = append(sv, served{m: m, em: em, jobs: core.BatchJobsFromFloats(xs)})
	}

	fmt.Fprintf(w, "Multi-model bench: %d models on one %d-worker budget (%v/point)\n",
		len(sv), budget, window)
	fmt.Fprintf(w, "%-8s %-8s %8s %14s %8s %8s\n", "model", "mode", "workers", "pkt/s", "share", "occ")
	rep := EngineBenchReport{MultiModelBudget: budget}

	// Solo baselines: each model alone on a full-budget pool.
	for i := range sv {
		eng := sv[i].em.NewEngine(budget)
		start := time.Now()
		n := 0
		for time.Since(start) < window {
			eng.RunBatch(sv[i].jobs)
			n += len(sv[i].jobs)
		}
		sv[i].solo = float64(n) / time.Since(start).Seconds()
		eng.Close()
		p := MultiModelPoint{Model: sv[i].m.Name, Mode: "solo", Workers: budget, PacketsPerSec: sv[i].solo}
		rep.MultiModelPoints = append(rep.MultiModelPoints, p)
		fmt.Fprintf(w, "%-8s %-8s %8d %14.3g %8s %8s\n", p.Model, p.Mode, p.Workers, p.PacketsPerSec, "-", "-")
	}

	// Shared: all models co-resident on one scheduler, replaying
	// concurrently for the measurement window.
	sched := pisa.NewScheduler(budget)
	engines := make([]*pisa.Engine, len(sv))
	for i := range sv {
		engines[i] = sv[i].em.NewEngineOn(sched, sv[i].m.Name, 1, pisa.ExecCompiled)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sv {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Since(start) < window {
				engines[i].RunBatch(sv[i].jobs)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	// Key solo baselines by model name: sched.Stats() happens to list
	// engines in registration order today, but pairing by position would
	// silently mis-attribute shares if that ever changed (or if two
	// models swapped registration order). Note the shared pkt/s columns
	// for equal-weight models are expected to be near-identical — the
	// scheduler's stride fairness serves equal-weight sessions equal
	// packet counts over the window, so CNN-B and CNN-M reporting the
	// same shared throughput is fair queueing working, not a pairing bug.
	solo := make(map[string]float64, len(sv))
	for i := range sv {
		solo[sv[i].m.Name] = sv[i].solo
	}
	for _, st := range sched.Stats() {
		pps := float64(st.Packets) / wall.Seconds()
		p := MultiModelPoint{Model: st.Name, Mode: "shared", Workers: budget,
			PacketsPerSec: pps, Share: pps / solo[st.Name],
			Occupancy: st.Busy.Seconds() / (wall.Seconds() * float64(budget))}
		rep.MultiModelPoints = append(rep.MultiModelPoints, p)
		fmt.Fprintf(w, "%-8s %-8s %8d %14.3g %7.2fx %7.1f%%\n",
			p.Model, p.Mode, p.Workers, p.PacketsPerSec, p.Share, 100*p.Occupancy)
	}
	for _, e := range engines {
		e.Close()
	}
	sched.Close()

	if s.Cfg.EngineJSON != "" {
		// Merge into the engine experiment's report when one exists.
		full := EngineBenchReport{}
		if data, err := os.ReadFile(s.Cfg.EngineJSON); err == nil {
			_ = json.Unmarshal(data, &full)
		}
		full.MultiModelPoints = rep.MultiModelPoints
		full.MultiModelBudget = rep.MultiModelBudget
		data, err := json.MarshalIndent(&full, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	}
	return nil
}

// SharedExtractionBench measures physically shared extraction: N
// co-resident packet models (cycling the zoo's sequence classifiers)
// replay the same merged raw trace, first each with its own fused
// private-prelude engine on one shared-budget scheduler, then as
// pure-combinational subscribers of ONE standalone extraction machine
// via pisa.Fanout. The machine executes each packet's register RMWs
// exactly once regardless of N, so the shared points should show both
// higher fully-served pkt/s and a flat ~one-prelude RMW cost where the
// private points pay N preludes. Points merge into BENCH_engine.json.
func (s *Suite) SharedExtractionBench(w io.Writer) error {
	ms, test, err := s.multiModels()
	if err != nil {
		return err
	}
	// Sequence-window classifiers only: co-residents must resolve the
	// SAME extraction spec to bind one physical machine.
	seqs := []*models.Feedforward{}
	for _, m := range ms {
		if m.PacketExtract == core.ExtractSeq {
			seqs = append(seqs, m)
		}
	}
	if len(seqs) == 0 {
		return fmt.Errorf("experiments: no sequence-window models for sharedext")
	}
	stream := netsim.Merge(test)
	budget := runtime.NumCPU()
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond
	const flows = 1 << 10

	fmt.Fprintf(w, "Shared-extraction bench: private preludes vs one physical machine (%d packets/replay, %d-worker budget, %v/point)\n",
		len(stream), budget, window)
	fmt.Fprintf(w, "%7s %-8s %8s %14s %10s %8s\n", "models", "mode", "workers", "pkt/s", "rmws/pkt", "speedup")
	var rep EngineBenchReport

	for _, n := range []int{2, 3, 4} {
		// Co-resident instance i reuses compiled model seqs[i%len] under
		// its own session name — emissions are independent programs, so
		// two instances of one model are two genuine co-residents.
		names := make([]string, n)
		for i := range names {
			names[i] = seqs[i%len(seqs)].Name
			if i >= len(seqs) {
				names[i] = fmt.Sprintf("%s#%d", names[i], i/len(seqs)+1)
			}
		}

		// Private mode: each model's fused EmitPackets engine replays the
		// full trace concurrently; every engine pays the prelude's RMWs on
		// every packet. A packet is fully served once all N engines have
		// processed it, so the effective rate is the aggregate over N.
		sched := pisa.NewScheduler(budget)
		engines := make([]*pisa.Engine, n)
		var pjobs []pisa.PacketIn
		for i := 0; i < n; i++ {
			emp, err := seqs[i%len(seqs)].EmitPackets(flows)
			if err != nil {
				return fmt.Errorf("%s emit: %w", names[i], err)
			}
			if pjobs == nil {
				pjobs = models.PacketJobs(emp, stream)
			}
			engines[i] = emp.NewPacketEngineOn(sched, names[i], 1, pisa.ExecCompiled)
			engines[i].ResetState()
		}
		var wg sync.WaitGroup
		start := time.Now()
		for i := range engines {
			wg.Add(1)
			go func(eng *pisa.Engine) {
				defer wg.Done()
				for time.Since(start) < window {
					eng.RunPackets(pjobs)
				}
			}(engines[i])
		}
		wg.Wait()
		wall := time.Since(start)
		var pkts, rmws uint64
		for _, st := range sched.Stats() {
			pkts += st.Packets
			rmws += st.RegRMWs
		}
		for _, e := range engines {
			e.Close()
		}
		sched.Close()
		priv := SharedExtractionPoint{Models: n, Mode: "private", Workers: budget,
			PacketsPerSec: float64(pkts) / float64(n) / wall.Seconds(),
			RMWsPerPacket: float64(rmws) / (float64(pkts) / float64(n))}
		rep.SharedExtractionPoints = append(rep.SharedExtractionPoints, priv)
		fmt.Fprintf(w, "%7d %-8s %8d %14.3g %10.1f %8s\n",
			priv.Models, priv.Mode, priv.Workers, priv.PacketsPerSec, priv.RMWsPerPacket, "-")

		// Shared mode: one machine owns the flow registers; subscribers
		// are register-free and see only fired windows. One driver
		// replays the trace through the fan-out — every processed packet
		// reaches all N models inside the same call.
		shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
			models.SharedWindowSpec(core.ExtractSeq), flows)
		if err != nil {
			return err
		}
		sched = pisa.NewScheduler(budget)
		ext := shared.Em.NewPacketEngineOn(sched, "px-shared-seq", 1, pisa.ExecCompiled)
		fan := pisa.NewFanout(ext)
		subs := make([]*pisa.Engine, n)
		for i := 0; i < n; i++ {
			em, err := seqs[i%len(seqs)].EmitShared(shared)
			if err != nil {
				return fmt.Errorf("%s shared emit: %w", names[i], err)
			}
			subs[i] = em.NewEngineOn(sched, names[i], 1, pisa.ExecCompiled)
			fan.Subscribe(subs[i])
		}
		spjobs := models.PacketJobs(shared.Em, stream)
		ext.ResetState()
		start = time.Now()
		for time.Since(start) < window {
			fan.RunPackets(spjobs)
		}
		wall = time.Since(start)
		pkts, rmws = 0, 0
		for _, st := range sched.Stats() {
			pkts += st.Packets // subscriber "packets" are fired windows, not trace packets
			rmws += st.RegRMWs
		}
		served := ext.Stats().Packets
		for _, e := range subs {
			e.Close()
		}
		ext.Close()
		sched.Close()
		shp := SharedExtractionPoint{Models: n, Mode: "shared", Workers: budget,
			PacketsPerSec: float64(served) / wall.Seconds(),
			RMWsPerPacket: float64(rmws) / float64(served)}
		shp.Speedup = shp.PacketsPerSec / priv.PacketsPerSec
		rep.SharedExtractionPoints = append(rep.SharedExtractionPoints, shp)
		fmt.Fprintf(w, "%7d %-8s %8d %14.3g %10.1f %7.2fx\n",
			shp.Models, shp.Mode, shp.Workers, shp.PacketsPerSec, shp.RMWsPerPacket, shp.Speedup)
	}

	if s.Cfg.EngineJSON != "" {
		// Merge into the engine experiment's report when one exists.
		full := EngineBenchReport{}
		if data, err := os.ReadFile(s.Cfg.EngineJSON); err == nil {
			_ = json.Unmarshal(data, &full)
		}
		full.SharedExtractionPoints = rep.SharedExtractionPoints
		data, err := json.MarshalIndent(&full, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	}
	return nil
}

// ScalingBench measures steady-state worker scaling on the compiled hot
// path under sustained synthetic load. Unlike EngineBench, which
// re-replays a short committed trace (measuring batch-overhead
// amortisation), this experiment keeps the pool saturated: the traffic
// generator refills a fixed batch between replays from a churning
// steady-state flow population, after a warmup that settles the
// adaptive batching and register working set. Two series: compiled
// feature-window jobs (CNN-M) and raw per-packet replay through the
// extraction emission. Points merge into BENCH_engine.json.
func (s *Suite) ScalingBench(w io.Writer) error {
	cnnm, test, err := s.engineModel()
	if err != nil {
		return err
	}
	em, err := cnnm.Emit(1 << 10)
	if err != nil {
		return err
	}

	// Template inputs: the real extracted feature windows, so the
	// generated stream exercises the same match-table hit profile as
	// trace replay while the flow hashes churn like live traffic.
	xs, _ := models.ExtractSeq(test)
	seed := core.BatchJobsFromFloats(xs)
	tmpl := make([][]int32, len(seed))
	for i := range seed {
		tmpl[i] = seed[i].In
	}

	const batchSize = 8192
	const flows = 1 << 14
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond
	if window < 100*time.Millisecond {
		// Steady state needs a floor: below ~100ms the warmup transient
		// dominates and points are noise, even in CI smoke mode.
		window = 100 * time.Millisecond
	}
	warmup := window / 4

	limit := runtime.NumCPU()
	if limit < 4 {
		limit = 4
	}
	var counts []int
	for c := 1; c <= limit; c *= 2 {
		counts = append(counts, c)
	}
	if counts[len(counts)-1] < runtime.NumCPU() {
		counts = append(counts, runtime.NumCPU())
	}

	rep := EngineBenchReport{ScalingMeta: &ScalingMeta{
		BatchSize: batchSize, WarmupMS: int(warmup.Milliseconds()),
		MeasureMS: int(window.Milliseconds()), Flows: flows,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}}
	fmt.Fprintf(w, "Scaling bench: sustained generated load (%s, batch %d, %v warmup + %v/point, GOMAXPROCS=%d)\n",
		cnnm.Name, batchSize, warmup, window, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%12s %8s %14s %8s %9s %10s\n", "mode", "workers", "pkt/s", "speedup", "parallel", "allocs/op")

	// sweep measures one series: mk builds the engine, fill refreshes
	// the batch from the generator, replay runs it. Speedup is relative
	// to the series' own 1-worker point. Worker-count clamping dedupes
	// like EngineBench.
	sweep := func(modeName string, perRep int,
		mk func(c int) *pisa.Engine, run func(eng *pisa.Engine)) []EngineBenchPoint {
		var pts []EngineBenchPoint
		base := 0.0
		measured := map[int]bool{}
		for _, c := range counts {
			eng := mk(c)
			if measured[eng.Workers()] {
				eng.Close()
				continue
			}
			measured[eng.Workers()] = true
			start := time.Now()
			for time.Since(start) < warmup {
				run(eng)
			}
			// Per-point evidence: engine busy time brackets the window
			// (its delta over wall time is the achieved parallelism) and
			// the runtime's allocation counter brackets it too (allocs
			// per replay op must stay flat as workers grow).
			busy0 := eng.Stats().Busy
			var mem0, mem1 runtime.MemStats
			runtime.ReadMemStats(&mem0)
			start = time.Now()
			n, ops := 0, 0
			for time.Since(start) < window {
				run(eng)
				n += perRep
				ops++
			}
			elapsed := time.Since(start)
			busy1 := eng.Stats().Busy
			runtime.ReadMemStats(&mem1)
			pps := float64(n) / elapsed.Seconds()
			eng.Close()
			if base == 0 {
				base = pps
			}
			p := EngineBenchPoint{Mode: modeName, Workers: eng.Workers(),
				PacketsPerSec: pps, Speedup: pps / base}
			pts = append(pts, p)
			pm := ScalingPointMeta{Mode: modeName, Workers: eng.Workers(),
				Parallelism: (busy1 - busy0).Seconds() / elapsed.Seconds(),
				AllocsPerOp: float64(mem1.Mallocs-mem0.Mallocs) / float64(ops)}
			rep.ScalingMeta.Points = append(rep.ScalingMeta.Points, pm)
			fmt.Fprintf(w, "%12s %8d %14.3g %7.2fx %8.2fx %10.1f\n",
				p.Mode, p.Workers, p.PacketsPerSec, p.Speedup, pm.Parallelism, pm.AllocsPerOp)
		}
		return pts
	}

	jobs := make([]pisa.Job, batchSize)
	jgen := trafficgen.NewJobGen(trafficgen.Config{Seed: s.Cfg.Seed + 1, Flows: flows}, tmpl)
	rep.ScalingPoints = sweep("compiled", batchSize,
		func(c int) *pisa.Engine { return em.NewEngineMode(c, pisa.ExecCompiled) },
		func(eng *pisa.Engine) {
			jgen.Fill(jobs)
			eng.RunBatch(jobs)
		})

	emp, err := cnnm.EmitPackets(1 << 10)
	if err != nil {
		return err
	}
	pkts := make([]pisa.PacketIn, batchSize)
	pgen := trafficgen.NewPacketGen(trafficgen.Config{Seed: s.Cfg.Seed + 2, Flows: flows}, trafficgen.LayoutSeq, 0)
	rep.ScalingPoints = append(rep.ScalingPoints, sweep("packets", batchSize,
		func(c int) *pisa.Engine {
			eng := emp.NewPacketEngine(c, pisa.ExecCompiled)
			eng.ResetState()
			return eng
		},
		func(eng *pisa.Engine) {
			pgen.Fill(pkts)
			eng.RunPackets(pkts)
		})...)

	if s.Cfg.EngineJSON != "" {
		// Merge into the engine experiment's report when one exists.
		full := EngineBenchReport{}
		if data, err := os.ReadFile(s.Cfg.EngineJSON); err == nil {
			_ = json.Unmarshal(data, &full)
		}
		full.ScalingPoints = rep.ScalingPoints
		full.ScalingMeta = rep.ScalingMeta
		data, err := json.MarshalIndent(&full, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	}
	return nil
}

// Names lists the runnable experiments.
var Names = []string{"table2", "table5", "table6", "fig7", "fig8", "fig9acc", "fig9thr", "engine", "multimodel", "sharedext", "scaling", "serving", "resilience"}

// Run executes one experiment by name ("all" runs everything).
func (s *Suite) Run(name string, w io.Writer) error {
	switch name {
	case "table2":
		return s.Table2(w)
	case "table5":
		return s.Table5(w)
	case "table6":
		return s.Table6(w)
	case "fig7":
		return s.Figure7(w)
	case "fig8":
		return s.Figure8(w)
	case "fig9acc":
		return s.Figure9Accuracy(w)
	case "fig9thr":
		return s.Figure9Throughput(w)
	case "engine":
		return s.EngineBench(w)
	case "multimodel":
		return s.MultiModelBench(w)
	case "sharedext":
		return s.SharedExtractionBench(w)
	case "scaling":
		return s.ScalingBench(w)
	case "serving":
		return s.ServingBench(w)
	case "resilience":
		return s.ResilienceBench(w)
	case "all":
		for _, n := range Names {
			if err := s.Run(n, w); err != nil {
				return fmt.Errorf("%s: %v", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
}
