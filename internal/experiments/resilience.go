package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/faultinject"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/serve"
)

// ResilienceReport is the "resilience" experiment's section of
// BENCH_engine.json: overload protection and failure recovery measured
// end to end with the fault-injection harness — the shed rate and the
// admitted-work wait bound across an offered-load sweep, and a poisoned
// canary swap's rollback detection latency with the post-rollback
// equivalence check.
type ResilienceReport struct {
	Budget int `json:"budget"`
	// ServiceMicros is the injected per-task service time that fixes the
	// pool's capacity for the shed sweep (faultinject slow-plan latency).
	ServiceMicros float64 `json:"service_micros"`
	// MaxQueue is the shed policy installed on every load session.
	MaxQueue int                    `json:"max_queue"`
	Shed     []ShedPoint            `json:"shed"`
	Canary   *CanaryResiliencePoint `json:"canary,omitempty"`
}

// ShedPoint measures one offered-load level of the shed sweep.
type ShedPoint struct {
	// OfferedX is the offered load as a multiple of the pool's sustained
	// capacity (closed-loop sessions / worker budget).
	OfferedX float64 `json:"offered_x"`
	Sessions int     `json:"sessions"`
	// Served/Shed split the offered packets; ShedRate = Shed/(Served+Shed).
	Served   uint64  `json:"served"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// P99WaitMicros bounds the queue wait of ADMITTED work: the
	// wait-histogram bucket upper bound covering the 99th percentile
	// (-1 when the p99 falls in the open-ended last bucket).
	P99WaitMicros float64 `json:"p99_wait_micros"`
}

// CanaryResiliencePoint measures a poisoned canary swap end to end.
type CanaryResiliencePoint struct {
	RolledBack bool   `json:"rolled_back"`
	Reason     string `json:"reason,omitempty"`
	// DetectionMicros is swap start to rollback verdict (warm included);
	// DecisionWaitMicros is the shadow phase alone.
	DetectionMicros    float64 `json:"detection_micros"`
	DecisionWaitMicros float64 `json:"decision_wait_micros"`
	Samples            int     `json:"samples"`
	Disagreement       float64 `json:"disagreement"`
	// PostRollbackEquivalent reports whether, after the rollback, the
	// incumbent's classifications matched a control model that never
	// swapped, batch for batch.
	PostRollbackEquivalent bool `json:"post_rollback_equivalent"`
}

// loadEmission builds the minimal synthetic session for the shed sweep
// (out0 = in0 + 1); the injected slow-plan latency, not the program,
// fixes its service time.
func loadEmission(name string) (*core.Emitted, error) {
	var l pisa.Layout
	in0 := l.MustAdd("in0", 16)
	out0 := l.MustAdd("out0", 32)
	prog := pisa.NewProgram(name, &l, pisa.Tofino2)
	prog.Place(0, &pisa.Table{Name: "t_load", Kind: pisa.MatchNone, DefaultData: []int32{},
		Action: []pisa.Op{{Kind: pisa.OpAddImm, Dst: out0, A: in0, Imm: 1}}})
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &core.Emitted{Target: "resilience", Prog: prog,
		InFields: []pisa.FieldID{in0}, OutFields: []pisa.FieldID{out0},
		ClassField: out0, Stages: len(prog.Stages)}, nil
}

// ResilienceBench measures the serving plane's overload and failure
// behaviour. Phase 1 sweeps offered load over a pool whose per-task
// service time is pinned by the fault-injection harness: closed-loop
// sessions at 0.5×, 1× and 2× the worker budget, each behind a
// reject-newest shed policy, recording the shed rate and the p99 queue
// wait of admitted work. Phase 2 poisons a canary swap's observed
// classes and measures how long the mirror-and-compare loop takes to
// auto-roll-back, then replays identical traffic against a never-swapped
// control model to verify the incumbent was left bit-identical. The
// report lands in BENCH_engine.json as "resilience_points".
func (s *Suite) ResilienceBench(w io.Writer) error {
	budget := runtime.NumCPU()
	if budget < 2 {
		budget = 2
	}
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	const svc = 200 * time.Microsecond
	const maxQueue = 1
	rep := &ResilienceReport{Budget: budget,
		ServiceMicros: float64(svc) / float64(time.Microsecond), MaxQueue: maxQueue}
	fmt.Fprintf(w, "Resilience bench: %d-worker budget, %v service time, MaxQueue %d, %v windows\n",
		budget, svc, maxQueue, window)

	// Phase 1: shed rate vs offered load.
	for _, x := range []float64{0.5, 1, 2} {
		n := int(x * float64(budget))
		if n < 1 {
			n = 1
		}
		srv := serve.NewServer(serve.Options{Name: "resilience",
			Cap: pisa.Tofino2.Pipes(16), Budget: budget})
		sessions := make([]*serve.Model, n)
		for i := range sessions {
			em, err := loadEmission(fmt.Sprintf("load%d", i))
			if err != nil {
				srv.Close()
				return err
			}
			m, err := srv.Register(fmt.Sprintf("load%d", i), em, 1, serve.SLO{})
			if err != nil {
				srv.Close()
				return err
			}
			m.SetShedPolicy(pisa.ShedPolicy{MaxQueue: maxQueue})
			sessions[i] = m
		}
		faultinject.Arm(faultinject.SlowSession, "", svc, 0) // every task costs svc

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i, m := range sessions {
			wg.Add(1)
			go func(i int, m *serve.Model) {
				defer wg.Done()
				jobs := []pisa.Job{{Hash: uint32(i), In: []int32{int32(i)}}}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := m.RunCtx(nil, jobs); err != nil {
						var ov *pisa.ErrOverloaded
						if !errors.As(err, &ov) {
							return
						}
						// Shed: back off half a service time, as a
						// well-behaved client would.
						time.Sleep(svc / 2)
					}
				}
			}(i, m)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		faultinject.Reset()

		var served, shed uint64
		var hist [pisa.StatBuckets]uint64
		for _, m := range sessions {
			st := m.Stats()
			served += st.Packets
			shed += st.Shed
			for b, c := range st.WaitHist {
				hist[b] += c
			}
		}
		srv.Close()

		pt := ShedPoint{OfferedX: x, Sessions: n, Served: served, Shed: shed, P99WaitMicros: -1}
		if served+shed > 0 {
			pt.ShedRate = float64(shed) / float64(served+shed)
		}
		var tasks, cum uint64
		for _, c := range hist {
			tasks += c
		}
		for b, c := range hist {
			cum += c
			if float64(cum) >= 0.99*float64(tasks) {
				if b < len(pisa.WaitBuckets) {
					pt.P99WaitMicros = float64(pisa.WaitBuckets[b]) / float64(time.Microsecond)
				}
				break
			}
		}
		rep.Shed = append(rep.Shed, pt)
		fmt.Fprintf(w, "  offered %.1fx (%2d sessions): served %7d, shed %7d (rate %.3f), admitted p99 wait <= %.0fµs\n",
			x, n, served, shed, pt.ShedRate, pt.P99WaitMicros)
	}

	// Phase 2: poisoned canary — rollback detection latency and
	// post-rollback equivalence against a never-swapped control.
	ms, test, err := s.multiModels()
	if err != nil {
		return err
	}
	emit := func() (*core.Emitted, error) { return ms[0].Emit(1 << 10) }
	emProd, err := emit()
	if err != nil {
		return err
	}
	emCtrl, err := emit()
	if err != nil {
		return err
	}
	emNext, err := emit()
	if err != nil {
		return err
	}
	xs, _ := ms[0].Extract(test)
	all := core.BatchJobsFromFloats(xs)
	chunk := func(step int) []pisa.Job {
		const bs = 64
		if len(all) <= bs {
			return all
		}
		off := (step * bs) % (len(all) - bs)
		return all[off : off+bs]
	}

	srv := serve.NewServer(serve.Options{Name: "resilience-canary",
		Cap: pisa.Tofino2.Pipes(16), Budget: budget})
	defer srv.Close()
	prod, err := srv.Register("prod", emProd, 1, serve.SLO{})
	if err != nil {
		return err
	}
	ctrl, err := srv.Register("ctrl", emCtrl, 1, serve.SLO{})
	if err != nil {
		return err
	}

	faultinject.Arm(faultinject.PoisonCanary, "prod", 0, 0)
	defer faultinject.Reset()
	type swapRes struct {
		rep *serve.SwapReport
		err error
	}
	start := time.Now()
	ch := make(chan swapRes, 1)
	go func() {
		r, err := prod.Swap(emNext, serve.SwapOptions{MigrateState: true,
			Canary: &serve.CanaryOptions{Fraction: 1, MinSamples: 64, Window: -1}})
		ch <- swapRes{r, err}
	}()

	equivalent := true
	compare := func(step int) {
		jobs := chunk(step)
		rp := prod.Run(jobs)
		rc := ctrl.Run(jobs)
		for i := range jobs {
			if rp[i].Class != rc[i].Class {
				equivalent = false
				return
			}
		}
	}
	var verdict swapRes
	step := 0
drive:
	for ; ; step++ {
		if step > 5000 {
			return fmt.Errorf("resilience: canary never reached a verdict")
		}
		compare(step)
		select {
		case verdict = <-ch:
			break drive
		default:
		}
	}
	detection := time.Since(start)
	if verdict.err != nil {
		return fmt.Errorf("resilience: canary swap: %w", verdict.err)
	}
	for end := step + 10; step < end; step++ {
		compare(step)
	}
	sr := verdict.rep
	rep.Canary = &CanaryResiliencePoint{
		RolledBack:             sr.RolledBack,
		Reason:                 sr.RollbackReason,
		DetectionMicros:        float64(detection) / float64(time.Microsecond),
		DecisionWaitMicros:     float64(sr.DecisionWait) / float64(time.Microsecond),
		Samples:                sr.CanarySamples,
		Disagreement:           sr.Disagreement,
		PostRollbackEquivalent: equivalent && prod.Version() == 1,
	}
	fmt.Fprintf(w, "  canary: rolled_back=%v in %.0fµs (decision wait %.0fµs, %d samples, disagreement %.3f), post-rollback equivalent=%v\n",
		rep.Canary.RolledBack, rep.Canary.DetectionMicros, rep.Canary.DecisionWaitMicros,
		rep.Canary.Samples, rep.Canary.Disagreement, rep.Canary.PostRollbackEquivalent)

	return s.writeResilience(w, rep)
}

// writeResilience merges the resilience section into BENCH_engine.json.
func (s *Suite) writeResilience(w io.Writer, rep *ResilienceReport) error {
	if s.Cfg.EngineJSON == "" {
		return nil
	}
	full := EngineBenchReport{}
	if data, err := os.ReadFile(s.Cfg.EngineJSON); err == nil {
		_ = json.Unmarshal(data, &full)
	}
	full.ResiliencePoints = rep
	data, err := json.MarshalIndent(&full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	return nil
}
