package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestSuiteRunsEveryArtefact smoke-tests Suite.Run for every named
// artefact at a quick preset: the full model zoo trains, compiles
// through the staged pipeline, and every table/figure renders without
// error. Bundles are cached on the suite, so the zoo trains once per
// dataset across all artefacts.
func TestSuiteRunsEveryArtefact(t *testing.T) {
	s := NewSuite(Config{FlowsPerClass: 14, Epochs: 0.05, Seed: 3})
	for _, name := range Names {
		var b strings.Builder
		if err := s.Run(name, &b); err != nil {
			t.Fatalf("Run(%q): %v", name, err)
		}
		if b.Len() == 0 {
			t.Fatalf("Run(%q) produced no output", name)
		}
	}
}

// TestSuiteRunAll exercises the "all" dispatcher on an already-trained
// suite (bundle reuse keeps this cheap).
func TestSuiteRunAll(t *testing.T) {
	s := NewSuite(Config{FlowsPerClass: 14, Epochs: 0.05, Seed: 3})
	if err := s.Run("all", io.Discard); err != nil {
		t.Fatalf("Run(all): %v", err)
	}
}

// TestSuiteRejectsUnknownArtefact checks the error path names the
// available experiments.
func TestSuiteRejectsUnknownArtefact(t *testing.T) {
	s := NewSuite(Config{FlowsPerClass: 14, Epochs: 0.05, Seed: 3})
	err := s.Run("fig99", io.Discard)
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "table5") {
		t.Fatalf("error should name the unknown and the available experiments: %v", err)
	}
	if err := s.Run("fig8", io.Discard); err != nil {
		t.Fatalf("suite unusable after rejection: %v", err)
	}
}

// TestSuiteUnknownDataset checks Bundle propagates dataset errors.
func TestSuiteUnknownDataset(t *testing.T) {
	s := NewSuite(Config{FlowsPerClass: 14, Epochs: 0.05, Seed: 3})
	if _, err := s.Bundle("NotADataset"); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}
