package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/serve"
)

// ServingReport is the "serving" experiment's section of
// BENCH_engine.json: the serving control plane measured end to end —
// admission latency on both outcomes, live-swap downtime with the
// co-resident throughput dip, and the SLO tuner's occupancy
// convergence — plus the final metrics snapshot the endpoint serves.
type ServingReport struct {
	Budget int `json:"budget"`
	// Pipes is the deployment capacity multiplier that admitted the
	// model zoo (pisa.Tofino2.Pipes(n)).
	Pipes       int                `json:"pipes"`
	Admissions  []AdmissionPoint   `json:"admissions"`
	Swap        *ServingSwapPoint  `json:"swap,omitempty"`
	Convergence []ConvergencePoint `json:"convergence,omitempty"`
	Snapshot    *serve.Snapshot    `json:"snapshot,omitempty"`
}

// AdmissionPoint times one Register call through admission control.
type AdmissionPoint struct {
	Model   string  `json:"model"`
	Outcome string  `json:"outcome"` // "admitted" or "rejected"
	Micros  float64 `json:"micros"`
	// Dim is the exhausted resource dimension on rejection.
	Dim string `json:"dim,omitempty"`
}

// ServingSwapPoint measures one live version swap under sustained
// co-resident load.
type ServingSwapPoint struct {
	Model             string  `json:"model"`
	WarmMicros        float64 `json:"warm_micros"`
	DrainWaitMicros   float64 `json:"drain_wait_micros"`
	CutoverMicros     float64 `json:"cutover_micros"`
	DowntimeMicros    float64 `json:"downtime_micros"`
	MigratedRegisters int     `json:"migrated_registers"`
	// CoResidentDip is the worst fractional throughput drop any OTHER
	// model showed in the measurement window containing the swap,
	// relative to its pre-swap baseline window (negative = it sped up).
	CoResidentDip float64 `json:"co_resident_dip"`
}

// ConvergencePoint is one model's occupancy in one tuner round.
type ConvergencePoint struct {
	Round       int     `json:"round"`
	Model       string  `json:"model"`
	TargetShare float64 `json:"target_share"`
	WindowShare float64 `json:"window_share"`
	Weight      int     `json:"weight"`
}

// ServingBench exercises the serving control plane end to end with the
// trained model zoo: admission (timed on both outcomes, including a
// clone flood until the deployment budget rejects), a live swap of the
// first model under sustained load on every model, and the SLO
// tuner's convergence toward asymmetric occupancy targets. The report
// lands in BENCH_engine.json as "serving_points".
func (s *Suite) ServingBench(w io.Writer) error {
	ms, test, err := s.multiModels()
	if err != nil {
		return err
	}
	budget := runtime.NumCPU()
	window := time.Duration(s.Cfg.MeasureMS) * time.Millisecond

	type entry struct {
		name string
		em   *core.Emitted
		jobs []pisa.Job
		slo  serve.SLO
	}
	emit := func(i int) (*core.Emitted, error) {
		em, err := ms[i].Emit(1 << 10)
		if err != nil {
			return nil, fmt.Errorf("%s emit: %w", ms[i].Name, err)
		}
		return em, nil
	}
	entries := make([]entry, len(ms))
	for i, m := range ms {
		em, err := emit(i)
		if err != nil {
			return err
		}
		xs, _ := m.Extract(test)
		// Model 0 is prioritised to half the pool's busy time (the
		// alternation ceiling one closed-loop session can reach); the
		// rest split the remainder evenly.
		slo := serve.SLO{TargetShare: 0.5 / float64(len(ms)-1)}
		if i == 0 {
			slo.TargetShare = 0.5
		}
		entries[i] = entry{name: m.Name, em: em, jobs: core.BatchJobsFromFloats(xs), slo: slo}
	}

	// Grow the deployment capacity until the zoo fits: the report
	// records which multiple of the single-switch budget admitted it.
	rep := &ServingReport{Budget: budget}
	var srv *serve.Server
	models := make([]*serve.Model, len(entries))
	for pipes := 2; ; pipes *= 2 {
		if pipes > 16 {
			return fmt.Errorf("serving: model zoo does not fit 16 pipes")
		}
		srv = serve.NewServer(serve.Options{Name: "serving", Cap: pisa.Tofino2.Pipes(pipes), Budget: budget})
		ok := true
		rep.Admissions = rep.Admissions[:0]
		for i, e := range entries {
			start := time.Now()
			m, err := srv.Register(e.name, e.em, 1, e.slo)
			micros := float64(time.Since(start)) / float64(time.Microsecond)
			if err != nil {
				var ae *serve.AdmissionError
				if !errors.As(err, &ae) {
					srv.Close()
					return err
				}
				ok = false
				break
			}
			models[i] = m
			rep.Admissions = append(rep.Admissions, AdmissionPoint{Model: e.name, Outcome: "admitted", Micros: micros})
		}
		if ok {
			rep.Pipes = pipes
			break
		}
		srv.Close()
	}
	defer srv.Close()
	fmt.Fprintf(w, "Serving bench: %d models admitted on Tofino2.Pipes(%d), %d-worker budget (%v windows)\n",
		len(entries), rep.Pipes, budget, window)

	// Clone flood: keep registering fresh emissions of the largest
	// model until the remaining combined capacity rejects one — the
	// rejected-path admission latency, with the exhausted dimension.
	for i := 0; i < 16; i++ {
		em, err := emit(len(ms) - 1)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("clone%d", i)
		start := time.Now()
		_, err = srv.Register(name, em, 1, serve.SLO{})
		micros := float64(time.Since(start)) / float64(time.Microsecond)
		if err == nil {
			rep.Admissions = append(rep.Admissions, AdmissionPoint{Model: name, Outcome: "admitted", Micros: micros})
			continue
		}
		var ae *serve.AdmissionError
		if !errors.As(err, &ae) {
			return err
		}
		dim := ""
		if len(ae.Report.Excesses) > 0 {
			dim = string(ae.Report.Excesses[0].Dim)
		}
		rep.Admissions = append(rep.Admissions, AdmissionPoint{Model: name, Outcome: "rejected", Micros: micros, Dim: dim})
		break
	}
	for _, a := range rep.Admissions {
		fmt.Fprintf(w, "  admission %-8s %-8s %8.1fµs %s\n", a.Model, a.Outcome, a.Micros, a.Dim)
	}

	// Sustained load on every admitted model; per-model packet
	// counters sampled to measure windows.
	counts := make([]atomic.Uint64, len(models))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range models {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := models[i].Run(entries[i].jobs)
				counts[i].Add(uint64(len(res)))
			}
		}(i)
	}
	sample := func() []uint64 {
		out := make([]uint64, len(counts))
		for i := range counts {
			out[i] = counts[i].Load()
		}
		return out
	}

	// Baseline window, then a window containing the swap of model 0.
	base0 := sample()
	time.Sleep(window)
	base1 := sample()
	v2, err := emit(0)
	if err != nil {
		close(stop)
		wg.Wait()
		return err
	}
	// The dip window opens once the new version has warmed: the warm
	// compile shares the process CPU with the workers (inflating any
	// window that contains it, grossly so on small hosts), while the
	// phase co-residents actually feel is the drain+cutover.
	warmed := make(chan struct{})
	swapCh := make(chan *serve.SwapReport, 1)
	errCh := make(chan error, 1)
	go func() {
		r, err := models[0].Swap(v2, serve.SwapOptions{
			MigrateState: true,
			OnWarmed:     func() { close(warmed) },
		})
		errCh <- err
		swapCh <- r
	}()
	<-warmed
	during0 := sample()
	time.Sleep(window)
	during1 := sample()
	if err := <-errCh; err != nil {
		close(stop)
		wg.Wait()
		return err
	}
	sr := <-swapCh
	worstDip := 0.0
	for i := 1; i < len(models); i++ {
		before := float64(base1[i] - base0[i])
		during := float64(during1[i] - during0[i])
		if before <= 0 {
			continue
		}
		if dip := 1 - during/before; dip > worstDip {
			worstDip = dip
		}
	}
	rep.Swap = &ServingSwapPoint{
		Model:             entries[0].name,
		WarmMicros:        float64(sr.Warm) / float64(time.Microsecond),
		DrainWaitMicros:   float64(sr.DrainWait) / float64(time.Microsecond),
		CutoverMicros:     float64(sr.Cutover) / float64(time.Microsecond),
		DowntimeMicros:    float64(sr.Downtime) / float64(time.Microsecond),
		MigratedRegisters: sr.MigratedRegisters,
		CoResidentDip:     worstDip,
	}
	fmt.Fprintf(w, "  swap %s v%d->v%d: warm %.0fµs, drain %.0fµs, cutover %.0fµs, downtime %.0fµs, co-resident dip %.1f%%\n",
		sr.Model, sr.From, sr.To, rep.Swap.WarmMicros, rep.Swap.DrainWaitMicros,
		rep.Swap.CutoverMicros, rep.Swap.DowntimeMicros, 100*worstDip)

	// Tuner convergence: round windows of TuneOnce against the
	// declared asymmetric targets, recording each model's window share.
	const rounds = 8
	roundWin := window / 2
	if roundWin < 25*time.Millisecond {
		roundWin = 25 * time.Millisecond
	}
	prevBusy := make([]time.Duration, len(models))
	for i, m := range models {
		prevBusy[i] = m.Stats().Busy
	}
	for round := 0; round < rounds; round++ {
		time.Sleep(roundWin)
		srv.TuneOnce()
		var total time.Duration
		deltas := make([]time.Duration, len(models))
		for i, m := range models {
			busy := m.Stats().Busy
			deltas[i] = busy - prevBusy[i]
			prevBusy[i] = busy
			total += deltas[i]
		}
		for i, m := range models {
			share := 0.0
			if total > 0 {
				share = float64(deltas[i]) / float64(total)
			}
			rep.Convergence = append(rep.Convergence, ConvergencePoint{
				Round: round, Model: entries[i].name,
				TargetShare: entries[i].slo.TargetShare,
				WindowShare: share, Weight: m.Weight(),
			})
		}
	}
	close(stop)
	wg.Wait()
	for i, m := range models {
		last := rep.Convergence[len(rep.Convergence)-len(models)+i]
		fmt.Fprintf(w, "  slo %-8s target %.2f final share %.2f weight %d\n",
			entries[i].name, last.TargetShare, last.WindowShare, m.Weight())
	}

	snap := srv.Snapshot()
	rep.Snapshot = &snap
	return s.writeServing(w, rep)
}

// writeServing merges the serving section into BENCH_engine.json.
func (s *Suite) writeServing(w io.Writer, rep *ServingReport) error {
	if s.Cfg.EngineJSON == "" {
		return nil
	}
	full := EngineBenchReport{}
	if data, err := os.ReadFile(s.Cfg.EngineJSON); err == nil {
		_ = json.Unmarshal(data, &full)
	}
	full.ServingPoints = rep
	data, err := json.MarshalIndent(&full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(s.Cfg.EngineJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", s.Cfg.EngineJSON)
	return nil
}
