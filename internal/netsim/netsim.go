// Package netsim provides the traffic substrate: packets, five-tuple
// flows, a replay engine that merges flows into a time-ordered packet
// stream (the role tcpreplay plays in the paper's testbed), and the
// feature extractors the models consume — flow-level statistics,
// length/IPD sequences, and raw payload bytes.
package netsim

import (
	"fmt"
	"sort"
)

// PayloadBytes is the number of raw payload bytes CNN-L extracts per
// packet (60 bytes × 8 packets = 3840-bit input scale, Table 5).
const PayloadBytes = 60

// FiveTuple identifies a flow.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the tuple in the usual notation.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d→%s:%d/%d", ipStr(t.SrcIP), t.SrcPort, ipStr(t.DstIP), t.DstPort, t.Proto)
}

func ipStr(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Hash returns a deterministic slot hash of the tuple (FNV-1a), used to
// index per-flow register arrays on the switch.
func (t FiveTuple) Hash() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime
	}
	for i := 0; i < 4; i++ {
		mix(byte(t.SrcIP >> (8 * i)))
		mix(byte(t.DstIP >> (8 * i)))
	}
	mix(byte(t.SrcPort))
	mix(byte(t.SrcPort >> 8))
	mix(byte(t.DstPort))
	mix(byte(t.DstPort >> 8))
	mix(t.Proto)
	return h
}

// Packet is one observed packet of a flow.
type Packet struct {
	// Time is the arrival timestamp in microseconds.
	Time uint64
	// Len is the wire length in bytes.
	Len int
	// Dir is 0 for client→server, 1 for the reverse direction.
	Dir int
	// Payload holds the first PayloadBytes bytes of the payload.
	Payload [PayloadBytes]byte
}

// Flow is a labelled sequence of packets sharing a five-tuple.
type Flow struct {
	Tuple   FiveTuple
	Class   int
	Packets []Packet
}

// IPD returns the inter-packet delay (µs) preceding packet i of the
// flow; the first packet has IPD 0.
func (f *Flow) IPD(i int) uint64 {
	if i <= 0 || i >= len(f.Packets) {
		return 0
	}
	return f.Packets[i].Time - f.Packets[i-1].Time
}

// StreamPacket is one packet within a merged replay stream, annotated
// with its source flow.
type StreamPacket struct {
	Flow *Flow
	Idx  int // index within Flow.Packets
}

// Merge interleaves all flows into one time-ordered packet stream. Ties
// break on flow order then packet index, so replay is deterministic.
func Merge(flows []Flow) []StreamPacket {
	var stream []StreamPacket
	for fi := range flows {
		for pi := range flows[fi].Packets {
			stream = append(stream, StreamPacket{Flow: &flows[fi], Idx: pi})
		}
	}
	sort.SliceStable(stream, func(a, b int) bool {
		return stream[a].Flow.Packets[stream[a].Idx].Time < stream[b].Flow.Packets[stream[b].Idx].Time
	})
	return stream
}
