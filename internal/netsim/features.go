package netsim

import "math"

// Feature extraction mirrors what the compiled dataplane programs
// compute with registers and range tables; the host-side versions here
// produce the training data, so they must stay bit-for-bit consistent
// with the switch implementations (integer bucketing only).

// LenBucket compresses a packet length (0..1500+) into an 8-bit bucket
// (len/6, saturating), implementable on-switch with a shift-free range
// table or multiply-free scaling.
func LenBucket(length int) int {
	b := length / 6
	if b > 255 {
		b = 255
	}
	if b < 0 {
		b = 0
	}
	return b
}

// IPDBucket compresses an inter-packet delay in µs into an 8-bit bucket
// using an integer log2 scale (16·log2(1+ipd), saturating). On the
// switch this is a 256-entry range table — a Map primitive.
func IPDBucket(ipd uint64) int {
	b := int(16 * math.Log2(float64(1+ipd)))
	if b > 255 {
		b = 255
	}
	return b
}

// StatFeatureNames labels the 8 flow-level statistical features used by
// MLP-B, N3IC and Leo: max/min length and max/min IPD per direction
// (8 × 16 bits = the 128-bit input scale of Table 5).
var StatFeatureNames = []string{
	"fwd_max_len", "fwd_min_len", "rev_max_len", "rev_min_len",
	"fwd_max_ipd", "fwd_min_ipd", "rev_max_ipd", "rev_min_ipd",
}

// StatFeatures computes the 8 flow statistics over the first n packets
// of the flow (whole flow when n <= 0). IPD stats are bucketed with
// IPDBucket to stay in 16-bit register range; length stats are raw
// bytes. Missing directions yield zeros.
func StatFeatures(f *Flow, n int) []float64 {
	if n <= 0 || n > len(f.Packets) {
		n = len(f.Packets)
	}
	const inf = math.MaxInt32
	maxLen := [2]int{0, 0}
	minLen := [2]int{inf, inf}
	maxIPD := [2]int{0, 0}
	minIPD := [2]int{inf, inf}
	lastTime := [2]uint64{}
	seen := [2]bool{}
	for i := 0; i < n; i++ {
		p := &f.Packets[i]
		d := p.Dir
		if p.Len > maxLen[d] {
			maxLen[d] = p.Len
		}
		if p.Len < minLen[d] {
			minLen[d] = p.Len
		}
		if seen[d] {
			ipd := IPDBucket(p.Time - lastTime[d])
			if ipd > maxIPD[d] {
				maxIPD[d] = ipd
			}
			if ipd < minIPD[d] {
				minIPD[d] = ipd
			}
		}
		lastTime[d] = p.Time
		seen[d] = true
	}
	out := make([]float64, 8)
	for d := 0; d < 2; d++ {
		if !seen[d] {
			minLen[d] = 0
		}
		if minIPD[d] == inf {
			minIPD[d] = 0
		}
		out[d*2] = float64(maxLen[d])
		out[d*2+1] = float64(minLen[d])
		out[4+d*2] = float64(maxIPD[d])
		out[4+d*2+1] = float64(minIPD[d])
	}
	return out
}

// SeqWindow is one model input window extracted from a flow.
type SeqWindow struct {
	// LenB and IPDB are the 8-bit length and IPD buckets per step.
	LenB, IPDB []int
	// Payload holds the per-packet payload bytes (window × PayloadBytes).
	Payload [][PayloadBytes]byte
	Class   int
}

// SeqWindows slices a flow into consecutive non-overlapping windows of w
// packets each (discarding the ragged tail), producing the raw packet
// sequences consumed by RNN-B, CNN-B/M/L and the AutoEncoder.
func SeqWindows(f *Flow, w int) []SeqWindow {
	if w <= 0 {
		panic("netsim: window must be positive")
	}
	var out []SeqWindow
	for start := 0; start+w <= len(f.Packets); start += w {
		win := SeqWindow{
			LenB:    make([]int, w),
			IPDB:    make([]int, w),
			Payload: make([][PayloadBytes]byte, w),
			Class:   f.Class,
		}
		for i := 0; i < w; i++ {
			p := &f.Packets[start+i]
			win.LenB[i] = LenBucket(p.Len)
			win.IPDB[i] = IPDBucket(f.IPD(start + i))
			win.Payload[i] = p.Payload
		}
		out = append(out, win)
	}
	return out
}

// SeqFeatures flattens a window into the 2-features-per-step layout
// (len bucket, ipd bucket) used as RNN/CNN input: w×2 values.
func (w *SeqWindow) SeqFeatures() []float64 {
	out := make([]float64, 0, 2*len(w.LenB))
	for i := range w.LenB {
		out = append(out, float64(w.LenB[i]), float64(w.IPDB[i]))
	}
	return out
}

// PayloadFeatures flattens the window's raw payload bytes into
// w×PayloadBytes values in [0,255] — CNN-L's 3840-bit input.
func (w *SeqWindow) PayloadFeatures() []float64 {
	out := make([]float64, 0, len(w.Payload)*PayloadBytes)
	for i := range w.Payload {
		for _, b := range w.Payload[i] {
			out = append(out, float64(b))
		}
	}
	return out
}
