package netsim

import (
	"testing"
	"testing/quick"
)

func TestFiveTupleHashDeterministicAndSpread(t *testing.T) {
	a := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
	b := a
	b.SrcPort = 5
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision on near tuples (suspicious)")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFlowIPD(t *testing.T) {
	f := Flow{Packets: []Packet{{Time: 100}, {Time: 150}, {Time: 400}}}
	if f.IPD(0) != 0 || f.IPD(1) != 50 || f.IPD(2) != 250 {
		t.Fatalf("IPD = %d %d %d", f.IPD(0), f.IPD(1), f.IPD(2))
	}
	if f.IPD(-1) != 0 || f.IPD(99) != 0 {
		t.Fatal("IPD out of range should be 0")
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	flows := []Flow{
		{Packets: []Packet{{Time: 10}, {Time: 30}}},
		{Packets: []Packet{{Time: 5}, {Time: 20}, {Time: 40}}},
	}
	stream := Merge(flows)
	if len(stream) != 5 {
		t.Fatalf("stream len = %d", len(stream))
	}
	prev := uint64(0)
	for _, sp := range stream {
		tm := sp.Flow.Packets[sp.Idx].Time
		if tm < prev {
			t.Fatalf("stream not time ordered: %d after %d", tm, prev)
		}
		prev = tm
	}
}

func TestLenBucketRangesAndClamp(t *testing.T) {
	if LenBucket(0) != 0 || LenBucket(-5) != 0 {
		t.Fatal("low clamp")
	}
	if LenBucket(1500) != 250 {
		t.Fatalf("LenBucket(1500) = %d", LenBucket(1500))
	}
	if LenBucket(100000) != 255 {
		t.Fatal("high clamp")
	}
	if LenBucket(60) != 10 {
		t.Fatalf("LenBucket(60) = %d", LenBucket(60))
	}
}

func TestIPDBucketMonotone(t *testing.T) {
	prev := -1
	for _, ipd := range []uint64{0, 1, 10, 100, 1000, 1e6, 1e9} {
		b := IPDBucket(ipd)
		if b < prev {
			t.Fatalf("IPDBucket not monotone at %d", ipd)
		}
		if b < 0 || b > 255 {
			t.Fatalf("IPDBucket out of range: %d", b)
		}
		prev = b
	}
	if IPDBucket(0) != 0 {
		t.Fatal("IPDBucket(0) != 0")
	}
}

func TestBucketPropertyBounds(t *testing.T) {
	f := func(length int, ipd uint64) bool {
		lb := LenBucket(length % 100000)
		ib := IPDBucket(ipd % (1 << 40))
		return lb >= 0 && lb <= 255 && ib >= 0 && ib <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatFeatures(t *testing.T) {
	f := Flow{Packets: []Packet{
		{Time: 0, Len: 100, Dir: 0},
		{Time: 50, Len: 300, Dir: 0},
		{Time: 60, Len: 900, Dir: 1},
		{Time: 200, Len: 50, Dir: 1},
	}}
	feats := StatFeatures(&f, 0)
	if len(feats) != 8 {
		t.Fatalf("len = %d", len(feats))
	}
	if feats[0] != 300 || feats[1] != 100 { // fwd max/min len
		t.Fatalf("fwd len stats = %v", feats[:2])
	}
	if feats[2] != 900 || feats[3] != 50 { // rev max/min len
		t.Fatalf("rev len stats = %v", feats[2:4])
	}
	// fwd IPD: 50µs bucketed; only one gap so max == min.
	if feats[4] != feats[5] || feats[4] != float64(IPDBucket(50)) {
		t.Fatalf("fwd ipd stats = %v", feats[4:6])
	}
	// rev IPD gap: 140µs.
	if feats[6] != float64(IPDBucket(140)) {
		t.Fatalf("rev ipd max = %v", feats[6])
	}
}

func TestStatFeaturesMissingDirection(t *testing.T) {
	f := Flow{Packets: []Packet{{Time: 0, Len: 100, Dir: 0}, {Time: 10, Len: 200, Dir: 0}}}
	feats := StatFeatures(&f, 0)
	if feats[2] != 0 || feats[3] != 0 || feats[6] != 0 || feats[7] != 0 {
		t.Fatalf("missing direction should zero: %v", feats)
	}
}

func TestStatFeaturesPrefix(t *testing.T) {
	f := Flow{Packets: []Packet{
		{Time: 0, Len: 100, Dir: 0},
		{Time: 10, Len: 1400, Dir: 0},
	}}
	feats := StatFeatures(&f, 1) // only first packet
	if feats[0] != 100 {
		t.Fatalf("prefix max len = %v", feats[0])
	}
}

func TestSeqWindows(t *testing.T) {
	f := Flow{Class: 2}
	for i := 0; i < 19; i++ {
		var p Packet
		p.Time = uint64(i * 100)
		p.Len = 60 * (i + 1)
		p.Payload[0] = byte(i)
		f.Packets = append(f.Packets, p)
	}
	wins := SeqWindows(&f, 8)
	if len(wins) != 2 { // 19/8 = 2 full windows
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	w := wins[0]
	if w.Class != 2 || len(w.LenB) != 8 || len(w.Payload) != 8 {
		t.Fatalf("window shape: %+v", w)
	}
	if w.LenB[0] != LenBucket(60) || w.IPDB[0] != 0 {
		t.Fatalf("first step: len %d ipd %d", w.LenB[0], w.IPDB[0])
	}
	if w.IPDB[1] != IPDBucket(100) {
		t.Fatal("second step ipd")
	}
	// Second window starts at packet 8.
	if wins[1].Payload[0][0] != 8 {
		t.Fatal("second window payload offset")
	}
	sf := w.SeqFeatures()
	if len(sf) != 16 || sf[0] != float64(w.LenB[0]) || sf[1] != float64(w.IPDB[0]) {
		t.Fatalf("SeqFeatures = %v", sf[:2])
	}
	pf := w.PayloadFeatures()
	if len(pf) != 8*PayloadBytes {
		t.Fatalf("PayloadFeatures len = %d", len(pf))
	}
	if pf[0] != 0 || pf[PayloadBytes] != 1 {
		t.Fatal("payload layout")
	}
}

func TestSeqWindowsPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	f := Flow{}
	SeqWindows(&f, 0)
}
