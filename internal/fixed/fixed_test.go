package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(1, 0); err == nil {
		t.Fatal("want error for 1-bit quantizer")
	}
	if _, err := NewQuantizer(33, 0); err == nil {
		t.Fatal("want error for 33-bit quantizer")
	}
	q, err := NewQuantizer(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxVal() != 127.0/16 || q.MinVal() != -128.0/16 {
		t.Fatalf("8.4 range = [%g,%g], want [-8, 7.9375]", q.MinVal(), q.MaxVal())
	}
}

func TestQuantizeRoundTripExact(t *testing.T) {
	q := MustQuantizer(8, 4)
	// Multiples of the step must round-trip exactly.
	for raw := -128; raw <= 127; raw++ {
		x := float64(raw) / 16
		if got := q.Quantize(x); got != int32(raw) {
			t.Fatalf("Quantize(%g) = %d, want %d", x, got, raw)
		}
		if got := q.Dequantize(int32(raw)); got != x {
			t.Fatalf("Dequantize(%d) = %g, want %g", raw, got, x)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := MustQuantizer(8, 4)
	if got := q.Quantize(1000); got != 127 {
		t.Fatalf("Quantize(1000) = %d, want saturation at 127", got)
	}
	if got := q.Quantize(-1000); got != -128 {
		t.Fatalf("Quantize(-1000) = %d, want saturation at -128", got)
	}
}

func TestFitChoosesLargestSafePosition(t *testing.T) {
	// Values in [0,5] with 8 bits: 5*2^4 = 80 <= 127, 5*2^5 = 160 > 127.
	q, err := Fit(8, []float64{0, 1.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if q.Frac != 4 {
		t.Fatalf("Fit frac = %d, want 4", q.Frac)
	}
	// Values in [-100,100] with 8 bits: 100*2^0 = 100 <= 127.
	q, err = Fit(8, []float64{-100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if q.Frac != 0 {
		t.Fatalf("Fit frac = %d, want 0", q.Frac)
	}
}

func TestFitEmptyAndTiny(t *testing.T) {
	q, err := Fit(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Frac != 7 {
		t.Fatalf("Fit(nil) frac = %d, want 7", q.Frac)
	}
	// Tiny values should still cap at bits-1 fractional bits.
	q, err = Fit(8, []float64{1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if q.Frac != 7 {
		t.Fatalf("Fit(tiny) frac = %d, want 7", q.Frac)
	}
}

func TestFitWideRangeUsesNegativePosition(t *testing.T) {
	q, err := Fit(8, []float64{350})
	if err != nil {
		t.Fatal(err)
	}
	if q.Frac >= 0 {
		t.Fatalf("Fit(350, 8 bits) frac = %d, want negative", q.Frac)
	}
	// 350 must be representable within one step.
	if math.Abs(q.RoundTrip(350)-350) > q.Step() {
		t.Fatalf("roundtrip(350) = %g", q.RoundTrip(350))
	}
	// Huge values fall back to the clamp without error.
	if _, err := Fit(8, []float64{1e30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitNeverSaturatesProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		xs := []float64{math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)}
		q, err := Fit(16, xs)
		if err != nil {
			return false
		}
		for _, x := range xs {
			got := q.RoundTrip(x)
			if math.Abs(got-x) > q.Step() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripErrorBoundProperty(t *testing.T) {
	q := MustQuantizer(16, 8)
	f := func(x float64) bool {
		x = math.Mod(x, 100) // keep in representable range
		if math.IsNaN(x) {
			return true
		}
		return math.Abs(q.RoundTrip(x)-x) <= q.Step()/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatAdd32(t *testing.T) {
	cases := []struct{ a, b, want int32 }{
		{1, 2, 3},
		{math.MaxInt32, 1, math.MaxInt32},
		{math.MinInt32, -1, math.MinInt32},
		{math.MaxInt32, math.MinInt32, -1},
		{-5, 5, 0},
	}
	for _, c := range cases {
		if got := SatAdd32(c.a, c.b); got != c.want {
			t.Errorf("SatAdd32(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatAddVec(t *testing.T) {
	a := []int32{1, math.MaxInt32, -1}
	b := []int32{2, 10, math.MinInt32}
	SatAddVec(a, b)
	want := []int32{3, math.MaxInt32, math.MinInt32}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("SatAddVec[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestSatAddVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	SatAddVec([]int32{1}, []int32{1, 2})
}

func TestRescaleUpAndDown(t *testing.T) {
	// 1.5 at q4 = 24 raw; at q6 = 96 raw; back down = 24.
	if got := Rescale(24, 4, 6); got != 96 {
		t.Fatalf("Rescale up = %d, want 96", got)
	}
	if got := Rescale(96, 6, 4); got != 24 {
		t.Fatalf("Rescale down = %d, want 24", got)
	}
	if got := Rescale(24, 4, 4); got != 24 {
		t.Fatalf("Rescale same = %d, want 24", got)
	}
}

func TestRescaleRounding(t *testing.T) {
	// 25 at q4 = 1.5625; at q2 that is 6.25 -> rounds to 6 (1.5).
	if got := Rescale(25, 4, 2); got != 6 {
		t.Fatalf("Rescale(25,4,2) = %d, want 6", got)
	}
	// Negative symmetric: -25 -> -6.
	if got := Rescale(-25, 4, 2); got != -6 {
		t.Fatalf("Rescale(-25,4,2) = %d, want -6", got)
	}
	// Half rounds away from zero: 24+4=28 -> 28/16 = 1.75 -> q2 7.
	if got := Rescale(28, 4, 2); got != 7 {
		t.Fatalf("Rescale(28,4,2) = %d, want 7", got)
	}
}

func TestRescaleSaturatesOnUpshift(t *testing.T) {
	if got := Rescale(math.MaxInt32/2+1, 0, 1); got != math.MaxInt32 {
		t.Fatalf("Rescale overflow = %d, want MaxInt32", got)
	}
	if got := Rescale(math.MinInt32/2-1, 0, 1); got != math.MinInt32 {
		t.Fatalf("Rescale underflow = %d, want MinInt32", got)
	}
}

func TestRescaleRoundTripProperty(t *testing.T) {
	f := func(raw int16, shift uint8) bool {
		s := int8(shift % 8)
		up := Rescale(int32(raw), 4, 4+s)
		back := Rescale(up, 4+s, 4)
		return back == int32(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRescaleNegativePositions(t *testing.T) {
	// 1.5 at q-1 (steps of 2): raw 1 means 2.0. Moving q4→q-1: 24 (=1.5)
	// becomes round(1.5/2)=1.
	if got := Rescale(24, 4, -1); got != 1 {
		t.Fatalf("Rescale(24, 4, -1) = %d, want 1", got)
	}
	if got := Rescale(1, -1, 4); got != 32 { // 2.0 at q4
		t.Fatalf("Rescale(1, -1, 4) = %d, want 32", got)
	}
}

func TestQuantizeVecDequantizeVec(t *testing.T) {
	q := MustQuantizer(8, 4)
	xs := []float64{0, 1, -1, 3.0625}
	raw := q.QuantizeVec(xs, nil)
	back := q.DequantizeVec(raw, nil)
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > q.Step()/2 {
			t.Fatalf("vec roundtrip[%d]: %g -> %g", i, xs[i], back[i])
		}
	}
	// In-place reuse path.
	raw2 := q.QuantizeVec(xs, raw)
	if &raw2[0] != &raw[0] {
		t.Fatal("QuantizeVec should reuse dst")
	}
}

func TestQString(t *testing.T) {
	q := Q{Raw: 24, Frac: 4}
	if q.Float() != 1.5 {
		t.Fatalf("Q.Float = %g, want 1.5", q.Float())
	}
	if s := q.String(); s != "1.5(q4)" {
		t.Fatalf("Q.String = %q", s)
	}
}
