// Package fixed implements the fixed-point numeric substrate used by
// Pegasus on the dataplane (§4.4 of the paper).
//
// PISA switches support only integer add/subtract/shift/compare, so all
// activations crossing table boundaries are represented as fixed-point
// integers. Weights stay full precision: they are baked into precomputed
// mapping-table entries, and only the *outputs* of those tables are
// quantised. Because input and output numeric ranges of a layer can
// differ wildly (e.g. inputs in [-100,100], outputs in [0,5]), Pegasus
// uses adaptive per-boundary fixed-point positions chosen from observed
// ranges (post-training static quantisation).
package fixed

import (
	"fmt"
	"math"
)

// Q is a fixed-point value: the real number Raw × 2^-Frac. Frac may be
// negative (coarser-than-integer resolution for wide ranges). It is a
// carrier for debugging and tests; hot paths use raw int32.
type Q struct {
	Raw  int32
	Frac int8
}

// Float returns the real value represented by q.
func (q Q) Float() float64 { return math.Ldexp(float64(q.Raw), -int(q.Frac)) }

// String implements fmt.Stringer.
func (q Q) String() string { return fmt.Sprintf("%g(q%d)", q.Float(), q.Frac) }

// Quantizer converts between float64 activations and fixed-point integers
// with a given bit width and fractional position. The zero value is not
// usable; construct with NewQuantizer or Fit.
type Quantizer struct {
	// Bits is the total signed bit width (including sign), 2..32.
	Bits uint8
	// Frac is the fixed-point position: value = raw × 2^−Frac. Negative
	// positions give coarser-than-integer steps, which the adaptive
	// fitting uses for wide numerical ranges.
	Frac int8
	// min/max representable raw values.
	lo, hi int64
}

// NewQuantizer returns a quantizer with the given width and fixed-point
// position. Bits must be in [2,32].
func NewQuantizer(bits uint8, frac int8) (*Quantizer, error) {
	if bits < 2 || bits > 32 {
		return nil, fmt.Errorf("fixed: bit width %d out of range [2,32]", bits)
	}
	hi := int64(1)<<(bits-1) - 1
	return &Quantizer{Bits: bits, Frac: frac, lo: -hi - 1, hi: hi}, nil
}

// MustQuantizer is NewQuantizer that panics on error, for static configs.
func MustQuantizer(bits uint8, frac int8) *Quantizer {
	q, err := NewQuantizer(bits, frac)
	if err != nil {
		panic(err)
	}
	return q
}

// Fit chooses the largest fractional position such that every value in xs
// is representable without saturation in the given bit width, mirroring
// the paper's adaptive fixed-point quantisation: "pre-calculate the
// fixed-point positions" from known numerical ranges to maximise register
// bit-width utilisation. An empty slice yields frac = bits-1.
func Fit(bits uint8, xs []float64) (*Quantizer, error) {
	if bits < 2 || bits > 32 {
		return nil, fmt.Errorf("fixed: bit width %d out of range [2,32]", bits)
	}
	maxAbs := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	hi := float64(int64(1)<<(bits-1) - 1)
	frac := int(bits) - 1 // all-fractional when values are tiny
	if maxAbs > 0 {
		// Largest f with maxAbs * 2^f <= hi (possibly negative: coarse
		// steps for wide ranges).
		f := int(math.Floor(math.Log2(hi / maxAbs)))
		if f < frac {
			frac = f
		}
	}
	if frac < -64 {
		frac = -64
	}
	return NewQuantizer(bits, int8(frac))
}

// Quantize converts x to its raw fixed-point representation, saturating at
// the representable range (the dataplane has no traps, only saturation).
func (qz *Quantizer) Quantize(x float64) int32 {
	r := math.RoundToEven(math.Ldexp(x, int(qz.Frac)))
	if r > float64(qz.hi) {
		return int32(qz.hi)
	}
	if r < float64(qz.lo) {
		return int32(qz.lo)
	}
	return int32(r)
}

// Dequantize converts a raw value back to float64.
func (qz *Quantizer) Dequantize(raw int32) float64 {
	return math.Ldexp(float64(raw), -int(qz.Frac))
}

// RoundTrip quantises then dequantises, returning the representable value
// nearest to x.
func (qz *Quantizer) RoundTrip(x float64) float64 { return qz.Dequantize(qz.Quantize(x)) }

// Step returns the quantisation step (resolution) of the quantizer.
func (qz *Quantizer) Step() float64 { return math.Ldexp(1, -int(qz.Frac)) }

// MaxVal returns the largest representable real value.
func (qz *Quantizer) MaxVal() float64 { return math.Ldexp(float64(qz.hi), -int(qz.Frac)) }

// MinVal returns the smallest (most negative) representable real value.
func (qz *Quantizer) MinVal() float64 { return math.Ldexp(float64(qz.lo), -int(qz.Frac)) }

// QuantizeVec quantises a vector into dst (allocated if nil) and returns it.
func (qz *Quantizer) QuantizeVec(xs []float64, dst []int32) []int32 {
	if dst == nil {
		dst = make([]int32, len(xs))
	}
	for i, x := range xs {
		dst[i] = qz.Quantize(x)
	}
	return dst
}

// DequantizeVec dequantises a vector into dst (allocated if nil).
func (qz *Quantizer) DequantizeVec(raw []int32, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(raw))
	}
	for i, r := range raw {
		dst[i] = qz.Dequantize(r)
	}
	return dst
}

// SatAdd32 adds two int32 values with saturation, matching the dataplane
// ALU semantics used by SumReduce.
func SatAdd32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}

// SatAddVec element-wise saturating add of b into a (in place); the slices
// must have equal length.
func SatAddVec(a, b []int32) {
	if len(a) != len(b) {
		panic("fixed: SatAddVec length mismatch")
	}
	for i := range a {
		a[i] = SatAdd32(a[i], b[i])
	}
}

// Rescale converts a raw value from one fractional position to another,
// rounding toward nearest when reducing precision. It implements the
// boundary alignment needed when two table outputs with different
// positions feed the same SumReduce.
func Rescale(raw int32, from, to int8) int32 {
	if from == to {
		return raw
	}
	if to > from {
		shift := uint(to - from)
		v := int64(raw) << shift
		if v > math.MaxInt32 {
			return math.MaxInt32
		}
		if v < math.MinInt32 {
			return math.MinInt32
		}
		return int32(v)
	}
	shift := uint(from - to)
	// Round half away from zero via bias add.
	bias := int64(1) << (shift - 1)
	v := int64(raw)
	if v >= 0 {
		v = (v + bias) >> shift
	} else {
		v = -((-v + bias) >> shift)
	}
	return int32(v)
}
