package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 1, 1, 1, 2, 0}
	m, err := NewConfusion(3, truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if m.C[0][0] != 1 || m.C[0][1] != 1 || m.C[1][1] != 2 || m.C[2][0] != 1 || m.C[2][2] != 1 {
		t.Fatalf("confusion = %v", m.C)
	}
	if acc := m.Accuracy(); math.Abs(acc-4.0/6) > 1e-12 {
		t.Fatalf("accuracy = %g", acc)
	}
	p, r, f := m.ClassPRF(1)
	if math.Abs(p-2.0/3) > 1e-12 || r != 1 {
		t.Fatalf("class1 P=%g R=%g F=%g", p, r, f)
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion(2, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := NewConfusion(2, []int{5}, []int{0}); err == nil {
		t.Fatal("want range error")
	}
}

func TestMacroPerfect(t *testing.T) {
	truth := []int{0, 1, 2, 0, 1, 2}
	rep, err := Evaluate(3, truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision != 1 || rep.Recall != 1 || rep.F1 != 1 {
		t.Fatalf("perfect = %+v", rep)
	}
}

func TestMacroTreatsClassesEqually(t *testing.T) {
	// 90 samples of class 0 all correct; 10 of class 1 all wrong:
	// plain accuracy 0.9 but macro F1 must be ~0.487 (class1 F1=0,
	// class0 P=0.9/R=1 → F1≈0.947).
	var truth, pred []int
	for i := 0; i < 90; i++ {
		truth = append(truth, 0)
		pred = append(pred, 0)
	}
	for i := 0; i < 10; i++ {
		truth = append(truth, 1)
		pred = append(pred, 0)
	}
	m, _ := NewConfusion(2, truth, pred)
	_, _, f1 := m.Macro()
	want := (2 * 0.9 * 1 / 1.9) / 2
	if math.Abs(f1-want) > 1e-9 {
		t.Fatalf("macro F1 = %g, want %g", f1, want)
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	anom := []bool{true, true, false, false}
	if auc := AUCFromScores(scores, anom); auc != 1 {
		t.Fatalf("AUC = %g, want 1", auc)
	}
}

func TestROCInvertedScores(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	anom := []bool{true, true, false, false}
	if auc := AUCFromScores(scores, anom); auc != 0 {
		t.Fatalf("AUC = %g, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	anom := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		anom[i] = rng.Intn(2) == 0
	}
	auc := AUCFromScores(scores, anom)
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %g, want ≈0.5", auc)
	}
}

func TestROCHandlesTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	anom := []bool{true, false, true, false}
	auc := AUCFromScores(scores, anom)
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %g, want 0.5", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	curve := ROC([]float64{0.3, 0.7}, []bool{false, true})
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve endpoints: %+v ... %+v", first, last)
	}
}

func TestAUCMonotoneInSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	makeAUC := func(sep float64) float64 {
		n := 1000
		scores := make([]float64, n)
		anom := make([]bool, n)
		for i := range scores {
			anom[i] = i%2 == 0
			base := rng.NormFloat64()
			if anom[i] {
				base += sep
			}
			scores[i] = base
		}
		return AUCFromScores(scores, anom)
	}
	a1, a2, a3 := makeAUC(0.2), makeAUC(1), makeAUC(3)
	if !(a1 < a2 && a2 < a3) {
		t.Fatalf("AUC not monotone in separation: %g %g %g", a1, a2, a3)
	}
}
