// Package metrics implements the evaluation metrics of §7.1: macro
// accuracy (mean per-class F1), overall precision/recall, confusion
// matrices, and ROC curves with AUC for the anomaly-detection
// experiments.
package metrics

import (
	"fmt"
	"sort"
)

// Confusion is a square confusion matrix: C[i][j] counts samples of true
// class i predicted as class j.
type Confusion struct {
	N int
	C [][]int
}

// NewConfusion builds an n-class confusion matrix from parallel label
// slices.
func NewConfusion(n int, truth, pred []int) (*Confusion, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("metrics: %d truths vs %d predictions", len(truth), len(pred))
	}
	m := &Confusion{N: n, C: make([][]int, n)}
	for i := range m.C {
		m.C[i] = make([]int, n)
	}
	for i := range truth {
		t, p := truth[i], pred[i]
		if t < 0 || t >= n || p < 0 || p >= n {
			return nil, fmt.Errorf("metrics: label out of range at %d: truth %d pred %d", i, t, p)
		}
		m.C[t][p]++
	}
	return m, nil
}

// ClassPRF returns precision, recall and F1 of class k (0 when
// undefined).
func (m *Confusion) ClassPRF(k int) (precision, recall, f1 float64) {
	tp := m.C[k][k]
	fp, fn := 0, 0
	for i := 0; i < m.N; i++ {
		if i == k {
			continue
		}
		fp += m.C[i][k]
		fn += m.C[k][i]
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// Macro returns macro-averaged precision, recall and F1 — the paper's
// "macro-accuracy" is MacroF1.
func (m *Confusion) Macro() (precision, recall, f1 float64) {
	for k := 0; k < m.N; k++ {
		p, r, f := m.ClassPRF(k)
		precision += p
		recall += r
		f1 += f
	}
	n := float64(m.N)
	return precision / n, recall / n, f1 / n
}

// Accuracy returns plain sample accuracy.
func (m *Confusion) Accuracy() float64 {
	hit, tot := 0, 0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			tot += m.C[i][j]
			if i == j {
				hit += m.C[i][j]
			}
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(hit) / float64(tot)
}

// Report bundles the three Table 5 columns.
type Report struct {
	Precision, Recall, F1 float64
}

// Evaluate is the one-call helper producing a Table 5 row cell.
func Evaluate(n int, truth, pred []int) (Report, error) {
	m, err := NewConfusion(n, truth, pred)
	if err != nil {
		return Report{}, err
	}
	p, r, f := m.Macro()
	return Report{Precision: p, Recall: r, F1: f}, nil
}

// ROCPoint is one point of a ROC curve.
type ROCPoint struct {
	FPR, TPR float64
}

// ROC computes the ROC curve for anomaly scores (higher = more
// anomalous) against binary labels (true = anomalous). The curve starts
// at (0,0) and ends at (1,1).
func ROC(scores []float64, anomalous []bool) []ROCPoint {
	if len(scores) != len(anomalous) {
		panic("metrics: ROC length mismatch")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	pos, neg := 0, 0
	for _, a := range anomalous {
		if a {
			pos++
		} else {
			neg++
		}
	}
	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		j := i
		// Handle score ties as one step.
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if anomalous[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		var fpr, tpr float64
		if neg > 0 {
			fpr = float64(fp) / float64(neg)
		}
		if pos > 0 {
			tpr = float64(tp) / float64(pos)
		}
		curve = append(curve, ROCPoint{fpr, tpr})
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		curve = append(curve, ROCPoint{1, 1})
	}
	return curve
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	a := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		a += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return a
}

// AUCFromScores is ROC + AUC in one call.
func AUCFromScores(scores []float64, anomalous []bool) float64 {
	return AUC(ROC(scores, anomalous))
}
