package models

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// runSharedFanout replays a merged trace through one physically shared
// extraction machine fanning windows out to the subscriber emissions,
// returning per-subscriber results plus the machine's engine stats
// (for the exactly-once RMW assertions).
func runSharedFanout(t *testing.T, shared *core.SharedExtraction, subs []*core.Emitted,
	stream []netsim.StreamPacket, mode pisa.ExecMode) ([][]pisa.PacketResult, pisa.EngineStats) {
	t.Helper()
	sched := pisa.NewScheduler(4)
	defer sched.Close()
	ext := shared.Em.NewPacketEngineOn(sched, "ext", 1, mode)
	defer ext.Close()
	fan := pisa.NewFanout(ext)
	var engs []*pisa.Engine
	for i, em := range subs {
		eng := em.NewEngineOn(sched, em.Prog.Name+string(rune('a'+i)), 1, mode)
		defer eng.Close()
		fan.Subscribe(eng)
		engs = append(engs, eng)
	}
	ext.ResetState()
	res := fan.RunPackets(PacketJobs(shared.Em, stream))
	for i, eng := range engs {
		if st := eng.Stats(); st.RegRMWs != 0 {
			t.Fatalf("subscriber %d executed %d register RMWs; subscribers must be pure-combinational", i, st.RegRMWs)
		}
	}
	// Detach result rows from the subscriber engines' reused arenas
	// before the engines close.
	for i := range res {
		for k := range res[i] {
			res[i][k].Outs = append([]int32(nil), res[i][k].Outs...)
		}
	}
	return res, ext.Stats()
}

// privateFires replays the same trace through a model's fused
// private-prelude engine, returning detached fires and the engine stats.
func privateFires(t *testing.T, emp *core.Emitted, stream []netsim.StreamPacket,
	mode pisa.ExecMode) ([]pisa.PacketResult, pisa.EngineStats) {
	t.Helper()
	eng := emp.NewPacketEngine(4, mode)
	defer eng.Close()
	eng.ResetState()
	res := eng.RunPackets(PacketJobs(emp, stream))
	out := make([]pisa.PacketResult, len(res))
	for i, r := range res {
		out[i] = pisa.PacketResult{Pkt: r.Pkt, Class: r.Class, Outs: append([]int32(nil), r.Outs...)}
	}
	return out, eng.Stats()
}

// matchFires requires the shared-subscriber results to be bit-identical
// to the private-prelude fires: same fired packets, classes and outputs.
func matchFires(t *testing.T, name string, mode pisa.ExecMode, got, want []pisa.PacketResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s [%v]: shared fan-out fired %d windows, private engine %d", name, mode, len(got), len(want))
	}
	for i := range got {
		if got[i].Pkt != want[i].Pkt || got[i].Class != want[i].Class {
			t.Fatalf("%s [%v]: fire %d shared (pkt %d, class %d), private (pkt %d, class %d)",
				name, mode, i, got[i].Pkt, got[i].Class, want[i].Pkt, want[i].Class)
		}
		if len(got[i].Outs) != len(want[i].Outs) {
			t.Fatalf("%s [%v]: fire %d shared %d outs, private %d", name, mode, i, len(got[i].Outs), len(want[i].Outs))
		}
		for j := range got[i].Outs {
			if got[i].Outs[j] != want[i].Outs[j] {
				t.Fatalf("%s [%v]: fire %d out[%d] = %d shared, %d private",
					name, mode, i, j, got[i].Outs[j], want[i].Outs[j])
			}
		}
	}
}

// TestSharedExtractionMatchesPrivate is the fan-out acceptance test:
// raw merged traces through the physically shared machine classify
// bit-identical to each model's private-prelude engine — MLP-B on the
// stats machine and RNN-B on the seq machine, in both execution modes —
// and the machine executes the prelude's register RMWs exactly once
// per packet (the same count ONE private prelude pays), with the
// subscribers executing none.
func TestSharedExtractionMatchesPrivate(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(83))
	const flowTable = 1 << 16
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)
	tgt, _ := core.LookupTarget("tofino-multipipe")

	mlp := NewMLPB(k, rng)
	mlp.Train(train, TrainOpts{Epochs: 4, Seed: 83})
	if err := mlp.Compile(train); err != nil {
		t.Fatal(err)
	}
	mlp.pipe.Opts.Emit.Target = tgt
	rnn := NewRNNB(k, rng)
	rnn.Train(train, TrainOpts{Epochs: 2, LR: 0.02, Seed: 83})
	if err := rnn.Compile(train); err != nil {
		t.Fatal(err)
	}
	rnn.pipe.Opts.Emit.Target = tgt

	type caseT struct {
		name       string
		kind       core.ExtractKind
		emitShared func(*core.SharedExtraction) (*core.Emitted, error)
		emp        *core.Emitted
	}
	var cases []caseT
	mlpP, err := mlp.EmitPackets(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, caseT{"MLP-B", core.ExtractStats, mlp.EmitShared, mlpP})
	rnnP, err := rnn.EmitPackets(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, caseT{"RNN-B", core.ExtractSeq, rnn.EmitShared, rnnP})

	for _, c := range cases {
		shared, err := core.EmitSharedExtraction("px-shared", pisa.Tofino2, SharedWindowSpec(c.kind), flowTable)
		if err != nil {
			t.Fatalf("%s machine: %v", c.name, err)
		}
		em, err := c.emitShared(shared)
		if err != nil {
			t.Fatalf("%s shared emission: %v", c.name, err)
		}
		for _, p := range em.Programs() {
			if len(p.Registers) > 0 {
				t.Fatalf("%s subscriber program %s has registers", c.name, p.Name)
			}
		}
		for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
			res, extStats := runSharedFanout(t, shared, []*core.Emitted{em}, stream, mode)
			want, privStats := privateFires(t, c.emp, stream, mode)
			if len(want) == 0 {
				t.Fatalf("%s fired no windows", c.name)
			}
			matchFires(t, c.name, mode, res[0], want)
			// Exactly-once: the machine's RMW count equals ONE private
			// prelude's over the same trace (the accounting flow-state
			// registers of the fused form execute no ops).
			if extStats.RegRMWs == 0 || extStats.RegRMWs != privStats.RegRMWs {
				t.Fatalf("%s [%v]: machine executed %d register RMWs, one private prelude %d",
					c.name, mode, extStats.RegRMWs, privStats.RegRMWs)
			}
		}
	}
}

// TestSharedExtractionFanoutExactlyOnce pins the headline property with
// 3 co-resident models on one scheduler: the shared machine executes
// each packet's register RMWs exactly once no matter how many
// subscribers ride it — total RMWs equal ONE private prelude's count,
// where three private engines pay three times that.
func TestSharedExtractionFanoutExactlyOnce(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(89))
	const flowTable = 1 << 10
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)

	mk := []func(int, *rand.Rand) *Feedforward{NewCNNB, NewCNNM, NewCNNB}
	shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
		SharedWindowSpec(core.ExtractSeq), flowTable)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*core.Emitted
	var privTotal uint64
	var one uint64
	for i, f := range mk {
		m := f(k, rng)
		m.Train(train, TrainOpts{Epochs: 1, Seed: int64(89 + i)})
		if err := m.Compile(train); err != nil {
			t.Fatal(err)
		}
		em, err := m.EmitShared(shared)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, em)
		emp, err := m.EmitPackets(flowTable)
		if err != nil {
			t.Fatal(err)
		}
		_, st := privateFires(t, emp, stream, pisa.ExecCompiled)
		privTotal += st.RegRMWs
		one = st.RegRMWs
	}
	res, extStats := runSharedFanout(t, shared, subs, stream, pisa.ExecCompiled)
	for i := range res {
		if len(res[i]) == 0 {
			t.Fatalf("subscriber %d saw no fired windows", i)
		}
	}
	if extStats.RegRMWs != one {
		t.Fatalf("shared machine executed %d register RMWs for 3 models, exactly-once is %d", extStats.RegRMWs, one)
	}
	if privTotal != 3*one {
		t.Fatalf("private baseline RMWs %d, want 3×%d — models diverge on the same prelude", privTotal, one)
	}
}

// TestSharedHashCollision pins the shared-slot semantics on the SHARED
// bank: flows hashing to one register slot interleave into one logical
// flow exactly as they do on a private prelude — the fan-out classifies
// the collision stream bit-identical to the fused engine, in both
// execution modes.
func TestSharedHashCollision(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(97))

	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 2, Seed: 97})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	a, b := test[0], test[1]
	b.Tuple = a.Tuple // guaranteed slot collision
	stream := netsim.Merge([]netsim.Flow{a, b})

	emp, err := m.EmitPackets(1 << 8)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2,
		SharedWindowSpec(core.ExtractSeq), 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	em, err := m.EmitShared(shared)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		res, _ := runSharedFanout(t, shared, []*core.Emitted{em}, stream, mode)
		want, _ := privateFires(t, emp, stream, mode)
		if len(want) == 0 {
			t.Fatal("collision stream fired no windows")
		}
		matchFires(t, "CNN-B/collision", mode, res[0], want)
	}
}

// TestSharedIdleEviction pins idle-timeout eviction on the shared bank:
// a machine emitted with an IdleTimeout evicts stale flow state exactly
// as the private prelude does, so the fan-out's fires on a
// gap-separated collision stream match the fused engine's bit for bit
// in both execution modes.
func TestSharedIdleEviction(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(101))

	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 2, Seed: 101})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}

	// Flow A banks half a window; flow B (same tuple) starts several
	// timeouts later — eviction must trigger exactly at the boundary.
	a := test[0]
	a.Packets = append([]netsim.Packet(nil), a.Packets[:Window/2]...)
	b := test[1]
	b.Tuple = a.Tuple
	b.Packets = append([]netsim.Packet(nil), b.Packets[:Window]...)
	maxGap := uint64(0)
	for _, f := range []netsim.Flow{a, b} {
		for i := 1; i < len(f.Packets); i++ {
			if d := f.Packets[i].Time - f.Packets[i-1].Time; d > maxGap {
				maxGap = d
			}
		}
	}
	timeout := maxGap + 1
	base := a.Packets[len(a.Packets)-1].Time + 3*timeout
	shift := int64(base) - int64(b.Packets[0].Time)
	for i := range b.Packets {
		b.Packets[i].Time = uint64(int64(b.Packets[i].Time) + shift)
	}
	stream := netsim.Merge([]netsim.Flow{a, b})

	spec := core.ExtractSpec{Kind: core.ExtractSeq, Window: Window, IdleTimeout: int(timeout)}
	// Private reference: the same model fused with the evicting prelude.
	saved := m.pipe.Opts.Emit.Extract
	m.pipe.Opts.Emit.Extract = &spec
	emp, err := m.pipe.EmitProgram(1 << 8)
	m.pipe.Opts.Emit.Extract = saved
	if err != nil {
		t.Fatal(err)
	}
	shared, err := core.EmitSharedExtraction("px-shared-seq", pisa.Tofino2, spec, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	em, err := m.EmitShared(shared)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		res, _ := runSharedFanout(t, shared, []*core.Emitted{em}, stream, mode)
		want, _ := privateFires(t, emp, stream, mode)
		if len(want) == 0 {
			t.Fatal("eviction stream fired no windows")
		}
		// Eviction means the first fire is B's own full window, not the
		// mixed A+B window at stream index Window-1.
		if want[0].Pkt == Window-1 {
			t.Fatalf("private reference did not evict (first fire at packet %d)", want[0].Pkt)
		}
		matchFires(t, "CNN-B/evict", mode, res[0], want)
	}
}

// TestGatedSharedMatchesPrivate runs the §7.4 AutoEncoder-gated
// deployment in its physically shared form: one seq machine fanning
// windows out to the gate and the classifier must reproduce the
// host-sequential reference (and therefore the private-prelude Run
// path) bit for bit, in both execution modes.
func TestGatedSharedMatchesPrivate(t *testing.T) {
	g, flows := buildGated(t)
	if err := g.EmitShared(1<<16, pisa.Tofino2.Pipes(2)); err != nil {
		t.Fatal(err)
	}
	stream := netsim.Merge(flows)
	want, err := g.HostSequential(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no windows fired")
	}
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		sched := pisa.NewScheduler(4)
		got, err := g.RunShared(stream, sched, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("[%v] %d shared results, host expects %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%v] window %d: shared %+v, host sequential %+v", mode, i, got[i], want[i])
			}
		}
		sched.Close()
	}
}
