package models

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// buildGated trains and emits a small §7.4 deployment whose threshold
// sits at the median benign score, so both gate branches are exercised.
func buildGated(t *testing.T) (*GatedPipeline, []netsim.Flow) {
	t.Helper()
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(71))

	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 2, Seed: 71})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	cls := NewCNNB(k, rng)
	cls.Train(train, TrainOpts{Epochs: 2, Seed: 71})
	if err := cls.Compile(train); err != nil {
		t.Fatal(err)
	}
	thr, err := CalibrateGate(ae, test, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGatedPipeline(ae, cls, thr)
	if err != nil {
		t.Fatal(err)
	}
	const flowTable = 1 << 16
	if err := g.Emit(flowTable, pisa.Tofino2.Pipes(2)); err != nil {
		t.Fatal(err)
	}
	return g, packetFlows(t, test, flowTable)
}

// TestGatedPipelineMatchesHostSequential is the §7.4 acceptance test:
// raw merged traces through the AutoEncoder-gated classifier — two
// engines on one shared-budget scheduler — produce exactly the verdicts
// and labels of host-side window extraction followed by sequentially
// running the two emitted programs, in both execution modes.
func TestGatedPipelineMatchesHostSequential(t *testing.T) {
	g, flows := buildGated(t)
	stream := netsim.Merge(flows)
	want, err := g.HostSequential(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no windows fired")
	}
	nAnom := 0
	for _, w := range want {
		if w.Anomalous {
			nAnom++
		}
	}
	if nAnom == 0 || nAnom == len(want) {
		t.Fatalf("gate exercised one branch only (%d/%d anomalous) — threshold calibration broken", nAnom, len(want))
	}

	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		sched := pisa.NewScheduler(4)
		got, err := g.Run(stream, sched, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("[%v] %d gated results, host expects %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%v] window %d: deployment %+v, host sequential %+v", mode, i, got[i], want[i])
			}
		}
		// Both models must have been served by the shared pool.
		for _, st := range sched.Stats() {
			if st.Packets == 0 {
				t.Fatalf("[%v] model %q served no packets on the shared scheduler", mode, st.Name)
			}
		}
		sched.Close()
	}
}

// TestGatedDeploymentFitsCombinedCapacity checks the §7.4 budget claim:
// both emitted programs individually validate, and the combined
// deployment — extraction prelude shared — fits one Tofino
// ingress+egress capacity report.
func TestGatedDeploymentFitsCombinedCapacity(t *testing.T) {
	g, _ := buildGated(t)
	if err := g.Dep.Validate(); err != nil {
		t.Fatalf("combined deployment over budget: %v", err)
	}
	res := g.Dep.Resources()
	cap := g.Dep.Cap
	if res.Stages > cap.Stages {
		t.Fatalf("combined %d stages exceed %d", res.Stages, cap.Stages)
	}
	// The shared-extraction reduction must actually reduce: the
	// combined report is cheaper than the naive per-model sum when the
	// specs match, never more expensive.
	naive := 0
	for _, em := range g.Dep.Models {
		naive += em.Resources().Stages
	}
	aeSpec := g.EmAE.Extract.Spec
	if g.EmCls.Extract != nil && g.EmCls.Extract.Spec == aeSpec && res.Stages >= naive {
		t.Fatalf("shared extraction not deduplicated: combined %d stages, naive sum %d", res.Stages, naive)
	}
	t.Logf("deployment report:\n%s", g.Dep.Summary())
}

// TestGateThresholdMonotone pins the gate's score semantics: emitted
// windows score anomalous exactly when their host-side fixed-point MAE
// reaches the threshold (the integer conversion inverts scoreInts'
// normalisation).
func TestGateThresholdMonotone(t *testing.T) {
	g, flows := buildGated(t)
	stream := netsim.Merge(flows)
	res, err := g.HostSequential(stream)
	if err != nil {
		t.Fatal(err)
	}
	thrInt, err := g.AE.GateThreshold(g.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Anomalous != (r.Score >= thrInt) {
			t.Fatalf("window %d: anom=%v but score %d vs threshold %d", i, r.Anomalous, r.Score, thrInt)
		}
		if r.Anomalous && r.Class != -1 {
			t.Fatalf("window %d: anomalous window was classified (class %d)", i, r.Class)
		}
		if !r.Anomalous && r.Class < 0 {
			t.Fatalf("window %d: benign window missing classification", i)
		}
	}
}
