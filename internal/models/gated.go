package models

import (
	"fmt"
	"math"
	"sort"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// roundWindow quantises a float feature window with the host inference
// paths' round-to-even policy.
func roundWindow(x []float64) []int32 {
	v := make([]int32, len(x))
	for j, f := range x {
		v[j] = int32(math.RoundToEven(f))
	}
	return v
}

// GatedPipeline is the §7.4 two-program deployment: an unknown-attack
// AutoEncoder whose reconstruction-error gate screens every feature
// window, co-resident with a classifier that labels only the windows
// the gate passes. Both programs are compiled against one combined
// switch budget (core.Deployment, extraction prelude shared) and served
// from one shared-budget pisa.Scheduler: raw netsim.Merge traces go in,
// gated classifications come out, bit-identical to running the two
// emitted programs sequentially on the host.
type GatedPipeline struct {
	AE  *AutoEncoder
	Cls *Feedforward
	// Threshold is the anomaly cut in the ScorePegasus MAE domain;
	// windows scoring ≥ Threshold are flagged unknown-attack and never
	// reach the classifier.
	Threshold float64

	// EmAE is the gated packet emission ([anom, score, window...] out);
	// EmAEHost its extraction-free window-replay twin (the host-side
	// sequential reference — per-window RunSwitch calls on the packet
	// emission would advance its own flow-state registers); EmCls the
	// classifier's window emission. Dep is the combined capacity
	// report of the deployed pair. All set by Emit.
	EmAE     *core.Emitted
	EmAEHost *core.Emitted
	EmCls    *core.Emitted
	Dep      *core.Deployment

	// SharedExt is the physically shared extraction machine of the
	// shared deployment form; EmAEShared/EmClsShared are its
	// pure-combinational subscriber emissions (gate and classifier both
	// consume the machine's fired window); DepShared is their combined
	// ledger. All set by EmitShared.
	SharedExt   *core.SharedExtraction
	EmAEShared  *core.Emitted
	EmClsShared *core.Emitted
	DepShared   *core.Deployment
}

// GatedResult is one window verdict of the deployment: the stream index
// of the packet that completed the window, the gate's decision and raw
// score, and — for windows the gate passed — the classifier's label
// (Class is -1 for anomalous windows).
type GatedResult struct {
	Pkt       int
	Anomalous bool
	Score     int32
	Class     int
}

// NewGatedPipeline pairs a compiled AutoEncoder with a compiled
// sequence classifier (CNN-B/CNN-M class models: same Window·2 bucket
// window the detector scores, so the gate can forward its extracted
// window verbatim).
func NewGatedPipeline(ae *AutoEncoder, cls *Feedforward, thr float64) (*GatedPipeline, error) {
	if cls.PacketExtract != core.ExtractSeq || cls.InDim != Window*2 {
		return nil, fmt.Errorf("models: gated pipeline needs a seq-window classifier (%s extracts %v over %d inputs)",
			cls.Name, cls.PacketExtract, cls.InDim)
	}
	return &GatedPipeline{AE: ae, Cls: cls, Threshold: thr}, nil
}

// CalibrateGate returns the q-quantile (0..1) of the detector's
// per-flow Pegasus MAE scores over flows — the usual way to place the
// unknown-attack threshold above benign traffic's reconstruction error.
func CalibrateGate(ae *AutoEncoder, flows []netsim.Flow, q float64) (float64, error) {
	scores, _, err := ae.ScorePegasus(flows)
	if err != nil {
		return 0, err
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("models: no windows to calibrate the gate on")
	}
	sort.Float64s(scores)
	i := int(q * float64(len(scores)))
	if i >= len(scores) {
		i = len(scores) - 1
	}
	if i < 0 {
		i = 0
	}
	return scores[i], nil
}

// Emit compiles both programs for flows concurrent flows and validates
// the pair against the combined capacity (e.g. pisa.Tofino2.Pipes(2),
// the ingress+egress silicon of one switch).
func (g *GatedPipeline) Emit(flows int, cap pisa.Capacity) error {
	emAE, err := g.AE.EmitGatedPackets(flows, g.Threshold)
	if err != nil {
		return fmt.Errorf("models: gated %s emission: %w", g.AE.Name, err)
	}
	emAEHost, err := g.AE.EmitGated(flows, g.Threshold)
	if err != nil {
		return fmt.Errorf("models: gated %s host emission: %w", g.AE.Name, err)
	}
	emCls, err := g.Cls.Emit(flows)
	if err != nil {
		return fmt.Errorf("models: %s emission: %w", g.Cls.Name, err)
	}
	dep, err := core.NewDeployment(fmt.Sprintf("%s-gated-%s", g.AE.Name, g.Cls.Name), cap, emAE, emCls)
	if err != nil {
		return err
	}
	g.EmAE, g.EmAEHost, g.EmCls, g.Dep = emAE, emAEHost, emCls, dep
	return nil
}

// EmitShared compiles the deployment's physically shared form: ONE
// standalone seq extraction machine plus two pure-combinational
// subscribers (the gated detector and the classifier), validated as a
// combined deployment against cap. Where Emit's form runs the
// detector's private prelude on every packet and the ledger merely
// accounts the classifier's flow-state, the shared form executes the
// per-packet register RMWs once on the machine and fans fired windows
// out to both programs.
func (g *GatedPipeline) EmitShared(flows int, cap pisa.Capacity) error {
	shared, err := core.EmitSharedExtraction("px-shared-seq", cap, SharedWindowSpec(core.ExtractSeq), flows)
	if err != nil {
		return fmt.Errorf("models: shared extraction emission: %w", err)
	}
	emAE, err := g.AE.EmitGatedShared(shared, g.Threshold)
	if err != nil {
		return fmt.Errorf("models: shared gated %s emission: %w", g.AE.Name, err)
	}
	emCls, err := g.Cls.EmitShared(shared)
	if err != nil {
		return fmt.Errorf("models: shared %s emission: %w", g.Cls.Name, err)
	}
	dep, err := core.NewDeployment(fmt.Sprintf("%s-gated-%s-shared", g.AE.Name, g.Cls.Name), cap, emAE, emCls)
	if err != nil {
		return err
	}
	g.SharedExt, g.EmAEShared, g.EmClsShared, g.DepShared = shared, emAE, emCls, dep
	return nil
}

// RunShared replays a raw merged trace through the physically shared
// deployment: the extraction machine executes every packet's register
// RMWs once, and each fired window fans out to the gate and the
// classifier as stateless jobs on the shared scheduler. Output is
// bit-identical to Run — the classifier scores every window in this
// form (physically, every subscriber sees every fire), but anomalous
// windows still report Class -1, and the stateless classifier labels
// benign windows exactly as the gated forwarding path would. A nil
// sched runs on a private pool sized to GOMAXPROCS.
func (g *GatedPipeline) RunShared(stream []netsim.StreamPacket, sched *pisa.Scheduler, mode pisa.ExecMode) ([]GatedResult, error) {
	if g.SharedExt == nil || g.EmAEShared == nil || g.EmClsShared == nil {
		return nil, fmt.Errorf("models: gated pipeline has no shared emission (call EmitShared)")
	}
	if sched == nil {
		sched = pisa.NewScheduler(0)
		defer sched.Close()
	}
	extEng := g.SharedExt.Em.NewPacketEngineOn(sched, "px-shared-seq", 1, mode)
	defer extEng.Close()
	aeEng := g.EmAEShared.NewEngineOn(sched, g.AE.Name, 1, mode)
	defer aeEng.Close()
	clsEng := g.EmClsShared.NewEngineOn(sched, g.Cls.Name, 1, mode)
	defer clsEng.Close()

	fan := pisa.NewFanout(extEng)
	fan.Subscribe(aeEng)
	fan.Subscribe(clsEng)
	extEng.ResetState()
	res := fan.RunPackets(PacketJobs(g.SharedExt.Em, stream))
	aeRes, clsRes := res[0], res[1]
	out := make([]GatedResult, len(aeRes))
	for k, ar := range aeRes {
		gr := GatedResult{Pkt: ar.Pkt, Anomalous: ar.Outs[0] != 0, Score: ar.Outs[1], Class: -1}
		if !gr.Anomalous {
			gr.Class = clsRes[k].Class
		}
		out[k] = gr
	}
	return out, nil
}

// Run replays a raw merged trace through the deployment on a shared
// scheduler: every packet drives the AutoEncoder's extraction
// registers; each completed window yields the gate verdict, and benign
// windows are forwarded — window vector attached — into the classifier
// engine registered on the same scheduler. Results arrive in stream
// order. A nil sched runs the deployment on a private pool sized to
// GOMAXPROCS.
func (g *GatedPipeline) Run(stream []netsim.StreamPacket, sched *pisa.Scheduler, mode pisa.ExecMode) ([]GatedResult, error) {
	if g.EmAE == nil || g.EmCls == nil {
		return nil, fmt.Errorf("models: gated pipeline not emitted")
	}
	if sched == nil {
		sched = pisa.NewScheduler(0)
		defer sched.Close()
	}
	aeEng := g.EmAE.NewPacketEngineOn(sched, g.AE.Name, 1, mode)
	defer aeEng.Close()
	clsEng := g.EmCls.NewEngineOn(sched, g.Cls.Name, 1, mode)
	defer clsEng.Close()

	aeEng.ResetState()
	fires := aeEng.RunPackets(PacketJobs(g.EmAE, stream))
	out := make([]GatedResult, 0, len(fires))
	var fwd []pisa.Job
	var fwdAt []int
	for _, r := range fires {
		gr := GatedResult{Pkt: r.Pkt, Anomalous: r.Outs[0] != 0, Score: r.Outs[1], Class: -1}
		if !gr.Anomalous {
			fwdAt = append(fwdAt, len(out))
			// r.Outs aliases the AE engine's reused buffer; the window
			// must be detached before the classifier batch runs.
			fwd = append(fwd, pisa.Job{
				Hash: stream[r.Pkt].Flow.Tuple.Hash(),
				In:   append([]int32(nil), r.Outs[2:]...),
			})
		}
		out = append(out, gr)
	}
	for i, cr := range clsEng.RunBatch(fwd) {
		out[fwdAt[i]].Class = cr.Class
	}
	return out, nil
}

// HostSequential computes the deployment's reference output: host-side
// window extraction followed by sequentially running the two emitted
// programs (RunSwitch) per window — the bit-exact target Run must
// reproduce from raw packets.
func (g *GatedPipeline) HostSequential(stream []netsim.StreamPacket) ([]GatedResult, error) {
	if g.EmAE == nil || g.EmCls == nil {
		return nil, fmt.Errorf("models: gated pipeline not emitted")
	}
	counts := map[*netsim.Flow]int{}
	wins := map[*netsim.Flow][]netsim.SeqWindow{}
	var out []GatedResult
	for i, sp := range stream {
		counts[sp.Flow]++
		n := counts[sp.Flow]
		if n%Window != 0 {
			continue
		}
		w, ok := wins[sp.Flow]
		if !ok {
			w = netsim.SeqWindows(sp.Flow, Window)
			wins[sp.Flow] = w
		}
		x := roundWindow(w[n/Window-1].SeqFeatures())
		_, outs := g.EmAEHost.RunSwitch(x)
		gr := GatedResult{Pkt: i, Anomalous: outs[0] != 0, Score: outs[1], Class: -1}
		if !gr.Anomalous {
			cls, _ := g.EmCls.RunSwitch(x)
			gr.Class = cls
		}
		out = append(out, gr)
	}
	return out, nil
}
