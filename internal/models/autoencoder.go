package models

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// AutoEncoder is the paper's unsupervised anomaly detector (§6.3,
// §7.4): an Emb layer (reusing representation knowledge from the
// classification task) followed by FC encode/decode blocks, scored by
// the mean absolute reconstruction error of the embedded window. Flows
// whose windows reconstruct poorly are flagged as unknown-attack
// traffic.
type AutoEncoder struct {
	Name string
	Emb  *nn.Embedding
	// Body reconstructs the embedded window: BN→FC→ReLU encode blocks,
	// mirrored decode.
	Body *nn.Sequential

	pipe     *core.Pipeline
	compiled *core.Compiled
	embGroup int // index of the embedding group in the compiled plan
}

// NewAutoEncoder builds the detector. emb may come from a trained
// classifier (the paper transfers the Emb layer); pass nil to use a
// fresh random embedding. The transferred table is row-normalised to a
// common L2 norm: classification training inflates discriminative rows
// and leaves rare-bucket rows tiny, and an unnormalised table would make
// rare (anomalous!) inputs trivially easy to reconstruct in absolute
// MAE terms.
func NewAutoEncoder(emb *nn.Embedding, rng *rand.Rand) *AutoEncoder {
	if emb == nil {
		emb = nn.NewEmbedding(256, 2, Window*2, rng)
	} else {
		norm := nn.NewEmbedding(emb.Vocab, emb.Dim, emb.T, rng)
		for r := 0; r < emb.Vocab; r++ {
			src := emb.Table.W.Row(r)
			dst := norm.Table.W.Row(r)
			l2 := 0.0
			for _, v := range src {
				l2 += v * v
			}
			l2 = math.Sqrt(l2)
			if l2 < 1e-9 {
				l2 = 1
			}
			for j, v := range src {
				dst[j] = v / l2
			}
		}
		emb = norm
	}
	embOut := emb.T * emb.Dim // 32
	// No input BatchNorm: the embedding rows are already normalised, and
	// keeping the Emb group pure lets it compile to exact lookup tables.
	body := nn.NewSequential(
		nn.NewLinear(embOut, 16, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(16, 8, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(8, embOut, rng),
	)
	return &AutoEncoder{Name: "AutoEncoder", Emb: emb, Body: body}
}

// InputScaleBits reports the sequence input width.
func (m *AutoEncoder) InputScaleBits() int { return Window * 2 * 8 }

// ModelSizeBits includes the embedding and the reconstruction body.
func (m *AutoEncoder) ModelSizeBits() int {
	return (len(m.Emb.Table.W.D) + m.Body.NumParams()) * 32
}

// FlowStateBits matches Table 6's 240 bits/flow (full window of raw
// buckets plus timestamps, like RNN-B).
func (m *AutoEncoder) FlowStateBits() int { return 240 }

// embed produces the embedded window matrix for samples.
func (m *AutoEncoder) embed(xs [][]float64) *tensor.Mat {
	mat := tensor.New(len(xs), Window*2)
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	return m.Emb.Forward(mat, false)
}

// Train fits the body to reconstruct embedded benign windows (MSE), the
// standard training surrogate for an MAE detector.
func (m *AutoEncoder) Train(flows []netsim.Flow, opts TrainOpts) []float64 {
	opts.defaults()
	xs, _ := ExtractSeq(flows)
	emb := m.embed(xs)
	return nn.Fit(m.Body, emb, emb, nn.MSE{}, nn.NewAdam(opts.LR),
		nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 32, Seed: opts.Seed})
}

// ScoreFull returns per-FLOW full-precision MAE anomaly scores (the
// mean over the flow's windows): the paper detects anomalous flows, and
// flow-level aggregation is what the switch's per-flow registers
// naturally provide.
func (m *AutoEncoder) ScoreFull(flows []netsim.Flow) ([]float64, []bool) {
	var scores []float64
	var anom []bool
	for i := range flows {
		var xs [][]float64
		for _, w := range netsim.SeqWindows(&flows[i], Window) {
			xs = append(xs, w.SeqFeatures())
		}
		if len(xs) == 0 {
			continue
		}
		emb := m.embed(xs)
		recon := m.Body.Forward(emb, false)
		per := nn.MAEScore(recon, emb)
		worst := 0.0
		for _, v := range per {
			if v > worst {
				worst = v
			}
		}
		scores = append(scores, worst)
		anom = append(anom, flows[i].Class == 1)
	}
	return scores, anom
}

// Compile runs the staged pipeline over Emb+Body. The embedding group's
// output doubles as the reconstruction target, so the switch computes
// the MAE entirely from PHV fields. No argmax pass is emitted: the MAE
// is computed by sub/abs/add ALU stages.
func (m *AutoEncoder) Compile(flows []netsim.Flow) error {
	xs, _ := ExtractSeq(flows)
	full := nn.NewSequential(append([]nn.Layer{m.Emb}, m.Body.Layers...)...)
	m.pipe = core.NewPipeline(m.Name, core.CompileOptions{
		Lower:  core.LowerConfig{MaxSegDim: 4},
		Tables: core.CompileConfig{TreeDepth: 6, InBits: 8, MaxCalib: 3000},
		Emit:   core.EmitOptions{FlowStateBits: m.FlowStateBits()},
	})
	comp, err := m.pipe.Compile(full, Window*2, xs)
	if err != nil {
		return err
	}
	m.compiled = comp
	m.embGroup = 0
	return nil
}

// Compiled exposes the compiled tables.
func (m *AutoEncoder) Compiled() *core.Compiled { return m.compiled }

// Diagnostics returns the per-pass compilation diagnostics.
func (m *AutoEncoder) Diagnostics() []core.PassDiag {
	if m.pipe == nil {
		return nil
	}
	return m.pipe.Diagnostics()
}

// ScorePegasus returns the per-flow fixed-point MAE scores the switch
// computes: |recon − emb| summed in integer arithmetic with positions
// aligned by shifting, dequantised, then averaged over the flow's
// windows.
func (m *AutoEncoder) ScorePegasus(flows []netsim.Flow) ([]float64, []bool, error) {
	if m.compiled == nil {
		return nil, nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	var scores []float64
	var anom []bool
	for i := range flows {
		wins := netsim.SeqWindows(&flows[i], Window)
		if len(wins) == 0 {
			continue
		}
		worst := 0.0
		for _, w := range wins {
			x := w.SeqFeatures()
			v := make([]int32, len(x))
			for j, f := range x {
				v[j] = int32(math.RoundToEven(f))
			}
			if s := m.scoreInts(v); s > worst {
				worst = s
			}
		}
		scores = append(scores, worst)
		anom = append(anom, flows[i].Class == 1)
	}
	return scores, anom, nil
}

// scoreInts runs the compiled pipeline, capturing the embedding group's
// output as the reconstruction target.
func (m *AutoEncoder) scoreInts(x []int32) float64 {
	groups := m.compiled.Groups
	cur := x
	var embOut []int32
	var embFrac int8
	for gi := range groups {
		cur = groups[gi].Eval(cur)
		if gi == m.embGroup {
			embOut = append([]int32(nil), cur...)
			embFrac = groups[gi].OutFrac
		}
	}
	reconFrac := m.compiled.OutFrac
	// Align fixed-point positions by left-shifting the COARSER side up
	// (exact in integer arithmetic; downshifting would discard the very
	// precision the reconstruction error lives in).
	shift := int(embFrac) - int(reconFrac)
	sum := 0.0
	for j := range cur {
		e, r := int64(embOut[j]), int64(cur[j])
		if shift > 0 {
			r <<= uint(shift)
		} else if shift < 0 {
			e <<= uint(-shift)
		}
		d := float64(e - r)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	frac := reconFrac
	if embFrac > reconFrac {
		frac = embFrac
	}
	return math.Ldexp(sum/float64(len(cur)), -int(frac))
}

// Emit runs the pipeline's emit pass (no argmax; the MAE is computed by
// sub/abs/add ALU stages whose cost is included via the final reduction
// stages).
func (m *AutoEncoder) Emit(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return m.pipe.EmitProgram(flows)
}

// EmitPackets emits the detector with the sequence extraction machine
// compiled in; the per-packet engine path scores raw traces window by
// window through the emitted reconstruction pipeline.
func (m *AutoEncoder) EmitPackets(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return emitPacketsVia(m.pipe, core.ExtractSeq, flows)
}

// GateThreshold converts a float MAE threshold (the ScorePegasus score
// domain: mean absolute error per element, dequantised) into the
// integer sum the emitted gate stage compares: thr × elements ×
// 2^frac, where frac is the finer of the embedding and reconstruction
// fixed-point positions — exactly inverting the normalisation of
// scoreInts, so a window scores ≥ the returned integer on-switch iff
// its fixed-point MAE is ≥ thr on the host (assuming the |e−r| sum
// stays below the 32-bit saturation point, which the 16-bit activation
// widths guarantee).
func (m *AutoEncoder) GateThreshold(thr float64) (int32, error) {
	if m.compiled == nil {
		return 0, fmt.Errorf("models: %s not compiled", m.Name)
	}
	frac := m.compiled.Groups[m.embGroup].OutFrac
	if m.compiled.OutFrac > frac {
		frac = m.compiled.OutFrac
	}
	n := m.Emb.T * m.Emb.Dim
	return int32(math.Round(thr * float64(n) * math.Ldexp(1, int(frac)))), nil
}

// EmitGated emits the window-replay form of the gated detector: the
// reconstruction pipeline plus the on-switch anomaly gate, consuming
// pre-extracted windows ([anom, score, window...] out). It is the
// host-side sequential-execution reference for the §7.4 deployment —
// stateless per window, so RunSwitch calls do not disturb each other.
func (m *AutoEncoder) EmitGated(flows int, thr float64) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	thrInt, err := m.GateThreshold(thr)
	if err != nil {
		return nil, err
	}
	saved := m.pipe.Opts.Emit
	m.pipe.Opts.Emit.Gate = &core.GateSpec{KeepGroup: m.embGroup, Threshold: thrInt}
	defer func() { m.pipe.Opts.Emit = saved }()
	return m.pipe.EmitProgram(flows)
}

// EmitGatedPackets emits the §7.4 deployment form of the detector: the
// sequence extraction machine in front, the reconstruction pipeline in
// the middle, and the on-switch anomaly gate at the end — the emitted
// program consumes raw packets and, on every window boundary, produces
// [anom, score, window...]: the threshold verdict, the integer MAE
// score, and the extracted window a deployment harness forwards into
// the co-resident classifier when the verdict is benign.
func (m *AutoEncoder) EmitGatedPackets(flows int, thr float64) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	thrInt, err := m.GateThreshold(thr)
	if err != nil {
		return nil, err
	}
	saved := m.pipe.Opts.Emit
	m.pipe.Opts.Emit.Extract = &core.ExtractSpec{Kind: core.ExtractSeq, Window: Window}
	m.pipe.Opts.Emit.Gate = &core.GateSpec{KeepGroup: m.embGroup, Threshold: thrInt}
	defer func() { m.pipe.Opts.Emit = saved }()
	return m.pipe.EmitProgram(flows)
}

// EmitGatedShared emits the gated detector as a pure-combinational
// subscriber of a physically shared seq extraction machine: the
// reconstruction pipeline plus the anomaly gate, consuming the
// machine's fired window instead of running a private prelude
// ([anom, score, window...] out, no registers).
func (m *AutoEncoder) EmitGatedShared(shared *core.SharedExtraction, thr float64) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	if shared.Spec.Kind != core.ExtractSeq {
		return nil, fmt.Errorf("models: %s needs a seq machine, shared machine runs %v", m.Name, shared.Spec.Kind)
	}
	thrInt, err := m.GateThreshold(thr)
	if err != nil {
		return nil, err
	}
	saved := m.pipe.Opts.Emit
	m.pipe.Opts.Emit.Gate = &core.GateSpec{KeepGroup: m.embGroup, Threshold: thrInt}
	defer func() { m.pipe.Opts.Emit = saved }()
	return emitSharedVia(m.pipe, m.Name, shared)
}
