package models

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/fixed"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// CNNL is the paper's large CNN over raw payload bytes (3840-bit input
// scale). Its dataplane form follows §7.3's two-phase design:
//
// Per-packet phase — the packet's 60 payload bytes (480 bits, the only
// features in the PHV) run through the Pegasus-compiled encoder
// pipeline (conv windows → pooling → FC groups, all fuzzy tables); the
// final group fuzzy-matches the refined feature vector into a 4- or
// 8-bit index whose SRAM row is the packet's precomputed class-logit
// contribution. Only that index is stored in the flow's registers.
//
// Window phase — when the window completes, the stored indices key
// per-position copies of the logits table; SumReduce and argmax follow.
// This is Advanced Primitive Fusion ❸ end to end, and the reason the
// per-flow footprint stays at 28–72 bits (Figure 7).
type CNNL struct {
	Name string
	// UseIPD appends the per-packet IPD bucket to the encoder input
	// (off in the 28-bit variant of Figure 7).
	UseIPD bool
	// IdxBits is the per-packet fuzzy index width.
	IdxBits int

	Net      *nn.Sequential // training-time NAM: SegmentsAsBatch(inner)+Sum
	inner    *nn.Sequential // encoder+head per packet
	encoder  *nn.Sequential // inner without the final head Linear
	head     *nn.Linear
	nClasses int
	segDim   int
	zDim     int

	pipe *core.Pipeline
	comp *core.Compiled // per-packet pipeline: payload → logits
}

// NewCNNL builds CNN-L with the given variant parameters.
func NewCNNL(nClasses int, useIPD bool, idxBits int, rng *rand.Rand) *CNNL {
	segDim := netsim.PayloadBytes
	if useIPD {
		segDim++
	}
	// Encoder: non-overlapping 10-byte conv windows (6 Partition
	// segments), per-channel max pooling, one FC block down to the
	// 16-dim refined feature vector. Three table groups — the deepest
	// chain that fits the 20-stage pipeline together with the window
	// phase.
	const convK = 10
	convT := segDim / convK // 6 windows
	const cout, zDim = 12, 16
	encLayers := []nn.Layer{
		nn.NewConv1d(convT*convK, 1, cout, convK, convK, rng), nn.NewActivation(nn.ReLU),
		nn.NewGlobalMaxPool(convT, cout),
		nn.NewLinear(cout, zDim, rng), nn.NewActivation(nn.Tanh),
	}
	encoder := nn.NewSequential(encLayers...)
	head := nn.NewLinear(zDim, nClasses, rng)
	inner := nn.NewSequential(append(append([]nn.Layer{}, encLayers...), head)...)
	net := nn.NewSequential(
		nn.NewSegmentsAsBatch(Window, convT*convK, inner),
		nn.NewSumSegments(Window, nClasses),
	)
	name := "CNN-L"
	if !useIPD {
		name = "CNN-L/28b"
	} else if idxBits == 8 {
		name = "CNN-L/72b"
	}
	return &CNNL{Name: name, UseIPD: useIPD, IdxBits: idxBits,
		Net: net, inner: inner, encoder: encoder, head: head,
		nClasses: nClasses, segDim: convT * convK, zDim: zDim}
}

// Extract returns the window samples for this variant, truncated to the
// encoder's segment width.
func (m *CNNL) Extract(flows []netsim.Flow) ([][]float64, []int) {
	var raw [][]float64
	var ys []int
	if m.UseIPD {
		raw, ys = ExtractPayloadIPD(flows)
	} else {
		raw, ys = ExtractPayload(flows)
	}
	full := netsim.PayloadBytes
	if m.UseIPD {
		full++
	}
	if m.segDim == full {
		return raw, ys
	}
	xs := make([][]float64, len(raw))
	for i, x := range raw {
		t := make([]float64, 0, Window*m.segDim)
		for p := 0; p < Window; p++ {
			t = append(t, x[p*full:p*full+m.segDim]...)
		}
		xs[i] = t
	}
	return xs, ys
}

// InDim is the flattened window width.
func (m *CNNL) InDim() int { return Window * m.segDim }

// InputScaleBits reports Table 5's input scale: 8 packets × 480 payload
// bits.
func (m *CNNL) InputScaleBits() int { return Window * netsim.PayloadBytes * 8 }

// ModelSizeBits reports the parameter footprint.
func (m *CNNL) ModelSizeBits() int { return m.Net.SizeBits() }

// FlowStateBits reports the per-flow register footprint of Figure 7:
// (Window−1) stored indices plus a 16-bit previous-packet timestamp when
// IPD is used.
func (m *CNNL) FlowStateBits() int {
	bits := (Window - 1) * m.IdxBits
	if m.UseIPD {
		bits += 16
	}
	return bits
}

// Train fits the end-to-end NAM network.
func (m *CNNL) Train(flows []netsim.Flow, opts TrainOpts) []float64 {
	opts.defaults()
	xs, ys := m.Extract(flows)
	mat := tensor.New(len(xs), m.InDim())
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	mat.Scale(1.0 / 128)
	return nn.Fit(m.Net, mat, nn.ClassTargets(ys), nn.SoftmaxCrossEntropy{},
		nn.NewAdam(opts.LR), nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 32, Seed: opts.Seed})
}

// EvalFull computes full-precision metrics.
func (m *CNNL) EvalFull(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	xs, ys := m.Extract(flows)
	mat := tensor.New(len(xs), m.InDim())
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	mat.Scale(1.0 / 128)
	pred := m.Net.Predict(mat)
	return metrics.Evaluate(nClasses, ys, pred)
}

// Compile lowers the shared per-packet network (encoder + head) through
// the staged pipeline, customised with two extra passes: "attach-head"
// appends the classification head as one fuzzy segment over the refined
// feature vector (FinalDepth = IdxBits makes the final group's fuzzy
// index exactly the per-packet state the switch stores), and
// "check-final-group" asserts that shape after table building.
func (m *CNNL) Compile(flows []netsim.Flow, maxCalib int) error {
	if maxCalib == 0 {
		maxCalib = 2500
	}
	xs, _ := m.Extract(flows)
	if len(xs) == 0 {
		return fmt.Errorf("models: no CNN-L calibration windows")
	}
	// Pool all packet segments — the encoder is shared across positions.
	var segs [][]float64
	for _, x := range xs {
		for p := 0; p < Window; p++ {
			segs = append(segs, x[p*m.segDim:(p+1)*m.segDim])
		}
	}
	if len(segs) > maxCalib {
		stride := len(segs) / maxCalib
		sub := make([][]float64, 0, maxCalib)
		for i := 0; i < len(segs); i += stride {
			sub = append(sub, segs[i])
		}
		segs = sub
	}
	m.pipe = core.NewPipeline(m.Name+"-packet", core.CompileOptions{
		Lower:     core.LowerConfig{MaxSegDim: 6},
		Tables:    core.CompileConfig{TreeDepth: 6, FinalDepth: m.IdxBits, InBits: 8, MaxCalib: maxCalib},
		Normalize: 128, // the 1/128 training normalisation, folded in
		Emit:      core.EmitOptions{FlowStateBits: m.FlowStateBits()},
	})
	m.pipe.InsertAfter("lower", core.Pass{Name: "attach-head", Run: func(st *core.PassState) error {
		zCols := make([]int, m.zDim)
		for i := range zCols {
			zCols[i] = i
		}
		headFn, err := core.NewAffine(m.head.Weight.W.Clone(), append([]float64(nil), m.head.Bias.W.D...))
		if err != nil {
			return err
		}
		st.Prog = &core.Program{Name: st.Prog.Name, InDim: st.Prog.InDim,
			Steps: append(append([]core.Step(nil), st.Prog.Steps...),
				&core.Partition{Groups: [][]int{zCols}}, &core.Map{Fns: []core.Fn{headFn}})}
		return st.Prog.Validate()
	}})
	m.pipe.InsertAfter("build-tables", core.Pass{Name: "check-final-group", Run: func(st *core.PassState) error {
		lastG := st.Compiled.Groups[len(st.Compiled.Groups)-1]
		if len(lastG.Segs) != 1 || lastG.Segs[0].Mode != core.SegFuzzy {
			return fmt.Errorf("models: CNN-L final group is not a single fuzzy segment")
		}
		return nil
	}})
	m.pipe.InsertAfter("emit", core.Pass{Name: "emit-window", Run: func(st *core.PassState) error {
		return m.emitWindowPhase(st.Emitted)
	}})
	comp, err := m.pipe.Compile(m.encoder, m.segDim, segs)
	if err != nil {
		return err
	}
	m.comp = comp
	return nil
}

// Compiled exposes the per-packet pipeline.
func (m *CNNL) Compiled() *core.Compiled { return m.comp }

// Diagnostics returns the per-pass compilation diagnostics.
func (m *CNNL) Diagnostics() []core.PassDiag {
	if m.pipe == nil {
		return nil
	}
	return m.pipe.Diagnostics()
}

// PacketLogits runs one packet segment through the compiled pipeline,
// returning its quantised logit contribution and the stored fuzzy index.
func (m *CNNL) PacketLogits(seg []float64) ([]int32, int) {
	v := make([]int32, len(seg))
	for j, f := range seg {
		v[j] = int32(math.RoundToEven(f))
	}
	cur := v
	for gi := range m.comp.Groups {
		if gi == len(m.comp.Groups)-1 {
			s := &m.comp.Groups[gi].Segs[0]
			segf := make([]float64, len(s.Cols))
			for k, c := range s.Cols {
				segf[k] = float64(cur[c])
			}
			idx := s.Tree.Assign(segf)
			return s.Table[idx], idx
		}
		cur = m.comp.Groups[gi].Eval(cur)
	}
	panic("unreachable")
}

// ClassifyWindow sums the per-packet contributions for a window sample.
func (m *CNNL) ClassifyWindow(x []float64) int {
	logits := make([]int32, m.nClasses)
	for p := 0; p < Window; p++ {
		row, _ := m.PacketLogits(x[p*m.segDim : (p+1)*m.segDim])
		fixed.SatAddVec(logits, row)
	}
	best, bi := logits[0], 0
	for i, v := range logits[1:] {
		if v >= best {
			best, bi = v, i+1
		}
	}
	return bi
}

// EvalPegasus computes compiled-path metrics.
func (m *CNNL) EvalPegasus(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	if m.comp == nil {
		return metrics.Report{}, fmt.Errorf("models: %s not compiled", m.Name)
	}
	xs, ys := m.Extract(flows)
	pred := make([]int, len(xs))
	for i, x := range xs {
		pred[i] = m.ClassifyWindow(x)
	}
	return metrics.Evaluate(nClasses, ys, pred)
}

// Refine backprop-tunes the shared per-packet logits table (§4.4).
// Logits are linear in the entries, so gradients are exact. The work
// runs as an instrumented "refine" pass on the model's pipeline.
// Returns 0 when the model has not been compiled.
func (m *CNNL) Refine(flows []netsim.Flow, epochs int, lr float64) float64 {
	if m.pipe == nil || m.comp == nil {
		return 0
	}
	var acc float64
	if err := m.pipe.RunPass(core.Pass{Name: "refine", Run: func(*core.PassState) error {
		acc = m.refineTables(flows, epochs, lr)
		return nil
	}}); err != nil {
		return 0
	}
	return acc
}

func (m *CNNL) refineTables(flows []netsim.Flow, epochs int, lr float64) float64 {
	xs, ys := m.Extract(flows)
	last := &m.comp.Groups[len(m.comp.Groups)-1]
	table := last.Segs[0].Table
	pos := int(m.comp.OutFrac)
	scale := math.Ldexp(1, -pos)
	shadow := make([][]float64, len(table))
	for li, row := range table {
		fr := make([]float64, len(row))
		for j, v := range row {
			fr[j] = float64(v) * scale
		}
		shadow[li] = fr
	}
	assign := make([][]int, len(xs))
	for i, x := range xs {
		idxs := make([]int, Window)
		for p := 0; p < Window; p++ {
			_, idxs[p] = m.PacketLogits(x[p*m.segDim : (p+1)*m.segDim])
		}
		assign[i] = idxs
	}
	logits := make([]float64, m.nClasses)
	probs := make([]float64, m.nClasses)
	for e := 0; e < epochs; e++ {
		for i, idxs := range assign {
			for j := range logits {
				logits[j] = 0
			}
			for _, idx := range idxs {
				for j := range logits {
					logits[j] += shadow[idx][j]
				}
			}
			nn.SoftmaxRow(logits, probs)
			for _, idx := range idxs {
				for j := range probs {
					g := probs[j]
					if j == ys[i] {
						g -= 1
					}
					shadow[idx][j] -= lr * g
				}
			}
		}
	}
	hi := int64(1)<<7 - 1
	for li, fr := range shadow {
		for j, f := range fr {
			r := math.RoundToEven(math.Ldexp(f, pos))
			if r > float64(hi) {
				r = float64(hi)
			}
			if r < float64(-hi-1) {
				r = float64(-hi - 1)
			}
			table[li][j] = int32(r)
		}
	}
	hit := 0
	for i, x := range xs {
		if m.ClassifyWindow(x) == ys[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(xs))
}

// Emit lowers CNN-L onto the pipeline via two emit passes: the standard
// "emit" pass lowers the per-packet encoder program (ending in the index
// TCAM + the current packet's logits table), and "emit-window" appends
// the Window−1 per-position logits table copies, the SumReduce tree,
// argmax, and the per-flow index registers.
func (m *CNNL) Emit(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.comp == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return m.pipe.EmitProgram(flows)
}

// EmitPackets emits CNN-L with the §7.3 state machine executable: the
// payload prelude counts window positions, the window phase banks each
// packet's fuzzy index into the per-flow position registers, and the
// window-completing packet restores the stored indices and classifies —
// the paper's per-packet phase / window phase split, end to end.
func (m *CNNL) EmitPackets(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.comp == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	// The +IPD machine feeds the last in-field from the IPD-bucket
	// registers — only correct when the encoder's segment width
	// actually retains the appended IPD column. The conv front end
	// truncates the segment to whole conv windows, which drops the IPD
	// column for the current architectures; those variants extract
	// payload bytes only, exactly what their encoder consumes.
	kind := core.ExtractPayload
	if m.UseIPD && m.segDim > netsim.PayloadBytes {
		kind = core.ExtractPayloadIPD
	}
	return emitPacketsVia(m.pipe, kind, flows)
}

// emitWindowPhase appends the §7.3 window phase to the emitted
// per-packet program. It mutates the emission in place, so it requires
// a single-pipe target: the window tables reference em.OutFields in
// the same program, which a multi-pipe split would scatter across
// layouts.
func (m *CNNL) emitWindowPhase(em *core.Emitted) error {
	if len(em.More) > 0 {
		return fmt.Errorf("models: %s window phase needs a single-pipe emission, target %q produced %d pipes",
			m.Name, em.Target, 1+len(em.More))
	}
	layout := em.Prog.Layout
	// Window-phase: stored index fields + per-position logits tables.
	last := &m.comp.Groups[len(m.comp.Groups)-1]
	table := last.Segs[0].Table
	idxFields := make([]pisa.FieldID, Window-1)
	for p := range idxFields {
		idxFields[p] = layout.MustAdd(fmt.Sprintf("pidx%d", p), 8)
	}
	tmpF := make([]pisa.FieldID, (Window-1)*m.nClasses)
	for j := range tmpF {
		tmpF[j] = layout.MustAdd(fmt.Sprintf("wtmp%d", j), 16)
	}
	outF := make([]pisa.FieldID, m.nClasses)
	for j := range outF {
		outF[j] = layout.MustAdd(fmt.Sprintf("wlogit%d", j), 16)
	}
	stage := len(em.Prog.Stages)
	if ext := em.Extract; ext != nil {
		// Per-packet banking: store this packet's fuzzy index into its
		// window-position register, and restore the Window−1 banked
		// indices into the pidx fields on the window-completing packet.
		// RunSwitchWindow does exactly this from the host side. Neither
		// side costs a stage: the restore reads only previous packets'
		// state, so it runs right after the prelude (stage 1), and the
		// bank tables write no PHV fields, so they share the
		// window-logits stage after the index is computed.
		idxField, ok := layout.Lookup("fidx0")
		if !ok {
			return fmt.Errorf("models: %s extraction emission has no fuzzy index field", m.Name)
		}
		restore, err := ext.EmitWindowBank(em.Prog, "px_pidx",
			[]core.BankPair{{Src: idxField, Dst: idxFields}}, stage)
		if err != nil {
			return err
		}
		em.Prog.Place(1, &pisa.Table{
			Name: "px_restore", Kind: pisa.MatchNone, DefaultData: []int32{},
			Gate:   &pisa.Gate{Field: ext.Pos, Op: pisa.GateEQ, Value: int32(Window - 1)},
			Action: restore,
		})
	}
	lw := m.nClasses * 8
	// The current packet's contribution already sits in em.OutFields
	// (block Window−1 of the sum tree); the Window−1 stored positions
	// load theirs in parallel.
	for p := 0; p < Window-1; p++ {
		entries := make([]pisa.Entry, len(table))
		ops := make([]pisa.Op, m.nClasses)
		for j := 0; j < m.nClasses; j++ {
			ops[j] = pisa.Op{Kind: pisa.OpSetData, Dst: tmpF[p*m.nClasses+j], DataIdx: j}
		}
		for li, row := range table {
			entries[li] = pisa.Entry{Key: []uint32{uint32(li)}, Data: append([]int32(nil), row...)}
		}
		em.Prog.Place(stage, &pisa.Table{
			Name: fmt.Sprintf("win%d_logits", p), Kind: pisa.MatchExact,
			KeyFields: []pisa.FieldID{idxFields[p]}, KeyWidths: []int{m.IdxBits},
			Entries: entries, Action: ops, DataWidthBits: lw,
		})
	}
	stage++
	// Pairwise SumReduce over the Window blocks (stored 0..Window−2 in
	// tmpF, current packet in em.OutFields), ending in outF.
	type blockRef struct {
		fields []pisa.FieldID
	}
	blocks := make([]blockRef, 0, Window)
	for p := 0; p < Window-1; p++ {
		blocks = append(blocks, blockRef{fields: tmpF[p*m.nClasses : (p+1)*m.nClasses]})
	}
	blocks = append(blocks, blockRef{fields: em.OutFields})
	round := 0
	for len(blocks) > 1 {
		n := len(blocks)
		half := n / 2
		final := half == 1 && n%2 == 0
		var ops []pisa.Op
		for i := 0; i < half; i++ {
			a, b := blocks[i], blocks[n-1-i]
			for j := 0; j < m.nClasses; j++ {
				dst := a.fields[j]
				if final {
					dst = outF[j]
				}
				ops = append(ops, pisa.Op{Kind: pisa.OpSatAdd, Dst: dst, A: a.fields[j], B: b.fields[j]})
			}
		}
		em.Prog.Place(stage, &pisa.Table{Name: fmt.Sprintf("win_sum%d", round), Kind: pisa.MatchNone,
			DefaultData: []int32{}, Action: ops})
		stage++
		round++
		blocks = blocks[:(n+1)/2]
	}
	// Argmax over the window logits.
	best := layout.MustAdd("wbest", 16)
	em.ClassField = layout.MustAdd("class", 8)
	aOps := []pisa.Op{
		{Kind: pisa.OpMove, Dst: best, A: outF[0]},
		{Kind: pisa.OpSet, Dst: em.ClassField, Imm: 0},
	}
	for j := 1; j < m.nClasses; j++ {
		aOps = append(aOps,
			pisa.Op{Kind: pisa.OpSelGE, Dst: em.ClassField, A: outF[j], B: best, Imm: int32(j)},
			pisa.Op{Kind: pisa.OpMax, Dst: best, A: best, B: outF[j]},
		)
	}
	em.Prog.Place(stage, &pisa.Table{Name: "argmax", Kind: pisa.MatchNone,
		DefaultData: []int32{}, Action: aOps})
	stage++
	em.OutFields = outF
	em.Stages = stage
	if err := em.Prog.Validate(); err != nil {
		return err
	}
	if em.Source != "" {
		// A printing target rendered the program before this phase
		// extended it; refresh so the source matches what runs.
		em.Source = pisa.P4Source(em.Prog)
	}
	return nil
}

// RunSwitchWindow drives the emitted program the way the switch sees a
// flow: each packet's pass computes its fuzzy index (banked in flow
// registers); the final packet's pass restores the stored indices and
// the window phase classifies.
func RunSwitchWindow(m *CNNL, em *core.Emitted, x []float64) int {
	phv := em.Prog.Layout.NewPHV()
	// The per-packet index is the final group's fuzzy index; core.Emit
	// reuses the fidx pool per group, and the last group's TCAM (the
	// final one to run) has a single segment, so fidx0 holds the stored
	// index after each pass.
	idxField, ok := em.Prog.Layout.Lookup("fidx0")
	if !ok {
		panic("models: emitted CNN-L has no fuzzy index field")
	}
	stored := make([]int32, 0, Window-1)
	for p := 0; p < Window; p++ {
		phv.Reset()
		seg := x[p*m.segDim : (p+1)*m.segDim]
		for d, f := range em.InFields {
			phv.Set(f, int32(math.RoundToEven(seg[d])))
		}
		if p == Window-1 {
			// Final packet: restore the banked indices (flow registers).
			for q, v := range stored {
				id, _ := em.Prog.Layout.Lookup(fmt.Sprintf("pidx%d", q))
				phv.Set(id, v)
			}
		}
		em.Prog.Process(phv)
		if p < Window-1 {
			stored = append(stored, phv.Get(idxField))
		}
	}
	return int(phv.Get(em.ClassField))
}
