package models

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// RNNB is the paper's RNN-B: the windowed binary-RNN design of BoS
// upgraded to fuzzy-indexed fixed-point states — an Emb layer, a tanh
// recurrent cell over the window, and an FC classifier (§6.3). It
// classifies windows of packet-length and IPD buckets.
type RNNB struct {
	Name string
	Emb  *nn.Embedding
	Cell *nn.RNN
	Out  *nn.Linear
	Net  *nn.Sequential

	pipe     *core.Pipeline
	compiled *core.CompiledRNN
}

// NewRNNB builds RNN-B for nClasses.
func NewRNNB(nClasses int, rng *rand.Rand) *RNNB {
	const stepDims = 2
	emb := nn.NewEmbedding(256, 2, Window*stepDims, rng)
	cell := nn.NewRNN(Window, stepDims*2, 10, rng)
	out := nn.NewLinear(10, nClasses, rng)
	return &RNNB{
		Name: "RNN-B", Emb: emb, Cell: cell, Out: out,
		Net: nn.NewSequential(emb, cell, out),
	}
}

// InputScaleBits reports the 128-bit sequence input (16 × 8-bit).
func (m *RNNB) InputScaleBits() int { return Window * 2 * 8 }

// ModelSizeBits reports the parameter footprint.
func (m *RNNB) ModelSizeBits() int { return m.Net.SizeBits() }

// FlowStateBits reports Table 6's 240 stateful bits/flow: the RNN keeps
// the full window of raw buckets (15 × 8b) plus previous timestamp and
// window bookkeeping, since every step's features feed the switch
// tables.
func (m *RNNB) FlowStateBits() int { return 240 }

// Train fits the network on sequence windows.
func (m *RNNB) Train(flows []netsim.Flow, opts TrainOpts) []float64 {
	opts.defaults()
	xs, ys := ExtractSeq(flows)
	mat := tensor.New(len(xs), Window*2)
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	return nn.Fit(m.Net, mat, nn.ClassTargets(ys), nn.SoftmaxCrossEntropy{},
		nn.NewAdam(opts.LR), nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 32, Seed: opts.Seed})
}

// EvalFull computes full-precision metrics.
func (m *RNNB) EvalFull(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	xs, ys := ExtractSeq(flows)
	mat := tensor.New(len(xs), Window*2)
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	pred := m.Net.Predict(mat)
	return metrics.Evaluate(nClasses, ys, pred)
}

// Compile builds the chained-index dataplane form through the staged
// RNN pipeline (lower traces trajectories and learns the clustering
// trees; build-tables precomputes the transition and logits tables).
func (m *RNNB) Compile(flows []netsim.Flow) error {
	xs, _ := ExtractSeq(flows)
	spec := core.RNNSpec{
		T: Window, StepDims: 2,
		Emb: m.Emb, Cell: m.Cell, Out: m.Out,
		InputDepth: 7, HiddenDepth: 8,
	}
	m.pipe = core.NewRNNPipeline(m.Name, spec, core.CompileOptions{
		Emit: core.EmitOptions{FlowStateBits: m.FlowStateBits()},
	})
	if err := m.pipe.CompileCalib(xs); err != nil {
		return err
	}
	m.compiled = m.pipe.State.RNN
	return nil
}

// Compiled exposes the dataplane form (nil before Compile).
func (m *RNNB) Compiled() *core.CompiledRNN { return m.compiled }

// Diagnostics returns the per-pass compilation diagnostics.
func (m *RNNB) Diagnostics() []core.PassDiag {
	if m.pipe == nil {
		return nil
	}
	return m.pipe.Diagnostics()
}

// EvalPegasus computes compiled-path metrics.
func (m *RNNB) EvalPegasus(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	if m.compiled == nil {
		return metrics.Report{}, fmt.Errorf("models: %s not compiled", m.Name)
	}
	xs, ys := ExtractSeq(flows)
	pred := make([]int, len(xs))
	for i, x := range xs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		pred[i] = m.compiled.Classify(v)
	}
	return metrics.Evaluate(nClasses, ys, pred)
}

// Emit runs the pipeline's emit pass over the chained-index program.
func (m *RNNB) Emit(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return m.pipe.EmitProgram(flows)
}

// EmitPackets emits the RNN with the sequence extraction machine
// compiled into pipe 0: banked len/IPD buckets feed the step in-fields
// on window boundaries. The single-pipe Tofino budget cannot hold the
// prelude plus all eight steps, so use a multi-pipe or SmartNIC target.
func (m *RNNB) EmitPackets(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return emitPacketsVia(m.pipe, core.ExtractSeq, flows)
}

// EmitShared emits the RNN as a pure-combinational subscriber of a
// physically shared seq extraction machine: the chained-index steps
// consume the machine's fired len/IPD window, no private prelude, no
// registers.
func (m *RNNB) EmitShared(shared *core.SharedExtraction) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	if shared.Spec.Kind != core.ExtractSeq {
		return nil, fmt.Errorf("models: %s needs a seq machine, shared machine runs %v", m.Name, shared.Spec.Kind)
	}
	return emitSharedVia(m.pipe, m.Name, shared)
}
