package models

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// packetFlows returns test flows whose register slots are collision
// free for the given flow-table size, so host-side per-flow extraction
// and the shared-slot dataplane state agree exactly.
func packetFlows(t *testing.T, flows []netsim.Flow, slots uint32) []netsim.Flow {
	t.Helper()
	seen := map[uint32]bool{}
	var out []netsim.Flow
	for _, f := range flows {
		s := f.Tuple.Hash() & (slots - 1)
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, f)
	}
	if len(out) < 8 {
		t.Fatalf("only %d collision-free flows", len(out))
	}
	return out
}

// fireExpectation is one expected inference: the packet index in the
// merged stream that completes a window, and the class (or output
// vector) host-side extraction + RunSwitch computes for it.
type fireExpectation struct {
	pkt   int
	class int
	outs  []int32
}

func roundInts(x []float64) []int32 {
	v := make([]int32, len(x))
	for j, f := range x {
		v[j] = int32(math.RoundToEven(f))
	}
	return v
}

// expectStats builds the expected fires of the stats machine: every
// Window-th packet of a flow fires with the cumulative flow statistics
// over the packets so far.
func expectStats(em *core.Emitted, stream []netsim.StreamPacket) []fireExpectation {
	counts := map[*netsim.Flow]int{}
	var exp []fireExpectation
	for i, sp := range stream {
		counts[sp.Flow]++
		n := counts[sp.Flow]
		if n%Window != 0 {
			continue
		}
		cls, outs := em.RunSwitch(roundInts(netsim.StatFeatures(sp.Flow, n)))
		exp = append(exp, fireExpectation{pkt: i, class: cls, outs: outs})
	}
	return exp
}

// expectSeq builds the expected fires of the sequence machine: window k
// of a flow fires on its Window·(k+1)-th packet with that window's
// interleaved len/IPD buckets.
func expectSeq(em *core.Emitted, stream []netsim.StreamPacket) []fireExpectation {
	counts := map[*netsim.Flow]int{}
	wins := map[*netsim.Flow][]netsim.SeqWindow{}
	var exp []fireExpectation
	for i, sp := range stream {
		counts[sp.Flow]++
		n := counts[sp.Flow]
		if n%Window != 0 {
			continue
		}
		w, ok := wins[sp.Flow]
		if !ok {
			w = netsim.SeqWindows(sp.Flow, Window)
			wins[sp.Flow] = w
		}
		cls, outs := em.RunSwitch(roundInts(w[n/Window-1].SeqFeatures()))
		exp = append(exp, fireExpectation{pkt: i, class: cls, outs: outs})
	}
	return exp
}

// checkFires replays the merged trace through the packet engine in both
// execution modes and requires the fired packets and their results to
// match the host-side expectation bit for bit.
func checkFires(t *testing.T, name string, em *core.Emitted, stream []netsim.StreamPacket,
	exp []fireExpectation, checkClass bool) {
	t.Helper()
	jobs := PacketJobs(em, stream)
	for _, mode := range []pisa.ExecMode{pisa.ExecInterpret, pisa.ExecCompiled} {
		eng := em.NewPacketEngine(4, mode)
		eng.ResetState()
		res := eng.RunPackets(jobs)
		eng.Close()
		if len(res) != len(exp) {
			t.Fatalf("%s [%v]: %d fires, host expects %d", name, mode, len(res), len(exp))
		}
		for i, r := range res {
			e := exp[i]
			if r.Pkt != e.pkt {
				t.Fatalf("%s [%v]: fire %d at packet %d, host expects packet %d", name, mode, i, r.Pkt, e.pkt)
			}
			if checkClass && r.Class != e.class {
				t.Fatalf("%s [%v]: packet %d class %d, host expects %d", name, mode, r.Pkt, r.Class, e.class)
			}
			if e.outs != nil {
				for j := range e.outs {
					if r.Outs[j] != e.outs[j] {
						t.Fatalf("%s [%v]: packet %d out[%d] = %d, host expects %d",
							name, mode, r.Pkt, j, r.Outs[j], e.outs[j])
					}
				}
			}
		}
	}
}

// TestPacketPathMatchesHostExtraction is the end-to-end acceptance test
// of the per-packet engine path: for every model family, feeding the
// raw merged trace through the extraction emission yields exactly the
// classifications of host-side StatFeatures/SeqWindows extraction
// followed by RunSwitch, in both execution modes.
func TestPacketPathMatchesHostExtraction(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(41))
	const flowTable = 1 << 16
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)

	// MLP-B: the stats machine. The plain emission already fills the
	// 20-stage pipe, so the packet emission splits across the two-pipe
	// target with extraction staying in pipe 0.
	mlp := NewMLPB(k, rng)
	mlp.Train(train, TrainOpts{Epochs: 4, Seed: 41})
	if err := mlp.Compile(train); err != nil {
		t.Fatal(err)
	}
	plain, err := mlp.Emit(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := core.LookupTarget("tofino-multipipe")
	mlp.pipe.Opts.Emit.Target = tgt
	emp, err := mlp.EmitPackets(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	if len(emp.More) == 0 {
		t.Fatalf("MLP-B packet emission fit one pipe (%d stages); expected a split", emp.Stages)
	}
	checkFires(t, "MLP-B", emp, stream, expectStats(plain, stream), true)

	// CNN-B and CNN-M: the sequence machine through the generic
	// feed-forward emission.
	for _, mk := range []func(int, *rand.Rand) *Feedforward{NewCNNB, NewCNNM} {
		m := mk(k, rng)
		m.Train(train, TrainOpts{Epochs: 3, Seed: 41})
		if err := m.Compile(train); err != nil {
			t.Fatal(err)
		}
		plain, err := m.Emit(flowTable)
		if err != nil {
			t.Fatal(err)
		}
		emp, err := m.EmitPackets(flowTable)
		if err != nil {
			t.Fatal(err)
		}
		checkFires(t, m.Name, emp, stream, expectSeq(plain, stream), true)
	}
}

// TestPacketPathRNNMultiPipe runs RNN-B's packet path on the two-pipe
// Tofino target: the extraction machine plus eight RNN steps overflow
// one pipe, so the emission splits with extraction staying in pipe 0
// and the engine reading the fire flag there while classifying in the
// final pipe.
func TestPacketPathRNNMultiPipe(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(43))
	const flowTable = 1 << 16
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)

	rnn := NewRNNB(k, rng)
	rnn.Train(train, TrainOpts{Epochs: 2, LR: 0.02, Seed: 43})
	if err := rnn.Compile(train); err != nil {
		t.Fatal(err)
	}
	plain, err := rnn.Emit(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := core.LookupTarget("tofino-multipipe")
	rnn.pipe.Opts.Emit.Target = tgt
	emp, err := rnn.EmitPackets(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	if len(emp.More) == 0 {
		t.Fatalf("RNN-B packet emission fit one pipe (%d stages); expected a multi-pipe split", emp.Stages)
	}
	if len(emp.Prog.Registers) == 0 {
		t.Fatal("extraction registers not in pipe 0")
	}
	for _, p := range emp.More {
		if len(p.Registers) != 0 {
			t.Fatal("extraction registers leaked into a later pipe")
		}
	}
	checkFires(t, "RNN-B", emp, stream, expectSeq(plain, stream), true)
}

// TestPacketPathCNNL runs the payload family end to end: the per-packet
// phase computes each packet's fuzzy index, the window phase banks it
// in the per-flow position registers, and the window-completing packet
// restores the bank and classifies — matching RunSwitchWindow's
// host-driven banking over the plain emission.
func TestPacketPathCNNL(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(47))
	const flowTable = 1 << 16
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)

	for _, useIPD := range []bool{false, true} {
		m := NewCNNL(k, useIPD, 4, rng)
		m.Train(train, TrainOpts{Epochs: 1, LR: 0.01, Seed: 47})
		if err := m.Compile(train, 400); err != nil {
			t.Fatal(err)
		}
		plain, err := m.Emit(flowTable)
		if err != nil {
			t.Fatal(err)
		}
		emp, err := m.EmitPackets(flowTable)
		if err != nil {
			t.Fatal(err)
		}
		// Host expectation: RunSwitchWindow over per-flow windows.
		counts := map[*netsim.Flow]int{}
		wins := map[*netsim.Flow][][]float64{}
		var exp []fireExpectation
		for i, sp := range stream {
			counts[sp.Flow]++
			n := counts[sp.Flow]
			if n%Window != 0 {
				continue
			}
			w, ok := wins[sp.Flow]
			if !ok {
				xs, _ := m.Extract([]netsim.Flow{*sp.Flow})
				w = xs
				wins[sp.Flow] = w
			}
			exp = append(exp, fireExpectation{pkt: i, class: RunSwitchWindow(m, plain, w[n/Window-1])})
		}
		checkFires(t, m.Name, emp, stream, exp, true)
	}
}

// TestPacketPathAutoEncoder checks the anomaly family: no argmax, so
// the equivalence target is the emitted reconstruction-error outputs.
func TestPacketPathAutoEncoder(t *testing.T) {
	train, test, _ := smallDataset(t)
	rng := rand.New(rand.NewSource(53))
	const flowTable = 1 << 16
	flows := packetFlows(t, test, flowTable)
	stream := netsim.Merge(flows)

	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 2, Seed: 53})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	plain, err := ae.Emit(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := ae.EmitPackets(flowTable)
	if err != nil {
		t.Fatal(err)
	}
	checkFires(t, "AutoEncoder", emp, stream, expectSeq(plain, stream), false)
}

// TestPacketPathHashCollisions pins the shared-slot semantics: flows
// whose five-tuples hash to the same register slot share extraction
// state, so the dataplane sees their interleaved packets as one logical
// flow — and both execution modes must agree bit for bit on that
// behaviour.
func TestPacketPathHashCollisions(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(59))

	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 2, Seed: 59})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	plain, err := m.Emit(1 << 8)
	if err != nil {
		t.Fatal(err)
	}

	// Two flows with identical tuples: guaranteed slot collision.
	a, b := test[0], test[1]
	b.Tuple = a.Tuple
	stream := netsim.Merge([]netsim.Flow{a, b})
	emp, err := m.EmitPackets(1 << 8)
	if err != nil {
		t.Fatal(err)
	}

	// The dataplane's view: one merged flow in arrival order.
	merged := netsim.Flow{Tuple: a.Tuple}
	for _, sp := range stream {
		merged.Packets = append(merged.Packets, sp.Flow.Packets[sp.Idx])
	}
	mergedStream := netsim.Merge([]netsim.Flow{merged})
	exp := expectSeq(plain, mergedStream)
	checkFires(t, "CNN-B/collision", emp, stream, exp, true)
}

// TestPacketPathZeroAllocs pins the zero-per-packet-heap-allocation
// property of the compiled stateful path: a whole-trace RunPackets call
// may allocate only the returned result slice, so allocations per
// packet must be (far) below one hundredth.
func TestPacketPathZeroAllocs(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(67))
	m := NewCNNM(k, rng)
	m.Train(train, TrainOpts{Epochs: 1, Seed: 67})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	emp, err := m.EmitPackets(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	jobs := PacketJobs(emp, netsim.Merge(test))
	eng := emp.NewPacketEngine(1, pisa.ExecCompiled)
	defer eng.Close()
	eng.ResetState()
	eng.RunPackets(jobs) // warm the reusable buffers
	perCall := testing.AllocsPerRun(10, func() {
		eng.RunPackets(jobs)
	})
	if perPkt := perCall / float64(len(jobs)); perPkt > 0.01 {
		t.Fatalf("compiled stateful path allocates %.4f heap objects per packet (%.1f per %d-packet trace)",
			perPkt, perCall, len(jobs))
	}
}

// TestPacketStreamMatchesBatch drives the same trace through
// RunPacketStream and requires the fired results to match RunPackets.
func TestPacketStreamMatchesBatch(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(61))
	flows := packetFlows(t, test, 1<<16)
	stream := netsim.Merge(flows)

	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 2, Seed: 61})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	emp, err := m.EmitPackets(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	jobs := PacketJobs(emp, stream)

	eng := emp.NewPacketEngine(4, pisa.ExecCompiled)
	defer eng.Close()
	eng.ResetState()
	want := eng.RunPackets(jobs)
	// RunPackets results alias the engine's reused output buffer;
	// detach before the stream path's internal batches overwrite it.
	wantOuts := make([][]int32, len(want))
	for i, r := range want {
		wantOuts[i] = append([]int32(nil), r.Outs...)
	}

	eng.ResetState()
	in := make(chan pisa.PacketIn, 64)
	out := make(chan pisa.PacketResult, 64)
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
	}()
	var got []pisa.PacketResult
	done := make(chan struct{})
	go func() {
		for r := range out {
			got = append(got, r)
		}
		close(done)
	}()
	pkts, fires := eng.RunPacketStream(in, out)
	<-done
	if pkts != len(jobs) || fires != len(want) {
		t.Fatalf("stream replayed %d packets / %d fires, want %d / %d", pkts, fires, len(jobs), len(want))
	}
	for i := range want {
		if got[i].Pkt != want[i].Pkt || got[i].Class != want[i].Class {
			t.Fatalf("stream fire %d = (pkt %d, class %d), batch (pkt %d, class %d)",
				i, got[i].Pkt, got[i].Class, want[i].Pkt, want[i].Class)
		}
		// Streamed Outs are detached copies: they must survive all the
		// micro-batches that ran after they were emitted.
		for j := range wantOuts[i] {
			if got[i].Outs[j] != wantOuts[i][j] {
				t.Fatalf("stream fire %d out[%d] = %d, batch %d (stale buffer aliasing?)",
					i, j, got[i].Outs[j], wantOuts[i][j])
			}
		}
	}
}

// TestPacketPathIdleEviction pins the idle-timeout flow-eviction
// semantics: a new flow colliding into a register slot whose previous
// flow went idle past the timeout starts a clean window — the stale
// half-built state no longer leaks into its feature vectors. The check
// runs the classic blind-spot scenario: flow A banks half a window,
// then flow B (same five-tuple, so a guaranteed slot collision) starts
// after a long gap. Without eviction B's fourth packet completes a
// mixed A+B window; with eviction the first fire is B's own eighth
// packet, bit-identical to replaying B alone — in both exec modes.
func TestPacketPathIdleEviction(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(73))

	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 2, Seed: 73})
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	plain, err := m.Emit(1 << 8)
	if err != nil {
		t.Fatal(err)
	}

	// Flow A: half a window. Flow B: same tuple, 8 packets, shifted to
	// start several timeouts after A's last packet. The timeout must
	// exceed every intra-flow gap so eviction triggers only at the
	// A→B boundary.
	a := test[0]
	a.Packets = append([]netsim.Packet(nil), a.Packets[:Window/2]...)
	b := test[1]
	b.Tuple = a.Tuple
	b.Packets = append([]netsim.Packet(nil), b.Packets[:Window]...)
	maxGap := uint64(0)
	for _, f := range []netsim.Flow{a, b} {
		for i := 1; i < len(f.Packets); i++ {
			if d := f.Packets[i].Time - f.Packets[i-1].Time; d > maxGap {
				maxGap = d
			}
		}
	}
	timeout := maxGap + 1
	empOld, err := m.EmitPackets(1 << 8)
	if err != nil {
		t.Fatal(err)
	}
	// With eviction: emit the same model with the timeout folded into
	// the extraction prelude.
	saved := m.pipe.Opts.Emit.Extract
	m.pipe.Opts.Emit.Extract = &core.ExtractSpec{Kind: core.ExtractSeq, Window: Window, IdleTimeout: int(timeout)}
	emp, err := m.pipe.EmitProgram(1 << 8)
	m.pipe.Opts.Emit.Extract = saved
	if err != nil {
		t.Fatal(err)
	}

	// Two idle gaps: a plain one, and one inside 2^31..2^32 µs where
	// the 32-bit timestamp delta wraps negative under signed compares —
	// both must evict.
	for _, gap := range []uint64{3 * timeout, 2_400_000_000} {
		base := a.Packets[len(a.Packets)-1].Time + gap
		bs := b
		bs.Packets = append([]netsim.Packet(nil), b.Packets...)
		shift := int64(base) - int64(bs.Packets[0].Time)
		for i := range bs.Packets {
			bs.Packets[i].Time = uint64(int64(bs.Packets[i].Time) + shift)
		}
		stream := netsim.Merge([]netsim.Flow{a, bs})

		// Control: without eviction the collision semantics stand — the
		// first fire completes the mixed A+B window at stream index 7.
		eng := empOld.NewPacketEngine(1, pisa.ExecCompiled)
		eng.ResetState()
		old := eng.RunPackets(PacketJobs(empOld, stream))
		eng.Close()
		if len(old) == 0 || old[0].Pkt != Window-1 {
			t.Fatalf("gap %d control without eviction: fires %v, want first fire at packet %d (mixed window)",
				gap, old, Window-1)
		}

		// Expected: exactly the fires of B replayed alone, offset by
		// A's packets in the merged stream.
		exp := expectSeq(plain, netsim.Merge([]netsim.Flow{bs}))
		for i := range exp {
			exp[i].pkt += len(a.Packets)
		}
		if len(exp) == 0 {
			t.Fatal("B alone fired no windows")
		}
		checkFires(t, "CNN-B/evict", emp, stream, exp, true)
	}

	// The prelude must not have grown: eviction rides the existing
	// counter RMW, so stage count and register count match the
	// timeout-free emission.
	if emp.Stages != empOld.Stages {
		t.Fatalf("eviction added stages: %d vs %d", emp.Stages, empOld.Stages)
	}
	if len(emp.Prog.Registers) != len(empOld.Prog.Registers) {
		t.Fatalf("eviction added registers: %d vs %d", len(emp.Prog.Registers), len(empOld.Prog.Registers))
	}
}
