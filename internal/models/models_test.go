package models

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
)

func smallDataset(t *testing.T) (train, test []netsim.Flow, classes int) {
	t.Helper()
	ds := datasets.PeerRush(datasets.Config{FlowsPerClass: 60, PacketsPerFlow: 24, Seed: 77})
	tr, _, te := ds.Split(7)
	return tr, te, ds.NumClasses()
}

func TestExtractors(t *testing.T) {
	train, _, _ := smallDataset(t)
	xs, ys := ExtractStats(train)
	if len(xs) != len(train) || len(ys) != len(train) {
		t.Fatal("ExtractStats counts")
	}
	if len(xs[0]) != 8 {
		t.Fatalf("stats width = %d", len(xs[0]))
	}
	sx, sy := ExtractSeq(train)
	if len(sx) == 0 || len(sx) != len(sy) {
		t.Fatal("ExtractSeq")
	}
	if len(sx[0]) != Window*2 {
		t.Fatalf("seq width = %d", len(sx[0]))
	}
	px, _ := ExtractPayload(train)
	if len(px[0]) != Window*netsim.PayloadBytes {
		t.Fatalf("payload width = %d", len(px[0]))
	}
	pix, _ := ExtractPayloadIPD(train)
	if len(pix[0]) != Window*(netsim.PayloadBytes+1) {
		t.Fatalf("payload+ipd width = %d", len(pix[0]))
	}
}

func TestMLPBEndToEnd(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(1))
	m := NewMLPB(k, rng)
	m.Train(train, TrainOpts{Epochs: 40, Seed: 1})
	full, err := m.EvalFull(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if full.F1 < 0.7 {
		t.Fatalf("MLP-B full F1 = %.3f, want >= 0.7", full.F1)
	}
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	peg, err := m.EvalPegasus(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if peg.F1 < full.F1-0.12 {
		t.Fatalf("Pegasus F1 %.3f too far below full %.3f", peg.F1, full.F1)
	}
	em, err := m.Emit(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	res := em.Prog.Resources()
	if res.RegBits != 80*(1<<16) {
		t.Fatalf("MLP-B flow state: %d", res.RegBits)
	}
	if m.ModelSizeBits() == 0 || m.InputScaleBits != 128 {
		t.Fatal("metadata")
	}
}

func TestCNNBEndToEnd(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(2))
	m := NewCNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 80, Seed: 2})
	full, err := m.EvalFull(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if full.F1 < 0.7 {
		t.Fatalf("CNN-B full F1 = %.3f", full.F1)
	}
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	peg, err := m.EvalPegasus(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if peg.F1 < full.F1-0.15 {
		t.Fatalf("CNN-B Pegasus F1 %.3f vs full %.3f", peg.F1, full.F1)
	}
}

func TestCNNMUsesFewerLookupsThanCNNB(t *testing.T) {
	// Table 6's headline: CNN-M is bigger but uses fewer tables thanks
	// to Advanced Primitive Fusion.
	train, _, k := smallDataset(t)
	rng := rand.New(rand.NewSource(3))
	b := NewCNNB(k, rng)
	mm := NewCNNM(k, rng)
	b.Train(train, TrainOpts{Epochs: 5, Seed: 3})
	mm.Train(train, TrainOpts{Epochs: 5, Seed: 3})
	if mm.ModelSizeBits() <= b.ModelSizeBits() {
		t.Fatalf("CNN-M (%d bits) should be bigger than CNN-B (%d bits)",
			mm.ModelSizeBits(), b.ModelSizeBits())
	}
	if err := b.Compile(train); err != nil {
		t.Fatal(err)
	}
	if err := mm.Compile(train); err != nil {
		t.Fatal(err)
	}
	if mm.Compiled().Lookups() >= b.Compiled().Lookups() {
		t.Fatalf("CNN-M lookups %d should be < CNN-B %d",
			mm.Compiled().Lookups(), b.Compiled().Lookups())
	}
}

func TestRNNBEndToEnd(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(4))
	m := NewRNNB(k, rng)
	m.Train(train, TrainOpts{Epochs: 60, LR: 0.02, Seed: 4})
	full, err := m.EvalFull(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if full.F1 < 0.6 {
		t.Fatalf("RNN-B full F1 = %.3f", full.F1)
	}
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	peg, err := m.EvalPegasus(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if peg.F1 < full.F1-0.2 {
		t.Fatalf("RNN-B Pegasus F1 %.3f vs full %.3f", peg.F1, full.F1)
	}
	em, err := m.Emit(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if em.Stages > 20 {
		t.Fatalf("RNN-B uses %d stages", em.Stages)
	}
}

func TestCNNLEndToEnd(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(5))
	m := NewCNNL(k, true, 4, rng)
	m.Train(train, TrainOpts{Epochs: 8, LR: 0.01, Seed: 5})
	full, err := m.EvalFull(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if full.F1 < 0.8 { // payload carries a strong signal
		t.Fatalf("CNN-L full F1 = %.3f", full.F1)
	}
	if err := m.Compile(train, 1200); err != nil {
		t.Fatal(err)
	}
	peg, err := m.EvalPegasus(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if peg.F1 < 0.6 {
		t.Fatalf("CNN-L Pegasus F1 = %.3f", peg.F1)
	}
	// Refinement must not hurt.
	before := peg.F1
	m.Refine(train, 4, 0.05)
	peg2, _ := m.EvalPegasus(test, k)
	if peg2.F1 < before-0.1 {
		t.Fatalf("refinement degraded CNN-L: %.3f → %.3f", before, peg2.F1)
	}
	// Figure 7 metadata.
	if m.FlowStateBits() != 16+7*4 {
		t.Fatalf("CNN-L 4-bit flow state = %d, want 44", m.FlowStateBits())
	}
	if m.InputScaleBits() != 3840 {
		t.Fatalf("input scale = %d, want 3840", m.InputScaleBits())
	}
}

func TestCNNLVariantsFlowState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if v := NewCNNL(3, false, 4, rng).FlowStateBits(); v != 28 {
		t.Fatalf("28-bit variant = %d", v)
	}
	if v := NewCNNL(3, true, 4, rng).FlowStateBits(); v != 44 {
		t.Fatalf("44-bit variant = %d", v)
	}
	if v := NewCNNL(3, true, 8, rng).FlowStateBits(); v != 72 {
		t.Fatalf("72-bit variant = %d", v)
	}
}

func TestCNNLSwitchEquivalence(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(7))
	m := NewCNNL(k, false, 4, rng)
	m.Train(train, TrainOpts{Epochs: 3, LR: 0.01, Seed: 7})
	if err := m.Compile(train, 800); err != nil {
		t.Fatal(err)
	}
	em, err := m.Emit(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := m.Extract(test)
	for i, x := range xs {
		if i >= 40 {
			break
		}
		host := m.ClassifyWindow(x)
		sw := RunSwitchWindow(m, em, x)
		if host != sw {
			t.Fatalf("window %d: switch class %d, host %d", i, sw, host)
		}
	}
	res := em.Prog.Resources()
	if res.TCAMBits == 0 || res.SRAMBits == 0 {
		t.Fatal("CNN-L resources empty")
	}
}

// hasPass reports whether a diagnostics slice contains a pass by name.
func hasPass(diags []core.PassDiag, name string) bool {
	for _, d := range diags {
		if d.Pass == name {
			return true
		}
	}
	return false
}

// TestAllFamiliesCompileThroughPipeline checks that every model family
// compiles via core.Pipeline with populated pass diagnostics, and that
// the batched engine classifies bit-identically to sequential RunSwitch.
func TestAllFamiliesCompileThroughPipeline(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(8))

	mlp := NewMLPB(k, rng)
	mlp.Train(train, TrainOpts{Epochs: 6, Seed: 8})
	if err := mlp.Compile(train); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"lower", "fuse", "build-tables"} {
		if !hasPass(mlp.Diagnostics(), p) {
			t.Fatalf("MLP-B diagnostics missing %q: %+v", p, mlp.Diagnostics())
		}
	}
	em, err := mlp.Emit(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hasPass(mlp.Diagnostics(), "emit") {
		t.Fatal("MLP-B diagnostics missing emit pass")
	}
	// Engine vs RunSwitch bit-identity on the emitted model.
	xs, _ := mlp.Extract(test)
	if len(xs) > 50 {
		xs = xs[:50]
	}
	jobs := core.BatchJobsFromFloats(xs)
	eng := em.NewEngine(4)
	res := eng.RunBatch(jobs)
	eng.Close()
	for i, j := range jobs {
		cls, _ := em.RunSwitch(j.In)
		if res[i].Class != cls {
			t.Fatalf("sample %d: engine %d, RunSwitch %d", i, res[i].Class, cls)
		}
	}

	rnn := NewRNNB(k, rng)
	rnn.Train(train, TrainOpts{Epochs: 4, LR: 0.02, Seed: 8})
	if err := rnn.Compile(train); err != nil {
		t.Fatal(err)
	}
	if !hasPass(rnn.Diagnostics(), "lower") || !hasPass(rnn.Diagnostics(), "build-tables") {
		t.Fatalf("RNN-B diagnostics: %+v", rnn.Diagnostics())
	}

	cnnl := NewCNNL(k, false, 4, rng)
	cnnl.Train(train, TrainOpts{Epochs: 2, LR: 0.01, Seed: 8})
	if err := cnnl.Compile(train, 600); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"lower", "attach-head", "fuse", "build-tables", "check-final-group"} {
		if !hasPass(cnnl.Diagnostics(), p) {
			t.Fatalf("CNN-L diagnostics missing %q", p)
		}
	}
	cnnl.Refine(train, 1, 0.05)
	if !hasPass(cnnl.Diagnostics(), "refine") {
		t.Fatal("CNN-L diagnostics missing refine pass")
	}
	if _, err := cnnl.Emit(1 << 10); err != nil {
		t.Fatal(err)
	}
	if !hasPass(cnnl.Diagnostics(), "emit-window") {
		t.Fatal("CNN-L diagnostics missing emit-window pass")
	}

	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 4, Seed: 8})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	if !hasPass(ae.Diagnostics(), "build-tables") {
		t.Fatalf("AutoEncoder diagnostics: %+v", ae.Diagnostics())
	}
}

func TestAutoEncoderDetectsAttacks(t *testing.T) {
	train, test, k := smallDataset(t)
	rng := rand.New(rand.NewSource(8))
	// The paper transfers the Emb layer from the classification task;
	// the trained embedding organises the bucket space so anomalous
	// rhythms land off the benign manifold.
	cls := NewRNNB(k, rng)
	cls.Train(train, TrainOpts{Epochs: 30, LR: 0.02, Seed: 8})
	m := NewAutoEncoder(cls.Emb, rng)
	m.Train(train, TrainOpts{Epochs: 60, LR: 0.005, Seed: 8})
	// The detector must flag at least one beaconing family strongly
	// (which family separates best varies with the RNG stream; the
	// experiment suite reports the full matrix).
	best, bestAtk := 0.0, datasets.Cridex
	for _, atk := range []datasets.AttackKind{datasets.Cridex, datasets.Geodo, datasets.Virut} {
		mixed := datasets.MixAttack(test, atk, 9)
		scores, anom := m.ScoreFull(mixed)
		if auc := metrics.AUCFromScores(scores, anom); auc > best {
			best, bestAtk = auc, atk
		}
	}
	if best < 0.8 {
		t.Fatalf("best beacon-family AUC = %.3f, want >= 0.8", best)
	}
	if err := m.Compile(train); err != nil {
		t.Fatal(err)
	}
	mixed := datasets.MixAttack(test, bestAtk, 9)
	pScores, pAnom, err := m.ScorePegasus(mixed)
	if err != nil {
		t.Fatal(err)
	}
	pAUC := metrics.AUCFromScores(pScores, pAnom)
	if pAUC < best-0.2 {
		t.Fatalf("Pegasus AUC %.3f too far below full %.3f", pAUC, best)
	}
	if _, err := m.Emit(1 << 10); err != nil {
		t.Fatal(err)
	}
}
