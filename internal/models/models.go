// Package models implements the paper's model zoo (§6.3): MLP-B, RNN-B,
// CNN-B, CNN-M, CNN-L and the AutoEncoder, each with its feature
// pipeline, training recipe, per-flow state footprint (Table 6) and
// Pegasus compilation path. Feed-forward models share one generic
// implementation; RNN-B and CNN-L use the dedicated compilation paths
// the paper describes for them.
package models

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/pisa"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Window is the packet window shared by all sequence models (the
// paper's CNN-L stores 7 previous packets + the current one).
const Window = 8

// Extractor turns flows into (integer feature vectors, labels).
type Extractor func(flows []netsim.Flow) ([][]float64, []int)

// ExtractStats yields one 8-feature sample per flow: max/min packet
// length and IPD per direction — the 128-bit statistical input of
// MLP-B, N3IC and Leo (8 × 16 bits).
func ExtractStats(flows []netsim.Flow) ([][]float64, []int) {
	xs := make([][]float64, 0, len(flows))
	ys := make([]int, 0, len(flows))
	for i := range flows {
		xs = append(xs, netsim.StatFeatures(&flows[i], 0))
		ys = append(ys, flows[i].Class)
	}
	return xs, ys
}

// ExtractSeq yields one sample per window of Window packets: length and
// IPD buckets interleaved — the 128-bit raw packet sequence input of
// RNN-B, CNN-B and CNN-M (16 × 8 bits).
func ExtractSeq(flows []netsim.Flow) ([][]float64, []int) {
	var xs [][]float64
	var ys []int
	for i := range flows {
		for _, w := range netsim.SeqWindows(&flows[i], Window) {
			xs = append(xs, w.SeqFeatures())
			ys = append(ys, w.Class)
		}
	}
	return xs, ys
}

// ExtractPayload yields one sample per window with Window×60 raw
// payload bytes — CNN-L's 3840-bit input scale.
func ExtractPayload(flows []netsim.Flow) ([][]float64, []int) {
	var xs [][]float64
	var ys []int
	for i := range flows {
		for _, w := range netsim.SeqWindows(&flows[i], Window) {
			xs = append(xs, w.PayloadFeatures())
			ys = append(ys, w.Class)
		}
	}
	return xs, ys
}

// ExtractPayloadIPD appends the per-packet IPD bucket to each packet's
// payload bytes (61 features per packet) — the CNN-L variant with IPD of
// Figure 7.
func ExtractPayloadIPD(flows []netsim.Flow) ([][]float64, []int) {
	var xs [][]float64
	var ys []int
	for i := range flows {
		for _, w := range netsim.SeqWindows(&flows[i], Window) {
			x := make([]float64, 0, Window*(netsim.PayloadBytes+1))
			for p := 0; p < Window; p++ {
				for _, b := range w.Payload[p] {
					x = append(x, float64(b))
				}
				x = append(x, float64(w.IPDB[p]))
			}
			xs = append(xs, x)
			ys = append(ys, w.Class)
		}
	}
	return xs, ys
}

// TrainOpts scales the training budget.
type TrainOpts struct {
	Epochs int
	LR     float64
	Seed   int64
}

func (o *TrainOpts) defaults() {
	if o.Epochs == 0 {
		o.Epochs = 30
	}
	if o.LR == 0 {
		o.LR = 0.005
	}
}

// Feedforward is a generic Pegasus-compilable classifier: it owns the
// trained network, the feature extractor and the compile options, and
// exposes both full-precision and Pegasus (fuzzy fixed-point)
// evaluation plus PISA emission. Compilation runs through the staged
// core.Pipeline; the pass diagnostics are available after Compile.
type Feedforward struct {
	Name string
	Net  *nn.Sequential
	// Extract produces integer features; InDim is the sample width.
	Extract Extractor
	InDim   int
	// InputScaleBits / FlowStateBits are the Table 5/6 metadata.
	InputScaleBits int
	FlowStateBits  int
	// PacketExtract is the feature-extraction state machine EmitPackets
	// compiles in front of the inference program (stats for MLP-B, the
	// len/IPD sequence machine for the window models).
	PacketExtract core.ExtractKind
	// Opts is the unified pipeline configuration (lowering, table
	// building, refinement, emission, input normalisation).
	Opts core.CompileOptions

	pipe     *core.Pipeline
	compiled *core.Compiled
}

// scaleInputs optionally normalises a feature matrix for training.
func (m *Feedforward) scaleInputs(xs [][]float64) *tensor.Mat {
	mat := tensor.New(len(xs), m.InDim)
	for i, x := range xs {
		copy(mat.Row(i), x)
	}
	if m.Opts.Normalize > 0 {
		mat.Scale(1 / m.Opts.Normalize)
	}
	return mat
}

// Train fits the network on the flows' features.
func (m *Feedforward) Train(flows []netsim.Flow, opts TrainOpts) []float64 {
	opts.defaults()
	xs, ys := m.Extract(flows)
	mat := m.scaleInputs(xs)
	return nn.Fit(m.Net, mat, nn.ClassTargets(ys), nn.SoftmaxCrossEntropy{},
		nn.NewAdam(opts.LR), nn.TrainConfig{Epochs: opts.Epochs, BatchSize: 32, Seed: opts.Seed})
}

// Compile runs the staged pipeline (lower → fuse → build-tables) on
// calibration flows. Normalisation is folded into the program by the
// lower pass, so the dataplane consumes raw integer features.
func (m *Feedforward) Compile(flows []netsim.Flow) error {
	xs, _ := m.Extract(flows)
	opts := m.Opts
	opts.Emit.Argmax = true
	opts.Emit.FlowStateBits = m.FlowStateBits
	m.pipe = core.NewPipeline(m.Name, opts)
	comp, err := m.pipe.Compile(m.Net, m.InDim, xs)
	if err != nil {
		return err
	}
	m.compiled = comp
	return nil
}

// Compiled returns the compiled tables (nil before Compile).
func (m *Feedforward) Compiled() *core.Compiled { return m.compiled }

// Pipeline returns the compilation pipeline (nil before Compile); its
// Diagnostics record every executed pass.
func (m *Feedforward) Pipeline() *core.Pipeline { return m.pipe }

// Diagnostics returns the per-pass compilation diagnostics.
func (m *Feedforward) Diagnostics() []core.PassDiag {
	if m.pipe == nil {
		return nil
	}
	return m.pipe.Diagnostics()
}

// Refine backprop-tunes the final mapping tables (§4.4) on the flows.
func (m *Feedforward) Refine(flows []netsim.Flow, cfg core.RefineConfig) (float64, error) {
	if m.pipe == nil || m.compiled == nil {
		return 0, fmt.Errorf("models: %s not compiled", m.Name)
	}
	m.pipe.Opts.Refine = cfg
	xs, ys := m.Extract(flows)
	return m.pipe.Refine(xs, ys)
}

// EvalFull computes Table 5 metrics with full-precision inference.
func (m *Feedforward) EvalFull(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	xs, ys := m.Extract(flows)
	mat := m.scaleInputs(xs)
	pred := m.Net.Predict(mat)
	return metrics.Evaluate(nClasses, ys, pred)
}

// EvalPegasus computes Table 5 metrics with compiled fuzzy fixed-point
// inference — what the switch executes.
func (m *Feedforward) EvalPegasus(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	if m.compiled == nil {
		return metrics.Report{}, fmt.Errorf("models: %s not compiled", m.Name)
	}
	xs, ys := m.Extract(flows)
	pred := make([]int, len(xs))
	for i, x := range xs {
		v := make([]int32, len(x))
		for j, f := range x {
			v[j] = int32(math.RoundToEven(f))
		}
		pred[i] = m.compiled.Classify(v)
	}
	return metrics.Evaluate(nClasses, ys, pred)
}

// Emit runs the pipeline's emit pass: it lowers the compiled model onto
// the PISA pipeline with the model's flow-state footprint, for Table 6
// resource accounting.
func (m *Feedforward) Emit(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return m.pipe.EmitProgram(flows)
}

// EmitPackets emits the model with its per-packet extraction machine
// compiled in: the returned program consumes raw packets (via
// Emitted.NewPacketEngine), updates its flow-state registers once per
// packet and classifies on window boundaries, bit-identical to
// host-side extraction followed by RunSwitch.
func (m *Feedforward) EmitPackets(flows int) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	return emitPacketsVia(m.pipe, m.PacketExtract, flows)
}

// emitPacketsVia runs a pipeline's emit passes with the given
// extraction machine temporarily installed, over the zoo's shared
// packet window.
func emitPacketsVia(pipe *core.Pipeline, kind core.ExtractKind, flows int) (*core.Emitted, error) {
	saved := pipe.Opts.Emit.Extract
	pipe.Opts.Emit.Extract = &core.ExtractSpec{Kind: kind, Window: Window}
	defer func() { pipe.Opts.Emit.Extract = saved }()
	return pipe.EmitProgram(flows)
}

// EmitShared emits the model as a pure-combinational subscriber of the
// physically shared extraction machine: no extraction prelude, no
// flow-state registers — the emission's in-fields consume the machine's
// fired feature window (delivered by a pisa.Fanout) and the program
// classifies it exactly as the fused EmitPackets form would have.
func (m *Feedforward) EmitShared(shared *core.SharedExtraction) (*core.Emitted, error) {
	if m.pipe == nil || m.compiled == nil {
		return nil, fmt.Errorf("models: %s not compiled", m.Name)
	}
	if shared.Spec.Kind != m.PacketExtract {
		return nil, fmt.Errorf("models: %s extracts %v, shared machine runs %v",
			m.Name, m.PacketExtract, shared.Spec.Kind)
	}
	return emitSharedVia(m.pipe, m.Name, shared)
}

// emitSharedVia runs a pipeline's emit passes stripped of extraction
// and flow-state registers (the shared machine owns all per-flow
// state), then binds the emission to the machine. The machine's output
// window must match the model's input width positionally — both sides
// derive from the same extraction ordering, so this is a shape check,
// not a semantic one.
func emitSharedVia(pipe *core.Pipeline, name string, shared *core.SharedExtraction) (*core.Emitted, error) {
	saved := pipe.Opts.Emit
	pipe.Opts.Emit.Extract = nil
	pipe.Opts.Emit.FlowStateBits = 0
	defer func() { pipe.Opts.Emit = saved }()
	em, err := pipe.EmitProgram(0)
	if err != nil {
		return nil, err
	}
	if len(em.InFields) != len(shared.Em.OutFields) {
		return nil, fmt.Errorf("models: %s consumes %d window fields, shared machine produces %d",
			name, len(em.InFields), len(shared.Em.OutFields))
	}
	em.Shared = shared
	return em, nil
}

// SharedWindowSpec is the model zoo's extraction spec for a physically
// shared machine of the given kind: the zoo-wide window over flows
// per-flow register slots.
func SharedWindowSpec(kind core.ExtractKind) core.ExtractSpec {
	return core.ExtractSpec{Kind: kind, Window: Window}
}

// ModelSizeBits reports the Table 5 model size (32-bit parameters).
func (m *Feedforward) ModelSizeBits() int { return m.Net.SizeBits() }

// NewMLPB builds the paper's MLP-B: three hidden blocks of
// BatchNorm→FC→ReLU over the 8 statistical features (§6.3).
func NewMLPB(nClasses int, rng *rand.Rand) *Feedforward {
	net := nn.NewSequential(
		nn.NewBatchNorm(8),
		nn.NewLinear(8, 16, rng), nn.NewActivation(nn.ReLU),
		nn.NewBatchNorm(16),
		nn.NewLinear(16, 16, rng), nn.NewActivation(nn.ReLU),
		nn.NewBatchNorm(16),
		nn.NewLinear(16, 16, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(16, nClasses, rng),
	)
	return &Feedforward{
		Name: "MLP-B", Net: net, Extract: ExtractStats, InDim: 8,
		PacketExtract:  core.ExtractStats,
		InputScaleBits: 128, // 8 × 16-bit register stats
		// Table 6: 80 stateful bits/flow — 4×16b length/IPD trackers per
		// direction packed into 8 8-bit registers plus timestamps.
		FlowStateBits: 80,
		Opts: core.CompileOptions{
			Lower:     core.LowerConfig{MaxSegDim: 2},
			Tables:    core.CompileConfig{TreeDepth: 7, InBits: 16, MaxCalib: 3000},
			Normalize: 64,
		},
	}
}

// PacketJobs marshals a merged packet trace (netsim.Merge) into engine
// packet jobs for an extraction emission: each packet carries its flow
// hash (register slot + engine shard) and the raw field values the
// emission's extraction machine consumes. Timestamps are truncated to
// their low 32 bits; inter-packet deltas survive the truncation
// unchanged for any gap below ~71 minutes.
func PacketJobs(em *core.Emitted, stream []netsim.StreamPacket) []pisa.PacketIn {
	if em.Extract == nil {
		panic("models: PacketJobs on an emission without an extraction machine")
	}
	jobs := make([]pisa.PacketIn, len(stream))
	nf := len(em.Extract.Meta.Fields)
	for i, sp := range stream {
		p := &sp.Flow.Packets[sp.Idx]
		fields := make([]int32, nf)
		switch em.Extract.Spec.Kind {
		case core.ExtractStats:
			fields[0] = int32(p.Dir)
			fields[1] = int32(p.Len)
			fields[2] = int32(uint32(p.Time))
		case core.ExtractSeq:
			fields[0] = int32(p.Len)
			fields[1] = int32(uint32(p.Time))
		case core.ExtractPayload:
			for j := 0; j < nf; j++ {
				fields[j] = int32(p.Payload[j])
			}
		case core.ExtractPayloadIPD:
			for j := 0; j < nf-1; j++ {
				fields[j] = int32(p.Payload[j])
			}
			fields[nf-1] = int32(uint32(p.Time))
		}
		jobs[i] = pisa.PacketIn{Hash: sp.Flow.Tuple.Hash(), Fields: fields}
	}
	return jobs
}

// NewCNNB builds the paper's CNN-B: the textcnn baseline over the
// length/IPD sequence, with Basic Primitive Fusion only.
func NewCNNB(nClasses int, rng *rand.Rand) *Feedforward {
	net := nn.NewSequential(
		nn.NewConv1d(Window, 2, 8, 2, 2, rng), nn.NewActivation(nn.ReLU),
		nn.NewGlobalMaxPool(Window/2, 8),
		nn.NewLinear(8, 16, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(16, nClasses, rng),
	)
	return &Feedforward{
		Name: "CNN-B", Net: net, Extract: ExtractSeq, InDim: Window * 2,
		PacketExtract:  core.ExtractSeq,
		InputScaleBits: 128, // 16 × 8-bit buckets
		FlowStateBits:  72,  // 16b timestamp + 7 × 8b packed buckets
		Opts: core.CompileOptions{
			Lower:     core.LowerConfig{MaxSegDim: 4},
			Tables:    core.CompileConfig{TreeDepth: 5, InBits: 8, MaxCalib: 3000},
			Normalize: 32,
		},
	}
}

// NewCNNM builds the paper's CNN-M: a larger model restructured for
// Advanced Primitive Fusion ❸ (NAM): each 2-packet segment owns a
// sub-network compiled into a single mapping table, so the bigger model
// uses fewer tables than CNN-B (Table 6).
func NewCNNM(nClasses int, rng *rand.Rand) *Feedforward {
	inner := nn.NewSequential(
		nn.NewLinear(4, 48, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(48, 48, rng), nn.NewActivation(nn.ReLU),
		nn.NewLinear(48, nClasses, rng),
	)
	net := nn.NewSequential(
		nn.NewSegmentsAsBatch(Window/2, 4, inner),
		nn.NewSumSegments(Window/2, nClasses),
	)
	return &Feedforward{
		Name: "CNN-M", Net: net, Extract: ExtractSeq, InDim: Window * 2,
		PacketExtract:  core.ExtractSeq,
		InputScaleBits: 128,
		FlowStateBits:  72,
		Opts: core.CompileOptions{
			Tables:    core.CompileConfig{TreeDepth: 7, InBits: 8, MaxCalib: 3000},
			Normalize: 32,
		},
	}
}
