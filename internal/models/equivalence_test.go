package models

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/core"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// TestCompiledPlanMatchesInterpreterAllFamilies is the differential
// equivalence test over real emissions: every model family's emitted
// program is replayed over the same packets in both engine modes —
// compiled execution plans versus the reference table interpreter —
// and must agree bit-for-bit on class and every output field. The
// forced tofino-multipipe chain is covered by the core package's
// TestMultiPipeSplitsAndMatchesHost, which runs both modes over a
// bridged split emission.
func TestCompiledPlanMatchesInterpreterAllFamilies(t *testing.T) {
	train, _, k := smallDataset(t)
	rng := rand.New(rand.NewSource(99))

	var cases []struct {
		name string
		em   *core.Emitted
	}
	add := func(name string, em *core.Emitted, err error) {
		if err != nil {
			t.Fatalf("%s: emit: %v", name, err)
		}
		cases = append(cases, struct {
			name string
			em   *core.Emitted
		}{name, em})
	}

	mlp := NewMLPB(k, rng)
	mlp.Train(train, TrainOpts{Epochs: 6, Seed: 99})
	if err := mlp.Compile(train); err != nil {
		t.Fatal(err)
	}
	em, err := mlp.Emit(1 << 10)
	add("MLP-B", em, err)

	rnn := NewRNNB(k, rng)
	rnn.Train(train, TrainOpts{Epochs: 4, LR: 0.02, Seed: 99})
	if err := rnn.Compile(train); err != nil {
		t.Fatal(err)
	}
	em, err = rnn.Emit(1 << 10)
	add("RNN-B", em, err)

	cnnl := NewCNNL(k, false, 4, rng)
	cnnl.Train(train, TrainOpts{Epochs: 2, LR: 0.01, Seed: 99})
	if err := cnnl.Compile(train, 600); err != nil {
		t.Fatal(err)
	}
	em, err = cnnl.Emit(1 << 10)
	add("CNN-L", em, err)

	ae := NewAutoEncoder(nil, rng)
	ae.Train(train, TrainOpts{Epochs: 4, Seed: 99})
	if err := ae.Compile(train); err != nil {
		t.Fatal(err)
	}
	em, err = ae.Emit(1 << 10)
	add("AutoEncoder", em, err)

	// These window-replay emissions carry accounting-only registers
	// (the executable extraction machines are covered by
	// packets_test.go); reset state between runs anyway so a stateful
	// emission cannot silently leak state across modes.
	resetState := func(em *core.Emitted) {
		for _, p := range em.Programs() {
			p.ResetState()
		}
	}
	for _, c := range cases {
		// Fuzz packets over the emitted input fields: uniform positives
		// plus negatives to cross the signed range-coding flip.
		jobs := make([]pisa.Job, 200)
		for i := range jobs {
			in := make([]int32, len(c.em.InFields))
			for j := range in {
				in[j] = int32(rng.Intn(512) - 128)
			}
			jobs[i] = pisa.Job{Hash: rng.Uint32(), In: in}
		}
		compiled := c.em.NewEngineMode(4, pisa.ExecCompiled)
		interp := c.em.NewEngineMode(4, pisa.ExecInterpret)
		resetState(c.em)
		got := compiled.RunBatch(jobs)
		resetState(c.em)
		want := interp.RunBatch(jobs)
		for i := range got {
			if got[i].Class != want[i].Class {
				t.Fatalf("%s packet %d: compiled class %d, interpreted %d",
					c.name, i, got[i].Class, want[i].Class)
			}
			for j := range got[i].Outs {
				if got[i].Outs[j] != want[i].Outs[j] {
					t.Fatalf("%s packet %d: out[%d] compiled %d, interpreted %d",
						c.name, i, j, got[i].Outs[j], want[i].Outs[j])
				}
			}
		}
		// Spot-check against the sequential reference too.
		for i := 0; i < 20; i++ {
			cls, outs := c.em.RunSwitch(jobs[i].In)
			if got[i].Class != cls {
				t.Fatalf("%s packet %d: engine class %d, RunSwitch %d", c.name, i, got[i].Class, cls)
			}
			for j := range outs {
				if got[i].Outs[j] != outs[j] {
					t.Fatalf("%s packet %d: engine out[%d] %d, RunSwitch %d",
						c.name, i, j, got[i].Outs[j], outs[j])
				}
			}
		}
		compiled.Close()
		interp.Close()
	}
}
