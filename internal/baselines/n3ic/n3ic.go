// Package n3ic implements the N3IC baseline (Siracusano et al.,
// NSDI'22): a fully binarised MLP whose MatMuls run as XNOR + popcount
// on the dataplane. Binarising the entire model (weights, activations
// and the 128-bit input bit-vector) is what costs it accuracy in
// Table 5 — the limitation Pegasus's full-precision weights remove.
package n3ic

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// BinLinear is a binary-weight linear layer trained with the straight-
// through estimator: forward uses sign(W), backward updates the full-
// precision shadow weights.
type BinLinear struct {
	In, Out int
	Shadow  *nn.Param
	lastX   *tensor.Mat
}

// NewBinLinear constructs the layer.
func NewBinLinear(in, out int, rng *rand.Rand) *BinLinear {
	p := &nn.Param{Name: fmt.Sprintf("bin%dx%d", out, in),
		W: tensor.New(out, in), G: tensor.New(out, in)}
	p.W.Randn(rng, math.Sqrt(2/float64(in)))
	return &BinLinear{In: in, Out: out, Shadow: p}
}

func (l *BinLinear) Name() string        { return fmt.Sprintf("BinLinear(%d→%d)", l.In, l.Out) }
func (l *BinLinear) OutDim(in int) int   { return l.Out }
func (l *BinLinear) Params() []*nn.Param { return []*nn.Param{l.Shadow} }

func sign(v float64) float64 {
	if v >= 0 {
		return 1
	}
	return -1
}

// binW materialises the ±1 weight matrix.
func (l *BinLinear) binW() *tensor.Mat {
	w := l.Shadow.W.Clone()
	w.Apply(sign)
	return w
}

// Forward computes x·sign(W)ᵀ — on hardware, popcount(XNOR) rescaled.
func (l *BinLinear) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		l.lastX = x
	}
	return tensor.MatMulT(nil, x, l.binW())
}

// Backward applies the straight-through estimator: gradients flow as if
// the weights were real-valued, clipped where |shadow| > 1.
func (l *BinLinear) Backward(grad *tensor.Mat) *tensor.Mat {
	gw := tensor.TMatMul(nil, grad, l.lastX)
	for i := range gw.D {
		if math.Abs(l.Shadow.W.D[i]) > 1 {
			gw.D[i] = 0
		}
	}
	l.Shadow.G.Add(gw)
	return tensor.MatMul(nil, grad, l.binW())
}

// SignAct binarises activations to ±1 with an STE backward (hard tanh).
type SignAct struct {
	Dim   int
	lastX *tensor.Mat
}

// NewSignAct constructs the activation.
func NewSignAct(dim int) *SignAct { return &SignAct{Dim: dim} }

func (a *SignAct) Name() string        { return fmt.Sprintf("Sign(%d)", a.Dim) }
func (a *SignAct) OutDim(in int) int   { return in }
func (a *SignAct) Params() []*nn.Param { return nil }

func (a *SignAct) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		a.lastX = x
	}
	return x.Clone().Apply(sign)
}

func (a *SignAct) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, grad.C)
	for i := range grad.D {
		if math.Abs(a.lastX.D[i]) <= 1 {
			out.D[i] = grad.D[i]
		}
	}
	return out
}

// Model is the N3IC binary MLP over the 128-bit statistics bit-vector.
type Model struct {
	Name string
	Net  *nn.Sequential
}

// New builds the paper-sized binary MLP: 128-bit input, two binary
// hidden layers, full-precision classifier head (as in N3IC's SmartNIC
// deployment).
func New(nClasses int, rng *rand.Rand) *Model {
	net := nn.NewSequential(
		NewBinLinear(128, 48, rng), NewSignAct(48),
		NewBinLinear(48, 24, rng), NewSignAct(24),
		nn.NewLinear(24, nClasses, rng),
	)
	return &Model{Name: "N3IC", Net: net}
}

// InputScaleBits reports the 128-bit input of Table 5.
func (m *Model) InputScaleBits() int { return 128 }

// FlowStateBits matches Table 6's 80 stateful bits/flow (same flow
// statistics as Leo/MLP-B).
func (m *Model) FlowStateBits() int { return 80 }

// ModelSizeBits counts binary weights at 1 bit each plus the
// full-precision head — the Table 5 "Model Size" accounting N3IC uses.
func (m *Model) ModelSizeBits() int {
	bits := 0
	for _, l := range m.Net.Layers {
		switch v := l.(type) {
		case *BinLinear:
			bits += v.In * v.Out
		case *nn.Linear:
			bits += (v.In*v.Out + v.Out) * 32
		}
	}
	return bits
}

// Features turns a flow into the ±1 bit-vector: the raw bits of the 8
// 16-bit statistics.
func Features(f *netsim.Flow) []float64 {
	stats := netsim.StatFeatures(f, 0)
	out := make([]float64, 0, 128)
	for _, s := range stats {
		v := int(s)
		for b := 15; b >= 0; b-- {
			if v&(1<<b) != 0 {
				out = append(out, 1)
			} else {
				out = append(out, -1)
			}
		}
	}
	return out
}

func extract(flows []netsim.Flow) (*tensor.Mat, []int) {
	xs := tensor.New(len(flows), 128)
	ys := make([]int, len(flows))
	for i := range flows {
		copy(xs.Row(i), Features(&flows[i]))
		ys[i] = flows[i].Class
	}
	return xs, ys
}

// Train fits the binary MLP with the straight-through estimator.
func (m *Model) Train(flows []netsim.Flow, epochs int, seed int64) []float64 {
	xs, ys := extract(flows)
	return nn.Fit(m.Net, xs, nn.ClassTargets(ys), nn.SoftmaxCrossEntropy{},
		nn.NewAdam(0.005), nn.TrainConfig{Epochs: epochs, BatchSize: 32, Seed: seed})
}

// Evaluate computes Table 5 metrics.
func (m *Model) Evaluate(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	xs, ys := extract(flows)
	pred := m.Net.Predict(xs)
	return metrics.Evaluate(nClasses, ys, pred)
}
