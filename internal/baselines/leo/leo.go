// Package leo implements the Leo baseline (Jafri et al., NSDI'24): a
// CART decision tree over flow statistics, deployed on the dataplane as
// ternary range rules. It is the strongest tree-based comparator in
// Table 5 and the resource baseline of Table 6 (1024-node config).
package leo

import (
	"fmt"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/fuzzy"
	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

// Model is a trained Leo decision tree.
type Model struct {
	Name      string
	MaxLeaves int
	NClasses  int
	// Cap is the capacity the emitted program validates against and is
	// reported under (zero value = Tofino 2, the paper's testbed).
	Cap       pisa.Capacity
	tree      *fuzzy.Tree
	leafClass []int
}

// New constructs an untrained Leo with the given leaf budget (the paper
// evaluates the 1024-node configuration for resources).
func New(nClasses, maxLeaves int, _ *rand.Rand) *Model {
	if maxLeaves == 0 {
		maxLeaves = 512
	}
	return &Model{Name: "Leo", MaxLeaves: maxLeaves, NClasses: nClasses}
}

// InputScaleBits matches the 128-bit statistical input of Table 5.
func (m *Model) InputScaleBits() int { return 128 }

// FlowStateBits matches Table 6's 80 stateful bits/flow.
func (m *Model) FlowStateBits() int { return 80 }

// Train grows a CART tree with Gini-impurity splits. The split machinery
// reuses the fuzzy package's threshold trees: CART impurity is emulated
// by clustering on one-hot class targets, whose SSE objective is
// equivalent to Gini gain up to a constant factor.
func (m *Model) Train(flows []netsim.Flow) error {
	xs, ys := stats(flows)
	targets := make([][]float64, len(xs))
	for i, y := range ys {
		oh := make([]float64, m.NClasses)
		oh[y] = 1
		targets[i] = oh
	}
	tree, err := fuzzy.BuildTargets(xs, targets, m.MaxLeaves)
	if err != nil {
		return err
	}
	m.tree = tree
	// Majority class per leaf.
	counts := make([][]int, tree.NumLeaves())
	for i := range counts {
		counts[i] = make([]int, m.NClasses)
	}
	for i, x := range xs {
		counts[tree.Assign(x)][ys[i]]++
	}
	m.leafClass = make([]int, tree.NumLeaves())
	for li, c := range counts {
		best, bi := -1, 0
		for cls, n := range c {
			if n > best {
				best, bi = n, cls
			}
		}
		m.leafClass[li] = bi
	}
	return nil
}

// Predict classifies one statistics vector.
func (m *Model) Predict(x []float64) int {
	return m.leafClass[m.tree.Assign(x)]
}

// Evaluate computes Table 5 metrics on flows.
func (m *Model) Evaluate(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	if m.tree == nil {
		return metrics.Report{}, fmt.Errorf("leo: not trained")
	}
	xs, ys := stats(flows)
	pred := make([]int, len(xs))
	for i, x := range xs {
		pred[i] = m.Predict(x)
	}
	return metrics.Evaluate(nClasses, ys, pred)
}

// Emit deploys the tree as a single ternary table (range rules via the
// same priority CRC used by Pegasus) plus the per-flow statistic
// registers, for Table 6 accounting.
func (m *Model) Emit(flows int) (*pisa.Program, error) {
	if m.tree == nil {
		return nil, fmt.Errorf("leo: not trained")
	}
	layout := &pisa.Layout{}
	in := make([]pisa.FieldID, 8)
	for i := range in {
		in[i] = layout.MustAdd(fmt.Sprintf("stat%d", i), 16)
	}
	classF := layout.MustAdd("class", 8)
	cap := m.Cap
	if cap.Stages == 0 {
		cap = pisa.Tofino2
	}
	prog := pisa.NewProgram(m.Name, layout, cap)
	chunks := (m.FlowStateBits() + 7) / 8
	for i := 0; i < chunks; i++ {
		r, err := pisa.NewRegister(fmt.Sprintf("flow%d", i), 8, flows)
		if err != nil {
			return nil, err
		}
		prog.AddRegister(r)
	}
	rules, err := m.tree.TernaryRules(16, true)
	if err != nil {
		return nil, err
	}
	entries := make([]pisa.Entry, len(rules))
	for ri, r := range rules {
		entries[ri] = pisa.Entry{
			Key:  append([]uint32(nil), r.Val...),
			Mask: append([]uint32(nil), r.Mask...),
			Data: []int32{int32(m.leafClass[r.Leaf])},
		}
	}
	kw := make([]int, 8)
	for i := range kw {
		kw[i] = 16
	}
	prog.Place(0, &pisa.Table{
		Name: "tree", Kind: pisa.MatchTernary,
		KeyFields: in, KeyWidths: kw, Entries: entries,
		Action:        []pisa.Op{{Kind: pisa.OpSetData, Dst: classF, DataIdx: 0}},
		DataWidthBits: 8,
	})
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func stats(flows []netsim.Flow) ([][]float64, []int) {
	xs := make([][]float64, 0, len(flows))
	ys := make([]int, 0, len(flows))
	for i := range flows {
		xs = append(xs, netsim.StatFeatures(&flows[i], 0))
		ys = append(ys, flows[i].Class)
	}
	return xs, ys
}
