// Package bos implements the BoS baseline (Yan et al., NSDI'24): a
// windowed binary RNN whose computation is bypassed on the switch by
// exhaustive input→output mapping tables. Each time step consumes only
// 3 bits of features (18-bit total input scale in Table 5) because an
// n-bit exhaustive table needs 2ⁿ entries — the scalability wall fuzzy
// matching removes.
package bos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/pegasus-idp/pegasus/internal/metrics"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/nn"
	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Steps and per-step bit budget: 6 steps × 3 bits = 18-bit input scale.
const (
	Steps    = 6
	StepBits = 3
)

// Model is the windowed binary RNN.
type Model struct {
	Name   string
	Hidden int
	Emb    *nn.Embedding
	Cell   *nn.RNN
	Out    *nn.Linear
	Net    *nn.Sequential

	// Learned binarisation thresholds (quantiles of the training
	// distribution): 3 length cut points (2 bits) and 1 IPD cut (1 bit).
	lenT [3]int
	ipdT int

	// Deployment tables (computation bypassing): trans[x][h] → h', and
	// logits[h]. Hidden states are binarised to Hidden bits.
	trans  [][]uint32
	logits [][]float64
}

// New builds the moderate configuration of §7.4 (hidden size 8).
func New(nClasses int, rng *rand.Rand) *Model {
	const hidden = 8
	emb := nn.NewEmbedding(1<<StepBits, 2, Steps, rng)
	cell := nn.NewRNN(Steps, 2, hidden, rng)
	out := nn.NewLinear(hidden, nClasses, rng)
	return &Model{
		Name: "BoS", Hidden: hidden, Emb: emb, Cell: cell, Out: out,
		Net: nn.NewSequential(emb, cell, out),
	}
}

// InputScaleBits reports the 18-bit input of Table 5.
func (m *Model) InputScaleBits() int { return Steps * StepBits }

// FlowStateBits matches Table 6's 72 stateful bits/flow.
func (m *Model) FlowStateBits() int { return 72 }

// ModelSizeBits counts the full-precision parameters (BoS keeps weights
// full precision inside the bypassed computation).
func (m *Model) ModelSizeBits() int { return m.Net.SizeBits() }

// Features reduces a window to Steps 3-bit symbols using the learned
// binarisation thresholds: 2 bits of packet length, 1 bit of IPD — the
// drastic input quantisation the exhaustive tables force.
func (m *Model) Features(w *netsim.SeqWindow) []float64 {
	out := make([]float64, Steps)
	for i := 0; i < Steps; i++ {
		lb := 0
		for _, t := range m.lenT {
			if w.LenB[i] > t {
				lb++
			}
		}
		ib := 0
		if w.IPDB[i] > m.ipdT {
			ib = 1
		}
		out[i] = float64(lb<<1 | ib)
	}
	return out
}

// calibrate fits the binarisation thresholds to training quantiles —
// BoS learns its input binarisation rather than hard-coding cut points.
func (m *Model) calibrate(flows []netsim.Flow) {
	var lens, ipds []int
	for i := range flows {
		for _, w := range netsim.SeqWindows(&flows[i], models8) {
			for t := 0; t < Steps; t++ {
				lens = append(lens, w.LenB[t])
				ipds = append(ipds, w.IPDB[t])
			}
		}
	}
	if len(lens) == 0 {
		return
	}
	sort.Ints(lens)
	sort.Ints(ipds)
	q := func(xs []int, f float64) int { return xs[int(f*float64(len(xs)-1))] }
	m.lenT = [3]int{q(lens, 0.25), q(lens, 0.5), q(lens, 0.75)}
	m.ipdT = q(ipds, 0.5)
}

func (m *Model) extract(flows []netsim.Flow) (*tensor.Mat, []int) {
	var rows [][]float64
	var ys []int
	for i := range flows {
		for _, w := range netsim.SeqWindows(&flows[i], models8) {
			rows = append(rows, m.Features(&w))
			ys = append(ys, w.Class)
		}
	}
	xs := tensor.New(len(rows), Steps)
	for i, r := range rows {
		copy(xs.Row(i), r)
	}
	return xs, ys
}

// models8 mirrors models.Window without importing it (BoS windows reuse
// the same 8-packet windows, consuming the first Steps packets).
const models8 = 8

// Train calibrates the binarisation thresholds and fits the RNN at full
// precision (training is off-switch).
func (m *Model) Train(flows []netsim.Flow, epochs int, seed int64) []float64 {
	m.calibrate(flows)
	xs, ys := m.extract(flows)
	return nn.Fit(m.Net, xs, nn.ClassTargets(ys), nn.SoftmaxCrossEntropy{},
		nn.NewAdam(0.02), nn.TrainConfig{Epochs: epochs, BatchSize: 32, Seed: seed})
}

// Compile enumerates the exhaustive mapping tables: for every (3-bit
// input, binary hidden state) pair, one full-precision cell step whose
// result is binarised — input/output binarisation being BoS's accuracy
// cost (§2).
func (m *Model) Compile() {
	nx := 1 << StepBits
	nh := 1 << m.Hidden
	m.trans = make([][]uint32, nx)
	for x := 0; x < nx; x++ {
		m.trans[x] = make([]uint32, nh)
		for h := 0; h < nh; h++ {
			hv := bitsToVec(uint32(h), m.Hidden)
			next := m.step(float64(x), hv)
			m.trans[x][h] = vecToBits(next)
		}
	}
	m.logits = make([][]float64, nh)
	for h := 0; h < nh; h++ {
		hv := bitsToVec(uint32(h), m.Hidden)
		hm := tensor.Vec(hv)
		out := tensor.MatMulT(nil, hm, m.Out.Weight.W)
		out.AddRowVec(m.Out.Bias.W)
		m.logits[h] = append([]float64(nil), out.Row(0)...)
	}
}

// step runs one full-precision cell step on a symbol and hidden vector.
func (m *Model) step(sym float64, h []float64) []float64 {
	idx := m.Emb.Lookup(sym)
	e := m.Emb.Table.W.Row(idx)
	em := tensor.Vec(append([]float64(nil), e...))
	hm := tensor.Vec(h)
	pre := tensor.MatMulT(nil, em, m.Cell.Wx.W)
	pre.Add(tensor.MatMulT(nil, hm, m.Cell.Wh.W))
	pre.AddRowVec(m.Cell.Bias.W)
	return pre.Apply(math.Tanh).Row(0)
}

// bitsToVec expands a binary state to ±1 activations.
func bitsToVec(bits uint32, n int) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		if bits&(1<<i) != 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}

// vecToBits binarises activations by sign.
func vecToBits(v []float64) uint32 {
	var b uint32
	for i, x := range v {
		if x >= 0 {
			b |= 1 << i
		}
	}
	return b
}

// Classify runs the bypassed (table-driven) inference for one window.
func (m *Model) Classify(x []float64) int {
	var h uint32 // h₀ = all-zero binary state
	for t := 0; t < Steps; t++ {
		sym := int(x[t])
		h = m.trans[sym][h]
	}
	logits := m.logits[h]
	best, bi := math.Inf(-1), 0
	for i, v := range logits {
		if v >= best {
			best, bi = v, i
		}
	}
	return bi
}

// Evaluate computes Table 5 metrics with the table-driven inference.
func (m *Model) Evaluate(flows []netsim.Flow, nClasses int) (metrics.Report, error) {
	if m.trans == nil {
		return metrics.Report{}, fmt.Errorf("bos: not compiled")
	}
	xs, ys := m.extract(flows)
	pred := make([]int, xs.R)
	for i := 0; i < xs.R; i++ {
		pred[i] = m.Classify(xs.Row(i))
	}
	return metrics.Evaluate(nClasses, ys, pred)
}

// TableEntries returns the exhaustive table size: Steps transition
// tables of 2^(StepBits+Hidden) entries plus the logits table — the
// exponential scaling of §2's motivation.
func (m *Model) TableEntries() int {
	return Steps*(1<<(StepBits+m.Hidden)) + 1<<m.Hidden
}
