// Package baselines_test exercises the three prior-work comparators
// end to end on a shared synthetic dataset, asserting the qualitative
// relationships Table 5 depends on.
package baselines_test

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/baselines/bos"
	"github.com/pegasus-idp/pegasus/internal/baselines/leo"
	"github.com/pegasus-idp/pegasus/internal/baselines/n3ic"
	"github.com/pegasus-idp/pegasus/internal/datasets"
	"github.com/pegasus-idp/pegasus/internal/netsim"
	"github.com/pegasus-idp/pegasus/internal/pisa"
)

func data(t *testing.T) (train, test []netsim.Flow, k int) {
	t.Helper()
	ds := datasets.PeerRush(datasets.Config{FlowsPerClass: 60, PacketsPerFlow: 24, Seed: 99})
	tr, _, te := ds.Split(5)
	return tr, te, ds.NumClasses()
}

func TestLeoTrainsAndDeploys(t *testing.T) {
	train, test, k := data(t)
	m := leo.New(k, 256, nil)
	if m.InputScaleBits() != 128 || m.FlowStateBits() != 80 {
		t.Fatal("Leo metadata")
	}
	if err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Evaluate(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.6 {
		t.Fatalf("Leo F1 = %.3f, want >= 0.6", rep.F1)
	}
	prog, err := m.Emit(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Resources()
	if res.TCAMBits == 0 {
		t.Fatal("Leo should consume TCAM")
	}
	if res.RegBits != 80*(1<<12) {
		t.Fatalf("Leo flow state = %d", res.RegBits)
	}
	if res.Stages > prog.Cap.Stages {
		t.Fatal("Leo stage overflow")
	}
}

func TestLeoEmitsAgainstCustomCapacity(t *testing.T) {
	train, _, k := data(t)
	m := leo.New(k, 256, nil)
	m.Cap = pisa.Tofino2
	m.Cap.Stages = 10
	if err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	prog, err := m.Emit(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cap.Stages != 10 {
		t.Fatalf("Leo program capacity = %+v, want 10-stage override", prog.Cap)
	}
}

func TestLeoUntrainedErrors(t *testing.T) {
	m := leo.New(3, 64, nil)
	if _, err := m.Evaluate(nil, 3); err == nil {
		t.Fatal("want error before training")
	}
	if _, err := m.Emit(16); err == nil {
		t.Fatal("want error before training")
	}
}

func TestN3ICTrainsButTrailsLeo(t *testing.T) {
	train, test, k := data(t)
	rng := rand.New(rand.NewSource(1))
	m := n3ic.New(k, rng)
	m.Train(train, 60, 1)
	rep, err := m.Evaluate(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.45 {
		t.Fatalf("N3IC F1 = %.3f, want learnable (>= 0.45)", rep.F1)
	}
	// Binary weights: model size is bit-counted, far below a
	// full-precision model of the same shape.
	if m.ModelSizeBits() >= 128*48*32 {
		t.Fatalf("N3IC size accounting looks full-precision: %d", m.ModelSizeBits())
	}
	if m.InputScaleBits() != 128 {
		t.Fatal("N3IC input scale")
	}
}

func TestN3ICFeaturesAreBits(t *testing.T) {
	f := netsim.Flow{Packets: []netsim.Packet{{Time: 0, Len: 100}, {Time: 50, Len: 1400}}}
	bits := n3ic.Features(&f)
	if len(bits) != 128 {
		t.Fatalf("feature width = %d", len(bits))
	}
	for _, b := range bits {
		if b != 1 && b != -1 {
			t.Fatalf("non-binary feature %g", b)
		}
	}
}

func TestBoSCompilesToExhaustiveTables(t *testing.T) {
	train, test, k := data(t)
	rng := rand.New(rand.NewSource(2))
	m := bos.New(k, rng)
	m.Train(train, 60, 2)
	m.Compile()
	rep, err := m.Evaluate(test, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.4 {
		t.Fatalf("BoS F1 = %.3f, want learnable (>= 0.4)", rep.F1)
	}
	// 18-bit input scale, 2^(3+8) entries per step.
	if m.InputScaleBits() != 18 {
		t.Fatalf("BoS input scale = %d", m.InputScaleBits())
	}
	want := 6*(1<<11) + 1<<8
	if m.TableEntries() != want {
		t.Fatalf("BoS table entries = %d, want %d", m.TableEntries(), want)
	}
}

func TestBoSUncompiledErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := bos.New(3, rng)
	if _, err := m.Evaluate(nil, 3); err == nil {
		t.Fatal("want error before Compile")
	}
}
