// Package nn is a from-scratch deep-learning framework: the training and
// full-precision inference substrate beneath Pegasus.
//
// The paper trains its model zoo (MLP-B, RNN-B, CNN-B/M/L, AutoEncoder)
// off-switch at full precision, then compiles the trained models into
// dataplane primitives. This package supplies those training semantics:
// every layer of Table 4 (FC, Conv, Act, Norm, Pool, Rec, Emb) with full
// backpropagation, SGD/Adam optimisers and a deterministic training loop.
//
// All layers map a batch matrix (rows = samples) to a batch matrix;
// sequence-aware layers (Conv1d, pooling, RNN) interpret each row as a
// flattened T×C sequence. This keeps the full zoo on one code path.
package nn

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Mat
	G    *tensor.Mat
}

func newParam(name string, r, c int) *Param {
	return &Param{Name: name, W: tensor.New(r, c), G: tensor.New(r, c)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name returns a short identifier for diagnostics and compilation.
	Name() string
	// OutDim returns the per-sample output width given the input width.
	OutDim(inDim int) int
	// Forward maps a batch (rows = samples) to the layer output. train
	// selects training semantics (e.g. batch statistics in BatchNorm).
	Forward(x *tensor.Mat, train bool) *tensor.Mat
	// Backward consumes dL/dout for the most recent Forward(train=true)
	// call, accumulates parameter gradients, and returns dL/din.
	Backward(grad *tensor.Mat) *tensor.Mat
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers into a network.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from layers in order.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dL/dout back through all layers.
func (s *Sequential) Backward(grad *tensor.Mat) *tensor.Mat {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters of the network.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// OutDim computes the network's per-sample output width for inDim inputs.
func (s *Sequential) OutDim(inDim int) int {
	for _, l := range s.Layers {
		inDim = l.OutDim(inDim)
	}
	return inDim
}

// NumParams returns the total scalar parameter count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W.D)
	}
	return n
}

// SizeBits returns the model size in bits assuming 32-bit parameters,
// matching the "Model Size (Kb)" accounting of Table 5.
func (s *Sequential) SizeBits() int { return s.NumParams() * 32 }

// Predict returns the argmax class per row of the network output.
func (s *Sequential) Predict(x *tensor.Mat) []int {
	out := s.Forward(x, false)
	classes := make([]int, out.R)
	for i := range classes {
		classes[i] = out.ArgmaxRow(i)
	}
	return classes
}

// String summarises the architecture.
func (s *Sequential) String() string {
	str := "Sequential["
	for i, l := range s.Layers {
		if i > 0 {
			str += " → "
		}
		str += l.Name()
	}
	return str + "]"
}

func shapeCheck(layer string, x *tensor.Mat, wantCols int) {
	if x.C != wantCols {
		panic(fmt.Sprintf("nn: %s expects %d input columns, got %dx%d", layer, wantCols, x.R, x.C))
	}
}
