package nn

import (
	"fmt"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Embedding maps T discrete indices per row to T concatenated dense
// vectors — the paper's Emb layer ("Embedding Lookup... an indexing
// function f(x) = E[x], efficiently implemented using the Map
// primitive"). Inputs are float-encoded integer indices in [0,Vocab);
// out-of-range indices are clamped, matching table-lookup semantics on
// the dataplane where every key hits some entry.
type Embedding struct {
	Vocab, Dim, T int
	Table         *Param // Vocab×Dim
	lastIdx       [][]int
}

// NewEmbedding constructs an embedding of vocab entries of width dim,
// applied to rows of t indices.
func NewEmbedding(vocab, dim, t int, rng *rand.Rand) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, T: t,
		Table: newParam(fmt.Sprintf("emb%dx%d", vocab, dim), vocab, dim)}
	e.Table.W.Randn(rng, 0.1)
	return e
}

func (e *Embedding) Name() string      { return fmt.Sprintf("Embedding(%d,%d,T=%d)", e.Vocab, e.Dim, e.T) }
func (e *Embedding) OutDim(in int) int { return e.T * e.Dim }
func (e *Embedding) Params() []*Param  { return []*Param{e.Table} }

// Lookup clamps and returns the integer index for a float-encoded input.
func (e *Embedding) Lookup(v float64) int {
	idx := int(v)
	if idx < 0 {
		idx = 0
	}
	if idx >= e.Vocab {
		idx = e.Vocab - 1
	}
	return idx
}

func (e *Embedding) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("Embedding", x, e.T)
	out := tensor.New(x.R, e.T*e.Dim)
	if train {
		e.lastIdx = make([][]int, x.R)
	}
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		var idxs []int
		if train {
			idxs = make([]int, e.T)
		}
		for t, v := range row {
			idx := e.Lookup(v)
			if train {
				idxs[t] = idx
			}
			copy(orow[t*e.Dim:(t+1)*e.Dim], e.Table.W.Row(idx))
		}
		if train {
			e.lastIdx[i] = idxs
		}
	}
	return out
}

func (e *Embedding) Backward(grad *tensor.Mat) *tensor.Mat {
	for i := 0; i < grad.R; i++ {
		grow := grad.Row(i)
		for t, idx := range e.lastIdx[i] {
			dst := e.Table.G.Row(idx)
			src := grow[t*e.Dim : (t+1)*e.Dim]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	// Discrete inputs: no gradient flows to indices.
	return tensor.New(grad.R, e.T)
}
