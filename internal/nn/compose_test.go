package nn

import (
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

func TestSegmentsAsBatchMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	inner := NewSequential(NewLinear(3, 2, rng), NewActivation(Tanh))
	seg := NewSegmentsAsBatch(4, 3, inner)
	x := tensor.New(5, 12).Randn(rng, 1)
	out := seg.Forward(x, false)
	if out.R != 5 || out.C != 8 {
		t.Fatalf("out shape %dx%d", out.R, out.C)
	}
	// Manually push each segment through inner and compare.
	for i := 0; i < x.R; i++ {
		for g := 0; g < 4; g++ {
			sub := tensor.New(1, 3)
			copy(sub.Row(0), x.Row(i)[g*3:(g+1)*3])
			want := inner.Forward(sub, false)
			for j := 0; j < 2; j++ {
				if got := out.At(i, g*2+j); got != want.At(0, j) {
					t.Fatalf("segment output mismatch at (%d,%d,%d): %g vs %g", i, g, j, got, want.At(0, j))
				}
			}
		}
	}
}

func TestSegmentsAsBatchGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inner := NewSequential(NewLinear(2, 3, rng), NewActivation(Tanh))
	net := NewSequential(
		NewSegmentsAsBatch(3, 2, inner),
		NewSumSegments(3, 3),
	)
	x := tensor.New(4, 6).Randn(rng, 1)
	targets := ClassTargets([]int{0, 1, 2, 0})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestSumSegmentsForward(t *testing.T) {
	s := NewSumSegments(2, 3)
	x := tensor.FromSlice(1, 6, []float64{1, 2, 3, 10, 20, 30})
	out := s.Forward(x, false)
	want := tensor.Vec([]float64{11, 22, 33})
	if !tensor.Equal(out, want, 0) {
		t.Fatalf("SumSegments = %v", out.D)
	}
}

func TestNAMStyleModelTrains(t *testing.T) {
	// A NAM over 2 segments can learn a function where each segment
	// contributes additively.
	rng := rand.New(rand.NewSource(22))
	inner := NewSequential(NewLinear(2, 8, rng), NewActivation(Tanh), NewLinear(8, 2, rng))
	net := NewSequential(NewSegmentsAsBatch(2, 2, inner), NewSumSegments(2, 2))
	n := 200
	xs := tensor.New(n, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := xs.Row(i)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		score := row[0] - row[1] + row[2] - row[3]
		if score > 0 {
			labels[i] = 1
		}
	}
	Fit(net, xs, ClassTargets(labels), SoftmaxCrossEntropy{}, NewAdam(0.02),
		TrainConfig{Epochs: 60, BatchSize: 32, Seed: 5})
	if acc := Accuracy(net, xs, labels); acc < 0.95 {
		t.Fatalf("NAM accuracy = %g, want >= 0.95", acc)
	}
}
