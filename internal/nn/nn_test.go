package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// gradCheck numerically validates Backward of a network against the
// analytic gradients for both parameters and inputs.
func gradCheck(t *testing.T, net *Sequential, x, targets *tensor.Mat, loss Loss) {
	t.Helper()
	lossAt := func() float64 {
		out := net.Forward(x, true)
		l, _ := loss.Eval(out, targets)
		return l
	}
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := loss.Eval(out, targets)
	gin := net.Backward(grad)

	const eps = 1e-6
	checkMat := func(name string, w *tensor.Mat, g *tensor.Mat) {
		t.Helper()
		for i := range w.D {
			orig := w.D[i]
			w.D[i] = orig + eps
			lp := lossAt()
			w.D[i] = orig - eps
			lm := lossAt()
			w.D[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g.D[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, g.D[i], num)
			}
		}
	}
	for _, p := range net.Params() {
		checkMat(p.Name, p.W, p.G)
	}
	checkMat("input", x, gin)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(NewLinear(4, 3, rng))
	x := tensor.New(5, 4).Randn(rng, 1)
	targets := ClassTargets([]int{0, 1, 2, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []ActKind{ReLU, Tanh, Sigmoid} {
		net := NewSequential(NewLinear(3, 4, rng), NewActivation(kind), NewLinear(4, 2, rng))
		x := tensor.New(4, 3).Randn(rng, 1)
		// Shift away from ReLU kink at 0 for stable numerics.
		x.Apply(func(v float64) float64 {
			if math.Abs(v) < 0.05 {
				return v + 0.1
			}
			return v
		})
		targets := ClassTargets([]int{0, 1, 0, 1})
		gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSequential(NewBatchNorm(3), NewLinear(3, 2, rng))
	x := tensor.New(6, 3).Randn(rng, 2)
	targets := ClassTargets([]int{0, 1, 0, 1, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestConv1dGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewSequential(NewConv1d(6, 2, 3, 2, 2, rng), NewLinear(9, 2, rng))
	x := tensor.New(3, 12).Randn(rng, 1)
	targets := ClassTargets([]int{0, 1, 0})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewSequential(NewConv1d(8, 1, 2, 3, 1, rng), NewMaxPool1d(6, 2, 2, 2), NewLinear(6, 2, rng))
	x := tensor.New(3, 8).Randn(rng, 1)
	targets := ClassTargets([]int{1, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestGlobalMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(NewConv1d(8, 1, 3, 3, 1, rng), NewGlobalMaxPool(6, 3), NewLinear(3, 2, rng))
	x := tensor.New(3, 8).Randn(rng, 1)
	targets := ClassTargets([]int{1, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(NewAvgPool1d(6, 2, 2, 2), NewLinear(6, 2, rng))
	x := tensor.New(3, 12).Randn(rng, 1)
	targets := ClassTargets([]int{1, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestRNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSequential(NewRNN(4, 2, 5, rng), NewLinear(5, 2, rng))
	x := tensor.New(3, 8).Randn(rng, 1)
	targets := ClassTargets([]int{1, 0, 1})
	gradCheck(t, net, x, targets, SoftmaxCrossEntropy{})
}

func TestEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(NewEmbedding(6, 3, 4, rng), NewLinear(12, 2, rng))
	x := tensor.FromSlice(2, 4, []float64{0, 1, 2, 3, 5, 4, 3, 2})
	targets := ClassTargets([]int{0, 1})
	// Embedding input is discrete; only check parameter grads.
	lossAt := func() float64 {
		out := net.Forward(x, true)
		l, _ := SoftmaxCrossEntropy{}.Eval(out, targets)
		return l
	}
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, grad := SoftmaxCrossEntropy{}.Eval(out, targets)
	net.Backward(grad)
	const eps = 1e-6
	for _, p := range net.Params() {
		for i := range p.W.D {
			orig := p.W.D[i]
			p.W.D[i] = orig + eps
			lp := lossAt()
			p.W.D[i] = orig - eps
			lm := lossAt()
			p.W.D[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.D[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", p.Name, i, p.G.D[i], num)
			}
		}
	}
}

func TestEmbeddingClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e := NewEmbedding(4, 2, 1, rng)
	if e.Lookup(-3) != 0 || e.Lookup(99) != 3 || e.Lookup(2) != 2 {
		t.Fatal("Lookup clamping broken")
	}
}

func TestMSEAndMAELosses(t *testing.T) {
	out := tensor.FromSlice(1, 2, []float64{1, 3})
	tgt := tensor.FromSlice(1, 2, []float64{0, 1})
	l, g := MSE{}.Eval(out, tgt)
	if math.Abs(l-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("MSE = %g, want 2.5", l)
	}
	if math.Abs(g.D[0]-1) > 1e-12 || math.Abs(g.D[1]-2) > 1e-12 {
		t.Fatalf("MSE grad = %v", g.D)
	}
	l, g = MAE{}.Eval(out, tgt)
	if math.Abs(l-1.5) > 1e-12 { // (1+2)/2
		t.Fatalf("MAE = %g, want 1.5", l)
	}
	if g.D[0] != 0.5 || g.D[1] != 0.5 {
		t.Fatalf("MAE grad = %v", g.D)
	}
}

func TestMAEScore(t *testing.T) {
	out := tensor.FromSlice(2, 2, []float64{1, 2, 0, 0})
	tgt := tensor.FromSlice(2, 2, []float64{0, 0, 0, 4})
	s := MAEScore(out, tgt)
	if s[0] != 1.5 || s[1] != 2 {
		t.Fatalf("MAEScore = %v", s)
	}
}

func TestSoftmaxForwardRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sm := NewSoftmax()
	x := tensor.New(4, 5).Randn(rng, 3)
	out := sm.Forward(x, false)
	for i := 0; i < out.R; i++ {
		s := 0.0
		for _, v := range out.Row(i) {
			if v < 0 {
				t.Fatal("softmax negative")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestSoftmaxGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(NewLinear(3, 4, rng), NewSoftmax())
	x := tensor.New(3, 3).Randn(rng, 1)
	tgt := tensor.New(3, 4)
	tgt.Set(0, 1, 1)
	tgt.Set(1, 0, 1)
	tgt.Set(2, 3, 1)
	gradCheck(t, net, x, tgt, MSE{})
}

func TestBatchNormInferenceAffineMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bn := NewBatchNorm(3)
	// Push some batches through to populate running stats.
	for i := 0; i < 20; i++ {
		bn.Forward(tensor.New(16, 3).Randn(rng, 2), true)
	}
	scale, shift := bn.InferenceAffine()
	x := tensor.New(4, 3).Randn(rng, 2)
	want := bn.Forward(x, false)
	got := tensor.New(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			got.Set(i, j, scale[j]*x.At(i, j)+shift[j])
		}
	}
	if !tensor.Equal(got, want, 1e-9) {
		t.Fatal("InferenceAffine disagrees with Forward(train=false)")
	}
}

func TestFitLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewSequential(
		NewLinear(2, 8, rng), NewActivation(Tanh),
		NewLinear(8, 2, rng),
	)
	xs := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	hist := Fit(net, xs, ClassTargets(labels), SoftmaxCrossEntropy{}, NewAdam(0.05),
		TrainConfig{Epochs: 300, BatchSize: 4, Seed: 1})
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("loss did not decrease: %g -> %g", hist[0], hist[len(hist)-1])
	}
	if acc := Accuracy(net, xs, labels); acc != 1 {
		t.Fatalf("XOR accuracy = %g, want 1", acc)
	}
}

func TestFitDeterministicGivenSeed(t *testing.T) {
	build := func() (*Sequential, *tensor.Mat, []int) {
		rng := rand.New(rand.NewSource(15))
		net := NewSequential(NewLinear(3, 4, rng), NewActivation(ReLU), NewLinear(4, 2, rng))
		xs := tensor.New(20, 3).Randn(rng, 1)
		labels := make([]int, 20)
		for i := range labels {
			labels[i] = i % 2
		}
		return net, xs, labels
	}
	n1, x1, l1 := build()
	n2, x2, l2 := build()
	h1 := Fit(n1, x1, ClassTargets(l1), SoftmaxCrossEntropy{}, NewSGD(0.1, 0.9, 0), TrainConfig{Epochs: 5, BatchSize: 4, Seed: 7})
	h2 := Fit(n2, x2, ClassTargets(l2), SoftmaxCrossEntropy{}, NewSGD(0.1, 0.9, 0), TrainConfig{Epochs: 5, BatchSize: 4, Seed: 7})
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("training not deterministic at epoch %d: %g vs %g", i, h1[i], h2[i])
		}
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 1, 1)
	p.W.D[0] = 10
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay pulls toward 0
	if p.W.D[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %g", p.W.D[0])
	}
}

func TestSequentialIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewSequential(
		NewBatchNorm(4),
		NewLinear(4, 8, rng), NewActivation(ReLU),
		NewLinear(8, 3, rng),
	)
	if got := net.OutDim(4); got != 3 {
		t.Fatalf("OutDim = %d, want 3", got)
	}
	wantParams := 2*4 + (4*8 + 8) + (8*3 + 3)
	if got := net.NumParams(); got != wantParams {
		t.Fatalf("NumParams = %d, want %d", got, wantParams)
	}
	if net.SizeBits() != wantParams*32 {
		t.Fatal("SizeBits mismatch")
	}
	if net.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAutoEncoderReconstructionImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// 6-dim data on a 2-dim manifold.
	n := 64
	xs := tensor.New(n, 6)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		row := xs.Row(i)
		for j := 0; j < 3; j++ {
			row[j] = a + 0.01*rng.NormFloat64()
			row[3+j] = b + 0.01*rng.NormFloat64()
		}
	}
	ae := NewSequential(
		NewLinear(6, 3, rng), NewActivation(Tanh),
		NewLinear(3, 6, rng),
	)
	hist := Fit(ae, xs, xs, MSE{}, NewAdam(0.01), TrainConfig{Epochs: 80, BatchSize: 16, Seed: 3})
	if hist[len(hist)-1] > hist[0]/4 {
		t.Fatalf("AE reconstruction did not improve enough: %g -> %g", hist[0], hist[len(hist)-1])
	}
}
