package nn

import (
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// TrainConfig controls a Fit run. Zero values get sensible defaults.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// Seed drives mini-batch shuffling for deterministic runs.
	Seed int64
	// Verbose, when non-nil, is invoked with (epoch, loss) after each epoch.
	Verbose func(epoch int, loss float64)
}

func (c *TrainConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
}

// Fit trains net to map xs rows to targets rows, returning the per-epoch
// mean loss history. targets layout depends on the loss (class indices
// for cross-entropy, dense rows for reconstruction losses).
func Fit(net *Sequential, xs, targets *tensor.Mat, loss Loss, opt Optimizer, cfg TrainConfig) []float64 {
	cfg.defaults()
	if xs.R != targets.R {
		panic("nn: Fit row count mismatch")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, xs.R)
	for i := range order {
		order[i] = i
	}
	history := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total, batches := 0.0, 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			bx := tensor.New(end-start, xs.C)
			bt := tensor.New(end-start, targets.C)
			for i, idx := range order[start:end] {
				copy(bx.Row(i), xs.Row(idx))
				copy(bt.Row(i), targets.Row(idx))
			}
			out := net.Forward(bx, true)
			l, grad := loss.Eval(out, bt)
			net.Backward(grad)
			opt.Step(net.Params())
			total += l
			batches++
		}
		avg := total / float64(batches)
		history = append(history, avg)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, avg)
		}
	}
	return history
}

// ClassTargets packs integer class labels into the R×1 matrix layout
// expected by SoftmaxCrossEntropy.
func ClassTargets(labels []int) *tensor.Mat {
	m := tensor.New(len(labels), 1)
	for i, l := range labels {
		m.D[i] = float64(l)
	}
	return m
}

// Accuracy returns the fraction of rows whose argmax prediction matches
// labels.
func Accuracy(net *Sequential, xs *tensor.Mat, labels []int) float64 {
	if xs.R == 0 {
		return 0
	}
	pred := net.Predict(xs)
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
