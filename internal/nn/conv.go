package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Conv1d is a one-dimensional convolution over per-row flattened T×C
// sequences — the building block of the paper's textcnn models (CNN-B/M/L
// follow Zhang & Wallace's architecture). Each batch row is reshaped to
// T×Cin, convolved, and the Tout×Cout result re-flattened.
type Conv1d struct {
	T, Cin, Cout, K, Stride int
	Kernels                 *Param // Cout×(K*Cin)
	Bias                    *Param // 1×Cout
	lastX                   *tensor.Mat
}

// NewConv1d constructs a Conv1d layer for T×cin sequences.
func NewConv1d(t, cin, cout, k, stride int, rng *rand.Rand) *Conv1d {
	if (t-k)/stride+1 <= 0 {
		panic(fmt.Sprintf("nn: Conv1d T=%d K=%d stride=%d yields empty output", t, k, stride))
	}
	c := &Conv1d{T: t, Cin: cin, Cout: cout, K: k, Stride: stride,
		Kernels: newParam(fmt.Sprintf("conv%d.k", cout), cout, k*cin),
		Bias:    newParam(fmt.Sprintf("conv%d.b", cout), 1, cout),
	}
	c.Kernels.W.Randn(rng, math.Sqrt(2/float64(k*cin)))
	return c
}

// Tout returns the output sequence length.
func (c *Conv1d) Tout() int { return (c.T-c.K)/c.Stride + 1 }

func (c *Conv1d) Name() string {
	return fmt.Sprintf("Conv1d(T=%d,%d→%d,k=%d,s=%d)", c.T, c.Cin, c.Cout, c.K, c.Stride)
}
func (c *Conv1d) OutDim(in int) int { return c.Tout() * c.Cout }
func (c *Conv1d) Params() []*Param  { return []*Param{c.Kernels, c.Bias} }

func (c *Conv1d) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("Conv1d", x, c.T*c.Cin)
	if train {
		c.lastX = x
	}
	out := tensor.New(x.R, c.Tout()*c.Cout)
	for i := 0; i < x.R; i++ {
		seq := tensor.FromSlice(c.T, c.Cin, x.Row(i))
		res := tensor.Conv1D(seq, c.Kernels.W, c.Bias.W, c.K, c.Stride)
		copy(out.Row(i), res.D)
	}
	return out
}

func (c *Conv1d) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, c.T*c.Cin)
	for i := 0; i < grad.R; i++ {
		seq := tensor.FromSlice(c.T, c.Cin, c.lastX.Row(i))
		g := tensor.FromSlice(c.Tout(), c.Cout, grad.Row(i))
		gi, gk, gb := tensor.Conv1DBackward(seq, c.Kernels.W, g, c.K, c.Stride)
		copy(out.Row(i), gi.D)
		c.Kernels.G.Add(gk)
		c.Bias.G.Add(gb)
	}
	return out
}

// MaxPool1d applies per-channel max pooling over per-row T×C sequences.
type MaxPool1d struct {
	T, C, W, S int
	lastArg    [][][]int // per sample: pooled-row × channel → source row
}

// NewMaxPool1d constructs a pooling layer over T×c sequences.
func NewMaxPool1d(t, c, w, s int) *MaxPool1d {
	if (t-w)/s+1 <= 0 {
		panic(fmt.Sprintf("nn: MaxPool1d T=%d W=%d S=%d yields empty output", t, w, s))
	}
	return &MaxPool1d{T: t, C: c, W: w, S: s}
}

// Tout returns the pooled sequence length.
func (p *MaxPool1d) Tout() int { return (p.T-p.W)/p.S + 1 }

func (p *MaxPool1d) Name() string      { return fmt.Sprintf("MaxPool1d(w=%d,s=%d)", p.W, p.S) }
func (p *MaxPool1d) OutDim(in int) int { return p.Tout() * p.C }
func (p *MaxPool1d) Params() []*Param  { return nil }

func (p *MaxPool1d) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("MaxPool1d", x, p.T*p.C)
	out := tensor.New(x.R, p.Tout()*p.C)
	if train {
		p.lastArg = make([][][]int, x.R)
	}
	for i := 0; i < x.R; i++ {
		seq := tensor.FromSlice(p.T, p.C, x.Row(i))
		res, arg := tensor.MaxPool1D(seq, p.W, p.S)
		copy(out.Row(i), res.D)
		if train {
			p.lastArg[i] = arg
		}
	}
	return out
}

func (p *MaxPool1d) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, p.T*p.C)
	for i := 0; i < grad.R; i++ {
		g := tensor.FromSlice(p.Tout(), p.C, grad.Row(i))
		orow := out.Row(i)
		for t := 0; t < g.R; t++ {
			for c := 0; c < p.C; c++ {
				src := p.lastArg[i][t][c]
				orow[src*p.C+c] += g.At(t, c)
			}
		}
	}
	return out
}

// GlobalMaxPool reduces each per-row T×C sequence to its per-channel
// maximum (1×C), as used after the parallel convolution branches of the
// textcnn architecture.
type GlobalMaxPool struct {
	T, C    int
	lastArg [][]int
}

// NewGlobalMaxPool constructs the layer for T×c sequences.
func NewGlobalMaxPool(t, c int) *GlobalMaxPool { return &GlobalMaxPool{T: t, C: c} }

func (p *GlobalMaxPool) Name() string      { return fmt.Sprintf("GlobalMaxPool(T=%d,C=%d)", p.T, p.C) }
func (p *GlobalMaxPool) OutDim(in int) int { return p.C }
func (p *GlobalMaxPool) Params() []*Param  { return nil }

func (p *GlobalMaxPool) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("GlobalMaxPool", x, p.T*p.C)
	out := tensor.New(x.R, p.C)
	if train {
		p.lastArg = make([][]int, x.R)
	}
	for i := 0; i < x.R; i++ {
		seq := tensor.FromSlice(p.T, p.C, x.Row(i))
		res, arg := tensor.GlobalMaxPool(seq)
		copy(out.Row(i), res.D)
		if train {
			p.lastArg[i] = arg
		}
	}
	return out
}

func (p *GlobalMaxPool) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, p.T*p.C)
	for i := 0; i < grad.R; i++ {
		orow := out.Row(i)
		for c := 0; c < p.C; c++ {
			src := p.lastArg[i][c]
			orow[src*p.C+c] += grad.At(i, c)
		}
	}
	return out
}

// AvgPool1d applies per-channel average pooling over per-row T×C
// sequences (Table 4's Pool operator, Multi-Input Operation).
type AvgPool1d struct {
	T, C, W, S int
}

// NewAvgPool1d constructs the layer for T×c sequences.
func NewAvgPool1d(t, c, w, s int) *AvgPool1d {
	if (t-w)/s+1 <= 0 {
		panic(fmt.Sprintf("nn: AvgPool1d T=%d W=%d S=%d yields empty output", t, w, s))
	}
	return &AvgPool1d{T: t, C: c, W: w, S: s}
}

// Tout returns the pooled sequence length.
func (p *AvgPool1d) Tout() int { return (p.T-p.W)/p.S + 1 }

func (p *AvgPool1d) Name() string      { return fmt.Sprintf("AvgPool1d(w=%d,s=%d)", p.W, p.S) }
func (p *AvgPool1d) OutDim(in int) int { return p.Tout() * p.C }
func (p *AvgPool1d) Params() []*Param  { return nil }

func (p *AvgPool1d) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("AvgPool1d", x, p.T*p.C)
	out := tensor.New(x.R, p.Tout()*p.C)
	for i := 0; i < x.R; i++ {
		seq := tensor.FromSlice(p.T, p.C, x.Row(i))
		res := tensor.AvgPool1D(seq, p.W, p.S)
		copy(out.Row(i), res.D)
	}
	return out
}

func (p *AvgPool1d) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, p.T*p.C)
	inv := 1 / float64(p.W)
	for i := 0; i < grad.R; i++ {
		g := tensor.FromSlice(p.Tout(), p.C, grad.Row(i))
		orow := out.Row(i)
		for t := 0; t < g.R; t++ {
			start := t * p.S
			for dt := 0; dt < p.W; dt++ {
				for c := 0; c < p.C; c++ {
					orow[(start+dt)*p.C+c] += g.At(t, c) * inv
				}
			}
		}
	}
	return out
}
