package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Linear is a fully connected layer: out = x·Wᵀ + b. Weight rows are
// output neurons so each row is directly a dot-product template — the
// layout the Pegasus compiler partitions across mapping tables.
type Linear struct {
	In, Out int
	Weight  *Param // Out×In
	Bias    *Param // 1×Out
	lastX   *tensor.Mat
}

// NewLinear constructs a Linear layer with He-initialised weights.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out,
		Weight: newParam(fmt.Sprintf("linear%dx%d.w", out, in), out, in),
		Bias:   newParam(fmt.Sprintf("linear%dx%d.b", out, in), 1, out),
	}
	l.Weight.W.Randn(rng, math.Sqrt(2/float64(in)))
	return l
}

func (l *Linear) Name() string      { return fmt.Sprintf("Linear(%d→%d)", l.In, l.Out) }
func (l *Linear) OutDim(in int) int { return l.Out }
func (l *Linear) Params() []*Param  { return []*Param{l.Weight, l.Bias} }

func (l *Linear) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("Linear", x, l.In)
	if train {
		l.lastX = x
	}
	out := tensor.MatMulT(nil, x, l.Weight.W)
	out.AddRowVec(l.Bias.W)
	return out
}

func (l *Linear) Backward(grad *tensor.Mat) *tensor.Mat {
	// dW = gradᵀ·x ; db = column sums; dx = grad·W
	l.Weight.G.Add(tensor.TMatMul(nil, grad, l.lastX))
	l.Bias.G.Add(grad.ColSums())
	return tensor.MatMul(nil, grad, l.Weight.W)
}

// BatchNorm normalises each feature column, the paper's Norm layer. At
// inference its affine transform (γ·(x−μ)/σ + β) is an element-wise
// linear Map, which Basic Primitive Fusion folds into neighbours.
type BatchNorm struct {
	Dim      int
	Gamma    *Param
	Beta     *Param
	Momentum float64
	Eps      float64
	// Running statistics used at inference.
	RunMean *tensor.Mat
	RunVar  *tensor.Mat

	lastXhat *tensor.Mat
	lastStd  *tensor.Mat
}

// NewBatchNorm constructs a BatchNorm over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim: dim, Momentum: 0.9, Eps: 1e-5,
		Gamma:   newParam(fmt.Sprintf("bn%d.gamma", dim), 1, dim),
		Beta:    newParam(fmt.Sprintf("bn%d.beta", dim), 1, dim),
		RunMean: tensor.New(1, dim),
		RunVar:  tensor.New(1, dim),
	}
	bn.Gamma.W.Fill(1)
	bn.RunVar.Fill(1)
	return bn
}

func (b *BatchNorm) Name() string      { return fmt.Sprintf("BatchNorm(%d)", b.Dim) }
func (b *BatchNorm) OutDim(in int) int { return b.Dim }
func (b *BatchNorm) Params() []*Param  { return []*Param{b.Gamma, b.Beta} }

func (b *BatchNorm) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("BatchNorm", x, b.Dim)
	var mean, variance *tensor.Mat
	if train && x.R > 1 {
		mean = x.ColMeans()
		variance = x.ColVars(mean)
		b.RunMean.Scale(b.Momentum).AddScaled(mean, 1-b.Momentum)
		b.RunVar.Scale(b.Momentum).AddScaled(variance, 1-b.Momentum)
	} else {
		mean, variance = b.RunMean, b.RunVar
	}
	std := variance.Clone().Apply(func(v float64) float64 { return math.Sqrt(v + b.Eps) })
	out := tensor.New(x.R, x.C)
	xhat := tensor.New(x.R, x.C)
	for i := 0; i < x.R; i++ {
		xr, or, hr := x.Row(i), out.Row(i), xhat.Row(i)
		for j := range xr {
			h := (xr[j] - mean.D[j]) / std.D[j]
			hr[j] = h
			or[j] = b.Gamma.W.D[j]*h + b.Beta.W.D[j]
		}
	}
	if train {
		b.lastXhat, b.lastStd = xhat, std
	}
	return out
}

func (b *BatchNorm) Backward(grad *tensor.Mat) *tensor.Mat {
	n := float64(grad.R)
	xhat, std := b.lastXhat, b.lastStd
	// Parameter grads.
	for i := 0; i < grad.R; i++ {
		gr, hr := grad.Row(i), xhat.Row(i)
		for j := range gr {
			b.Gamma.G.D[j] += gr[j] * hr[j]
			b.Beta.G.D[j] += gr[j]
		}
	}
	// Input grad (standard batchnorm backward).
	sumG := grad.ColSums()
	sumGH := tensor.New(1, grad.C)
	for i := 0; i < grad.R; i++ {
		gr, hr := grad.Row(i), xhat.Row(i)
		for j := range gr {
			sumGH.D[j] += gr[j] * hr[j]
		}
	}
	out := tensor.New(grad.R, grad.C)
	for i := 0; i < grad.R; i++ {
		gr, hr, or := grad.Row(i), xhat.Row(i), out.Row(i)
		for j := range gr {
			or[j] = b.Gamma.W.D[j] / std.D[j] * (gr[j] - sumG.D[j]/n - hr[j]*sumGH.D[j]/n)
		}
	}
	return out
}

// InferenceAffine returns the per-feature scale and shift equivalent to
// this BatchNorm at inference time: out = scale·x + shift. The Pegasus
// compiler consumes this to treat BN as a linear element-wise Map.
func (b *BatchNorm) InferenceAffine() (scale, shift []float64) {
	scale = make([]float64, b.Dim)
	shift = make([]float64, b.Dim)
	for j := 0; j < b.Dim; j++ {
		s := b.Gamma.W.D[j] / math.Sqrt(b.RunVar.D[j]+b.Eps)
		scale[j] = s
		shift[j] = b.Beta.W.D[j] - s*b.RunMean.D[j]
	}
	return scale, shift
}

// Activation is an element-wise nonlinearity (ReLU, Tanh, Sigmoid),
// the paper's Act layers. Each is a non-linear element-wise Map.
type Activation struct {
	Kind  ActKind
	lastX *tensor.Mat
}

// ActKind enumerates supported activations.
type ActKind int

// Supported activation kinds.
const (
	ReLU ActKind = iota
	Tanh
	Sigmoid
)

func (k ActKind) String() string {
	switch k {
	case ReLU:
		return "ReLU"
	case Tanh:
		return "Tanh"
	case Sigmoid:
		return "Sigmoid"
	}
	return fmt.Sprintf("ActKind(%d)", int(k))
}

// Eval applies the activation to a scalar.
func (k ActKind) Eval(x float64) float64 {
	switch k {
	case ReLU:
		return math.Max(0, x)
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	}
	panic("nn: unknown activation")
}

// Deriv returns dAct/dx given x and the already-computed activation y.
func (k ActKind) Deriv(x, y float64) float64 {
	switch k {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	}
	panic("nn: unknown activation")
}

// NewActivation constructs an activation layer.
func NewActivation(kind ActKind) *Activation { return &Activation{Kind: kind} }

func (a *Activation) Name() string      { return a.Kind.String() }
func (a *Activation) OutDim(in int) int { return in }
func (a *Activation) Params() []*Param  { return nil }

func (a *Activation) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := x.Clone().Apply(a.Kind.Eval)
	if train {
		a.lastX = x
	}
	return out
}

func (a *Activation) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, grad.C)
	for i := range grad.D {
		x := a.lastX.D[i]
		y := a.Kind.Eval(x)
		out.D[i] = grad.D[i] * a.Kind.Deriv(x, y)
	}
	return out
}

// Softmax normalises each row into a probability distribution. It is a
// Multi-Input Operation in Table 4: exponentiate (Map), sum (SumReduce),
// normalise (Map). Backward assumes it is the last layer fed into a
// cross-entropy loss only through SoftmaxCrossEntropy, which bypasses it;
// standalone Backward implements the full Jacobian for completeness.
type Softmax struct {
	lastY *tensor.Mat
}

// NewSoftmax constructs a softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

func (s *Softmax) Name() string      { return "Softmax" }
func (s *Softmax) OutDim(in int) int { return in }
func (s *Softmax) Params() []*Param  { return nil }

func (s *Softmax) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := tensor.New(x.R, x.C)
	for i := 0; i < x.R; i++ {
		SoftmaxRow(x.Row(i), out.Row(i))
	}
	if train {
		s.lastY = out
	}
	return out
}

func (s *Softmax) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, grad.C)
	for i := 0; i < grad.R; i++ {
		y, g, o := s.lastY.Row(i), grad.Row(i), out.Row(i)
		dot := 0.0
		for j := range y {
			dot += y[j] * g[j]
		}
		for j := range y {
			o[j] = y[j] * (g[j] - dot)
		}
	}
	return out
}

// SoftmaxRow computes a numerically stable softmax of src into dst.
func SoftmaxRow(src, dst []float64) {
	maxV := math.Inf(-1)
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for j, v := range src {
		e := math.Exp(v - maxV)
		dst[j] = e
		sum += e
	}
	for j := range dst {
		dst[j] /= sum
	}
}
