package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64
	vel      map[*Param][]float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, decay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, vel: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.vel[p]
		if !ok {
			v = make([]float64, len(p.W.D))
			s.vel[p] = v
		}
		for i := range p.W.D {
			g := p.G.D[i] + s.Decay*p.W.D[i]
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W.D[i] += v[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with the usual defaults for the
// moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.D))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.D))
		}
		v := a.v[p]
		for i := range p.W.D {
			g := p.G.D[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.D[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
		p.ZeroGrad()
	}
}
