package nn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// RNN is a windowed Elman recurrent layer following the BoS design the
// paper's RNN-B builds on: the switch processes a fixed window of time
// steps per inference, so there is no hidden-state write-back across
// windows. Each batch row is a flattened T×Cin sequence; the layer
// unrolls h_t = tanh(Wx·x_t + Wh·h_{t-1} + b) for t = 1..T with h_0 = 0
// and outputs the final hidden state h_T (1×Hidden per row).
type RNN struct {
	T, Cin, Hidden int
	Wx             *Param // Hidden×Cin
	Wh             *Param // Hidden×Hidden
	Bias           *Param // 1×Hidden

	lastX *tensor.Mat
	lastH []*tensor.Mat // per time step (including h_0), batch×Hidden
}

// NewRNN constructs a windowed RNN over T×cin sequences.
func NewRNN(t, cin, hidden int, rng *rand.Rand) *RNN {
	r := &RNN{T: t, Cin: cin, Hidden: hidden,
		Wx:   newParam("rnn.wx", hidden, cin),
		Wh:   newParam("rnn.wh", hidden, hidden),
		Bias: newParam("rnn.b", 1, hidden),
	}
	r.Wx.W.Randn(rng, math.Sqrt(1/float64(cin)))
	r.Wh.W.Randn(rng, math.Sqrt(1/float64(hidden)))
	return r
}

func (r *RNN) Name() string      { return fmt.Sprintf("RNN(T=%d,%d→%d)", r.T, r.Cin, r.Hidden) }
func (r *RNN) OutDim(in int) int { return r.Hidden }
func (r *RNN) Params() []*Param  { return []*Param{r.Wx, r.Wh, r.Bias} }

func (r *RNN) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("RNN", x, r.T*r.Cin)
	n := x.R
	h := tensor.New(n, r.Hidden) // h_0 = 0
	hs := []*tensor.Mat{h}
	for t := 0; t < r.T; t++ {
		xt := tensor.New(n, r.Cin)
		for i := 0; i < n; i++ {
			copy(xt.Row(i), x.Row(i)[t*r.Cin:(t+1)*r.Cin])
		}
		pre := tensor.MatMulT(nil, xt, r.Wx.W)
		pre.Add(tensor.MatMulT(nil, h, r.Wh.W))
		pre.AddRowVec(r.Bias.W)
		h = pre.Apply(math.Tanh)
		hs = append(hs, h)
	}
	if train {
		r.lastX = x
		r.lastH = hs
	}
	return h.Clone()
}

func (r *RNN) Backward(grad *tensor.Mat) *tensor.Mat {
	n := grad.R
	dx := tensor.New(n, r.T*r.Cin)
	dh := grad.Clone()
	for t := r.T - 1; t >= 0; t-- {
		ht := r.lastH[t+1]
		// dPre = dh ⊙ (1 - h²)
		dpre := tensor.New(n, r.Hidden)
		for i := range dpre.D {
			dpre.D[i] = dh.D[i] * (1 - ht.D[i]*ht.D[i])
		}
		// Rebuild x_t view.
		xt := tensor.New(n, r.Cin)
		for i := 0; i < n; i++ {
			copy(xt.Row(i), r.lastX.Row(i)[t*r.Cin:(t+1)*r.Cin])
		}
		r.Wx.G.Add(tensor.TMatMul(nil, dpre, xt))
		r.Wh.G.Add(tensor.TMatMul(nil, dpre, r.lastH[t]))
		r.Bias.G.Add(dpre.ColSums())
		// dx_t = dpre · Wx
		dxt := tensor.MatMul(nil, dpre, r.Wx.W)
		for i := 0; i < n; i++ {
			copy(dx.Row(i)[t*r.Cin:(t+1)*r.Cin], dxt.Row(i))
		}
		// dh_{t-1} = dpre · Wh
		dh = tensor.MatMul(nil, dpre, r.Wh.W)
	}
	return dx
}
