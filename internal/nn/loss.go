package nn

import (
	"math"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// Loss computes a scalar objective and the gradient of that objective
// with respect to the network output.
type Loss interface {
	// Eval returns (loss value, dL/dout) for predictions out and targets.
	Eval(out *tensor.Mat, targets *tensor.Mat) (float64, *tensor.Mat)
}

// SoftmaxCrossEntropy fuses softmax with categorical cross-entropy for a
// numerically stable gradient (probs − one-hot). Targets are class
// indices stored in a R×1 matrix.
type SoftmaxCrossEntropy struct{}

// Eval implements Loss. targets must be R×1 class indices.
func (SoftmaxCrossEntropy) Eval(out, targets *tensor.Mat) (float64, *tensor.Mat) {
	if targets.R != out.R || targets.C != 1 {
		panic("nn: SoftmaxCrossEntropy targets must be R×1 class indices")
	}
	grad := tensor.New(out.R, out.C)
	loss := 0.0
	probs := make([]float64, out.C)
	inv := 1 / float64(out.R)
	for i := 0; i < out.R; i++ {
		SoftmaxRow(out.Row(i), probs)
		cls := int(targets.At(i, 0))
		loss += -math.Log(math.Max(probs[cls], 1e-12))
		grow := grad.Row(i)
		for j, p := range probs {
			grow[j] = p * inv
		}
		grow[cls] -= inv
	}
	return loss * inv, grad
}

// MSE is mean squared error over all elements, used to train the
// AutoEncoder reconstruction.
type MSE struct{}

// Eval implements Loss.
func (MSE) Eval(out, targets *tensor.Mat) (float64, *tensor.Mat) {
	if out.R != targets.R || out.C != targets.C {
		panic("nn: MSE shape mismatch")
	}
	grad := tensor.New(out.R, out.C)
	loss := 0.0
	n := float64(len(out.D))
	for i := range out.D {
		d := out.D[i] - targets.D[i]
		loss += d * d
		grad.D[i] = 2 * d / n
	}
	return loss / n, grad
}

// MAE is mean absolute error; the paper uses MAE reconstruction error to
// score anomalies on the dataplane (§6.3, §7.4).
type MAE struct{}

// Eval implements Loss.
func (MAE) Eval(out, targets *tensor.Mat) (float64, *tensor.Mat) {
	if out.R != targets.R || out.C != targets.C {
		panic("nn: MAE shape mismatch")
	}
	grad := tensor.New(out.R, out.C)
	loss := 0.0
	n := float64(len(out.D))
	for i := range out.D {
		d := out.D[i] - targets.D[i]
		loss += math.Abs(d)
		switch {
		case d > 0:
			grad.D[i] = 1 / n
		case d < 0:
			grad.D[i] = -1 / n
		}
	}
	return loss / n, grad
}

// MAEScore returns the per-row mean absolute reconstruction error — the
// anomaly score computed on the switch.
func MAEScore(out, targets *tensor.Mat) []float64 {
	if out.R != targets.R || out.C != targets.C {
		panic("nn: MAEScore shape mismatch")
	}
	scores := make([]float64, out.R)
	for i := 0; i < out.R; i++ {
		o, tg := out.Row(i), targets.Row(i)
		s := 0.0
		for j := range o {
			s += math.Abs(o[j] - tg[j])
		}
		scores[i] = s / float64(out.C)
	}
	return scores
}
