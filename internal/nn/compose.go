package nn

import (
	"fmt"

	"github.com/pegasus-idp/pegasus/internal/tensor"
)

// SegmentsAsBatch applies a shared sub-network independently to NSeg
// equal-width chunks of each input row, concatenating the per-chunk
// outputs. It is the training-time counterpart of the paper's Advanced
// Primitive Fusion ❸ (Neural Additive Model structure): each Partition
// segment owns an independent sub-model that the compiler later folds
// into a single mapping table.
//
// Implementation: the R×(NSeg·SegDim) batch is reshaped to
// (R·NSeg)×SegDim, pushed through Inner once (so layer caches remain
// valid for backprop), and reshaped back.
type SegmentsAsBatch struct {
	NSeg, SegDim int
	Inner        *Sequential
	outDim       int
}

// NewSegmentsAsBatch wraps inner to run per segment.
func NewSegmentsAsBatch(nseg, segDim int, inner *Sequential) *SegmentsAsBatch {
	return &SegmentsAsBatch{NSeg: nseg, SegDim: segDim, Inner: inner, outDim: inner.OutDim(segDim)}
}

func (s *SegmentsAsBatch) Name() string {
	return fmt.Sprintf("Segments(%d×%d→%d,%s)", s.NSeg, s.SegDim, s.outDim, s.Inner)
}
func (s *SegmentsAsBatch) OutDim(in int) int { return s.NSeg * s.outDim }
func (s *SegmentsAsBatch) Params() []*Param  { return s.Inner.Params() }

func (s *SegmentsAsBatch) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("SegmentsAsBatch", x, s.NSeg*s.SegDim)
	big := tensor.New(x.R*s.NSeg, s.SegDim)
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		for g := 0; g < s.NSeg; g++ {
			copy(big.Row(i*s.NSeg+g), row[g*s.SegDim:(g+1)*s.SegDim])
		}
	}
	out := s.Inner.Forward(big, train)
	res := tensor.New(x.R, s.NSeg*s.outDim)
	for i := 0; i < x.R; i++ {
		row := res.Row(i)
		for g := 0; g < s.NSeg; g++ {
			copy(row[g*s.outDim:(g+1)*s.outDim], out.Row(i*s.NSeg+g))
		}
	}
	return res
}

func (s *SegmentsAsBatch) Backward(grad *tensor.Mat) *tensor.Mat {
	big := tensor.New(grad.R*s.NSeg, s.outDim)
	for i := 0; i < grad.R; i++ {
		row := grad.Row(i)
		for g := 0; g < s.NSeg; g++ {
			copy(big.Row(i*s.NSeg+g), row[g*s.outDim:(g+1)*s.outDim])
		}
	}
	gin := s.Inner.Backward(big)
	res := tensor.New(grad.R, s.NSeg*s.SegDim)
	for i := 0; i < grad.R; i++ {
		row := res.Row(i)
		for g := 0; g < s.NSeg; g++ {
			copy(row[g*s.SegDim:(g+1)*s.SegDim], gin.Row(i*s.NSeg+g))
		}
	}
	return res
}

// SumSegments sums NSeg equal-width chunks of each row element-wise —
// the training-time SumReduce. Combined with SegmentsAsBatch it builds
// the "sum of per-segment sub-models" architecture of Advanced Fusion ❸.
type SumSegments struct {
	NSeg, Dim int
}

// NewSumSegments sums nseg chunks of width dim.
func NewSumSegments(nseg, dim int) *SumSegments { return &SumSegments{NSeg: nseg, Dim: dim} }

func (s *SumSegments) Name() string      { return fmt.Sprintf("SumSegments(%d×%d)", s.NSeg, s.Dim) }
func (s *SumSegments) OutDim(in int) int { return s.Dim }
func (s *SumSegments) Params() []*Param  { return nil }

func (s *SumSegments) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	shapeCheck("SumSegments", x, s.NSeg*s.Dim)
	out := tensor.New(x.R, s.Dim)
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		orow := out.Row(i)
		for g := 0; g < s.NSeg; g++ {
			for j := 0; j < s.Dim; j++ {
				orow[j] += row[g*s.Dim+j]
			}
		}
	}
	return out
}

func (s *SumSegments) Backward(grad *tensor.Mat) *tensor.Mat {
	out := tensor.New(grad.R, s.NSeg*s.Dim)
	for i := 0; i < grad.R; i++ {
		grow := grad.Row(i)
		orow := out.Row(i)
		for g := 0; g < s.NSeg; g++ {
			copy(orow[g*s.Dim:(g+1)*s.Dim], grow)
		}
	}
	return out
}
