package datasets

import (
	"math"
	"testing"

	"github.com/pegasus-idp/pegasus/internal/netsim"
)

func TestGeneratorsProduceLabelledFlows(t *testing.T) {
	cfg := Config{FlowsPerClass: 10, PacketsPerFlow: 16, Seed: 1}
	for _, name := range Names {
		d, ok := ByName(name, cfg)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		if d.Name != name {
			t.Fatalf("name = %q", d.Name)
		}
		if len(d.Flows) != d.NumClasses()*10 {
			t.Fatalf("%s: flows = %d, want %d", name, len(d.Flows), d.NumClasses()*10)
		}
		counts := make([]int, d.NumClasses())
		for _, f := range d.Flows {
			if f.Class < 0 || f.Class >= d.NumClasses() {
				t.Fatalf("%s: class %d out of range", name, f.Class)
			}
			counts[f.Class]++
			if len(f.Packets) < 8 {
				t.Fatalf("%s: flow with %d packets", name, len(f.Packets))
			}
			for i, p := range f.Packets {
				if p.Len < 40 || p.Len > 1500 {
					t.Fatalf("%s: packet len %d out of range", name, p.Len)
				}
				if i > 0 && p.Time < f.Packets[i-1].Time {
					t.Fatalf("%s: timestamps not monotone", name)
				}
			}
		}
		for c, n := range counts {
			if n != 10 {
				t.Fatalf("%s: class %d has %d flows", name, c, n)
			}
		}
	}
	if _, ok := ByName("nope", cfg); ok {
		t.Fatal("unknown dataset accepted")
	}
}

func TestClassCounts(t *testing.T) {
	cfg := Config{FlowsPerClass: 3, Seed: 2}
	if n := PeerRush(cfg).NumClasses(); n != 3 {
		t.Fatalf("PeerRush classes = %d", n)
	}
	if n := CICIOT(cfg).NumClasses(); n != 3 {
		t.Fatalf("CICIOT classes = %d", n)
	}
	if n := ISCXVPN(cfg).NumClasses(); n != 7 {
		t.Fatalf("ISCXVPN classes = %d", n)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := Config{FlowsPerClass: 5, Seed: 42}
	a := PeerRush(cfg)
	b := PeerRush(cfg)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("flow counts differ")
	}
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		if fa.Tuple != fb.Tuple || len(fa.Packets) != len(fb.Packets) {
			t.Fatalf("flow %d differs", i)
		}
		for j := range fa.Packets {
			if fa.Packets[j] != fb.Packets[j] {
				t.Fatalf("packet %d/%d differs", i, j)
			}
		}
	}
	c := PeerRush(Config{FlowsPerClass: 5, Seed: 43})
	if a.Flows[0].Packets[0] == c.Flows[0].Packets[0] {
		t.Fatal("different seeds produced identical first packet (suspicious)")
	}
}

func TestSplitProportionsAndDisjoint(t *testing.T) {
	d := PeerRush(Config{FlowsPerClass: 40, Seed: 3})
	train, val, test := d.Split(7)
	total := len(train) + len(val) + len(test)
	if total != len(d.Flows) {
		t.Fatalf("split loses flows: %d vs %d", total, len(d.Flows))
	}
	if math.Abs(float64(len(train))/float64(total)-0.75) > 0.02 {
		t.Fatalf("train fraction = %g", float64(len(train))/float64(total))
	}
	seen := map[netsim.FiveTuple]bool{}
	for _, f := range train {
		seen[f.Tuple] = true
	}
	for _, f := range append(val, test...) {
		if seen[f.Tuple] {
			t.Fatal("flow appears in multiple splits")
		}
	}
}

func TestClassesAreStatisticallySeparable(t *testing.T) {
	// Mean packet length must differ measurably between at least one
	// pair of classes — otherwise no model can learn anything.
	d := PeerRush(Config{FlowsPerClass: 30, Seed: 4})
	mean := make([]float64, d.NumClasses())
	count := make([]float64, d.NumClasses())
	for _, f := range d.Flows {
		for _, p := range f.Packets {
			mean[f.Class] += float64(p.Len)
			count[f.Class]++
		}
	}
	for c := range mean {
		mean[c] /= count[c]
	}
	spread := 0.0
	for c := 1; c < len(mean); c++ {
		spread = math.Max(spread, math.Abs(mean[c]-mean[0]))
	}
	if spread < 50 {
		t.Fatalf("class mean lengths too close: %v", mean)
	}
}

func TestPayloadCarriesClassSignal(t *testing.T) {
	// Per-class payload byte means must separate — this is the CNN-L
	// signal layer.
	d := ISCXVPN(Config{FlowsPerClass: 10, Seed: 5})
	mean := make([]float64, d.NumClasses())
	count := make([]float64, d.NumClasses())
	for _, f := range d.Flows {
		for _, p := range f.Packets {
			for _, b := range p.Payload[4:] { // skip magic
				mean[f.Class] += float64(b)
				count[f.Class]++
			}
		}
	}
	distinct := map[int]bool{}
	for c := range mean {
		mean[c] /= count[c]
		distinct[int(mean[c]/20)] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("payload means not separable: %v", mean)
	}
}

func TestAttackFlowsDistinctFromBenign(t *testing.T) {
	benign := PeerRush(Config{FlowsPerClass: 10, Seed: 6})
	for _, k := range AllAttacks {
		flows := AttackFlows(k, 5, 32, 6)
		if len(flows) != 5 {
			t.Fatalf("%v: %d flows", k, len(flows))
		}
		for _, f := range flows {
			if f.Class != 1 {
				t.Fatalf("%v: class = %d, want 1", k, f.Class)
			}
			if len(f.Packets) < 8 {
				t.Fatalf("%v: too few packets", k)
			}
		}
	}
	_ = benign
	if AttackNames[Flood] != "Flood" || Flood.String() != "Flood" {
		t.Fatal("attack naming")
	}
}

func TestFloodSignature(t *testing.T) {
	flows := AttackFlows(Flood, 8, 40, 9)
	var lens []float64
	var ipds []float64
	for _, f := range flows {
		for i, p := range f.Packets {
			lens = append(lens, float64(p.Len))
			if i > 0 {
				ipds = append(ipds, float64(f.IPD(i)))
			}
		}
	}
	meanLen, varLen := meanVar(lens)
	meanIPD, _ := meanVar(ipds)
	if math.Abs(meanLen-310) > 20 {
		t.Fatalf("flood mean len = %g, want ≈310", meanLen)
	}
	if varLen > 900 {
		t.Fatalf("flood len variance = %g, want tiny", varLen)
	}
	if meanIPD > 50 {
		t.Fatalf("flood mean IPD = %g µs, want tiny", meanIPD)
	}
}

func TestMixAttackRatio(t *testing.T) {
	benign := PeerRush(Config{FlowsPerClass: 20, Seed: 10}).Flows
	mixed := MixAttack(benign, Cridex, 11)
	nAtk := 0
	for _, f := range mixed {
		if f.Class == 1 {
			nAtk++
		}
	}
	if nAtk != (len(benign)+3)/4 {
		t.Fatalf("attack count = %d for %d benign", nAtk, len(benign))
	}
	// Benign labels must be rewritten to 0.
	for _, f := range mixed[:len(benign)] {
		if f.Class != 0 {
			t.Fatal("benign flow not relabelled to 0")
		}
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}
