package datasets

import (
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/netsim"
)

// AttackKind identifies one malicious-traffic family of §7.4: five
// malware families (stand-ins for USTC-TFC2016 captures) and the SSDP
// reflection flood (stand-in for the Kitsune capture).
type AttackKind int

// Attack families, in the order of Figure 8's legend.
const (
	Htbot AttackKind = iota
	Flood
	Cridex
	Virut
	Neris
	Geodo
)

// AttackNames maps AttackKind to its display name.
var AttackNames = []string{"Htbot", "Flood", "Cridex", "Virut", "Neris", "Geodo"}

func (k AttackKind) String() string { return AttackNames[k] }

// AllAttacks lists every family.
var AllAttacks = []AttackKind{Htbot, Flood, Cridex, Virut, Neris, Geodo}

// attackProfile reuses the benign generator machinery with profiles
// whose length/IPD rhythms are unlike any benign class. Families differ
// in how benign-like they are: Htbot proxies ordinary HTTP traffic, so
// its AUC is the lowest in the paper (0.856–0.993 across datasets),
// while Flood and Cridex beacons are near-perfectly detectable.
func attackProfile(k AttackKind) classProfile {
	switch k {
	case Htbot:
		// HTTP-proxy botnet: browsing-like mixture, mildly periodic.
		return classProfile{
			name:  "Htbot",
			lenMu: [2]float64{560, 480}, lenSigma: [2]float64{150, 140},
			lenMu2: [2]float64{1250, 1050}, mode2P: 0.18,
			ipdLogMu: 9.2, ipdLogSigma: 1.2,
			motif: []float64{1, 1.4, 1.1, 0.9},
			flipP: 0.40, magic: []byte{0x48, 0x54, 0x54, 0x50},
			payloadCenter: 55, payloadSpread: 30, bgP: 0.30,
		}
	case Flood:
		// SSDP reflection flood: constant-size packets at µs spacing.
		return classProfile{
			name:  "Flood",
			lenMu: [2]float64{310, 310}, lenSigma: [2]float64{4, 4},
			lenMu2: [2]float64{310, 310}, mode2P: 0,
			ipdLogMu: 1.6, ipdLogSigma: 0.3,
			motif: nil, flipP: 0.02,
			magic:         []byte{0x4D, 0x2D, 0x53},
			payloadCenter: 77, payloadSpread: 8, bgP: 0,
		}
	case Cridex:
		// Banking trojan beacon: tiny fixed-size check-ins, metronomic.
		return classProfile{
			name:  "Cridex",
			lenMu: [2]float64{122, 96}, lenSigma: [2]float64{6, 5},
			lenMu2: [2]float64{122, 96}, mode2P: 0,
			ipdLogMu: 12.4, ipdLogSigma: 0.15,
			motif: nil, flipP: 0.50,
			magic:         []byte{0xDE, 0xAD},
			payloadCenter: 10, payloadSpread: 6, bgP: 0.02,
		}
	case Virut:
		// IRC bot with spam bursts: bimodal small/huge lengths.
		return classProfile{
			name:  "Virut",
			lenMu: [2]float64{90, 80}, lenSigma: [2]float64{14, 12},
			lenMu2: [2]float64{1420, 1380}, mode2P: 0.35,
			ipdLogMu: 6.0, ipdLogSigma: 1.8,
			motif: []float64{1, 1, 1, 8, 8, 1},
			flipP: 0.25, magic: []byte{0x49, 0x52, 0x43},
			payloadCenter: 240, payloadSpread: 12, bgP: 0.12,
		}
	case Neris:
		// Click-fraud botnet: rapid small requests, sub-second cadence.
		return classProfile{
			name:  "Neris",
			lenMu: [2]float64{180, 520}, lenSigma: [2]float64{25, 70},
			lenMu2: [2]float64{180, 520}, mode2P: 0,
			ipdLogMu: 5.2, ipdLogSigma: 0.6,
			motif: []float64{1, 1, 1.2, 1},
			flipP: 0.60, magic: []byte{0x47, 0x45, 0x54},
			payloadCenter: 30, payloadSpread: 15, bgP: 0.15,
		}
	case Geodo:
		// Emotet-family spam bot: mid-size TLS records, fixed period.
		return classProfile{
			name:  "Geodo",
			lenMu: [2]float64{283, 283}, lenSigma: [2]float64{10, 10},
			lenMu2: [2]float64{560, 560}, mode2P: 0.10,
			ipdLogMu: 11.0, ipdLogSigma: 0.35,
			motif: []float64{1, 1, 2, 1},
			flipP: 0.45, magic: []byte{0x16, 0x03, 0x03},
			payloadCenter: 160, payloadSpread: 10, bgP: 0.10,
		}
	}
	panic("datasets: unknown attack kind")
}

// AttackFlows synthesises n flows of the given family. Class is always 1
// (anomalous); benign test flows use class 0 in detection experiments.
func AttackFlows(k AttackKind, n int, meanPackets int, seed int64) []netsim.Flow {
	if meanPackets <= 0 {
		meanPackets = 32
	}
	rng := rand.New(rand.NewSource(seed ^ int64(k)<<32))
	p := attackProfile(k)
	flows := make([]netsim.Flow, 0, n)
	for i := 0; i < n; i++ {
		np := meanPackets + rng.Intn(meanPackets/2+1) - meanPackets/4
		if np < 8 {
			np = 8
		}
		f := genFlow(rng, &p, 1, np)
		flows = append(flows, f)
	}
	return flows
}

// MixAttack builds the §7.4 test mixture: benign flows (class 0) plus
// attack flows at a 1:4 attack-to-benign ratio (class 1).
func MixAttack(benign []netsim.Flow, k AttackKind, seed int64) []netsim.Flow {
	nAttack := int(math.Ceil(float64(len(benign)) / 4))
	mixed := make([]netsim.Flow, 0, len(benign)+nAttack)
	for _, f := range benign {
		f.Class = 0
		mixed = append(mixed, f)
	}
	mixed = append(mixed, AttackFlows(k, nAttack, 32, seed)...)
	return mixed
}
