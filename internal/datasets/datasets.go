// Package datasets synthesises labelled traffic standing in for the
// paper's evaluation datasets (PeerRush, CICIOT2022, ISCXVPN2016), which
// are not redistributable. Each generator produces class-conditional
// flows where the classification signal is deliberately layered the way
// real traffic layers it:
//
//   - flow statistics (max/min length, max/min IPD per direction) carry a
//     moderate signal — enough for MLP/tree models but with class overlap;
//   - length/IPD *sequences* carry more signal (per-class temporal
//     motifs), rewarding RNN/CNN models;
//   - raw payload bytes carry the strongest signal (per-class byte
//     distributions and header magics), rewarding only CNN-L, which is
//     the only model large enough to consume them.
//
// This layering is what lets the reproduction recover the paper's
// accuracy ordering (Table 5) without the original pcaps. All generators
// are fully deterministic given their seed.
package datasets

import (
	"math"
	"math/rand"

	"github.com/pegasus-idp/pegasus/internal/netsim"
)

// Dataset is a labelled set of flows.
type Dataset struct {
	Name       string
	ClassNames []string
	Flows      []netsim.Flow
}

// NumClasses returns the number of labels.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// Config controls generated dataset size.
type Config struct {
	// FlowsPerClass is the number of flows generated per class.
	FlowsPerClass int
	// PacketsPerFlow is the mean packets per flow (actual counts vary
	// ±25% per flow).
	PacketsPerFlow int
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) defaults() {
	if c.FlowsPerClass == 0 {
		c.FlowsPerClass = 90
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 32
	}
}

// classProfile is the generative model of one traffic class.
type classProfile struct {
	name string
	// lenMu/lenSigma: primary packet-length mode per direction.
	lenMu, lenSigma [2]float64
	// lenMu2 is a secondary mode taken with mode2P probability.
	lenMu2 [2]float64
	mode2P float64
	// ipdLogMu/ipdLogSigma parameterise a log-normal IPD in µs.
	ipdLogMu, ipdLogSigma float64
	// motif multiplies packet length by position within the flow,
	// creating the temporal pattern sequence models exploit.
	motif []float64
	// flipP is the probability the next packet reverses direction.
	flipP float64
	// magic is written at the start of each payload (protocol header).
	magic []byte
	// payloadCenter/payloadSpread shape the payload byte distribution.
	payloadCenter byte
	payloadSpread float64
	// bgP is the probability a packet's length/IPD is drawn from the
	// class-independent background (signal dilution).
	bgP float64
}

func clampLen(v float64) int {
	if v < 40 {
		return 40
	}
	if v > 1500 {
		return 1500
	}
	return int(v)
}

// genFlow synthesises one flow of the profile.
func genFlow(rng *rand.Rand, p *classProfile, class, npkts int) netsim.Flow {
	f := netsim.Flow{
		Tuple: netsim.FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: uint16(rng.Intn(1024)),
			Proto:   6,
		},
		Class: class,
	}
	now := uint64(rng.Intn(1 << 20))
	dir := 0
	for i := 0; i < npkts; i++ {
		var length int
		var ipd uint64
		if rng.Float64() < p.bgP {
			// Background: shared across classes.
			length = clampLen(600 + rng.NormFloat64()*400)
			ipd = uint64(math.Exp(7 + rng.NormFloat64()*2))
		} else {
			mu := p.lenMu[dir]
			if rng.Float64() < p.mode2P {
				mu = p.lenMu2[dir]
			}
			m := 1.0
			if len(p.motif) > 0 {
				m = p.motif[i%len(p.motif)]
			}
			length = clampLen(mu*m + rng.NormFloat64()*p.lenSigma[dir])
			ipd = uint64(math.Exp(p.ipdLogMu + rng.NormFloat64()*p.ipdLogSigma))
		}
		if i == 0 {
			ipd = 0
		}
		now += ipd
		pkt := netsim.Packet{Time: now, Len: length, Dir: dir}
		fillPayload(rng, p, &pkt)
		f.Packets = append(f.Packets, pkt)
		if rng.Float64() < p.flipP {
			dir = 1 - dir
		}
	}
	return f
}

func fillPayload(rng *rand.Rand, p *classProfile, pkt *netsim.Packet) {
	for i := 0; i < netsim.PayloadBytes; i++ {
		switch {
		case i < len(p.magic) && rng.Float64() < 0.95:
			pkt.Payload[i] = p.magic[i]
		case rng.Float64() < 0.12:
			pkt.Payload[i] = byte(rng.Intn(256)) // noise byte
		default:
			pkt.Payload[i] = byte(int(p.payloadCenter) + int(rng.NormFloat64()*p.payloadSpread))
		}
	}
}

// generate builds a dataset from the profiles.
func generate(name string, profiles []classProfile, cfg Config) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Name: name}
	for _, p := range profiles {
		d.ClassNames = append(d.ClassNames, p.name)
	}
	for ci := range profiles {
		for k := 0; k < cfg.FlowsPerClass; k++ {
			n := cfg.PacketsPerFlow + rng.Intn(cfg.PacketsPerFlow/2+1) - cfg.PacketsPerFlow/4
			if n < 8 {
				n = 8
			}
			d.Flows = append(d.Flows, genFlow(rng, &profiles[ci], ci, n))
		}
	}
	return d
}

// Split partitions flows 75/10/15 (train/val/test) by flow, shuffled
// deterministically — the paper's protocol ("75% of the flows ... 10%
// for validation, and 15% for testing").
func (d *Dataset) Split(seed int64) (train, val, test []netsim.Flow) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(d.Flows))
	nTrain := len(d.Flows) * 75 / 100
	nVal := len(d.Flows) * 10 / 100
	for i, j := range idx {
		switch {
		case i < nTrain:
			train = append(train, d.Flows[j])
		case i < nTrain+nVal:
			val = append(val, d.Flows[j])
		default:
			test = append(test, d.Flows[j])
		}
	}
	return train, val, test
}

// PeerRush synthesises the 3-class P2P dataset (eMule, uTorrent, Vuze).
// P2P clients have strongly distinct chunk sizes and keep-alive timing,
// making this the easiest of the three (paper F1 0.87–0.997).
func PeerRush(cfg Config) *Dataset {
	profiles := []classProfile{
		{
			name:  "eMule",
			lenMu: [2]float64{520, 180}, lenSigma: [2]float64{60, 30},
			lenMu2: [2]float64{1340, 90}, mode2P: 0.30,
			ipdLogMu: 8.1, ipdLogSigma: 0.7,
			motif: []float64{1, 1, 1.5, 1, 0.6, 1, 1.5, 1},
			flipP: 0.35, magic: []byte{0xE3, 0x4D, 0x55},
			payloadCenter: 70, payloadSpread: 25, bgP: 0.10,
		},
		{
			name:  "uTorrent",
			lenMu: [2]float64{980, 320}, lenSigma: [2]float64{80, 40},
			lenMu2: [2]float64{110, 68}, mode2P: 0.22,
			ipdLogMu: 6.4, ipdLogSigma: 0.8,
			motif: []float64{1, 1.3, 1, 1.3, 1, 1.3, 1, 1.3},
			flipP: 0.20, magic: []byte{0x13, 0x42, 0x54},
			payloadCenter: 140, payloadSpread: 30, bgP: 0.10,
		},
		{
			name:  "Vuze",
			lenMu: [2]float64{300, 620}, lenSigma: [2]float64{50, 70},
			lenMu2: [2]float64{760, 1180}, mode2P: 0.18,
			ipdLogMu: 9.3, ipdLogSigma: 0.6,
			motif: []float64{0.8, 1, 1.2, 1.6, 1.2, 1, 0.8, 1},
			flipP: 0.50, magic: []byte{0x00, 0x56, 0x5A},
			payloadCenter: 200, payloadSpread: 22, bgP: 0.12,
		},
	}
	return generate("PeerRush", profiles, cfg)
}

// CICIOT synthesises the 3-class IoT working-state dataset (Power, Idle,
// Interact). Device states share hardware and protocols, so length/IPD
// overlap is high — the hardest dataset for every model in the paper
// (F1 0.77–0.94).
func CICIOT(cfg Config) *Dataset {
	profiles := []classProfile{
		{
			name:  "Power",
			lenMu: [2]float64{210, 180}, lenSigma: [2]float64{70, 60},
			lenMu2: [2]float64{420, 350}, mode2P: 0.25,
			ipdLogMu: 10.1, ipdLogSigma: 1.0,
			motif: []float64{1, 1.25, 1, 1, 1.25, 1},
			flipP: 0.45, magic: []byte{0x17, 0x03},
			payloadCenter: 95, payloadSpread: 30, bgP: 0.30,
		},
		{
			name:  "Idle",
			lenMu: [2]float64{160, 150}, lenSigma: [2]float64{55, 50},
			lenMu2: [2]float64{320, 300}, mode2P: 0.12,
			ipdLogMu: 11.3, ipdLogSigma: 0.9,
			motif: []float64{1, 1, 1, 1.15, 1, 1},
			flipP: 0.48, magic: []byte{0x16, 0x03},
			payloadCenter: 120, payloadSpread: 30, bgP: 0.32,
		},
		{
			name:  "Interact",
			lenMu: [2]float64{340, 260}, lenSigma: [2]float64{90, 70},
			lenMu2: [2]float64{700, 520}, mode2P: 0.30,
			ipdLogMu: 8.8, ipdLogSigma: 1.1,
			motif: []float64{1, 1.4, 0.8, 1.3, 1, 1.2},
			flipP: 0.40, magic: []byte{0x17, 0x01},
			payloadCenter: 150, payloadSpread: 30, bgP: 0.28,
		},
	}
	return generate("CICIOT", profiles, cfg)
}

// ISCXVPN synthesises the 7-class VPN-encrypted application dataset.
// VPN encapsulation masks statistical differences (flow stats barely
// separate 7 applications), but per-application packet rhythms and
// payload distributions survive — so small models plateau near 0.75 while
// CNN-L reaches ~0.99, matching Table 5's spread.
func ISCXVPN(cfg Config) *Dataset {
	profiles := []classProfile{
		{
			name:  "Email",
			lenMu: [2]float64{420, 380}, lenSigma: [2]float64{110, 100},
			lenMu2: [2]float64{900, 800}, mode2P: 0.12,
			ipdLogMu: 9.6, ipdLogSigma: 1.0,
			motif: []float64{1, 1.2, 1, 0.9},
			flipP: 0.42, magic: []byte{0x45, 0x4D, 0x4C, 0x31},
			payloadCenter: 60, payloadSpread: 18, bgP: 0.40,
		},
		{
			name:  "Chat",
			lenMu: [2]float64{380, 360}, lenSigma: [2]float64{100, 95},
			lenMu2: [2]float64{820, 760}, mode2P: 0.10,
			ipdLogMu: 9.9, ipdLogSigma: 1.1,
			motif: []float64{1, 0.9, 1.1, 1},
			flipP: 0.55, magic: []byte{0x43, 0x48, 0x54, 0x31},
			payloadCenter: 90, payloadSpread: 18, bgP: 0.42,
		},
		{
			name:  "Streaming",
			lenMu: [2]float64{1150, 420}, lenSigma: [2]float64{130, 100},
			lenMu2: [2]float64{1400, 900}, mode2P: 0.25,
			ipdLogMu: 7.2, ipdLogSigma: 0.9,
			motif: []float64{1, 1, 1.1, 1, 1, 1.1},
			flipP: 0.12, magic: []byte{0x53, 0x54, 0x52, 0x4D},
			payloadCenter: 120, payloadSpread: 18, bgP: 0.35,
		},
		{
			name:  "FTP",
			lenMu: [2]float64{1250, 400}, lenSigma: [2]float64{120, 110},
			lenMu2: [2]float64{1450, 820}, mode2P: 0.30,
			ipdLogMu: 6.9, ipdLogSigma: 1.0,
			motif: []float64{1, 1.05, 1, 1.05},
			flipP: 0.10, magic: []byte{0x46, 0x54, 0x50, 0x44},
			payloadCenter: 150, payloadSpread: 18, bgP: 0.38,
		},
		{
			name:  "VoIP",
			lenMu: [2]float64{240, 230}, lenSigma: [2]float64{60, 55},
			lenMu2: [2]float64{480, 460}, mode2P: 0.08,
			ipdLogMu: 7.6, ipdLogSigma: 0.5,
			motif: []float64{1, 1, 1, 1, 1.08, 1},
			flipP: 0.50, magic: []byte{0x56, 0x4F, 0x49, 0x50},
			payloadCenter: 180, payloadSpread: 18, bgP: 0.36,
		},
		{
			name:  "P2P",
			lenMu: [2]float64{1050, 500}, lenSigma: [2]float64{150, 120},
			lenMu2: [2]float64{200, 140}, mode2P: 0.28,
			ipdLogMu: 8.4, ipdLogSigma: 1.2,
			motif: []float64{1, 1.3, 0.8, 1.3, 1, 0.9},
			flipP: 0.30, magic: []byte{0x50, 0x32, 0x50, 0x58},
			payloadCenter: 210, payloadSpread: 18, bgP: 0.40,
		},
		{
			name:  "Browsing",
			lenMu: [2]float64{520, 460}, lenSigma: [2]float64{140, 130},
			lenMu2: [2]float64{1300, 1100}, mode2P: 0.20,
			ipdLogMu: 9.0, ipdLogSigma: 1.3,
			motif: []float64{1, 1.5, 1.2, 0.8},
			flipP: 0.38, magic: []byte{0x48, 0x54, 0x54, 0x50},
			payloadCenter: 40, payloadSpread: 18, bgP: 0.42,
		},
	}
	return generate("ISCXVPN", profiles, cfg)
}

// ByName returns the dataset generator for the given evaluation dataset
// name ("PeerRush", "CICIOT", "ISCXVPN").
func ByName(name string, cfg Config) (*Dataset, bool) {
	switch name {
	case "PeerRush":
		return PeerRush(cfg), true
	case "CICIOT":
		return CICIOT(cfg), true
	case "ISCXVPN":
		return ISCXVPN(cfg), true
	}
	return nil, false
}

// Names lists the three evaluation datasets in paper order.
var Names = []string{"PeerRush", "CICIOT", "ISCXVPN"}
