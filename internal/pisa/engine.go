package pisa

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// ExecMode selects how the engine executes each pipeline program.
type ExecMode int

const (
	// ExecCompiled replays packets over CompiledProgram plans — the
	// default: zero-allocation specialised lookups, bit-identical to
	// the interpreter.
	ExecCompiled ExecMode = iota
	// ExecInterpret replays packets through Program.Process, the
	// reference interpreter. Kept for differential testing and as the
	// baseline the benchmark reports compare against.
	ExecInterpret
)

func (m ExecMode) String() string {
	if m == ExecInterpret {
		return "interpreted"
	}
	return "compiled"
}

// Engine executes a compiled program over batches of packets, sharded
// by flow hash. The real switch processes packets in a hardware
// pipeline; the simulator's single-packet Process loop leaves every
// other core idle, so replaying a trace is CPU-bound on one goroutine.
// The engine restores the missing parallelism without changing
// semantics: packets are partitioned by Job.Hash (the five-tuple hash
// used to index per-flow register arrays), each shard is processed in
// arrival order with a private reusable PHV, and all accesses to one
// flow's state stay on one shard — per-flow read-modify-write ordering
// is exactly the sequential ordering.
//
// An Engine is a session handle over a Scheduler: the scheduler owns
// the worker pool, the engine owns the program chain, the per-shard
// PHVs and the per-worker task mailboxes. NewEngine/NewChainEngineMode
// construct a private solo scheduler whose budget equals the shard
// count — the historical one-engine-one-pool behaviour, bit for bit.
// Registering several engines on one shared Scheduler instead serves
// all of them from a single fixed worker budget with weighted fair
// draining and per-model stats — concurrent multi-model serving. Close
// releases the session (and stops the pool when the engine owns it);
// an engine must not be used after Close.
//
// The result path is built for multi-core batches: each shard task
// writes its classes and output vectors into a private dense region
// (cache-line gaps between regions, so two workers never write the
// same line), and the job-order view is produced by a parallel
// per-shard scatter (RunBatch) or a cursor merge over the dense
// regions (RunStream/RunPackets) — no interleaved cross-core writes on
// the hot loop. Serving stats are likewise striped per worker and only
// folded together when Stats is read.
//
// For the per-flow guarantee to extend to stateful programs, register
// cells touched by different shards must be disjoint. Under the
// dataplane convention that register indices are flow-hash derived
// (cell = Hash % Size), construction enforces it structurally: the
// shard count is reduced until it divides every register array size, so
// cell ≡ Hash (mod shards) and each shard owns the cells congruent to
// its own index. Programs that compute register indices from anything
// other than the sharding hash must run with one shard.
// Multi-pipeline emissions (e.g. the Tofino multi-pipe target) are a
// chain of programs connected by Bridges: the engine processes each
// packet through every program in order, copying the bridged PHV fields
// between consecutive pipes, so batched replay over a split program
// classifies bit-identically to the single-pipe emission.
type Engine struct {
	name    string
	progs   []*Program
	plans   []*CompiledProgram // one per pipe, shared read-only by shards
	bridges []Bridge
	in      []FieldID // input fields, in progs[0]'s layout
	out     []FieldID // output fields, in the final program's layout
	class   FieldID   // class field, in the final program's layout
	shards  int
	mode    ExecMode
	phvs    [][]*PHV // [shard][pipe], reused across batches

	sched    *Scheduler
	ownSched bool         // solo scheduler, closed with the engine
	weight   atomic.Int32 // fair-share weight; retunable live (SetWeight)

	// Scheduler session state. slots[w] is this session's single-task
	// mailbox at worker w (one outstanding batch ⇒ at most one queued
	// task per worker), claimed lock-free by owner and stealers alike;
	// affinity[s] is the stable shard→worker route. See workerSlot.
	slots    []workerSlot
	affinity []int32

	// Batch completion: remaining counts the batch's unfinished shard
	// tasks; the worker that takes it to zero closes *batchDone — ONE
	// submitter wake-up per batch instead of a WaitGroup broadcast per
	// task. batchDone is swung to a fresh channel by every dispatch.
	remaining atomic.Int32
	batchDone atomic.Pointer[chan struct{}]

	seq       []int      // reused sequential index for 1-shard batches
	shardIdx  [][]int    // reused per-shard job index buffers
	shardRes  []shardRes // reused per-shard dense fire staging (packet path)
	regionOff []int      // reused per-shard dense arena offsets (job path)
	mergeCur  []int      // reused per-shard merge cursors
	closeOnce sync.Once

	// Overload protection (see ShedPolicy/SubmitBatchCtx): bounds are
	// stored atomically so the serving layer can retune them live, and
	// poisoned records the first plan panic isolated to this session.
	shedMaxQueue atomic.Int32
	shedMaxWait  atomic.Int64
	stWaitEWMA   atomic.Int64 // recent mean queue wait (exponentially weighted)
	poisoned     atomic.Pointer[poisonInfo]

	// Per-model serving stats, striped per worker: stats[w] is worker
	// w's private shard, stats[budget] the submitter's (inline runs,
	// sheds, fires, depth samples). Folded together by Stats.
	stats []statShard

	// Per-packet replay state (ConfigurePackets).
	meta     *PacketMeta
	skipTail bool // later pipes are stateless: skip them on non-fire packets
}

// shardRes is one shard's dense fire staging for the per-packet path:
// parallel arrays of the packet index, class and output vector of every
// fired window, appended in packet order by the one worker running the
// shard. Each shard appends only to its own arrays (separate heap
// allocations, padded struct), so the hot loop never writes a cache
// line another worker writes. The arrays are reused across batches —
// RunPackets results alias them, exactly the documented
// overwritten-by-the-next-call contract.
type shardRes struct {
	fireIdx   []int32
	fireClass []int32
	fireOuts  []int32 // flat, len(e.out) per fire
	// regRMWs accumulates the register read-modify-writes this shard's
	// tasks have executed (delta-captured around each run by the one
	// worker holding the shard, folded into Stats atomically). Lives here
	// rather than in the worker stat stripes because RMWs are attributed
	// by shard, and a stolen task must still land its count on the
	// session that owns the registers.
	regRMWs atomic.Uint64
	_       [48]byte
}

// densePad is the gap (in int32s) left between two shards' regions of
// a batch's dense arena — one 64-byte cache line, so the writer of one
// region's tail and the writer of the next region's head never share a
// line.
const densePad = 16

// shardTask is one batch's work for one shard: the job (or raw-packet)
// indices the shard owns plus the buffers its results land in. dense is
// the shard's private region of the batch arena (job path; class +
// outs, stride len(e.out)+1 per job); res is the job-order result slice
// a trailing per-shard scatter fills (nil for dense-only stream
// batches). The packet path stages into the engine's shardRes instead.
type shardTask struct {
	shard int
	jobs  []Job
	res   []Result
	dense []int32
	idx   []int
	enq   time.Time // enqueue stamp; the worker derives the queue wait

	// Per-packet replay (RunPackets): pkts is non-nil, fires land in
	// e.shardRes[shard].
	pkts []PacketIn
}

// Bridge carries PHV values between two chained pipeline programs: the
// value of From[i] in the upstream program's PHV is written to To[i] in
// the downstream program's PHV before it processes the packet. On real
// hardware this is bridged metadata travelling with the packet from
// ingress to egress (or over a recirculation/inter-pipe link).
type Bridge struct {
	From []FieldID
	To   []FieldID
}

// Job is one packet of a batch: the input-field values and the flow hash
// that selects its shard. Packets sharing a Hash are processed in batch
// order relative to each other; for stateless programs any key
// assignment works, and spreading keys evenly maximises parallelism.
type Job struct {
	Hash uint32
	In   []int32
}

// PacketMeta names the PHV handles of a program whose inputs are raw
// packets rather than pre-extracted feature windows. All fields live in
// the first (ingress) pipe's layout: the extraction state machines run
// there, banking per-flow state in registers and raising Fire on the
// packet that completes a window.
type PacketMeta struct {
	// Hash receives the packet's flow hash; the program derives the
	// register slot from it (slot = hash & (flows-1)).
	Hash FieldID
	// Fields receive the raw per-packet values, in the order the
	// emission documents (direction/length/timestamp for stat
	// extraction, length/timestamp for sequences, payload bytes for
	// payload models).
	Fields []FieldID
	// Fire is set non-zero by the program when this packet completed a
	// feature window and the inference result is valid.
	Fire FieldID
}

// PacketIn is one raw packet of a trace replay: the flow hash that
// selects its shard and register slot, and the per-packet field values
// in PacketMeta.Fields order.
type PacketIn struct {
	Hash   uint32
	Fields []int32
}

// PacketResult is one fired inference: the index of the packet that
// completed the window, plus the class and output vector the pipeline
// produced for it.
type PacketResult struct {
	Pkt   int
	Class int
	Outs  []int32
}

// Result is one packet's outputs: the class-field value and the
// output-field vector, in the same order as the jobs.
type Result struct {
	Class int
	Outs  []int32
}

// NewEngine builds an engine over a single program with the given I/O
// fields. workers ≤ 0 selects GOMAXPROCS. When prog has stateful
// registers, the shard count is reduced to the largest value dividing
// every register size (see the Engine contract above); register sizes
// are powers of two in practice, so this keeps a power-of-two pool.
func NewEngine(prog *Program, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngine([]*Program{prog}, nil, in, out, class, workers)
}

// NewChainEngine builds a compiled-plan engine over a chain of programs
// connected by bridges (len(bridges) == len(progs)-1). The in fields
// live in the first program's layout; out and class in the last one's.
// Shard-count reduction considers the registers of every program in
// the chain.
func NewChainEngine(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngineMode(progs, bridges, in, out, class, workers, ExecCompiled)
}

// NewChainEngineMode is NewChainEngine with an explicit execution mode.
// The engine owns a private solo scheduler sized to its shard count, so
// behaviour (and results) are identical to the historical per-engine
// worker pool.
func NewChainEngineMode(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int, mode ExecMode) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := reduceShards(workers, progs)
	s := NewScheduler(shards)
	e := s.newSession("", 1, progs, bridges, in, out, class, shards, mode)
	e.ownSched = true
	return e
}

// newSession builds and registers an engine session on the scheduler.
func (s *Scheduler) newSession(name string, weight int, progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, shards int, mode ExecMode) *Engine {
	if len(progs) == 0 {
		panic("pisa: chain engine needs at least one program")
	}
	if len(bridges) != len(progs)-1 {
		panic("pisa: chain engine needs one bridge per consecutive program pair")
	}
	if weight < 1 {
		weight = 1
	}
	e := &Engine{name: name, progs: progs, bridges: bridges, in: in, out: out, class: class,
		shards: shards, mode: mode, sched: s}
	e.weight.Store(int32(weight))
	// One contiguous shard-banked slab per program: each worker's flow
	// state becomes a dense private range instead of strides across
	// per-register allocations.
	for _, p := range progs {
		p.CompactRegisters(shards)
	}
	if mode == ExecCompiled {
		e.plans = make([]*CompiledProgram, len(progs))
		for k, p := range progs {
			e.plans[k] = CompileProgram(p)
		}
	}
	e.phvs = make([][]*PHV, shards)
	e.shardIdx = make([][]int, shards)
	e.shardRes = make([]shardRes, shards)
	e.regionOff = make([]int, shards)
	e.mergeCur = make([]int, shards)
	for sh := range e.phvs {
		e.phvs[sh] = make([]*PHV, len(progs))
		for k, p := range progs {
			e.phvs[sh][k] = p.Layout.NewPHV()
		}
	}
	s.register(e)
	return e
}

// Close releases the engine's scheduler session; when the engine owns a
// solo scheduler the pool is stopped and waited for. The engine must
// not be used after Close. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.sched.unregister(e)
		if e.ownSched {
			e.sched.Close()
		}
	})
}

// Workers returns the shard count (the engine's maximum intra-batch
// parallelism; the serving parallelism is bounded by the scheduler
// budget).
func (e *Engine) Workers() int { return e.shards }

// Name returns the session label given at registration (empty for solo
// engines).
func (e *Engine) Name() string { return e.name }

// Scheduler returns the scheduler serving this engine.
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Stats snapshots the session's cumulative serving counters, folding
// the per-worker stripes together. Counts are read in two passes —
// Tasks/Packets first, histograms second — so a concurrent scrape
// observes ΣWaitHist ≥ Tasks (each task's histogram bucket is bumped
// before its task counter), never the reverse.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Name: e.name, Weight: int(e.weight.Load())}
	for i := range e.stats {
		sh := &e.stats[i]
		st.Tasks += sh.tasks.Load()
		st.Packets += sh.packets.Load()
		st.Fires += sh.fires.Load()
		st.Shed += sh.shed.Load()
		st.ShedBatches += sh.shedBatches.Load()
		st.Busy += time.Duration(sh.busy.Load())
		st.Wait += time.Duration(sh.wait.Load())
	}
	for i := range e.stats {
		sh := &e.stats[i]
		for b := range st.WaitHist {
			st.WaitHist[b] += sh.waitHist[b].Load()
			st.QueueHist[b] += sh.queueHist[b].Load()
		}
	}
	for i := range e.shardRes {
		st.RegRMWs += e.shardRes[i].regRMWs.Load()
	}
	return st
}

// Weight returns the session's current fair-share weight.
func (e *Engine) Weight() int { return int(e.weight.Load()) }

// SetWeight retunes the session's fair-share weight live (< 1 is
// clamped to 1); it takes effect on the next scheduling decision. This
// is the hook an SLO feedback loop drives: raising a lagging model's
// weight shrinks the stride charged per served packet, growing its
// share of the pool.
func (e *Engine) SetWeight(w int) {
	if w < 1 {
		w = 1
	}
	e.weight.Store(int32(w))
}

// selfSlot is the stat stripe index of submitter-side accounting
// (inline fast-path runs, sheds, fires, depth samples).
func (e *Engine) selfSlot() int { return len(e.stats) - 1 }

// note accounts one executed shard task on stat stripe slot.
func (e *Engine) note(slot, packets int, busy time.Duration) {
	sh := &e.stats[slot]
	sh.tasks.Add(1)
	sh.packets.Add(uint64(packets))
	sh.busy.Add(int64(busy))
}

// noteWait accounts one served task's queue wait on stripe slot and
// folds it into the recent-wait EWMA the shed policy's deadline check
// reads. The EWMA update is a lossy load/store pair by design:
// concurrent workers may drop an update, which only slows convergence
// of a statistic.
func (e *Engine) noteWait(slot int, wait time.Duration) {
	if wait < 0 {
		wait = 0
	}
	sh := &e.stats[slot]
	sh.wait.Add(int64(wait))
	sh.waitHist[waitBucket(wait)].Add(1)
	old := e.stWaitEWMA.Load()
	e.stWaitEWMA.Store(old + (int64(wait)-old)/8)
}

// noteShed accounts one shed submission of n packets.
func (e *Engine) noteShed(n int) {
	sh := &e.stats[e.selfSlot()]
	sh.shed.Add(uint64(n))
	sh.shedBatches.Add(1)
}

// noteFires accounts n fired windows of one per-packet batch.
func (e *Engine) noteFires(n int) {
	e.stats[e.selfSlot()].fires.Add(uint64(n))
}

// noteDepth samples the queue depth one enqueued task observed (other
// sessions already queued at its worker).
func (e *Engine) noteDepth(depth int) {
	if depth >= StatBuckets {
		depth = StatBuckets - 1
	}
	e.stats[e.selfSlot()].queueHist[depth].Add(1)
}

// ResetState restores every register of every chained program to its
// initial value — a fresh flow table for the next trace replay. Must
// not overlap with a running batch.
func (e *Engine) ResetState() {
	for _, p := range e.progs {
		p.ResetState()
	}
}

// Mode returns the engine's execution mode.
func (e *Engine) Mode() ExecMode { return e.mode }

// inline reports whether a batch of n packets should run on the caller
// goroutine: solo engines keep the historical fast path for one-shard
// pools and single-packet batches. Engines on a shared scheduler always
// queue, so the worker budget and the fairness policy apply.
func (e *Engine) inline(n int) bool {
	return e.ownSched && (e.shards == 1 || n == 1)
}

// runTask executes one shard task with panic isolation: a panicking
// compiled plan (or interpreter table) fails the task — its result
// entries stay zero-valued (the job path's scatter never runs over the
// zeroed arena; the packet path's fire staging was reset at dispatch)
// — and poisons only this session, never the pool. Both the worker
// loop and the inline fast path run tasks through here, so the
// isolation (and the injectable slow-plan / panicking-plan faults)
// behave identically in solo and shared serving.
func (e *Engine) runTask(t shardTask) {
	defer func() {
		if r := recover(); r != nil {
			e.poison(r)
		}
	}()
	if faultinject.Enabled() {
		if d := faultinject.Delay(faultinject.SlowSession, e.name); d > 0 {
			time.Sleep(d)
		}
		if faultinject.Should(faultinject.PanicSession, e.name) {
			panic("faultinject: injected plan panic")
		}
	}
	if t.pkts != nil {
		e.runPacketShard(t.shard, t.pkts, t.idx)
	} else {
		e.runShard(t.shard, t.jobs, t.res, t.dense, t.idx)
	}
}

// shardOf maps a flow hash to its shard.
func (e *Engine) shardOf(hash uint32) int {
	return int(hash % uint32(e.shards))
}

// shardIndices partitions n items by hash into the reused per-shard
// index buffers and returns the number of non-empty shards.
func (e *Engine) shardIndices(n int, hash func(int) uint32) int {
	for s := range e.shardIdx {
		e.shardIdx[s] = e.shardIdx[s][:0]
	}
	for i := 0; i < n; i++ {
		s := e.shardOf(hash(i))
		e.shardIdx[s] = append(e.shardIdx[s], i)
	}
	cnt := 0
	for s := 0; s < e.shards; s++ {
		if len(e.shardIdx[s]) > 0 {
			cnt++
		}
	}
	return cnt
}

// armBatch swings batchDone to a fresh channel and arms the remaining
// counter for cnt shard tasks. Must happen before the first publish.
func (e *Engine) armBatch(cnt int) {
	done := make(chan struct{})
	e.batchDone.Store(&done)
	e.remaining.Store(int32(cnt))
}

// waitBatch parks the submitter until the outstanding batch's last
// shard task closes the batch's done channel — one wake-up per batch.
// Safe to call with no batch outstanding.
func (e *Engine) waitBatch() {
	if e.remaining.Load() == 0 {
		return
	}
	done := e.batchDone.Load()
	if done == nil {
		return
	}
	// The batch may have completed between the two loads; re-check so a
	// late waiter does not block on a channel already swung to (and not
	// yet closed for) a successor batch.
	if e.remaining.Load() == 0 {
		return
	}
	<-*done
}

// submitJobs shards jobs, allocates the batch's dense arena (one
// cache-line-padded region per non-empty shard, class + outputs
// interleaved at stride len(e.out)+1), and publishes the shard tasks
// WITHOUT waiting. res may be nil for dense-only batches (RunStream
// merges straight from the arena). The arena is freshly allocated per
// batch — results that alias it (Result.Outs) stay valid after the
// next submission, preserving the historical retention semantics.
func (e *Engine) submitJobs(jobs []Job, res []Result) []int32 {
	cnt := e.shardIndices(len(jobs), func(i int) uint32 { return jobs[i].Hash })
	stride := len(e.out) + 1
	total := 0
	for s := 0; s < e.shards; s++ {
		e.regionOff[s] = total
		if n := len(e.shardIdx[s]); n > 0 {
			total += n*stride + densePad
		}
	}
	arena := make([]int32, total)
	e.armBatch(cnt)
	now := time.Now()
	for s := 0; s < e.shards; s++ {
		idx := e.shardIdx[s]
		if len(idx) == 0 {
			continue
		}
		e.sched.publish(e, shardTask{
			shard: s,
			jobs:  jobs,
			res:   res,
			dense: arena[e.regionOff[s] : e.regionOff[s]+len(idx)*stride],
			idx:   idx,
			enq:   now,
		})
	}
	if cnt < e.sched.budget {
		e.sched.wakeIdle()
	}
	return arena
}

// submitPackets shards a raw-packet batch, resets every shard's fire
// staging (so a panicked or shed shard contributes zero fires instead
// of a stale batch's), and publishes the shard tasks WITHOUT waiting.
func (e *Engine) submitPackets(pkts []PacketIn) {
	cnt := e.shardIndices(len(pkts), func(i int) uint32 { return pkts[i].Hash })
	for s := 0; s < e.shards; s++ {
		sr := &e.shardRes[s]
		sr.fireIdx = sr.fireIdx[:0]
		sr.fireClass = sr.fireClass[:0]
		sr.fireOuts = sr.fireOuts[:0]
	}
	e.armBatch(cnt)
	now := time.Now()
	for s := 0; s < e.shards; s++ {
		if len(e.shardIdx[s]) == 0 {
			continue
		}
		e.sched.publish(e, shardTask{shard: s, pkts: pkts, idx: e.shardIdx[s], enq: now})
	}
	if cnt < e.sched.budget {
		e.sched.wakeIdle()
	}
}

// Pending is one submitted batch in flight on the scheduler: the
// non-blocking half of a RunBatch. Wait blocks until every shard task
// has been served and returns the results in job order; it may be
// called once or many times, from the submitter or another goroutine.
type Pending struct {
	e    *Engine
	res  []Result
	done bool
}

// Wait blocks until the submitted batch has fully executed and returns
// its results in job order.
func (p *Pending) Wait() []Result {
	if !p.done {
		p.e.waitBatch()
		p.done = true
	}
	return p.res
}

// Err reports whether the session was poisoned by a plan panic: after
// Wait, a non-nil Err means the batch's results are not trustworthy
// (the panicked shard's entries are zero-valued).
func (p *Pending) Err() error { return p.e.Poisoned() }

// SubmitBatch enqueues a batch on the scheduler and returns without
// waiting for it — the non-blocking submission API: one driver can keep
// several models' queues full by submitting to each engine and then
// collecting the Pending results. The engine's single-outstanding-batch
// contract still applies — the caller must Wait (or Drain) before the
// next submission on the same engine. Small batches on solo engines run
// inline and return an already-completed Pending.
func (e *Engine) SubmitBatch(jobs []Job) *Pending {
	res := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return &Pending{e: e, res: res, done: true}
	}
	if e.inline(len(jobs)) {
		dense := make([]int32, len(jobs)*(len(e.out)+1))
		start := time.Now()
		e.noteWait(e.selfSlot(), 0)
		e.noteDepth(0)
		e.runTask(shardTask{jobs: jobs, res: res, dense: dense, idx: e.seqIdx(len(jobs))})
		e.note(e.selfSlot(), len(jobs), time.Since(start))
		return &Pending{e: e, res: res, done: true}
	}
	e.submitJobs(jobs, res)
	return &Pending{e: e, res: res}
}

// Drain blocks until the engine's outstanding batch (if any) has fully
// executed — the quiesce hook a control plane uses before swapping or
// retiring a session. Drain does not prevent NEW submissions; the
// caller must stop submitting first (the serving layer holds its
// per-model submission lock across drain + swap).
func (e *Engine) Drain() {
	e.waitBatch()
}

// RunBatch pushes every job through the program concurrently and returns
// the results in job order. Calls must not overlap: the engine owns one
// PHV per shard and a second concurrent batch would race on them (one
// engine per goroutine, or one RunBatch at a time).
func (e *Engine) RunBatch(jobs []Job) []Result {
	return e.SubmitBatch(jobs).Wait()
}

// RunStream's adaptive micro-batching: the chunk target starts at
// streamChunk and auto-tunes between the min and max bound. A sustained
// producer that fills the whole target doubles it — bigger batches
// amortise sharding and scheduler handoff, which is what worker scaling
// needs — while a trickling producer that fills under a quarter halves
// it, keeping latency low on sparse streams.
const (
	streamChunkMin = 128
	streamChunk    = 1024
	streamChunkMax = 16384
)

// drainStream drains in into adaptive micro-batches (up to the current
// auto-tuned chunk target, or whatever is immediately available) and
// hands each to flush, stopping when in is closed. It returns the total
// item count.
func drainStream[T any](in <-chan T, flush func([]T)) int {
	chunk := streamChunk
	buf := make([]T, 0, streamChunkMax)
	total := 0
	open := true
	for open {
		j, ok := <-in
		if !ok {
			break
		}
		buf = append(buf[:0], j)
	fill:
		for len(buf) < chunk {
			select {
			case j2, ok2 := <-in:
				if !ok2 {
					open = false
					break fill
				}
				buf = append(buf, j2)
			default:
				break fill
			}
		}
		switch {
		case len(buf) == chunk && chunk < streamChunkMax:
			chunk *= 2
		case len(buf) <= chunk/4 && chunk > streamChunkMin:
			chunk /= 2
		}
		flush(buf)
		total += len(buf)
	}
	return total
}

// RunStream replays a stream of jobs: packets are drained from in into
// adaptive micro-batches and pushed through the worker pool, with
// results emitted on out in arrival order. Each micro-batch runs
// dense-only — no job-order result slice — and the in-order emission is
// a cursor merge over the shards' dense regions (shard = hash mod
// shards recovers each job's region), so the serial tail is just the
// channel sends. Emitted Outs alias the batch's freshly allocated
// arena and are safe to retain. RunStream blocks until in is closed
// and all results are emitted, then closes out and returns the packet
// count. Like RunBatch, calls must not overlap with other runs on the
// same engine.
func (e *Engine) RunStream(in <-chan Job, out chan<- Result) int {
	stride := len(e.out) + 1
	total := drainStream(in, func(buf []Job) {
		if e.inline(len(buf)) {
			dense := make([]int32, len(buf)*stride)
			start := time.Now()
			e.noteWait(e.selfSlot(), 0)
			e.noteDepth(0)
			e.runTask(shardTask{jobs: buf, dense: dense, idx: e.seqIdx(len(buf))})
			e.note(e.selfSlot(), len(buf), time.Since(start))
			for i := range buf {
				off := i * stride
				out <- Result{Class: int(dense[off]), Outs: dense[off+1 : off+stride : off+stride]}
			}
			return
		}
		arena := e.submitJobs(buf, nil)
		e.waitBatch()
		for s := range e.mergeCur {
			e.mergeCur[s] = 0
		}
		for i := range buf {
			s := e.shardOf(buf[i].Hash)
			off := e.regionOff[s] + e.mergeCur[s]*stride
			e.mergeCur[s]++
			out <- Result{Class: int(arena[off]), Outs: arena[off+1 : off+stride : off+stride]}
		}
	})
	close(out)
	return total
}

// ConfigurePackets enables the per-packet replay path: RunPackets and
// RunPacketStream feed raw packets into meta's fields and collect an
// inference result whenever the program raises meta.Fire. The meta
// fields must live in the first pipe's layout (the extraction state
// machines of a multi-pipe emission always run in pipe 0).
func (e *Engine) ConfigurePackets(meta PacketMeta) {
	m := meta
	e.meta = &m
	// When every later pipe is stateless (the emitted shape: extraction
	// registers live in pipe 0 only), non-firing packets need not run
	// the downstream inference chain at all — Window−1 of every Window
	// packets skip it. A stateful later pipe forces the full chain so
	// its registers still see every packet.
	e.skipTail = true
	for _, p := range e.progs[1:] {
		if len(p.Registers) > 0 {
			e.skipTail = false
			break
		}
	}
}

// RunPackets pushes a trace of raw packets through the program chain:
// every packet updates the flow-state registers; packets that complete
// a feature window additionally produce an inference result. Results
// are returned in packet order, one per fired packet: each shard
// appends its fires to a private padded staging buffer, and the
// packet-order view is a min-index cursor merge over the shards'
// buffers — no shared flags or flat output buffer written across
// cores. Packets are sharded by flow hash exactly like RunBatch jobs,
// so all state of one flow is touched by one worker in arrival order;
// state persists across calls (use the programs' ResetState to start a
// fresh trace). Calls must not overlap with other runs on the same
// engine, and the returned Outs slices alias per-engine staging that
// the NEXT RunPackets call overwrites — copy them to retain results
// across calls. The engine must have been configured with
// ConfigurePackets.
func (e *Engine) RunPackets(pkts []PacketIn) []PacketResult {
	if e.meta == nil {
		panic("pisa: RunPackets on an engine without ConfigurePackets")
	}
	if len(pkts) == 0 {
		return nil
	}
	w := len(e.out)
	if e.inline(len(pkts)) {
		sr := &e.shardRes[0]
		sr.fireIdx = sr.fireIdx[:0]
		sr.fireClass = sr.fireClass[:0]
		sr.fireOuts = sr.fireOuts[:0]
		start := time.Now()
		e.noteWait(e.selfSlot(), 0)
		e.noteDepth(0)
		e.runTask(shardTask{pkts: pkts, idx: e.seqIdx(len(pkts))})
		e.note(e.selfSlot(), len(pkts), time.Since(start))
		// Single staging buffer: fires are already in packet order.
		n := len(sr.fireIdx)
		e.noteFires(n)
		res := make([]PacketResult, 0, n)
		for k := 0; k < n; k++ {
			res = append(res, PacketResult{Pkt: int(sr.fireIdx[k]), Class: int(sr.fireClass[k]), Outs: sr.fireOuts[k*w : (k+1)*w : (k+1)*w]})
		}
		return res
	}
	e.submitPackets(pkts)
	e.waitBatch()
	n := 0
	for s := 0; s < e.shards; s++ {
		n += len(e.shardRes[s].fireIdx)
	}
	e.noteFires(n)
	// Packet-order merge: repeatedly take the shard whose next staged
	// fire has the smallest packet index. O(shards) per fire with shards
	// bounded by the pool budget.
	res := make([]PacketResult, 0, n)
	for s := range e.mergeCur {
		e.mergeCur[s] = 0
	}
	for len(res) < n {
		bs := -1
		var bi int32
		for s := 0; s < e.shards; s++ {
			sr := &e.shardRes[s]
			if e.mergeCur[s] < len(sr.fireIdx) {
				if v := sr.fireIdx[e.mergeCur[s]]; bs < 0 || v < bi {
					bs, bi = s, v
				}
			}
		}
		sr := &e.shardRes[bs]
		k := e.mergeCur[bs]
		e.mergeCur[bs]++
		res = append(res, PacketResult{Pkt: int(bi), Class: int(sr.fireClass[k]), Outs: sr.fireOuts[k*w : (k+1)*w : (k+1)*w]})
	}
	return res
}

// RunPacketStream replays a stream of raw packets: packets are drained
// from in into adaptive micro-batches and pushed through RunPackets,
// with every fired inference emitted on out in arrival order
// (PacketResult.Pkt numbers packets over the whole stream). RunPackets
// already merges each micro-batch's per-shard fire staging into packet
// order, so emission is a straight walk. Emitted Outs are copies, safe
// to retain while later micro-batches run. It blocks until in is
// closed and all results are emitted, then closes out and returns the
// packet and fired-window counts.
//
// When a ShedPolicy is set, an over-bound micro-batch is shed whole:
// its packets are counted in the return value and the session's Shed
// stats but never touch the flow-state registers and fire nothing —
// the dataplane analogue of dropping on an overflowing ingress queue.
// A poisoned session likewise sheds the remainder of the stream
// instead of producing untrustworthy fires.
func (e *Engine) RunPacketStream(in <-chan PacketIn, out chan<- PacketResult) (packets, fires int) {
	done := 0
	packets = drainStream(in, func(buf []PacketIn) {
		if e.Poisoned() != nil {
			e.noteShed(len(buf))
			done += len(buf)
			return
		}
		if e.admit(nil, len(buf)) != nil {
			done += len(buf)
			return
		}
		for _, r := range e.RunPackets(buf) {
			// The engine's staging buffers are reused by the next
			// micro-batch while the consumer still holds r; detach.
			r.Pkt += done
			r.Outs = append([]int32(nil), r.Outs...)
			out <- r
			fires++
		}
		done += len(buf)
	})
	close(out)
	return packets, fires
}

// runPacketShard replays the given packet indices in order on shard s's
// PHVs, appending an inference record to the shard's private fire
// staging for every packet whose fire field is raised by pipe 0.
func (e *Engine) runPacketShard(s int, pkts []PacketIn, idx []int) {
	phvs := e.phvs[s]
	sr := &e.shardRes[s]
	interp := e.mode == ExecInterpret
	meta := e.meta
	rmw0 := phvRMWs(phvs)
	for _, i := range idx {
		phv := phvs[0]
		phv.Reset()
		phv.Set(meta.Hash, int32(pkts[i].Hash))
		for d, f := range meta.Fields {
			phv.Set(f, pkts[i].Fields[d])
		}
		if interp {
			e.progs[0].Process(phv)
		} else {
			e.plans[0].Process(phv)
		}
		fire := phv.Get(meta.Fire) != 0
		if !fire && e.skipTail {
			continue
		}
		for k := 1; k < len(e.progs); k++ {
			next := phvs[k]
			next.Reset()
			br := &e.bridges[k-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			if interp {
				e.progs[k].Process(next)
			} else {
				e.plans[k].Process(next)
			}
			phv = next
		}
		if !fire {
			continue
		}
		sr.fireIdx = append(sr.fireIdx, int32(i))
		sr.fireClass = append(sr.fireClass, phv.Get(e.class))
		for _, f := range e.out {
			sr.fireOuts = append(sr.fireOuts, phv.Get(f))
		}
	}
	sr.regRMWs.Add(phvRMWs(phvs) - rmw0)
}

// phvRMWs sums the monotonic per-PHV RMW counters of one shard's pipe
// PHVs; deltas of this sum around a task attribute its register work.
func phvRMWs(phvs []*PHV) uint64 {
	n := uint64(0)
	for _, p := range phvs {
		n += p.RegRMWs
	}
	return n
}

// runShard processes the given job indices in order on shard s's PHVs,
// chaining each packet through every program of the pipeline. Results
// land in the shard's private dense region (class + outputs, stride
// len(e.out)+1 per job) — the hot loop writes no cache line another
// worker writes. When res is non-nil the shard scatters its own jobs'
// entries into the job-order slice afterwards: a short parallel merge,
// each shard touching only its own indices.
func (e *Engine) runShard(s int, jobs []Job, res []Result, dense []int32, idx []int) {
	phvs := e.phvs[s]
	stride := len(e.out) + 1
	interp := e.mode == ExecInterpret
	rmw0 := phvRMWs(phvs)
	for k, i := range idx {
		phv := phvs[0]
		phv.Reset()
		for d, f := range e.in {
			phv.Set(f, jobs[i].In[d])
		}
		if interp {
			e.progs[0].Process(phv)
		} else {
			e.plans[0].Process(phv)
		}
		for p := 1; p < len(e.progs); p++ {
			next := phvs[p]
			next.Reset()
			br := &e.bridges[p-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			if interp {
				e.progs[p].Process(next)
			} else {
				e.plans[p].Process(next)
			}
			phv = next
		}
		rec := dense[k*stride : (k+1)*stride : (k+1)*stride]
		rec[0] = phv.Get(e.class)
		for d, f := range e.out {
			rec[1+d] = phv.Get(f)
		}
	}
	e.shardRes[s].regRMWs.Add(phvRMWs(phvs) - rmw0)
	if res == nil {
		return
	}
	for k, i := range idx {
		off := k * stride
		res[i] = Result{Class: int(dense[off]), Outs: dense[off+1 : off+stride : off+stride]}
	}
}

// seqIdx returns the reused [0..n) index slice for single-shard batches.
func (e *Engine) seqIdx(n int) []int {
	for len(e.seq) < n {
		e.seq = append(e.seq, len(e.seq))
	}
	return e.seq[:n]
}
