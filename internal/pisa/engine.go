package pisa

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// ExecMode selects how the engine executes each pipeline program.
type ExecMode int

const (
	// ExecCompiled replays packets over CompiledProgram plans — the
	// default: zero-allocation specialised lookups, bit-identical to
	// the interpreter.
	ExecCompiled ExecMode = iota
	// ExecInterpret replays packets through Program.Process, the
	// reference interpreter. Kept for differential testing and as the
	// baseline the benchmark reports compare against.
	ExecInterpret
)

func (m ExecMode) String() string {
	if m == ExecInterpret {
		return "interpreted"
	}
	return "compiled"
}

// Engine executes a compiled program over batches of packets, sharded
// by flow hash. The real switch processes packets in a hardware
// pipeline; the simulator's single-packet Process loop leaves every
// other core idle, so replaying a trace is CPU-bound on one goroutine.
// The engine restores the missing parallelism without changing
// semantics: packets are partitioned by Job.Hash (the five-tuple hash
// used to index per-flow register arrays), each shard is processed in
// arrival order with a private reusable PHV, and all accesses to one
// flow's state stay on one shard — per-flow read-modify-write ordering
// is exactly the sequential ordering.
//
// An Engine is a session handle over a Scheduler: the scheduler owns
// the worker pool, the engine owns the program chain, the per-shard
// PHVs and the shard queues. NewEngine/NewChainEngineMode construct a
// private solo scheduler whose budget equals the shard count — the
// historical one-engine-one-pool behaviour, bit for bit. Registering
// several engines on one shared Scheduler instead serves all of them
// from a single fixed worker budget with weighted fair draining and
// per-model stats — concurrent multi-model serving. Close releases the
// session (and stops the pool when the engine owns it); an engine must
// not be used after Close.
//
// For the per-flow guarantee to extend to stateful programs, register
// cells touched by different shards must be disjoint. Under the
// dataplane convention that register indices are flow-hash derived
// (cell = Hash % Size), construction enforces it structurally: the
// shard count is reduced until it divides every register array size, so
// cell ≡ Hash (mod shards) and each shard owns the cells congruent to
// its own index. Programs that compute register indices from anything
// other than the sharding hash must run with one shard.
// Multi-pipeline emissions (e.g. the Tofino multi-pipe target) are a
// chain of programs connected by Bridges: the engine processes each
// packet through every program in order, copying the bridged PHV fields
// between consecutive pipes, so batched replay over a split program
// classifies bit-identically to the single-pipe emission.
type Engine struct {
	name    string
	progs   []*Program
	plans   []*CompiledProgram // one per pipe, shared read-only by shards
	bridges []Bridge
	in      []FieldID // input fields, in progs[0]'s layout
	out     []FieldID // output fields, in the final program's layout
	class   FieldID   // class field, in the final program's layout
	shards  int
	mode    ExecMode
	phvs    [][]*PHV // [shard][pipe], reused across batches

	sched    *Scheduler
	ownSched bool         // solo scheduler, closed with the engine
	weight   atomic.Int32 // fair-share weight; retunable live (SetWeight)

	// Scheduler session state. slots[w] is this session's single queued
	// task at worker w (one outstanding batch ⇒ at most one task per
	// worker) and wpass[w] its stride-scheduling pass on that worker's
	// clock; both are guarded by that worker's lock. offset rotates the
	// shard→worker routing so co-resident sessions spread across the
	// pool.
	slots  []shardTask
	wpass  []float64
	offset int

	batchWG   sync.WaitGroup // outstanding shard tasks of one batch
	remaining atomic.Int32   // tasks left in the batch; the worker finishing the last one yields to the submitter
	seq       []int          // reused sequential index for 1-shard batches
	shardIdx  [][]int        // reused per-shard job index buffers
	tasks     []shardTask    // reused enqueue staging buffer
	closeOnce sync.Once

	// Overload protection (see ShedPolicy/SubmitBatchCtx): bounds are
	// stored atomically so the serving layer can retune them live, and
	// poisoned records the first plan panic isolated to this session.
	shedMaxQueue atomic.Int32
	shedMaxWait  atomic.Int64
	stWaitEWMA   atomic.Int64 // recent mean queue wait (exponentially weighted)
	poisoned     atomic.Pointer[poisonInfo]

	// Per-model serving stats, updated by workers.
	stTasks       atomic.Uint64
	stPackets     atomic.Uint64
	stFires       atomic.Uint64
	stShed        atomic.Uint64
	stShedBatches atomic.Uint64
	stBusy        atomic.Int64
	stWait        atomic.Int64
	stWaitHist    [StatBuckets]atomic.Uint64
	stQueueHist   [StatBuckets]atomic.Uint64

	// Per-packet replay state (ConfigurePackets).
	meta     *PacketMeta
	skipTail bool    // later pipes are stateless: skip them on non-fire packets
	fired    []bool  // reused per-batch fire flags
	pktOuts  []int32 // reused flat output buffer for packet batches
	pktClass []int32 // reused per-packet class buffer
}

// shardTask is one batch's work for one shard: the job (or raw-packet)
// indices the shard owns plus the batch-wide result and output buffers.
type shardTask struct {
	shard int
	jobs  []Job
	res   []Result
	outs  []int32
	idx   []int
	enq   time.Time // enqueue stamp; the worker derives the queue wait

	// Per-packet replay (RunPackets): pkts is non-nil, results land in
	// fired/class/outs instead of res.
	pkts  []PacketIn
	fired []bool
	class []int32
}

// Bridge carries PHV values between two chained pipeline programs: the
// value of From[i] in the upstream program's PHV is written to To[i] in
// the downstream program's PHV before it processes the packet. On real
// hardware this is bridged metadata travelling with the packet from
// ingress to egress (or over a recirculation/inter-pipe link).
type Bridge struct {
	From []FieldID
	To   []FieldID
}

// Job is one packet of a batch: the input-field values and the flow hash
// that selects its shard. Packets sharing a Hash are processed in batch
// order relative to each other; for stateless programs any key
// assignment works, and spreading keys evenly maximises parallelism.
type Job struct {
	Hash uint32
	In   []int32
}

// PacketMeta names the PHV handles of a program whose inputs are raw
// packets rather than pre-extracted feature windows. All fields live in
// the first (ingress) pipe's layout: the extraction state machines run
// there, banking per-flow state in registers and raising Fire on the
// packet that completes a window.
type PacketMeta struct {
	// Hash receives the packet's flow hash; the program derives the
	// register slot from it (slot = hash & (flows-1)).
	Hash FieldID
	// Fields receive the raw per-packet values, in the order the
	// emission documents (direction/length/timestamp for stat
	// extraction, length/timestamp for sequences, payload bytes for
	// payload models).
	Fields []FieldID
	// Fire is set non-zero by the program when this packet completed a
	// feature window and the inference result is valid.
	Fire FieldID
}

// PacketIn is one raw packet of a trace replay: the flow hash that
// selects its shard and register slot, and the per-packet field values
// in PacketMeta.Fields order.
type PacketIn struct {
	Hash   uint32
	Fields []int32
}

// PacketResult is one fired inference: the index of the packet that
// completed the window, plus the class and output vector the pipeline
// produced for it.
type PacketResult struct {
	Pkt   int
	Class int
	Outs  []int32
}

// Result is one packet's outputs: the class-field value and the
// output-field vector, in the same order as the jobs.
type Result struct {
	Class int
	Outs  []int32
}

// NewEngine builds an engine over a single program with the given I/O
// fields. workers ≤ 0 selects GOMAXPROCS. When prog has stateful
// registers, the shard count is reduced to the largest value dividing
// every register size (see the Engine contract above); register sizes
// are powers of two in practice, so this keeps a power-of-two pool.
func NewEngine(prog *Program, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngine([]*Program{prog}, nil, in, out, class, workers)
}

// NewChainEngine builds a compiled-plan engine over a chain of programs
// connected by bridges (len(bridges) == len(progs)-1). The in fields
// live in the first program's layout; out and class in the last one's.
// Shard-count reduction considers the registers of every program in
// the chain.
func NewChainEngine(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngineMode(progs, bridges, in, out, class, workers, ExecCompiled)
}

// NewChainEngineMode is NewChainEngine with an explicit execution mode.
// The engine owns a private solo scheduler sized to its shard count, so
// behaviour (and results) are identical to the historical per-engine
// worker pool.
func NewChainEngineMode(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int, mode ExecMode) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := reduceShards(workers, progs)
	s := NewScheduler(shards)
	e := s.newSession("", 1, progs, bridges, in, out, class, shards, mode)
	e.ownSched = true
	return e
}

// newSession builds and registers an engine session on the scheduler.
func (s *Scheduler) newSession(name string, weight int, progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, shards int, mode ExecMode) *Engine {
	if len(progs) == 0 {
		panic("pisa: chain engine needs at least one program")
	}
	if len(bridges) != len(progs)-1 {
		panic("pisa: chain engine needs one bridge per consecutive program pair")
	}
	if weight < 1 {
		weight = 1
	}
	e := &Engine{name: name, progs: progs, bridges: bridges, in: in, out: out, class: class,
		shards: shards, mode: mode, sched: s}
	e.weight.Store(int32(weight))
	// One contiguous shard-banked slab per program: each worker's flow
	// state becomes a dense private range instead of strides across
	// per-register allocations.
	for _, p := range progs {
		p.CompactRegisters(shards)
	}
	if mode == ExecCompiled {
		e.plans = make([]*CompiledProgram, len(progs))
		for k, p := range progs {
			e.plans[k] = CompileProgram(p)
		}
	}
	e.phvs = make([][]*PHV, shards)
	e.shardIdx = make([][]int, shards)
	for sh := range e.phvs {
		e.phvs[sh] = make([]*PHV, len(progs))
		for k, p := range progs {
			e.phvs[sh][k] = p.Layout.NewPHV()
		}
	}
	s.register(e)
	return e
}

// Close releases the engine's scheduler session; when the engine owns a
// solo scheduler the pool is stopped and waited for. The engine must
// not be used after Close. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.sched.unregister(e)
		if e.ownSched {
			e.sched.Close()
		}
	})
}

// Workers returns the shard count (the engine's maximum intra-batch
// parallelism; the serving parallelism is bounded by the scheduler
// budget).
func (e *Engine) Workers() int { return e.shards }

// Name returns the session label given at registration (empty for solo
// engines).
func (e *Engine) Name() string { return e.name }

// Scheduler returns the scheduler serving this engine.
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Stats snapshots the session's cumulative serving counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Name:        e.name,
		Weight:      int(e.weight.Load()),
		Tasks:       e.stTasks.Load(),
		Packets:     e.stPackets.Load(),
		Fires:       e.stFires.Load(),
		Shed:        e.stShed.Load(),
		ShedBatches: e.stShedBatches.Load(),
		Busy:        time.Duration(e.stBusy.Load()),
		Wait:        time.Duration(e.stWait.Load()),
	}
	for i := range st.WaitHist {
		st.WaitHist[i] = e.stWaitHist[i].Load()
		st.QueueHist[i] = e.stQueueHist[i].Load()
	}
	return st
}

// Weight returns the session's current fair-share weight.
func (e *Engine) Weight() int { return int(e.weight.Load()) }

// SetWeight retunes the session's fair-share weight live (< 1 is
// clamped to 1); it takes effect on the next scheduling decision. This
// is the hook an SLO feedback loop drives: raising a lagging model's
// weight shrinks the stride charged per served packet, growing its
// share of the pool.
func (e *Engine) SetWeight(w int) {
	if w < 1 {
		w = 1
	}
	e.weight.Store(int32(w))
}

// note accounts one executed shard task.
func (e *Engine) note(packets int, busy time.Duration) {
	e.stTasks.Add(1)
	e.stPackets.Add(uint64(packets))
	e.stBusy.Add(int64(busy))
}

// noteWait accounts one served task's queue wait and folds it into the
// recent-wait EWMA the shed policy's deadline check reads. The EWMA
// update is a lossy load/store pair by design: concurrent workers may
// drop an update, which only slows convergence of a statistic.
func (e *Engine) noteWait(wait time.Duration) {
	if wait < 0 {
		wait = 0
	}
	e.stWait.Add(int64(wait))
	e.stWaitHist[waitBucket(wait)].Add(1)
	old := e.stWaitEWMA.Load()
	e.stWaitEWMA.Store(old + (int64(wait)-old)/8)
}

// noteShed accounts one shed submission of n packets.
func (e *Engine) noteShed(n int) {
	e.stShed.Add(uint64(n))
	e.stShedBatches.Add(1)
}

// noteDepth samples the queue depth one enqueued task observed (other
// sessions already queued at its worker).
func (e *Engine) noteDepth(depth int) {
	if depth >= StatBuckets {
		depth = StatBuckets - 1
	}
	e.stQueueHist[depth].Add(1)
}

// ResetState restores every register of every chained program to its
// initial value — a fresh flow table for the next trace replay. Must
// not overlap with a running batch.
func (e *Engine) ResetState() {
	for _, p := range e.progs {
		p.ResetState()
	}
}

// Mode returns the engine's execution mode.
func (e *Engine) Mode() ExecMode { return e.mode }

// inline reports whether a batch of n packets should run on the caller
// goroutine: solo engines keep the historical fast path for one-shard
// pools and single-packet batches. Engines on a shared scheduler always
// queue, so the worker budget and the fairness policy apply.
func (e *Engine) inline(n int) bool {
	return e.ownSched && (e.shards == 1 || n == 1)
}

// runTask executes one shard task with panic isolation: a panicking
// compiled plan (or interpreter table) fails the task — its result
// entries stay zero-valued — and poisons only this session, never the
// pool. Both the worker loop and the inline fast path run tasks
// through here, so the isolation (and the injectable slow-plan /
// panicking-plan faults) behave identically in solo and shared
// serving.
func (e *Engine) runTask(t shardTask) {
	defer func() {
		if r := recover(); r != nil {
			e.poison(r)
		}
	}()
	if faultinject.Enabled() {
		if d := faultinject.Delay(faultinject.SlowSession, e.name); d > 0 {
			time.Sleep(d)
		}
		if faultinject.Should(faultinject.PanicSession, e.name) {
			panic("faultinject: injected plan panic")
		}
	}
	if t.pkts != nil {
		e.runPacketShard(t.shard, t.pkts, t.fired, t.class, t.outs, t.idx)
	} else {
		e.runShard(t.shard, t.jobs, t.res, t.outs, t.idx)
	}
}

// dispatchAsync shards the given item count by hash onto the engine's
// task staging buffer and enqueues the tasks on the scheduler WITHOUT
// waiting for them. mk builds the task for one shard's index list; the
// caller must eventually wait on batchWG (Pending.Wait / dispatch).
func (e *Engine) dispatchAsync(n int, hash func(int) uint32, mk func(shard int, idx []int) shardTask) {
	for s := range e.shardIdx {
		e.shardIdx[s] = e.shardIdx[s][:0]
	}
	for i := 0; i < n; i++ {
		s := int(hash(i) % uint32(e.shards))
		e.shardIdx[s] = append(e.shardIdx[s], i)
	}
	e.tasks = e.tasks[:0]
	for s := 0; s < e.shards; s++ {
		if len(e.shardIdx[s]) == 0 {
			continue
		}
		e.tasks = append(e.tasks, mk(s, e.shardIdx[s]))
	}
	e.batchWG.Add(len(e.tasks))
	e.remaining.Store(int32(len(e.tasks)))
	e.sched.enqueue(e, e.tasks)
}

// dispatch is dispatchAsync plus the wait for the batch to drain.
func (e *Engine) dispatch(n int, hash func(int) uint32, mk func(shard int, idx []int) shardTask) {
	e.dispatchAsync(n, hash, mk)
	e.batchWG.Wait()
}

// Pending is one submitted batch in flight on the scheduler: the
// non-blocking half of a RunBatch. Wait blocks until every shard task
// has been served and returns the results in job order; it may be
// called once or many times, from the submitter or another goroutine.
type Pending struct {
	e    *Engine
	res  []Result
	done bool
}

// Wait blocks until the submitted batch has fully executed and returns
// its results in job order.
func (p *Pending) Wait() []Result {
	if !p.done {
		p.e.batchWG.Wait()
		p.done = true
	}
	return p.res
}

// Err reports whether the session was poisoned by a plan panic: after
// Wait, a non-nil Err means the batch's results are not trustworthy
// (the panicked shard's entries are zero-valued).
func (p *Pending) Err() error { return p.e.Poisoned() }

// SubmitBatch enqueues a batch on the scheduler and returns without
// waiting for it — the non-blocking submission API: one driver can keep
// several models' queues full by submitting to each engine and then
// collecting the Pending results. The engine's single-outstanding-batch
// contract still applies — the caller must Wait (or Drain) before the
// next submission on the same engine. Small batches on solo engines run
// inline and return an already-completed Pending.
func (e *Engine) SubmitBatch(jobs []Job) *Pending {
	res := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return &Pending{e: e, res: res, done: true}
	}
	// One flat output buffer per batch, subsliced per packet: shards
	// write disjoint job indices, so the backing array is race free and
	// the hot loop stays allocation free.
	outs := make([]int32, len(jobs)*len(e.out))
	if e.inline(len(jobs)) {
		start := time.Now()
		e.noteWait(0)
		e.noteDepth(0)
		e.runTask(shardTask{jobs: jobs, res: res, outs: outs, idx: e.seqIdx(len(jobs))})
		e.note(len(jobs), time.Since(start))
		return &Pending{e: e, res: res, done: true}
	}
	e.dispatchAsync(len(jobs), func(i int) uint32 { return jobs[i].Hash },
		func(shard int, idx []int) shardTask {
			return shardTask{shard: shard, jobs: jobs, res: res, outs: outs, idx: idx}
		})
	return &Pending{e: e, res: res}
}

// Drain blocks until the engine's outstanding batch (if any) has fully
// executed — the quiesce hook a control plane uses before swapping or
// retiring a session. Drain does not prevent NEW submissions; the
// caller must stop submitting first (the serving layer holds its
// per-model submission lock across drain + swap).
func (e *Engine) Drain() {
	e.batchWG.Wait()
}

// RunBatch pushes every job through the program concurrently and returns
// the results in job order. Calls must not overlap: the engine owns one
// PHV per shard and a second concurrent batch would race on them (one
// engine per goroutine, or one RunBatch at a time).
func (e *Engine) RunBatch(jobs []Job) []Result {
	return e.SubmitBatch(jobs).Wait()
}

// RunStream's adaptive micro-batching: the chunk target starts at
// streamChunk and auto-tunes between the min and max bound. A sustained
// producer that fills the whole target doubles it — bigger batches
// amortise sharding and scheduler handoff, which is what worker scaling
// needs — while a trickling producer that fills under a quarter halves
// it, keeping latency low on sparse streams.
const (
	streamChunkMin = 128
	streamChunk    = 1024
	streamChunkMax = 16384
)

// drainStream drains in into adaptive micro-batches (up to the current
// auto-tuned chunk target, or whatever is immediately available) and
// hands each to flush, stopping when in is closed. It returns the total
// item count.
func drainStream[T any](in <-chan T, flush func([]T)) int {
	chunk := streamChunk
	buf := make([]T, 0, streamChunkMax)
	total := 0
	open := true
	for open {
		j, ok := <-in
		if !ok {
			break
		}
		buf = append(buf[:0], j)
	fill:
		for len(buf) < chunk {
			select {
			case j2, ok2 := <-in:
				if !ok2 {
					open = false
					break fill
				}
				buf = append(buf, j2)
			default:
				break fill
			}
		}
		switch {
		case len(buf) == chunk && chunk < streamChunkMax:
			chunk *= 2
		case len(buf) <= chunk/4 && chunk > streamChunkMin:
			chunk /= 2
		}
		flush(buf)
		total += len(buf)
	}
	return total
}

// RunStream replays a stream of jobs: packets are drained from in into
// adaptive micro-batches and pushed through the worker pool, with
// results emitted on out in arrival order. RunStream blocks until in
// is closed and all results are emitted, then closes out and returns
// the packet count. Like RunBatch, calls must not overlap with other
// runs on the same engine.
func (e *Engine) RunStream(in <-chan Job, out chan<- Result) int {
	total := drainStream(in, func(buf []Job) {
		for _, r := range e.RunBatch(buf) {
			out <- r
		}
	})
	close(out)
	return total
}

// ConfigurePackets enables the per-packet replay path: RunPackets and
// RunPacketStream feed raw packets into meta's fields and collect an
// inference result whenever the program raises meta.Fire. The meta
// fields must live in the first pipe's layout (the extraction state
// machines of a multi-pipe emission always run in pipe 0).
func (e *Engine) ConfigurePackets(meta PacketMeta) {
	m := meta
	e.meta = &m
	// When every later pipe is stateless (the emitted shape: extraction
	// registers live in pipe 0 only), non-firing packets need not run
	// the downstream inference chain at all — Window−1 of every Window
	// packets skip it. A stateful later pipe forces the full chain so
	// its registers still see every packet.
	e.skipTail = true
	for _, p := range e.progs[1:] {
		if len(p.Registers) > 0 {
			e.skipTail = false
			break
		}
	}
}

// RunPackets pushes a trace of raw packets through the program chain:
// every packet updates the flow-state registers; packets that complete
// a feature window additionally produce an inference result. Results
// are returned in packet order, one per fired packet. Packets are
// sharded by flow hash exactly like RunBatch jobs, so all state of one
// flow is touched by one worker in arrival order; state persists across
// calls (use the programs' ResetState to start a fresh trace). Calls
// must not overlap with other runs on the same engine, and the
// returned Outs slices alias a per-engine buffer that the NEXT
// RunPackets call overwrites — copy them to retain results across
// calls. The engine must have been configured with ConfigurePackets.
func (e *Engine) RunPackets(pkts []PacketIn) []PacketResult {
	if e.meta == nil {
		panic("pisa: RunPackets on an engine without ConfigurePackets")
	}
	if len(pkts) == 0 {
		return nil
	}
	w := len(e.out)
	if cap(e.fired) < len(pkts) {
		e.fired = make([]bool, len(pkts))
		e.pktClass = make([]int32, len(pkts))
		e.pktOuts = make([]int32, len(pkts)*w)
	}
	fired := e.fired[:len(pkts)]
	class := e.pktClass[:len(pkts)]
	outs := e.pktOuts[:len(pkts)*w]
	for i := range fired {
		fired[i] = false
	}
	if e.inline(len(pkts)) {
		start := time.Now()
		e.noteWait(0)
		e.noteDepth(0)
		e.runTask(shardTask{pkts: pkts, fired: fired, class: class, outs: outs, idx: e.seqIdx(len(pkts))})
		e.note(len(pkts), time.Since(start))
	} else {
		e.dispatch(len(pkts), func(i int) uint32 { return pkts[i].Hash },
			func(shard int, idx []int) shardTask {
				return shardTask{shard: shard, pkts: pkts, fired: fired, class: class, outs: outs, idx: idx}
			})
	}
	n := 0
	for i := range fired {
		if fired[i] {
			n++
		}
	}
	e.stFires.Add(uint64(n))
	res := make([]PacketResult, 0, n)
	for i := range fired {
		if fired[i] {
			res = append(res, PacketResult{Pkt: i, Class: int(class[i]), Outs: outs[i*w : (i+1)*w : (i+1)*w]})
		}
	}
	return res
}

// RunPacketStream replays a stream of raw packets: packets are drained
// from in into adaptive micro-batches and pushed through RunPackets,
// with every fired inference emitted on out in arrival order
// (PacketResult.Pkt numbers packets over the whole stream). Emitted
// Outs are copies, safe to retain while later micro-batches run. It
// blocks until in is closed and all results are emitted, then closes
// out and returns the packet and fired-window counts.
//
// When a ShedPolicy is set, an over-bound micro-batch is shed whole:
// its packets are counted in the return value and the session's Shed
// stats but never touch the flow-state registers and fire nothing —
// the dataplane analogue of dropping on an overflowing ingress queue.
// A poisoned session likewise sheds the remainder of the stream
// instead of producing untrustworthy fires.
func (e *Engine) RunPacketStream(in <-chan PacketIn, out chan<- PacketResult) (packets, fires int) {
	done := 0
	packets = drainStream(in, func(buf []PacketIn) {
		if e.Poisoned() != nil {
			e.noteShed(len(buf))
			done += len(buf)
			return
		}
		if e.admit(nil, len(buf)) != nil {
			done += len(buf)
			return
		}
		for _, r := range e.RunPackets(buf) {
			// The engine's output buffer is reused by the next
			// micro-batch while the consumer still holds r; detach.
			r.Pkt += done
			r.Outs = append([]int32(nil), r.Outs...)
			out <- r
			fires++
		}
		done += len(buf)
	})
	close(out)
	return packets, fires
}

// runPacketShard replays the given packet indices in order on shard s's
// PHVs, recording an inference result for every packet whose fire field
// is raised by pipe 0.
func (e *Engine) runPacketShard(s int, pkts []PacketIn, fired []bool, class []int32, outs []int32, idx []int) {
	phvs := e.phvs[s]
	w := len(e.out)
	interp := e.mode == ExecInterpret
	meta := e.meta
	for _, i := range idx {
		phv := phvs[0]
		phv.Reset()
		phv.Set(meta.Hash, int32(pkts[i].Hash))
		for d, f := range meta.Fields {
			phv.Set(f, pkts[i].Fields[d])
		}
		if interp {
			e.progs[0].Process(phv)
		} else {
			e.plans[0].Process(phv)
		}
		fire := phv.Get(meta.Fire) != 0
		if !fire && e.skipTail {
			continue
		}
		for k := 1; k < len(e.progs); k++ {
			next := phvs[k]
			next.Reset()
			br := &e.bridges[k-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			if interp {
				e.progs[k].Process(next)
			} else {
				e.plans[k].Process(next)
			}
			phv = next
		}
		if !fire {
			continue
		}
		fired[i] = true
		class[i] = phv.Get(e.class)
		out := outs[i*w : (i+1)*w : (i+1)*w]
		for k, f := range e.out {
			out[k] = phv.Get(f)
		}
	}
}

// runShard processes the given job indices in order on shard s's PHVs,
// chaining each packet through every program of the pipeline. outs is
// the batch-wide flat output buffer (len(jobs) × len(e.out)).
func (e *Engine) runShard(s int, jobs []Job, res []Result, outs []int32, idx []int) {
	phvs := e.phvs[s]
	w := len(e.out)
	interp := e.mode == ExecInterpret
	for _, i := range idx {
		phv := phvs[0]
		phv.Reset()
		for d, f := range e.in {
			phv.Set(f, jobs[i].In[d])
		}
		if interp {
			e.progs[0].Process(phv)
		} else {
			e.plans[0].Process(phv)
		}
		for k := 1; k < len(e.progs); k++ {
			next := phvs[k]
			next.Reset()
			br := &e.bridges[k-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			if interp {
				e.progs[k].Process(next)
			} else {
				e.plans[k].Process(next)
			}
			phv = next
		}
		out := outs[i*w : (i+1)*w : (i+1)*w]
		for k, f := range e.out {
			out[k] = phv.Get(f)
		}
		res[i] = Result{Class: int(phv.Get(e.class)), Outs: out}
	}
}

// seqIdx returns the reused [0..n) index slice for single-shard batches.
func (e *Engine) seqIdx(n int) []int {
	for len(e.seq) < n {
		e.seq = append(e.seq, len(e.seq))
	}
	return e.seq[:n]
}
