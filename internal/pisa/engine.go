package pisa

import (
	"runtime"
	"sync"
)

// ExecMode selects how the engine executes each pipeline program.
type ExecMode int

const (
	// ExecCompiled replays packets over CompiledProgram plans — the
	// default: zero-allocation specialised lookups, bit-identical to
	// the interpreter.
	ExecCompiled ExecMode = iota
	// ExecInterpret replays packets through Program.Process, the
	// reference interpreter. Kept for differential testing and as the
	// baseline the benchmark reports compare against.
	ExecInterpret
)

func (m ExecMode) String() string {
	if m == ExecInterpret {
		return "interpreted"
	}
	return "compiled"
}

// Engine executes a compiled program over batches of packets with a
// persistent worker pool sharded by flow hash. The real switch
// processes packets in a hardware pipeline; the simulator's
// single-packet Process loop leaves every other core idle, so replaying
// a trace is CPU-bound on one goroutine. The engine restores the
// missing parallelism without changing semantics: packets are
// partitioned by Job.Hash (the five-tuple hash used to index per-flow
// register arrays), each shard is processed in arrival order on its own
// worker with a private reusable PHV, and all accesses to one flow's
// state stay on one shard — per-flow read-modify-write ordering is
// exactly the sequential ordering.
//
// The pool is persistent: workers start once at construction and are
// fed shard chunks over channels, so RunBatch spawns no goroutines and
// reuses its shard index buffers across calls. Close stops the pool;
// an engine must not be used after Close.
//
// For the per-flow guarantee to extend to stateful programs, register
// cells touched by different shards must be disjoint. Under the
// dataplane convention that register indices are flow-hash derived
// (cell = Hash % Size), NewEngine enforces it structurally: the worker
// count is reduced until it divides every register array size, so
// cell ≡ Hash (mod workers) and each shard owns the cells congruent to
// its own index. Programs that compute register indices from anything
// other than the sharding hash must run with workers = 1.
// Multi-pipeline emissions (e.g. the Tofino multi-pipe target) are a
// chain of programs connected by Bridges: the engine processes each
// packet through every program in order, copying the bridged PHV fields
// between consecutive pipes, so batched replay over a split program
// classifies bit-identically to the single-pipe emission.
type Engine struct {
	progs   []*Program
	plans   []*CompiledProgram // one per pipe, shared read-only by shards
	bridges []Bridge
	in      []FieldID // input fields, in progs[0]'s layout
	out     []FieldID // output fields, in the final program's layout
	class   FieldID   // class field, in the final program's layout
	workers int
	mode    ExecMode
	phvs    [][]*PHV // [shard][pipe], reused across batches

	feed      []chan shardTask // one channel per worker
	batchWG   sync.WaitGroup   // outstanding shard tasks of one batch
	workerWG  sync.WaitGroup   // worker goroutine lifetimes
	seq       []int            // reused sequential index for 1-shard batches
	shards    [][]int          // reused per-shard job index buffers
	closeOnce sync.Once
}

// shardTask is one batch's work for one shard: the job indices the
// shard owns plus the batch-wide result and output buffers.
type shardTask struct {
	jobs []Job
	res  []Result
	outs []int32
	idx  []int
}

// Bridge carries PHV values between two chained pipeline programs: the
// value of From[i] in the upstream program's PHV is written to To[i] in
// the downstream program's PHV before it processes the packet. On real
// hardware this is bridged metadata travelling with the packet from
// ingress to egress (or over a recirculation/inter-pipe link).
type Bridge struct {
	From []FieldID
	To   []FieldID
}

// Job is one packet of a batch: the input-field values and the flow hash
// that selects its shard. Packets sharing a Hash are processed in batch
// order relative to each other; for stateless programs any key
// assignment works, and spreading keys evenly maximises parallelism.
type Job struct {
	Hash uint32
	In   []int32
}

// Result is one packet's outputs: the class-field value and the
// output-field vector, in the same order as the jobs.
type Result struct {
	Class int
	Outs  []int32
}

// NewEngine builds an engine over a single program with the given I/O
// fields. workers ≤ 0 selects GOMAXPROCS. When prog has stateful
// registers, the worker count is reduced to the largest value dividing
// every register size (see the Engine contract above); register sizes
// are powers of two in practice, so this keeps a power-of-two pool.
func NewEngine(prog *Program, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngine([]*Program{prog}, nil, in, out, class, workers)
}

// NewChainEngine builds a compiled-plan engine over a chain of programs
// connected by bridges (len(bridges) == len(progs)-1). The in fields
// live in the first program's layout; out and class in the last one's.
// Worker-count reduction considers the registers of every program in
// the chain.
func NewChainEngine(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngineMode(progs, bridges, in, out, class, workers, ExecCompiled)
}

// NewChainEngineMode is NewChainEngine with an explicit execution mode.
func NewChainEngineMode(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int, mode ExecMode) *Engine {
	if len(progs) == 0 {
		panic("pisa: chain engine needs at least one program")
	}
	if len(bridges) != len(progs)-1 {
		panic("pisa: chain engine needs one bridge per consecutive program pair")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dividesAll := func(w int) bool {
		for _, p := range progs {
			for _, r := range p.Registers {
				if r.Size%w != 0 {
					return false
				}
			}
		}
		return true
	}
	for workers > 1 && !dividesAll(workers) {
		workers--
	}
	e := &Engine{progs: progs, bridges: bridges, in: in, out: out, class: class,
		workers: workers, mode: mode}
	if mode == ExecCompiled {
		e.plans = make([]*CompiledProgram, len(progs))
		for k, p := range progs {
			e.plans[k] = CompileProgram(p)
		}
	}
	e.phvs = make([][]*PHV, workers)
	e.shards = make([][]int, workers)
	e.feed = make([]chan shardTask, workers)
	for s := range e.phvs {
		e.phvs[s] = make([]*PHV, len(progs))
		for k, p := range progs {
			e.phvs[s][k] = p.Layout.NewPHV()
		}
		e.feed[s] = make(chan shardTask, 1)
		e.workerWG.Add(1)
		go e.workerLoop(s)
	}
	return e
}

// workerLoop is shard s's persistent goroutine: it drains shard tasks
// until Close closes the feed channel.
func (e *Engine) workerLoop(s int) {
	defer e.workerWG.Done()
	for t := range e.feed[s] {
		e.runShard(s, t.jobs, t.res, t.outs, t.idx)
		e.batchWG.Done()
	}
}

// Close stops the worker pool and waits for the workers to exit. The
// engine must not be used after Close. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		for _, c := range e.feed {
			close(c)
		}
		e.workerWG.Wait()
	})
}

// Workers returns the shard count.
func (e *Engine) Workers() int { return e.workers }

// Mode returns the engine's execution mode.
func (e *Engine) Mode() ExecMode { return e.mode }

// RunBatch pushes every job through the program concurrently and returns
// the results in job order. Calls must not overlap: the engine owns one
// PHV per shard and a second concurrent batch would race on them (one
// engine per goroutine, or one RunBatch at a time).
func (e *Engine) RunBatch(jobs []Job) []Result {
	res := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return res
	}
	// One flat output buffer per batch, subsliced per packet: shards
	// write disjoint job indices, so the backing array is race free and
	// the hot loop stays allocation free.
	outs := make([]int32, len(jobs)*len(e.out))
	if e.workers == 1 || len(jobs) == 1 {
		e.runShard(0, jobs, res, outs, e.seqIdx(len(jobs)))
		return res
	}
	// Shard by flow hash, preserving batch order within each shard. The
	// per-shard index buffers persist across batches.
	for s := range e.shards {
		e.shards[s] = e.shards[s][:0]
	}
	for i := range jobs {
		s := int(jobs[i].Hash % uint32(e.workers))
		e.shards[s] = append(e.shards[s], i)
	}
	for s := 0; s < e.workers; s++ {
		if len(e.shards[s]) == 0 {
			continue
		}
		e.batchWG.Add(1)
		e.feed[s] <- shardTask{jobs: jobs, res: res, outs: outs, idx: e.shards[s]}
	}
	e.batchWG.Wait()
	return res
}

// streamChunk bounds the micro-batches RunStream forms from the input
// channel: big enough to amortise sharding, small enough to keep
// latency low when the stream trickles.
const streamChunk = 1024

// RunStream replays a stream of jobs: packets are drained from in into
// adaptive micro-batches (up to streamChunk, or whatever is immediately
// available) and pushed through the worker pool, with results emitted
// on out in arrival order. RunStream blocks until in is closed and all
// results are emitted, then closes out and returns the packet count.
// Like RunBatch, calls must not overlap with other runs on the same
// engine.
func (e *Engine) RunStream(in <-chan Job, out chan<- Result) int {
	buf := make([]Job, 0, streamChunk)
	total := 0
	open := true
	for open {
		j, ok := <-in
		if !ok {
			break
		}
		buf = append(buf[:0], j)
	fill:
		for len(buf) < streamChunk {
			select {
			case j2, ok2 := <-in:
				if !ok2 {
					open = false
					break fill
				}
				buf = append(buf, j2)
			default:
				break fill
			}
		}
		for _, r := range e.RunBatch(buf) {
			out <- r
		}
		total += len(buf)
	}
	close(out)
	return total
}

// runShard processes the given job indices in order on shard s's PHVs,
// chaining each packet through every program of the pipeline. outs is
// the batch-wide flat output buffer (len(jobs) × len(e.out)).
func (e *Engine) runShard(s int, jobs []Job, res []Result, outs []int32, idx []int) {
	phvs := e.phvs[s]
	w := len(e.out)
	interp := e.mode == ExecInterpret
	for _, i := range idx {
		phv := phvs[0]
		phv.Reset()
		for d, f := range e.in {
			phv.Set(f, jobs[i].In[d])
		}
		if interp {
			e.progs[0].Process(phv)
		} else {
			e.plans[0].Process(phv)
		}
		for k := 1; k < len(e.progs); k++ {
			next := phvs[k]
			next.Reset()
			br := &e.bridges[k-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			if interp {
				e.progs[k].Process(next)
			} else {
				e.plans[k].Process(next)
			}
			phv = next
		}
		out := outs[i*w : (i+1)*w : (i+1)*w]
		for k, f := range e.out {
			out[k] = phv.Get(f)
		}
		res[i] = Result{Class: int(phv.Get(e.class)), Outs: out}
	}
}

// seqIdx returns the reused [0..n) index slice for single-shard batches.
func (e *Engine) seqIdx(n int) []int {
	for len(e.seq) < n {
		e.seq = append(e.seq, len(e.seq))
	}
	return e.seq[:n]
}
