package pisa

import (
	"runtime"
	"sync"
)

// Engine executes a compiled program over batches of packets with a
// worker pool sharded by flow hash. The real switch processes packets in
// a hardware pipeline; the simulator's single-packet Process loop leaves
// every other core idle, so replaying a trace is CPU-bound on one
// goroutine. The engine restores the missing parallelism without
// changing semantics: packets are partitioned by Job.Hash (the
// five-tuple hash used to index per-flow register arrays), each shard is
// processed in arrival order on its own worker with a private reusable
// PHV, and all accesses to one flow's state stay on one shard — per-flow
// read-modify-write ordering is exactly the sequential ordering.
//
// For that guarantee to extend to stateful programs, register cells
// touched by different shards must be disjoint. Under the dataplane
// convention that register indices are flow-hash derived
// (cell = Hash % Size), NewEngine enforces it structurally: the worker
// count is reduced until it divides every register array size, so
// cell ≡ Hash (mod workers) and each shard owns the cells congruent to
// its own index. Programs that compute register indices from anything
// other than the sharding hash must run with workers = 1.
// Multi-pipeline emissions (e.g. the Tofino multi-pipe target) are a
// chain of programs connected by Bridges: the engine processes each
// packet through every program in order, copying the bridged PHV fields
// between consecutive pipes, so batched replay over a split program
// classifies bit-identically to the single-pipe emission.
type Engine struct {
	progs   []*Program
	bridges []Bridge
	in      []FieldID // input fields, in progs[0]'s layout
	out     []FieldID // output fields, in the final program's layout
	class   FieldID   // class field, in the final program's layout
	workers int
	phvs    [][]*PHV // [shard][pipe], reused across batches
}

// Bridge carries PHV values between two chained pipeline programs: the
// value of From[i] in the upstream program's PHV is written to To[i] in
// the downstream program's PHV before it processes the packet. On real
// hardware this is bridged metadata travelling with the packet from
// ingress to egress (or over a recirculation/inter-pipe link).
type Bridge struct {
	From []FieldID
	To   []FieldID
}

// Job is one packet of a batch: the input-field values and the flow hash
// that selects its shard. Packets sharing a Hash are processed in batch
// order relative to each other; for stateless programs any key
// assignment works, and spreading keys evenly maximises parallelism.
type Job struct {
	Hash uint32
	In   []int32
}

// Result is one packet's outputs: the class-field value and the
// output-field vector, in the same order as the jobs.
type Result struct {
	Class int
	Outs  []int32
}

// NewEngine builds an engine over a single program with the given I/O
// fields. workers ≤ 0 selects GOMAXPROCS. When prog has stateful
// registers, the worker count is reduced to the largest value dividing
// every register size (see the Engine contract above); register sizes
// are powers of two in practice, so this keeps a power-of-two pool.
func NewEngine(prog *Program, in, out []FieldID, class FieldID, workers int) *Engine {
	return NewChainEngine([]*Program{prog}, nil, in, out, class, workers)
}

// NewChainEngine builds an engine over a chain of programs connected by
// bridges (len(bridges) == len(progs)-1). The in fields live in the
// first program's layout; out and class in the last one's. Worker-count
// reduction considers the registers of every program in the chain.
func NewChainEngine(progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, workers int) *Engine {
	if len(progs) == 0 {
		panic("pisa: chain engine needs at least one program")
	}
	if len(bridges) != len(progs)-1 {
		panic("pisa: chain engine needs one bridge per consecutive program pair")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dividesAll := func(w int) bool {
		for _, p := range progs {
			for _, r := range p.Registers {
				if r.Size%w != 0 {
					return false
				}
			}
		}
		return true
	}
	for workers > 1 && !dividesAll(workers) {
		workers--
	}
	e := &Engine{progs: progs, bridges: bridges, in: in, out: out, class: class, workers: workers}
	e.phvs = make([][]*PHV, workers)
	for i := range e.phvs {
		e.phvs[i] = make([]*PHV, len(progs))
		for k, p := range progs {
			e.phvs[i][k] = p.Layout.NewPHV()
		}
	}
	return e
}

// Workers returns the shard count.
func (e *Engine) Workers() int { return e.workers }

// RunBatch pushes every job through the program concurrently and returns
// the results in job order. Calls must not overlap: the engine owns one
// PHV per shard and a second concurrent batch would race on them (one
// engine per goroutine, or one RunBatch at a time).
func (e *Engine) RunBatch(jobs []Job) []Result {
	res := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return res
	}
	// One flat output buffer per batch, subsliced per packet: shards
	// write disjoint job indices, so the backing array is race free and
	// the hot loop stays allocation free.
	outs := make([]int32, len(jobs)*len(e.out))
	if e.workers == 1 || len(jobs) == 1 {
		e.runShard(0, jobs, res, outs, sequentialIdx(len(jobs)))
		return res
	}
	// Shard by flow hash, preserving batch order within each shard.
	shards := make([][]int, e.workers)
	for i := range jobs {
		s := int(jobs[i].Hash % uint32(e.workers))
		shards[s] = append(shards[s], i)
	}
	var wg sync.WaitGroup
	for s := 0; s < e.workers; s++ {
		if len(shards[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.runShard(s, jobs, res, outs, shards[s])
		}(s)
	}
	wg.Wait()
	return res
}

// runShard processes the given job indices in order on shard s's PHVs,
// chaining each packet through every program of the pipeline. outs is
// the batch-wide flat output buffer (len(jobs) × len(e.out)).
func (e *Engine) runShard(s int, jobs []Job, res []Result, outs []int32, idx []int) {
	phvs := e.phvs[s]
	w := len(e.out)
	for _, i := range idx {
		phv := phvs[0]
		phv.Reset()
		for d, f := range e.in {
			phv.Set(f, jobs[i].In[d])
		}
		e.progs[0].Process(phv)
		for k := 1; k < len(e.progs); k++ {
			next := phvs[k]
			next.Reset()
			br := &e.bridges[k-1]
			for b, from := range br.From {
				next.Set(br.To[b], phv.Get(from))
			}
			e.progs[k].Process(next)
			phv = next
		}
		out := outs[i*w : (i+1)*w : (i+1)*w]
		for k, f := range e.out {
			out[k] = phv.Get(f)
		}
		res[i] = Result{Class: int(phv.Get(e.class)), Outs: out}
	}
}

func sequentialIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
