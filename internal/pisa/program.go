package pisa

import (
	"fmt"
	"sort"
	"strings"
)

// Stage is one physical MAT stage holding the tables placed into it.
type Stage struct {
	Tables []*Table
}

// Program is a compiled pipeline: a PHV layout, stages of tables, and
// stateful registers.
type Program struct {
	Name      string
	Layout    *Layout
	Stages    []*Stage
	Registers []*Register
	Cap       Capacity

	// regArena backs every register after CompactRegisters: one
	// contiguous slab, shard-partitioned so each engine worker's cells
	// are a contiguous bank.
	regArena  []int32
	regShards int
}

// NewProgram creates an empty program against the given capacity.
func NewProgram(name string, layout *Layout, cap Capacity) *Program {
	return &Program{Name: name, Layout: layout, Cap: cap}
}

// AddRegister appends a stateful register and returns its index.
func (p *Program) AddRegister(r *Register) int {
	p.Registers = append(p.Registers, r)
	return len(p.Registers) - 1
}

// Place appends table t to stage idx, growing the pipeline as needed.
// Placement also precomputes the table's per-field width masks so the
// per-packet lookup path never recomputes them.
func (p *Program) Place(stage int, t *Table) {
	for len(p.Stages) <= stage {
		p.Stages = append(p.Stages, &Stage{})
	}
	t.prepare()
	p.Stages[stage].Tables = append(p.Stages[stage].Tables, t)
}

// Process runs one packet's PHV through every stage in order.
func (p *Program) Process(phv *PHV) {
	for _, st := range p.Stages {
		for _, t := range st.Tables {
			t.apply(phv, p.Registers)
		}
	}
}

// StageUsage is the resource consumption of one stage.
type StageUsage struct {
	SRAMBits int
	TCAMBits int
	BusBits  int
	Tables   int
}

// Resources summarises a program's hardware consumption.
type Resources struct {
	Stages      int
	PHVBits     int
	PerStage    []StageUsage
	SRAMBits    int // total, incl. registers
	TCAMBits    int
	RegBits     int // stateful SRAM subtotal
	PeakBusBits int
}

// SRAMFrac returns total SRAM use as a fraction of pipeline capacity.
func (r *Resources) SRAMFrac(c Capacity) float64 {
	return float64(r.SRAMBits) / float64(c.SRAMBitsPerStage*c.Stages)
}

// TCAMFrac returns total TCAM use as a fraction of pipeline capacity.
func (r *Resources) TCAMFrac(c Capacity) float64 {
	return float64(r.TCAMBits) / float64(c.TCAMBitsPerStage*c.Stages)
}

// BusFrac returns the peak per-stage action-data-bus use as a fraction
// of the bus width — the binding constraint on data transfer.
func (r *Resources) BusFrac(c Capacity) float64 {
	return float64(r.PeakBusBits) / float64(c.BusBits)
}

// Resources computes the program's consumption. Registers are charged to
// stage 0's SRAM column conceptually but reported separately in RegBits
// (and included in SRAMBits, as register arrays occupy stage SRAM).
func (p *Program) Resources() Resources {
	res := Resources{Stages: len(p.Stages), PHVBits: p.Layout.TotalBits()}
	for _, st := range p.Stages {
		u := StageUsage{Tables: len(st.Tables)}
		for _, t := range st.Tables {
			u.SRAMBits += t.SRAMBits()
			u.TCAMBits += t.TCAMBits()
			u.BusBits += t.DataWidthBits
		}
		res.PerStage = append(res.PerStage, u)
		res.SRAMBits += u.SRAMBits
		res.TCAMBits += u.TCAMBits
		if u.BusBits > res.PeakBusBits {
			res.PeakBusBits = u.BusBits
		}
	}
	for _, r := range p.Registers {
		res.RegBits += r.SRAMBits()
		res.SRAMBits += r.SRAMBits()
	}
	return res
}

// ResetState restores every stateful register to its initial value —
// used between replay runs so a program can be re-executed from a clean
// flow table. Compiled plans alias the same registers, so resetting the
// program resets them too.
func (p *Program) ResetState() {
	for _, r := range p.Registers {
		r.Reset()
	}
}

// CompactRegisters repacks every register of the program into one
// contiguous arena, banked shard-major for the given shard count (see
// Register.rebase): the flow-state an engine worker touches becomes one
// dense range of one slab instead of scattered strides across
// per-register allocations. Logical contents are preserved, so it is
// safe to call between batches; engine construction calls it with the
// session's shard count. Idempotent for an unchanged shard count.
func (p *Program) CompactRegisters(shards int) {
	if len(p.Registers) == 0 {
		return
	}
	if p.regArena != nil && p.regShards == shards {
		return
	}
	total := 0
	for _, r := range p.Registers {
		total += r.Size
	}
	arena := make([]int32, total)
	off := 0
	for _, r := range p.Registers {
		r.rebase(arena[off:off+r.Size:off+r.Size], shards)
		off += r.Size
	}
	p.regArena = arena
	p.regShards = shards
}

// Validate checks the program against its capacity: stage count, per-
// stage SRAM/TCAM, bus width, PHV size, intra-stage write hazards
// (two tables in one stage writing the same field, or one reading a
// field another writes — PISA stages execute in parallel), and the
// one-read-modify-write-per-register-per-packet rule.
func (p *Program) Validate() error {
	var errs []string
	errs = append(errs, p.validateRMW()...)
	if len(p.Stages) > p.Cap.Stages {
		errs = append(errs, fmt.Sprintf("uses %d stages, capacity %d", len(p.Stages), p.Cap.Stages))
	}
	if phv := p.Layout.TotalBits(); phv > p.Cap.PHVBits {
		errs = append(errs, fmt.Sprintf("PHV %d bits exceeds %d", phv, p.Cap.PHVBits))
	}
	// Register SRAM is spread evenly across the pipeline stages, as the
	// hardware allocator does with large stateful arrays.
	regBits := 0
	for _, r := range p.Registers {
		regBits += r.SRAMBits()
	}
	regPerStage := 0
	if p.Cap.Stages > 0 {
		regPerStage = regBits / p.Cap.Stages
	}
	for i, st := range p.Stages {
		var sram, tcam, bus int
		writes := map[FieldID]string{}
		reads := map[FieldID]string{}
		for _, t := range st.Tables {
			sram += t.SRAMBits()
			tcam += t.TCAMBits()
			bus += t.DataWidthBits
			for _, op := range t.Action {
				switch op.Kind {
				case OpSet, OpSetData:
					// pure writes
				default:
					reads[op.A] = t.Name
					reads[op.B] = t.Name
				}
				if !op.writesDst() {
					continue
				}
				if prev, dup := writes[op.Dst]; dup && prev != t.Name {
					errs = append(errs, fmt.Sprintf("stage %d: tables %q and %q both write %s",
						i, prev, t.Name, p.Layout.Name(op.Dst)))
				}
				writes[op.Dst] = t.Name
			}
			for _, f := range t.KeyFields {
				reads[f] = t.Name
			}
		}
		for f, wt := range writes {
			if rt, ok := reads[f]; ok && rt != wt {
				errs = append(errs, fmt.Sprintf("stage %d: table %q reads %s written by %q in same stage",
					i, rt, p.Layout.Name(f), wt))
			}
		}
		sram += regPerStage
		if sram > p.Cap.SRAMBitsPerStage {
			errs = append(errs, fmt.Sprintf("stage %d SRAM %d bits exceeds %d", i, sram, p.Cap.SRAMBitsPerStage))
		}
		if tcam > p.Cap.TCAMBitsPerStage {
			errs = append(errs, fmt.Sprintf("stage %d TCAM %d bits exceeds %d", i, tcam, p.Cap.TCAMBitsPerStage))
		}
		if bus > p.Cap.BusBits {
			errs = append(errs, fmt.Sprintf("stage %d action data bus %d bits exceeds %d", i, bus, p.Cap.BusBits))
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("pisa: program %q invalid:\n  %s", p.Name, strings.Join(errs, "\n  "))
	}
	return nil
}

// regUser is one table's claim on a register's per-packet RMW slot.
type regUser struct {
	table string
	gate  *Gate
	stage int
}

// validateRMW enforces the hardware's one-read-modify-write-per-
// register-per-packet rule statically. Every register op (including
// pure loads) occupies the register's single stateful-ALU access for
// the packet, so:
//
//   - within one table's action, a register may appear in at most one
//     op (the simulator would happily run two, the hardware cannot);
//   - across tables, a register may be shared only when every accessing
//     table is predicated by gateways the validator can prove mutually
//     exclusive: equality gates on one common field with pairwise
//     distinct values (the shape the extraction compiler emits — window
//     positions and packet directions), where the gate field is not
//     rewritten once the first sharing table's stage is reached (a
//     rewrite between the gated stages could satisfy both gates for
//     one packet).
func (p *Program) validateRMW() []string {
	var errs []string
	users := map[int][]regUser{}
	for si, st := range p.Stages {
		for _, t := range st.Tables {
			seen := map[int]bool{}
			for i := range t.Action {
				r := t.Action[i].regAccess()
				if r < 0 {
					continue
				}
				if r >= len(p.Registers) {
					errs = append(errs, fmt.Sprintf("table %q references register %d, program has %d", t.Name, r, len(p.Registers)))
					continue
				}
				if seen[r] {
					errs = append(errs, fmt.Sprintf("table %q accesses register %q twice in one action (one RMW per register per packet)",
						t.Name, p.Registers[r].Name))
					continue
				}
				seen[r] = true
				users[r] = append(users[r], regUser{table: t.Name, gate: t.Gate, stage: si})
			}
		}
	}
	for r, us := range users {
		if len(us) < 2 {
			continue
		}
		exclusive := true
		field := FieldID(-1)
		vals := map[int32]bool{}
		minStage, maxStage := len(p.Stages), 0
		for _, u := range us {
			if u.gate == nil || u.gate.Op != GateEQ {
				exclusive = false
				break
			}
			if field < 0 {
				field = u.gate.Field
			} else if u.gate.Field != field {
				exclusive = false
				break
			}
			if vals[u.gate.Value] {
				exclusive = false
				break
			}
			vals[u.gate.Value] = true
			if u.stage < minStage {
				minStage = u.stage
			}
			if u.stage > maxStage {
				maxStage = u.stage
			}
		}
		// The equality gates are only provably exclusive if the gate
		// field keeps one value across the sharing span: a write in
		// [first sharing stage, last sharing stage) could satisfy a
		// second gate for the same packet. Writes before the span
		// rewrite the value every gate sees, writes at or after the
		// last sharing stage can no longer enable another access
		// (gateways evaluate at stage entry).
		if exclusive {
			for si := minStage; si < maxStage && exclusive; si++ {
				for _, t := range p.Stages[si].Tables {
					for i := range t.Action {
						if t.Action[i].writesDst() && t.Action[i].Dst == field {
							exclusive = false
							break
						}
					}
				}
			}
		}
		if !exclusive {
			names := make([]string, len(us))
			for i, u := range us {
				names[i] = u.table
			}
			sort.Strings(names)
			errs = append(errs, fmt.Sprintf("register %q accessed by tables %s without mutually exclusive equality gates (one RMW per register per packet)",
				p.Registers[r].Name, strings.Join(names, ", ")))
		}
	}
	return errs
}

// Summary returns a human-readable resource report.
func (p *Program) Summary() string {
	r := p.Resources()
	var b strings.Builder
	fmt.Fprintf(&b, "program %q: %d stages, PHV %d/%d bits\n", p.Name, r.Stages, r.PHVBits, p.Cap.PHVBits)
	fmt.Fprintf(&b, "  SRAM %.2f%%  TCAM %.2f%%  bus(peak) %.2f%%  stateful %d bits\n",
		100*r.SRAMFrac(p.Cap), 100*r.TCAMFrac(p.Cap), 100*r.BusFrac(p.Cap), r.RegBits)
	for i, u := range r.PerStage {
		if u.Tables == 0 {
			continue
		}
		fmt.Fprintf(&b, "  stage %2d: %d tables, SRAM %d, TCAM %d, bus %d\n", i, u.Tables, u.SRAMBits, u.TCAMBits, u.BusBits)
	}
	return b.String()
}
