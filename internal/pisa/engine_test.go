package pisa

import (
	"math/rand"
	"testing"
)

// engineTestProg builds a two-stage program: a ternary bucket classifier
// into `class`, and a doubling ALU op into `out`.
func engineTestProg(t *testing.T) (*Program, FieldID, FieldID, FieldID) {
	t.Helper()
	var l Layout
	k := l.MustAdd("k", 8)
	out := l.MustAdd("out", 32)
	class := l.MustAdd("class", 8)
	prog := NewProgram("engine-test", &l, Tofino2)
	prog.Place(0, &Table{
		Name: "range", Kind: MatchTernary,
		KeyFields: []FieldID{k}, KeyWidths: []int{8},
		Entries: []Entry{
			{Key: []uint32{0x00}, Mask: []uint32{0x80}, Data: []int32{0}}, // [0,127]
			{Key: []uint32{0x00}, Mask: []uint32{0x00}, Data: []int32{1}}, // rest
		},
		Action:        []Op{{Kind: OpSetData, Dst: class, DataIdx: 0}},
		DataWidthBits: 8,
	})
	prog.Place(1, &Table{
		Name: "double", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpAdd, Dst: out, A: k, B: k}},
	})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, k, out, class
}

func TestEngineMatchesSequential(t *testing.T) {
	prog, k, out, class := engineTestProg(t)
	rng := rand.New(rand.NewSource(9))
	jobs := make([]Job, 257)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
	}
	// Sequential reference.
	want := make([]Result, len(jobs))
	phv := prog.Layout.NewPHV()
	for i, j := range jobs {
		phv.Reset()
		phv.Set(k, j.In[0])
		prog.Process(phv)
		want[i] = Result{Class: int(phv.Get(class)), Outs: []int32{phv.Get(out)}}
	}
	for _, mode := range []ExecMode{ExecCompiled, ExecInterpret} {
		for _, workers := range []int{0, 1, 2, 3, 8} {
			e := NewChainEngineMode([]*Program{prog}, nil, []FieldID{k}, []FieldID{out}, class, workers, mode)
			if workers > 0 && e.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", e.Workers(), workers)
			}
			if e.Mode() != mode {
				t.Fatalf("Mode() = %v, want %v", e.Mode(), mode)
			}
			got := e.RunBatch(jobs)
			if len(got) != len(want) {
				t.Fatalf("mode=%v workers=%d: %d results, want %d", mode, workers, len(got), len(want))
			}
			for i := range got {
				if got[i].Class != want[i].Class || got[i].Outs[0] != want[i].Outs[0] {
					t.Fatalf("mode=%v workers=%d job %d: got %+v, want %+v", mode, workers, i, got[i], want[i])
				}
			}
			// Batches must be repeatable on the same engine (PHV and
			// shard-buffer reuse across RunBatch calls).
			again := e.RunBatch(jobs)
			for i := range again {
				if again[i].Class != got[i].Class || again[i].Outs[0] != got[i].Outs[0] {
					t.Fatalf("mode=%v workers=%d: second batch diverged at %d", mode, workers, i)
				}
			}
			e.Close()
			e.Close() // idempotent
		}
	}
}

// TestEngineRunStream checks the streaming entry point: results arrive
// in submission order and match the batched replay, across chunk
// boundaries and worker counts.
func TestEngineRunStream(t *testing.T) {
	prog, k, out, class := engineTestProg(t)
	rng := rand.New(rand.NewSource(23))
	// More jobs than one stream chunk, to cross a micro-batch boundary.
	jobs := make([]Job, streamChunk+513)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(256))}}
	}
	for _, workers := range []int{1, 4} {
		e := NewEngine(prog, []FieldID{k}, []FieldID{out}, class, workers)
		want := e.RunBatch(jobs)
		in := make(chan Job)
		outc := make(chan Result, 64)
		go func() {
			for _, j := range jobs {
				in <- j
			}
			close(in)
		}()
		var got []Result
		done := make(chan int)
		go func() { done <- e.RunStream(in, outc) }()
		for r := range outc {
			got = append(got, r)
		}
		if n := <-done; n != len(jobs) {
			t.Fatalf("workers=%d: RunStream count %d, want %d", workers, n, len(jobs))
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: stream %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Class != want[i].Class || got[i].Outs[0] != want[i].Outs[0] {
				t.Fatalf("workers=%d stream result %d: got %+v, want %+v", workers, i, got[i], want[i])
			}
		}
		e.Close()
	}
}

// TestEngineClampsWorkersToRegisterSizes checks the stateful-program
// guard: the pool shrinks until it divides every register array size,
// so shards own disjoint hash-congruent cell sets.
func TestEngineClampsWorkersToRegisterSizes(t *testing.T) {
	var l Layout
	k := l.MustAdd("k", 8)
	prog := NewProgram("regs", &l, Tofino2)
	r6, err := NewRegister("r6", 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRegister("r4", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog.AddRegister(r6)
	prog.AddRegister(r4)
	// Largest w ≤ 8 dividing both 6 and 4 is 2.
	e := NewEngine(prog, []FieldID{k}, nil, k, 8)
	if e.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", e.Workers())
	}
	e.Close()
	// Register-free programs keep the requested pool.
	free := NewProgram("stateless", &l, Tofino2)
	e = NewEngine(free, []FieldID{k}, nil, k, 8)
	if e.Workers() != 8 {
		t.Fatalf("stateless Workers() = %d, want 8", e.Workers())
	}
	e.Close()
}

// TestChainEngineMatchesSingle runs a computation split across two
// bridged programs and checks the chain engine agrees with the same
// computation emitted as one program, across worker counts.
func TestChainEngineMatchesSingle(t *testing.T) {
	// Single program: out = (a + b) << 1, class = 1 when out >= 16.
	var ls Layout
	a := ls.MustAdd("a", 8)
	b := ls.MustAdd("b", 8)
	sum := ls.MustAdd("sum", 16)
	out := ls.MustAdd("out", 16)
	class := ls.MustAdd("class", 8)
	sixteen := ls.MustAdd("sixteen", 16)
	single := NewProgram("single", &ls, Tofino2)
	single.Place(0, &Table{Name: "add", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpAdd, Dst: sum, A: a, B: b}, {Kind: OpSet, Dst: sixteen, Imm: 16}}})
	single.Place(1, &Table{Name: "shift", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpShl, Dst: out, A: sum, Imm: 1}}})
	single.Place(2, &Table{Name: "cls", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpSelGE, Dst: class, A: out, B: sixteen, Imm: 1}}})
	if err := single.Validate(); err != nil {
		t.Fatal(err)
	}

	// Chain: pipe 0 computes the sum, pipe 1 receives it over a bridge
	// and finishes.
	var l0 Layout
	a0 := l0.MustAdd("a", 8)
	b0 := l0.MustAdd("b", 8)
	sum0 := l0.MustAdd("sum", 16)
	p0 := NewProgram("pipe0", &l0, Tofino2)
	p0.Place(0, &Table{Name: "add", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpAdd, Dst: sum0, A: a0, B: b0}}})
	var l1 Layout
	br := l1.MustAdd("br", 16)
	out1 := l1.MustAdd("out", 16)
	class1 := l1.MustAdd("class", 8)
	sixteen1 := l1.MustAdd("sixteen", 16)
	p1 := NewProgram("pipe1", &l1, Tofino2)
	p1.Place(0, &Table{Name: "shift", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpShl, Dst: out1, A: br, Imm: 1}, {Kind: OpSet, Dst: sixteen1, Imm: 16}}})
	p1.Place(1, &Table{Name: "cls", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpSelGE, Dst: class1, A: out1, B: sixteen1, Imm: 1}}})
	for _, p := range []*Program{p0, p1} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(17))
	jobs := make([]Job, 301)
	for i := range jobs {
		jobs[i] = Job{Hash: rng.Uint32(), In: []int32{int32(rng.Intn(32)), int32(rng.Intn(32))}}
	}
	refEng := NewEngine(single, []FieldID{a, b}, []FieldID{out}, class, 1)
	ref := refEng.RunBatch(jobs)
	refEng.Close()
	for _, mode := range []ExecMode{ExecCompiled, ExecInterpret} {
		for _, workers := range []int{1, 2, 4, 8} {
			chain := NewChainEngineMode([]*Program{p0, p1},
				[]Bridge{{From: []FieldID{sum0}, To: []FieldID{br}}},
				[]FieldID{a0, b0}, []FieldID{out1}, class1, workers, mode)
			got := chain.RunBatch(jobs)
			for i := range got {
				if got[i].Class != ref[i].Class || got[i].Outs[0] != ref[i].Outs[0] {
					t.Fatalf("mode=%v workers=%d job %d: chain %+v, single %+v", mode, workers, i, got[i], ref[i])
				}
			}
			chain.Close()
		}
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	prog, k, out, class := engineTestProg(t)
	e := NewEngine(prog, []FieldID{k}, []FieldID{out}, class, 4)
	defer e.Close()
	if res := e.RunBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch: %d results", len(res))
	}
}

// TestEngineShardedRegisterConsistency checks the per-flow guarantee: a
// program accumulating into a register cell indexed by the flow slot
// produces the same final register state batched as sequentially,
// because all packets of one flow land on one shard in order.
func TestEngineShardedRegisterConsistency(t *testing.T) {
	const workers = 4
	const slots = workers // slot i is only touched by shard i%workers
	var l Layout
	slot := l.MustAdd("slot", 16)
	v := l.MustAdd("v", 32)
	acc := l.MustAdd("acc", 32)
	prog := NewProgram("flows", &l, Tofino2)
	reg, err := NewRegister("state", 32, slots)
	if err != nil {
		t.Fatal(err)
	}
	ri := prog.AddRegister(reg)
	prog.Place(0, &Table{
		Name: "accumulate", Kind: MatchNone, DefaultData: []int32{},
		Action: []Op{{Kind: OpRegAdd, Reg: ri, Dst: acc, A: slot, B: v}},
	})
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	jobs := make([]Job, 400)
	for i := range jobs {
		s := uint32(rng.Intn(slots))
		jobs[i] = Job{Hash: s, In: []int32{int32(s), int32(rng.Intn(100))}}
	}
	// Sequential reference register state.
	phv := prog.Layout.NewPHV()
	for _, j := range jobs {
		phv.Reset()
		phv.Set(slot, j.In[0])
		phv.Set(v, j.In[1])
		prog.Process(phv)
	}
	want := make([]int32, slots)
	for s := 0; s < slots; s++ {
		want[s] = reg.Get(s)
	}
	reg.Reset()

	e := NewEngine(prog, []FieldID{slot, v}, []FieldID{acc}, acc, workers)
	defer e.Close()
	e.RunBatch(jobs)
	for s := 0; s < slots; s++ {
		if reg.Get(s) != want[s] {
			t.Fatalf("slot %d: batched %d, sequential %d", s, reg.Get(s), want[s])
		}
	}
}
