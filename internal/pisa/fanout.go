package pisa

import "sync"

// Fanout is the physically-shared-extraction session group: ONE
// packet-configured extraction engine owns the flow-state registers and
// executes each packet's register RMWs exactly once, and every
// materialised feature window is handed to each subscribed classifier
// session as an ordinary job batch. Subscribers are pure-combinational
// sessions — window in-fields to class/outputs, no register bank of
// their own — so they keep their individual mailbox rings, stride
// weights, shed policies and per-session stats on the shared scheduler,
// while the per-packet stateful work that N private preludes would
// duplicate is paid once.
//
// The fan-out is bit-identical to running each subscriber's fused
// private-prelude engine on the same trace: the extraction program is
// the same emitted prelude, packets shard by the same flow hash, and
// each fired window reaches every subscriber with the same values a
// fused pipe-0 readout would have produced in place.
type Fanout struct {
	ext *Engine

	// mu serializes RunPackets against Subscribe/Detach/Swap; the
	// extraction engine's single-outstanding-run contract is inherited
	// through it.
	mu   sync.Mutex
	subs []*Engine
	jobs []Job // reused window-job staging, aliasing ext's fire buffers
}

// NewFanout wraps a packet-configured extraction engine (built from a
// standalone extraction emission via ConfigurePackets) as the shared
// machine of a fan-out group.
func NewFanout(ext *Engine) *Fanout {
	if ext.meta == nil {
		panic("pisa: NewFanout needs a packet-configured extraction engine")
	}
	return &Fanout{ext: ext}
}

// Extraction returns the shared extraction engine (stats, ResetState).
func (f *Fanout) Extraction() *Engine { return f.ext }

// Subscribe attaches a classifier session: every window the shared
// machine fires from now on is also submitted to e. The subscriber must
// consume the extraction program's output fields as its input fields
// (core.SharedExtraction emissions guarantee this) and must be
// stateless — a register bank on a subscriber would see only fired
// windows, not every packet, and silently diverge from its private
// form.
func (f *Fanout) Subscribe(e *Engine) {
	for _, p := range e.progs {
		if len(p.Registers) > 0 {
			panic("pisa: fan-out subscriber " + p.Name + " has registers; subscribers must be pure-combinational")
		}
	}
	f.mu.Lock()
	f.subs = append(f.subs, e)
	f.mu.Unlock()
}

// Detach removes a subscriber without touching the shared flow state —
// co-subscribers keep classifying against the registers exactly as if
// the departed model were still attached. Only when the LAST subscriber
// leaves is the shared bank reset (returning true), so the next tenant
// starts from a fresh flow table instead of inheriting half-filled
// windows. Detaching an engine that is not subscribed is a no-op.
func (f *Fanout) Detach(e *Engine) (last bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, s := range f.subs {
		if s == e {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			break
		}
	}
	if len(f.subs) == 0 {
		f.ext.ResetState()
		return true
	}
	return false
}

// SwapSubscriber replaces old with next in place (same fan-out slot),
// leaving the shared registers and every co-subscriber untouched — the
// live-swap hook: a model's new version attaches exactly where its old
// one sat. Reports whether old was subscribed.
func (f *Fanout) SwapSubscriber(old, next *Engine) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, s := range f.subs {
		if s == old {
			f.subs[i] = next
			return true
		}
	}
	return false
}

// Subscribers returns a snapshot of the attached sessions, in
// subscription order.
func (f *Fanout) Subscribers() []*Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Engine(nil), f.subs...)
}

// RunPackets replays a raw-packet batch through the shared extraction
// machine ONCE — every packet pays its register RMWs exactly once, on
// the extraction session — and fans each fired window out to every
// subscriber as one job batch. Results are returned per subscriber (in
// subscription order), each in packet order with Pkt indexing into
// pkts; a subscriber's Outs alias its batch arena and stay valid until
// its next submission, matching RunBatch semantics. Flow state persists
// across calls (ResetState on the extraction engine starts a fresh
// trace); calls must not overlap.
func (f *Fanout) RunPackets(pkts []PacketIn) [][]PacketResult {
	_, out := f.RunPacketsAligned(pkts)
	return out
}

// RunPacketsAligned is RunPackets plus the subscriber snapshot the
// result rows align with, taken atomically with the run — callers that
// race Subscribe/Detach use it to find their own session's row.
func (f *Fanout) RunPacketsAligned(pkts []PacketIn) ([]*Engine, [][]PacketResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	subs := append([]*Engine(nil), f.subs...)
	fires := f.ext.RunPackets(pkts)
	out := make([][]PacketResult, len(f.subs))
	if len(fires) == 0 {
		return subs, out
	}
	// The shared jobs alias the extraction engine's fire staging: stable
	// until its NEXT RunPackets, and every subscriber batch completes
	// below, inside this call.
	jobs := f.jobs[:0]
	for _, r := range fires {
		jobs = append(jobs, Job{Hash: pkts[r.Pkt].Hash, In: r.Outs})
	}
	f.jobs = jobs
	// Submit to ALL subscribers before waiting on any: the scheduler
	// serves the sessions concurrently under its stride weights.
	pend := make([]*Pending, len(f.subs))
	for i, sub := range f.subs {
		pend[i] = sub.SubmitBatch(jobs)
	}
	for i, p := range pend {
		res := p.Wait()
		rs := make([]PacketResult, len(res))
		for k := range res {
			rs[k] = PacketResult{Pkt: fires[k].Pkt, Class: res[k].Class, Outs: res[k].Outs}
		}
		out[i] = rs
	}
	return subs, out
}
