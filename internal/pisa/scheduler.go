package pisa

import (
	"context"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// Scheduler is a shared worker pool with a fixed budget that serves any
// number of registered engines — the execution substrate for multi-model
// serving. Each registered Engine (one per emitted program) shards its
// batches by flow hash exactly as before, but instead of owning a
// private pool it enqueues its shard tasks on the pool; the workers
// drain them with weighted fair scheduling (stride scheduling: the
// session with the smallest virtual pass is served next, and serving
// advances its pass by packets/weight), so a model replaying a 100×
// larger trace cannot starve its co-resident models.
//
// The task path is lock-free. Each worker's run queue is a bounded ring
// of single-task mailboxes, one slot per registered session (an engine
// runs one batch at a time and routes shard s to worker
// (s + session offset) mod budget — its affinity map — so a session can
// hold at most ONE queued task per worker, and the slot count is exactly
// the session count). Producers publish a task by writing the slot and
// release-storing its state EMPTY→QUEUED; consumers claim it with a
// single CAS QUEUED→EMPTY. Work stealing is the same CAS executed
// against a victim worker's slots, so an idle worker never takes a lock
// to drain a loaded peer — there are no locks to take. The stable
// affinity map means a session's shards land on the same workers batch
// after batch, keeping its register banks cache-hot on one core unless
// a steal rebalances a transient.
//
// A FIFO ring was rejected deliberately: fair draining needs the
// min-pass selection over the sessions queued at a worker, and a FIFO
// pop order would silently round-robin weighted sessions. The
// slot-per-session ring keeps claims O(sessions) — a handful of atomic
// loads — while preserving exact stride scheduling.
//
// Idle workers park on a per-worker eventcount (an atomic parked flag
// plus a 1-buffered wake channel). Publishing and parking are both
// sequentially-consistent atomic operations, which closes the lost
// wake-up window: a producer that misses the parked flag is guaranteed
// the parking worker's final rescan sees the published slot.
//
// Correctness is inherited from the engine's sharding contract: one
// batch produces at most one task per shard, an engine runs one batch at
// a time, and a shard's task is executed by exactly one worker — so all
// accesses to one flow's registers still happen in arrival order on a
// single goroutine, and results are bit-identical to a solo engine.
//
// A solo scheduler (what NewEngine/NewChainEngineMode construct
// internally) serves exactly one session and preserves the historical
// Engine API and behaviour.
type Scheduler struct {
	budget  int
	workers []schedWorker

	mu       sync.Mutex                // registration writes only; never held on the task path
	sessions atomic.Pointer[[]*Engine] // copy-on-write snapshot, read lock-free by claim scans
	nextOff  int                       // round-robin shard→worker offset for new sessions

	closed    atomic.Bool
	workerWG  sync.WaitGroup
	closeOnce sync.Once

	// Watchdog state (StartWatchdog): a monitor goroutine that detects
	// workers stuck executing one task past a threshold and wakes idle
	// peers to steal the stalled worker's queue.
	watchOnce sync.Once
	watchStop chan struct{}
	watchWG   sync.WaitGroup
	stalls    atomic.Uint64
}

// schedWorker is one pool slot: its own stride clock, its own stall
// stamp and its own parking eventcount. The run queue itself lives in
// the sessions' slot arrays (see workerSlot); the worker only scans and
// CASes those. Padded so two workers' clocks never share a cache line.
type schedWorker struct {
	id    int
	idKey string // decimal id, precomputed for faultinject probes and pprof labels
	// vtime is the largest START pass dequeued on this worker's clock
	// (start-time fair queueing's virtual time), stored as float64 bits.
	vtime atomic.Uint64
	// taskStart is the UnixNano stamp of the task currently executing on
	// this worker (0 when idle) — the watchdog's stall signal. Written
	// only by the worker goroutine, read by the watchdog.
	taskStart atomic.Int64
	// parked + wake form the eventcount: the worker publishes parked,
	// rescans once, then blocks on wake; producers that observe parked
	// drop a token in. Spurious tokens only cost one extra rescan.
	parked atomic.Bool
	wake   chan struct{} // buffered(1)
	_      [64]byte      // keep neighbouring workers off this line
}

// Slot states of a session's per-worker mailbox. A claim (owner pop or
// steal alike) is CAS(QUEUED→EMPTY); the claimed task runs outside the
// queue, which is exactly the visibility the shed policy's queue-depth
// probe wants (running ≠ queued).
const (
	slotEmpty uint32 = iota
	slotQueued
)

// workerSlot is one cell of a worker's run ring: session × worker →
// at most one queued task. state and pass are the contended words
// (scanned by every claimer); they get the leading cache line, while
// task is written once per batch by the producer and read once by the
// claimer. The publish/claim protocol:
//
//	producer: write task (plain) → store pass → store state=QUEUED (release)
//	claimer:  CAS state QUEUED→EMPTY (acquire) → read task (plain)
//
// The engine's single-outstanding-batch contract guarantees the
// producer never rewrites task before the claimer's batch-completion
// signal, so the plain accesses are ordered by the state atomics.
type workerSlot struct {
	state atomic.Uint32
	_     [4]byte
	pass  atomic.Uint64 // stride pass on the owning worker's clock (float64 bits)
	_     [48]byte
	task  shardTask
}

// NewScheduler starts a shared pool of budget workers (≤ 0 selects
// GOMAXPROCS). Engines register onto it via Scheduler.NewChainEngine
// (or core's Emitted.NewEngineOn); Close stops the pool.
func NewScheduler(budget int) *Scheduler {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{budget: budget, workers: make([]schedWorker, budget)}
	empty := []*Engine{}
	s.sessions.Store(&empty)
	for i := range s.workers {
		w := &s.workers[i]
		w.id = i
		w.idKey = strconv.Itoa(i)
		w.wake = make(chan struct{}, 1)
		s.workerWG.Add(1)
		go s.worker(w)
	}
	return s
}

// Budget returns the worker-pool size shared by every registered engine.
func (s *Scheduler) Budget() int { return s.budget }

// NewChainEngine registers a new engine session over a chain of
// programs (see NewChainEngineMode for the chain contract). name labels
// the session in Stats; weight scales its fair share of the pool (< 1
// is clamped to 1). The engine's shard count is the largest value ≤ the
// scheduler budget that divides every register array size of the chain.
func (s *Scheduler) NewChainEngine(name string, progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, weight int, mode ExecMode) *Engine {
	shards := reduceShards(s.budget, progs)
	return s.newSession(name, weight, progs, bridges, in, out, class, shards, mode)
}

// Close stops the worker pool and waits for the workers to exit. All
// registered engines must have finished their runs; Close is idempotent.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		if s.watchStop != nil {
			close(s.watchStop)
			s.watchWG.Wait()
		}
		s.closed.Store(true)
		for i := range s.workers {
			select {
			case s.workers[i].wake <- struct{}{}:
			default:
			}
		}
		s.workerWG.Wait()
	})
}

// Stats snapshots the per-model counters of every registered session,
// in registration order.
func (s *Scheduler) Stats() []EngineStats {
	sessions := *s.sessions.Load()
	stats := make([]EngineStats, len(sessions))
	for i, e := range sessions {
		stats[i] = e.Stats()
	}
	return stats
}

// register adds a session and builds its affinity map: shard s runs on
// worker (s + offset) mod budget, with offsets handed out round-robin
// so co-resident single-shard (or few-shard) sessions land on different
// workers instead of piling onto worker 0. The map is stable for the
// session's lifetime — a shard's register bank stays cache-hot on one
// worker. Per-worker virtual passes start at zero and are caught up to
// each worker's clock on first enqueue, so a late-registered model
// cannot monopolise the pool.
func (s *Scheduler) register(e *Engine) {
	e.slots = make([]workerSlot, s.budget)
	e.stats = make([]statShard, s.budget+1) // +1: the submitter's slot (inline runs, sheds, depth samples)
	s.mu.Lock()
	off := s.nextOff
	s.nextOff = (s.nextOff + 1) % s.budget
	e.affinity = make([]int32, e.shards)
	for sh := range e.affinity {
		e.affinity[sh] = int32((sh + off) % s.budget)
	}
	old := *s.sessions.Load()
	cp := make([]*Engine, len(old)+1)
	copy(cp, old)
	cp[len(old)] = e
	s.sessions.Store(&cp)
	s.mu.Unlock()
}

func (s *Scheduler) unregister(e *Engine) {
	s.mu.Lock()
	old := *s.sessions.Load()
	cp := make([]*Engine, 0, len(old))
	for _, se := range old {
		if se != e {
			cp = append(cp, se)
		}
	}
	s.sessions.Store(&cp)
	s.mu.Unlock()
}

// publish routes one shard task to its affinity worker's mailbox and
// wakes that worker. The engine's single-outstanding-batch contract
// means the slot is EMPTY on entry, so the insert is a plain task write
// plus one release store — no lock, no contention with other sessions.
//
// A session rejoining after idling is floored at the worker's current
// fairness frontier: the minimum pass among the sessions already queued
// here, falling back to the last dequeued start tag when the queue is
// empty. A stale low pass must not buy the whole worker — but the floor
// must not erase the credit a high weight earned either, or every
// closed-loop submitter (which re-enqueues after each batch) degenerates
// to round-robin regardless of weight. The same scan samples the queue
// depth this task observed (other sessions already queued at its
// worker) into the session's depth histogram — the contention signal
// the SLO tuner and the metrics endpoint read.
func (s *Scheduler) publish(e *Engine, t shardTask) {
	if s.closed.Load() {
		panic("pisa: enqueue on a closed scheduler")
	}
	wid := int(e.affinity[t.shard])
	w := &s.workers[wid]
	sl := &e.slots[wid]
	floor := math.Float64frombits(w.vtime.Load())
	depth := 0
	for _, r := range *s.sessions.Load() {
		if r == e {
			continue
		}
		rs := &r.slots[wid]
		if rs.state.Load() != slotQueued {
			continue
		}
		depth++
		if p := math.Float64frombits(rs.pass.Load()); p < floor {
			floor = p
		}
	}
	if math.Float64frombits(sl.pass.Load()) < floor {
		sl.pass.Store(math.Float64bits(floor))
	}
	sl.task = t
	sl.state.Store(slotQueued)
	s.wakeWorker(w)
	e.noteDepth(depth)
}

// wakeWorker drops a token into a parked worker's eventcount. The
// non-blocking send makes duplicate wakes free: a pending token means a
// rescan is already owed.
func (s *Scheduler) wakeWorker(w *schedWorker) {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// wakeIdle wakes every parked worker so it can steal a task another
// worker has queued (sparse batches, watchdog re-routing).
func (s *Scheduler) wakeIdle() {
	for i := range s.workers {
		s.wakeWorker(&s.workers[i])
	}
}

// claimAt removes and returns the fairest queued session's task at
// worker wid (smallest virtual pass on that worker's clock), advancing
// the session's pass by packets/weight — stride scheduling with
// cost-proportional increments, so serving a 10 000-packet task costs a
// session 100× the credit of a 100-packet one. A weight-w session that
// keeps a task queued is therefore served w× for every serve of a
// weight-1 competitor.
//
// The claim itself is one CAS on the chosen slot; losing it (a peer
// claimed first) just rescans. Fairness accounting stays on the slot
// owner's clock whether the claimer is the owner or a stealer: the
// worker's virtual time is advanced to the claimed START tag (not its
// finish — flooring arrivals at a finish tag would charge them the
// departing session's whole stride, which round-robins closed-loop
// submitters no matter their weight).
func (s *Scheduler) claimAt(wid int) (*Engine, shardTask, bool) {
	w := &s.workers[wid]
	for {
		var best *Engine
		bestPass := 0.0
		for _, r := range *s.sessions.Load() {
			sl := &r.slots[wid]
			if sl.state.Load() != slotQueued {
				continue
			}
			if p := math.Float64frombits(sl.pass.Load()); best == nil || p < bestPass {
				best, bestPass = r, p
			}
		}
		if best == nil {
			return nil, shardTask{}, false
		}
		sl := &best.slots[wid]
		if !sl.state.CompareAndSwap(slotQueued, slotEmpty) {
			continue // lost the claim race; rescan
		}
		t := sl.task
		sl.task = shardTask{} // release buffer references
		// Re-read the pass after winning the claim: the scan's value may
		// be a stale snapshot if the slot turned over under us.
		p := math.Float64frombits(sl.pass.Load())
		for {
			v := w.vtime.Load()
			if math.Float64frombits(v) >= p || w.vtime.CompareAndSwap(v, math.Float64bits(p)) {
				break
			}
		}
		sl.pass.Store(math.Float64bits(p + float64(len(t.idx))/float64(best.weight.Load())))
		return best, t, true
	}
}

// steal scans the other workers' rings for a runnable task. Shards are
// mutually disjoint (distinct PHVs, distinct register cells), so any
// worker may run any queued task.
func (s *Scheduler) steal(self int) (*Engine, shardTask, bool) {
	for k := 1; k < s.budget; k++ {
		if e, t, ok := s.claimAt((self + k) % s.budget); ok {
			return e, t, true
		}
	}
	return nil, shardTask{}, false
}

// anyQueued reports whether any session holds a queued task anywhere in
// the pool — the parking worker's final rescan.
func (s *Scheduler) anyQueued() bool {
	for _, r := range *s.sessions.Load() {
		for i := range r.slots {
			if r.slots[i].state.Load() == slotQueued {
				return true
			}
		}
	}
	return false
}

// next returns the worker's next task: its own ring first (affinity),
// then a steal pass over its peers, then park on the worker's
// eventcount until a publish (or a wakeIdle sweep) drops a token. The
// parked-flag store, the rescan and the producer's publish are all
// sequentially consistent, so a publish concurrent with parking either
// sees the flag (and sends a token) or is seen by the rescan — the
// wake-up cannot be lost. ok is false when the scheduler is closed.
func (s *Scheduler) next(w *schedWorker) (*Engine, shardTask, bool) {
	for {
		if e, t, ok := s.claimAt(w.id); ok {
			return e, t, true
		}
		if s.closed.Load() {
			return nil, shardTask{}, false
		}
		if e, t, ok := s.steal(w.id); ok {
			return e, t, true
		}
		w.parked.Store(true)
		if s.anyQueued() || s.closed.Load() {
			w.parked.Store(false)
			continue
		}
		<-w.wake
		w.parked.Store(false)
	}
}

// sessionLabel names a session in pprof goroutine labels.
func sessionLabel(name string) string {
	if name == "" {
		return "solo"
	}
	return name
}

// worker is one pool goroutine: claim from the private ring (stealing
// when it runs dry), run each task, account it on this worker's stat
// shard. Parking on the worker-local eventcount when idle lets batch
// submitters run even at GOMAXPROCS=1. The one scheduling point kept is
// per BATCH: the worker that finishes a batch's last task closes the
// batch's done channel (the single submitter wake-up) and yields once
// so the blocked submitter is scheduled promptly instead of waiting out
// a preemption tick while other sessions keep every worker busy — that
// is a handoff, not a liveness crutch, and it costs one yield per
// thousands of packets.
//
// Each worker carries pprof goroutine labels (pegasus_worker=<id>,
// pegasus_session=<name>), refreshed when it switches sessions, so a
// -cpuprofile attributes hot-path time per session out of the box.
func (s *Scheduler) worker(w *schedWorker) {
	defer s.workerWG.Done()
	base := pprof.WithLabels(context.Background(), pprof.Labels("pegasus_worker", w.idKey))
	pprof.SetGoroutineLabels(base)
	labels := make(map[*Engine]context.Context)
	var labelled *Engine
	for {
		e, t, ok := s.next(w)
		if !ok {
			return
		}
		if e != labelled {
			ctx, cached := labels[e]
			if !cached {
				if len(labels) > 64 { // bound the cache across session churn (live swaps)
					clear(labels)
				}
				ctx = pprof.WithLabels(base, pprof.Labels("pegasus_worker", w.idKey, "pegasus_session", sessionLabel(e.name)))
				labels[e] = ctx
			}
			pprof.SetGoroutineLabels(ctx)
			labelled = e
		}
		start := time.Now()
		e.noteWait(w.id, start.Sub(t.enq))
		w.taskStart.Store(start.UnixNano())
		if faultinject.Enabled() {
			if d := faultinject.Delay(faultinject.WorkerStall, w.idKey); d > 0 {
				time.Sleep(d)
			}
		}
		e.runTask(t)
		w.taskStart.Store(0)
		e.note(w.id, len(t.idx), time.Since(start))
		// Load the done channel BEFORE the decrement: after remaining hits
		// zero the submitter may resubmit and swing batchDone to the next
		// batch's channel — loading late could close the wrong batch.
		done := e.batchDone.Load()
		if e.remaining.Add(-1) == 0 {
			close(*done)
			runtime.Gosched()
		}
	}
}

// queueDepth returns the maximum number of OTHER sessions queued ahead
// of e at any of its affinity workers — the congestion a new submission
// from e would encounter, read by the shed policy's MaxQueue bound.
// Workers beyond e's shard fan-out are skipped: e never enqueues there.
// A claimed-but-running task is not queued; that matches the old
// pop-from-ready visibility exactly.
func (s *Scheduler) queueDepth(e *Engine) int {
	sessions := *s.sessions.Load()
	depth := 0
	for _, wid := range e.affinity {
		d := 0
		for _, r := range sessions {
			if r.slots[wid].state.Load() == slotQueued {
				d++
			}
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// StartWatchdog launches the scheduler's stall monitor: a goroutine
// that checks every worker's in-flight task age and, when one exceeds
// threshold (≤ 0 selects the 100ms default), counts a stall and wakes
// every idle peer so the stalled worker's ring is stolen and drained
// around it. Detection is one count per stall episode — a worker stuck
// on one task for ten ticks is one stall, a new task a new episode.
// Idempotent; Close stops the monitor.
//
// Work stealing already reroutes most backlogs, but a steal pass races
// with publish: a task queued after a peer scanned this worker but
// before the peer parked is stranded until the next submission wakes
// the pool. The watchdog closes that window and, more importantly,
// bounds the damage of a genuinely wedged worker (a plan spinning
// forever, an injected stall): co-resident sessions' tasks queued
// behind it stay CAS-claimable in its ring and migrate to stealers
// within one threshold instead of waiting out the wedge.
func (s *Scheduler) StartWatchdog(threshold time.Duration) {
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	s.watchOnce.Do(func() {
		s.watchStop = make(chan struct{})
		s.watchWG.Add(1)
		go s.watchdog(threshold)
	})
}

func (s *Scheduler) watchdog(threshold time.Duration) {
	defer s.watchWG.Done()
	tick := threshold / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	// flagged[i] holds the taskStart value already counted as a stall
	// for worker i, so one wedged task is one stall no matter how many
	// ticks it spans.
	flagged := make([]int64, s.budget)
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		stalled := false
		for i := range s.workers {
			ts := s.workers[i].taskStart.Load()
			if ts == 0 {
				flagged[i] = 0
				continue
			}
			if now-ts < int64(threshold) || flagged[i] == ts {
				continue
			}
			flagged[i] = ts
			s.stalls.Add(1)
			stalled = true
		}
		if stalled {
			// The stalled workers' rings hold tasks that will not be
			// claimed by their owner until the wedge clears; wake parked
			// peers to steal them. Running workers drain them through
			// their normal steal pass.
			s.wakeIdle()
		}
	}
}

// Stalls returns the number of stalled-worker episodes the watchdog has
// detected since the scheduler started (0 when no watchdog runs).
func (s *Scheduler) Stalls() uint64 { return s.stalls.Load() }

// StatBuckets is the number of histogram buckets EngineStats keeps for
// queue waits and queue depths.
const StatBuckets = 8

// WaitBuckets are the upper bounds of the task wait-time histogram:
// bucket i counts tasks whose queue wait was below WaitBuckets[i]
// (the last bucket is open-ended). Chosen to straddle the latencies a
// serving control plane cares about — sub-50µs handoffs through
// multi-millisecond backlog.
var WaitBuckets = [StatBuckets - 1]time.Duration{
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// waitBucket maps a queue wait to its histogram bucket.
func waitBucket(d time.Duration) int {
	for i, b := range WaitBuckets {
		if d < b {
			return i
		}
	}
	return StatBuckets - 1
}

// statShard is one worker's private stripe of a session's serving
// counters. Workers only ever touch their own stripe (index = worker
// id; the extra stripe at index budget belongs to the submitter — inline
// fast-path runs, shed accounting, depth samples), so the task-path
// counter updates are uncontended atomics on worker-private cache
// lines; Engine.Stats folds the stripes together on read. Padded to a
// 64-byte multiple so neighbouring stripes never share a line.
type statShard struct {
	tasks       atomic.Uint64
	packets     atomic.Uint64
	fires       atomic.Uint64
	shed        atomic.Uint64
	shedBatches atomic.Uint64
	busy        atomic.Int64
	wait        atomic.Int64
	waitHist    [StatBuckets]atomic.Uint64
	queueHist   [StatBuckets]atomic.Uint64
	_           [8]byte
}

// EngineStats is one session's cumulative serving counters.
type EngineStats struct {
	// Name and Weight echo the session's registration (Weight reads the
	// CURRENT fair-share weight — the SLO tuner retunes it live).
	Name   string
	Weight int
	// Tasks is the number of shard tasks served; Packets the packets
	// (jobs or raw packets) processed across them; Fires the window
	// inferences produced by the per-packet path.
	Tasks   uint64
	Packets uint64
	Fires   uint64
	// RegRMWs is the number of register read-modify-writes the session's
	// programs executed — every OpReg* op, pure loads included, since
	// each occupies a register's one RMW slot for its packet. Dividing by
	// Packets gives the per-packet stateful cost; a physically shared
	// extraction machine pays it once while its subscribers report zero.
	RegRMWs uint64
	// Shed is the number of packets rejected by the session's shed
	// policy (or a missed deadline) instead of queued; ShedBatches the
	// submissions they arrived in. Shed work never touches registers.
	Shed        uint64
	ShedBatches uint64
	// Busy is the cumulative worker time spent executing this session's
	// tasks: Busy / (wall × budget) is the model's pool occupancy.
	Busy time.Duration
	// Wait is the cumulative queue wait across served tasks — the time
	// between a task's enqueue and a worker picking it up. Wait/Tasks is
	// the session's mean scheduling delay, the latency signal the SLO
	// tuner feeds back into stride weights.
	Wait time.Duration
	// WaitHist is the task wait-time histogram: WaitHist[i] counts tasks
	// whose wait was below WaitBuckets[i] (last bucket open-ended).
	// Inline batches on solo engines count as zero-wait tasks, so
	// ΣWaitHist == Tasks.
	WaitHist [StatBuckets]uint64
	// QueueHist is the queue-depth histogram: QueueHist[d] counts tasks
	// that found d OTHER sessions already queued at their worker when
	// enqueued (last bucket counts depths ≥ StatBuckets-1). Depth 0 is
	// an uncontended pool; mass in higher buckets means co-resident
	// models are backing up behind each other.
	QueueHist [StatBuckets]uint64
}

// MeanWait returns the session's mean per-task queue wait.
func (s *EngineStats) MeanWait() time.Duration {
	if s.Tasks == 0 {
		return 0
	}
	return s.Wait / time.Duration(s.Tasks)
}

// Add accumulates o's counters into s — used by the serving control
// plane to carry a model's totals across live version swaps (each
// engine session counts from zero).
func (s *EngineStats) Add(o EngineStats) {
	s.Tasks += o.Tasks
	s.Packets += o.Packets
	s.Fires += o.Fires
	s.RegRMWs += o.RegRMWs
	s.Shed += o.Shed
	s.ShedBatches += o.ShedBatches
	s.Busy += o.Busy
	s.Wait += o.Wait
	for i := range s.WaitHist {
		s.WaitHist[i] += o.WaitHist[i]
		s.QueueHist[i] += o.QueueHist[i]
	}
}

// reduceShards returns the largest shard count ≤ limit that divides
// every register array size of the chain (see the Engine contract).
func reduceShards(limit int, progs []*Program) int {
	if limit < 1 {
		limit = 1
	}
	dividesAll := func(w int) bool {
		for _, p := range progs {
			for _, r := range p.Registers {
				if r.Size%w != 0 {
					return false
				}
			}
		}
		return true
	}
	w := limit
	for w > 1 && !dividesAll(w) {
		w--
	}
	return w
}
