package pisa

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pegasus-idp/pegasus/internal/faultinject"
)

// Scheduler is a shared worker pool with a fixed budget that serves any
// number of registered engines — the execution substrate for multi-model
// serving. Each registered Engine (one per emitted program) shards its
// batches by flow hash exactly as before, but instead of owning a
// private pool it enqueues its shard tasks on the pool; the workers
// drain them with weighted fair scheduling (stride scheduling: the
// session with the smallest virtual pass is served next, and serving
// advances its pass by packets/weight), so a model replaying a 100×
// larger trace cannot starve its co-resident models.
//
// The pool is organised as per-worker run queues rather than one global
// queue: shard s of a session is routed to worker (s + session offset)
// mod budget, so each worker drains its own queue under its own lock and
// a sustained batch never serialises every worker on a single mutex+cond
// handoff. Because the shard count never exceeds the budget and an
// engine runs one batch at a time, a session holds at most ONE queued
// task per worker — the per-worker queue is an array of single slots,
// one per session. Idle workers steal from their peers' queues (shards
// are mutually disjoint, so any worker may run any task), and workers
// park on their own condition variable when both their queue and their
// peers' are empty — real wakeup signalling, no spin or yield loop.
//
// Correctness is inherited from the engine's sharding contract: one
// batch produces at most one task per shard, an engine runs one batch at
// a time, and a shard's task is executed by exactly one worker — so all
// accesses to one flow's registers still happen in arrival order on a
// single goroutine, and results are bit-identical to a solo engine.
//
// A solo scheduler (what NewEngine/NewChainEngineMode construct
// internally) serves exactly one session and preserves the historical
// Engine API and behaviour.
type Scheduler struct {
	budget  int
	workers []schedWorker

	mu       sync.Mutex // registration state only; never held on the task path
	sessions []*Engine
	nextOff  int // round-robin shard→worker offset for new sessions

	workerWG  sync.WaitGroup
	closeOnce sync.Once

	// Watchdog state (StartWatchdog): a monitor goroutine that detects
	// workers stuck executing one task past a threshold and wakes idle
	// peers to steal the stalled worker's queue.
	watchOnce sync.Once
	watchStop chan struct{}
	watchWG   sync.WaitGroup
	stalls    atomic.Uint64
}

// schedWorker is one pool slot: a private run queue (the sessions whose
// slot for this worker currently holds a task), its own stride clock and
// its own parking cond. All fields are guarded by mu; nothing on the
// task path touches another worker's state except to steal.
type schedWorker struct {
	id    int
	idKey string // decimal id, precomputed for faultinject probes
	mu    sync.Mutex
	cond  *sync.Cond
	ready []*Engine // sessions with a task queued at this worker
	vtime float64   // largest START pass dequeued by this worker (SFQ virtual time)
	// taskStart is the UnixNano stamp of the task currently executing on
	// this worker (0 when idle) — the watchdog's stall signal. Written
	// only by the worker goroutine, read by the watchdog.
	taskStart atomic.Int64
	parked    bool
	closed    bool
}

// NewScheduler starts a shared pool of budget workers (≤ 0 selects
// GOMAXPROCS). Engines register onto it via Scheduler.NewChainEngine
// (or core's Emitted.NewEngineOn); Close stops the pool.
func NewScheduler(budget int) *Scheduler {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{budget: budget, workers: make([]schedWorker, budget)}
	for i := range s.workers {
		w := &s.workers[i]
		w.id = i
		w.idKey = strconv.Itoa(i)
		w.cond = sync.NewCond(&w.mu)
		s.workerWG.Add(1)
		go s.worker(w)
	}
	return s
}

// Budget returns the worker-pool size shared by every registered engine.
func (s *Scheduler) Budget() int { return s.budget }

// NewChainEngine registers a new engine session over a chain of
// programs (see NewChainEngineMode for the chain contract). name labels
// the session in Stats; weight scales its fair share of the pool (< 1
// is clamped to 1). The engine's shard count is the largest value ≤ the
// scheduler budget that divides every register array size of the chain.
func (s *Scheduler) NewChainEngine(name string, progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, weight int, mode ExecMode) *Engine {
	shards := reduceShards(s.budget, progs)
	return s.newSession(name, weight, progs, bridges, in, out, class, shards, mode)
}

// Close stops the worker pool and waits for the workers to exit. All
// registered engines must have finished their runs; Close is idempotent.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		if s.watchStop != nil {
			close(s.watchStop)
			s.watchWG.Wait()
		}
		for i := range s.workers {
			w := &s.workers[i]
			w.mu.Lock()
			w.closed = true
			w.cond.Broadcast()
			w.mu.Unlock()
		}
		s.workerWG.Wait()
	})
}

// Stats snapshots the per-model counters of every registered session,
// in registration order.
func (s *Scheduler) Stats() []EngineStats {
	s.mu.Lock()
	sessions := append([]*Engine(nil), s.sessions...)
	s.mu.Unlock()
	stats := make([]EngineStats, len(sessions))
	for i, e := range sessions {
		stats[i] = e.Stats()
	}
	return stats
}

// register adds a session and assigns its shard→worker offset so
// co-resident single-shard (or few-shard) sessions land on different
// workers instead of piling onto worker 0. Its per-worker virtual
// passes start at zero and are caught up to each worker's clock on
// first enqueue, so a late-registered model cannot monopolise the pool.
func (s *Scheduler) register(e *Engine) {
	e.slots = make([]shardTask, s.budget)
	e.wpass = make([]float64, s.budget)
	s.mu.Lock()
	e.offset = s.nextOff
	s.nextOff = (s.nextOff + 1) % s.budget
	s.sessions = append(s.sessions, e)
	s.mu.Unlock()
}

func (s *Scheduler) unregister(e *Engine) {
	s.mu.Lock()
	for i, se := range s.sessions {
		if se == e {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// enqueue routes a batch's shard tasks to their owning workers' queues
// and wakes them. The engine's single-outstanding-batch contract means
// every targeted slot is empty on entry, so the queue insert is a plain
// store plus one ready append under the owning worker's lock — no
// global contention. When the batch does not cover every worker (fewer
// shards than budget, or a sparse batch), idle workers are woken to
// steal from the loaded ones.
//
// Each task is stamped with the enqueue time (the worker computes its
// queue wait from it) and sampled into the session's queue-depth
// histogram: the depth recorded is the number of OTHER sessions already
// queued at the task's worker — the contention this session sees on the
// shared pool, the signal the SLO tuner and the metrics endpoint read.
func (s *Scheduler) enqueue(e *Engine, tasks []shardTask) {
	now := time.Now()
	for i := range tasks {
		tasks[i].enq = now
		wid := (tasks[i].shard + e.offset) % s.budget
		w := &s.workers[wid]
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			panic("pisa: enqueue on a closed scheduler")
		}
		e.slots[wid] = tasks[i]
		// A session rejoining after idling is floored at the worker's
		// current fairness frontier: the minimum pass among the sessions
		// already queued here (start-time fair queueing's virtual time),
		// falling back to the last dequeued start tag when the queue is
		// empty. A stale low pass must not buy the whole worker — but the
		// floor must not erase the credit a high weight earned either,
		// or every closed-loop submitter (which re-enqueues after each
		// batch) degenerates to round-robin regardless of weight.
		floor := w.vtime
		for _, r := range w.ready {
			if r.wpass[wid] < floor {
				floor = r.wpass[wid]
			}
		}
		if e.wpass[wid] < floor {
			e.wpass[wid] = floor
		}
		w.ready = append(w.ready, e)
		depth := len(w.ready) - 1
		if w.parked {
			w.cond.Signal()
		}
		w.mu.Unlock()
		e.noteDepth(depth)
	}
	if len(tasks) < s.budget {
		s.wakeIdle()
	}
}

// wakeIdle signals every parked worker whose own queue is empty so it
// can steal a task another worker has queued.
func (s *Scheduler) wakeIdle() {
	for i := range s.workers {
		w := &s.workers[i]
		w.mu.Lock()
		if w.parked && len(w.ready) == 0 {
			w.cond.Signal()
		}
		w.mu.Unlock()
	}
}

// popLocked removes and returns the fairest queued session's task for
// this worker (smallest virtual pass on this worker's clock), advancing
// the session's pass by packets/weight — stride scheduling with
// cost-proportional increments, so serving a 10 000-packet task costs a
// session 100× the credit of a 100-packet one. A weight-w session that
// keeps a task queued is therefore served w× for every serve of a
// weight-1 competitor. Caller holds w.mu.
func (w *schedWorker) popLocked() (*Engine, shardTask) {
	if len(w.ready) == 0 {
		return nil, shardTask{}
	}
	bi := 0
	for i := 1; i < len(w.ready); i++ {
		if w.ready[i].wpass[w.id] < w.ready[bi].wpass[w.id] {
			bi = i
		}
	}
	e := w.ready[bi]
	last := len(w.ready) - 1
	w.ready[bi] = w.ready[last]
	w.ready[last] = nil
	w.ready = w.ready[:last]
	t := e.slots[w.id]
	e.slots[w.id] = shardTask{} // release buffer references
	// Advance the virtual time to this task's START tag (not its
	// finish): flooring arrivals at a finish tag would charge them the
	// departing session's whole stride, which round-robins closed-loop
	// submitters no matter their weight.
	if w.vtime < e.wpass[w.id] {
		w.vtime = e.wpass[w.id]
	}
	e.wpass[w.id] += float64(len(t.idx)) / float64(e.weight.Load())
	return e, t
}

// steal scans the other workers' queues for a runnable task. Shards are
// mutually disjoint (distinct PHVs, distinct register cells), so any
// worker may run any queued task; fairness accounting stays on the
// victim worker's clock.
func (s *Scheduler) steal(self int) (*Engine, shardTask, bool) {
	for k := 1; k < s.budget; k++ {
		w := &s.workers[(self+k)%s.budget]
		w.mu.Lock()
		e, t := w.popLocked()
		w.mu.Unlock()
		if e != nil {
			return e, t, true
		}
	}
	return nil, shardTask{}, false
}

// next returns the worker's next task: its own queue first, then a
// steal pass over its peers, then park on the worker's own cond until
// an enqueue (or a wakeIdle broadcast) signals it. ok is false when the
// scheduler is closed and the queue is drained.
func (s *Scheduler) next(w *schedWorker) (e *Engine, t shardTask, ok bool) {
	for {
		w.mu.Lock()
		if e, t := w.popLocked(); e != nil {
			w.mu.Unlock()
			return e, t, true
		}
		if w.closed {
			w.mu.Unlock()
			return nil, shardTask{}, false
		}
		w.mu.Unlock()
		if e, t, ok := s.steal(w.id); ok {
			return e, t, true
		}
		w.mu.Lock()
		// Re-check under the lock: an enqueue between the steal pass and
		// here would otherwise be missed and its signal lost.
		if e, t := w.popLocked(); e != nil {
			w.mu.Unlock()
			return e, t, true
		}
		if w.closed {
			w.mu.Unlock()
			return nil, shardTask{}, false
		}
		w.parked = true
		w.cond.Wait()
		w.parked = false
		w.mu.Unlock()
	}
}

// worker is one pool goroutine: drain the private queue (stealing when
// it runs dry), run each task, account it. Parking on the worker-local
// cond when idle lets batch submitters run even at GOMAXPROCS=1 — the
// old global-queue pool needed a runtime.Gosched after EVERY task to
// hand the P back. The one scheduling point kept is per BATCH: the
// worker that finishes a batch's last task yields once so the blocked
// submitter is scheduled promptly instead of waiting out a preemption
// tick while other sessions keep every worker busy — that is a handoff,
// not a liveness crutch, and it costs one yield per thousands of
// packets.
func (s *Scheduler) worker(w *schedWorker) {
	defer s.workerWG.Done()
	for {
		e, t, ok := s.next(w)
		if !ok {
			return
		}
		start := time.Now()
		e.noteWait(start.Sub(t.enq))
		w.taskStart.Store(start.UnixNano())
		if faultinject.Enabled() {
			if d := faultinject.Delay(faultinject.WorkerStall, w.idKey); d > 0 {
				time.Sleep(d)
			}
		}
		e.runTask(t)
		w.taskStart.Store(0)
		e.note(len(t.idx), time.Since(start))
		last := e.remaining.Add(-1) == 0
		e.batchWG.Done()
		if last {
			runtime.Gosched()
		}
	}
}

// queueDepth returns the maximum number of OTHER sessions queued ahead
// of e at any of its target workers — the congestion a new submission
// from e would encounter, read by the shed policy's MaxQueue bound.
// Workers beyond e's shard fan-out are skipped: e never enqueues there.
func (s *Scheduler) queueDepth(e *Engine) int {
	n := e.shards
	if n > s.budget {
		n = s.budget
	}
	depth := 0
	for k := 0; k < n; k++ {
		w := &s.workers[(k+e.offset)%s.budget]
		w.mu.Lock()
		d := len(w.ready)
		w.mu.Unlock()
		if d > depth {
			depth = d
		}
	}
	return depth
}

// StartWatchdog launches the scheduler's stall monitor: a goroutine
// that checks every worker's in-flight task age and, when one exceeds
// threshold (≤ 0 selects the 100ms default), counts a stall and wakes
// every idle peer so the stalled worker's queue is stolen and drained
// around it. Detection is one count per stall episode — a worker stuck
// on one task for ten ticks is one stall, a new task a new episode.
// Idempotent; Close stops the monitor.
//
// Work stealing already reroutes most backlogs, but a steal pass races
// with enqueue: a task queued after a peer scanned this worker but
// before the peer parked is stranded until the next submission wakes
// the pool. The watchdog closes that window and, more importantly,
// bounds the damage of a genuinely wedged worker (a plan spinning
// forever, an injected stall): co-resident sessions' tasks queued
// behind it migrate to stealers within one threshold instead of
// waiting out the wedge.
func (s *Scheduler) StartWatchdog(threshold time.Duration) {
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	s.watchOnce.Do(func() {
		s.watchStop = make(chan struct{})
		s.watchWG.Add(1)
		go s.watchdog(threshold)
	})
}

func (s *Scheduler) watchdog(threshold time.Duration) {
	defer s.watchWG.Done()
	tick := threshold / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	// flagged[i] holds the taskStart value already counted as a stall
	// for worker i, so one wedged task is one stall no matter how many
	// ticks it spans.
	flagged := make([]int64, s.budget)
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		stalled := false
		for i := range s.workers {
			ts := s.workers[i].taskStart.Load()
			if ts == 0 {
				flagged[i] = 0
				continue
			}
			if now-ts < int64(threshold) || flagged[i] == ts {
				continue
			}
			flagged[i] = ts
			s.stalls.Add(1)
			stalled = true
		}
		if stalled {
			// The stalled workers' queues hold tasks that will not be
			// dequeued until the wedge clears; wake parked peers to steal
			// them. Running workers drain them through their normal steal
			// pass.
			s.wakeIdle()
		}
	}
}

// Stalls returns the number of stalled-worker episodes the watchdog has
// detected since the scheduler started (0 when no watchdog runs).
func (s *Scheduler) Stalls() uint64 { return s.stalls.Load() }

// StatBuckets is the number of histogram buckets EngineStats keeps for
// queue waits and queue depths.
const StatBuckets = 8

// WaitBuckets are the upper bounds of the task wait-time histogram:
// bucket i counts tasks whose queue wait was below WaitBuckets[i]
// (the last bucket is open-ended). Chosen to straddle the latencies a
// serving control plane cares about — sub-50µs handoffs through
// multi-millisecond backlog.
var WaitBuckets = [StatBuckets - 1]time.Duration{
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// waitBucket maps a queue wait to its histogram bucket.
func waitBucket(d time.Duration) int {
	for i, b := range WaitBuckets {
		if d < b {
			return i
		}
	}
	return StatBuckets - 1
}

// EngineStats is one session's cumulative serving counters.
type EngineStats struct {
	// Name and Weight echo the session's registration (Weight reads the
	// CURRENT fair-share weight — the SLO tuner retunes it live).
	Name   string
	Weight int
	// Tasks is the number of shard tasks served; Packets the packets
	// (jobs or raw packets) processed across them; Fires the window
	// inferences produced by the per-packet path.
	Tasks   uint64
	Packets uint64
	Fires   uint64
	// Shed is the number of packets rejected by the session's shed
	// policy (or a missed deadline) instead of queued; ShedBatches the
	// submissions they arrived in. Shed work never touches registers.
	Shed        uint64
	ShedBatches uint64
	// Busy is the cumulative worker time spent executing this session's
	// tasks: Busy / (wall × budget) is the model's pool occupancy.
	Busy time.Duration
	// Wait is the cumulative queue wait across served tasks — the time
	// between a task's enqueue and a worker picking it up. Wait/Tasks is
	// the session's mean scheduling delay, the latency signal the SLO
	// tuner feeds back into stride weights.
	Wait time.Duration
	// WaitHist is the task wait-time histogram: WaitHist[i] counts tasks
	// whose wait was below WaitBuckets[i] (last bucket open-ended).
	// Inline batches on solo engines count as zero-wait tasks, so
	// ΣWaitHist == Tasks.
	WaitHist [StatBuckets]uint64
	// QueueHist is the queue-depth histogram: QueueHist[d] counts tasks
	// that found d OTHER sessions already queued at their worker when
	// enqueued (last bucket counts depths ≥ StatBuckets-1). Depth 0 is
	// an uncontended pool; mass in higher buckets means co-resident
	// models are backing up behind each other.
	QueueHist [StatBuckets]uint64
}

// MeanWait returns the session's mean per-task queue wait.
func (s *EngineStats) MeanWait() time.Duration {
	if s.Tasks == 0 {
		return 0
	}
	return s.Wait / time.Duration(s.Tasks)
}

// Add accumulates o's counters into s — used by the serving control
// plane to carry a model's totals across live version swaps (each
// engine session counts from zero).
func (s *EngineStats) Add(o EngineStats) {
	s.Tasks += o.Tasks
	s.Packets += o.Packets
	s.Fires += o.Fires
	s.Shed += o.Shed
	s.ShedBatches += o.ShedBatches
	s.Busy += o.Busy
	s.Wait += o.Wait
	for i := range s.WaitHist {
		s.WaitHist[i] += o.WaitHist[i]
		s.QueueHist[i] += o.QueueHist[i]
	}
}

// reduceShards returns the largest shard count ≤ limit that divides
// every register array size of the chain (see the Engine contract).
func reduceShards(limit int, progs []*Program) int {
	if limit < 1 {
		limit = 1
	}
	dividesAll := func(w int) bool {
		for _, p := range progs {
			for _, r := range p.Registers {
				if r.Size%w != 0 {
					return false
				}
			}
		}
		return true
	}
	w := limit
	for w > 1 && !dividesAll(w) {
		w--
	}
	return w
}
