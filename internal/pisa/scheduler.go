package pisa

import (
	"runtime"
	"sync"
	"time"
)

// Scheduler is a shared worker pool with a fixed budget that serves any
// number of registered engines — the execution substrate for multi-model
// serving. Each registered Engine (one per emitted program) shards its
// batches by flow hash exactly as before, but instead of owning a
// private pool it enqueues its shard tasks on its own per-model queue;
// the scheduler's workers drain the queues with weighted fair scheduling
// (stride scheduling: the session with the smallest virtual pass is
// served next, and serving advances its pass by 1/weight), so a model
// replaying a 100× larger trace cannot starve its co-resident models.
//
// Correctness is inherited from the engine's sharding contract: one
// batch produces at most one task per shard, an engine runs one batch at
// a time, and a shard's task is executed by exactly one worker — so all
// accesses to one flow's registers still happen in arrival order on a
// single goroutine, and results are bit-identical to a solo engine.
//
// A solo scheduler (what NewEngine/NewChainEngineMode construct
// internally) serves exactly one session and preserves the historical
// Engine API and behaviour.
type Scheduler struct {
	budget int

	mu       sync.Mutex
	cond     *sync.Cond
	sessions []*Engine
	vtime    float64 // virtual pass of the most recently served session
	closed   bool

	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// NewScheduler starts a shared pool of budget workers (≤ 0 selects
// GOMAXPROCS). Engines register onto it via Scheduler.NewChainEngine
// (or core's Emitted.NewEngineOn); Close stops the pool.
func NewScheduler(budget int) *Scheduler {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{budget: budget}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < budget; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Budget returns the worker-pool size shared by every registered engine.
func (s *Scheduler) Budget() int { return s.budget }

// NewChainEngine registers a new engine session over a chain of
// programs (see NewChainEngineMode for the chain contract). name labels
// the session in Stats; weight scales its fair share of the pool (< 1
// is clamped to 1). The engine's shard count is the largest value ≤ the
// scheduler budget that divides every register array size of the chain.
func (s *Scheduler) NewChainEngine(name string, progs []*Program, bridges []Bridge, in, out []FieldID, class FieldID, weight int, mode ExecMode) *Engine {
	shards := reduceShards(s.budget, progs)
	return s.newSession(name, weight, progs, bridges, in, out, class, shards, mode)
}

// Close stops the worker pool and waits for the workers to exit. All
// registered engines must have finished their runs; Close is idempotent.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
		s.workerWG.Wait()
	})
}

// Stats snapshots the per-model counters of every registered session,
// in registration order.
func (s *Scheduler) Stats() []EngineStats {
	s.mu.Lock()
	sessions := append([]*Engine(nil), s.sessions...)
	s.mu.Unlock()
	stats := make([]EngineStats, len(sessions))
	for i, e := range sessions {
		stats[i] = e.Stats()
	}
	return stats
}

// register adds a session; its virtual pass starts at the pool's
// current virtual time so a late-registered model cannot monopolise the
// workers while it catches up.
func (s *Scheduler) register(e *Engine) {
	s.mu.Lock()
	e.pass = s.vtime
	s.sessions = append(s.sessions, e)
	s.mu.Unlock()
}

func (s *Scheduler) unregister(e *Engine) {
	s.mu.Lock()
	for i, se := range s.sessions {
		if se == e {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// enqueue appends a batch's shard tasks to the engine's queue and wakes
// the pool. The engine's single-outstanding-batch contract means the
// queue is empty on entry, so the backing array is reused across
// batches and the steady state allocates nothing.
func (s *Scheduler) enqueue(e *Engine, tasks []shardTask) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("pisa: enqueue on a closed scheduler")
	}
	if e.qhead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qhead = 0
	}
	e.queue = append(e.queue, tasks...)
	// A session rejoining after idling inherits the pool's virtual time:
	// its stale low pass must not buy it the whole pool.
	if e.pass < s.vtime {
		e.pass = s.vtime
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// pickLocked returns the queued session with the smallest virtual pass.
func (s *Scheduler) pickLocked() *Engine {
	var best *Engine
	for _, e := range s.sessions {
		if e.qhead == len(e.queue) {
			continue
		}
		if best == nil || e.pass < best.pass {
			best = e
		}
	}
	return best
}

// worker is one pool goroutine: pick the fairest queued session, pop
// one shard task, run it, account it.
func (s *Scheduler) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		var e *Engine
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if e = s.pickLocked(); e != nil {
				break
			}
			s.cond.Wait()
		}
		t := e.queue[e.qhead]
		e.queue[e.qhead] = shardTask{} // release buffer references
		e.qhead++
		e.pass += 1 / float64(e.weight)
		s.vtime = e.pass
		s.mu.Unlock()

		start := time.Now()
		if t.pkts != nil {
			e.runPacketShard(t.shard, t.pkts, t.fired, t.class, t.outs, t.idx)
		} else {
			e.runShard(t.shard, t.jobs, t.res, t.outs, t.idx)
		}
		e.note(len(t.idx), time.Since(start))
		e.batchWG.Done()
		// Let the completed batch's submitter re-enqueue before the next
		// pick: without this yield a busy worker monopolises its P and,
		// on small GOMAXPROCS, whichever session loses the run-queue
		// handoff race re-enqueues only on preemption ticks — runtime
		// starvation the fair queue draining cannot see.
		runtime.Gosched()
	}
}

// EngineStats is one session's cumulative serving counters.
type EngineStats struct {
	// Name and Weight echo the session's registration.
	Name   string
	Weight int
	// Tasks is the number of shard tasks served; Packets the packets
	// (jobs or raw packets) processed across them; Fires the window
	// inferences produced by the per-packet path.
	Tasks   uint64
	Packets uint64
	Fires   uint64
	// Busy is the cumulative worker time spent executing this session's
	// tasks: Busy / (wall × budget) is the model's pool occupancy.
	Busy time.Duration
}

// reduceShards returns the largest shard count ≤ limit that divides
// every register array size of the chain (see the Engine contract).
func reduceShards(limit int, progs []*Program) int {
	if limit < 1 {
		limit = 1
	}
	dividesAll := func(w int) bool {
		for _, p := range progs {
			for _, r := range p.Registers {
				if r.Size%w != 0 {
					return false
				}
			}
		}
		return true
	}
	w := limit
	for w > 1 && !dividesAll(w) {
		w--
	}
	return w
}
